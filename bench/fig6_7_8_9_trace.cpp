// Figures 6-9: the 31-day HUSt-style trace through a single-server DEBAR
// and through the DDFS baseline.
//
//   Fig 6: logical data backed up vs physical data stored, over time.
//   Fig 7: daily & cumulative compression ratios (dedup-1, dedup-2,
//          overall, DDFS).
//   Fig 8: DEBAR dedup-1 / dedup-2 / total throughput over time.
//   Fig 9: DEBAR dedup-2 vs DDFS throughput.
//
// Scale: the paper backs up ~583 GB/day; this bench defaults to
// ~8 MB/chunk-stream days (kChunksPerClient fingerprints/client/day,
// 8 KB chunks) with the on-disk index sized to keep the paper's
// data:index ratio, so every *ratio* and *throughput* is directly
// comparable. Throughputs are modeled-time quantities (paper device
// profiles: 210 MB/s NIC, 200 MB/s index RAID, 224 MB/s chunk log).
//
// Paper reference points: overall compression 9.39:1 (dedup-1 cumulative
// ~3.6:1, dedup-2 cumulative ~2.6:1); dedup-1 daily 303-1100 MB/s,
// cumulative 641.6 MB/s; dedup-2 cumulative ~197 MB/s, daily 170-206.8;
// DDFS daily >155 MB/s, cumulative ~189 MB/s; DEBAR total 329.2 MB/s.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/backup_engine.hpp"
#include "ddfs/ddfs_server.hpp"
#include "workload/hust_trace.hpp"

namespace {

using namespace debar;

constexpr unsigned kDays = 31;
constexpr std::size_t kClients = 8;
constexpr std::uint64_t kChunksPerClient = 1024;
constexpr std::uint32_t kChunkSize = kExpectedChunkSize;
constexpr std::uint64_t kSeed = 20090105;

struct DayRow {
  double logical_mb = 0;
  double debar_stored_mb = 0;  // cumulative
  double ddfs_stored_mb = 0;   // cumulative
  double d1_ratio_daily = 0;
  double d1_ratio_cum = 0;
  double d2_ratio_daily = 0;  // 0 when dedup-2 didn't run
  double d2_ratio_cum = 0;
  double debar_ratio_cum = 0;
  double ddfs_ratio_daily = 0;
  double ddfs_ratio_cum = 0;
  double d1_tput_daily = 0;
  double d1_tput_cum = 0;
  double d2_tput_daily = 0;  // 0 when dedup-2 didn't run
  double d2_tput_cum = 0;
  double debar_total_tput = 0;
  double ddfs_tput_daily = 0;
  double ddfs_tput_cum = 0;
};

struct TraceResults {
  std::vector<DayRow> days;
  unsigned dedup2_runs = 0;
  unsigned siu_runs = 0;
};

TraceResults run_trace() {
  TraceResults out;

  // ---- DEBAR instance (index sized to keep the paper's data:index
  // ratio: ~17 TB month / 32 GB index ~ 530:1; here ~2 GB month / 8 MB).
  storage::ChunkRepository debar_repo(1);
  core::Director director;
  core::BackupServerConfig cfg;
  cfg.index_params = {.prefix_bits = 10, .blocks_per_bucket = 16};
  cfg.filter_params = {.hash_bits = 14, .capacity = 1 << 22};
  cfg.chunk_store.cache_params = {.hash_bits = 10, .capacity = 1 << 23};
  cfg.chunk_store.io_buckets = 256;
  cfg.chunk_store.siu_threshold = 6000;  // one SIU serves ~2 SIL rounds
  core::BackupServer server(0, cfg, &debar_repo, &director);
  core::BackupEngine engine("hust", &director);

  std::vector<std::uint64_t> jobs;
  for (std::size_t c = 0; c < kClients; ++c) {
    jobs.push_back(director.define_job("node" + std::to_string(c), "hust"));
  }

  // ---- DDFS instance over an identical trace.
  storage::ChunkRepository ddfs_repo(1);
  ddfs::DdfsConfig dcfg;
  dcfg.bloom_bits = 1 << 22;  // ample for this scale: fpr stays low
  dcfg.index_params = {.prefix_bits = 10, .blocks_per_bucket = 16};
  dcfg.fp_cache_containers = 16;
  dcfg.write_buffer_entries = 600;  // ~2 flushes per day, as in the paper
  dcfg.io_buckets = 256;
  ddfs::DdfsServer ddfs_server(dcfg, &ddfs_repo);

  workload::HustTrace debar_trace(
      {.days = kDays, .clients = kClients,
       .mean_daily_chunks = kChunksPerClient, .seed = kSeed});
  workload::HustTrace ddfs_trace(
      {.days = kDays, .clients = kClients,
       .mean_daily_chunks = kChunksPerClient, .seed = kSeed});

  // Accumulators.
  double cum_logical = 0, cum_d1_out = 0;          // bytes
  double cum_d2_in = 0, cum_d2_out = 0;            // bytes through dedup-2
  double cum_d1_seconds = 0, cum_d2_seconds = 0;
  double cum_ddfs_new = 0, cum_ddfs_seconds = 0;
  double undetermined_bytes = 0;  // chunk-log bytes awaiting dedup-2

  const double dedup2_trigger_bytes = 2.5 * kClients * kChunksPerClient *
                                      kChunkSize / 3.6;  // ~2.5 days of log

  for (unsigned day = 1; day <= kDays; ++day) {
    DayRow row;

    // ---------- DEBAR dedup-1 ----------
    const core::ServerClocks before = server.clocks();
    const double repo_before = debar_repo.max_node_seconds();
    double day_logical = 0, day_wire = 0;
    for (auto& job : debar_trace.day(day)) {
      const auto stats = engine.run_backup_stream(
          jobs[job.client], std::span<const Fingerprint>(job.stream),
          server.file_store(), kChunkSize);
      if (!stats.ok()) {
        std::fprintf(stderr, "day %u dedup-1 failed: %s\n", day,
                     stats.error().to_string().c_str());
        std::exit(1);
      }
      day_logical += static_cast<double>(stats.value().logical_bytes);
      day_wire += static_cast<double>(stats.value().transferred_bytes);
    }
    const core::ServerClocks after_d1 = server.clocks();
    // Receive (NIC) and chunk-log append overlap in the dedup-1 pipeline.
    const double d1_seconds = std::max(after_d1.nic - before.nic,
                                       after_d1.log_disk - before.log_disk);

    cum_logical += day_logical;
    cum_d1_out += day_wire;
    cum_d1_seconds += d1_seconds;
    undetermined_bytes += day_wire;

    row.logical_mb = cum_logical / 1e6;
    row.d1_ratio_daily = day_logical / std::max(1.0, day_wire);
    row.d1_ratio_cum = cum_logical / std::max(1.0, cum_d1_out);
    row.d1_tput_daily = day_logical / d1_seconds / 1e6;
    row.d1_tput_cum = cum_logical / cum_d1_seconds / 1e6;

    // ---------- DEBAR dedup-2 (initiated when the logs fill) ----------
    if (undetermined_bytes >= dedup2_trigger_bytes || day == kDays) {
      const core::ServerClocks b2 = server.clocks();
      const double repo_b2 = debar_repo.max_node_seconds();
      const auto result = server.run_dedup2(/*force_siu=*/day == kDays);
      if (!result.ok()) {
        std::fprintf(stderr, "day %u dedup-2 failed: %s\n", day,
                     result.error().to_string().c_str());
        std::exit(1);
      }
      const core::ServerClocks a2 = server.clocks();
      // SIL and SIU stream the index; chunk storing overlaps log replay
      // with container writes.
      const double store_seconds =
          std::max(a2.log_disk - b2.log_disk,
                   debar_repo.max_node_seconds() - repo_b2);
      const double d2_seconds = result.value().sil_seconds + store_seconds +
                                result.value().siu_seconds;
      const double d2_out =
          static_cast<double>(result.value().new_bytes);

      ++out.dedup2_runs;
      if (result.value().ran_siu) ++out.siu_runs;
      cum_d2_in += undetermined_bytes;
      cum_d2_out += d2_out;
      cum_d2_seconds += d2_seconds;

      row.d2_ratio_daily = undetermined_bytes / std::max(1.0, d2_out);
      row.d2_tput_daily = undetermined_bytes / d2_seconds / 1e6;
      undetermined_bytes = 0;
    }
    row.d2_ratio_cum = cum_d2_in / std::max(1.0, cum_d2_out);
    row.d2_tput_cum =
        cum_d2_seconds > 0 ? cum_d2_in / cum_d2_seconds / 1e6 : 0;
    row.debar_stored_mb =
        static_cast<double>(debar_repo.stored_bytes()) / 1e6;
    row.debar_ratio_cum =
        cum_logical / std::max(1.0, static_cast<double>(
                                        debar_repo.stored_bytes()));
    row.debar_total_tput =
        cum_logical / (cum_d1_seconds + cum_d2_seconds) / 1e6;
    (void)repo_before;

    // ---------- DDFS ----------
    const double ddfs_t0 =
        ddfs_server.nic_seconds() + ddfs_server.index_seconds();
    double ddfs_day_logical = 0, ddfs_day_new = 0;
    for (auto& job : ddfs_trace.day(day)) {
      const auto stats = ddfs_server.backup_stream(
          std::span<const Fingerprint>(job.stream), kChunkSize);
      if (!stats.ok()) {
        std::fprintf(stderr, "day %u DDFS failed: %s\n", day,
                     stats.error().to_string().c_str());
        std::exit(1);
      }
      ddfs_day_logical += static_cast<double>(stats.value().logical_bytes);
      ddfs_day_new +=
          static_cast<double>(stats.value().new_chunks) * kChunkSize;
    }
    // Inline dedup serializes the stream on index I/O (lookups and
    // write-buffer flush pauses), so the day's time is NIC + index.
    const double ddfs_seconds =
        ddfs_server.nic_seconds() + ddfs_server.index_seconds() - ddfs_t0;
    cum_ddfs_new += ddfs_day_new;
    cum_ddfs_seconds += ddfs_seconds;

    row.ddfs_stored_mb = static_cast<double>(ddfs_repo.stored_bytes()) / 1e6;
    row.ddfs_ratio_daily = ddfs_day_logical / std::max(1.0, ddfs_day_new);
    row.ddfs_ratio_cum = cum_logical / std::max(1.0, cum_ddfs_new);
    row.ddfs_tput_daily = ddfs_day_logical / ddfs_seconds / 1e6;
    row.ddfs_tput_cum = cum_logical / cum_ddfs_seconds / 1e6;

    out.days.push_back(row);
  }
  return out;
}

void print_results(const TraceResults& r) {
  std::printf("\n=== Figure 6: logical vs physically stored data (MB, "
              "cumulative) ===\n");
  std::printf("day | logical  | DEBAR stored | DDFS stored\n");
  for (unsigned d = 1; d <= kDays; d += 3) {
    const DayRow& row = r.days[d - 1];
    std::printf("%3u | %8.1f | %12.1f | %11.1f\n", d, row.logical_mb,
                row.debar_stored_mb, row.ddfs_stored_mb);
  }

  std::printf("\n=== Figure 7: compression ratios over time ===\n");
  std::printf("day | d1 daily | d1 cum | d2 daily | d2 cum | DEBAR cum | "
              "DDFS daily | DDFS cum\n");
  for (unsigned d = 1; d <= kDays; ++d) {
    const DayRow& row = r.days[d - 1];
    std::printf("%3u | %8.2f | %6.2f | %8.2f | %6.2f | %9.2f | %10.2f | "
                "%7.2f\n",
                d, row.d1_ratio_daily, row.d1_ratio_cum, row.d2_ratio_daily,
                row.d2_ratio_cum, row.debar_ratio_cum, row.ddfs_ratio_daily,
                row.ddfs_ratio_cum);
  }

  std::printf("\n=== Figure 8: DEBAR throughput over time (MB/s, modeled) "
              "===\n");
  std::printf("day | d1 daily | d1 cum | d2 daily | d2 cum | total cum\n");
  for (unsigned d = 1; d <= kDays; ++d) {
    const DayRow& row = r.days[d - 1];
    std::printf("%3u | %8.1f | %6.1f | %8.1f | %6.1f | %9.1f\n", d,
                row.d1_tput_daily, row.d1_tput_cum, row.d2_tput_daily,
                row.d2_tput_cum, row.debar_total_tput);
  }

  std::printf("\n=== Figure 9: DEBAR dedup-2 vs DDFS throughput (MB/s) ===\n");
  std::printf("day | d2 daily | d2 cum | DDFS daily | DDFS cum\n");
  for (unsigned d = 1; d <= kDays; ++d) {
    const DayRow& row = r.days[d - 1];
    std::printf("%3u | %8.1f | %6.1f | %10.1f | %8.1f\n", d,
                row.d2_tput_daily, row.d2_tput_cum, row.ddfs_tput_daily,
                row.ddfs_tput_cum);
  }

  const DayRow& last = r.days.back();
  std::printf("\nsummary: dedup-2 ran %u times (%u SIU) | overall "
              "compression %.2f:1 (paper 9.39) | dedup-1 cum %.2f:1 "
              "(paper ~3.6) | dedup-2 cum %.2f:1 (paper ~2.6)\n",
              r.dedup2_runs, r.siu_runs, last.debar_ratio_cum,
              last.d1_ratio_cum, last.d2_ratio_cum);
  std::printf("throughputs: DEBAR d1 cum %.1f MB/s (paper 641.6) | DEBAR "
              "total %.1f (paper 329.2) | DEBAR d2 cum %.1f (paper ~197) | "
              "DDFS cum %.1f (paper ~189)\n\n",
              last.d1_tput_cum, last.debar_total_tput, last.d2_tput_cum,
              last.ddfs_tput_cum);
}

void BM_HustTrace_Full(benchmark::State& state) {
  TraceResults results;
  for (auto _ : state) {
    results = run_trace();
    benchmark::DoNotOptimize(results);
  }
  const DayRow& last = results.days.back();
  state.counters["overall_ratio"] = last.debar_ratio_cum;
  state.counters["d1_ratio_cum"] = last.d1_ratio_cum;
  state.counters["d2_ratio_cum"] = last.d2_ratio_cum;
  state.counters["d1_MBps_cum"] = last.d1_tput_cum;
  state.counters["d2_MBps_cum"] = last.d2_tput_cum;
  state.counters["total_MBps"] = last.debar_total_tput;
  state.counters["ddfs_MBps_cum"] = last.ddfs_tput_cum;
}
BENCHMARK(BM_HustTrace_Full)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace

int main(int argc, char** argv) {
  print_results(run_trace());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
