// Wire-codec perf trajectory: the fig14-style cluster workload run over
// {loopback, socket} x {codec off, codec on}, verifying byte-identical
// restores and emitting machine-readable BENCH_wire.json (wire bytes and
// wall-clock, before/after) — the seed of the repo's perf trajectory
// (ROADMAP item 1).
//
//   bench_wire_codec [--out <path>]     measure and write the JSON
//   bench_wire_codec --check <path>     re-measure and compare against a
//                                       checked-in baseline: fails if the
//                                       codec-on wire bytes regressed >5%
//                                       or the reduction fell below 30%
//
// Wire bytes are deterministic up to a few container-ID delta bytes
// (phase D allocates container IDs across concurrent origins), which is
// why the check uses a tolerance instead of equality.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "net/transport_factory.hpp"
#include "workload/fingerprint_stream.hpp"

namespace {

using namespace debar;

constexpr unsigned kRoutingBits = 2;  // 4 servers
constexpr std::size_t kServers = 1u << kRoutingBits;
constexpr std::size_t kStreamsPerServer = 2;
constexpr std::size_t kStreams = kServers * kStreamsPerServer;
constexpr unsigned kVersions = 3;
constexpr std::uint64_t kChunksPerVersion = 256;  // per stream
constexpr std::uint32_t kChunkSize = 2048;

struct Leg {
  const char* transport;
  const char* codec;
  net::TransportStats stats;
  double wall_seconds = 0;
  std::vector<Byte> restored;  // all restored bytes, every stream/version
};

Leg run_leg(bool socket, bool codec_on) {
  Leg leg;
  leg.transport = socket ? "socket" : "loopback";
  leg.codec = codec_on ? "on" : "off";

  core::ClusterConfig cfg;
  cfg.routing_bits = kRoutingBits;
  cfg.repository_nodes = 4;
  cfg.server_config.index_params = {.prefix_bits = 10,
                                    .blocks_per_bucket = 16};
  cfg.server_config.filter_params = {.hash_bits = 14, .capacity = 1 << 22};
  cfg.server_config.chunk_store.cache_params = {.hash_bits = 8,
                                                .capacity = 1 << 24};
  cfg.server_config.chunk_store.io_buckets = 256;
  cfg.server_config.chunk_store.siu_threshold = 1;
  if (codec_on) cfg.wire_codec = net::WireCodecConfig::enabled();
  if (socket) {
    cfg.transport_factory =
        std::make_shared<net::SocketTransportFactory>(net::AddressMap{});
  }

  const auto start = std::chrono::steady_clock::now();
  core::Cluster cluster(std::move(cfg));

  workload::SubspaceRegistry registry(3);  // 8 stream subspaces
  std::vector<std::unique_ptr<workload::VersionedStream>> streams;
  std::vector<std::uint64_t> jobs;
  for (std::size_t s = 0; s < kStreams; ++s) {
    streams.push_back(std::make_unique<workload::VersionedStream>(
        &registry, workload::StreamParams{.stream_id = s,
                                          .dup_fraction = 0.5,
                                          .cross_fraction = 0.3,
                                          .seed = 1414}));
    jobs.push_back(
        cluster.director().define_job("c" + std::to_string(s), "stream"));
  }

  for (unsigned v = 1; v <= kVersions; ++v) {
    for (std::size_t s = 0; s < kStreams; ++s) {
      const std::size_t srv = s / kStreamsPerServer;
      core::FileStore& fs = cluster.server(srv).file_store();
      const std::vector<Fingerprint> fps =
          streams[s]->next_version(kChunksPerVersion);
      fs.begin_job(jobs[s]);
      fs.begin_file({.path = "v" + std::to_string(v),
                     .size = fps.size() * kChunkSize,
                     .mtime = 0,
                     .mode = 0644});
      for (const Fingerprint& fp : fps) {
        if (fs.offer_fingerprint(fp, kChunkSize)) {
          const auto payload =
              core::BackupEngine::synthetic_payload(fp, kChunkSize);
          if (!fs.receive_chunk(fp, ByteSpan(payload.data(), payload.size()))
                   .ok()) {
            std::fprintf(stderr, "receive_chunk failed\n");
            std::exit(1);
          }
        }
      }
      fs.end_file();
      if (!fs.end_job().ok()) std::exit(1);
    }
    const auto result = cluster.run_dedup2(/*force_siu=*/true);
    if (!result.ok()) {
      std::fprintf(stderr, "dedup-2 failed: %s\n",
                   result.error().to_string().c_str());
      std::exit(1);
    }
  }

  // Restore every version through the stream's own server: ChunkData
  // (and cross-owner locate traffic) all crosses the metered wire.
  for (std::size_t s = 0; s < kStreams; ++s) {
    for (unsigned v = 1; v <= kVersions; ++v) {
      const auto restored =
          cluster.restore(jobs[s], v, s / kStreamsPerServer);
      if (!restored.ok()) {
        std::fprintf(stderr, "restore %zu/v%u failed: %s\n", s, v,
                     restored.error().to_string().c_str());
        std::exit(1);
      }
      for (const auto& f : restored.value().files) {
        leg.restored.insert(leg.restored.end(), f.content.begin(),
                            f.content.end());
      }
    }
  }

  leg.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  leg.stats = cluster.transport_stats();
  return leg;
}

double reduction(const Leg& off, const Leg& on) {
  return 1.0 - static_cast<double>(on.stats.bytes_sent) /
                   static_cast<double>(off.stats.bytes_sent);
}

/// The four legs, in the fixed order the JSON (and the checker) uses:
/// loopback off, loopback on, socket off, socket on.
std::vector<Leg> measure() {
  std::vector<Leg> legs;
  for (const bool socket : {false, true}) {
    legs.push_back(run_leg(socket, /*codec_on=*/false));
    legs.push_back(run_leg(socket, /*codec_on=*/true));
    const Leg& off = legs[legs.size() - 2];
    const Leg& on = legs.back();
    if (on.restored != off.restored || on.restored.empty()) {
      std::fprintf(stderr, "%s: codec-on restore differs from codec-off\n",
                   on.transport);
      std::exit(1);
    }
    if (on.stats.raw_bytes_sent != off.stats.raw_bytes_sent) {
      std::fprintf(stderr, "%s: raw ledger moved with the codec\n",
                   on.transport);
      std::exit(1);
    }
    std::printf("%-8s raw %llu B; wire %llu -> %llu B (%.1f%% reduction); "
                "wall %.2fs -> %.2fs\n",
                on.transport,
                static_cast<unsigned long long>(on.stats.raw_bytes_sent),
                static_cast<unsigned long long>(off.stats.bytes_sent),
                static_cast<unsigned long long>(on.stats.bytes_sent),
                reduction(off, on) * 100.0, off.wall_seconds,
                on.wall_seconds);
    if (reduction(off, on) < 0.30) {
      std::fprintf(stderr, "%s: reduction below the 30%% acceptance bar\n",
                   on.transport);
      std::exit(1);
    }
  }
  return legs;
}

void write_json(const std::vector<Leg>& legs, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"wire_codec\",\n");
  std::fprintf(f,
               "  \"workload\": {\"servers\": %zu, \"streams\": %zu, "
               "\"versions\": %u, \"chunks_per_version\": %llu, "
               "\"chunk_bytes\": %u},\n",
               kServers, kStreams, kVersions,
               static_cast<unsigned long long>(kChunksPerVersion),
               kChunkSize);
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < legs.size(); ++i) {
    const Leg& leg = legs[i];
    std::fprintf(f,
                 "    {\"transport\": \"%s\", \"codec\": \"%s\", "
                 "\"raw_bytes\": %llu, \"wire_bytes\": %llu, "
                 "\"frames\": %llu, \"wall_seconds\": %.3f}%s\n",
                 leg.transport, leg.codec,
                 static_cast<unsigned long long>(leg.stats.raw_bytes_sent),
                 static_cast<unsigned long long>(leg.stats.bytes_sent),
                 static_cast<unsigned long long>(leg.stats.frames_sent),
                 leg.wall_seconds, i + 1 < legs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"reduction\": {\"loopback\": %.4f, \"socket\": %.4f}\n",
               reduction(legs[0], legs[1]), reduction(legs[2], legs[3]));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

/// Pull every `"wire_bytes": N` out of the baseline, in file order. A
/// full JSON parser would be overkill for a file this bench itself wrote.
std::vector<unsigned long long> baseline_wire_bytes(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "baseline %s missing\n", path.c_str());
    std::exit(1);
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  std::vector<unsigned long long> values;
  const std::string key = "\"wire_bytes\": ";
  for (std::size_t at = text.find(key); at != std::string::npos;
       at = text.find(key, at + 1)) {
    values.push_back(std::strtoull(text.c_str() + at + key.size(), nullptr,
                                   10));
  }
  return values;
}

int check(const std::string& path) {
  const std::vector<unsigned long long> baseline = baseline_wire_bytes(path);
  if (baseline.size() != 4) {
    std::fprintf(stderr, "baseline %s malformed: %zu wire_bytes entries\n",
                 path.c_str(), baseline.size());
    return 1;
  }
  const std::vector<Leg> legs = measure();
  int rc = 0;
  for (std::size_t i = 0; i < legs.size(); ++i) {
    // Only the codec-on legs gate: the off legs are the paper-model wire,
    // pinned exactly by cluster_exchange_test already.
    if (std::string(legs[i].codec) != "on") continue;
    const double measured = static_cast<double>(legs[i].stats.bytes_sent);
    const double allowed = static_cast<double>(baseline[i]) * 1.05;
    if (measured > allowed) {
      std::fprintf(stderr,
                   "%s codec-on wire bytes regressed >5%%: %.0f vs "
                   "baseline %llu\n",
                   legs[i].transport, measured, baseline[i]);
      rc = 1;
    }
  }
  if (rc == 0) std::printf("wire bytes within 5%% of %s\n", path.c_str());
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_wire.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      return check(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
      continue;
    }
  }
  write_json(measure(), out);
  return 0;
}
