// Table 2: measured disk-index utilization at the capacity-scaling
// trigger, per bucket size — the paper's counter-array simulation
// protocol (Section 4.2), 50 runs per bucket size in the paper.
//
// Scale note: the paper simulates a fixed 512 GB index, so the bucket
// count 2^n shrinks as the bucket size grows (2^30 at 0.5 KiB .. 2^23 at
// 64 KiB). This bench keeps the same protocol at 1/256 of that size
// (2^22 .. 2^15 buckets) so the whole table runs in seconds; the smaller
// bucket count biases eta upward by a few points (fewer three-adjacent
// windows to trigger on), which the comparison columns make visible.
//
// Paper values:
//   bucket  eta(avg)  rho     n3    n4      bucket  eta(avg)  rho     n3  n4
//   0.5KB   41.45%    0.068%  147   0       8KB     84.23%    0.15%   83  0
//   1KB     56.79%    0.075%  124   0       16KB    88.25%    0.16%   78  0
//   2KB     68.04%    0.088%  106   0       32KB    92.14%    0.20%   67  0
//   4KB     77.58%    0.13%   97    0       64KB    94.43%    0.21%   62  0
#include <benchmark/benchmark.h>

#include <cstdio>

#include "index/utilization.hpp"

namespace {

constexpr unsigned kRuns = 10;

struct Table2Row {
  double bucket_kib;
  unsigned prefix_bits;  // fixed-size index: fewer, larger buckets
  std::uint64_t bucket_capacity;
  double paper_eta_avg;
};

constexpr Table2Row kRows[] = {
    {0.5, 22, 20, 0.4145},  {1, 21, 40, 0.5679},
    {2, 20, 80, 0.6804},    {4, 19, 160, 0.7758},
    {8, 18, 320, 0.8423},   {16, 17, 640, 0.8825},
    {32, 16, 1280, 0.9214}, {64, 15, 2560, 0.9443},
};

void BM_Table2_Utilization(benchmark::State& state) {
  const Table2Row& row = kRows[state.range(0)];
  debar::index::UtilizationSummary summary;
  for (auto _ : state) {
    summary = debar::index::run_utilization_trials(
        {.prefix_bits = row.prefix_bits,
         .bucket_capacity = row.bucket_capacity,
         .seed = 20090105},
        kRuns);
    benchmark::DoNotOptimize(summary);
  }
  state.counters["bucket_KiB"] = row.bucket_kib;
  state.counters["eta_avg_pct"] = summary.eta_avg * 100.0;
  state.counters["paper_eta_pct"] = row.paper_eta_avg * 100.0;
  state.counters["rho_pct"] = summary.rho_avg * 100.0;
  state.counters["n3"] = static_cast<double>(summary.n3);
  state.counters["n4"] = static_cast<double>(summary.n4);
}
BENCHMARK(BM_Table2_Utilization)->DenseRange(0, 7)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void print_table() {
  std::printf("\n=== Table 2: measured disk index utilization "
              "(fixed index size, %u runs per bucket size) ===\n", kRuns);
  std::printf("bucket | eta(min) | eta(max) | eta(avg) | paper avg | "
              "rho     | n3  | n4\n");
  std::printf("-------+----------+----------+----------+-----------+"
              "---------+-----+---\n");
  for (std::size_t i = 0; i < std::size(kRows); ++i) {
    const Table2Row& row = kRows[i];
    const auto summary = debar::index::run_utilization_trials(
        {.prefix_bits = row.prefix_bits,
         .bucket_capacity = row.bucket_capacity,
         .seed = 20090105},
        kRuns);
    std::printf("%4.1fKB | %7.2f%% | %7.2f%% | %7.2f%% | %8.2f%% | "
                "%6.3f%% | %3llu | %llu\n",
                row.bucket_kib, summary.eta_min * 100.0,
                summary.eta_max * 100.0, summary.eta_avg * 100.0,
                row.paper_eta_avg * 100.0, summary.rho_avg * 100.0,
                static_cast<unsigned long long>(summary.n3),
                static_cast<unsigned long long>(summary.n4));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
