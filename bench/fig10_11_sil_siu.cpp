// Figures 10 & 11: SIL / SIU cost vs disk index size, and the lookup /
// update rates vs the Venti-style random baseline.
//
//   Fig 10: SIL and SIU wall time for 32..512 GB indexes.
//   Fig 11: fingerprints/s for SIL/SIU with 1/2/3 GB index caches,
//           against random on-disk lookup/update.
//
// Method: the real DiskIndex bulk operations execute over an in-memory
// device whose DiskModel transfer rate is scaled so that streaming the
// small physical structure charges exactly the time the paper's 200 MB/s
// RAID would charge for the full-size index (sim::DiskProfile::scaled_to).
// The fingerprint load is scaled by the same factor, so rates
// (fingerprints per modeled second) are directly comparable to the paper.
//
// Paper reference points: SIL 2.53 min @32 GB -> 38.98 min @512 GB; SIU
// 6.16 -> 97.07 min; SIL-3GB @32 GB ~917 kfp/s; SIU-3GB ~376 kfp/s;
// SIL-1GB @512 GB ~19.7 kfp/s; SIU-1GB ~7.9 kfp/s; random lookup ~522/s,
// random update ~270/s.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "baseline/venti_store.hpp"
#include "common/sha1.hpp"
#include "index/disk_index.hpp"
#include "sim/disk_model.hpp"
#include "storage/block_device.hpp"

namespace {

using namespace debar;

// Physical structure: 2^12 buckets x 8 KiB = 32 MiB; modeled sizes are
// multiples of 32 GiB. Fingerprint loads follow the same 1/1024 scale:
// the paper's 1 GB cache holds ~44M fingerprints -> 43K here.
constexpr unsigned kActualPrefixBits = 12;
constexpr std::uint64_t kActualBytes =
    (std::uint64_t{1} << kActualPrefixBits) * 16 * kIndexBlockSize;
constexpr double kScale =
    static_cast<double>(32 * GiB) / static_cast<double>(kActualBytes);
constexpr std::uint64_t kFpsPerGbCache =
    static_cast<std::uint64_t>(44.0e6 / kScale);  // ~43k

struct Setup {
  sim::SimClock clock;
  std::unique_ptr<sim::DiskModel> model;
  std::unique_ptr<index::DiskIndex> index;
};

/// Build an index whose modeled size is `modeled_gib` GiB, pre-loaded to
/// ~50% utilization so SIL has something to find.
Setup make_scaled_index(unsigned modeled_gib) {
  Setup s;
  const std::uint64_t modeled_bytes = std::uint64_t{modeled_gib} * GiB;
  s.model = std::make_unique<sim::DiskModel>(
      sim::DiskProfile::PaperRaid().scaled_to(modeled_bytes, kActualBytes),
      &s.clock);
  auto device = std::make_unique<storage::MemBlockDevice>();
  device->attach_model(s.model.get());
  auto idx = index::DiskIndex::create(
      std::move(device),
      {.prefix_bits = kActualPrefixBits, .blocks_per_bucket = 16});
  s.index = std::make_unique<index::DiskIndex>(std::move(idx).value());

  std::vector<IndexEntry> preload;
  const std::uint64_t count = s.index->params().entry_capacity() / 2;
  preload.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    preload.push_back({Sha1::hash_counter(i), ContainerId{i + 1}});
  }
  std::sort(preload.begin(), preload.end(),
            [](const IndexEntry& a, const IndexEntry& b) { return a.fp < b.fp; });
  const Status st =
      s.index->bulk_insert(std::span<const IndexEntry>(preload), 1024);
  if (!st.ok()) {
    std::fprintf(stderr, "preload failed: %s\n", st.to_string().c_str());
    std::exit(1);
  }
  s.clock.reset();
  return s;
}

std::vector<Fingerprint> cache_load(unsigned cache_gb, std::uint64_t base) {
  std::vector<Fingerprint> fps;
  const std::uint64_t n = cache_gb * kFpsPerGbCache;
  fps.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    fps.push_back(Sha1::hash_counter(base + i));
  }
  std::sort(fps.begin(), fps.end());
  return fps;
}

struct Fig10Row {
  unsigned index_gb;
  double sil_minutes;
  double siu_minutes;
  double sil_fps[3];  // 1/2/3 GB cache, fingerprints per modeled second
  double siu_fps[3];
};

Fig10Row measure(unsigned index_gb) {
  Fig10Row row{};
  row.index_gb = index_gb;
  const double gb_factor = index_gb / 32.0;

  for (unsigned cache_gb = 1; cache_gb <= 3; ++cache_gb) {
    // --- SIL: lookups for cache_gb worth of fingerprints (half hit). ---
    Setup s = make_scaled_index(index_gb);
    const auto queries = cache_load(
        cache_gb, s.index->params().entry_capacity() / 4);  // mixed hit/miss
    std::uint64_t found = 0;
    const Status sil = s.index->bulk_lookup(
        std::span<const Fingerprint>(queries),
        [&](std::size_t, ContainerId) { ++found; }, 1024);
    if (!sil.ok()) std::exit(2);
    const double sil_seconds = s.clock.seconds();
    if (cache_gb == 1) row.sil_minutes = sil_seconds / 60.0;
    // Rates are reported at paper scale: paper-fingerprints / second.
    row.sil_fps[cache_gb - 1] =
        static_cast<double>(queries.size()) * kScale / sil_seconds;

    // --- SIU: insert cache_gb worth of fresh fingerprints. ---
    Setup u = make_scaled_index(index_gb);
    std::vector<IndexEntry> entries;
    const auto fresh = cache_load(cache_gb, 1'000'000'000ULL);
    entries.reserve(fresh.size());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      entries.push_back({fresh[i], ContainerId{i + 1}});
    }
    const Status siu =
        u.index->bulk_insert(std::span<const IndexEntry>(entries), 1024);
    if (siu.code() == Errc::kIoError) std::exit(3);
    const double siu_seconds = u.clock.seconds();
    if (cache_gb == 1) row.siu_minutes = siu_seconds / 60.0;
    row.siu_fps[cache_gb - 1] =
        static_cast<double>(entries.size()) * kScale / siu_seconds;
  }
  (void)gb_factor;
  return row;
}

const unsigned kSizes[] = {32, 64, 128, 256, 512};

void print_tables() {
  std::printf("\n(physical structure %.0f MiB, modeled via rate-scaled "
              "device; rates at paper scale)\n",
              static_cast<double>(kActualBytes) / (1 << 20));

  std::vector<Fig10Row> rows;
  for (const unsigned gb : kSizes) rows.push_back(measure(gb));

  std::printf("\n=== Figure 10: SIL / SIU time vs index size ===\n");
  std::printf("index (GB) | SIL (min) | paper | SIU (min) | paper\n");
  const double paper_sil[] = {2.53, 4.9, 9.8, 19.5, 38.98};
  const double paper_siu[] = {6.16, 12.2, 24.4, 48.8, 97.07};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf("%10u | %9.2f | %5.2f | %9.2f | %5.2f\n", rows[i].index_gb,
                rows[i].sil_minutes, paper_sil[i], rows[i].siu_minutes,
                paper_siu[i]);
  }

  std::printf("\n=== Figure 11: lookup/update rates (fingerprints/s, log "
              "scale in the paper) ===\n");
  std::printf("index (GB) | SIL-1GB | SIL-2GB | SIL-3GB | SIU-1GB | "
              "SIU-2GB | SIU-3GB | rnd-lookup | rnd-update\n");
  const double rnd_lookup = baseline::VentiStore::modeled_lookups_per_second(
      sim::DiskProfile::PaperRaid(), 512);
  const double rnd_update = baseline::VentiStore::modeled_updates_per_second(
      sim::DiskProfile::PaperRaid(), 512);
  for (const Fig10Row& row : rows) {
    std::printf("%10u | %7.0f | %7.0f | %7.0f | %7.0f | %7.0f | %7.0f | "
                "%10.0f | %10.0f\n",
                row.index_gb, row.sil_fps[0], row.sil_fps[1], row.sil_fps[2],
                row.siu_fps[0], row.siu_fps[1], row.siu_fps[2], rnd_lookup,
                rnd_update);
  }
  std::printf("paper anchors: SIL-3GB@32GB ~917k, SIU-3GB@32GB ~376k, "
              "SIL-1GB@512GB ~19.7k, SIU-1GB@512GB ~7.9k, random ~522/~270\n\n");
}

void BM_Fig10_SilSiu(benchmark::State& state) {
  const unsigned gb = kSizes[state.range(0)];
  Fig10Row row{};
  for (auto _ : state) {
    row = measure(gb);
    benchmark::DoNotOptimize(row);
  }
  state.counters["index_GB"] = gb;
  state.counters["SIL_min"] = row.sil_minutes;
  state.counters["SIU_min"] = row.siu_minutes;
  state.counters["SIL1GB_fps"] = row.sil_fps[0];
  state.counters["SIU1GB_fps"] = row.siu_fps[0];
}
BENCHMARK(BM_Fig10_SilSiu)->DenseRange(0, 4)->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
