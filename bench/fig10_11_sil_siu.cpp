// Figures 10 & 11: SIL / SIU cost vs disk index size, and the lookup /
// update rates vs the Venti-style random baseline.
//
//   Fig 10: SIL and SIU wall time for 32..512 GB indexes.
//   Fig 11: fingerprints/s for SIL/SIU with 1/2/3 GB index caches,
//           against random on-disk lookup/update.
//
// Method: the real DiskIndex bulk operations execute over an in-memory
// device whose DiskModel transfer rate is scaled so that streaming the
// small physical structure charges exactly the time the paper's 200 MB/s
// RAID would charge for the full-size index (sim::DiskProfile::scaled_to).
// The fingerprint load is scaled by the same factor, so rates
// (fingerprints per modeled second) are directly comparable to the paper.
//
// Paper reference points: SIL 2.53 min @32 GB -> 38.98 min @512 GB; SIU
// 6.16 -> 97.07 min; SIL-3GB @32 GB ~917 kfp/s; SIU-3GB ~376 kfp/s;
// SIL-1GB @512 GB ~19.7 kfp/s; SIU-1GB ~7.9 kfp/s; random lookup ~522/s,
// random update ~270/s.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string_view>
#include <vector>

#include "baseline/venti_store.hpp"
#include "common/sha1.hpp"
#include "index/disk_index.hpp"
#include "sim/disk_model.hpp"
#include "storage/block_device.hpp"

namespace {

using namespace debar;

// Physical structure: 2^12 buckets x 8 KiB = 32 MiB; modeled sizes are
// multiples of 32 GiB. Fingerprint loads follow the same 1/1024 scale:
// the paper's 1 GB cache holds ~44M fingerprints -> 43K here.
constexpr unsigned kActualPrefixBits = 12;
constexpr std::uint64_t kActualBytes =
    (std::uint64_t{1} << kActualPrefixBits) * 16 * kIndexBlockSize;
constexpr double kScale =
    static_cast<double>(32 * GiB) / static_cast<double>(kActualBytes);
constexpr std::uint64_t kFpsPerGbCache =
    static_cast<std::uint64_t>(44.0e6 / kScale);  // ~43k

struct Setup {
  sim::SimClock clock;
  std::unique_ptr<sim::DiskModel> model;
  std::unique_ptr<index::DiskIndex> index;
};

/// Build an index whose modeled size is `modeled_gib` GiB, pre-loaded to
/// ~50% utilization so SIL has something to find.
Setup make_scaled_index(unsigned modeled_gib) {
  Setup s;
  const std::uint64_t modeled_bytes = std::uint64_t{modeled_gib} * GiB;
  s.model = std::make_unique<sim::DiskModel>(
      sim::DiskProfile::PaperRaid().scaled_to(modeled_bytes, kActualBytes),
      &s.clock);
  auto device = std::make_unique<storage::MemBlockDevice>();
  device->attach_model(s.model.get());
  auto idx = index::DiskIndex::create(
      std::move(device),
      {.prefix_bits = kActualPrefixBits, .blocks_per_bucket = 16});
  s.index = std::make_unique<index::DiskIndex>(std::move(idx).value());

  std::vector<IndexEntry> preload;
  const std::uint64_t count = s.index->params().entry_capacity() / 2;
  preload.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    preload.push_back({Sha1::hash_counter(i), ContainerId{i + 1}});
  }
  std::sort(preload.begin(), preload.end(),
            [](const IndexEntry& a, const IndexEntry& b) { return a.fp < b.fp; });
  const Status st =
      s.index->bulk_insert(std::span<const IndexEntry>(preload), 1024);
  if (!st.ok()) {
    std::fprintf(stderr, "preload failed: %s\n", st.to_string().c_str());
    std::exit(1);
  }
  s.clock.reset();
  return s;
}

std::vector<Fingerprint> cache_load(unsigned cache_gb, std::uint64_t base) {
  std::vector<Fingerprint> fps;
  const std::uint64_t n = cache_gb * kFpsPerGbCache;
  fps.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    fps.push_back(Sha1::hash_counter(base + i));
  }
  std::sort(fps.begin(), fps.end());
  return fps;
}

struct Fig10Row {
  unsigned index_gb;
  double sil_minutes;
  double siu_minutes;
  double sil_fps[3];  // 1/2/3 GB cache, fingerprints per modeled second
  double siu_fps[3];
};

Fig10Row measure(unsigned index_gb) {
  Fig10Row row{};
  row.index_gb = index_gb;
  const double gb_factor = index_gb / 32.0;

  for (unsigned cache_gb = 1; cache_gb <= 3; ++cache_gb) {
    // --- SIL: lookups for cache_gb worth of fingerprints (half hit). ---
    Setup s = make_scaled_index(index_gb);
    const auto queries = cache_load(
        cache_gb, s.index->params().entry_capacity() / 4);  // mixed hit/miss
    std::uint64_t found = 0;
    const Status sil = s.index->bulk_lookup(
        std::span<const Fingerprint>(queries),
        [&](std::size_t, ContainerId) { ++found; }, 1024);
    if (!sil.ok()) std::exit(2);
    const double sil_seconds = s.clock.seconds();
    if (cache_gb == 1) row.sil_minutes = sil_seconds / 60.0;
    // Rates are reported at paper scale: paper-fingerprints / second.
    row.sil_fps[cache_gb - 1] =
        static_cast<double>(queries.size()) * kScale / sil_seconds;

    // --- SIU: insert cache_gb worth of fresh fingerprints. ---
    Setup u = make_scaled_index(index_gb);
    std::vector<IndexEntry> entries;
    const auto fresh = cache_load(cache_gb, 1'000'000'000ULL);
    entries.reserve(fresh.size());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      entries.push_back({fresh[i], ContainerId{i + 1}});
    }
    const Status siu =
        u.index->bulk_insert(std::span<const IndexEntry>(entries), 1024);
    if (siu.code() == Errc::kIoError) std::exit(3);
    const double siu_seconds = u.clock.seconds();
    if (cache_gb == 1) row.siu_minutes = siu_seconds / 60.0;
    row.siu_fps[cache_gb - 1] =
        static_cast<double>(entries.size()) * kScale / siu_seconds;
  }
  (void)gb_factor;
  return row;
}

const unsigned kSizes[] = {32, 64, 128, 256, 512};

// ---------------------------------------------------------------------------
// --threads axis: modeled scaling of the parallel dedup-2 pipeline.
//
// Wall-clock scaling is meaningless on a small CI container, so the axis
// reports modeled striped critical-path time: the bucket spans of one
// SIL/SIU scan are split into `threads` contiguous shards — the exact
// plan DiskIndex::bulk_lookup_sharded uses — and each shard's access
// sequence is replayed on its own DiskModel arm. The phase finishes when
// the slowest arm does, so reported seconds = max over arms. threads=1
// reproduces the serial replay bit-for-bit (same spans, same accesses),
// matching the byte-identity contract of the threaded implementation.
// ---------------------------------------------------------------------------

/// Modeled seconds for one full index scan striped over `threads` arms.
/// `rmw` charges each span twice (read-modify-write), as SIU does.
double striped_scan_seconds(unsigned index_gb, std::size_t threads,
                            bool rmw) {
  const index::DiskIndexParams params{.prefix_bits = kActualPrefixBits,
                                      .blocks_per_bucket = 16};
  const std::uint64_t nb = params.bucket_count();
  const std::uint64_t bb = params.bucket_bytes();
  const std::uint64_t io = 1024;  // io_buckets used by measure()
  const std::uint64_t spans = (nb + io - 1) / io;
  const std::size_t shards =
      std::min<std::size_t>(threads, static_cast<std::size_t>(spans));
  const std::uint64_t modeled_bytes = std::uint64_t{index_gb} * GiB;

  double worst = 0.0;
  for (std::size_t shard = 0; shard < std::max<std::size_t>(shards, 1);
       ++shard) {
    const std::uint64_t first = spans * shard / shards;
    const std::uint64_t end = spans * (shard + 1) / shards;
    sim::SimClock clock;
    sim::DiskModel arm(
        sim::DiskProfile::PaperRaid().scaled_to(modeled_bytes, kActualBytes),
        &clock);
    for (std::uint64_t s = first; s < end; ++s) {
      const std::uint64_t a = s * io;
      const std::uint64_t lo = a == 0 ? 0 : a - 1;
      const std::uint64_t hi = std::min(nb, a + io + 1);
      arm.access(lo * bb, (hi - lo) * bb);
      if (rmw) arm.access(lo * bb, (hi - lo) * bb);
    }
    worst = std::max(worst, clock.seconds());
  }
  return worst;
}

void print_thread_scaling(std::size_t max_threads) {
  std::printf("\n=== Parallel dedup-2: modeled SIL+SIU scaling "
              "(--threads axis) ===\n");
  std::printf("striped critical path over contiguous span shards; output "
              "bytes are thread-count-invariant (see test_parallel)\n");
  std::printf("index (GB) | threads | SIL (min) | SIU (min) | SIL+SIU | "
              "speedup\n");
  for (const unsigned gb : {32u, 512u}) {
    const double base = striped_scan_seconds(gb, 1, false) +
                        striped_scan_seconds(gb, 1, true);
    for (std::size_t t = 1; t <= max_threads; t *= 2) {
      const double sil = striped_scan_seconds(gb, t, false);
      const double siu = striped_scan_seconds(gb, t, true);
      std::printf("%10u | %7zu | %9.2f | %9.2f | %7.2f | %6.2fx\n", gb, t,
                  sil / 60.0, siu / 60.0, (sil + siu) / 60.0,
                  base / (sil + siu));
    }
  }
  std::printf("(shards cap at the span count: %llu spans at io_buckets="
              "1024)\n",
              static_cast<unsigned long long>(
                  ((std::uint64_t{1} << kActualPrefixBits) + 1023) / 1024));
}

void print_tables() {
  std::printf("\n(physical structure %.0f MiB, modeled via rate-scaled "
              "device; rates at paper scale)\n",
              static_cast<double>(kActualBytes) / (1 << 20));

  std::vector<Fig10Row> rows;
  for (const unsigned gb : kSizes) rows.push_back(measure(gb));

  std::printf("\n=== Figure 10: SIL / SIU time vs index size ===\n");
  std::printf("index (GB) | SIL (min) | paper | SIU (min) | paper\n");
  const double paper_sil[] = {2.53, 4.9, 9.8, 19.5, 38.98};
  const double paper_siu[] = {6.16, 12.2, 24.4, 48.8, 97.07};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::printf("%10u | %9.2f | %5.2f | %9.2f | %5.2f\n", rows[i].index_gb,
                rows[i].sil_minutes, paper_sil[i], rows[i].siu_minutes,
                paper_siu[i]);
  }

  std::printf("\n=== Figure 11: lookup/update rates (fingerprints/s, log "
              "scale in the paper) ===\n");
  std::printf("index (GB) | SIL-1GB | SIL-2GB | SIL-3GB | SIU-1GB | "
              "SIU-2GB | SIU-3GB | rnd-lookup | rnd-update\n");
  const double rnd_lookup = baseline::VentiStore::modeled_lookups_per_second(
      sim::DiskProfile::PaperRaid(), 512);
  const double rnd_update = baseline::VentiStore::modeled_updates_per_second(
      sim::DiskProfile::PaperRaid(), 512);
  for (const Fig10Row& row : rows) {
    std::printf("%10u | %7.0f | %7.0f | %7.0f | %7.0f | %7.0f | %7.0f | "
                "%10.0f | %10.0f\n",
                row.index_gb, row.sil_fps[0], row.sil_fps[1], row.sil_fps[2],
                row.siu_fps[0], row.siu_fps[1], row.siu_fps[2], rnd_lookup,
                rnd_update);
  }
  std::printf("paper anchors: SIL-3GB@32GB ~917k, SIU-3GB@32GB ~376k, "
              "SIL-1GB@512GB ~19.7k, SIU-1GB@512GB ~7.9k, random ~522/~270\n\n");
}

void BM_Fig10_SilSiu(benchmark::State& state) {
  const unsigned gb = kSizes[state.range(0)];
  Fig10Row row{};
  for (auto _ : state) {
    row = measure(gb);
    benchmark::DoNotOptimize(row);
  }
  state.counters["index_GB"] = gb;
  state.counters["SIL_min"] = row.sil_minutes;
  state.counters["SIU_min"] = row.siu_minutes;
  state.counters["SIL1GB_fps"] = row.sil_fps[0];
  state.counters["SIU1GB_fps"] = row.siu_fps[0];
}
BENCHMARK(BM_Fig10_SilSiu)->DenseRange(0, 4)->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip `--threads N` (ours, not google-benchmark's) before Initialize.
  std::size_t max_threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--threads" && i + 1 < argc) {
      max_threads = std::max<std::size_t>(1, std::strtoull(argv[i + 1],
                                                           nullptr, 10));
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      break;
    }
  }
  print_tables();
  print_thread_scaling(max_threads);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
