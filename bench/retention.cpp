// Retention / restore-locality trajectory (DESIGN.md §5k): an
// incremental chain ages until the newest versions reference chunks from
// a dozen generations of containers, then a MaintenanceJob round expires
// the old versions and re-sequences the survivors. Emits
// BENCH_retention.json: modeled restore throughput per version age,
// before and after the round.
//
//   bench_retention [--out <path>]     measure and write the JSON
//   bench_retention --check <path>     re-measure and compare against a
//                                      checked-in baseline: fails if the
//                                      post-round aged throughput dropped
//                                      below fresh/1.25 or regressed >5%
//
// Restore time is charged on the paper's chunk-log disk model — one
// positioning cost per container switch plus sequential transfer — so
// the measurement is deterministic (a property of chunk placement, not
// of the CI runner) and the gate runs in every build configuration.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/sha1.hpp"
#include "core/backup_engine.hpp"
#include "core/maintenance.hpp"
#include "sim/disk_model.hpp"

namespace {

using namespace debar;

constexpr unsigned kVersions = 12;
constexpr std::uint64_t kChunksPerVersion = 2048;
constexpr std::uint32_t kChunkSize = 4096;
constexpr unsigned kRewritePeriod = 8;  // position i churns when v%8==i%8
constexpr std::uint32_t kKeepLast = 4;
constexpr double kAgedBar = 1.25;  // aged-after within 1.25x of fresh

/// The chunk at logical position `i` as of version `v`: rewritten
/// whenever v % kRewritePeriod == i % kRewritePeriod, so a mature
/// version interleaves chunks from kRewritePeriod generations and every
/// consecutive pair lands in containers written minutes apart.
Fingerprint chunk_fp(std::uint64_t i, unsigned v) {
  unsigned gen = 1;
  for (unsigned g = 2; g <= v; ++g) {
    if (g % kRewritePeriod == i % kRewritePeriod) gen = g;
  }
  return Sha1::hash_counter(i * 1000003 + gen);
}

struct VersionCost {
  unsigned version = 0;
  std::uint64_t container_switches = 0;
  double seconds = 0;
  double mbps = 0;
};

/// Modeled restore cost of one version: walk its chunk sequence through
/// the index, charge one positioning cost per container switch and
/// sequential transfer for the bytes.
VersionCost restore_cost(core::BackupServer& server, unsigned v) {
  const sim::DiskProfile disk = sim::DiskProfile::PaperChunkLog();
  VersionCost cost;
  cost.version = v;
  ContainerId prev{};
  bool first = true;
  for (std::uint64_t i = 0; i < kChunksPerVersion; ++i) {
    const auto cid = server.chunk_store().locate(chunk_fp(i, v));
    if (!cid.ok()) {
      std::fprintf(stderr, "v%u chunk %llu unlocatable: %s\n", v,
                   static_cast<unsigned long long>(i),
                   cid.error().to_string().c_str());
      std::exit(1);
    }
    if (first || !(cid.value() == prev)) {
      ++cost.container_switches;
      prev = cid.value();
      first = false;
    }
  }
  const double bytes = static_cast<double>(kChunksPerVersion) * kChunkSize;
  cost.seconds =
      static_cast<double>(cost.container_switches) * disk.seek_seconds +
      bytes / disk.transfer_bytes_per_sec;
  cost.mbps = bytes / cost.seconds / 1e6;
  return cost;
}

struct Measurement {
  std::vector<VersionCost> before;  // v1..vN, pre-maintenance
  std::vector<VersionCost> after;   // survivors only, post-maintenance
  core::MaintenanceReport report;
  double fresh_mbps = 0;        // v1 restored off its own sequential pass
  double aged_before_mbps = 0;  // newest version, pre-round
  double aged_after_mbps = 0;   // newest version, post-round
};

Measurement measure() {
  // Four storage nodes so mature versions also scatter across nodes —
  // the locality pass's default trigger (nodes touched > 1).
  storage::ChunkRepository repository(4);
  core::Director director({.retention = {.keep_last = kKeepLast}});
  core::BackupServerConfig config;
  config.index_params = {.prefix_bits = 10, .blocks_per_bucket = 8};
  config.chunk_store.siu_threshold = 1;
  config.container_capacity = 64 * 1024;
  core::BackupServer server(0, config, &repository, &director);

  const std::uint64_t job = director.define_job("aging-chain", "d");
  for (unsigned v = 1; v <= kVersions; ++v) {
    director.set_current_day(v);
    core::FileStore& fs = server.file_store();
    fs.begin_job(job);
    fs.begin_file({.path = "tree",
                   .size = kChunksPerVersion * kChunkSize,
                   .mtime = 0,
                   .mode = 0644});
    for (std::uint64_t i = 0; i < kChunksPerVersion; ++i) {
      const Fingerprint fp = chunk_fp(i, v);
      if (fs.offer_fingerprint(fp, kChunkSize)) {
        const auto payload =
            core::BackupEngine::synthetic_payload(fp, kChunkSize);
        if (!fs.receive_chunk(fp, ByteSpan(payload.data(), payload.size()))
                 .ok()) {
          std::fprintf(stderr, "v%u receive_chunk failed\n", v);
          std::exit(1);
        }
      }
    }
    fs.end_file();
    if (!fs.end_job().ok()) std::exit(1);
    if (const auto r = server.run_dedup2(/*force_siu=*/true); !r.ok()) {
      std::fprintf(stderr, "v%u dedup-2 failed: %s\n", v,
                   r.error().to_string().c_str());
      std::exit(1);
    }
  }

  Measurement m;
  for (unsigned v = 1; v <= kVersions; ++v) {
    m.before.push_back(restore_cost(server, v));
  }
  m.fresh_mbps = m.before.front().mbps;

  core::MaintenanceJob maintenance(director, server, repository,
                                   {.container_capacity = 64 * 1024});
  if (const Status s = maintenance.execute(); !s.ok()) {
    std::fprintf(stderr, "maintenance failed: %s\n", s.to_string().c_str());
    std::exit(1);
  }
  m.report = maintenance.report();
  if (m.report.versions_expired != kVersions - kKeepLast) {
    std::fprintf(stderr, "expected %u expired versions, got %llu\n",
                 kVersions - kKeepLast,
                 static_cast<unsigned long long>(m.report.versions_expired));
    std::exit(1);
  }

  for (unsigned v = kVersions - kKeepLast + 1; v <= kVersions; ++v) {
    m.after.push_back(restore_cost(server, v));
  }
  // The gated pair is the NEWEST version — the restore-critical one, and
  // the one the locality pass re-sequences first (older survivors share
  // chunks with it, so they improve but keep some interleaving; the JSON
  // carries their full curves).
  m.aged_before_mbps = m.before.back().mbps;
  m.aged_after_mbps = m.after.back().mbps;

  std::printf("fresh (v1, sequential): %.1f MB/s\n", m.fresh_mbps);
  std::printf("aged before round (newest version): %.1f MB/s\n",
              m.aged_before_mbps);
  std::printf("aged after round  (newest version): %.1f MB/s "
              "(bar: >= fresh / %.2f)\n",
              m.aged_after_mbps, kAgedBar);
  std::printf("round: expired %llu, rewrote %llu versions "
              "(%llu chunks), reclaimed %.1f MiB\n",
              static_cast<unsigned long long>(m.report.versions_expired),
              static_cast<unsigned long long>(m.report.versions_rewritten),
              static_cast<unsigned long long>(m.report.chunks_rewritten),
              static_cast<double>(m.report.bytes_reclaimed) / (1 << 20));
  if (m.aged_after_mbps * kAgedBar < m.fresh_mbps) {
    std::fprintf(stderr,
                 "aged restore throughput below the acceptance bar: "
                 "%.1f MB/s vs fresh %.1f MB/s\n",
                 m.aged_after_mbps, m.fresh_mbps);
    std::exit(1);
  }
  return m;
}

void write_json(const Measurement& m, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"retention\",\n");
  std::fprintf(f,
               "  \"workload\": {\"versions\": %u, \"chunks_per_version\": "
               "%llu, \"chunk_bytes\": %u, \"rewrite_period\": %u, "
               "\"keep_last\": %u},\n",
               kVersions,
               static_cast<unsigned long long>(kChunksPerVersion),
               kChunkSize, kRewritePeriod, kKeepLast);
  const auto dump = [&](const char* key, const std::vector<VersionCost>& vs,
                        const char* tail) {
    std::fprintf(f, "  \"%s\": [\n", key);
    for (std::size_t i = 0; i < vs.size(); ++i) {
      std::fprintf(f,
                   "    {\"version\": %u, \"container_switches\": %llu, "
                   "\"seconds\": %.4f, \"mbps\": %.1f}%s\n",
                   vs[i].version,
                   static_cast<unsigned long long>(vs[i].container_switches),
                   vs[i].seconds, vs[i].mbps,
                   i + 1 < vs.size() ? "," : "");
    }
    std::fprintf(f, "  ]%s\n", tail);
  };
  dump("before", m.before, ",");
  dump("after", m.after, ",");
  std::fprintf(f,
               "  \"round\": {\"versions_expired\": %llu, "
               "\"versions_rewritten\": %llu, \"chunks_rewritten\": %llu, "
               "\"bytes_reclaimed\": %llu},\n",
               static_cast<unsigned long long>(m.report.versions_expired),
               static_cast<unsigned long long>(m.report.versions_rewritten),
               static_cast<unsigned long long>(m.report.chunks_rewritten),
               static_cast<unsigned long long>(m.report.bytes_reclaimed));
  std::fprintf(f,
               "  \"summary\": {\"fresh_mbps\": %.1f, "
               "\"aged_before_mbps\": %.1f, \"aged_after_mbps\": %.1f}\n",
               m.fresh_mbps, m.aged_before_mbps, m.aged_after_mbps);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

/// Pull `"aged_after_mbps": N` out of the baseline (the gated quantity).
double baseline_aged_after(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "baseline %s missing\n", path.c_str());
    std::exit(1);
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const std::string key = "\"aged_after_mbps\": ";
  const std::size_t at = text.find(key);
  if (at == std::string::npos) {
    std::fprintf(stderr, "baseline %s malformed\n", path.c_str());
    std::exit(1);
  }
  return std::strtod(text.c_str() + at + key.size(), nullptr);
}

int check(const std::string& path) {
  const double baseline = baseline_aged_after(path);
  const Measurement m = measure();
  if (m.aged_after_mbps < baseline * 0.95) {
    std::fprintf(stderr,
                 "aged restore throughput regressed >5%%: %.1f MB/s vs "
                 "baseline %.1f MB/s\n",
                 m.aged_after_mbps, baseline);
    return 1;
  }
  std::printf("aged restore throughput within 5%% of %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_retention.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      return check(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
      continue;
    }
  }
  write_json(measure(), out);
  return 0;
}
