// Table 1: calculated upper bound of Pr(D) — the probability that a
// 512 GB disk index triggers capacity scaling before reaching utilization
// eta — for bucket sizes 0.5 KiB .. 64 KiB.
//
// Paper values for comparison:
//   bucket  eta   Pr(D) <        bucket  eta   Pr(D) <
//   0.5KB   35%   1.71%          8KB     80%   1.91%
//   1KB     45%   1.02%          16KB    85%   1.93%
//   2KB     55%   1.24%          32KB    90%   2.16%
//   4KB     70%   1.59%          64KB    92%   2.08%
#include <benchmark/benchmark.h>

#include <cstdio>

#include "index/utilization.hpp"

namespace {

struct Table1Row {
  double bucket_kib;
  unsigned prefix_bits;       // 512 GiB / bucket size
  std::uint64_t bucket_capacity;
  double eta;
  double paper_bound;
};

// 512 GiB index: 2^n = 512 GiB / bucket_bytes; b = 20 entries per 512 B.
constexpr Table1Row kRows[] = {
    {0.5, 30, 20, 0.35, 0.0171},  {1, 29, 40, 0.45, 0.0102},
    {2, 28, 80, 0.55, 0.0124},    {4, 27, 160, 0.70, 0.0159},
    {8, 26, 320, 0.80, 0.0191},   {16, 25, 640, 0.85, 0.0193},
    {32, 24, 1280, 0.90, 0.0216}, {64, 23, 2560, 0.92, 0.0208},
};

void BM_Table1_OverflowBound(benchmark::State& state) {
  const Table1Row& row = kRows[state.range(0)];
  double bound = 0;
  for (auto _ : state) {
    bound = debar::index::overflow_probability_bound(
        row.prefix_bits, row.bucket_capacity, row.eta);
    benchmark::DoNotOptimize(bound);
  }
  state.counters["bucket_KiB"] = row.bucket_kib;
  state.counters["eta_pct"] = row.eta * 100.0;
  state.counters["bound_pct"] = bound * 100.0;
  state.counters["paper_pct"] = row.paper_bound * 100.0;
}
BENCHMARK(BM_Table1_OverflowBound)->DenseRange(0, 7)->Iterations(1);

void print_table() {
  std::printf("\n=== Table 1: upper bound of Pr(D), 512 GB disk index ===\n");
  std::printf("bucket (KB) | eta    | Pr(D) <  (ours) | Pr(D) < (paper)\n");
  std::printf("------------+--------+-----------------+----------------\n");
  for (const Table1Row& row : kRows) {
    const double bound = debar::index::overflow_probability_bound(
        row.prefix_bits, row.bucket_capacity, row.eta);
    std::printf("%11.1f | %5.0f%% | %14.2f%% | %13.2f%%\n", row.bucket_kib,
                row.eta * 100.0, bound * 100.0, row.paper_bound * 100.0);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
