// Figure 14: aggregate throughput of a 16-server DEBAR cluster.
//
//   (a) write: dedup-1, dedup-2 and total aggregate throughput for total
//       index sizes 0.5 .. 8 TB, under the Section 6.2 synthetic
//       workload: 64 clients (four concurrent sessions per server, as in
//       the paper), versioned streams with ~90% duplicates of which ~30%
//       are cross-stream.
//   (b) read: aggregate restore throughput across successive versions —
//       version 1 reads fastest (fresh SISL layout), later versions
//       settle lower as cross-stream sharing spreads chunks over the
//       repository, with SISL+LPC keeping the decline bounded.
//
// Paper reference points: dedup-1 > 9 GB/s in every mode; total write
// 4.3 / 2.5 / 1.7 GB/s at 0.5 / 4 / 8 TB; reads 1620 MB/s for version 1
// settling around 1520 MB/s.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "common/sha1.hpp"
#include "core/cluster.hpp"
#include "net/transport_factory.hpp"
#include "workload/fingerprint_stream.hpp"

namespace {

using namespace debar;

constexpr unsigned kRoutingBits = 4;  // 16 servers
constexpr unsigned kPartPrefixBits = 10;
constexpr std::uint64_t kActualPartBytes =
    (std::uint64_t{1} << kPartPrefixBits) * 16 * kIndexBlockSize;
constexpr std::uint32_t kChunkSize = kExpectedChunkSize;
constexpr unsigned kVersions = 5;
// The paper's layout: 64 backup clients, four streaming concurrently to
// each of the 16 servers (via FileStore sessions).
constexpr std::size_t kClientsPerServer = 4;
constexpr std::size_t kStreams = 16 * kClientsPerServer;
constexpr std::uint64_t kChunksPerVersion = 640;  // per stream
// Total logical volume of a run; the paper's corresponding figure is
// 64 streams x 10 versions x 50 GB ~ 32 TB against 0.5..8 TB indexes;
// index sizes are scaled by the same data ratio so the index:data
// proportions (and hence the throughput shape) match the paper.
constexpr double kLogicalBytes = static_cast<double>(kVersions) * kStreams *
                                 kChunksPerVersion * kChunkSize;
constexpr double kPaperLogicalTb = 8.0;

struct WritePoint {
  double index_tb;
  double d1_gbps;
  double d2_gbps;
  double total_gbps;
};

struct ClusterRun {
  std::unique_ptr<core::Cluster> cluster;
  std::vector<std::uint64_t> jobs;
  WritePoint write;
};

/// Build a cluster, back up kVersions of 16 versioned streams, and
/// measure aggregate write throughput. `scaled_index` selects the
/// rate-scaled device (write sweeps; streaming-dominated) or the real
/// small index (read phase; random-lookup-dominated, size-independent).
ClusterRun run_write(double index_tb, bool scaled_index = true) {
  const std::uint64_t modeled_part_bytes = static_cast<std::uint64_t>(
      kLogicalBytes * (index_tb / kPaperLogicalTb) / 16.0);

  core::ClusterConfig cfg;
  cfg.routing_bits = kRoutingBits;
  cfg.repository_nodes = 16;
  cfg.server_config.index_params = {.prefix_bits = kPartPrefixBits,
                                    .blocks_per_bucket = 16};
  cfg.server_config.index_profile =
      scaled_index ? sim::DiskProfile::PaperRaid().scaled_to(
                         modeled_part_bytes, kActualPartBytes)
                   : sim::DiskProfile::PaperRaid();
  cfg.server_config.filter_params = {.hash_bits = 14, .capacity = 1 << 22};
  cfg.server_config.chunk_store.cache_params = {.hash_bits = 8,
                                                .capacity = 1 << 24};
  cfg.server_config.chunk_store.io_buckets = 256;
  cfg.server_config.chunk_store.siu_threshold = 1 << 30;  // SIU on demand

  ClusterRun run;
  run.cluster = std::make_unique<core::Cluster>(cfg);
  core::Cluster& cluster = *run.cluster;

  workload::SubspaceRegistry registry(6);  // 64 stream subspaces
  std::vector<std::unique_ptr<workload::VersionedStream>> streams;
  for (std::size_t s = 0; s < kStreams; ++s) {
    streams.push_back(std::make_unique<workload::VersionedStream>(
        &registry, workload::StreamParams{.stream_id = s,
                                          .dup_fraction = 0.9,
                                          .cross_fraction = 0.3,
                                          .seed = 1414}));
    run.jobs.push_back(
        cluster.director().define_job("c" + std::to_string(s), "stream"));
  }

  // One backup generation: four clients stream concurrently into each
  // server through interleaved sessions (stream i goes to server i/4).
  auto backup_generation = [&](unsigned v) {
    for (std::size_t srv = 0; srv < 16; ++srv) {
      core::FileStore& fs = cluster.server(srv).file_store();
      std::vector<core::FileStore::SessionId> sessions;
      std::vector<std::vector<Fingerprint>> fps;
      for (std::size_t c = 0; c < kClientsPerServer; ++c) {
        const std::size_t stream = srv * kClientsPerServer + c;
        sessions.push_back(fs.open_session(run.jobs[stream]));
        fps.push_back(streams[stream]->next_version(kChunksPerVersion));
        fs.begin_file(sessions.back(),
                      {.path = "v" + std::to_string(v),
                       .size = fps.back().size() * kChunkSize,
                       .mtime = 0,
                       .mode = 0644});
      }
      // Interleave the four clients chunk by chunk, as the wire would.
      for (std::uint64_t i = 0; i < kChunksPerVersion; ++i) {
        for (std::size_t c = 0; c < kClientsPerServer; ++c) {
          const Fingerprint& fp = fps[c][i];
          if (fs.offer_fingerprint(sessions[c], fp, kChunkSize)) {
            const auto payload =
                core::BackupEngine::synthetic_payload(fp, kChunkSize);
            if (!fs.receive_chunk(sessions[c], fp,
                                  ByteSpan(payload.data(), payload.size()))
                     .ok()) {
              std::exit(1);
            }
          }
        }
      }
      for (std::size_t c = 0; c < kClientsPerServer; ++c) {
        fs.end_file(sessions[c]);
        if (!fs.close_session(sessions[c]).ok()) std::exit(1);
      }
    }
  };

  // Warm-up version: the paper's synthetic streams are ~90% duplicate in
  // *every* measured version (duplicates reference earlier run modes); a
  // v0 pass puts the system in that steady state before the clocks start.
  backup_generation(0);
  if (!cluster.run_dedup2(/*force_siu=*/true).ok()) std::exit(1);
  cluster.reset_clocks();

  double logical = 0, d1_seconds = 0, d2_seconds = 0;
  for (unsigned v = 1; v <= kVersions; ++v) {
    // ---- dedup-1 on all 16 servers (parallel: elapsed = max delta). ----
    std::vector<core::ServerClocks> before(16);
    for (std::size_t s = 0; s < 16; ++s) before[s] = cluster.server(s).clocks();

    backup_generation(v);
    logical += static_cast<double>(kStreams) * kChunksPerVersion * kChunkSize;
    double d1_elapsed = 0;
    for (std::size_t s = 0; s < 16; ++s) {
      const core::ServerClocks now = cluster.server(s).clocks();
      d1_elapsed = std::max(
          d1_elapsed, std::max(now.nic - before[s].nic,
                               now.log_disk - before[s].log_disk));
    }
    d1_seconds += d1_elapsed;

    // ---- dedup-2 every other version ("one PSIU serving two PSIL"). ----
    const auto result = cluster.run_dedup2(/*force_siu=*/v % 2 == 0);
    if (!result.ok()) {
      std::fprintf(stderr, "dedup-2 failed: %s\n",
                   result.error().to_string().c_str());
      std::exit(1);
    }
    d2_seconds += result.value().total_seconds();
  }

  run.write.index_tb = index_tb;
  run.write.d1_gbps = logical / d1_seconds / 1e9;
  run.write.d2_gbps = logical / d2_seconds / 1e9;
  run.write.total_gbps = logical / (d1_seconds + d2_seconds) / 1e9;
  return run;
}

/// Restore every version through the server that backed it up; aggregate
/// read throughput per version = bytes / max over components.
std::vector<double> run_read(ClusterRun& run) {
  core::Cluster& cluster = *run.cluster;
  std::vector<double> per_version;
  for (unsigned v = 1; v <= kVersions; ++v) {
    std::vector<core::ServerClocks> before(16);
    for (std::size_t s = 0; s < 16; ++s) before[s] = cluster.server(s).clocks();
    const double repo_before = cluster.repository().total_node_seconds();

    double bytes = 0;
    for (std::size_t stream = 0; stream < kStreams; ++stream) {
      const auto restored =
          cluster.restore(run.jobs[stream], v, stream / kClientsPerServer);
      if (!restored.ok()) {
        std::fprintf(stderr, "restore %zu/v%u failed: %s\n", stream, v,
                     restored.error().to_string().c_str());
        std::exit(1);
      }
      for (const auto& f : restored.value().files) {
        bytes += static_cast<double>(f.content.size());
      }
    }
    double server_elapsed = 0;
    for (std::size_t s = 0; s < 16; ++s) {
      const core::ServerClocks now = cluster.server(s).clocks();
      server_elapsed =
          std::max(server_elapsed,
                   std::max(now.index_disk - before[s].index_disk,
                            now.nic - before[s].nic));
    }
    // At bench scale a version only fetches a few hundred containers, so
    // the busiest-node time is dominated by placement luck; the balanced
    // estimate (total node time / node count) is the stable aggregate.
    const double repo_elapsed =
        (cluster.repository().total_node_seconds() - repo_before) /
        static_cast<double>(cluster.repository().node_count());
    per_version.push_back(bytes / std::max(server_elapsed, repo_elapsed) /
                          1e6);
  }
  return per_version;
}

const double kSizesTb[] = {0.5, 1, 2, 4, 8};

void print_tables(const char* wire_json_path) {
  std::printf("\n=== Figure 14(a): aggregate write throughput, 16 servers "
              "(GB/s, modeled) ===\n");
  std::printf("index (TB) | dedup-1 | dedup-2 | total\n");
  ClusterRun read_run;  // keep the 2 TB run alive for the read phase
  for (const double tb : kSizesTb) {
    ClusterRun run = run_write(tb);
    std::printf("%10.1f | %7.1f | %7.2f | %5.2f\n", run.write.index_tb,
                run.write.d1_gbps, run.write.d2_gbps, run.write.total_gbps);
  }
  read_run = run_write(2, /*scaled_index=*/false);
  std::printf("paper anchors: dedup-1 > 9 GB/s in all modes; total 4.3 / "
              "2.5 / 1.7 GB/s at 0.5 / 4 / 8 TB\n");

  std::printf("\n=== Figure 14(b): aggregate read throughput per version "
              "(MB/s, modeled) ===\n");
  std::printf("version | read MB/s\n");
  const std::vector<double> reads = run_read(read_run);
  for (std::size_t v = 0; v < reads.size(); ++v) {
    std::printf("%7zu | %9.0f\n", v + 1, reads[v]);
  }
  std::printf("paper anchors: 1620 MB/s for version 1, settling ~1520 "
              "MB/s; LPC eliminated 99.3%% of random lookups\n");
  double hit_rate = 0;
  for (std::size_t s = 0; s < 16; ++s) {
    hit_rate += read_run.cluster->server(s).chunk_store().lpc().hit_rate();
  }
  std::printf("measured LPC hit rate across servers: %.1f%%\n",
              hit_rate / 16 * 100.0);

  // Exchange traffic of the whole 2 TB run (writes + restores), read off
  // the transport: costs come from serialized message sizes, not assumed
  // constants. The per-type figures are the raw (paper-model) ledger —
  // one v1 frame per message, invariant under the wire codec — and the
  // trailing totals show what the codec actually put on the wire.
  const net::TransportStats wire = read_run.cluster->transport_stats();
  auto mb = [&](net::MessageType t) {
    return static_cast<double>(
               wire.raw_bytes_by_type[static_cast<std::size_t>(t)]) /
           1e6;
  };
  std::printf("raw traffic (2 TB run, MB): fp %.1f, verdict %.1f, entry "
              "%.1f, locate %.2f, chunk data %.1f\n",
              mb(net::MessageType::kFingerprintBatch),
              mb(net::MessageType::kVerdictBatch),
              mb(net::MessageType::kIndexEntryBatch),
              mb(net::MessageType::kChunkLocateRequest) +
                  mb(net::MessageType::kChunkLocateReply),
              mb(net::MessageType::kChunkData));
  std::printf("raw -> coalesced wire total (MB): %.1f -> %.1f\n\n",
              static_cast<double>(wire.raw_bytes_sent) / 1e6,
              static_cast<double>(wire.bytes_sent) / 1e6);

  // Machine-readable ledger of the same run for the perf trajectory
  // (bench_wire_codec emits the before/after BENCH_wire.json; this dump
  // adds the full-figure-14 data point alongside it).
  if (wire_json_path != nullptr) {
    std::FILE* f = std::fopen(wire_json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", wire_json_path);
      std::exit(1);
    }
    std::fprintf(f,
                 "{\n  \"bench\": \"fig14_cluster\",\n"
                 "  \"raw_bytes\": %llu,\n  \"wire_bytes\": %llu,\n"
                 "  \"frames\": %llu,\n  \"raw_by_type\": {\"fp\": %llu, "
                 "\"verdict\": %llu, \"entry\": %llu, \"chunk\": %llu}\n}\n",
                 static_cast<unsigned long long>(wire.raw_bytes_sent),
                 static_cast<unsigned long long>(wire.bytes_sent),
                 static_cast<unsigned long long>(wire.frames_sent),
                 static_cast<unsigned long long>(
                     wire.raw_bytes_by_type[static_cast<std::size_t>(
                         net::MessageType::kFingerprintBatch)]),
                 static_cast<unsigned long long>(
                     wire.raw_bytes_by_type[static_cast<std::size_t>(
                         net::MessageType::kVerdictBatch)]),
                 static_cast<unsigned long long>(
                     wire.raw_bytes_by_type[static_cast<std::size_t>(
                         net::MessageType::kIndexEntryBatch)]),
                 static_cast<unsigned long long>(
                     wire.raw_bytes_by_type[static_cast<std::size_t>(
                         net::MessageType::kChunkData)]));
    std::fclose(f);
    std::printf("wrote %s\n", wire_json_path);
  }
}

/// One small two-server dedup-2 workload (two overlapping generations)
/// over whichever wire the factory builds; returns the transport ledger.
net::TransportStats parity_run(std::shared_ptr<net::TransportFactory> factory) {
  core::ClusterConfig cfg;
  cfg.routing_bits = 1;
  cfg.repository_nodes = 2;
  cfg.server_config.index_params = {.prefix_bits = 6, .blocks_per_bucket = 2};
  cfg.server_config.filter_params = {.hash_bits = 8, .capacity = 100000};
  cfg.server_config.chunk_store.cache_params = {.hash_bits = 4,
                                                .capacity = 1000000};
  cfg.server_config.chunk_store.io_buckets = 8;
  cfg.server_config.chunk_store.siu_threshold = 1;
  cfg.transport_factory = std::move(factory);
  core::Cluster cluster(std::move(cfg));

  auto ingest = [&](std::uint64_t job, std::uint64_t first,
                    std::uint64_t count) {
    core::FileStore& fs = cluster.server(0).file_store();
    fs.begin_job(job);
    fs.begin_file(
        {.path = "s", .size = count * 512, .mtime = 0, .mode = 0644});
    for (std::uint64_t i = first; i < first + count; ++i) {
      const Fingerprint f = Sha1::hash_counter(i);
      if (fs.offer_fingerprint(f, 512)) {
        const auto payload = core::BackupEngine::synthetic_payload(f, 512);
        if (!fs.receive_chunk(f, ByteSpan(payload.data(), payload.size()))
                 .ok()) {
          std::exit(1);
        }
      }
    }
    fs.end_file();
    if (!fs.end_job().ok()) std::exit(1);
  };
  ingest(1, 0, 80);
  if (!cluster.run_dedup2(/*force_siu=*/true).ok()) std::exit(1);
  ingest(2, 40, 80);
  if (!cluster.run_dedup2(/*force_siu=*/true).ok()) std::exit(1);
  return cluster.transport_stats();
}

/// The socket wire is the encoded frame, nothing more: the same workload
/// over real TCP must meter exactly the bytes the loopback model charges.
void print_socket_parity() {
  std::printf("\n=== Socket transport parity (dedup-2 wire bytes, 2 servers) "
              "===\n");
  const net::TransportStats modeled =
      parity_run(std::make_shared<net::LoopbackTransportFactory>());
  const net::TransportStats measured =
      parity_run(std::make_shared<net::SocketTransportFactory>(
          net::AddressMap{}));
  // Per-type rows compare the raw (paper-model) ledger: it is invariant
  // under the wire codec, so this parity check holds whether the codec
  // is on or off. The wire totals must also agree — both legs run the
  // same (deterministic) codec configuration.
  std::printf("%-12s | %18s | %18s\n", "message type", "loopback (modeled)",
              "socket (measured)");
  const struct {
    const char* name;
    net::MessageType type;
  } rows[] = {{"fp batch", net::MessageType::kFingerprintBatch},
              {"verdict", net::MessageType::kVerdictBatch},
              {"entry", net::MessageType::kIndexEntryBatch}};
  for (const auto& row : rows) {
    const auto t = static_cast<std::size_t>(row.type);
    std::printf("%-12s | %18llu | %18llu\n", row.name,
                static_cast<unsigned long long>(modeled.raw_bytes_by_type[t]),
                static_cast<unsigned long long>(
                    measured.raw_bytes_by_type[t]));
  }
  std::printf("raw sent     | %18llu | %18llu\n",
              static_cast<unsigned long long>(modeled.raw_bytes_sent),
              static_cast<unsigned long long>(measured.raw_bytes_sent));
  std::printf("wire sent    | %18llu | %18llu  (%s)\n",
              static_cast<unsigned long long>(modeled.bytes_sent),
              static_cast<unsigned long long>(measured.bytes_sent),
              modeled.raw_bytes_sent == measured.raw_bytes_sent &&
                      modeled.bytes_sent == measured.bytes_sent &&
                      modeled.bytes_delivered == measured.bytes_delivered
                  ? "parity"
                  : "MISMATCH");
}

void BM_Fig14_Write(benchmark::State& state) {
  const double tb = kSizesTb[state.range(0)];
  WritePoint p{};
  for (auto _ : state) {
    ClusterRun run = run_write(tb);
    p = run.write;
    benchmark::DoNotOptimize(p);
  }
  state.counters["index_TB"] = tb;
  state.counters["d1_GBps"] = p.d1_gbps;
  state.counters["d2_GBps"] = p.d2_gbps;
  state.counters["total_GBps"] = p.total_gbps;
}
BENCHMARK(BM_Fig14_Write)->DenseRange(0, 4)->Iterations(1)
    ->Unit(benchmark::kSecond);

void BM_Fig14_Read(benchmark::State& state) {
  std::vector<double> reads;
  for (auto _ : state) {
    ClusterRun run = run_write(2, /*scaled_index=*/false);
    reads = run_read(run);
    benchmark::DoNotOptimize(reads);
  }
  state.counters["v1_MBps"] = reads.front();
  state.counters["vLast_MBps"] = reads.back();
}
BENCHMARK(BM_Fig14_Read)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace

int main(int argc, char** argv) {
  const char* wire_json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--wire_json=", 12) == 0) {
      wire_json_path = argv[i] + 12;
    }
  }
  print_tables(wire_json_path);
  print_socket_parity();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
