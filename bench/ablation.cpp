// Ablation benches for the design choices DESIGN.md calls out. Each
// compares the system with a mechanism enabled vs disabled/degraded and
// prints the modeled consequence.
//
//   A. Sequential vs random index update: SIU's bulk pass against the
//      Venti-style per-fingerprint random update (why TPDS exists).
//   B. Preliminary filter on/off: wire bytes and dedup-2 load with and
//      without dedup-1 filtering (why TPDS has a Phase I).
//   C. SISL vs scattered container placement: LPC hit rate on restore
//      (why containers are filled in stream order).
//   D. Bucket size: SIL time per fingerprint and achievable utilization
//      across bucket sizes (why 8 KiB buckets).
//   E. Adjacent-bucket overflow on/off: utilization at the scaling
//      trigger (why overflow is worth its complexity).
//   F. TTTD vs plain CDC chunking: chunk-size variance and forced-cut
//      counts (the related-work refinement, Eshghi & Tang).
//   G. SIL I/O granularity: modeled lookup time vs buckets-per-read —
//      why the paper streams "thousands of buckets per I/O".
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "cache/lpc_cache.hpp"
#include "chunking/rabin_chunker.hpp"
#include "chunking/tttd_chunker.hpp"
#include "common/rng.hpp"
#include "common/sha1.hpp"
#include "core/backup_engine.hpp"
#include "index/disk_index.hpp"
#include "index/utilization.hpp"
#include "workload/hust_trace.hpp"

namespace {

using namespace debar;

// ---------------------------------------------------------------- A ----
void ablation_sequential_vs_random() {
  std::printf("\n--- Ablation A: SIU bulk update vs random per-fingerprint "
              "update (modeled) ---\n");
  constexpr unsigned kPrefix = 12;
  constexpr std::uint64_t kEntries = 100000;

  std::vector<IndexEntry> entries;
  for (std::uint64_t i = 0; i < kEntries; ++i) {
    entries.push_back({Sha1::hash_counter(i), ContainerId{i + 1}});
  }
  std::sort(entries.begin(), entries.end(),
            [](const IndexEntry& a, const IndexEntry& b) { return a.fp < b.fp; });

  // Bulk (SIU).
  sim::SimClock bulk_clock;
  sim::DiskModel bulk_model(sim::DiskProfile::PaperRaid(), &bulk_clock);
  auto bulk_device = std::make_unique<storage::MemBlockDevice>();
  bulk_device->attach_model(&bulk_model);
  auto bulk_idx = index::DiskIndex::create(
      std::move(bulk_device), {.prefix_bits = kPrefix, .blocks_per_bucket = 16});
  if (!bulk_idx.value()
           .bulk_insert(std::span<const IndexEntry>(entries), 1024)
           .ok()) {
    std::exit(1);
  }

  // Random (Venti-style), measured on a sample and extrapolated.
  sim::SimClock rnd_clock;
  sim::DiskModel rnd_model(sim::DiskProfile::PaperRaid(), &rnd_clock);
  auto rnd_device = std::make_unique<storage::MemBlockDevice>();
  rnd_device->attach_model(&rnd_model);
  auto rnd_idx = index::DiskIndex::create(
      std::move(rnd_device), {.prefix_bits = kPrefix, .blocks_per_bucket = 16});
  constexpr std::uint64_t kSample = 2000;
  for (std::uint64_t i = 0; i < kSample; ++i) {
    if (!rnd_idx.value().insert(entries[i].fp, entries[i].container).ok()) {
      std::exit(1);
    }
  }
  const double random_total =
      rnd_clock.seconds() * (static_cast<double>(kEntries) / kSample);

  std::printf("inserting %llu entries into a %u-bucket index: bulk %.2f s, "
              "random %.0f s -> %.0fx speedup\n",
              static_cast<unsigned long long>(kEntries), 1u << kPrefix,
              bulk_clock.seconds(), random_total,
              random_total / bulk_clock.seconds());
}

// ---------------------------------------------------------------- B ----
void ablation_preliminary_filter() {
  std::printf("\n--- Ablation B: preliminary filter on/off (dedup-1 wire "
              "bytes and dedup-2 load) ---\n");
  for (const bool enabled : {true, false}) {
    storage::ChunkRepository repo(1);
    core::Director director;
    core::BackupServerConfig cfg;
    cfg.index_params = {.prefix_bits = 10, .blocks_per_bucket = 16};
    // Disabling = a filter with capacity 1: every fingerprint evicts the
    // previous one, so nothing is ever suppressed and everything ships.
    cfg.filter_params = enabled
                            ? filter::PreliminaryFilterParams{.hash_bits = 14,
                                                              .capacity = 1 << 22}
                            : filter::PreliminaryFilterParams{.hash_bits = 1,
                                                              .capacity = 1};
    cfg.chunk_store.siu_threshold = 1;
    core::BackupServer server(0, cfg, &repo, &director);
    core::BackupEngine engine("abl", &director);

    workload::HustTrace trace({.days = 7, .clients = 2,
                               .mean_daily_chunks = 1024, .seed = 7});
    const std::uint64_t j0 = director.define_job("a", "d");
    const std::uint64_t j1 = director.define_job("b", "d");
    std::uint64_t logical = 0, wire = 0, dedup2_load = 0;
    for (unsigned day = 1; day <= 7; ++day) {
      for (auto& job : trace.day(day)) {
        const auto stats = engine.run_backup_stream(
            job.client == 0 ? j0 : j1,
            std::span<const Fingerprint>(job.stream), server.file_store());
        if (!stats.ok()) std::exit(1);
        logical += stats.value().logical_bytes;
        wire += stats.value().transferred_bytes;
      }
      const auto result = server.run_dedup2(true);
      if (!result.ok()) std::exit(1);
      dedup2_load += result.value().undetermined;
    }
    std::printf("filter %-3s: wire %.1f MB of %.1f MB logical (%.2fx), "
                "dedup-2 resolved %llu undetermined fingerprints\n",
                enabled ? "on" : "off", wire / 1e6, logical / 1e6,
                static_cast<double>(logical) / static_cast<double>(wire),
                static_cast<unsigned long long>(dedup2_load));
  }
}

// ---------------------------------------------------------------- C ----
void ablation_sisl_vs_scattered() {
  std::printf("\n--- Ablation C: SISL stream-order containers vs scattered "
              "placement (LPC hit rate) ---\n");
  constexpr std::uint64_t kChunks = 8192;
  constexpr std::size_t kChunksPerContainer = 512;
  constexpr std::size_t kCacheContainers = 4;

  for (const bool sisl : {true, false}) {
    // Build containers holding the stream either in order or shuffled.
    std::vector<std::uint64_t> order(kChunks);
    for (std::uint64_t i = 0; i < kChunks; ++i) order[i] = i;
    if (!sisl) {
      Xoshiro256 rng(5);
      for (std::size_t i = order.size() - 1; i > 0; --i) {
        std::swap(order[i], order[rng.below(i + 1)]);
      }
    }

    cache::LpcCache lpc(kCacheContainers);
    std::vector<std::shared_ptr<storage::Container>> containers;
    std::unordered_map<Fingerprint, std::size_t, FingerprintHash> location;
    for (std::size_t base = 0; base < kChunks; base += kChunksPerContainer) {
      auto c = std::make_shared<storage::Container>(8 * MiB);
      for (std::size_t i = base;
           i < std::min<std::size_t>(kChunks, base + kChunksPerContainer);
           ++i) {
        const Fingerprint fp = Sha1::hash_counter(order[i]);
        const auto payload = core::BackupEngine::synthetic_payload(fp, 1024);
        c->try_append(fp, ByteSpan(payload.data(), payload.size()));
        location[fp] = containers.size();
      }
      c->set_id(ContainerId{containers.size() + 1});
      containers.push_back(std::move(c));
    }

    // Restore the stream in logical order through the LPC.
    std::uint64_t fetches = 0;
    for (std::uint64_t i = 0; i < kChunks; ++i) {
      const Fingerprint fp = Sha1::hash_counter(i);
      if (!lpc.find(fp).has_value()) {
        ++fetches;
        lpc.insert(containers[location[fp]]);
      }
    }
    std::printf("%-9s: LPC hit rate %5.1f%%, container fetches %llu "
                "(of %zu containers)\n",
                sisl ? "SISL" : "scattered", lpc.hit_rate() * 100.0,
                static_cast<unsigned long long>(fetches), containers.size());
  }
}

// ---------------------------------------------------------------- D ----
void ablation_bucket_size() {
  std::printf("\n--- Ablation D: bucket size trade-off (utilization vs "
              "in-memory scan cost) ---\n");
  for (const unsigned blocks : {1u, 4u, 16u, 64u}) {
    const auto summary = index::run_utilization_trials(
        {.prefix_bits = 14,
         .bucket_capacity = blocks * kEntriesPerIndexBlock,
         .seed = 77},
        3);
    std::printf("bucket %5.1f KiB (b=%4u): utilization at trigger %5.1f%%\n",
                blocks * 0.5, blocks * 20, summary.eta_avg * 100.0);
  }
}

// ---------------------------------------------------------------- E ----
void ablation_overflow() {
  std::printf("\n--- Ablation E: adjacent-bucket overflow on/off ---\n");
  // Without overflow, the index must scale as soon as ANY bucket fills;
  // simulate by running until the first bucket reaches capacity.
  constexpr unsigned kPrefix = 14;
  constexpr std::uint64_t kCapacity = 320;
  std::vector<std::uint32_t> counters(std::size_t{1} << kPrefix, 0);
  Xoshiro256 rng(3);
  std::uint64_t inserted = 0;
  for (;;) {
    const std::uint64_t b = rng() >> (64 - kPrefix);
    if (counters[b] >= kCapacity) break;
    ++counters[b];
    ++inserted;
  }
  const double no_overflow =
      static_cast<double>(inserted) /
      (static_cast<double>(kCapacity) * static_cast<double>(counters.size()));

  const auto with_overflow = index::run_utilization_trials(
      {.prefix_bits = kPrefix, .bucket_capacity = kCapacity, .seed = 3}, 3);
  std::printf("utilization at scaling trigger: no overflow %.1f%%, with "
              "adjacent-bucket overflow %.1f%%\n",
              no_overflow * 100.0, with_overflow.eta_avg * 100.0);
}

// ---------------------------------------------------------------- F ----
void ablation_tttd_vs_cdc() {
  std::printf("\n--- Ablation F: TTTD chunking vs plain CDC (size "
              "distribution) ---\n");
  // Mixed input: random data plus low-entropy stretches that starve the
  // primary anchor (where plain CDC is forced into max-size cuts).
  Xoshiro256 rng(9);
  std::vector<Byte> data(8 << 20);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const bool low_entropy = (i / (256 * 1024)) % 3 == 2;
    // In the low-entropy regions only every ~192nd byte is random, so
    // most 48-byte windows are constant: primary anchors become sparse.
    data[i] = (!low_entropy || i % 192 == 0) ? static_cast<Byte>(rng())
                                             : Byte{0x40};
  }

  auto describe = [&](const char* name,
                      const std::vector<chunking::ChunkBounds>& bounds) {
    double mean = 0;
    for (const auto& c : bounds) mean += static_cast<double>(c.size);
    mean /= static_cast<double>(bounds.size());
    double var = 0;
    std::uint64_t max_cuts = 0;
    for (const auto& c : bounds) {
      const double d = static_cast<double>(c.size) - mean;
      var += d * d;
      if (c.size >= kMaxChunkSize) ++max_cuts;
    }
    var /= static_cast<double>(bounds.size());
    std::printf("%-5s: %5zu chunks, mean %6.0f B, cv %.2f, max-size cuts "
                "%llu\n",
                name, bounds.size(), mean, std::sqrt(var) / mean,
                static_cast<unsigned long long>(max_cuts));
  };

  chunking::RabinChunker cdc;
  chunking::TttdChunker tttd;
  describe("CDC", cdc.chunk(ByteSpan(data.data(), data.size())));
  describe("TTTD", tttd.chunk(ByteSpan(data.data(), data.size())));
  const auto& st = tttd.last_stats();
  std::printf("TTTD cut mix: %llu primary, %llu backup, %llu forced\n",
              static_cast<unsigned long long>(st.primary),
              static_cast<unsigned long long>(st.backup),
              static_cast<unsigned long long>(st.forced));
}

// ---------------------------------------------------------------- G ----
void ablation_io_granularity() {
  std::printf("\n--- Ablation G: SIL time vs I/O granularity (modeled, "
              "32 MiB index, 10k fingerprints) ---\n");
  std::vector<IndexEntry> entries;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    entries.push_back({Sha1::hash_counter(i), ContainerId{i + 1}});
  }
  std::sort(entries.begin(), entries.end(),
            [](const IndexEntry& a, const IndexEntry& b) { return a.fp < b.fp; });
  std::vector<Fingerprint> queries;
  for (const IndexEntry& e : entries) queries.push_back(e.fp);

  for (const std::uint64_t io_buckets : {4u, 32u, 256u, 2048u}) {
    sim::SimClock clock;
    sim::DiskModel model(sim::DiskProfile::PaperRaid(), &clock);
    auto device = std::make_unique<storage::MemBlockDevice>();
    device->attach_model(&model);
    auto idx = index::DiskIndex::create(
        std::move(device), {.prefix_bits = 12, .blocks_per_bucket = 16});
    if (!idx.value()
             .bulk_insert(std::span<const IndexEntry>(entries), 2048)
             .ok()) {
      std::exit(1);
    }
    clock.reset();
    std::uint64_t found = 0;
    if (!idx.value()
             .bulk_lookup(std::span<const Fingerprint>(queries),
                          [&](std::size_t, ContainerId) { ++found; },
                          io_buckets)
             .ok()) {
      std::exit(1);
    }
    std::printf("%5llu buckets/IO (%6.1f MiB reads): SIL %.3f s, "
                "%llu/%zu found\n",
                static_cast<unsigned long long>(io_buckets),
                static_cast<double>(io_buckets) * 8 / 1024,
                clock.seconds(), static_cast<unsigned long long>(found),
                queries.size());
  }
}

void BM_Ablations(benchmark::State& state) {
  for (auto _ : state) {
    // The narrative output runs once in main(); this registers the suite
    // with the benchmark harness so `--benchmark_filter` users see it.
    benchmark::DoNotOptimize(state.iterations());
  }
}
BENCHMARK(BM_Ablations)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  ablation_sequential_vs_random();
  ablation_preliminary_filter();
  ablation_sisl_vs_scattered();
  ablation_bucket_size();
  ablation_overflow();
  ablation_tttd_vs_cdc();
  ablation_io_granularity();
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
