// Micro-benchmarks of the primitives (real wall-clock time, not modeled):
//
//   * in-memory bucket fingerprint search — the paper measures 2.749M
//     fingerprints/s at 320 comparisons each (Section 4.2), the number
//     that justifies large 8 KiB buckets;
//   * SHA-1 digest throughput (chunk fingerprinting);
//   * Rabin sliding-window throughput (CDC anchoring);
//   * whole-chunker throughput;
//   * preliminary-filter admit and Bloom-filter ops.
#include <benchmark/benchmark.h>

#include <vector>

#include "chunking/gear_chunker.hpp"
#include "chunking/rabin_chunker.hpp"
#include "common/rabin.hpp"
#include "common/rng.hpp"
#include "common/sha1.hpp"
#include "common/simd.hpp"
#include "core/metadata_store.hpp"
#include "filter/bloom_filter.hpp"
#include "filter/preliminary_filter.hpp"
#include "index/disk_index.hpp"
#include "storage/block_device.hpp"

namespace {

using namespace debar;

void BM_BucketSearch320(benchmark::State& state) {
  // One full-bucket lookup: scan up to 320 entries for a fingerprint,
  // as SIL does in memory for every cached fingerprint.
  index::Bucket bucket;
  for (std::uint64_t i = 0; i < 320; ++i) {
    bucket.entries.push_back({Sha1::hash_counter(i), ContainerId{i + 1}});
  }
  const Fingerprint miss = Sha1::hash_counter(1000000);  // worst case
  for (auto _ : state) {
    benchmark::DoNotOptimize(bucket.find(miss));
  }
  state.counters["paper_rate_Mfps"] = 2.749;
  state.counters["rate_Mfps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BucketSearch320);

void BM_Sha1Chunk(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  std::vector<Byte> data(size);
  Xoshiro256 rng(1);
  for (auto& b : data) b = static_cast<Byte>(rng());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::hash(ByteSpan(data.data(), data.size())));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(size));
}
BENCHMARK(BM_Sha1Chunk)->Arg(8 * 1024)->Arg(64 * 1024);

void BM_RabinWindowSlide(benchmark::State& state) {
  RabinWindow window;
  std::vector<Byte> data(1 << 16);
  Xoshiro256 rng(2);
  for (auto& b : data) b = static_cast<Byte>(rng());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(window.slide(data[i]));
    i = (i + 1) & (data.size() - 1);
  }
  state.SetBytesProcessed(state.iterations());
}
BENCHMARK(BM_RabinWindowSlide);

// Chunking-throughput axis (range(0) = buffer size, swept 256 KiB to
// 16 MiB): each size gets its own seeded corpus, so the sweep shows how
// per-call setup amortizes instead of re-chunking one fixed buffer.
// The algo/lane matrix is the same one bench_chunking gates on.
std::vector<Byte> seeded_corpus(std::size_t size) {
  Xoshiro256 rng(3000 + size);
  std::vector<Byte> data(size);
  for (auto& b : data) b = static_cast<Byte>(rng());
  return data;
}

void BM_CdcChunker(benchmark::State& state) {
  chunking::RabinChunker chunker;
  const std::vector<Byte> data =
      seeded_corpus(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.chunk(ByteSpan(data.data(), data.size())));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_CdcChunker)->RangeMultiplier(4)->Range(256 << 10, 16 << 20);

void BM_GearChunker(benchmark::State& state) {
  chunking::GearParams params;
  params.simd = static_cast<SimdPolicy>(state.range(1));
  if (!simd_supported(params.simd)) {
    state.SkipWithError("SIMD lane not supported on this host");
    return;
  }
  chunking::GearChunker chunker(params);
  const std::vector<Byte> data =
      seeded_corpus(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.chunk(ByteSpan(data.data(), data.size())));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_GearChunker)
    ->ArgsProduct({benchmark::CreateRange(256 << 10, 16 << 20, 4),
                   {static_cast<long>(SimdPolicy::kScalar),
                    static_cast<long>(SimdPolicy::kSse2),
                    static_cast<long>(SimdPolicy::kAvx2)}});

void BM_Sha1Batch(benchmark::State& state) {
  // Whole-file fingerprinting as BackupEngine now issues it: one batch
  // of 8 KiB chunk spans per call, under each hash_batch policy.
  const SimdPolicy policy = static_cast<SimdPolicy>(state.range(0));
  if (!simd_supported(policy)) {
    state.SkipWithError("SIMD lane not supported on this host");
    return;
  }
  const std::vector<Byte> data = seeded_corpus(4 << 20);
  std::vector<ByteSpan> spans;
  const ByteSpan content(data.data(), data.size());
  for (std::size_t off = 0; off < data.size(); off += 8192) {
    spans.push_back(content.subspan(off, 8192));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Sha1::hash_batch(std::span<const ByteSpan>(spans), policy));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Sha1Batch)->Arg(static_cast<long>(SimdPolicy::kScalar))
    ->Arg(static_cast<long>(SimdPolicy::kSse2))
    ->Arg(static_cast<long>(SimdPolicy::kAvx2));

void BM_PreliminaryFilterAdmit(benchmark::State& state) {
  filter::PreliminaryFilter filter({.hash_bits = 20, .capacity = 1 << 22});
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.admit(Sha1::hash_counter(i % 100000)));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PreliminaryFilterAdmit);

void BM_BloomInsertAndQuery(benchmark::State& state) {
  filter::BloomFilter bloom(std::uint64_t{1} << 26, 4);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const Fingerprint fp = Sha1::hash_counter(i++);
    bloom.insert(fp);
    benchmark::DoNotOptimize(bloom.maybe_contains(fp));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomInsertAndQuery);

void BM_FingerprintSort(benchmark::State& state) {
  // The sort feeding SIL: 100k fingerprints, the index-cache drain path.
  std::vector<Fingerprint> fps;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    fps.push_back(Sha1::hash_counter(i * 2654435761ULL));
  }
  for (auto _ : state) {
    std::vector<Fingerprint> copy = fps;
    std::sort(copy.begin(), copy.end());
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_FingerprintSort)->Unit(benchmark::kMillisecond);

void BM_MetadataStoreAppend(benchmark::State& state) {
  // Section 6.3: the director's metadata subsystem sustains >100 MB/s
  // aggregate with 250 concurrent jobs. Here: single-threaded record
  // append throughput (bytes/s of serialized metadata).
  core::MetadataStore store(
      std::make_unique<storage::MemBlockDevice>());
  core::JobVersionRecord rec;
  rec.job_id = 1;
  core::FileRecord file;
  file.meta = {.path = "some/backup/file.dat", .size = 1 << 20, .mtime = 1,
               .mode = 0644};
  for (std::uint64_t i = 0; i < 128; ++i) {
    file.chunk_fps.push_back(Sha1::hash_counter(i));
    file.chunk_sizes.push_back(8192);
  }
  rec.files.push_back(file);
  const std::size_t record_bytes = core::serialize_record(rec).size();

  std::uint32_t version = 0;
  for (auto _ : state) {
    rec.version = ++version;
    benchmark::DoNotOptimize(store.append(rec).ok());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(record_bytes));
}
BENCHMARK(BM_MetadataStoreAppend);

}  // namespace

BENCHMARK_MAIN();
