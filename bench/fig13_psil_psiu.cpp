// Figure 13: PSIL / PSIU aggregate speeds with 16 backup servers, total
// index size 0.5 .. 8 TB (i.e. 32 .. 512 GB per part), 1 GB index cache
// per server.
//
// The cluster's five-phase dedup-2 runs for real (exchange, PSIL,
// results, storing, PSIU) over 16 server shards; each part's device is
// rate-scaled so its streaming time equals the paper RAID's time for the
// full-size part. Rates are reported at paper scale.
//
// Paper reference points: PSIL ~3710 kfp/s and PSIU ~1524 kfp/s at
// 0.5 TB; ~338 and ~135 kfp/s at 8 TB.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "common/sha1.hpp"
#include "core/cluster.hpp"

namespace {

using namespace debar;

constexpr unsigned kRoutingBits = 4;  // 16 servers
constexpr unsigned kPartPrefixBits = 10;
constexpr std::uint64_t kActualPartBytes =
    (std::uint64_t{1} << kPartPrefixBits) * 16 * kIndexBlockSize;  // 8 MiB
constexpr std::uint32_t kChunkSize = 1024;  // payload size is irrelevant here

struct Fig13Point {
  double total_index_tb;
  double psil_kfps;
  double psiu_kfps;
  // Exchange traffic by message type (MB at bench scale), read off the
  // transport rather than assumed from per-item constants. Raw bytes are
  // the codec-invariant paper model (one v1 frame per message); wire
  // bytes are what actually crossed the transport — identical while the
  // wire codec is off, smaller once it is on.
  double raw_fp_mb;
  double raw_verdict_mb;
  double raw_entry_mb;
  double raw_total_mb;
  double wire_total_mb;
};

Fig13Point run_point(double total_index_tb) {
  const std::uint64_t modeled_part_bytes = static_cast<std::uint64_t>(
      total_index_tb * static_cast<double>(TiB) / 16.0);
  const double scale = static_cast<double>(modeled_part_bytes) /
                       static_cast<double>(kActualPartBytes);
  // 1 GB cache = ~44M paper fingerprints per server; scale the actual
  // load by the same factor the device time is scaled by.
  const auto fps_per_server = static_cast<std::uint64_t>(44.0e6 / scale);

  core::ClusterConfig cfg;
  cfg.routing_bits = kRoutingBits;
  cfg.repository_nodes = 16;
  cfg.server_config.index_params = {.prefix_bits = kPartPrefixBits,
                                    .blocks_per_bucket = 16};
  cfg.server_config.index_profile =
      sim::DiskProfile::PaperRaid().scaled_to(modeled_part_bytes,
                                              kActualPartBytes);
  cfg.server_config.filter_params = {.hash_bits = 14, .capacity = 1 << 22};
  cfg.server_config.chunk_store.cache_params = {.hash_bits = 8,
                                                .capacity = 1 << 24};
  cfg.server_config.chunk_store.io_buckets = 256;
  cfg.server_config.chunk_store.siu_threshold = 1;
  core::Cluster cluster(cfg);

  // Every server receives a fresh stream (distinct counter subspaces):
  // PSIL processes the full load, PSIU registers all of it.
  std::uint64_t total_fps = 0;
  for (std::size_t s = 0; s < cluster.server_count(); ++s) {
    const std::uint64_t job =
        cluster.director().define_job("c" + std::to_string(s), "d");
    core::FileStore& fs = cluster.server(s).file_store();
    fs.begin_job(job);
    fs.begin_file({.path = "stream",
                   .size = fps_per_server * kChunkSize,
                   .mtime = 0,
                   .mode = 0644});
    for (std::uint64_t i = 0; i < fps_per_server; ++i) {
      const Fingerprint fp =
          Sha1::hash_counter((static_cast<std::uint64_t>(s) << 48) + i);
      if (fs.offer_fingerprint(fp, kChunkSize)) {
        const auto payload =
            core::BackupEngine::synthetic_payload(fp, kChunkSize);
        if (!fs.receive_chunk(fp, ByteSpan(payload.data(), payload.size()))
                 .ok()) {
          std::exit(1);
        }
      }
      ++total_fps;
    }
    fs.end_file();
    if (!fs.end_job().ok()) std::exit(1);
  }

  const auto result = cluster.run_dedup2(/*force_siu=*/true);
  if (!result.ok()) {
    std::fprintf(stderr, "dedup-2 failed: %s\n",
                 result.error().to_string().c_str());
    std::exit(1);
  }

  Fig13Point point;
  point.total_index_tb = total_index_tb;
  point.psil_kfps = static_cast<double>(total_fps) * scale /
                    result.value().sil_seconds / 1e3;
  point.psiu_kfps = static_cast<double>(result.value().new_chunks) * scale /
                    result.value().siu_seconds / 1e3;
  const net::TransportStats wire = cluster.transport_stats();
  auto raw_mb = [&](net::MessageType t) {
    return static_cast<double>(
               wire.raw_bytes_by_type[static_cast<std::size_t>(t)]) /
           1e6;
  };
  point.raw_fp_mb = raw_mb(net::MessageType::kFingerprintBatch);
  point.raw_verdict_mb = raw_mb(net::MessageType::kVerdictBatch);
  point.raw_entry_mb = raw_mb(net::MessageType::kIndexEntryBatch);
  point.raw_total_mb = static_cast<double>(wire.raw_bytes_sent) / 1e6;
  point.wire_total_mb = static_cast<double>(wire.bytes_sent) / 1e6;
  return point;
}

const double kSizesTb[] = {0.5, 1, 2, 4, 8};

void print_table() {
  std::printf("\n=== Figure 13: PSIL / PSIU speeds, 16 backup servers, "
              "1 GB cache each (kilo-fingerprints/s, paper scale) ===\n");
  std::printf("index (TB) | PSIL (kfp/s) | PSIU (kfp/s) | raw fp/verdict/"
              "entry (MB) | raw->wire total (MB)\n");
  for (const double tb : kSizesTb) {
    const Fig13Point p = run_point(tb);
    std::printf("%10.1f | %12.0f | %12.0f | %.1f / %.1f / %.1f | "
                "%.1f -> %.1f\n",
                p.total_index_tb, p.psil_kfps, p.psiu_kfps, p.raw_fp_mb,
                p.raw_verdict_mb, p.raw_entry_mb, p.raw_total_mb,
                p.wire_total_mb);
  }
  std::printf("paper anchors: 0.5 TB -> ~3710 / ~1524; 8 TB -> ~338 / "
              "~135\n\n");
}

void BM_Fig13_PsilPsiu(benchmark::State& state) {
  const double tb = kSizesTb[state.range(0)];
  Fig13Point p{};
  for (auto _ : state) {
    p = run_point(tb);
    benchmark::DoNotOptimize(p);
  }
  state.counters["index_TB"] = tb;
  state.counters["PSIL_kfps"] = p.psil_kfps;
  state.counters["PSIU_kfps"] = p.psiu_kfps;
}
BENCHMARK(BM_Fig13_PsilPsiu)->DenseRange(0, 4)->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
