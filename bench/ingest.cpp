// Multi-tenant ingest front-end trajectory (DESIGN.md §5l). Two axes,
// both measured in the deterministic inline mode (lanes == 0), so the
// numbers are properties of the protocol and the DRR arithmetic — not of
// the CI runner — and the gate runs in every build configuration:
//
//   * streaming dedup-1 efficiency: a 32-tenant fleet backs up two
//     generations of near-duplicate data; generation 2's payload bytes
//     on the wire must stay a small fraction of its logical bytes (the
//     whole point of fingerprints-first streaming);
//   * admission fairness: one hog tenant floods the queue with large
//     jobs while small tenants each want one tiny job; the worst small
//     tenant's admission latency in DRR rotations is the gated metric.
//
//   bench_ingest [--out <path>]    measure and write BENCH_ingest.json
//   bench_ingest --check <path>    re-measure and compare: fails if the
//                                  generation-2 wire reduction regressed
//                                  >5% against the checked-in baseline,
//                                  or any small tenant waited more
//                                  rotations than the baseline recorded.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/ingest_service.hpp"
#include "workload/tenant_mix.hpp"

namespace {

using namespace debar;

constexpr std::uint64_t kTenants = 32;
constexpr std::uint32_t kGenerations = 2;
/// Generation 2 rewrites ~1/16 of every file; dedup-1 must suppress the
/// untouched chunks, so the wire carries a small multiple of the delta.
constexpr double kReductionBar = 2.0;

core::ClusterConfig cluster_config() {
  core::ClusterConfig cfg;
  cfg.routing_bits = 1;
  cfg.repository_nodes = 2;
  cfg.server_config.index_params = {.prefix_bits = 8, .blocks_per_bucket = 4};
  cfg.server_config.chunk_store.siu_threshold = 1;
  cfg.server_config.container_capacity = 64 * 1024;
  return cfg;
}

struct GenerationRow {
  std::uint32_t generation = 0;
  std::uint64_t logical_bytes = 0;
  std::uint64_t transferred_bytes = 0;
  std::uint64_t chunks = 0;
  double reduction = 0;  // logical / transferred
};

struct Measurement {
  std::vector<GenerationRow> generations;
  double gen2_reduction = 0;
  std::uint64_t small_max_rotations = 0;
  std::uint64_t hog_max_rotations = 0;
};

void fail(const char* what, const std::string& detail) {
  std::fprintf(stderr, "%s: %s\n", what, detail.c_str());
  std::exit(1);
}

/// Axis 1: streaming dedup-1 efficiency across backup generations.
void measure_dedup(Measurement& m) {
  core::Cluster cluster(cluster_config());
  // 64 KiB files against 8 KiB expected chunks: each generation's single
  // 512 B edit dirties one or two chunks of ~8, so dedup-1 should
  // suppress most of generation 2 on the wire.
  const workload::TenantMix mix({.tenants = kTenants,
                                 .files_per_tenant = 2,
                                 .file_bytes = 64 * 1024,
                                 .delta_bytes = 512,
                                 .deltas_per_file = 1,
                                 .seed = 21});
  core::IngestService::Config cfg;  // lanes == 0: inline, deterministic
  core::IngestService service(&cluster, cfg);

  for (std::uint32_t g = 0; g < kGenerations; ++g) {
    GenerationRow row;
    row.generation = g + 1;
    std::vector<std::shared_future<Result<core::IngestService::Outcome>>>
        futures;
    for (std::uint64_t t = 0; t < kTenants; ++t) {
      auto fut = service.submit(t, mix.job_id(t), mix.dataset(t, g));
      if (!fut.ok()) fail("submit", fut.error().to_string());
      futures.push_back(fut.value());
    }
    if (Status s = service.run_until_drained(); !s.ok()) {
      fail("run_until_drained", s.to_string());
    }
    for (auto& f : futures) {
      Result<core::IngestService::Outcome> r = f.get();
      if (!r.ok()) fail("job", r.error().to_string());
      row.logical_bytes += r.value().logical_bytes;
      row.transferred_bytes += r.value().transferred_bytes;
      row.chunks += r.value().chunks;
    }
    row.reduction = row.transferred_bytes == 0
                        ? 0.0
                        : static_cast<double>(row.logical_bytes) /
                              static_cast<double>(row.transferred_bytes);
    m.generations.push_back(row);
  }
  if (Status s = service.finalize(); !s.ok()) fail("finalize", s.to_string());
  service.shutdown();
  m.gen2_reduction = m.generations.back().reduction;
}

/// Unique content so the fairness axis stores fresh chunks per job.
core::Dataset unique_dataset(std::uint64_t seed, std::uint64_t bytes) {
  core::Dataset out;
  core::FileData file;
  file.path = "blob-" + std::to_string(seed);
  file.mtime = 0;
  file.content.resize(bytes);
  Xoshiro256 rng(0xB0B0 + seed);
  for (auto& b : file.content) b = static_cast<Byte>(rng());
  out.files.push_back(std::move(file));
  return out;
}

/// Axis 2: DRR fairness under a hog. Deterministic rotation counts.
void measure_fairness(Measurement& m) {
  core::Cluster cluster(cluster_config());
  core::IngestService::Config cfg;
  cfg.limits.drr_quantum = 64 * 1024;
  cfg.limits.tokens_per_rotation = 64 * 1024;
  cfg.limits.burst_bytes = 256 * 1024;
  core::IngestService service(&cluster, cfg);

  std::vector<std::shared_future<Result<core::IngestService::Outcome>>> hog;
  for (int j = 0; j < 8; ++j) {
    auto fut = service.submit(0, 100 + j, unique_dataset(100 + j, 256 * 1024));
    if (!fut.ok()) fail("hog submit", fut.error().to_string());
    hog.push_back(fut.value());
  }
  std::vector<std::shared_future<Result<core::IngestService::Outcome>>> small;
  for (std::uint64_t t = 1; t <= 12; ++t) {
    auto fut = service.submit(t, 200 + t, unique_dataset(200 + t, 4 * 1024));
    if (!fut.ok()) fail("small submit", fut.error().to_string());
    small.push_back(fut.value());
  }
  if (Status s = service.run_until_drained(); !s.ok()) {
    fail("run_until_drained", s.to_string());
  }
  for (auto& f : small) {
    Result<core::IngestService::Outcome> r = f.get();
    if (!r.ok()) fail("small job", r.error().to_string());
    m.small_max_rotations =
        std::max(m.small_max_rotations, r.value().admission_rotations);
  }
  for (auto& f : hog) {
    Result<core::IngestService::Outcome> r = f.get();
    if (!r.ok()) fail("hog job", r.error().to_string());
    m.hog_max_rotations =
        std::max(m.hog_max_rotations, r.value().admission_rotations);
  }
  service.shutdown();
}

Measurement measure() {
  Measurement m;
  measure_dedup(m);
  measure_fairness(m);

  for (const GenerationRow& row : m.generations) {
    std::printf("gen %u: logical %.1f MiB, wire %.1f MiB, reduction %.2fx\n",
                row.generation,
                static_cast<double>(row.logical_bytes) / (1 << 20),
                static_cast<double>(row.transferred_bytes) / (1 << 20),
                row.reduction);
  }
  std::printf("fairness: worst small-tenant wait %llu rotations "
              "(hog tail: %llu)\n",
              static_cast<unsigned long long>(m.small_max_rotations),
              static_cast<unsigned long long>(m.hog_max_rotations));
  if (m.gen2_reduction < kReductionBar) {
    std::fprintf(stderr,
                 "generation-2 wire reduction below the acceptance bar: "
                 "%.2fx < %.2fx\n",
                 m.gen2_reduction, kReductionBar);
    std::exit(1);
  }
  if (m.small_max_rotations >= m.hog_max_rotations) {
    std::fprintf(stderr, "DRR inverted: small tenants waited longer than "
                         "the hog's tail\n");
    std::exit(1);
  }
  return m;
}

void write_json(const Measurement& m, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) fail("cannot write", path);
  std::fprintf(f, "{\n  \"bench\": \"ingest\",\n");
  std::fprintf(f,
               "  \"workload\": {\"tenants\": %llu, \"generations\": %u},\n",
               static_cast<unsigned long long>(kTenants), kGenerations);
  std::fprintf(f, "  \"generations\": [\n");
  for (std::size_t i = 0; i < m.generations.size(); ++i) {
    const GenerationRow& row = m.generations[i];
    std::fprintf(f,
                 "    {\"generation\": %u, \"logical_bytes\": %llu, "
                 "\"transferred_bytes\": %llu, \"chunks\": %llu, "
                 "\"reduction\": %.2f}%s\n",
                 row.generation,
                 static_cast<unsigned long long>(row.logical_bytes),
                 static_cast<unsigned long long>(row.transferred_bytes),
                 static_cast<unsigned long long>(row.chunks), row.reduction,
                 i + 1 < m.generations.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"summary\": {\"gen2_reduction\": %.2f, "
               "\"small_max_rotations\": %llu, \"hog_max_rotations\": "
               "%llu}\n",
               m.gen2_reduction,
               static_cast<unsigned long long>(m.small_max_rotations),
               static_cast<unsigned long long>(m.hog_max_rotations));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

double baseline_value(const std::string& text, const std::string& key,
                      const std::string& path) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) fail("baseline malformed", path);
  return std::strtod(text.c_str() + at + needle.size(), nullptr);
}

int check(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) fail("baseline missing", path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const double base_reduction =
      baseline_value(text, "gen2_reduction", path);
  const double base_rotations =
      baseline_value(text, "small_max_rotations", path);

  const Measurement m = measure();
  if (m.gen2_reduction < base_reduction * 0.95) {
    std::fprintf(stderr,
                 "generation-2 wire reduction regressed >5%%: %.2fx vs "
                 "baseline %.2fx\n",
                 m.gen2_reduction, base_reduction);
    return 1;
  }
  if (static_cast<double>(m.small_max_rotations) > base_rotations) {
    std::fprintf(stderr,
                 "small-tenant admission latency regressed: %llu rotations "
                 "vs baseline %.0f\n",
                 static_cast<unsigned long long>(m.small_max_rotations),
                 base_rotations);
    return 1;
  }
  std::printf("ingest trajectory within bounds of %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_ingest.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      return check(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
      continue;
    }
  }
  write_json(measure(), out);
  return 0;
}
