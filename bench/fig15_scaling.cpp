// Figure 15: write throughput and supported capacity of multi-server
// DEBAR, for 1..16 backup servers and per-server index parts of 32 GB and
// 64 GB (the paper's first ten run modes).
//
// Expectation (the paper's headline scalability claim): aggregate write
// throughput and total capacity both grow linearly with the number of
// servers; the larger index part supports double the capacity at a lower
// throughput (PSIL/PSIU take twice as long).
//
// Paper reference points: throughput-32GB reaches ~4.2 GB/s at 16
// servers; capacity: 32 GB part ~ 10 TB, so 16 x 64 GB ~ 320 TB.
//
// --scale-out runs the elastic trajectory instead (DESIGN.md §5j): a
// w=1 cluster ingests half the trace, splits live to w=2, and ingests
// the rest; emits BENCH_elastic.json. --scale-out --check <path>
// re-measures and gates the post-split speedup against the baseline.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "workload/fingerprint_stream.hpp"

namespace {

using namespace debar;

constexpr unsigned kPartPrefixBits = 10;
constexpr std::uint64_t kActualPartBytes =
    (std::uint64_t{1} << kPartPrefixBits) * 16 * kIndexBlockSize;
constexpr std::uint32_t kChunkSize = kExpectedChunkSize;
constexpr unsigned kVersions = 3;
constexpr std::uint64_t kChunksPerVersionPerServer = 2500;
// Paper data:index proportion for this experiment: each server ingests
// 10 x 50 GB = 500 GB against a 32/64 GB part -> ratios ~16:1 and ~8:1.
constexpr double kDataToIndex32 = 16.0;

struct ModeResult {
  unsigned servers;
  unsigned part_gb;
  double write_gbps;
  double capacity_tb;  // paper-scale capacity this mode supports
};

ModeResult run_mode(unsigned routing_bits, unsigned part_gb) {
  const unsigned servers = 1u << routing_bits;
  const double per_server_logical =
      static_cast<double>(kVersions) * kChunksPerVersionPerServer * kChunkSize;
  const std::uint64_t modeled_part_bytes = static_cast<std::uint64_t>(
      per_server_logical / kDataToIndex32 * (part_gb / 32.0));

  core::ClusterConfig cfg;
  cfg.routing_bits = routing_bits;
  cfg.repository_nodes = std::max<std::size_t>(4, servers);
  cfg.server_config.index_params = {.prefix_bits = kPartPrefixBits,
                                    .blocks_per_bucket = 16};
  cfg.server_config.index_profile =
      sim::DiskProfile::PaperRaid().scaled_to(modeled_part_bytes,
                                              kActualPartBytes);
  cfg.server_config.filter_params = {.hash_bits = 14, .capacity = 1 << 22};
  cfg.server_config.chunk_store.cache_params = {.hash_bits = 8,
                                                .capacity = 1 << 24};
  cfg.server_config.chunk_store.io_buckets = 256;
  cfg.server_config.chunk_store.siu_threshold = 1 << 30;
  core::Cluster cluster(cfg);

  workload::SubspaceRegistry registry(6);  // up to 64 streams
  std::vector<std::unique_ptr<workload::VersionedStream>> streams;
  std::vector<std::uint64_t> jobs;
  for (std::size_t s = 0; s < servers; ++s) {
    streams.push_back(std::make_unique<workload::VersionedStream>(
        &registry, workload::StreamParams{.stream_id = s,
                                          .dup_fraction = 0.9,
                                          .cross_fraction = 0.3,
                                          .seed = 1515}));
    jobs.push_back(
        cluster.director().define_job("c" + std::to_string(s), "stream"));
  }

  auto backup_version = [&](unsigned v) {
    for (std::size_t s = 0; s < servers; ++s) {
      const auto fps = streams[s]->next_version(kChunksPerVersionPerServer);
      core::FileStore& fs = cluster.server(s).file_store();
      fs.begin_job(jobs[s]);
      fs.begin_file({.path = "v" + std::to_string(v),
                     .size = fps.size() * kChunkSize, .mtime = 0,
                     .mode = 0644});
      for (const Fingerprint& fp : fps) {
        if (fs.offer_fingerprint(fp, kChunkSize)) {
          const auto payload =
              core::BackupEngine::synthetic_payload(fp, kChunkSize);
          if (!fs.receive_chunk(fp, ByteSpan(payload.data(), payload.size()))
                   .ok()) {
            std::exit(1);
          }
        }
      }
      fs.end_file();
      if (!fs.end_job().ok()) std::exit(1);
    }
  };

  // Warm-up version, then measured versions.
  backup_version(0);
  if (!cluster.run_dedup2(true).ok()) std::exit(1);
  cluster.reset_clocks();

  double logical = 0, elapsed = 0;
  for (unsigned v = 1; v <= kVersions; ++v) {
    std::vector<core::ServerClocks> before(servers);
    for (std::size_t s = 0; s < servers; ++s) {
      before[s] = cluster.server(s).clocks();
    }
    backup_version(v);
    logical += static_cast<double>(servers) * kChunksPerVersionPerServer *
               kChunkSize;
    double d1 = 0;
    for (std::size_t s = 0; s < servers; ++s) {
      const core::ServerClocks now = cluster.server(s).clocks();
      d1 = std::max(d1, std::max(now.nic - before[s].nic,
                                 now.log_disk - before[s].log_disk));
    }
    elapsed += d1;
    const auto result = cluster.run_dedup2(/*force_siu=*/v % 2 == 0);
    if (!result.ok()) std::exit(1);
    elapsed += result.value().total_seconds();
  }

  // Capacity: a 32 GB part indexes ~10 TB of 8 KB chunks (Section 5.2).
  const double capacity_tb = servers * (part_gb / 32.0) * 10.0;
  return {.servers = servers,
          .part_gb = part_gb,
          .write_gbps = logical / elapsed / 1e9,
          .capacity_tb = capacity_tb};
}

void print_table() {
  std::printf("\n=== Figure 15: write throughput and capacity vs number of "
              "servers ===\n");
  std::printf("servers | tput-32GB (GB/s) | tput-64GB (GB/s) | cap-32GB "
              "(TB) | cap-64GB (TB)\n");
  for (unsigned w = 0; w <= 4; ++w) {
    const ModeResult m32 = run_mode(w, 32);
    const ModeResult m64 = run_mode(w, 64);
    std::printf("%7u | %16.2f | %16.2f | %13.0f | %12.0f\n", m32.servers,
                m32.write_gbps, m64.write_gbps, m32.capacity_tb,
                m64.capacity_tb);
  }
  std::printf("paper: both throughput curves grow linearly to ~4.2 GB/s "
              "(32 GB parts) at 16 servers; capacity doubles with part "
              "size (10 TB per 32 GB part)\n\n");
}

// ---- Elastic scale-out trajectory (DESIGN.md §5j) ----
//
// Weak scaling, like Figure 15 itself: a w=1 cluster serves four client
// streams (two per server); mid-trace the cluster splits live to w=2
// and four MORE streams attach, so each server is back to two. Aggregate
// write throughput should roughly double while the round time holds —
// SIL/SIU sweep a fixed-size index part per server, so per-server phase
// time is constant by design and scale-out is the only way to grow the
// fleet's ingest rate. Both phases are timed on the modeled device
// clocks — fully deterministic — so the speedup is a property of the
// system, not of the CI runner, and the --check gate can be tight.

constexpr std::size_t kElasticStreamsBefore = 4;
constexpr std::size_t kElasticStreamsAfter = 8;
constexpr unsigned kElasticVersionsPerPhase = 3;
constexpr std::uint64_t kElasticChunksPerVersion = 2000;  // per stream

struct ElasticResult {
  unsigned servers_before = 0;
  unsigned servers_after = 0;
  double gbps_before = 0;
  double gbps_after = 0;
  double speedup = 0;
};

ElasticResult run_scale_out() {
  core::ClusterConfig cfg;
  cfg.routing_bits = 1;
  cfg.repository_nodes = 4;
  cfg.server_config.index_params = {.prefix_bits = kPartPrefixBits,
                                    .blocks_per_bucket = 16};
  cfg.server_config.filter_params = {.hash_bits = 14, .capacity = 1 << 22};
  cfg.server_config.chunk_store.cache_params = {.hash_bits = 8,
                                                .capacity = 1 << 24};
  cfg.server_config.chunk_store.io_buckets = 256;
  // SIU every round: the split's migration preconditions require zero
  // pending entries, and it keeps the two phases symmetric.
  cfg.server_config.chunk_store.siu_threshold = 1;
  core::Cluster cluster(cfg);

  workload::SubspaceRegistry registry(3);  // 8 stream subspaces
  std::vector<std::unique_ptr<workload::VersionedStream>> streams;
  std::vector<std::uint64_t> jobs;
  for (std::size_t s = 0; s < kElasticStreamsAfter; ++s) {
    streams.push_back(std::make_unique<workload::VersionedStream>(
        &registry, workload::StreamParams{.stream_id = s,
                                          .dup_fraction = 0.5,
                                          .cross_fraction = 0.3,
                                          .seed = 1616}));
    jobs.push_back(
        cluster.director().define_job("c" + std::to_string(s), "stream"));
  }

  // The attached stream population spreads evenly over the current
  // fleet: two per server in both phases.
  auto backup_version = [&](unsigned v, std::size_t active_streams) {
    const std::size_t servers = cluster.server_count();
    for (std::size_t s = 0; s < active_streams; ++s) {
      const std::size_t srv = s * servers / active_streams;
      const auto fps = streams[s]->next_version(kElasticChunksPerVersion);
      core::FileStore& fs = cluster.server(srv).file_store();
      fs.begin_job(jobs[s]);
      fs.begin_file({.path = "v" + std::to_string(v),
                     .size = fps.size() * kChunkSize, .mtime = 0,
                     .mode = 0644});
      for (const Fingerprint& fp : fps) {
        if (fs.offer_fingerprint(fp, kChunkSize)) {
          const auto payload =
              core::BackupEngine::synthetic_payload(fp, kChunkSize);
          if (!fs.receive_chunk(fp, ByteSpan(payload.data(), payload.size()))
                   .ok()) {
            std::exit(1);
          }
        }
      }
      fs.end_file();
      if (!fs.end_job().ok()) std::exit(1);
    }
  };

  // Modeled seconds for one phase: per version, ingest elapsed is the
  // slowest server's NIC/log progress, then the round's own total.
  auto timed_phase = [&](unsigned first_v, std::size_t active_streams) {
    double elapsed = 0;
    for (unsigned v = first_v; v < first_v + kElasticVersionsPerPhase; ++v) {
      const std::size_t n = cluster.server_count();
      std::vector<core::ServerClocks> before(n);
      for (std::size_t s = 0; s < n; ++s) {
        before[s] = cluster.server(s).clocks();
      }
      backup_version(v, active_streams);
      double d1 = 0;
      for (std::size_t s = 0; s < n; ++s) {
        const core::ServerClocks now = cluster.server(s).clocks();
        d1 = std::max(d1, std::max(now.nic - before[s].nic,
                                   now.log_disk - before[s].log_disk));
      }
      elapsed += d1;
      const auto result = cluster.run_dedup2(/*force_siu=*/true);
      if (!result.ok()) {
        std::fprintf(stderr, "dedup-2 failed: %s\n",
                     result.error().to_string().c_str());
        std::exit(1);
      }
      elapsed += result.value().total_seconds();
    }
    return elapsed;
  };

  backup_version(0, kElasticStreamsBefore);  // warm-up
  if (!cluster.run_dedup2(true).ok()) std::exit(1);

  const double logical_per_stream = static_cast<double>(
      kElasticVersionsPerPhase) * kElasticChunksPerVersion * kChunkSize;
  ElasticResult r;
  r.servers_before = static_cast<unsigned>(cluster.server_count());
  r.gbps_before = kElasticStreamsBefore * logical_per_stream /
                  timed_phase(1, kElasticStreamsBefore) / 1e9;

  const Status split = cluster.split();
  if (!split.ok()) {
    std::fprintf(stderr, "mid-trace split failed: %s\n",
                 split.message().c_str());
    std::exit(1);
  }
  r.servers_after = static_cast<unsigned>(cluster.server_count());
  r.gbps_after = kElasticStreamsAfter * logical_per_stream /
                 timed_phase(1 + kElasticVersionsPerPhase,
                             kElasticStreamsAfter) / 1e9;
  r.speedup = r.gbps_after / r.gbps_before;

  // Fidelity: every stream's final version restores through the last
  // split-added server (the whole trace, including pre-split data, must
  // be reachable from the new topology).
  for (std::size_t s = 0; s < kElasticStreamsAfter; ++s) {
    const std::uint32_t last_version =
        s < kElasticStreamsBefore ? 1 + 2 * kElasticVersionsPerPhase
                                  : kElasticVersionsPerPhase;
    const auto restored =
        cluster.restore(jobs[s], last_version, r.servers_after - 1);
    if (!restored.ok()) {
      std::fprintf(stderr, "post-split restore of stream %zu failed: %s\n",
                   s, restored.error().to_string().c_str());
      std::exit(1);
    }
  }

  std::printf("scale-out: %u servers %.3f GB/s -> %u servers %.3f GB/s "
              "(speedup %.2fx)\n",
              r.servers_before, r.gbps_before, r.servers_after,
              r.gbps_after, r.speedup);
  return r;
}

void write_elastic_json(const ElasticResult& r, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"elastic_scale_out\",\n");
  std::fprintf(f,
               "  \"workload\": {\"streams_before\": %zu, "
               "\"streams_after\": %zu, \"versions_per_phase\": %u, "
               "\"chunks_per_version\": %llu, \"chunk_bytes\": %u},\n",
               kElasticStreamsBefore, kElasticStreamsAfter,
               kElasticVersionsPerPhase,
               static_cast<unsigned long long>(kElasticChunksPerVersion),
               kChunkSize);
  std::fprintf(f, "  \"before\": {\"servers\": %u, \"write_gbps\": %.4f},\n",
               r.servers_before, r.gbps_before);
  std::fprintf(f, "  \"after\": {\"servers\": %u, \"write_gbps\": %.4f},\n",
               r.servers_after, r.gbps_after);
  std::fprintf(f, "  \"speedup\": %.4f\n}\n", r.speedup);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int check_scale_out(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "baseline %s missing\n", path.c_str());
    return 1;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const std::string key = "\"speedup\": ";
  const std::size_t at = text.find(key);
  if (at == std::string::npos) {
    std::fprintf(stderr, "baseline %s malformed: no speedup\n", path.c_str());
    return 1;
  }
  const double baseline = std::strtod(text.c_str() + at + key.size(),
                                      nullptr);
  const ElasticResult r = run_scale_out();
  // The measurement is on modeled clocks, so it is deterministic; the
  // 5% margin only absorbs intentional model retunes, not runner noise.
  if (r.speedup < 1.5) {
    std::fprintf(stderr,
                 "post-split speedup %.2fx below the 1.5x acceptance bar\n",
                 r.speedup);
    return 1;
  }
  if (r.speedup < baseline * 0.95) {
    std::fprintf(stderr, "speedup regressed >5%%: %.3f vs baseline %.3f\n",
                 r.speedup, baseline);
    return 1;
  }
  std::printf("scale-out speedup %.2fx within 5%% of %s\n", r.speedup,
              path.c_str());
  return 0;
}

void BM_Fig15_Scaling(benchmark::State& state) {
  const unsigned w = static_cast<unsigned>(state.range(0));
  const unsigned part_gb = state.range(1) == 0 ? 32 : 64;
  ModeResult m{};
  for (auto _ : state) {
    m = run_mode(w, part_gb);
    benchmark::DoNotOptimize(m);
  }
  state.counters["servers"] = m.servers;
  state.counters["part_GB"] = m.part_gb;
  state.counters["write_GBps"] = m.write_gbps;
  state.counters["capacity_TB"] = m.capacity_tb;
}
BENCHMARK(BM_Fig15_Scaling)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale-out") != 0) continue;
    std::string out = "BENCH_elastic.json";
    for (int j = 1; j < argc; ++j) {
      if (std::strcmp(argv[j], "--check") == 0 && j + 1 < argc) {
        return check_scale_out(argv[j + 1]);
      }
      if (std::strcmp(argv[j], "--out") == 0 && j + 1 < argc) {
        out = argv[j + 1];
      }
    }
    write_elastic_json(run_scale_out(), out);
    return 0;
  }
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
