// Figure 15: write throughput and supported capacity of multi-server
// DEBAR, for 1..16 backup servers and per-server index parts of 32 GB and
// 64 GB (the paper's first ten run modes).
//
// Expectation (the paper's headline scalability claim): aggregate write
// throughput and total capacity both grow linearly with the number of
// servers; the larger index part supports double the capacity at a lower
// throughput (PSIL/PSIU take twice as long).
//
// Paper reference points: throughput-32GB reaches ~4.2 GB/s at 16
// servers; capacity: 32 GB part ~ 10 TB, so 16 x 64 GB ~ 320 TB.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

#include "core/cluster.hpp"
#include "workload/fingerprint_stream.hpp"

namespace {

using namespace debar;

constexpr unsigned kPartPrefixBits = 10;
constexpr std::uint64_t kActualPartBytes =
    (std::uint64_t{1} << kPartPrefixBits) * 16 * kIndexBlockSize;
constexpr std::uint32_t kChunkSize = kExpectedChunkSize;
constexpr unsigned kVersions = 3;
constexpr std::uint64_t kChunksPerVersionPerServer = 2500;
// Paper data:index proportion for this experiment: each server ingests
// 10 x 50 GB = 500 GB against a 32/64 GB part -> ratios ~16:1 and ~8:1.
constexpr double kDataToIndex32 = 16.0;

struct ModeResult {
  unsigned servers;
  unsigned part_gb;
  double write_gbps;
  double capacity_tb;  // paper-scale capacity this mode supports
};

ModeResult run_mode(unsigned routing_bits, unsigned part_gb) {
  const unsigned servers = 1u << routing_bits;
  const double per_server_logical =
      static_cast<double>(kVersions) * kChunksPerVersionPerServer * kChunkSize;
  const std::uint64_t modeled_part_bytes = static_cast<std::uint64_t>(
      per_server_logical / kDataToIndex32 * (part_gb / 32.0));

  core::ClusterConfig cfg;
  cfg.routing_bits = routing_bits;
  cfg.repository_nodes = std::max<std::size_t>(4, servers);
  cfg.server_config.index_params = {.prefix_bits = kPartPrefixBits,
                                    .blocks_per_bucket = 16};
  cfg.server_config.index_profile =
      sim::DiskProfile::PaperRaid().scaled_to(modeled_part_bytes,
                                              kActualPartBytes);
  cfg.server_config.filter_params = {.hash_bits = 14, .capacity = 1 << 22};
  cfg.server_config.chunk_store.cache_params = {.hash_bits = 8,
                                                .capacity = 1 << 24};
  cfg.server_config.chunk_store.io_buckets = 256;
  cfg.server_config.chunk_store.siu_threshold = 1 << 30;
  core::Cluster cluster(cfg);

  workload::SubspaceRegistry registry(6);  // up to 64 streams
  std::vector<std::unique_ptr<workload::VersionedStream>> streams;
  std::vector<std::uint64_t> jobs;
  for (std::size_t s = 0; s < servers; ++s) {
    streams.push_back(std::make_unique<workload::VersionedStream>(
        &registry, workload::StreamParams{.stream_id = s,
                                          .dup_fraction = 0.9,
                                          .cross_fraction = 0.3,
                                          .seed = 1515}));
    jobs.push_back(
        cluster.director().define_job("c" + std::to_string(s), "stream"));
  }

  auto backup_version = [&](unsigned v) {
    for (std::size_t s = 0; s < servers; ++s) {
      const auto fps = streams[s]->next_version(kChunksPerVersionPerServer);
      core::FileStore& fs = cluster.server(s).file_store();
      fs.begin_job(jobs[s]);
      fs.begin_file({.path = "v" + std::to_string(v),
                     .size = fps.size() * kChunkSize, .mtime = 0,
                     .mode = 0644});
      for (const Fingerprint& fp : fps) {
        if (fs.offer_fingerprint(fp, kChunkSize)) {
          const auto payload =
              core::BackupEngine::synthetic_payload(fp, kChunkSize);
          if (!fs.receive_chunk(fp, ByteSpan(payload.data(), payload.size()))
                   .ok()) {
            std::exit(1);
          }
        }
      }
      fs.end_file();
      if (!fs.end_job().ok()) std::exit(1);
    }
  };

  // Warm-up version, then measured versions.
  backup_version(0);
  if (!cluster.run_dedup2(true).ok()) std::exit(1);
  cluster.reset_clocks();

  double logical = 0, elapsed = 0;
  for (unsigned v = 1; v <= kVersions; ++v) {
    std::vector<core::ServerClocks> before(servers);
    for (std::size_t s = 0; s < servers; ++s) {
      before[s] = cluster.server(s).clocks();
    }
    backup_version(v);
    logical += static_cast<double>(servers) * kChunksPerVersionPerServer *
               kChunkSize;
    double d1 = 0;
    for (std::size_t s = 0; s < servers; ++s) {
      const core::ServerClocks now = cluster.server(s).clocks();
      d1 = std::max(d1, std::max(now.nic - before[s].nic,
                                 now.log_disk - before[s].log_disk));
    }
    elapsed += d1;
    const auto result = cluster.run_dedup2(/*force_siu=*/v % 2 == 0);
    if (!result.ok()) std::exit(1);
    elapsed += result.value().total_seconds();
  }

  // Capacity: a 32 GB part indexes ~10 TB of 8 KB chunks (Section 5.2).
  const double capacity_tb = servers * (part_gb / 32.0) * 10.0;
  return {.servers = servers,
          .part_gb = part_gb,
          .write_gbps = logical / elapsed / 1e9,
          .capacity_tb = capacity_tb};
}

void print_table() {
  std::printf("\n=== Figure 15: write throughput and capacity vs number of "
              "servers ===\n");
  std::printf("servers | tput-32GB (GB/s) | tput-64GB (GB/s) | cap-32GB "
              "(TB) | cap-64GB (TB)\n");
  for (unsigned w = 0; w <= 4; ++w) {
    const ModeResult m32 = run_mode(w, 32);
    const ModeResult m64 = run_mode(w, 64);
    std::printf("%7u | %16.2f | %16.2f | %13.0f | %12.0f\n", m32.servers,
                m32.write_gbps, m64.write_gbps, m32.capacity_tb,
                m64.capacity_tb);
  }
  std::printf("paper: both throughput curves grow linearly to ~4.2 GB/s "
              "(32 GB parts) at 16 servers; capacity doubles with part "
              "size (10 TB per 32 GB part)\n\n");
}

void BM_Fig15_Scaling(benchmark::State& state) {
  const unsigned w = static_cast<unsigned>(state.range(0));
  const unsigned part_gb = state.range(1) == 0 ? 32 : 64;
  ModeResult m{};
  for (auto _ : state) {
    m = run_mode(w, part_gb);
    benchmark::DoNotOptimize(m);
  }
  state.counters["servers"] = m.servers;
  state.counters["part_GB"] = m.part_gb;
  state.counters["write_GBps"] = m.write_gbps;
  state.counters["capacity_TB"] = m.capacity_tb;
}
BENCHMARK(BM_Fig15_Scaling)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
