// Figure 12: throughput under different system capacities, 1 GB of memory
// per system.
//
// DEBAR spends its memory on the SIL/SIU index cache, so growing capacity
// only grows the disk index — dedup-2 slows gracefully (SIL/SIU time is
// proportional to index size) while dedup-1 is untouched. DDFS spends the
// same memory on its Bloom-filter summary vector, so growing capacity
// shrinks m/n and the false-positive rate explodes — every false positive
// is a random index I/O in the inline path.
//
// Scale: everything is run at 1/4096 of paper scale (data volume, index
// size, Bloom size), which keeps the data:index ratio — and hence every
// modeled throughput — comparable. Capacity points {8,16,32,64,128} TB map
// to indexes of {32,...,512} GB (paper) = 2^{8..12} buckets here.
//
// Paper reference points: DEBAR total 330 -> 214 MB/s and dedup-2 197 ->
// 97 MB/s across the sweep; DDFS ~190 MB/s at 8 TB collapsing to <28% of
// that beyond ~12 TB.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "common/sha1.hpp"
#include "core/backup_engine.hpp"
#include "ddfs/ddfs_server.hpp"
#include "filter/bloom_filter.hpp"
#include "workload/hust_trace.hpp"

namespace {

using namespace debar;

constexpr std::uint32_t kChunkSize = kExpectedChunkSize;
constexpr std::size_t kClients = 8;
constexpr std::uint64_t kChunksPerClient = 1024;
constexpr unsigned kDays = 14;
constexpr std::uint64_t kSeed = 1212;

struct DebarPoint {
  double total_mbps = 0;
  double dedup2_mbps = 0;
};

/// Run the scaled HUSt trace against a DEBAR server whose index has
/// 2^prefix_bits 8 KiB buckets.
DebarPoint run_debar(unsigned prefix_bits) {
  storage::ChunkRepository repo(1);
  core::Director director;
  core::BackupServerConfig cfg;
  cfg.index_params = {.prefix_bits = prefix_bits, .blocks_per_bucket = 16};
  cfg.filter_params = {.hash_bits = 14, .capacity = 1 << 22};
  cfg.chunk_store.cache_params = {.hash_bits = 10, .capacity = 1 << 23};
  cfg.chunk_store.io_buckets = 256;
  cfg.chunk_store.siu_threshold = 6000;
  core::BackupServer server(0, cfg, &repo, &director);
  core::BackupEngine engine("hust", &director);

  std::vector<std::uint64_t> jobs;
  for (std::size_t c = 0; c < kClients; ++c) {
    jobs.push_back(director.define_job("node" + std::to_string(c), "hust"));
  }
  workload::HustTrace trace({.days = kDays, .clients = kClients,
                             .mean_daily_chunks = kChunksPerClient,
                             .seed = kSeed});

  double logical = 0, d1_seconds = 0, d2_seconds = 0, d2_in = 0;
  double undetermined_bytes = 0;
  const double trigger = 2.5 * kClients * kChunksPerClient * kChunkSize / 3.6;

  for (unsigned day = 1; day <= kDays; ++day) {
    const core::ServerClocks before = server.clocks();
    for (auto& job : trace.day(day)) {
      const auto stats = engine.run_backup_stream(
          jobs[job.client], std::span<const Fingerprint>(job.stream),
          server.file_store(), kChunkSize);
      if (!stats.ok()) std::exit(1);
      logical += static_cast<double>(stats.value().logical_bytes);
      undetermined_bytes +=
          static_cast<double>(stats.value().transferred_bytes);
    }
    const core::ServerClocks mid = server.clocks();
    d1_seconds += std::max(mid.nic - before.nic,
                           mid.log_disk - before.log_disk);

    if (undetermined_bytes >= trigger || day == kDays) {
      const core::ServerClocks b2 = server.clocks();
      const double repo_b2 = repo.max_node_seconds();
      const auto result = server.run_dedup2(day == kDays);
      if (!result.ok()) std::exit(1);
      const core::ServerClocks a2 = server.clocks();
      d2_seconds += result.value().sil_seconds +
                    std::max(a2.log_disk - b2.log_disk,
                             repo.max_node_seconds() - repo_b2) +
                    result.value().siu_seconds;
      d2_in += undetermined_bytes;
      undetermined_bytes = 0;
    }
  }
  return {.total_mbps = logical / (d1_seconds + d2_seconds) / 1e6,
          .dedup2_mbps = d2_in / d2_seconds / 1e6};
}

/// DDFS at a given summary-vector load m/n: a working set is really
/// stored, then the Bloom filter is inflated to the target occupancy and
/// a 10%-new day is pushed through. Throughput is logical bytes over
/// (NIC + index) modeled time.
double run_ddfs(double m_over_n) {
  storage::ChunkRepository repo(1);
  ddfs::DdfsConfig cfg;
  cfg.bloom_bits = 1 << 21;  // "1 GB" at 1/4096 scale
  cfg.bloom_hashes = 4;      // the paper's Figure 12 measurement uses k=4
  cfg.index_params = {.prefix_bits = 8, .blocks_per_bucket = 16};
  cfg.write_buffer_entries = 800;
  cfg.io_buckets = 256;
  ddfs::DdfsServer server(cfg, &repo);

  // Store a real working set (what today's duplicates will refer to).
  constexpr std::uint64_t kWorkingSet = 8192;
  std::vector<Fingerprint> stored;
  stored.reserve(kWorkingSet);
  for (std::uint64_t i = 0; i < kWorkingSet; ++i) {
    stored.push_back(Sha1::hash_counter(i));
  }
  if (!server.backup_stream(std::span<const Fingerprint>(stored), kChunkSize)
           .ok() ||
      !server.flush_write_buffer().ok()) {
    std::exit(1);
  }

  // Inflate the summary vector to the target m/n.
  const auto target_n =
      static_cast<std::uint64_t>(cfg.bloom_bits / m_over_n);
  if (target_n > kWorkingSet) {
    server.inflate_summary_vector(target_n - kWorkingSet);
  }
  server.reset_clocks();

  // One day: 90% duplicates (locality runs over the working set), 10% new.
  Xoshiro256 rng(99);
  std::vector<Fingerprint> day;
  std::uint64_t fresh_counter = 1ULL << 40;
  while (day.size() < 16384) {
    const std::uint64_t run_len = 64 + rng.below(128);
    if (rng.chance(0.9)) {
      const std::uint64_t start = rng.below(kWorkingSet - run_len);
      for (std::uint64_t i = 0; i < run_len; ++i) {
        day.push_back(stored[start + i]);
      }
    } else {
      for (std::uint64_t i = 0; i < run_len; ++i) {
        day.push_back(Sha1::hash_counter(fresh_counter++));
      }
    }
  }
  const auto stats =
      server.backup_stream(std::span<const Fingerprint>(day), kChunkSize);
  if (!stats.ok()) std::exit(1);
  const double seconds = server.nic_seconds() + server.index_seconds();
  return static_cast<double>(stats.value().logical_bytes) / seconds / 1e6;
}

struct CapacityPoint {
  double capacity_tb;   // paper-scale capacity
  unsigned prefix_bits; // DEBAR index size at bench scale
  double ddfs_m_over_n; // DDFS summary-vector load at this stored volume
};

constexpr CapacityPoint kPoints[] = {
    {8, 8, 8.0}, {16, 9, 4.0}, {32, 10, 2.0},
    {64, 11, 1.0}, {128, 12, 0.5},
};

void print_table() {
  std::printf("\n=== Figure 12: throughput vs system capacity (MB/s, "
              "modeled; 1 GB memory per system) ===\n");
  std::printf("capacity (TB) | DEBAR total | DEBAR dedup-2 | DDFS | "
              "DDFS bloom fpr\n");
  for (const CapacityPoint& p : kPoints) {
    const DebarPoint debar = run_debar(p.prefix_bits);
    const double ddfs = run_ddfs(p.ddfs_m_over_n);
    const double fpr = filter::BloomFilter::false_positive_rate(
        1000, static_cast<std::uint64_t>(1000 * p.ddfs_m_over_n), 4);
    std::printf("%13.0f | %11.1f | %13.1f | %4.1f | %13.1f%%\n",
                p.capacity_tb, debar.total_mbps, debar.dedup2_mbps, ddfs,
                fpr * 100.0);
  }
  std::printf("paper anchors: DEBAR total 330 -> 214; dedup-2 197 -> 97; "
              "DDFS ~190 at 8 TB, <28%% of that past ~12 TB\n\n");
}

void BM_Fig12_Capacity(benchmark::State& state) {
  const CapacityPoint& p = kPoints[state.range(0)];
  DebarPoint debar{};
  double ddfs = 0;
  for (auto _ : state) {
    debar = run_debar(p.prefix_bits);
    ddfs = run_ddfs(p.ddfs_m_over_n);
    benchmark::DoNotOptimize(ddfs);
  }
  state.counters["capacity_TB"] = p.capacity_tb;
  state.counters["debar_total_MBps"] = debar.total_mbps;
  state.counters["debar_d2_MBps"] = debar.dedup2_mbps;
  state.counters["ddfs_MBps"] = ddfs;
}
BENCHMARK(BM_Fig12_Capacity)->DenseRange(0, 4)->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
