// Dedup-1 hot-path throughput: chunking + fingerprinting, the per-byte
// cost every DEBAR client pays, across the algorithm/lane matrix —
// scalar Rabin + streaming SHA-1 (the seed hot path) vs. gear chunking
// with the scalar/SSE2/AVX2 scans and multi-buffer SHA-1 (DESIGN.md
// §5i). Emits machine-readable BENCH_chunking.json.
//
//   bench_chunking [--out <path>]   measure and write the JSON
//   bench_chunking --check <path>   re-measure and compare against the
//                                   checked-in baseline: fails if the
//                                   best gear lane's speedup over scalar
//                                   Rabin drops below the 3x acceptance
//                                   bar or below 95% of the baseline's
//                                   recorded speedup
//
// Absolute MB/s is machine-dependent, so the gate is on speedup RATIOS
// measured in the same process on the same corpus — those survive a CI
// runner swap; raw throughput numbers in the JSON are informational.
//
// Every lane's boundaries and fingerprints are verified identical to
// the scalar references while measuring: a lane that got fast by
// cutting different chunks fails here before any test does.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "chunking/gear_chunker.hpp"
#include "chunking/rabin_chunker.hpp"
#include "common/rng.hpp"
#include "common/sha1.hpp"
#include "common/simd.hpp"
#include "workload/file_tree.hpp"

namespace {

using namespace debar;

// Size-swept seeded corpus: random segments from 256 KiB to 16 MiB plus
// one versioned-file-tree segment (real backup-shaped bytes), processed
// segment-by-segment like the engine processes files.
std::vector<std::vector<Byte>> make_corpus() {
  std::vector<std::vector<Byte>> segments;
  for (const std::size_t size :
       {256 * KiB, 1 * MiB, 4 * MiB, 16 * MiB}) {
    Xoshiro256 rng(9000 + size);
    std::vector<Byte> seg(size);
    for (auto& b : seg) b = static_cast<Byte>(rng());
    segments.push_back(std::move(seg));
  }
  workload::FileTreeParams tree;
  tree.files = 24;
  tree.mean_file_bytes = 256 * KiB;
  tree.seed = 77;
  const core::Dataset dataset = workload::make_dataset(tree);
  std::vector<Byte> trace;
  for (const auto& file : dataset.files) {
    trace.insert(trace.end(), file.content.begin(), file.content.end());
  }
  segments.push_back(std::move(trace));
  return segments;
}

struct Lane {
  std::string name;
  const char* algo;
  const char* simd;
  double mb_per_s = 0;
  double best_seconds = 0;
  std::uint64_t chunks = 0;
};

struct LaneOutput {
  std::vector<std::vector<chunking::ChunkBounds>> bounds;  // per segment
  std::vector<std::vector<Fingerprint>> fps;
};

constexpr int kReps = 5;

// One chunk+fingerprint pass over the whole corpus; returns wall time.
template <class ChunkFn, class HashFn>
double one_pass(const std::vector<std::vector<Byte>>& corpus,
                ChunkFn&& chunk_fn, HashFn&& hash_fn, LaneOutput& out) {
  out.bounds.clear();
  out.fps.clear();
  const auto start = std::chrono::steady_clock::now();
  for (const auto& seg : corpus) {
    const ByteSpan content(seg.data(), seg.size());
    std::vector<chunking::ChunkBounds> bounds = chunk_fn(content);
    std::vector<ByteSpan> spans;
    spans.reserve(bounds.size());
    for (const auto& b : bounds) spans.push_back(content.subspan(b.offset, b.size));
    out.fps.push_back(hash_fn(spans));
    out.bounds.push_back(std::move(bounds));
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

template <class ChunkFn, class HashFn>
Lane run_lane(const std::string& name, const char* algo, const char* simd,
              const std::vector<std::vector<Byte>>& corpus, ChunkFn&& chunk_fn,
              HashFn&& hash_fn, LaneOutput& out) {
  Lane lane;
  lane.name = name;
  lane.algo = algo;
  lane.simd = simd;
  lane.best_seconds = 1e30;
  std::uint64_t total_bytes = 0;
  for (const auto& seg : corpus) total_bytes += seg.size();
  for (int rep = 0; rep < kReps; ++rep) {
    const double secs = one_pass(corpus, chunk_fn, hash_fn, out);
    if (secs < lane.best_seconds) lane.best_seconds = secs;
  }
  lane.mb_per_s =
      static_cast<double>(total_bytes) / (1e6 * lane.best_seconds);
  for (const auto& b : out.bounds) lane.chunks += b.size();
  std::printf("%-12s %8.1f MB/s  (%llu chunks, best of %d)\n",
              lane.name.c_str(), lane.mb_per_s,
              static_cast<unsigned long long>(lane.chunks), kReps);
  return lane;
}

struct Measurement {
  std::vector<Lane> lanes;
  double gear_best_speedup = 0;   // best gear lane vs rabin-scalar
  double gear_simd_speedup = 0;   // best gear lane vs gear-scalar
  std::string gear_best_lane;
};

Measurement measure() {
  const std::vector<std::vector<Byte>> corpus = make_corpus();
  Measurement m;

  // The seed hot path: byte-at-a-time Rabin + one streaming SHA-1 per
  // chunk (exactly what BackupEngine did before this lane existed).
  LaneOutput rabin_out;
  chunking::RabinChunker rabin;
  m.lanes.push_back(run_lane(
      "rabin-scalar", "rabin", "scalar", corpus,
      [&](ByteSpan data) { return rabin.chunk(data); },
      [](const std::vector<ByteSpan>& spans) {
        std::vector<Fingerprint> fps;
        fps.reserve(spans.size());
        for (const ByteSpan s : spans) fps.push_back(Sha1::hash(s));
        return fps;
      },
      rabin_out));

  // Gear lanes: scalar reference first, then each supported SIMD lane,
  // all with the matching hash_batch policy.
  LaneOutput gear_ref;
  std::vector<SimdPolicy> policies = {SimdPolicy::kScalar};
  for (SimdPolicy p : {SimdPolicy::kSse2, SimdPolicy::kAvx2}) {
    if (simd_supported(p)) policies.push_back(p);
  }
  double gear_scalar_mbs = 0;
  for (const SimdPolicy policy : policies) {
    chunking::GearParams params;
    params.simd = policy;
    chunking::GearChunker gear(params);
    LaneOutput out;
    const Lane lane = run_lane(
        std::string("gear-") + simd_name(policy), "gear", simd_name(policy),
        corpus, [&](ByteSpan data) { return gear.chunk(data); },
        [&](const std::vector<ByteSpan>& spans) {
          return Sha1::hash_batch(spans, policy);
        },
        out);
    if (policy == SimdPolicy::kScalar) {
      gear_ref = std::move(out);
      gear_scalar_mbs = lane.mb_per_s;
    } else if (out.bounds != gear_ref.bounds || out.fps != gear_ref.fps) {
      // The equivalence battery's acceptance bar, enforced on the bench
      // corpus too: lanes may only differ in speed.
      std::fprintf(stderr, "%s: boundaries/fingerprints differ from scalar\n",
                   lane.name.c_str());
      std::exit(1);
    }
    m.lanes.push_back(lane);
  }

  const double rabin_mbs = m.lanes.front().mb_per_s;
  for (const Lane& lane : m.lanes) {
    if (std::string(lane.algo) != "gear") continue;
    const double speedup = lane.mb_per_s / rabin_mbs;
    if (speedup > m.gear_best_speedup) {
      m.gear_best_speedup = speedup;
      m.gear_best_lane = lane.name;
      m.gear_simd_speedup = lane.mb_per_s / gear_scalar_mbs;
    }
  }
  std::printf("best gear lane %s: %.2fx vs rabin-scalar, %.2fx vs "
              "gear-scalar\n",
              m.gear_best_lane.c_str(), m.gear_best_speedup,
              m.gear_simd_speedup);
  return m;
}

void write_json(const Measurement& m, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"chunking\",\n");
  std::fprintf(f,
               "  \"workload\": {\"segments\": \"256K/1M/4M/16M seeded "
               "random + 24-file versioned tree\", \"reps\": %d, "
               "\"measure\": \"chunk+fingerprint, best-of-reps\"},\n",
               kReps);
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < m.lanes.size(); ++i) {
    const Lane& lane = m.lanes[i];
    std::fprintf(f,
                 "    {\"lane\": \"%s\", \"algo\": \"%s\", \"simd\": "
                 "\"%s\", \"mb_per_s\": %.1f, \"chunks\": %llu}%s\n",
                 lane.name.c_str(), lane.algo, lane.simd, lane.mb_per_s,
                 static_cast<unsigned long long>(lane.chunks),
                 i + 1 < m.lanes.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"speedup\": {\"gear_best_lane\": \"%s\", "
               "\"gear_best_vs_rabin_scalar\": %.3f, "
               "\"gear_best_vs_gear_scalar\": %.3f}\n",
               m.gear_best_lane.c_str(), m.gear_best_speedup,
               m.gear_simd_speedup);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

/// The acceptance bar BENCH_chunking.json must clear, here and in CI.
constexpr double kMinSpeedup = 3.0;

double baseline_speedup(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "baseline %s missing\n", path.c_str());
    std::exit(1);
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const std::string key = "\"gear_best_vs_rabin_scalar\": ";
  const std::size_t at = text.find(key);
  if (at == std::string::npos) {
    std::fprintf(stderr, "baseline %s malformed\n", path.c_str());
    std::exit(1);
  }
  return std::strtod(text.c_str() + at + key.size(), nullptr);
}

int check(const std::string& path) {
  const double baseline = baseline_speedup(path);
  const Measurement m = measure();
  int rc = 0;
  if (m.gear_best_speedup < kMinSpeedup) {
    std::fprintf(stderr,
                 "fastest gear lane is %.2fx vs rabin-scalar, below the "
                 "%.1fx acceptance bar\n",
                 m.gear_best_speedup, kMinSpeedup);
    rc = 1;
  }
  if (m.gear_best_speedup < 0.95 * baseline) {
    std::fprintf(stderr,
                 "fastest gear lane regressed >5%%: %.2fx vs baseline "
                 "%.2fx\n",
                 m.gear_best_speedup, baseline);
    rc = 1;
  }
  if (rc == 0) {
    std::printf("speedup %.2fx within 5%% of baseline %.2fx (bar %.1fx)\n",
                m.gear_best_speedup, baseline, kMinSpeedup);
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_chunking.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      return check(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
      continue;
    }
  }
  write_json(measure(), out);
  return 0;
}
