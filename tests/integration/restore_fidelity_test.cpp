// Property-style restore fidelity sweeps: whatever goes in must come out
// byte-exact, across dataset shapes, chunker parameters, and cache sizes.
#include <gtest/gtest.h>

#include "core/backup_engine.hpp"
#include "workload/file_tree.hpp"

namespace debar {
namespace {

struct FidelityCase {
  std::size_t files;
  std::uint64_t mean_file_bytes;
  double shared_fraction;
  std::size_t lpc_containers;
  std::uint64_t container_capacity;
};

class RestoreFidelityTest : public ::testing::TestWithParam<FidelityCase> {};

TEST_P(RestoreFidelityTest, RoundTripsByteExact) {
  const FidelityCase& param = GetParam();

  core::BackupServerConfig cfg;
  cfg.index_params = {.prefix_bits = 9, .blocks_per_bucket = 2};
  cfg.filter_params = {.hash_bits = 10, .capacity = 1 << 20};
  cfg.chunk_store.cache_params = {.hash_bits = 8, .capacity = 1 << 22};
  cfg.chunk_store.io_buckets = 32;
  cfg.chunk_store.siu_threshold = 1;
  cfg.chunk_store.lpc_containers = param.lpc_containers;
  cfg.container_capacity = param.container_capacity;

  storage::ChunkRepository repo(2);
  core::Director director;
  core::BackupServer server(0, cfg, &repo, &director);
  core::BackupEngine engine("client", &director);

  const auto dataset = workload::make_dataset(
      {.files = param.files,
       .mean_file_bytes = param.mean_file_bytes,
       .seed = 31 + param.files,
       .shared_fraction = param.shared_fraction});
  const std::uint64_t job = director.define_job("client", "d");

  ASSERT_TRUE(engine.run_backup(job, dataset, server.file_store()).ok());
  ASSERT_TRUE(server.run_dedup2(true).ok());

  const auto restored = engine.restore(job, 1, server, /*verify=*/true);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  ASSERT_EQ(restored.value().files.size(), dataset.files.size());
  for (std::size_t i = 0; i < dataset.files.size(); ++i) {
    ASSERT_EQ(restored.value().files[i].content, dataset.files[i].content)
        << dataset.files[i].path;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RestoreFidelityTest,
    ::testing::Values(
        // Small files, no sharing, tiny LPC (stress eviction).
        FidelityCase{12, 32 * KiB, 0.0, 1, 256 * KiB},
        // Medium files with heavy sharing.
        FidelityCase{8, 128 * KiB, 0.8, 4, 1 * MiB},
        // Large-ish files, small containers (many seals).
        FidelityCase{4, 512 * KiB, 0.3, 2, 128 * KiB},
        // Many tiny files.
        FidelityCase{48, 8 * KiB, 0.5, 4, 512 * KiB}));

class ChunkerFidelityTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChunkerFidelityTest, AnyExpectedChunkSizeRoundTrips) {
  const std::uint64_t expected = GetParam();
  chunking::CdcParams cdc;
  cdc.expected_size = expected;
  cdc.min_size = expected / 4;
  cdc.max_size = expected * 8;

  core::BackupServerConfig cfg;
  cfg.index_params = {.prefix_bits = 9, .blocks_per_bucket = 2};
  cfg.chunk_store.siu_threshold = 1;
  storage::ChunkRepository repo(1);
  core::Director director;
  core::BackupServer server(0, cfg, &repo, &director);
  core::BackupEngine engine("client", &director, cdc);

  const auto dataset = workload::make_dataset(
      {.files = 5, .mean_file_bytes = 128 * KiB, .seed = 77});
  const std::uint64_t job = director.define_job("client", "d");
  ASSERT_TRUE(engine.run_backup(job, dataset, server.file_store()).ok());
  ASSERT_TRUE(server.run_dedup2(true).ok());

  const auto restored = engine.restore(job, 1, server, true);
  ASSERT_TRUE(restored.ok());
  for (std::size_t i = 0; i < dataset.files.size(); ++i) {
    ASSERT_EQ(restored.value().files[i].content, dataset.files[i].content);
  }
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, ChunkerFidelityTest,
                         ::testing::Values(1024, 4096, 8192, 32768));

}  // namespace
}  // namespace debar
