// Multi-server PSIL/PSIU end-to-end: several clients backing up through
// different servers, global dedup across the cluster, restore through
// arbitrary servers.
#include <gtest/gtest.h>

#include "core/cluster.hpp"

#include "common/sha1.hpp"
#include "workload/fingerprint_stream.hpp"

namespace debar {
namespace {

core::ClusterConfig cluster_config(unsigned w) {
  core::ClusterConfig cfg;
  cfg.routing_bits = w;
  cfg.repository_nodes = 4;
  cfg.server_config.index_params = {.prefix_bits = 8, .blocks_per_bucket = 2};
  cfg.server_config.filter_params = {.hash_bits = 10, .capacity = 1 << 20};
  cfg.server_config.chunk_store.cache_params = {.hash_bits = 6,
                                                .capacity = 1 << 22};
  cfg.server_config.chunk_store.io_buckets = 32;
  cfg.server_config.chunk_store.siu_threshold = 1;
  return cfg;
}

void backup_stream(core::Cluster& cluster, std::size_t server,
                   std::uint64_t job, const std::vector<Fingerprint>& fps) {
  core::FileStore& fs = cluster.server(server).file_store();
  fs.begin_job(job);
  fs.begin_file({.path = "stream", .size = fps.size() * 4096, .mtime = 0,
                 .mode = 0644});
  for (const Fingerprint& f : fps) {
    if (fs.offer_fingerprint(f, 4096)) {
      const auto payload = core::BackupEngine::synthetic_payload(f, 4096);
      ASSERT_TRUE(
          fs.receive_chunk(f, ByteSpan(payload.data(), payload.size())).ok());
    }
  }
  fs.end_file();
  ASSERT_TRUE(fs.end_job().ok());
}

TEST(ClusterE2eTest, FourServersVersionedStreamsWithCrossDup) {
  core::Cluster cluster(cluster_config(2));
  workload::SubspaceRegistry registry(4);

  std::vector<std::unique_ptr<workload::VersionedStream>> streams;
  std::vector<std::uint64_t> jobs;
  for (std::size_t c = 0; c < 4; ++c) {
    streams.push_back(std::make_unique<workload::VersionedStream>(
        &registry, workload::StreamParams{.stream_id = c,
                                          .dup_fraction = 0.9,
                                          .cross_fraction = 0.3,
                                          .seed = 50}));
    jobs.push_back(cluster.director().define_job("client" + std::to_string(c),
                                                 "stream"));
  }

  std::uint64_t total_logical_chunks = 0;
  std::uint64_t total_new = 0;
  for (int version = 0; version < 4; ++version) {
    for (std::size_t c = 0; c < 4; ++c) {
      const auto fps = streams[c]->next_version(800);
      total_logical_chunks += fps.size();
      backup_stream(cluster, c, jobs[c], fps);
    }
    const auto result = cluster.run_dedup2(/*force_siu=*/true);
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    total_new += result.value().new_chunks;
  }

  // Global dedup: stored chunks should be a small fraction of logical.
  EXPECT_LT(total_new, total_logical_chunks / 2);

  // The cluster-wide index holds exactly the distinct stored fingerprints.
  std::uint64_t index_entries = 0;
  for (std::size_t k = 0; k < cluster.server_count(); ++k) {
    index_entries += cluster.server(k).chunk_store().index().entry_count();
  }
  EXPECT_EQ(index_entries, total_new);

  // Every version of every job restores with stamped-payload fidelity.
  for (std::size_t c = 0; c < 4; ++c) {
    for (std::uint32_t v = 1; v <= 4; ++v) {
      const auto restored = cluster.restore(jobs[c], v, (c + 1) % 4);
      ASSERT_TRUE(restored.ok())
          << "job " << c << " v" << v << ": " << restored.error().to_string();
      const auto& content = restored.value().files[0].content;
      const auto record = cluster.director().version(jobs[c], v);
      ASSERT_TRUE(record.has_value());
      const auto& fps = record->files[0].chunk_fps;
      ASSERT_EQ(content.size(), fps.size() * 4096);
      for (std::size_t i = 0; i < fps.size(); ++i) {
        ASSERT_TRUE(std::equal(fps[i].bytes.begin(), fps[i].bytes.end(),
                               content.begin() + i * 4096))
            << "chunk " << i;
      }
    }
  }
}

TEST(ClusterE2eTest, NoChunkStoredTwiceAcrossTheCluster) {
  core::Cluster cluster(cluster_config(1));
  const std::uint64_t j0 = cluster.director().define_job("a", "d");
  const std::uint64_t j1 = cluster.director().define_job("b", "d");

  // Heavily overlapping streams submitted to different servers in the
  // same round, twice.
  std::vector<Fingerprint> fps;
  for (std::uint64_t i = 0; i < 200; ++i) {
    fps.push_back(Sha1::hash_counter(i));
  }
  for (int round = 0; round < 2; ++round) {
    backup_stream(cluster, 0, j0, fps);
    backup_stream(cluster, 1, j1, fps);
    ASSERT_TRUE(cluster.run_dedup2(true).ok());
  }

  // Scan every container in the repository: each fingerprint must appear
  // exactly once globally.
  std::unordered_map<Fingerprint, int, FingerprintHash> copies;
  const std::uint64_t n = cluster.repository().container_count();
  for (std::uint64_t id = 1; id <= n; ++id) {
    const auto container = cluster.repository().read(ContainerId{id});
    ASSERT_TRUE(container.ok());
    for (const auto& m : container.value().metadata()) {
      ++copies[m.fp];
    }
  }
  EXPECT_EQ(copies.size(), 200u);
  for (const auto& [fp, count] : copies) {
    EXPECT_EQ(count, 1) << "fingerprint stored " << count << " times";
  }
}

TEST(ClusterE2eTest, ScalesToEightServers) {
  core::Cluster cluster(cluster_config(3));
  EXPECT_EQ(cluster.server_count(), 8u);
  const std::uint64_t job = cluster.director().define_job("c", "d");

  std::vector<Fingerprint> fps;
  for (std::uint64_t i = 0; i < 500; ++i) {
    fps.push_back(Sha1::hash_counter(1000 + i));
  }
  backup_stream(cluster, 5, job, fps);
  const auto r = cluster.run_dedup2(true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().new_chunks, 500u);

  // Index entries spread across all 8 parts (uniform fingerprints).
  std::size_t parts_with_entries = 0;
  for (std::size_t k = 0; k < 8; ++k) {
    if (cluster.server(k).chunk_store().index().entry_count() > 0) {
      ++parts_with_entries;
    }
  }
  EXPECT_EQ(parts_with_entries, 8u);

  const auto restored = cluster.restore(job, 1, 0);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().files[0].content.size(), 500u * 4096);
}

}  // namespace
}  // namespace debar
