// Crash-consistency sweep over the whole storage stack.
//
// Methodology: a profiling run with no faults records the global op-count
// span of each crash window (chunk-log append, SIL, container commit,
// SIU) per backup generation. Because a CrashRig built from the same
// options and datasets issues an identical op stream, a second rig armed
// with `crash_after_ops = N` crashes at a known point inside a known
// window. After each crash the frozen device images are recovered from
// scratch and every previously-acked generation must restore
// byte-identical — the durability invariant of the ack protocol.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "support/crash_rig.hpp"
#include "workload/file_tree.hpp"

namespace debar {
namespace {

using testsupport::CrashRig;
using testsupport::RunOutcome;
using testsupport::WindowSpan;

/// Three backup generations: a base dataset and two incremental mutations.
std::vector<core::Dataset> make_generations() {
  std::vector<core::Dataset> gens;
  gens.push_back(workload::make_dataset(
      {.files = 4, .mean_file_bytes = 24 * KiB, .seed = 41}));
  gens.push_back(workload::mutate_dataset(gens[0], {.seed = 42}));
  gens.push_back(workload::mutate_dataset(gens[1], {.seed = 43}));
  return gens;
}

struct CrashPoint {
  std::string window;
  std::uint32_t generation = 0;  // generations acked before the crash
  std::uint64_t op = 0;
};

/// Pick up to `per_window` evenly spaced op indices inside each span.
std::vector<CrashPoint> pick_crash_points(
    const std::vector<WindowSpan>& windows, std::uint64_t per_window) {
  std::vector<CrashPoint> points;
  for (const WindowSpan& w : windows) {
    if (w.empty()) continue;
    const std::uint64_t len = w.end - w.begin;
    const std::uint64_t n = std::min<std::uint64_t>(per_window, len);
    for (std::uint64_t k = 0; k < n; ++k) {
      points.push_back({w.window, w.generation, w.begin + k * len / n});
    }
  }
  return points;
}

TEST(CrashConsistency, AckedBackupsSurviveEveryCrashPoint) {
  const std::vector<core::Dataset> generations = make_generations();

  // Profiling run: no faults, record window spans, sanity-check the
  // clean pipeline end to end.
  CrashRig profile({}, generations);
  const RunOutcome clean = profile.run();
  ASSERT_FALSE(clean.failed) << clean.error;
  ASSERT_EQ(clean.acked, generations.size());
  ASSERT_TRUE(profile.recover_and_verify(clean.acked).ok());

  const std::vector<CrashPoint> points =
      pick_crash_points(profile.windows(), 3);

  std::set<std::string> kinds;
  for (const CrashPoint& p : points) kinds.insert(p.window);
  EXPECT_GE(kinds.size(), 4u) << "sweep must cover all four crash windows";
  EXPECT_GE(points.size(), 20u);

  for (const CrashPoint& point : points) {
    SCOPED_TRACE("crash in " + point.window + " at op " +
                 std::to_string(point.op) + " (generation " +
                 std::to_string(point.generation) + ")");
    CrashRig rig({}, generations);
    storage::FaultConfig faults;
    faults.crash_after_ops = point.op;
    rig.arm(faults);

    const RunOutcome outcome = rig.run();
    EXPECT_TRUE(outcome.failed)
        << "run acked " << outcome.acked << " generations without failing";
    EXPECT_TRUE(rig.injector().crashed());
    // The op streams are identical, so the crash lands in the profiled
    // window: every earlier generation acked, this one did not.
    EXPECT_EQ(outcome.acked, point.generation) << outcome.error;

    const Status recovered = rig.recover_and_verify(outcome.acked);
    EXPECT_TRUE(recovered.ok()) << recovered.to_string();
  }
}

TEST(CrashConsistency, ParallelSilSiuWindowsSurviveCrashes) {
  // Same sweep, but the server runs dedup-2 with sharded SIL and the
  // pipelined SIU (threads = 4), and the crash points target only the
  // index windows. The interleaving of ops inside a parallel window is
  // nondeterministic, but the op COUNT per phase is not (same set of
  // reads/writes in some order), so the profiled spans still place each
  // crash inside the intended phase — and the durability invariant must
  // hold for whichever interleaving the crash freezes.
  const std::vector<core::Dataset> generations = make_generations();
  CrashRig::Options opts;
  opts.dedup2 = {.threads = 4, .pipeline_depth = 2};

  CrashRig profile(opts, generations);
  const RunOutcome clean = profile.run();
  ASSERT_FALSE(clean.failed) << clean.error;
  ASSERT_EQ(clean.acked, generations.size());
  ASSERT_TRUE(profile.recover_and_verify(clean.acked).ok());

  std::vector<WindowSpan> index_windows;
  for (const WindowSpan& w : profile.windows()) {
    if (w.window == "sil" || w.window == "siu") index_windows.push_back(w);
  }
  const std::vector<CrashPoint> points = pick_crash_points(index_windows, 3);

  std::set<std::string> kinds;
  for (const CrashPoint& p : points) kinds.insert(p.window);
  EXPECT_EQ(kinds, (std::set<std::string>{"sil", "siu"}));
  EXPECT_GE(points.size(), 10u);

  for (const CrashPoint& point : points) {
    SCOPED_TRACE("parallel crash in " + point.window + " at op " +
                 std::to_string(point.op) + " (generation " +
                 std::to_string(point.generation) + ")");
    CrashRig rig(opts, generations);
    storage::FaultConfig faults;
    faults.crash_after_ops = point.op;
    rig.arm(faults);

    const RunOutcome outcome = rig.run();
    EXPECT_TRUE(outcome.failed)
        << "run acked " << outcome.acked << " generations without failing";
    EXPECT_TRUE(rig.injector().crashed());
    EXPECT_EQ(outcome.acked, point.generation) << outcome.error;

    const Status recovered = rig.recover_and_verify(outcome.acked);
    EXPECT_TRUE(recovered.ok()) << recovered.to_string();
  }
}

TEST(CrashConsistency, ParallelPipelineAbsorbsTransientFaults) {
  // Transient read/write/torn faults land on arbitrary ops of the
  // threaded pipeline (shard reads, prefetches, the SIU writer); the
  // per-range retries must absorb all of them regardless of which thread
  // drew the fault.
  const std::vector<core::Dataset> generations = make_generations();
  CrashRig::Options opts;
  opts.dedup2 = {.threads = 4, .pipeline_depth = 2};
  CrashRig rig(opts, generations);

  storage::FaultConfig faults;
  faults.read_error_rate = 0.02;
  faults.write_error_rate = 0.02;
  faults.torn_write_rate = 0.02;
  rig.arm(faults);

  const RunOutcome outcome = rig.run();
  EXPECT_FALSE(outcome.failed) << outcome.error;
  EXPECT_EQ(outcome.acked, generations.size());

  const Status recovered = rig.recover_and_verify(outcome.acked);
  EXPECT_TRUE(recovered.ok()) << recovered.to_string();
}

TEST(CrashConsistency, TransientWriteFaultsAreAbsorbedByRetries) {
  const std::vector<core::Dataset> generations = make_generations();
  CrashRig rig({}, generations);

  storage::FaultConfig faults;
  faults.write_error_rate = 0.03;
  faults.torn_write_rate = 0.03;
  rig.arm(faults);

  const RunOutcome outcome = rig.run();
  EXPECT_FALSE(outcome.failed) << outcome.error;
  EXPECT_EQ(outcome.acked, generations.size());

  const Status recovered = rig.recover_and_verify(outcome.acked);
  EXPECT_TRUE(recovered.ok()) << recovered.to_string();
}

TEST(CrashConsistency, TransientReadFaultsAreAbsorbedByRetries) {
  const std::vector<core::Dataset> generations = make_generations();
  CrashRig rig({}, generations);

  storage::FaultConfig faults;
  faults.read_error_rate = 0.02;
  rig.arm(faults);

  const RunOutcome outcome = rig.run();
  EXPECT_FALSE(outcome.failed) << outcome.error;
  EXPECT_EQ(outcome.acked, generations.size());

  const Status recovered = rig.recover_and_verify(outcome.acked);
  EXPECT_TRUE(recovered.ok()) << recovered.to_string();
}

}  // namespace
}  // namespace debar
