// Crash-consistency sweep over the whole storage stack.
//
// Methodology: a profiling run with no faults records the global op-count
// span of each crash window (chunk-log append, SIL, container commit,
// SIU) per backup generation. Because a CrashRig built from the same
// options and datasets issues an identical op stream, a second rig armed
// with `crash_after_ops = N` crashes at a known point inside a known
// window. After each crash the frozen device images are recovered from
// scratch and every previously-acked generation must restore
// byte-identical — the durability invariant of the ack protocol.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/sha1.hpp"
#include "core/cluster.hpp"
#include "core/cluster_node.hpp"
#include "index/disk_index.hpp"
#include "storage/faulty_block_device.hpp"
#include "support/crash_rig.hpp"
#include "workload/file_tree.hpp"

namespace debar {
namespace {

using testsupport::CrashRig;
using testsupport::RunOutcome;
using testsupport::WindowSpan;

/// Three backup generations: a base dataset and two incremental mutations.
std::vector<core::Dataset> make_generations() {
  std::vector<core::Dataset> gens;
  gens.push_back(workload::make_dataset(
      {.files = 4, .mean_file_bytes = 24 * KiB, .seed = 41}));
  gens.push_back(workload::mutate_dataset(gens[0], {.seed = 42}));
  gens.push_back(workload::mutate_dataset(gens[1], {.seed = 43}));
  return gens;
}

struct CrashPoint {
  std::string window;
  std::uint32_t generation = 0;  // generations acked before the crash
  std::uint64_t op = 0;
};

/// Pick up to `per_window` evenly spaced op indices inside each span.
std::vector<CrashPoint> pick_crash_points(
    const std::vector<WindowSpan>& windows, std::uint64_t per_window) {
  std::vector<CrashPoint> points;
  for (const WindowSpan& w : windows) {
    if (w.empty()) continue;
    const std::uint64_t len = w.end - w.begin;
    const std::uint64_t n = std::min<std::uint64_t>(per_window, len);
    for (std::uint64_t k = 0; k < n; ++k) {
      points.push_back({w.window, w.generation, w.begin + k * len / n});
    }
  }
  return points;
}

TEST(CrashConsistency, AckedBackupsSurviveEveryCrashPoint) {
  const std::vector<core::Dataset> generations = make_generations();

  // Profiling run: no faults, record window spans, sanity-check the
  // clean pipeline end to end.
  CrashRig profile({}, generations);
  const RunOutcome clean = profile.run();
  ASSERT_FALSE(clean.failed) << clean.error;
  ASSERT_EQ(clean.acked, generations.size());
  ASSERT_TRUE(profile.recover_and_verify(clean.acked).ok());

  const std::vector<CrashPoint> points =
      pick_crash_points(profile.windows(), 3);

  std::set<std::string> kinds;
  for (const CrashPoint& p : points) kinds.insert(p.window);
  EXPECT_GE(kinds.size(), 4u) << "sweep must cover all four crash windows";
  EXPECT_GE(points.size(), 20u);

  for (const CrashPoint& point : points) {
    SCOPED_TRACE("crash in " + point.window + " at op " +
                 std::to_string(point.op) + " (generation " +
                 std::to_string(point.generation) + ")");
    CrashRig rig({}, generations);
    storage::FaultConfig faults;
    faults.crash_after_ops = point.op;
    rig.arm(faults);

    const RunOutcome outcome = rig.run();
    EXPECT_TRUE(outcome.failed)
        << "run acked " << outcome.acked << " generations without failing";
    EXPECT_TRUE(rig.injector().crashed());
    // The op streams are identical, so the crash lands in the profiled
    // window: every earlier generation acked, this one did not.
    EXPECT_EQ(outcome.acked, point.generation) << outcome.error;

    const Status recovered = rig.recover_and_verify(outcome.acked);
    EXPECT_TRUE(recovered.ok()) << recovered.to_string();
  }
}

TEST(CrashConsistency, ParallelSilSiuWindowsSurviveCrashes) {
  // Same sweep, but the server runs dedup-2 with sharded SIL and the
  // pipelined SIU (threads = 4), and the crash points target only the
  // index windows. The interleaving of ops inside a parallel window is
  // nondeterministic, but the op COUNT per phase is not (same set of
  // reads/writes in some order), so the profiled spans still place each
  // crash inside the intended phase — and the durability invariant must
  // hold for whichever interleaving the crash freezes.
  const std::vector<core::Dataset> generations = make_generations();
  CrashRig::Options opts;
  opts.dedup2 = {.threads = 4, .pipeline_depth = 2};

  CrashRig profile(opts, generations);
  const RunOutcome clean = profile.run();
  ASSERT_FALSE(clean.failed) << clean.error;
  ASSERT_EQ(clean.acked, generations.size());
  ASSERT_TRUE(profile.recover_and_verify(clean.acked).ok());

  std::vector<WindowSpan> index_windows;
  for (const WindowSpan& w : profile.windows()) {
    if (w.window == "sil" || w.window == "siu") index_windows.push_back(w);
  }
  const std::vector<CrashPoint> points = pick_crash_points(index_windows, 3);

  std::set<std::string> kinds;
  for (const CrashPoint& p : points) kinds.insert(p.window);
  EXPECT_EQ(kinds, (std::set<std::string>{"sil", "siu"}));
  EXPECT_GE(points.size(), 10u);

  for (const CrashPoint& point : points) {
    SCOPED_TRACE("parallel crash in " + point.window + " at op " +
                 std::to_string(point.op) + " (generation " +
                 std::to_string(point.generation) + ")");
    CrashRig rig(opts, generations);
    storage::FaultConfig faults;
    faults.crash_after_ops = point.op;
    rig.arm(faults);

    const RunOutcome outcome = rig.run();
    EXPECT_TRUE(outcome.failed)
        << "run acked " << outcome.acked << " generations without failing";
    EXPECT_TRUE(rig.injector().crashed());
    EXPECT_EQ(outcome.acked, point.generation) << outcome.error;

    const Status recovered = rig.recover_and_verify(outcome.acked);
    EXPECT_TRUE(recovered.ok()) << recovered.to_string();
  }
}

TEST(CrashConsistency, ParallelPipelineAbsorbsTransientFaults) {
  // Transient read/write/torn faults land on arbitrary ops of the
  // threaded pipeline (shard reads, prefetches, the SIU writer); the
  // per-range retries must absorb all of them regardless of which thread
  // drew the fault.
  const std::vector<core::Dataset> generations = make_generations();
  CrashRig::Options opts;
  opts.dedup2 = {.threads = 4, .pipeline_depth = 2};
  CrashRig rig(opts, generations);

  storage::FaultConfig faults;
  faults.read_error_rate = 0.02;
  faults.write_error_rate = 0.02;
  faults.torn_write_rate = 0.02;
  rig.arm(faults);

  const RunOutcome outcome = rig.run();
  EXPECT_FALSE(outcome.failed) << outcome.error;
  EXPECT_EQ(outcome.acked, generations.size());

  const Status recovered = rig.recover_and_verify(outcome.acked);
  EXPECT_TRUE(recovered.ok()) << recovered.to_string();
}

TEST(CrashConsistency, TransientWriteFaultsAreAbsorbedByRetries) {
  const std::vector<core::Dataset> generations = make_generations();
  CrashRig rig({}, generations);

  storage::FaultConfig faults;
  faults.write_error_rate = 0.03;
  faults.torn_write_rate = 0.03;
  rig.arm(faults);

  const RunOutcome outcome = rig.run();
  EXPECT_FALSE(outcome.failed) << outcome.error;
  EXPECT_EQ(outcome.acked, generations.size());

  const Status recovered = rig.recover_and_verify(outcome.acked);
  EXPECT_TRUE(recovered.ok()) << recovered.to_string();
}

TEST(CrashConsistency, TransientReadFaultsAreAbsorbedByRetries) {
  const std::vector<core::Dataset> generations = make_generations();
  CrashRig rig({}, generations);

  storage::FaultConfig faults;
  faults.read_error_rate = 0.02;
  rig.arm(faults);

  const RunOutcome outcome = rig.run();
  EXPECT_FALSE(outcome.failed) << outcome.error;
  EXPECT_EQ(outcome.acked, generations.size());

  const Status recovered = rig.recover_and_verify(outcome.acked);
  EXPECT_TRUE(recovered.ok()) << recovered.to_string();
}

// ---------------------------------------------------------------------------
// Crash windows inside the replicated phase-E commit (DESIGN.md §5g).
// ---------------------------------------------------------------------------

/// A w=1 cluster whose four index devices (primaries of servers 0 and 1,
/// then their replicas, in factory-call order) share one FaultInjector,
/// so a hard crash point freezes all four images at a single global op.
/// The phase hook records the injector op-count when round 2 reaches
/// "commit" — the start of the swept window.
struct ReplicatedClusterRig {
  std::shared_ptr<storage::FaultInjector> injector =
      std::make_shared<storage::FaultInjector>(storage::FaultConfig{});
  std::shared_ptr<std::vector<storage::MemBlockDevice*>> inners =
      std::make_shared<std::vector<storage::MemBlockDevice*>>();
  std::shared_ptr<std::uint64_t> commit_begin =
      std::make_shared<std::uint64_t>(0);
  std::shared_ptr<int> commits_seen = std::make_shared<int>(0);
  std::unique_ptr<core::Cluster> cluster;

  ReplicatedClusterRig() {
    core::ClusterConfig cfg;
    cfg.routing_bits = 1;
    cfg.repository_nodes = 2;
    // Roomy enough that two 60-chunk rounds never trigger capacity
    // scaling: a scaling rewrite relocates old entries, which would break
    // the "only the crash-point write tears" anchoring below.
    cfg.server_config.index_params = {.prefix_bits = 8,
                                      .blocks_per_bucket = 2};
    cfg.server_config.filter_params = {.hash_bits = 8, .capacity = 100000};
    cfg.server_config.chunk_store.cache_params = {.hash_bits = 4,
                                                  .capacity = 1000000};
    cfg.server_config.chunk_store.io_buckets = 8;
    cfg.server_config.chunk_store.siu_threshold = 1;
    cfg.server_config.index_device_factory = [injector = injector,
                                              inners = inners] {
      auto inner = std::make_unique<storage::MemBlockDevice>();
      inners->push_back(inner.get());
      return std::make_unique<storage::FaultyBlockDevice>(std::move(inner),
                                                          injector);
    };
    cfg.phase_hook = [injector = injector, commit_begin = commit_begin,
                      commits_seen = commits_seen](const char* phase) {
      if (std::string_view(phase) == "commit" && ++*commits_seen == 2) {
        *commit_begin = injector->op_count();
      }
    };
    cluster = std::make_unique<core::Cluster>(std::move(cfg));
  }
};

void cluster_backup(core::Cluster& cluster, std::uint64_t job,
                    std::uint64_t first, std::uint64_t count) {
  core::FileStore& fs = cluster.server(0).file_store();
  fs.begin_job(job);
  fs.begin_file({.path = "s", .size = count * 512, .mtime = 0, .mode = 0644});
  for (std::uint64_t i = first; i < first + count; ++i) {
    const Fingerprint f = Sha1::hash_counter(i);
    if (fs.offer_fingerprint(f, 512)) {
      const auto payload = core::BackupEngine::synthetic_payload(f, 512);
      ASSERT_TRUE(
          fs.receive_chunk(f, ByteSpan(payload.data(), payload.size())).ok());
    }
  }
  fs.end_file();
  ASSERT_TRUE(fs.end_job().ok());
}

/// Open a clone of a frozen post-crash image as an index (the live device
/// is dead; its inner holds the bytes a recovery would find on disk).
std::optional<index::DiskIndex> open_image_clone(
    const storage::MemBlockDevice& frozen, index::DiskIndexParams params) {
  const ByteSpan bytes = frozen.contents();
  auto device = std::make_unique<storage::MemBlockDevice>(bytes.size());
  if (!device->write(0, bytes).ok()) return std::nullopt;
  Result<index::DiskIndex> opened =
      index::DiskIndex::open(std::move(device), params);
  if (!opened.ok()) return std::nullopt;
  return std::move(opened).value();
}

TEST(CrashConsistency, ReplicatedCommitKeepsAnIntactCopyOfEveryPartition) {
  // The commit of a cluster round SIUs four index images in parallel
  // (two primaries, two replicas — DESIGN.md §5g), so a crash leaves
  // several of them half-applied. Exactly one write byte-tears (the op at
  // the crash point); every other image is a clean prefix of its SIU
  // write sequence, and inserts never relocate existing entries. The
  // durability claim of the replica map follows: for every partition, at
  // least one of its two copies still maps every previously-committed
  // ("acked") fingerprint to the container that really holds its payload.
  ReplicatedClusterRig profile;
  const std::uint64_t job = profile.cluster->director().define_job("c", "d");
  cluster_backup(*profile.cluster, job, 0, 60);
  ASSERT_TRUE(profile.cluster->run_dedup2(/*force_siu=*/true).ok());
  const std::uint64_t round1_end = profile.injector->op_count();
  cluster_backup(*profile.cluster, job, 100, 60);
  ASSERT_TRUE(profile.cluster->run_dedup2(true).ok());
  const std::uint64_t commit_begin = *profile.commit_begin;
  const std::uint64_t total = profile.injector->op_count();
  ASSERT_GT(commit_begin, round1_end);
  ASSERT_GT(total, commit_begin);

  // Ground truth for the acked round, collected only after the window was
  // measured: these locate() calls consume injector ops of their own, and
  // the sweep rigs below never make them, so earlier collection would
  // shift the profiled window. The op COUNT at each phase barrier is
  // deterministic across runs even though the parallel-commit
  // interleaving is not.
  const std::size_t n = profile.cluster->server_count();
  std::vector<Fingerprint> acked;
  std::vector<ContainerId> truth;
  for (std::uint64_t i = 0; i < 60; ++i) {
    const Fingerprint f = Sha1::hash_counter(i);
    const std::size_t owner = profile.cluster->owner_of(f);
    Result<ContainerId> c =
        profile.cluster->server(owner).chunk_store().locate(f);
    ASSERT_TRUE(c.ok()) << c.error().to_string();
    acked.push_back(f);
    truth.push_back(c.value());
  }

  constexpr std::uint64_t kPoints = 8;
  for (std::uint64_t k = 0; k < kPoints; ++k) {
    const std::uint64_t point =
        commit_begin + k * (total - commit_begin) / kPoints;
    SCOPED_TRACE("crash at op " + std::to_string(point) +
                 " of commit window [" + std::to_string(commit_begin) + ", " +
                 std::to_string(total) + ")");
    ReplicatedClusterRig rig;
    const std::uint64_t j = rig.cluster->director().define_job("c", "d");
    storage::FaultConfig faults;
    faults.crash_after_ops = point;
    rig.injector->set_config(faults);

    cluster_backup(*rig.cluster, j, 0, 60);
    Result<core::ClusterDedup2Result> round1 = rig.cluster->run_dedup2(true);
    ASSERT_TRUE(round1.ok()) << round1.error().to_string();

    cluster_backup(*rig.cluster, j, 100, 60);
    Result<core::ClusterDedup2Result> round2 = rig.cluster->run_dedup2(true);
    EXPECT_FALSE(round2.ok()) << "commit-window crash must fail the round";
    EXPECT_TRUE(rig.injector->crashed());

    for (std::size_t p = 0; p < n; ++p) {
      const std::size_t backup = core::PartitionMap::backup_of(p, n);
      // Partition p's copies: the primary image of server p, and the
      // replica image hosted on its backup server.
      std::optional<index::DiskIndex> copies[2] = {
          open_image_clone(*(*rig.inners)[p],
                           rig.cluster->server(p).config().index_params),
          open_image_clone(
              *(*rig.inners)[n + backup],
              rig.cluster->server(backup).config().index_params)};
      bool some_copy_intact = false;
      for (auto& copy : copies) {
        if (!copy.has_value()) continue;
        bool intact = true;
        for (std::size_t i = 0; i < acked.size(); ++i) {
          if (profile.cluster->owner_of(acked[i]) != p) continue;
          Result<ContainerId> got = copy->lookup(acked[i]);
          if (!got.ok() || got.value() != truth[i]) {
            intact = false;
            break;
          }
        }
        some_copy_intact |= intact;
      }
      EXPECT_TRUE(some_copy_intact)
          << "both copies of partition " << p << " lost acked entries";
    }

    // And the acked payloads are still where the intact copy says: the
    // repository is outside the injector, so this pins that the index
    // entries point at real, readable containers.
    for (std::size_t i = 0; i < acked.size(); ++i) {
      Result<storage::Container> container =
          rig.cluster->repository().read(truth[i]);
      ASSERT_TRUE(container.ok()) << container.error().to_string();
      EXPECT_TRUE(container.value().find(acked[i]).has_value());
    }
  }
}

}  // namespace
}  // namespace debar
