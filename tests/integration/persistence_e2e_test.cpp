// End-to-end at-rest persistence over REAL files: repository container
// logs, disk index and metadata log all on FileBlockDevices; the process
// state is torn down and re-opened, and everything must still verify.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/backup_engine.hpp"
#include "core/metadata_store.hpp"
#include "index/disk_index.hpp"
#include "workload/file_tree.hpp"

namespace debar {
namespace {

class PersistenceE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("debar_e2e_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<storage::BlockDevice> file_device(const std::string& name) {
    auto device = storage::FileBlockDevice::open(dir_ / name);
    EXPECT_TRUE(device.ok());
    return std::move(device).value();
  }

  std::filesystem::path dir_;
};

TEST_F(PersistenceE2eTest, BackupRestartRestore) {
  const index::DiskIndexParams index_params{.prefix_bits = 8,
                                            .blocks_per_bucket = 2};
  const auto dataset = workload::make_dataset(
      {.files = 6, .mean_file_bytes = 64 * KiB, .seed = 99});
  std::uint64_t job = 0;

  // ---- Phase 1: fresh deployment, one backup generation. ----
  {
    std::vector<std::unique_ptr<storage::BlockDevice>> nodes;
    nodes.push_back(file_device("node0.log"));
    nodes.push_back(file_device("node1.log"));
    auto repo = storage::ChunkRepository::open(std::move(nodes));
    ASSERT_TRUE(repo.ok());

    core::MetadataStore metadata(file_device("metadata.log"));
    core::Director director;
    director.attach_metadata_store(&metadata);

    core::BackupServerConfig cfg;
    cfg.index_params = index_params;
    cfg.chunk_store.siu_threshold = 1;
    core::BackupServer server(0, cfg, repo.value().get(), &director);
    auto idx = index::DiskIndex::create(file_device("index.bin"),
                                        index_params);
    ASSERT_TRUE(idx.ok());
    server.chunk_store().index() = std::move(idx).value();

    core::BackupEngine client("host", &director);
    job = director.define_job("host", "data");
    ASSERT_TRUE(client.run_backup(job, dataset, server.file_store()).ok());
    ASSERT_TRUE(server.run_dedup2(true).ok());
  }  // every object destroyed; only the files remain

  // ---- Phase 2: reopen from files, verify and restore byte-exact. ----
  {
    std::vector<std::unique_ptr<storage::BlockDevice>> nodes;
    nodes.push_back(file_device("node0.log"));
    nodes.push_back(file_device("node1.log"));
    auto repo = storage::ChunkRepository::open(std::move(nodes));
    ASSERT_TRUE(repo.ok()) << repo.error().to_string();
    EXPECT_GT(repo.value()->container_count(), 0u);

    core::MetadataStore metadata(file_device("metadata.log"));
    core::Director director;
    director.attach_metadata_store(&metadata);
    ASSERT_TRUE(director.recover().ok());
    EXPECT_EQ(director.version_count(job), 1u);

    core::BackupServerConfig cfg;
    cfg.index_params = index_params;
    cfg.chunk_store.siu_threshold = 1;
    core::BackupServer server(0, cfg, repo.value().get(), &director);
    auto idx = index::DiskIndex::open(file_device("index.bin"), index_params);
    ASSERT_TRUE(idx.ok()) << idx.error().to_string();
    EXPECT_GT(idx.value().entry_count(), 0u);
    server.chunk_store().index() = std::move(idx).value();

    core::BackupEngine client("host", &director);
    const auto verify = client.verify(job, 1, server);
    ASSERT_TRUE(verify.ok());
    EXPECT_TRUE(verify.value().clean());

    const auto restored = client.restore(job, 1, server, /*verify=*/true);
    ASSERT_TRUE(restored.ok()) << restored.error().to_string();
    ASSERT_EQ(restored.value().files.size(), dataset.files.size());
    for (std::size_t i = 0; i < dataset.files.size(); ++i) {
      EXPECT_EQ(restored.value().files[i].content, dataset.files[i].content);
    }

    // The reopened deployment also deduplicates new work against the
    // recovered state: re-backing up the same dataset ships nothing.
    const auto again = client.run_backup(job, dataset, server.file_store(),
                                         {.incremental = true});
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.value().transferred_bytes, 0u);
  }
}

}  // namespace
}  // namespace debar
