// Full single-server pipeline: client chunking -> dedup-1 filtering ->
// chunk log -> SIL -> containers -> SIU -> restore, over multiple backup
// generations.
#include <gtest/gtest.h>

#include "core/backup_engine.hpp"
#include "workload/file_tree.hpp"

namespace debar {
namespace {

core::BackupServerConfig server_config() {
  core::BackupServerConfig cfg;
  cfg.index_params = {.prefix_bits = 10, .blocks_per_bucket = 2};
  cfg.filter_params = {.hash_bits = 10, .capacity = 1 << 20};
  cfg.chunk_store.cache_params = {.hash_bits = 8, .capacity = 1 << 22};
  cfg.chunk_store.io_buckets = 64;
  cfg.chunk_store.siu_threshold = 1;
  return cfg;
}

TEST(EndToEndTest, ThirtyDayIncrementalChainRestoresEveryVersion) {
  storage::ChunkRepository repo(2);
  core::Director director;
  core::BackupServer server(0, server_config(), &repo, &director);
  core::BackupEngine engine("client", &director);

  const std::uint64_t job = director.define_job("client", "tree");

  std::vector<core::Dataset> versions;
  versions.push_back(workload::make_dataset(
      {.files = 8, .mean_file_bytes = 96 * KiB, .seed = 100}));
  for (int day = 1; day < 6; ++day) {
    versions.push_back(workload::mutate_dataset(
        versions.back(), {.seed = 100u + static_cast<std::uint64_t>(day)}));
  }

  std::uint64_t total_logical = 0, total_transferred = 0;
  for (const auto& version : versions) {
    const auto stats = engine.run_backup(job, version, server.file_store());
    ASSERT_TRUE(stats.ok()) << stats.error().to_string();
    total_logical += stats.value().logical_bytes;
    total_transferred += stats.value().transferred_bytes;
    ASSERT_TRUE(server.run_dedup2(/*force_siu=*/true).ok());
  }

  // Dedup saves real space: transferred << logical across the chain.
  EXPECT_LT(total_transferred, total_logical / 2);
  // Physical bytes in the repository are bounded by transferred bytes.
  EXPECT_LE(repo.stored_bytes(), total_transferred);

  // Every version restores byte-exactly.
  for (std::uint32_t v = 1; v <= versions.size(); ++v) {
    const auto restored = engine.restore(job, v, server, /*verify=*/true);
    ASSERT_TRUE(restored.ok())
        << "version " << v << ": " << restored.error().to_string();
    const core::Dataset& expect = versions[v - 1];
    ASSERT_EQ(restored.value().files.size(), expect.files.size());
    for (std::size_t i = 0; i < expect.files.size(); ++i) {
      ASSERT_EQ(restored.value().files[i].content, expect.files[i].content)
          << "version " << v << " file " << expect.files[i].path;
    }
  }
}

TEST(EndToEndTest, DeferredSiuAcrossManyRounds) {
  // SIU deferral (one SIU serving many SILs) must never lose data or
  // store duplicates.
  storage::ChunkRepository repo(1);
  core::Director director;
  core::BackupServerConfig cfg = server_config();
  cfg.chunk_store.siu_threshold = 1 << 30;  // force deferral
  core::BackupServer server(0, cfg, &repo, &director);
  core::BackupEngine engine("client", &director);

  const std::uint64_t job = director.define_job("client", "tree");
  auto dataset = workload::make_dataset(
      {.files = 4, .mean_file_bytes = 64 * KiB, .seed = 200});

  std::uint64_t expected_distinct = 0;
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(engine.run_backup(job, dataset, server.file_store()).ok());
    const auto r = server.run_dedup2(/*force_siu=*/false);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r.value().ran_siu);
    if (round == 0) {
      expected_distinct = r.value().new_chunks;
    } else {
      // Identical dataset: the pending (checking) set must resolve all.
      EXPECT_EQ(r.value().new_chunks, 0u) << "round " << round;
    }
    dataset = workload::mutate_dataset(
        dataset, {.seed = 300u + static_cast<std::uint64_t>(round),
                  .edits_per_file = 0.0, .rewrite_fraction = 0.0,
                  .churn_fraction = 0.0});  // identity mutation
  }
  EXPECT_GT(expected_distinct, 0u);
  EXPECT_EQ(server.chunk_store().pending_count(), expected_distinct);

  // Final SIU lands everything exactly once.
  const auto siu = server.chunk_store().siu();
  ASSERT_TRUE(siu.ok());
  EXPECT_EQ(siu.value().inserted, expected_distinct);
  EXPECT_EQ(server.chunk_store().index().entry_count(), expected_distinct);

  // All four versions restore.
  for (std::uint32_t v = 1; v <= 4; ++v) {
    ASSERT_TRUE(engine.restore(job, v, server, true).ok()) << v;
  }
}

TEST(EndToEndTest, CapacityScalingMidLifeIsTransparent) {
  // A deliberately tiny index forces capacity scaling during normal
  // operation; all data must remain restorable afterwards.
  storage::ChunkRepository repo(1);
  core::Director director;
  core::BackupServerConfig cfg = server_config();
  cfg.index_params = {.prefix_bits = 3, .blocks_per_bucket = 1};  // 160 entries
  core::BackupServer server(0, cfg, &repo, &director);
  core::BackupEngine engine("client", &director);

  const std::uint64_t job = director.define_job("client", "tree");
  const auto dataset = workload::make_dataset(
      {.files = 10, .mean_file_bytes = 256 * KiB, .seed = 400,
       .shared_fraction = 0.0});
  ASSERT_TRUE(engine.run_backup(job, dataset, server.file_store()).ok());
  ASSERT_TRUE(server.run_dedup2(true).ok());

  // The index must have scaled beyond its initial 8 buckets.
  EXPECT_GT(server.chunk_store().index().params().prefix_bits, 3u);

  const auto restored = engine.restore(job, 1, server, true);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  for (std::size_t i = 0; i < dataset.files.size(); ++i) {
    ASSERT_EQ(restored.value().files[i].content, dataset.files[i].content);
  }
}

}  // namespace
}  // namespace debar
