// Crash safety of elastic repartitioning (DESIGN.md §5j): a split's
// prepare stage writes only freshly minted devices, and its commit is
// pure in-memory — so a hard crash at ANY device op during the migration
// must leave every committed index image byte-identical to a cluster
// that never attempted the split, with the old topology (map, epoch,
// fleet) fully intact. The sweep drives a shared-injector crash point
// across the whole prepare window, the same technique the phase-E commit
// sweep in crash_consistency_test.cpp uses.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/sha1.hpp"
#include "core/cluster.hpp"
#include "storage/faulty_block_device.hpp"

namespace debar {
namespace {

/// A w=1 cluster whose index devices — the four committed ones and every
/// device a migration mints — share one FaultInjector, so a crash point
/// freezes the deployment at a single global op. Inners are captured in
/// factory-call order: primaries 0..1, replicas 0..1, then staged mints.
struct ElasticCrashRig {
  std::shared_ptr<storage::FaultInjector> injector =
      std::make_shared<storage::FaultInjector>(storage::FaultConfig{});
  std::shared_ptr<std::vector<storage::MemBlockDevice*>> inners =
      std::make_shared<std::vector<storage::MemBlockDevice*>>();
  std::unique_ptr<core::Cluster> cluster;

  ElasticCrashRig() {
    core::ClusterConfig cfg;
    cfg.routing_bits = 1;
    cfg.repository_nodes = 2;
    cfg.server_config.index_params = {.prefix_bits = 8,
                                      .blocks_per_bucket = 2};
    cfg.server_config.filter_params = {.hash_bits = 8, .capacity = 100000};
    cfg.server_config.chunk_store.cache_params = {.hash_bits = 4,
                                                  .capacity = 1000000};
    cfg.server_config.chunk_store.io_buckets = 8;
    cfg.server_config.chunk_store.siu_threshold = 1;
    cfg.server_config.index_device_factory = [injector = injector,
                                              inners = inners] {
      auto inner = std::make_unique<storage::MemBlockDevice>();
      inners->push_back(inner.get());
      return std::make_unique<storage::FaultyBlockDevice>(std::move(inner),
                                                          injector);
    };
    cluster = std::make_unique<core::Cluster>(std::move(cfg));
  }

  void arm_crash(std::uint64_t at_op) {
    storage::FaultConfig faults;
    faults.crash_after_ops = at_op;
    injector->set_config(faults);
  }

  [[nodiscard]] std::vector<Byte> committed_image(std::size_t i) const {
    const ByteSpan bytes = (*inners)[i]->contents();
    return {bytes.begin(), bytes.end()};
  }
};

void cluster_backup(core::Cluster& cluster, std::uint64_t job,
                    std::uint64_t first, std::uint64_t count) {
  core::FileStore& fs = cluster.server(0).file_store();
  fs.begin_job(job);
  fs.begin_file({.path = "s", .size = count * 512, .mtime = 0, .mode = 0644});
  for (std::uint64_t i = first; i < first + count; ++i) {
    const Fingerprint f = Sha1::hash_counter(i);
    if (fs.offer_fingerprint(f, 512)) {
      const auto payload = core::BackupEngine::synthetic_payload(f, 512);
      ASSERT_TRUE(
          fs.receive_chunk(f, ByteSpan(payload.data(), payload.size())).ok());
    }
  }
  fs.end_file();
  ASSERT_TRUE(fs.end_job().ok());
}

TEST(ElasticCrash, CrashAnywhereInTheSplitWindowLeavesTheOldTopologyIntact) {
  // Measure the prepare window on a fault-free probe: the device ops a
  // successful split consumes after a one-generation round.
  ElasticCrashRig probe;
  const std::uint64_t probe_job = probe.cluster->director().define_job("c",
                                                                       "d");
  cluster_backup(*probe.cluster, probe_job, 0, 60);
  ASSERT_TRUE(probe.cluster->run_dedup2(/*force_siu=*/true).ok());
  // Snapshot the committed images now: a successful split's commit
  // rebases onto freshly minted devices and releases these.
  std::vector<std::vector<Byte>> pre_split;
  for (std::size_t i = 0; i < 4; ++i) {
    pre_split.push_back(probe.committed_image(i));
  }
  const std::uint64_t window_begin = probe.injector->op_count();
  ASSERT_TRUE(probe.cluster->split().ok());
  const std::uint64_t window_end = probe.injector->op_count();
  ASSERT_GT(window_end, window_begin) << "split must touch staged devices";

  // Fault-free reference that never attempts a split: its first four
  // device images are what every crashed rig must be left with.
  ElasticCrashRig untouched;
  const std::uint64_t untouched_job =
      untouched.cluster->director().define_job("c", "d");
  cluster_backup(*untouched.cluster, untouched_job, 0, 60);
  ASSERT_TRUE(untouched.cluster->run_dedup2(true).ok());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(pre_split[i], untouched.committed_image(i))
        << "reference deployments diverged at image " << i;
  }

  // Sweep crash points across the window (sampled; every point is a full
  // fresh deployment). At each: the split fails, the map and fleet are
  // unchanged, and all four committed images are byte-identical to the
  // never-split reference.
  const std::uint64_t window = window_end - window_begin;
  const std::uint64_t step = std::max<std::uint64_t>(1, window / 10);
  for (std::uint64_t offset = 0; offset < window; offset += step) {
    ElasticCrashRig rig;
    const std::uint64_t job = rig.cluster->director().define_job("c", "d");
    cluster_backup(*rig.cluster, job, 0, 60);
    ASSERT_TRUE(rig.cluster->run_dedup2(true).ok());
    rig.arm_crash(rig.injector->op_count() + offset);

    Status crashed_split = rig.cluster->split();
    EXPECT_FALSE(crashed_split.ok())
        << "offset " << offset << ": split survived its crash point";
    EXPECT_TRUE(rig.injector->crashed()) << "offset " << offset;
    EXPECT_EQ(rig.cluster->epoch(), 0u) << "offset " << offset;
    EXPECT_EQ(rig.cluster->server_count(), 2u) << "offset " << offset;
    EXPECT_EQ(rig.cluster->partition_map(),
              untouched.cluster->partition_map())
        << "offset " << offset;
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(rig.committed_image(i), untouched.committed_image(i))
          << "offset " << offset << " image " << i;
    }
  }
}

TEST(ElasticCrash, SurvivingTheWholeWindowCommitsAndKeepsServing) {
  // Control leg: a crash point past the prepare window never fires — the
  // split commits, the epoch advances, and both generations restore
  // through a split-added server.
  ElasticCrashRig rig;
  const std::uint64_t job = rig.cluster->director().define_job("c", "d");
  cluster_backup(*rig.cluster, job, 0, 60);
  ASSERT_TRUE(rig.cluster->run_dedup2(true).ok());

  rig.arm_crash(rig.injector->op_count() + 1000000);
  ASSERT_TRUE(rig.cluster->split().ok());
  EXPECT_FALSE(rig.injector->crashed());
  EXPECT_EQ(rig.cluster->epoch(), 1u);
  EXPECT_EQ(rig.cluster->server_count(), 4u);

  cluster_backup(*rig.cluster, job, 100, 60);
  ASSERT_TRUE(rig.cluster->run_dedup2(true).ok());
  for (std::uint32_t version = 1; version <= 2; ++version) {
    Result<core::Dataset> restored =
        rig.cluster->restore(job, version, /*via=*/3);
    ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  }
}

}  // namespace
}  // namespace debar
