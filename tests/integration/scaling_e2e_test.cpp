// The paper's mode-ladder (Section 6.2): a running system grows by
// capacity scaling (bigger index) and performance scaling (splitting the
// index over more servers) without losing data.
#include <gtest/gtest.h>

#include "core/cluster.hpp"

#include "common/sha1.hpp"
#include "index/disk_index.hpp"
#include "storage/block_device.hpp"

namespace debar {
namespace {

TEST(ScalingE2eTest, ModeLadderPreservesEveryEntry) {
  // Start with one 2^8-bucket index; insert; capacity-scale twice; split
  // into 2, then 4 parts; verify all entries at every rung.
  auto idx = index::DiskIndex::create(
      std::make_unique<storage::MemBlockDevice>(),
      {.prefix_bits = 8, .blocks_per_bucket = 1});
  ASSERT_TRUE(idx.ok());

  std::vector<IndexEntry> entries;
  for (std::uint64_t i = 0; i < 3000; ++i) {
    entries.push_back({Sha1::hash_counter(i), ContainerId{i + 1}});
  }
  std::sort(entries.begin(), entries.end(),
            [](const IndexEntry& a, const IndexEntry& b) { return a.fp < b.fp; });
  ASSERT_TRUE(
      idx.value().bulk_insert(std::span<const IndexEntry>(entries)).ok());

  auto verify_all = [&](const std::vector<index::DiskIndex>& parts,
                        unsigned w) {
    for (const IndexEntry& e : entries) {
      const std::size_t owner =
          w == 0 ? 0 : static_cast<std::size_t>(e.fp.prefix_bits(w));
      const auto r = parts[owner].lookup(e.fp);
      ASSERT_TRUE(r.ok());
      ASSERT_EQ(r.value(), e.container);
    }
  };

  // (1, 2^8) -> (1, 2^9): capacity scaling.
  auto scaled1 = idx.value().scaled(std::make_unique<storage::MemBlockDevice>());
  ASSERT_TRUE(scaled1.ok());
  {
    std::vector<index::DiskIndex> single;
    single.push_back(std::move(scaled1).value());
    verify_all(single, 0);
    scaled1 = Result<index::DiskIndex>(std::move(single[0]));
  }

  // (1, 2^9) -> (2, 2^8): performance scaling.
  std::vector<std::unique_ptr<storage::BlockDevice>> two;
  for (int i = 0; i < 2; ++i) two.push_back(std::make_unique<storage::MemBlockDevice>());
  auto parts2 = scaled1.value().split(std::move(two));
  ASSERT_TRUE(parts2.ok());
  verify_all(parts2.value(), 1);

  // Each part capacity-scales independently: (2, 2^8) -> (2, 2^9).
  std::vector<index::DiskIndex> grown;
  for (auto& part : parts2.value()) {
    auto g = part.scaled(std::make_unique<storage::MemBlockDevice>());
    ASSERT_TRUE(g.ok());
    grown.push_back(std::move(g).value());
  }
  verify_all(grown, 1);

  // (2, 2^9) -> (4, 2^8): split each part in two; parts keep prefix order.
  std::vector<index::DiskIndex> four;
  for (auto& part : grown) {
    std::vector<std::unique_ptr<storage::BlockDevice>> devices;
    for (int i = 0; i < 2; ++i) devices.push_back(std::make_unique<storage::MemBlockDevice>());
    auto halves = part.split(std::move(devices));
    ASSERT_TRUE(halves.ok());
    for (auto& h : halves.value()) four.push_back(std::move(h));
  }
  ASSERT_EQ(four.size(), 4u);
  verify_all(four, 2);
}

TEST(ScalingE2eTest, ClusterGrowsByRebuildingWithMoreServers) {
  // Operationally, adding servers means re-sharding the index parts. The
  // data in the repository is untouched; version metadata lives at the
  // director. Simulate: back up on a 2-server cluster, collect all index
  // entries, rebuild a 4-server cluster's parts from them, and restore.
  core::ClusterConfig cfg2;
  cfg2.routing_bits = 1;
  cfg2.server_config.index_params = {.prefix_bits = 8, .blocks_per_bucket = 2};
  cfg2.server_config.chunk_store.siu_threshold = 1;
  core::Cluster small(cfg2);

  const std::uint64_t job = small.director().define_job("c", "d");
  std::vector<Fingerprint> fps;
  for (std::uint64_t i = 0; i < 300; ++i) fps.push_back(Sha1::hash_counter(i));

  core::FileStore& fs = small.server(0).file_store();
  fs.begin_job(job);
  fs.begin_file({.path = "s", .size = fps.size() * 1024, .mtime = 0,
                 .mode = 0644});
  for (const Fingerprint& f : fps) {
    if (fs.offer_fingerprint(f, 1024)) {
      const auto payload = core::BackupEngine::synthetic_payload(f, 1024);
      ASSERT_TRUE(
          fs.receive_chunk(f, ByteSpan(payload.data(), payload.size())).ok());
    }
  }
  fs.end_file();
  ASSERT_TRUE(fs.end_job().ok());
  ASSERT_TRUE(small.run_dedup2(true).ok());

  // Collect all entries from both parts; re-shard onto 4 parts by
  // splitting each in half.
  std::vector<index::DiskIndex> new_parts;
  for (std::size_t k = 0; k < 2; ++k) {
    std::vector<std::unique_ptr<storage::BlockDevice>> devices;
    for (int i = 0; i < 2; ++i) devices.push_back(std::make_unique<storage::MemBlockDevice>());
    auto halves =
        small.server(k).chunk_store().index().split(std::move(devices));
    ASSERT_TRUE(halves.ok());
    for (auto& h : halves.value()) new_parts.push_back(std::move(h));
  }
  ASSERT_EQ(new_parts.size(), 4u);

  // All fingerprints resolvable from the re-sharded parts, and the
  // containers they point at exist in the repository.
  for (const Fingerprint& f : fps) {
    const std::size_t owner = static_cast<std::size_t>(f.prefix_bits(2));
    const auto cid = new_parts[owner].lookup(f);
    ASSERT_TRUE(cid.ok());
    EXPECT_TRUE(small.repository().contains(cid.value()));
  }
}

}  // namespace
}  // namespace debar
