// Crash safety of the maintenance round (DESIGN.md §5k): every fallible
// step — mark reads over the committed indexes, staged index rebuilds on
// freshly minted devices — happens before a pure in-memory COMMIT
// (publish staged containers, swap indexes, remove dead containers). So a
// hard crash at ANY device op during a maintenance round must leave the
// committed index images, the chunk repository, the partition map, and
// the version catalogue byte-identical to a cluster that never attempted
// the round. Same shared-injector sweep technique as the split window in
// elastic_crash_test.cpp.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/sha1.hpp"
#include "core/cluster.hpp"
#include "core/maintenance.hpp"
#include "storage/faulty_block_device.hpp"

namespace debar {
namespace {

/// A w=1 cluster (keep-last-1 retention) whose index devices — the four
/// committed ones and every device maintenance mints — share one
/// FaultInjector. Inners land in factory-call order: primaries 0..1,
/// replicas 0..1, then staged mints.
struct RetentionCrashRig {
  std::shared_ptr<storage::FaultInjector> injector =
      std::make_shared<storage::FaultInjector>(storage::FaultConfig{});
  std::shared_ptr<std::vector<storage::MemBlockDevice*>> inners =
      std::make_shared<std::vector<storage::MemBlockDevice*>>();
  std::unique_ptr<core::Cluster> cluster;

  RetentionCrashRig() {
    core::ClusterConfig cfg;
    cfg.routing_bits = 1;
    cfg.repository_nodes = 2;
    cfg.director_config.retention = {.keep_last = 1};
    cfg.server_config.index_params = {.prefix_bits = 8,
                                      .blocks_per_bucket = 2};
    cfg.server_config.filter_params = {.hash_bits = 8, .capacity = 100000};
    cfg.server_config.chunk_store.cache_params = {.hash_bits = 4,
                                                  .capacity = 1000000};
    cfg.server_config.chunk_store.io_buckets = 8;
    cfg.server_config.chunk_store.siu_threshold = 1;
    // Small containers so the sweep sees fine-grained units and the
    // locality pass has something to re-sequence.
    cfg.server_config.container_capacity = 64 * 1024;
    cfg.server_config.index_device_factory = [injector = injector,
                                              inners = inners] {
      auto inner = std::make_unique<storage::MemBlockDevice>();
      inners->push_back(inner.get());
      return std::make_unique<storage::FaultyBlockDevice>(std::move(inner),
                                                          injector);
    };
    cluster = std::make_unique<core::Cluster>(std::move(cfg));
  }

  void arm_crash(std::uint64_t at_op) {
    storage::FaultConfig faults;
    faults.crash_after_ops = at_op;
    injector->set_config(faults);
  }

  [[nodiscard]] std::vector<Byte> committed_image(std::size_t i) const {
    const ByteSpan bytes = (*inners)[i]->contents();
    return {bytes.begin(), bytes.end()};
  }
};

void cluster_backup(core::Cluster& cluster, std::uint64_t job,
                    std::uint64_t first, std::uint64_t count) {
  core::FileStore& fs = cluster.server(0).file_store();
  fs.begin_job(job);
  fs.begin_file({.path = "s", .size = count * 512, .mtime = 0, .mode = 0644});
  for (std::uint64_t i = first; i < first + count; ++i) {
    const Fingerprint f = Sha1::hash_counter(i);
    if (fs.offer_fingerprint(f, 512)) {
      const auto payload = core::BackupEngine::synthetic_payload(f, 512);
      ASSERT_TRUE(
          fs.receive_chunk(f, ByteSpan(payload.data(), payload.size())).ok());
    }
  }
  fs.end_file();
  ASSERT_TRUE(fs.end_job().ok());
}

/// Two dedup-2 generations; retention (keep-last-1) will expire v1.
void seed_workload(RetentionCrashRig& rig, std::uint64_t job) {
  cluster_backup(*rig.cluster, job, 0, 80);
  ASSERT_TRUE(rig.cluster->run_dedup2(/*force_siu=*/true).ok());
  cluster_backup(*rig.cluster, job, 40, 80);
  ASSERT_TRUE(rig.cluster->run_dedup2(/*force_siu=*/true).ok());
}

/// Every stored container's serialized image, in id order.
std::vector<std::vector<Byte>> container_images(core::Cluster& cluster) {
  std::vector<std::vector<Byte>> images;
  for (const ContainerId id : cluster.repository().container_ids()) {
    Result<storage::Container> container = cluster.repository().read(id);
    EXPECT_TRUE(container.ok());
    if (container.ok()) images.push_back(container.value().serialize());
  }
  return images;
}

TEST(RetentionCrash, CrashAnywhereInTheRoundLeavesANeverAttemptedTwin) {
  // Measure the prepare window on a fault-free probe.
  RetentionCrashRig probe;
  const std::uint64_t probe_job =
      probe.cluster->director().define_job("c", "d");
  seed_workload(probe, probe_job);
  const std::uint64_t window_begin = probe.injector->op_count();
  core::MaintenanceJob probe_maintenance(*probe.cluster);
  ASSERT_TRUE(probe_maintenance.execute().ok());
  const std::uint64_t window_end = probe.injector->op_count();
  ASSERT_GT(window_end, window_begin) << "maintenance must touch devices";
  ASSERT_EQ(probe_maintenance.report().versions_expired, 1u);
  ASSERT_GT(probe_maintenance.report().bytes_reclaimed, 0u);

  // Fault-free reference that never attempts maintenance: its committed
  // images, repository, and catalogue are what every crashed rig must be
  // left with.
  RetentionCrashRig untouched;
  const std::uint64_t untouched_job =
      untouched.cluster->director().define_job("c", "d");
  seed_workload(untouched, untouched_job);
  const std::vector<std::vector<Byte>> untouched_containers =
      container_images(*untouched.cluster);

  // Sweep crash points across the window (sampled; every point is a full
  // fresh deployment). At each: maintenance fails, nothing was expired,
  // nothing reclaimed, and every committed byte matches the twin.
  const std::uint64_t window = window_end - window_begin;
  const std::uint64_t step = std::max<std::uint64_t>(1, window / 10);
  for (std::uint64_t offset = 0; offset < window; offset += step) {
    RetentionCrashRig rig;
    const std::uint64_t job = rig.cluster->director().define_job("c", "d");
    seed_workload(rig, job);
    rig.arm_crash(rig.injector->op_count() + offset);

    core::MaintenanceJob maintenance(*rig.cluster);
    Status crashed = maintenance.execute();
    EXPECT_FALSE(crashed.ok())
        << "offset " << offset << ": round survived its crash point";
    EXPECT_TRUE(rig.injector->crashed()) << "offset " << offset;

    // Old state byte-identical to the never-attempted twin: catalogue
    // (both versions still restorable-in-principle), placement, committed
    // index images, and the repository.
    EXPECT_EQ(rig.cluster->director().version_count(job), 2u)
        << "offset " << offset;
    EXPECT_EQ(rig.cluster->epoch(), 0u) << "offset " << offset;
    EXPECT_EQ(rig.cluster->partition_map(),
              untouched.cluster->partition_map())
        << "offset " << offset;
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(rig.committed_image(i), untouched.committed_image(i))
          << "offset " << offset << " image " << i;
    }
    EXPECT_EQ(container_images(*rig.cluster), untouched_containers)
        << "offset " << offset;
  }
}

TEST(RetentionCrash, SurvivingTheWholeWindowCommitsAndKeepsServing) {
  // Control leg: a crash point past the window never fires — the round
  // commits, v1 is expired, and the survivor restores through both
  // servers.
  RetentionCrashRig rig;
  const std::uint64_t job = rig.cluster->director().define_job("c", "d");
  seed_workload(rig, job);
  rig.arm_crash(rig.injector->op_count() + 1000000);

  core::MaintenanceJob maintenance(*rig.cluster);
  ASSERT_TRUE(maintenance.execute().ok());
  EXPECT_FALSE(rig.injector->crashed());
  EXPECT_EQ(maintenance.report().versions_expired, 1u);
  EXPECT_EQ(maintenance.report().dead_chunks, 40u);

  EXPECT_FALSE(rig.cluster->restore(job, 1, 0).ok());
  for (std::size_t via = 0; via < rig.cluster->server_count(); ++via) {
    Result<core::Dataset> restored = rig.cluster->restore(job, 2, via);
    ASSERT_TRUE(restored.ok()) << "via " << via << ": "
                               << restored.error().to_string();
    EXPECT_EQ(restored.value().files[0].content.size(), 80u * 512);
  }

  // And the next backup generation still flows end to end.
  cluster_backup(*rig.cluster, job, 100, 40);
  ASSERT_TRUE(rig.cluster->run_dedup2(true).ok());
  ASSERT_TRUE(rig.cluster->restore(job, 3, 1).ok());
}

}  // namespace
}  // namespace debar
