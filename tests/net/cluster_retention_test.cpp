// Retention-driven cluster maintenance (DESIGN.md §5k): expiry + GC +
// compaction through the epoch-fenced wire protocol (GcMarkRequest /
// GcMarkReply / GcInstall). The bars, at w ∈ {1, 2}:
//
//   * every live version restores byte-identical to its pre-maintenance
//     bytes, through every server;
//   * both index copies of every partition are byte-identical after the
//     round (the INSTALL rebuild feeds both copies the same sorted
//     stream, closing GC-era replica drift — the replication contract
//     `ctest -L net-failover` enforces);
//   * the job refuses with the RETRYABLE kBusy while dedup-2 state is in
//     flight (pending SIU on any copy) or the fleet is degraded, and
//     succeeds on retry once the condition clears.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/sha1.hpp"
#include "core/cluster.hpp"
#include "core/maintenance.hpp"
#include "net/faulty_transport.hpp"
#include "net/transport_factory.hpp"
#include "storage/block_device.hpp"

namespace debar::core {
namespace {

Fingerprint fp(std::uint64_t i) { return Sha1::hash_counter(i); }

/// A cluster over a FaultyTransport (so degraded-fleet cases can switch
/// peers dark) with the small-geometry config the failover suite uses.
struct RetentionRig {
  net::FaultyTransport* faulty = nullptr;  // owned by the cluster's stack
  std::unique_ptr<Cluster> cluster;

  explicit RetentionRig(unsigned w, DirectorConfig director_config = {},
                        std::uint64_t siu_threshold = 1) {
    ClusterConfig cfg;
    cfg.routing_bits = w;
    cfg.repository_nodes = 2;
    cfg.director_config = director_config;
    cfg.server_config.index_params = {.prefix_bits = 6,
                                      .blocks_per_bucket = 2};
    cfg.server_config.filter_params = {.hash_bits = 8, .capacity = 100000};
    cfg.server_config.chunk_store.cache_params = {.hash_bits = 4,
                                                  .capacity = 1000000};
    cfg.server_config.chunk_store.io_buckets = 8;
    cfg.server_config.chunk_store.siu_threshold = siu_threshold;
    cfg.server_config.container_capacity = 64 * 1024;
    auto factory = std::make_shared<net::FaultyTransportFactory>(
        net::NetFaultConfig{});
    cfg.transport_factory = factory;
    cluster = std::make_unique<Cluster>(std::move(cfg));
    faulty = factory->last();
  }
};

void backup_stream(Cluster& cluster, std::size_t server, std::uint64_t job,
                   std::uint64_t first, std::uint64_t count) {
  FileStore& fs = cluster.server(server).file_store();
  fs.begin_job(job);
  fs.begin_file({.path = "s", .size = count * 512, .mtime = 0, .mode = 0644});
  for (std::uint64_t i = first; i < first + count; ++i) {
    const Fingerprint f = fp(i);
    if (fs.offer_fingerprint(f, 512)) {
      const auto payload = BackupEngine::synthetic_payload(f, 512);
      ASSERT_TRUE(
          fs.receive_chunk(f, ByteSpan(payload.data(), payload.size())).ok());
    }
  }
  fs.end_file();
  ASSERT_TRUE(fs.end_job().ok());
}

std::vector<Byte> flatten(const Dataset& dataset) {
  std::vector<Byte> out;
  for (const FileData& f : dataset.files) {
    out.insert(out.end(), f.content.begin(), f.content.end());
  }
  return out;
}

/// Whole-device image of an index copy, read through the generic
/// BlockDevice interface (maintenance installs land on freshly minted
/// devices, so pre-captured factory pointers would go stale).
std::vector<Byte> device_image(const index::DiskIndex& idx) {
  auto& device = const_cast<index::DiskIndex&>(idx).device();
  std::vector<Byte> image(device.size());
  if (!image.empty()) {
    const Status s = device.read(0, std::span<Byte>(image));
    EXPECT_TRUE(s.ok()) << s.to_string();
  }
  return image;
}

std::vector<Byte> copy_image(Cluster& cluster, std::size_t part,
                             std::size_t which) {
  const PartitionCopy& copy = cluster.partition_map().copy(part, which);
  BackupServer& host = cluster.server(copy.server);
  if (copy.via_store) return device_image(host.chunk_store().index());
  EXPECT_TRUE(host.has_part_replica(part))
      << "part " << part << " copy " << which;
  if (!host.has_part_replica(part)) return {};
  return device_image(host.part_replica(part).index());
}

TEST(ClusterRetentionTest, EveryLiveVersionRestoresByteIdentical) {
  for (const unsigned w : {1u, 2u}) {
    SCOPED_TRACE(w);
    RetentionRig rig(w, {.retention = {.keep_last = 1}});
    Cluster& cluster = *rig.cluster;
    const std::uint64_t ja = cluster.director().define_job("a", "d");
    const std::uint64_t jb = cluster.director().define_job("b", "d");

    // ja v1: chunks 0..119. ja v2: 90..209 (shares 90..119 with v1, so
    // v1's containers drop well below the 0.5 compaction threshold once
    // v1 expires). jb v1: 300..379, the only version of its chain —
    // never expires.
    backup_stream(cluster, 0, ja, 0, 120);
    backup_stream(cluster, cluster.server_count() - 1, jb, 300, 80);
    ASSERT_TRUE(cluster.run_dedup2(true).ok());
    backup_stream(cluster, 0, ja, 90, 120);
    ASSERT_TRUE(cluster.run_dedup2(true).ok());

    const std::vector<Byte> a2_before = flatten(
        cluster.restore(ja, 2, /*via_server=*/0).value());
    const std::vector<Byte> b1_before = flatten(
        cluster.restore(jb, 1, /*via_server=*/0).value());

    MaintenanceJob maintenance(cluster);
    ASSERT_TRUE(maintenance.execute().ok());
    const MaintenanceReport& report = maintenance.report();
    EXPECT_EQ(report.versions_expired, 1u);  // ja v1
    EXPECT_EQ(report.dead_chunks, 90u);      // 0..89 only lived in ja v1
    EXPECT_EQ(report.live_chunks, 200u);     // 90..209 and 300..379
    EXPECT_GT(report.bytes_reclaimed, 0u);

    // Both survivors restore byte-identical through EVERY server.
    for (std::size_t via = 0; via < cluster.server_count(); ++via) {
      Result<Dataset> a2 = cluster.restore(ja, 2, via);
      ASSERT_TRUE(a2.ok()) << "via " << via << ": "
                           << a2.error().to_string();
      EXPECT_EQ(flatten(a2.value()), a2_before) << "via " << via;
      Result<Dataset> b1 = cluster.restore(jb, 1, via);
      ASSERT_TRUE(b1.ok()) << "via " << via;
      EXPECT_EQ(flatten(b1.value()), b1_before) << "via " << via;
    }
    // The expired version is gone, and its exclusive chunks left every
    // index part.
    EXPECT_FALSE(cluster.restore(ja, 1, 0).ok());
    for (std::uint64_t i = 0; i < 90; ++i) {
      const Fingerprint f = fp(i);
      EXPECT_FALSE(
          cluster.server(cluster.owner_of(f)).chunk_store().locate(f).ok())
          << i;
    }
  }
}

TEST(ClusterRetentionTest, BothIndexCopiesOfEveryPartitionByteIdentical) {
  for (const unsigned w : {1u, 2u}) {
    SCOPED_TRACE(w);
    RetentionRig rig(w, {.retention = {.keep_last = 1}});
    Cluster& cluster = *rig.cluster;
    const std::uint64_t job = cluster.director().define_job("a", "d");
    backup_stream(cluster, 0, job, 0, 150);
    ASSERT_TRUE(cluster.run_dedup2(true).ok());
    backup_stream(cluster, 0, job, 75, 150);
    ASSERT_TRUE(cluster.run_dedup2(true).ok());

    MaintenanceJob maintenance(cluster);
    ASSERT_TRUE(maintenance.execute().ok());

    // INSTALL rebuilt both copies of every partition from the same sorted
    // live stream on freshly minted devices: their disk images cannot
    // differ by a byte. This is the differential that closes GC-era
    // replica drift (the `net-failover` replication contract).
    ASSERT_EQ(cluster.partition_map().copy_count(), 2u);
    for (std::size_t part = 0; part < cluster.partition_map().part_count();
         ++part) {
      const std::vector<Byte> primary = copy_image(cluster, part, 0);
      const std::vector<Byte> backup = copy_image(cluster, part, 1);
      EXPECT_FALSE(primary.empty()) << "part " << part;
      EXPECT_EQ(primary, backup) << "part " << part;
    }
    // And the copies still agree with the surviving version's data.
    ASSERT_TRUE(cluster.restore(job, 2, cluster.server_count() - 1).ok());
  }
}

TEST(ClusterRetentionTest, PendingSiuAnywhereIsRetryableBusy) {
  RetentionRig rig(/*w=*/2, {.retention = {.keep_last = 1}},
                   /*siu_threshold=*/1 << 30);
  Cluster& cluster = *rig.cluster;
  const std::uint64_t job = cluster.director().define_job("a", "d");
  backup_stream(cluster, 0, job, 0, 80);
  ASSERT_TRUE(cluster.run_dedup2(/*force_siu=*/false).ok());

  MaintenanceJob maintenance(cluster);
  Status busy = maintenance.execute();
  ASSERT_FALSE(busy.ok());
  EXPECT_EQ(busy.code(), Errc::kBusy);
  EXPECT_EQ(maintenance.plan().error().code, Errc::kBusy);

  // Retryable: a forced-SIU round drains every pending set, after which
  // the identical job object succeeds.
  ASSERT_TRUE(cluster.run_dedup2(/*force_siu=*/true).ok());
  ASSERT_TRUE(maintenance.execute().ok());
  ASSERT_TRUE(cluster.restore(job, 1, 3).ok());
}

TEST(ClusterRetentionTest, DegradedFleetIsRetryableBusy) {
  RetentionRig rig(/*w=*/1, {.retention = {.keep_last = 1}});
  Cluster& cluster = *rig.cluster;
  const std::uint64_t job = cluster.director().define_job("a", "d");
  backup_stream(cluster, 0, job, 0, 60);
  ASSERT_TRUE(cluster.run_dedup2(true).ok());

  // A dark peer means one live copy is unreachable — the mark/install
  // exchanges could not cover every copy, so the round must not start.
  rig.faulty->set_unreachable(1, true);
  MaintenanceJob maintenance(cluster);
  Status busy = maintenance.execute();
  ASSERT_FALSE(busy.ok());
  EXPECT_EQ(busy.code(), Errc::kBusy);

  // The fleet heals; the same job retries clean.
  rig.faulty->set_unreachable(1, false);
  ASSERT_TRUE(maintenance.execute().ok());
  ASSERT_TRUE(cluster.restore(job, 1, 1).ok());
}

}  // namespace
}  // namespace debar::core
