// Dedup-2 through the transport layer must be semantically invariant:
// the same workload gives identical round counts and byte-identical
// restores whether the cluster has 1, 2, or 4 servers, and whether the
// network is clean or suffers recoverable drop/duplicate/delay faults.
#include <gtest/gtest.h>

#include <memory>

#include "common/sha1.hpp"
#include "core/cluster.hpp"
#include "net/faulty_transport.hpp"
#include "net/transport_factory.hpp"

namespace debar::core {
namespace {

Fingerprint fp(std::uint64_t i) { return Sha1::hash_counter(i); }

ClusterConfig small_cluster(unsigned w) {
  ClusterConfig cfg;
  cfg.routing_bits = w;
  cfg.repository_nodes = 2;
  cfg.server_config.index_params = {.prefix_bits = 6, .blocks_per_bucket = 2};
  cfg.server_config.filter_params = {.hash_bits = 8, .capacity = 100000};
  cfg.server_config.chunk_store.cache_params = {.hash_bits = 4,
                                                .capacity = 1000000};
  cfg.server_config.chunk_store.io_buckets = 8;
  cfg.server_config.chunk_store.siu_threshold = 1;
  return cfg;
}

void backup_stream(Cluster& cluster, std::size_t server, std::uint64_t job,
                   std::uint64_t first, std::uint64_t count) {
  FileStore& fs = cluster.server(server).file_store();
  fs.begin_job(job);
  fs.begin_file({.path = "s", .size = count * 512, .mtime = 0, .mode = 0644});
  for (std::uint64_t i = first; i < first + count; ++i) {
    const Fingerprint f = fp(i);
    if (fs.offer_fingerprint(f, 512)) {
      const auto payload = BackupEngine::synthetic_payload(f, 512);
      ASSERT_TRUE(
          fs.receive_chunk(f, ByteSpan(payload.data(), payload.size())).ok());
    }
  }
  fs.end_file();
  ASSERT_TRUE(fs.end_job().ok());
}

struct RoundCounts {
  std::uint64_t undetermined = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t new_chunks = 0;
  std::uint64_t new_bytes = 0;

  friend bool operator==(const RoundCounts&, const RoundCounts&) = default;
};

struct Outcome {
  std::vector<RoundCounts> rounds;
  std::vector<Byte> restored;  // all restored file bytes, both versions

  friend bool operator==(const Outcome&, const Outcome&) = default;
};

RoundCounts counts_of(const ClusterDedup2Result& r) {
  return {r.undetermined, r.duplicates, r.new_chunks, r.new_bytes};
}

/// Version 1: fps [0, 80) via server 0. Version 2: fps [40, 120) via the
/// last server — half duplicates, half new. Restores of both versions go
/// through server 0.
Outcome run_workload(ClusterConfig cfg) {
  Outcome out;
  Cluster cluster(std::move(cfg));
  const std::uint64_t job = cluster.director().define_job("c", "d");
  const std::size_t last = cluster.server_count() - 1;

  backup_stream(cluster, 0, job, 0, 80);
  Result<ClusterDedup2Result> round1 = cluster.run_dedup2(/*force_siu=*/true);
  EXPECT_TRUE(round1.ok()) << round1.error().to_string();
  if (round1.ok()) out.rounds.push_back(counts_of(round1.value()));

  backup_stream(cluster, last, job, 40, 80);
  Result<ClusterDedup2Result> round2 = cluster.run_dedup2(/*force_siu=*/true);
  EXPECT_TRUE(round2.ok()) << round2.error().to_string();
  if (round2.ok()) out.rounds.push_back(counts_of(round2.value()));

  for (std::uint32_t version = 1; version <= 2; ++version) {
    Result<Dataset> restored = cluster.restore(job, version, /*via=*/0);
    EXPECT_TRUE(restored.ok()) << restored.error().to_string();
    if (!restored.ok()) continue;
    for (const FileData& file : restored.value().files) {
      out.restored.insert(out.restored.end(), file.content.begin(),
                          file.content.end());
    }
  }
  return out;
}

TEST(ClusterTransportEquivalenceTest, RoutingWidthDoesNotChangeResults) {
  const Outcome w0 = run_workload(small_cluster(0));
  const Outcome w1 = run_workload(small_cluster(1));
  const Outcome w2 = run_workload(small_cluster(2));

  ASSERT_EQ(w0.rounds.size(), 2u);
  // Round 1: everything new. Round 2: the overlapping half deduplicates.
  EXPECT_EQ(w0.rounds[0], (RoundCounts{80, 0, 80, 80 * 512}));
  EXPECT_EQ(w0.rounds[1], (RoundCounts{80, 40, 40, 40 * 512}));
  EXPECT_EQ(w0.restored.size(), 2u * 80u * 512u);

  EXPECT_EQ(w1, w0);
  EXPECT_EQ(w2, w0);
}

TEST(ClusterTransportEquivalenceTest, RecoverableFaultsDoNotChangeResults) {
  const Outcome clean = run_workload(small_cluster(2));

  ClusterConfig cfg = small_cluster(2);
  // Generous retry budget: with drop^attempts ~ 1e-5 per message and a
  // seeded fate schedule, every exchange eventually lands.
  cfg.retry = {.max_attempts = 6,
               .receive_timeout = 6 * net::kVirtualPollQuantum};
  net::NetFaultConfig faults;
  faults.seed = 0xF00D;
  faults.drop_rate = 0.15;
  faults.duplicate_rate = 0.15;
  faults.delay_rate = 0.15;
  faults.max_delay_polls = 2;
  cfg.transport_factory = std::make_shared<net::FaultyTransportFactory>(faults);
  const Outcome faulty = run_workload(std::move(cfg));

  EXPECT_EQ(faulty, clean);
}

}  // namespace
}  // namespace debar::core
