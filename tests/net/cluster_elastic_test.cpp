// Online elastic repartitioning (DESIGN.md §5j): the epoch-versioned
// PartitionMap as the single source of placement truth, live w -> w+1
// splits onto freshly added servers, server drains, and the byte-identity
// bar — a cluster grown mid-trace must end with exactly the index images
// and restores of a cluster born at the final topology. Epoch-stamped
// wire batches reject torn maps instead of silently mis-routing.
// `ctest -L net-elastic` runs this suite plus the migration crash sweep
// in integration/elastic_crash_test.cpp.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/sha1.hpp"
#include "core/cluster.hpp"
#include "core/cluster_node.hpp"
#include "core/partition_map.hpp"
#include "net/faulty_transport.hpp"
#include "net/loopback_transport.hpp"
#include "net/transport_factory.hpp"
#include "storage/block_device.hpp"
#include "storage/chunk_repository.hpp"

namespace debar::core {
namespace {

Fingerprint fp(std::uint64_t i) { return Sha1::hash_counter(i); }

// ---------------------------------------------------------------------------
// PartitionMap unit coverage: identity layouts, split/drain transforms.
// ---------------------------------------------------------------------------

TEST(PartitionMapTest, IdentityLayoutMatchesTheClosedForms) {
  const PartitionMap map = PartitionMap::identity(2);
  EXPECT_EQ(map.routing_bits(), 2u);
  EXPECT_EQ(map.epoch(), 0u);
  EXPECT_EQ(map.part_count(), 4u);
  EXPECT_EQ(map.server_slots(), 4u);
  EXPECT_EQ(map.live_count(), 4u);
  EXPECT_TRUE(map.replicated());
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(map.copy(p, 0), (PartitionCopy{p, true}));
    EXPECT_EQ(map.copy(p, 1),
              (PartitionCopy{PartitionMap::backup_of(p, 4), false}));
    // The inverse helper agrees: the replica that lands on server k is of
    // the partition replica_part_of names.
    EXPECT_EQ(map.copy(PartitionMap::replica_part_of(p, 4), 1).server, p);
  }
}

TEST(PartitionMapTest, WidthZeroIdentityIsUnreplicated) {
  const PartitionMap map = PartitionMap::identity(0);
  EXPECT_FALSE(map.replicated());
  EXPECT_EQ(map.copy_count(), 1u);
  // Both copy indices collapse onto the single real copy.
  EXPECT_EQ(map.copy(0, 0), map.copy(0, 1));
}

TEST(PartitionMapTest, SplitOfTheSmallestIdentityIsTheNextIdentity) {
  // The anchor the whole refactor hangs on: splitting identity(0) must
  // reproduce identity(1) exactly (modulo the bumped epoch), so a grown
  // cluster and a born-at-w=1 cluster are the same object.
  Result<PartitionMap> split = PartitionMap::identity(0).split();
  ASSERT_TRUE(split.ok());
  const PartitionMap& grown = split.value();
  const PartitionMap target = PartitionMap::identity(1);
  EXPECT_EQ(grown.epoch(), 1u);
  EXPECT_EQ(grown.routing_bits(), target.routing_bits());
  EXPECT_EQ(grown.part_count(), target.part_count());
  EXPECT_EQ(grown.server_slots(), target.server_slots());
  for (std::size_t p = 0; p < target.part_count(); ++p) {
    EXPECT_EQ(grown.copy(p, 0), target.copy(p, 0));
    EXPECT_EQ(grown.copy(p, 1), target.copy(p, 1));
  }
}

TEST(PartitionMapTest, SplitPlacesOddHalvesOnNewServersAndRotatesBackups) {
  // At w=1 the result is a PERMUTATION no identity layout matches — the
  // reason clusters must be constructible from an explicit map.
  Result<PartitionMap> split = PartitionMap::identity(1).split();
  ASSERT_TRUE(split.ok());
  const PartitionMap& map = split.value();
  EXPECT_EQ(map.routing_bits(), 2u);
  EXPECT_EQ(map.epoch(), 1u);
  EXPECT_EQ(map.server_slots(), 4u);
  // Low halves stay on the old primaries, high halves land on the new
  // slots (2 + p); backups are the primary server of the next partition.
  EXPECT_EQ(map.copy(0, 0), (PartitionCopy{0, true}));
  EXPECT_EQ(map.copy(1, 0), (PartitionCopy{2, true}));
  EXPECT_EQ(map.copy(2, 0), (PartitionCopy{1, true}));
  EXPECT_EQ(map.copy(3, 0), (PartitionCopy{3, true}));
  EXPECT_EQ(map.copy(0, 1), (PartitionCopy{2, false}));
  EXPECT_EQ(map.copy(1, 1), (PartitionCopy{1, false}));
  EXPECT_EQ(map.copy(2, 1), (PartitionCopy{3, false}));
  EXPECT_EQ(map.copy(3, 1), (PartitionCopy{0, false}));
}

TEST(PartitionMapTest, DrainPromotesTheSurvivorAndRebalancesReplicas) {
  Result<PartitionMap> split = PartitionMap::identity(1).split();
  ASSERT_TRUE(split.ok());
  Result<PartitionMap> drained = split.value().drained(1);
  ASSERT_TRUE(drained.ok());
  const PartitionMap& map = drained.value();

  EXPECT_EQ(map.epoch(), 2u);
  EXPECT_FALSE(map.is_live(1));
  EXPECT_EQ(map.live_count(), 3u);
  EXPECT_EQ(map.server_slots(), 4u);  // the slot stays allocated
  for (std::size_t p = 0; p < map.part_count(); ++p) {
    EXPECT_EQ(map.copy_on(p, 1), nullptr) << "drained slot still hosts " << p;
    EXPECT_NE(map.copy(p, 0).server, map.copy(p, 1).server);
    EXPECT_TRUE(map.is_live(map.copy(p, 0).server));
    EXPECT_TRUE(map.is_live(map.copy(p, 1).server));
  }
  // Partition 2 lost its primary: the replica on server 3 is promoted to
  // the preferred copy KEEPING its via_store=false — the part is now
  // served entirely off replicas. Partition 1 lost only its backup; its
  // primary stays put and a replacement replica lands on the
  // least-loaded live server (lowest id on ties).
  EXPECT_EQ(map.copy(2, 0), (PartitionCopy{3, false}));
  EXPECT_EQ(map.copy(2, 1), (PartitionCopy{2, false}));
  EXPECT_EQ(map.copy(1, 0), (PartitionCopy{2, true}));
  EXPECT_EQ(map.copy(1, 1), (PartitionCopy{0, false}));
  // Untouched partitions keep their placement.
  EXPECT_EQ(map.copy(0, 0), (PartitionCopy{0, true}));
  EXPECT_EQ(map.copy(0, 1), (PartitionCopy{2, false}));
  EXPECT_EQ(map.copy(3, 0), (PartitionCopy{3, true}));
  EXPECT_EQ(map.copy(3, 1), (PartitionCopy{0, false}));
}

TEST(PartitionMapTest, TransitionsRejectStatesTheyCannotLeaveConsistent) {
  // Unreplicated maps have nowhere to hand copies off to.
  EXPECT_FALSE(PartitionMap::identity(0).drained(0).ok());
  // Two live servers cannot keep every partition at two distinct copies.
  EXPECT_FALSE(PartitionMap::identity(1).drained(0).ok());
  // Unknown and already-drained slots are rejected.
  EXPECT_FALSE(PartitionMap::identity(2).drained(7).ok());
  Result<PartitionMap> once = PartitionMap::identity(2).drained(1);
  ASSERT_TRUE(once.ok());
  EXPECT_FALSE(once.value().drained(1).ok());
  // A split cannot place halves on drained slots.
  EXPECT_FALSE(once.value().split().ok());
  EXPECT_FALSE(PartitionMap{}.split().ok());
}

// ---------------------------------------------------------------------------
// Cluster-level elastic rig.
// ---------------------------------------------------------------------------

/// A cluster over a FaultyTransport, born either at a routing width or at
/// an explicit (post-transition) partition map.
struct ElasticRig {
  net::FaultyTransport* faulty = nullptr;  // owned by the cluster's stack
  std::unique_ptr<Cluster> cluster;

  explicit ElasticRig(unsigned w) : ElasticRig(w, PartitionMap{}) {}
  explicit ElasticRig(const PartitionMap& map) : ElasticRig(0, map) {}

 private:
  ElasticRig(unsigned w, const PartitionMap& map) {
    ClusterConfig cfg;
    cfg.routing_bits = w;
    cfg.partition_map = map;
    cfg.repository_nodes = 2;
    cfg.server_config.index_params = {.prefix_bits = 6,
                                      .blocks_per_bucket = 2};
    cfg.server_config.filter_params = {.hash_bits = 8, .capacity = 100000};
    cfg.server_config.chunk_store.cache_params = {.hash_bits = 4,
                                                  .capacity = 1000000};
    cfg.server_config.chunk_store.io_buckets = 8;
    cfg.server_config.chunk_store.siu_threshold = 1;
    auto factory = std::make_shared<net::FaultyTransportFactory>(
        net::NetFaultConfig{});
    cfg.transport_factory = factory;
    cluster = std::make_unique<Cluster>(std::move(cfg));
    faulty = factory->last();
  }
};

void backup_stream(Cluster& cluster, std::size_t server, std::uint64_t job,
                   std::uint64_t first, std::uint64_t count) {
  FileStore& fs = cluster.server(server).file_store();
  fs.begin_job(job);
  fs.begin_file({.path = "s", .size = count * 512, .mtime = 0, .mode = 0644});
  for (std::uint64_t i = first; i < first + count; ++i) {
    const Fingerprint f = fp(i);
    if (fs.offer_fingerprint(f, 512)) {
      const auto payload = BackupEngine::synthetic_payload(f, 512);
      ASSERT_TRUE(
          fs.receive_chunk(f, ByteSpan(payload.data(), payload.size())).ok());
    }
  }
  fs.end_file();
  ASSERT_TRUE(fs.end_job().ok());
}

std::vector<Byte> flatten(const Dataset& dataset) {
  std::vector<Byte> out;
  for (const FileData& file : dataset.files) {
    out.insert(out.end(), file.content.begin(), file.content.end());
  }
  return out;
}

std::vector<std::vector<Byte>> container_images(Cluster& cluster) {
  std::vector<std::vector<Byte>> images;
  for (const ContainerId id : cluster.repository().container_ids()) {
    Result<storage::Container> container = cluster.repository().read(id);
    EXPECT_TRUE(container.ok());
    if (container.ok()) images.push_back(container.value().serialize());
  }
  return images;
}

/// The raw device image behind one copy of a partition, looked up through
/// the live map — works across migrations, where factory-call order no
/// longer identifies devices.
std::vector<Byte> copy_image(Cluster& cluster, std::size_t part,
                             std::size_t which) {
  const PartitionCopy& placed = cluster.partition_map().copy(part, which);
  BackupServer& host = cluster.server(placed.server);
  index::DiskIndex& idx = placed.via_store
                              ? host.chunk_store().index()
                              : host.part_replica(part).index();
  std::vector<Byte> out(idx.device().size());
  EXPECT_TRUE(idx.device().read(0, std::span<Byte>(out.data(), out.size())).ok());
  return out;
}

TEST(ClusterElasticTest, ExplicitIdentityMapMatchesRoutingBitsConstruction) {
  // The refactor's no-regression bar: a cluster handed identity(w) as an
  // explicit map must be byte-identical to one built from routing_bits —
  // same round accounting, same index images, same containers, same
  // restored bytes.
  ElasticRig classic(/*w=*/1);
  ElasticRig mapped(PartitionMap::identity(1));
  EXPECT_EQ(mapped.cluster->epoch(), 0u);

  const std::uint64_t job_a = classic.cluster->director().define_job("c", "d");
  const std::uint64_t job_b = mapped.cluster->director().define_job("c", "d");
  backup_stream(*classic.cluster, 0, job_a, 0, 60);
  backup_stream(*mapped.cluster, 0, job_b, 0, 60);

  Result<ClusterDedup2Result> round_a = classic.cluster->run_dedup2(true);
  Result<ClusterDedup2Result> round_b = mapped.cluster->run_dedup2(true);
  ASSERT_TRUE(round_a.ok());
  ASSERT_TRUE(round_b.ok());
  EXPECT_EQ(round_a.value().undetermined, round_b.value().undetermined);
  EXPECT_EQ(round_a.value().duplicates, round_b.value().duplicates);
  EXPECT_EQ(round_a.value().new_chunks, round_b.value().new_chunks);

  for (std::size_t p = 0; p < 2; ++p) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_EQ(copy_image(*classic.cluster, p, c),
                copy_image(*mapped.cluster, p, c))
          << "part " << p << " copy " << c;
    }
  }
  EXPECT_EQ(container_images(*classic.cluster),
            container_images(*mapped.cluster));
  EXPECT_EQ(flatten(classic.cluster->restore(job_a, 1, 0).value()),
            flatten(mapped.cluster->restore(job_b, 1, 0).value()));
}

TEST(ClusterElasticTest, SplitThenDrainMatchesAClusterBornAtTheFinalTopology) {
  // The acceptance differential: generation 1 at w=1, then a live split
  // to w=2 (two servers added), then slot 1 drained, then generation 2 —
  // against a twin cluster BORN at the exact final map running the same
  // two generations. Every surviving copy's index image, the repository,
  // and both restored generations must be byte-identical.
  ElasticRig grown(/*w=*/1);
  const std::uint64_t job = grown.cluster->director().define_job("c", "d");
  backup_stream(*grown.cluster, 0, job, 0, 60);
  ASSERT_TRUE(grown.cluster->run_dedup2(true).ok());

  ASSERT_TRUE(grown.cluster->split().ok());
  EXPECT_EQ(grown.cluster->server_count(), 4u);
  EXPECT_EQ(grown.cluster->epoch(), 1u);
  EXPECT_EQ(grown.cluster->partition_map().part_count(), 4u);

  ASSERT_TRUE(grown.cluster->drain(1).ok());
  EXPECT_EQ(grown.cluster->epoch(), 2u);
  EXPECT_FALSE(grown.cluster->partition_map().is_live(1));

  backup_stream(*grown.cluster, 0, job, 100, 60);
  Result<ClusterDedup2Result> gen2 = grown.cluster->run_dedup2(true);
  ASSERT_TRUE(gen2.ok()) << gen2.error().to_string();
  EXPECT_FALSE(gen2.value().degraded());

  // The twin is born at the grown cluster's final map — a placement no
  // identity layout reproduces (partition 2 is served off two replicas).
  ElasticRig twin(grown.cluster->partition_map());
  const std::uint64_t twin_job = twin.cluster->director().define_job("c", "d");
  backup_stream(*twin.cluster, 0, twin_job, 0, 60);
  ASSERT_TRUE(twin.cluster->run_dedup2(true).ok());
  backup_stream(*twin.cluster, 0, twin_job, 100, 60);
  ASSERT_TRUE(twin.cluster->run_dedup2(true).ok());

  const PartitionMap& final_map = grown.cluster->partition_map();
  ASSERT_EQ(twin.cluster->partition_map(), final_map);
  for (std::size_t p = 0; p < final_map.part_count(); ++p) {
    for (std::size_t c = 0; c < final_map.copy_count(); ++c) {
      EXPECT_EQ(copy_image(*grown.cluster, p, c),
                copy_image(*twin.cluster, p, c))
          << "part " << p << " copy " << c;
    }
  }
  EXPECT_EQ(container_images(*grown.cluster), container_images(*twin.cluster));

  // Both generations restore identically — through the original server 0
  // AND through server 2, which only exists because of the split.
  for (std::uint32_t version = 1; version <= 2; ++version) {
    const std::vector<Byte> expected =
        flatten(twin.cluster->restore(twin_job, version, 0).value());
    for (const std::size_t via : {std::size_t{0}, std::size_t{2}}) {
      Result<Dataset> restored = grown.cluster->restore(job, version, via);
      ASSERT_TRUE(restored.ok()) << restored.error().to_string();
      EXPECT_EQ(flatten(restored.value()), expected)
          << "version " << version << " via " << via;
    }
  }
}

TEST(ClusterElasticTest, SplitAbortsCleanlyAroundADegradedRoundAndRetries) {
  // One server dark mid-migration: the split must refuse (kUnavailable),
  // leave the topology untouched, coexist with a degraded round run in
  // the meantime, refuse again while catch-up debt is outstanding, and
  // succeed once the fleet heals — with everything restorable after.
  ElasticRig rig(/*w=*/1);
  Cluster& cluster = *rig.cluster;
  const std::uint64_t job = cluster.director().define_job("c", "d");

  backup_stream(cluster, 0, job, 0, 60);
  ASSERT_TRUE(cluster.run_dedup2(true).ok());

  rig.faulty->set_unreachable(1, true);
  Status dark_split = cluster.split();
  EXPECT_FALSE(dark_split.ok());
  EXPECT_EQ(dark_split.code(), Errc::kUnavailable);
  EXPECT_EQ(cluster.server_count(), 2u);
  EXPECT_EQ(cluster.epoch(), 0u);

  // The cluster still takes (degraded) rounds at the old topology.
  backup_stream(cluster, 0, job, 100, 60);
  Result<ClusterDedup2Result> degraded = cluster.run_dedup2(true);
  ASSERT_TRUE(degraded.ok()) << degraded.error().to_string();
  EXPECT_TRUE(degraded.value().degraded());

  // Now the dark server is owed catch-up entries: still no migration.
  Status owed_split = cluster.split();
  EXPECT_FALSE(owed_split.ok());
  EXPECT_EQ(owed_split.code(), Errc::kInvalidArgument);

  // Heal; the next round re-admits server 1, delivers catch-up, and its
  // forced SIU leaves zero pending — the migration preconditions.
  rig.faulty->set_unreachable(1, false);
  ASSERT_TRUE(cluster.run_dedup2(true).ok());

  Status split = cluster.split();
  ASSERT_TRUE(split.ok()) << split.to_string();
  EXPECT_EQ(cluster.server_count(), 4u);
  EXPECT_EQ(cluster.epoch(), 1u);

  backup_stream(cluster, 0, job, 200, 60);
  ASSERT_TRUE(cluster.run_dedup2(true).ok());
  for (std::uint32_t version = 1; version <= 3; ++version) {
    Result<Dataset> restored = cluster.restore(job, version, /*via=*/2);
    ASSERT_TRUE(restored.ok())
        << "version " << version << ": " << restored.error().to_string();
    std::vector<Byte> expected;
    const std::uint64_t first = (version - 1) * 100;
    for (std::uint64_t i = first; i < first + 60; ++i) {
      const auto payload = BackupEngine::synthetic_payload(fp(i), 512);
      expected.insert(expected.end(), payload.begin(), payload.end());
    }
    EXPECT_EQ(flatten(restored.value()), expected);
  }
}

TEST(ClusterElasticTest, DrainRequiresEnoughSurvivorsAndAKnownSlot) {
  ElasticRig rig(/*w=*/1);
  EXPECT_FALSE(rig.cluster->drain(0).ok());  // 2 live servers: no quorum
  EXPECT_FALSE(rig.cluster->drain(9).ok());
  EXPECT_EQ(rig.cluster->epoch(), 0u);
}

// ---------------------------------------------------------------------------
// Epoch fencing on the SPMD path: two ClusterNodes with torn maps.
// ---------------------------------------------------------------------------

TEST(ClusterNodeEpochTest, TornMapsRejectEachOthersBatches) {
  // Same layout, different epochs — the exact state a node missing a
  // migration commit would be in. Phase-A batches carry the sender's
  // epoch; both sides must refuse to fold foreign-epoch traffic into
  // their round (kInvalidArgument), never mis-route it.
  storage::ChunkRepository repo_a(2, sim::DiskProfile::PaperRaid());
  storage::ChunkRepository repo_b(2, sim::DiskProfile::PaperRaid());
  Director dir_a;
  Director dir_b;
  BackupServerConfig cfg;
  cfg.index_params = {.prefix_bits = 6, .skip_bits = 1, .blocks_per_bucket = 2};
  cfg.filter_params = {.hash_bits = 8, .capacity = 100000};
  cfg.chunk_store.cache_params = {.hash_bits = 4, .capacity = 1000000};
  cfg.chunk_store.io_buckets = 8;
  cfg.chunk_store.siu_threshold = 1;
  BackupServer s0(0, cfg, &repo_a, &dir_a);
  BackupServer s1(1, cfg, &repo_b, &dir_b);
  ASSERT_TRUE(s0.attach_replica(1).ok());
  ASSERT_TRUE(s1.attach_replica(0).ok());

  net::LoopbackTransport transport;
  ASSERT_TRUE(transport.register_endpoint(0, &s0.nic()).ok());
  ASSERT_TRUE(transport.register_endpoint(1, &s1.nic()).ok());
  s0.attach_endpoint(std::make_unique<net::Endpoint>(&transport, 0));
  s1.attach_endpoint(std::make_unique<net::Endpoint>(&transport, 1));

  const PartitionMap stale = PartitionMap::identity(1);  // epoch 0
  Result<PartitionMap> split = PartitionMap::identity(0).split();
  ASSERT_TRUE(split.ok());  // identical layout, epoch 1

  ClusterNode node0({.node = 0,
                     .map = stale,
                     .round_timeout = std::chrono::seconds(5)},
                    &s0);
  ClusterNode node1({.node = 1,
                     .map = split.value(),
                     .round_timeout = std::chrono::seconds(5)},
                    &s1);

  std::optional<Result<NodeRoundResult>> r0;
  std::optional<Result<NodeRoundResult>> r1;
  std::thread t0([&] { r0 = node0.run_dedup2_round(true); });
  std::thread t1([&] { r1 = node1.run_dedup2_round(true); });
  t0.join();
  t1.join();

  ASSERT_TRUE(r0.has_value());
  ASSERT_TRUE(r1.has_value());
  EXPECT_FALSE(r0->ok());
  EXPECT_FALSE(r1->ok());
  // At least one side saw the foreign epoch directly; the other either
  // saw it too or starved when its peer aborted.
  const bool fenced =
      (!r0->ok() && r0->error().code == Errc::kInvalidArgument) ||
      (!r1->ok() && r1->error().code == Errc::kInvalidArgument);
  EXPECT_TRUE(fenced);
}

}  // namespace
}  // namespace debar::core
