// Wire-format round trips for every cluster message: encode/decode must
// be an identity, wire_bytes must equal the encoded size, and truncated
// or internally inconsistent buffers must be rejected, never trusted.
#include <gtest/gtest.h>

#include "common/sha1.hpp"
#include "net/message.hpp"

namespace debar::net {
namespace {

Fingerprint fp(std::uint64_t i) { return Sha1::hash_counter(i); }

std::vector<Message> sample_messages() {
  FingerprintBatch fps;
  for (std::uint64_t i = 0; i < 7; ++i) fps.fps.push_back(fp(i));

  VerdictBatch verdicts;
  verdicts.query_count = 1000;
  verdicts.duplicate_indices = {0, 1, 2, 40, 41, 999};

  IndexEntryBatch entries;
  for (std::uint64_t i = 0; i < 5; ++i) {
    entries.entries.push_back({fp(100 + i), ContainerId{i * 3}});
  }

  ChunkData chunk;
  chunk.fp = fp(7);
  for (int i = 0; i < 300; ++i) chunk.bytes.push_back(Byte(i & 0xff));

  GcMarkRequest mark_request;
  mark_request.epoch = 5;
  mark_request.part = 3;
  for (std::uint64_t i = 0; i < 9; ++i) mark_request.fps.push_back(fp(i));

  GcMarkReply mark_reply;
  mark_reply.epoch = 5;
  mark_reply.part = 3;
  for (std::uint64_t i = 0; i < 4; ++i) {
    mark_reply.entries.push_back({fp(i), ContainerId{i + 1}});
  }

  GcInstall install;
  install.epoch = 5;
  install.part = 2;
  install.via_store = 1;
  for (std::uint64_t i = 0; i < 6; ++i) {
    install.entries.push_back({fp(50 + i), ContainerId{i * 7 + 1}});
  }

  // Ingest wire (DESIGN.md §5l): open/batch/close plus the shared reply.
  IngestBatch ingest_begin;
  ingest_begin.epoch = 4;
  ingest_begin.stream = 0x1234;
  ingest_begin.flags = IngestBatch::kBeginFile;
  ingest_begin.path = "tenant-3/file-0";
  ingest_begin.file_size = 9 * 512;
  ingest_begin.mtime = 42;
  ingest_begin.mode = 0600;
  for (std::uint64_t i = 0; i < 9; ++i) {
    ingest_begin.fps.push_back(fp(400 + i));
    ingest_begin.sizes.push_back(static_cast<std::uint32_t>(512 + i));
  }

  IngestBatch ingest_end;  // middle/end batch: no metadata serialized
  ingest_end.epoch = 4;
  ingest_end.stream = 0x1234;
  ingest_end.flags = IngestBatch::kEndFile;
  ingest_end.fps = {fp(500), fp(501)};
  ingest_end.sizes = {512, 100};

  IngestReply ingest_needed;
  ingest_needed.stream = 0x1234;
  ingest_needed.query_count = 9;
  ingest_needed.needed = {0, 1, 4, 8};

  return {
      Message{fps},
      Message{FingerprintBatch{}},  // empty batches are valid heartbeats
      Message{verdicts},
      Message{VerdictBatch{.query_count = 0, .duplicate_indices = {}}},
      Message{entries},
      Message{IndexEntryBatch{}},
      // Epoch-stamped batches (elastic repartitioning wire): the epoch
      // must survive the round trip like any other field.
      Message{FingerprintBatch{{fp(20), fp(21)}, 7}},
      Message{IndexEntryBatch{{{fp(30), ContainerId{9}}}, 3}},
      Message{ChunkLocateRequest{fp(9)}},
      Message{ChunkLocateReply{Errc::kOk, ContainerId{12345}}},
      Message{ChunkLocateReply{Errc::kNotFound, ContainerId{}}},
      Message{chunk},
      Message{ChunkData{fp(8), {}}},
      // Maintenance wire (DESIGN.md §5k): mark/install exchanges and the
      // commit/abort/ack control ops, epoch fences included. Empty
      // payloads are valid — an install can legitimately clear a
      // partition whose entries all died.
      Message{mark_request},
      Message{GcMarkRequest{.epoch = 0, .part = 0, .fps = {}}},
      Message{mark_reply},
      Message{GcMarkReply{.epoch = 2, .part = 1, .entries = {}}},
      Message{install},
      Message{GcInstall{.epoch = 1, .part = 0, .via_store = 0,
                        .entries = {}}},
      Message{IngestOpen{.epoch = 4, .tenant = 17, .job_id = 1017}},
      Message{IngestOpen{}},
      Message{ingest_begin},
      Message{ingest_end},
      // One-batch file: both flags set, metadata present, zero chunks
      // (an empty file is a legal stream).
      Message{IngestBatch{.epoch = 1,
                          .stream = 9,
                          .flags = IngestBatch::kBeginFile |
                                   IngestBatch::kEndFile,
                          .path = "empty",
                          .file_size = 0,
                          .mtime = 1,
                          .mode = 0644,
                          .fps = {},
                          .sizes = {}}},
      Message{IngestClose{.epoch = 4, .stream = 0x1234}},
      Message{ingest_needed},
      Message{IngestReply{.status = Errc::kBusy, .retry_ms = 7}},
      Message{IngestReply{.status = Errc::kOk, .stream = 9, .version = 3}},
      Message{Control{Control::kShutdown, 0}},
      Message{Control{Control::kMaintenanceCommit, 4}},
      Message{Control{Control::kMaintenanceAbort, 4}},
      Message{Control{Control::kMaintenanceAck, 4}},
  };
}

TEST(MessageTest, EncodeDecodeRoundTripsEveryType) {
  std::uint32_t seq = 0;
  for (const Message& msg : sample_messages()) {
    const std::vector<Byte> bytes = encode(3, 8, seq, msg);
    EXPECT_EQ(bytes.size(), wire_bytes(msg));

    Result<Decoded> decoded = decode(ByteSpan(bytes.data(), bytes.size()));
    ASSERT_TRUE(decoded.ok()) << decoded.error().message;
    EXPECT_EQ(decoded.value().from, 3u);
    EXPECT_EQ(decoded.value().to, 8u);
    EXPECT_EQ(decoded.value().seq, seq);
    EXPECT_EQ(decoded.value().message, msg);
    ++seq;
  }
}

TEST(MessageTest, ReEncodingDecodedMessageIsByteIdentical) {
  for (const Message& msg : sample_messages()) {
    const std::vector<Byte> bytes = encode(1, 2, 77, msg);
    Result<Decoded> decoded = decode(ByteSpan(bytes.data(), bytes.size()));
    ASSERT_TRUE(decoded.ok());
    const std::vector<Byte> again =
        encode(decoded.value().from, decoded.value().to, decoded.value().seq,
               decoded.value().message);
    EXPECT_EQ(again, bytes);
  }
}

TEST(MessageTest, EveryTruncationIsRejected) {
  for (const Message& msg : sample_messages()) {
    const std::vector<Byte> bytes = encode(0, 1, 5, msg);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      Result<Decoded> decoded = decode(ByteSpan(bytes.data(), len));
      EXPECT_FALSE(decoded.ok())
          << "truncation to " << len << " of " << bytes.size() << " accepted";
      if (!decoded.ok()) {
        EXPECT_EQ(decoded.error().code, Errc::kCorrupt);
      }
    }
  }
}

TEST(MessageTest, TrailingGarbageIsRejected) {
  for (const Message& msg : sample_messages()) {
    std::vector<Byte> bytes = encode(0, 1, 5, msg);
    bytes.push_back(Byte{0xAB});
    EXPECT_FALSE(decode(ByteSpan(bytes.data(), bytes.size())).ok());
  }
}

TEST(MessageTest, UnknownTypeIsRejected) {
  std::vector<Byte> bytes = encode(0, 1, 5, Message{FingerprintBatch{}});
  bytes[0] = Byte{0x7F};
  EXPECT_FALSE(decode(ByteSpan(bytes.data(), bytes.size())).ok());
}

TEST(MessageTest, OversizedCountCannotOverrunBuffer) {
  FingerprintBatch batch;
  batch.fps.push_back(fp(1));
  std::vector<Byte> bytes = encode(0, 1, 5, Message{batch});
  // Corrupt the payload's count field (it follows the 4-byte epoch that
  // leads the payload) to claim far more fingerprints than the frame
  // carries.
  bytes[kEnvelopeSize + 4] = Byte{0xFF};
  bytes[kEnvelopeSize + 5] = Byte{0xFF};
  EXPECT_FALSE(decode(ByteSpan(bytes.data(), bytes.size())).ok());
}

TEST(MessageTest, VerdictIndicesBeyondQueryCountAreRejected) {
  VerdictBatch verdicts;
  verdicts.query_count = 4;
  verdicts.duplicate_indices = {0, 3};
  std::vector<Byte> bytes = encode(0, 1, 5, Message{verdicts});
  // The two varint deltas are the last two payload bytes (1 then 3);
  // inflating the second pushes the index past query_count.
  bytes[bytes.size() - 1] = Byte{60};
  EXPECT_FALSE(decode(ByteSpan(bytes.data(), bytes.size())).ok());
}

TEST(MessageTest, IngestNeededBeyondQueryCountIsRejected) {
  IngestReply reply;
  reply.query_count = 4;
  reply.needed = {0, 3};
  std::vector<Byte> bytes = encode(0, 1, 5, Message{reply});
  // `needed` rides the same ascending-delta varints as VerdictBatch; the
  // final payload byte is the last delta. Inflating it pushes the
  // position past query_count, which the decoder must refuse.
  bytes[bytes.size() - 1] = Byte{60};
  EXPECT_FALSE(decode(ByteSpan(bytes.data(), bytes.size())).ok());
}

TEST(MessageTest, IngestBatchCountCannotOverrunBuffer) {
  IngestBatch batch;
  batch.flags = IngestBatch::kEndFile;  // no metadata: count follows flags
  batch.stream = 1;
  batch.fps = {fp(1)};
  batch.sizes = {512};
  std::vector<Byte> bytes = encode(0, 1, 5, Message{batch});
  // Payload layout: epoch(4) stream(8) flags(1) count(4)...; claim 64k
  // fingerprints in a one-fingerprint frame.
  bytes[kEnvelopeSize + 13] = Byte{0xFF};
  bytes[kEnvelopeSize + 14] = Byte{0xFF};
  EXPECT_FALSE(decode(ByteSpan(bytes.data(), bytes.size())).ok());
}

TEST(MessageTest, IngestBatchPathLengthCannotOverrunBuffer) {
  IngestBatch batch;
  batch.flags = IngestBatch::kBeginFile | IngestBatch::kEndFile;
  batch.path = "abc";
  std::vector<Byte> bytes = encode(0, 1, 5, Message{batch});
  // With kBeginFile the path length leads the metadata block at the same
  // offset; claim a path far longer than the frame.
  bytes[kEnvelopeSize + 13] = Byte{0xFF};
  bytes[kEnvelopeSize + 14] = Byte{0xFF};
  EXPECT_FALSE(decode(ByteSpan(bytes.data(), bytes.size())).ok());
}

TEST(MessageTest, DenseVerdictRunsCostOneBytePerVerdict) {
  // The paper's accounting charged 1 B per duplicate verdict; the
  // delta-varint encoding must keep that for a dense run.
  VerdictBatch dense;
  dense.query_count = 512;
  for (std::uint32_t i = 0; i < 512; ++i) {
    dense.duplicate_indices.push_back(i);
  }
  EXPECT_EQ(wire_bytes(Message{dense}), kEnvelopeSize + 4 + 4 + 512);
}

TEST(MessageTest, PerItemCostsMatchThePaperModel) {
  // 20 B per shipped fingerprint, 25 B per index entry — the constants
  // the cluster used to hard-code now fall out of the encodings.
  FingerprintBatch one_fp;
  one_fp.fps.push_back(fp(0));
  EXPECT_EQ(wire_bytes(Message{one_fp}) - wire_bytes(Message{FingerprintBatch{}}),
            20u);

  IndexEntryBatch one_entry;
  one_entry.entries.push_back({fp(0), ContainerId{1}});
  EXPECT_EQ(wire_bytes(Message{one_entry}) - wire_bytes(Message{IndexEntryBatch{}}),
            25u);
}

}  // namespace
}  // namespace debar::net
