// Wire-codec battery (net/wire_codec): every message type must round-trip
// through every codec, and every malformed frame — truncations, bit
// flips, unknown codec or inner types, over-long declared sub-frames,
// hostile LZ blocks — must decode to a clean error. Runs in the CI
// asan-ubsan job (label net-codec), so "never crash, never read out of
// bounds" is checked under the sanitizers that would catch it.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "common/sha1.hpp"
#include "core/backup_engine.hpp"
#include "net/lz.hpp"
#include "net/wire_codec.hpp"

namespace debar::net {
namespace {

Fingerprint fp(std::uint64_t i) { return Sha1::hash_counter(i); }

constexpr CodecId kAllCodecs[] = {CodecId::kIdentity, CodecId::kDelta,
                                  CodecId::kDeltaLz};

std::vector<Message> sample_messages() {
  FingerprintBatch fps;
  for (std::uint64_t i = 0; i < 7; ++i) fps.fps.push_back(fp(i));
  std::sort(fps.fps.begin(), fps.fps.end());

  // A batch front-coding actually wins on: long shared prefixes.
  FingerprintBatch prefixed;
  for (std::uint64_t i = 0; i < 6; ++i) {
    Fingerprint f{};
    f.bytes[18] = static_cast<Byte>(i);
    f.bytes[19] = static_cast<Byte>(i * 7);
    prefixed.fps.push_back(f);
  }

  VerdictBatch verdicts;
  verdicts.query_count = 1000;
  verdicts.duplicate_indices = {0, 1, 2, 40, 41, 999};

  IndexEntryBatch entries;  // storage-order run: small container deltas
  for (std::uint64_t i = 0; i < 50; ++i) {
    entries.entries.push_back({fp(100 + i), ContainerId{5 + i / 10}});
  }
  IndexEntryBatch scattered;  // adversarial: deltas larger than raw u40
  for (std::uint64_t i = 0; i < 5; ++i) {
    scattered.entries.push_back(
        {fp(200 + i), ContainerId{(i % 2) ? ContainerId::kMask : 1}});
  }

  ChunkData chunk;  // synthetic backup payload: highly compressible
  chunk.fp = fp(7);
  chunk.bytes = core::BackupEngine::synthetic_payload(chunk.fp, 4096);
  ChunkData incompressible;
  incompressible.fp = fp(8);
  Xoshiro256 rng(42);
  for (int i = 0; i < 500; ++i) {
    incompressible.bytes.push_back(static_cast<Byte>(rng.below(256)));
  }

  return {
      Message{fps},
      Message{prefixed},
      Message{FingerprintBatch{}},
      Message{verdicts},
      Message{VerdictBatch{.query_count = 0, .duplicate_indices = {}}},
      Message{entries},
      Message{scattered},
      Message{IndexEntryBatch{}},
      Message{ChunkLocateRequest{fp(9)}},
      Message{ChunkLocateReply{Errc::kOk, ContainerId{12345}}},
      Message{chunk},
      Message{incompressible},
      Message{ChunkData{fp(10), {}}},
      Message{Control{.op = Control::kShutdown, .arg = 7}},
  };
}

/// Group the samples into same-type runs, as encode_jumbo requires.
std::vector<std::vector<Message>> same_type_runs() {
  std::vector<std::vector<Message>> runs;
  for (const Message& msg : sample_messages()) {
    bool placed = false;
    for (std::vector<Message>& run : runs) {
      if (type_of(run.front()) == type_of(msg)) {
        run.push_back(msg);
        placed = true;
        break;
      }
    }
    if (!placed) runs.push_back({msg});
  }
  return runs;
}

TEST(WireCodecTest, EveryTypeRoundTripsThroughEveryCodec) {
  for (const CodecId codec : kAllCodecs) {
    for (const std::vector<Message>& run : same_type_runs()) {
      const std::vector<Byte> frame = encode_jumbo(
          3, 8, 55, codec, std::span<const Message>(run));
      Result<DecodedJumbo> decoded =
          decode_jumbo(ByteSpan(frame.data(), frame.size()));
      ASSERT_TRUE(decoded.ok()) << decoded.error().message;
      EXPECT_EQ(decoded.value().from, 3u);
      EXPECT_EQ(decoded.value().to, 8u);
      EXPECT_EQ(decoded.value().seq, 55u);
      EXPECT_EQ(decoded.value().codec, codec);
      ASSERT_EQ(decoded.value().messages.size(), run.size());
      for (std::size_t i = 0; i < run.size(); ++i) {
        EXPECT_EQ(decoded.value().messages[i], run[i])
            << "codec " << static_cast<int>(codec) << " message " << i;
      }
    }
  }
}

TEST(WireCodecTest, CoalescingPlusCompressionShrinksTheWire) {
  // A fig14-shaped run: many sorted fingerprints, storage-order entries,
  // synthetic chunk payloads. kDeltaLz must beat the per-message v1 cost.
  std::vector<Message> chunks;
  std::size_t raw = 0;
  for (std::uint64_t i = 0; i < 16; ++i) {
    ChunkData c{fp(i), core::BackupEngine::synthetic_payload(fp(i), 4096)};
    raw += wire_bytes(Message{c});
    chunks.push_back(Message{std::move(c)});
  }
  const std::vector<Byte> frame =
      encode_jumbo(0, 1, 0, CodecId::kDeltaLz, std::span<const Message>(chunks));
  EXPECT_LT(frame.size(), raw / 3) << "LZ'd synthetic chunks should crush";

  IndexEntryBatch batch;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    batch.entries.push_back({fp(i), ContainerId{1 + i / 300}});
  }
  const Message emsg{batch};
  raw = wire_bytes(emsg);
  const std::vector<Byte> eframe = encode_jumbo(
      0, 1, 0, CodecId::kDelta, std::span<const Message>(&emsg, 1));
  EXPECT_LT(eframe.size(), raw - 3 * batch.entries.size())
      << "container deltas should save ~4 of 5 bytes per entry";
}

TEST(WireCodecTest, EveryTruncationIsRejected) {
  for (const CodecId codec : kAllCodecs) {
    for (const std::vector<Message>& run : same_type_runs()) {
      const std::vector<Byte> frame =
          encode_jumbo(0, 1, 5, codec, std::span<const Message>(run));
      for (std::size_t len = 0; len < frame.size(); ++len) {
        Result<DecodedJumbo> decoded = decode_jumbo(ByteSpan(frame.data(), len));
        EXPECT_FALSE(decoded.ok())
            << "truncation to " << len << " of " << frame.size() << " accepted";
        if (!decoded.ok()) {
          EXPECT_EQ(decoded.error().code, Errc::kCorrupt);
        }
      }
    }
  }
}

TEST(WireCodecTest, RandomBitFlipsNeverCrashAndOftenReject) {
  Xoshiro256 rng(7);
  for (const CodecId codec : kAllCodecs) {
    for (const std::vector<Message>& run : same_type_runs()) {
      const std::vector<Byte> frame =
          encode_jumbo(2, 3, 9, codec, std::span<const Message>(run));
      for (int trial = 0; trial < 300; ++trial) {
        std::vector<Byte> corrupt = frame;
        corrupt[rng.below(corrupt.size())] ^=
            static_cast<Byte>(1u << rng.below(8));
        // Must never crash; a flip in chunk payload bytes may still parse.
        Result<DecodedJumbo> decoded =
            decode_jumbo(ByteSpan(corrupt.data(), corrupt.size()));
        if (!decoded.ok()) {
          EXPECT_EQ(decoded.error().code, Errc::kCorrupt);
        }
      }
    }
  }
}

TEST(WireCodecTest, UnknownCodecAndInnerTypesAreRejected) {
  FingerprintBatch batch;
  batch.fps.push_back(fp(1));
  const Message msg{batch};
  std::vector<Byte> frame = encode_jumbo(0, 1, 0, CodecId::kIdentity,
                                         std::span<const Message>(&msg, 1));
  // Envelope is 17 bytes; payload byte 0 = inner type, byte 1 = codec id.
  std::vector<Byte> bad_codec = frame;
  bad_codec[kEnvelopeSize + 1] = 99;
  EXPECT_FALSE(decode_jumbo(ByteSpan(bad_codec.data(), bad_codec.size())).ok());

  for (const std::uint8_t inner :
       {std::uint8_t{0}, static_cast<std::uint8_t>(MessageType::kJumbo),
        std::uint8_t{200}}) {
    std::vector<Byte> bad_inner = frame;
    bad_inner[kEnvelopeSize] = inner;
    EXPECT_FALSE(
        decode_jumbo(ByteSpan(bad_inner.data(), bad_inner.size())).ok())
        << "inner type " << static_cast<int>(inner) << " accepted";
  }

  // A v1 (non-jumbo) frame is not a jumbo frame.
  const std::vector<Byte> v1 = encode(0, 1, 0, msg);
  EXPECT_FALSE(decode_jumbo(ByteSpan(v1.data(), v1.size())).ok());
}

TEST(WireCodecTest, OverlongDeclaredLengthsAreRejected) {
  FingerprintBatch batch;
  for (std::uint64_t i = 0; i < 3; ++i) batch.fps.push_back(fp(i));
  const Message msg{batch};
  const std::vector<Byte> frame = encode_jumbo(
      0, 1, 0, CodecId::kIdentity, std::span<const Message>(&msg, 1));

  // Grow the declared count without supplying sub-frames.
  std::vector<Byte> many = frame;
  many[kEnvelopeSize + 2] = 0x7F;  // count varint: 127 runs declared
  EXPECT_FALSE(decode_jumbo(ByteSpan(many.data(), many.size())).ok());

  // Declare a sub-frame longer than the remaining payload.
  std::vector<Byte> long_sub = frame;
  long_sub[kEnvelopeSize + 3] = 0x7F;  // sub_len varint of first run
  EXPECT_FALSE(decode_jumbo(ByteSpan(long_sub.data(), long_sub.size())).ok());
}

TEST(WireCodecTest, NegotiationClampsToTheCommonSet) {
  EXPECT_EQ(negotiate(CodecId::kDeltaLz, supported_codecs()),
            CodecId::kDeltaLz);
  // Peer only speaks identity + delta: the LZ preference degrades.
  const std::uint8_t no_lz = 0b011;
  EXPECT_EQ(negotiate(CodecId::kDeltaLz, no_lz), CodecId::kDelta);
  // Peer speaks nothing we know: identity always remains.
  EXPECT_EQ(negotiate(CodecId::kDeltaLz, 0), CodecId::kIdentity);
  EXPECT_EQ(negotiate(CodecId::kIdentity, supported_codecs()),
            CodecId::kIdentity);
}

TEST(DebarLzTest, RoundTripsVariedPayloads) {
  Xoshiro256 rng(3);
  std::vector<std::vector<Byte>> payloads;
  payloads.push_back({});                       // empty
  payloads.push_back({Byte{7}});                // single byte
  payloads.emplace_back(100000, Byte{0xA5});    // pure RLE
  payloads.push_back(core::BackupEngine::synthetic_payload(fp(1), 65536));
  std::vector<Byte> random(5000);
  for (Byte& b : random) b = static_cast<Byte>(rng.below(256));
  payloads.push_back(random);                   // incompressible
  std::vector<Byte> mixed;                      // repetitive with noise
  for (int i = 0; i < 3000; ++i) {
    mixed.push_back(static_cast<Byte>(rng.chance(0.1) ? rng.below(256)
                                                      : (i % 17)));
  }
  payloads.push_back(mixed);

  for (const std::vector<Byte>& raw : payloads) {
    const std::vector<Byte> block =
        lz_compress(ByteSpan(raw.data(), raw.size()));
    Result<std::vector<Byte>> back =
        lz_decompress(ByteSpan(block.data(), block.size()), 1 << 20);
    ASSERT_TRUE(back.ok()) << back.error().message;
    EXPECT_EQ(back.value(), raw);
  }
  // The RLE payload must actually compress hard.
  const std::vector<Byte> rle(100000, Byte{0xA5});
  EXPECT_LT(lz_compress(ByteSpan(rle.data(), rle.size())).size(), 2000u);
}

TEST(DebarLzTest, HostileBlocksAreRejectedNotTrusted) {
  const std::vector<Byte> raw = core::BackupEngine::synthetic_payload(fp(2),
                                                                      2048);
  const std::vector<Byte> block = lz_compress(ByteSpan(raw.data(), raw.size()));

  // Raw-length cap enforced before any allocation.
  EXPECT_FALSE(lz_decompress(ByteSpan(block.data(), block.size()), 100).ok());

  // Every truncation rejects.
  for (std::size_t len = 0; len < block.size(); ++len) {
    EXPECT_FALSE(lz_decompress(ByteSpan(block.data(), len), 1 << 20).ok());
  }

  // Random bit flips never crash (asan-ubsan backs this up).
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<Byte> corrupt = block;
    corrupt[rng.below(corrupt.size())] ^= static_cast<Byte>(1u << rng.below(8));
    (void)lz_decompress(ByteSpan(corrupt.data(), corrupt.size()), 1 << 20);
  }

  // A match offset pointing before the output start must be rejected:
  // token with match but zero prior output.
  std::vector<Byte> bad;
  ByteWriter w(bad);
  w.varint(8);     // declares 8 raw bytes
  w.u8(0x04);      // 0 literals, match_len 4+4=8
  w.u16(1);        // offset 1 with no produced bytes yet
  EXPECT_FALSE(lz_decompress(ByteSpan(bad.data(), bad.size()), 1 << 20).ok());
}

}  // namespace
}  // namespace debar::net
