// The tentpole acceptance test: debar_clusterd run as one process with
// threads (loopback transport) and as real OS processes over TCP
// (socket transport) must leave byte-identical state behind — disk
// indexes, chunk repository logs, and the round/restore summary — at
// both routing widths. The binary's path is injected by CMake as
// DEBAR_CLUSTERD_PATH; `ctest -L net-socket`.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

std::vector<char> slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

fs::path fresh_dir(const std::string& tag) {
  const fs::path dir = fs::path(testing::TempDir()) / ("clusterd-" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void run_clusterd(const std::string& transport, unsigned w,
                  const fs::path& dir) {
  const std::string cmd = std::string(DEBAR_CLUSTERD_PATH) +
                          " --transport=" + transport +
                          " --w=" + std::to_string(w) + " --dir=" +
                          dir.string() + " >/dev/null 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0)
      << transport << " w=" << w << " run failed";
}

void expect_identical_trees(const fs::path& loopback, const fs::path& socket,
                            unsigned w) {
  // Every node's on-disk index, both repository node logs, and the
  // human-readable summary — compared byte for byte.
  std::vector<fs::path> files;
  for (unsigned k = 0; k < (1u << w); ++k) {
    files.push_back(fs::path("node" + std::to_string(k)) / "index.bin");
  }
  files.push_back(fs::path("repo") / "node0.log");
  files.push_back(fs::path("repo") / "node1.log");
  files.push_back("summary.txt");
  for (const fs::path& rel : files) {
    const std::vector<char> a = slurp(loopback / rel);
    const std::vector<char> b = slurp(socket / rel);
    EXPECT_FALSE(a.empty()) << rel;
    EXPECT_EQ(a, b) << rel << " differs between loopback and socket runs";
  }
}

class SocketClusterDifferentialTest : public testing::TestWithParam<unsigned> {
};

TEST_P(SocketClusterDifferentialTest, SocketRunMatchesLoopbackByteForByte) {
  const unsigned w = GetParam();
  const fs::path loopback = fresh_dir("loop-w" + std::to_string(w));
  const fs::path socket = fresh_dir("sock-w" + std::to_string(w));
  run_clusterd("loopback", w, loopback);
  run_clusterd("socket", w, socket);
  expect_identical_trees(loopback, socket, w);
  fs::remove_all(loopback);
  fs::remove_all(socket);
}

INSTANTIATE_TEST_SUITE_P(Widths, SocketClusterDifferentialTest,
                         testing::Values(1u, 2u));

}  // namespace
