// Loopback transport metering and the fault decorator's seeded behavior:
// every transmission charges both NICs at its serialized size, FIFO order
// holds per stream, and fault fates reproduce from the seed alone.
// Receives take a Deadline; virtual transports convert its budget into
// polls, so these tests never wait on the wall clock.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "common/sha1.hpp"
#include "net/endpoint.hpp"
#include "net/faulty_transport.hpp"
#include "net/loopback_transport.hpp"

namespace debar::net {
namespace {

struct Harness {
  sim::SimClock clock0, clock1;
  sim::NicModel nic0{{.bytes_per_sec = 1.0e6}, &clock0};
  sim::NicModel nic1{{.bytes_per_sec = 1.0e6}, &clock1};

  void register_on(Transport& t) {
    ASSERT_TRUE(t.register_endpoint(0, &nic0).ok());
    ASSERT_TRUE(t.register_endpoint(1, &nic1).ok());
  }
};

Frame make_frame(EndpointId from, EndpointId to, std::uint32_t seq,
                 std::uint64_t tag) {
  FingerprintBatch batch;
  batch.fps.push_back(Sha1::hash_counter(tag));
  return Frame{from, to, seq, encode(from, to, seq, Message{batch})};
}

TEST(DeadlineTest, BudgetConvertsToPolls) {
  EXPECT_EQ(Deadline::poll().polls(), 1);  // zero budget still tries once
  EXPECT_EQ(Deadline::for_polls(4).polls(), 4);
  EXPECT_EQ(Deadline::for_polls(4).budget(), 4 * kVirtualPollQuantum);
  EXPECT_EQ(Deadline::after(kVirtualPollQuantum / 2).polls(), 1);
  EXPECT_FALSE(Deadline::after(std::chrono::seconds(10)).expired());
}

TEST(LoopbackTransportTest, MetersSenderAtSendAndReceiverAtReceive) {
  LoopbackTransport transport;
  Harness h;
  h.register_on(transport);

  const Frame frame = make_frame(0, 1, 0, 42);
  const std::uint64_t size = frame.bytes.size();
  ASSERT_TRUE(transport.send(frame).ok());
  EXPECT_EQ(h.nic0.bytes_transferred(), size);
  EXPECT_EQ(h.nic1.bytes_transferred(), 0u);  // not delivered yet

  std::optional<Frame> got = transport.receive(1, 0, Deadline::poll());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->bytes, frame.bytes);
  EXPECT_EQ(h.nic1.bytes_transferred(), size);

  const TransportStats stats = transport.meter().stats();
  EXPECT_EQ(stats.frames_sent, 1u);
  EXPECT_EQ(stats.bytes_sent, size);
  EXPECT_EQ(stats.frames_delivered, 1u);
  EXPECT_EQ(stats.bytes_delivered, size);
  EXPECT_EQ(stats.frames_by_type[static_cast<std::size_t>(
                MessageType::kFingerprintBatch)],
            1u);
}

TEST(LoopbackTransportTest, StreamsAreFifoAndIndependent) {
  LoopbackTransport transport;
  Harness h;
  h.register_on(transport);

  ASSERT_TRUE(transport.send(make_frame(0, 1, 0, 1)).ok());
  ASSERT_TRUE(transport.send(make_frame(0, 1, 1, 2)).ok());
  ASSERT_TRUE(transport.send(make_frame(1, 0, 0, 3)).ok());

  EXPECT_EQ(transport.receive(1, 0, Deadline::poll())->seq, 0u);
  EXPECT_EQ(transport.receive(1, 0, Deadline::poll())->seq, 1u);
  EXPECT_FALSE(transport.receive(1, 0, Deadline::poll()).has_value());
  EXPECT_EQ(transport.receive(0, 1, Deadline::poll())->seq, 0u);
}

TEST(LoopbackTransportTest, BlockingReceiveWakesOnConcurrentSend) {
  // The deadline's wall-clock side: a threaded harness (debar_clusterd's
  // loopback vessel) genuinely blocks until a sender delivers.
  LoopbackTransport transport;
  Harness h;
  h.register_on(transport);

  std::thread sender([&] { ASSERT_TRUE(transport.send(make_frame(0, 1, 0, 9)).ok()); });
  std::optional<Frame> got =
      transport.receive(1, 0, Deadline::after(std::chrono::seconds(10)));
  sender.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->seq, 0u);
}

TEST(LoopbackTransportTest, RejectsUnknownAndDuplicateEndpoints) {
  LoopbackTransport transport;
  Harness h;
  h.register_on(transport);
  EXPECT_FALSE(transport.register_endpoint(0, &h.nic0).ok());
  EXPECT_FALSE(transport.send(make_frame(0, 9, 0, 1)).ok());
  EXPECT_FALSE(transport.send(make_frame(9, 1, 0, 1)).ok());
}

TEST(EndpointTest, DiscardsDuplicateDeliveriesBySequence) {
  LoopbackTransport transport;
  Harness h;
  h.register_on(transport);
  Endpoint receiver(&transport, 1);

  const Frame frame = make_frame(0, 1, 7, 5);
  ASSERT_TRUE(transport.send(frame).ok());
  ASSERT_TRUE(transport.send(frame).ok());  // duplicated delivery

  EXPECT_TRUE(receiver.receive_from(0, Deadline::poll()).has_value());
  // The second copy crossed the wire but must not surface again.
  EXPECT_FALSE(receiver.receive_from(0, Deadline::poll()).has_value());
}

TEST(EndpointTest, TypedExpectRejectsWrongMessageType) {
  LoopbackTransport transport;
  Harness h;
  h.register_on(transport);
  Endpoint sender(&transport, 0);
  Endpoint receiver(&transport, 1);

  ASSERT_TRUE(sender.send(1, Message{FingerprintBatch{}}).ok());
  Result<IndexEntryBatch> wrong =
      receiver.expect<IndexEntryBatch>(0, Deadline::poll());
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.error().code, Errc::kCorrupt);

  Result<FingerprintBatch> nothing =
      receiver.expect<FingerprintBatch>(0, Deadline::poll());
  ASSERT_FALSE(nothing.ok());
  EXPECT_EQ(nothing.error().code, Errc::kUnavailable);
}

TEST(FaultyTransportTest, DropsAreMeteredAndRetriesRedeliver) {
  // Fates are keyed by attempt: with a moderate drop rate some first
  // attempts fail, but the endpoint's retry budget gets the message
  // through, and every attempt burns sender wire.
  NetFaultConfig cfg{.seed = 0x5EED, .drop_rate = 0.5};
  auto faulty = std::make_unique<FaultyTransport>(
      std::make_unique<LoopbackTransport>(), cfg);
  FaultyTransport& transport = *faulty;
  Harness h;
  h.register_on(transport);
  Endpoint sender(&transport, 0, {.max_attempts = 16});
  Endpoint receiver(&transport, 1);

  std::uint64_t delivered = 0;
  for (std::uint64_t i = 0; i < 50; ++i) {
    FingerprintBatch batch;
    batch.fps.push_back(Sha1::hash_counter(i));
    ASSERT_TRUE(sender.send(1, Message{batch}).ok());
    if (receiver.receive_from(0).has_value()) ++delivered;
  }
  EXPECT_EQ(delivered, 50u);
  // More wire than 50 clean transmissions: dropped attempts were metered.
  const std::uint64_t clean =
      50 * wire_bytes(Message{FingerprintBatch{
               .fps = {Sha1::hash_counter(0)}}});
  EXPECT_GT(h.nic0.bytes_transferred(), clean);
}

TEST(FaultyTransportTest, MeterChargesSerializedSizeOncePerTransmission) {
  // The single-meter regression (the decorator forwards to the base
  // transport's meter instead of keeping hooks of its own): under drop,
  // duplicate, AND delay faults, every counter must stay an exact
  // multiple of the one serialized frame size in play, the per-type
  // ledger must agree with the totals, and the NICs must agree with the
  // meter. A double-metering decorator fails every one of these.
  NetFaultConfig cfg{.seed = 0xACC7,
                     .drop_rate = 0.25,
                     .duplicate_rate = 0.25,
                     .delay_rate = 0.25,
                     .max_delay_polls = 2};
  FaultyTransport transport(std::make_unique<LoopbackTransport>(), cfg);
  Harness h;
  h.register_on(transport);
  Endpoint sender(&transport, 0, {.max_attempts = 16});
  Endpoint receiver(&transport, 1);

  const std::uint64_t size = wire_bytes(Message{FingerprintBatch{
      .fps = {Sha1::hash_counter(0)}}});
  constexpr std::uint64_t kMessages = 64;
  std::uint64_t received = 0;
  for (std::uint64_t i = 0; i < kMessages; ++i) {
    FingerprintBatch batch;
    batch.fps.push_back(Sha1::hash_counter(i));
    ASSERT_TRUE(sender.send(1, Message{batch}).ok());
    if (receiver.receive_from(0).has_value()) ++received;
  }
  EXPECT_EQ(received, kMessages);

  const TransportStats stats = transport.meter().stats();
  const auto type = static_cast<std::size_t>(MessageType::kFingerprintBatch);
  // Sent side: one charge of exactly `size` per transmission — clean,
  // dropped, duplicated or delayed alike.
  EXPECT_EQ(stats.bytes_sent, stats.frames_sent * size);
  EXPECT_EQ(stats.frames_by_type[type], stats.frames_sent);
  EXPECT_EQ(stats.bytes_by_type[type], stats.bytes_sent);
  EXPECT_GE(stats.frames_sent, kMessages);  // retries and duplicates add wire
  // Delivered side: every arrival charged once. A duplicated frame is
  // charged once at send but meters both copies at delivery, so the
  // delivered count may legitimately exceed the sent count.
  EXPECT_EQ(stats.bytes_delivered, stats.frames_delivered * size);
  EXPECT_GE(stats.frames_delivered, kMessages);
  // The NIC models and the meter are the same account.
  EXPECT_EQ(h.nic0.bytes_transferred(), stats.bytes_sent);
  EXPECT_EQ(h.nic1.bytes_transferred(), stats.bytes_delivered);
}

TEST(FaultyTransportTest, FatesAreDeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    NetFaultConfig cfg{.seed = seed,
                       .drop_rate = 0.3,
                       .duplicate_rate = 0.2,
                       .delay_rate = 0.2};
    FaultyTransport transport(std::make_unique<LoopbackTransport>(), cfg);
    Harness h;
    h.register_on(transport);
    std::vector<bool> outcomes;
    for (std::uint32_t seq = 0; seq < 64; ++seq) {
      outcomes.push_back(transport.send(make_frame(0, 1, seq, seq)).ok());
    }
    return outcomes;
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));  // different seed, different schedule
}

TEST(FaultyTransportTest, DelayedFramesArriveWithinMaxPolls) {
  NetFaultConfig cfg{.seed = 9, .delay_rate = 1.0, .max_delay_polls = 2};
  FaultyTransport transport(std::make_unique<LoopbackTransport>(), cfg);
  Harness h;
  h.register_on(transport);
  Endpoint sender(&transport, 0);
  Endpoint receiver(&transport, 1);

  ASSERT_TRUE(sender.send(1, Message{FingerprintBatch{}}).ok());
  // The raw transport withholds the frame for its drawn delay, but never
  // longer than max_delay_polls single-poll receives.
  int polls = 0;
  std::optional<Frame> frame;
  while (!frame.has_value() && polls < 5) {
    frame = transport.receive(1, 0, Deadline::poll());
    ++polls;
  }
  ASSERT_TRUE(frame.has_value());
  EXPECT_LE(polls, static_cast<int>(cfg.max_delay_polls));

  // The endpoint's receive budget absorbs the delay transparently (the
  // default receive_timeout converts to four virtual polls).
  ASSERT_TRUE(sender.send(1, Message{FingerprintBatch{}}).ok());
  EXPECT_TRUE(receiver.receive_from(0).has_value());
}

TEST(FaultyTransportTest, DuplicatedFramesAreDiscardedByReceivers) {
  NetFaultConfig cfg{.seed = 3, .duplicate_rate = 1.0};
  FaultyTransport transport(std::make_unique<LoopbackTransport>(), cfg);
  Harness h;
  h.register_on(transport);
  Endpoint sender(&transport, 0);
  Endpoint receiver(&transport, 1);

  ASSERT_TRUE(sender.send(1, Message{FingerprintBatch{}}).ok());
  EXPECT_TRUE(receiver.receive_from(0).has_value());
  EXPECT_FALSE(receiver.receive_from(0).has_value());
  // Both copies crossed the receiver's wire.
  const std::uint64_t one = wire_bytes(Message{FingerprintBatch{}});
  EXPECT_EQ(h.nic1.bytes_transferred(), 2 * one);
}

TEST(FaultyTransportTest, UnreachableEndpointRefusesWithoutWire) {
  FaultyTransport transport(std::make_unique<LoopbackTransport>(), {});
  Harness h;
  h.register_on(transport);
  Endpoint sender(&transport, 0);

  transport.set_unreachable(1, true);
  EXPECT_FALSE(transport.reachable(1));
  Status sent = sender.send(1, Message{FingerprintBatch{}});
  ASSERT_FALSE(sent.ok());
  EXPECT_EQ(sent.code(), Errc::kUnavailable);
  EXPECT_EQ(h.nic0.bytes_transferred(), 0u);  // refused, not dropped

  transport.set_unreachable(1, false);
  EXPECT_TRUE(transport.reachable(1));
  EXPECT_TRUE(sender.send(1, Message{FingerprintBatch{}}).ok());
}

TEST(FaultyTransportTest, GlobalSendLimitTripsUnreachableMode) {
  NetFaultConfig cfg{.unreachable_after_sends = 2};
  FaultyTransport transport(std::make_unique<LoopbackTransport>(), cfg);
  Harness h;
  h.register_on(transport);

  ASSERT_TRUE(transport.send(make_frame(0, 1, 0, 0)).ok());
  ASSERT_TRUE(transport.send(make_frame(1, 0, 0, 1)).ok());
  EXPECT_EQ(transport.accepted_sends(), 2u);
  EXPECT_FALSE(transport.send(make_frame(0, 1, 1, 2)).ok());
  EXPECT_FALSE(transport.reachable(0));
}

}  // namespace
}  // namespace debar::net
