// SocketTransport over real TCP, and the POSIX edges beneath it: short
// reads and writes, EINTR, peer resets mid-frame, truncated envelopes,
// and reconnect-after-reset. Everything runs against 127.0.0.1 with
// ephemeral ports, so the suite is hermetic; `ctest -L net-socket`.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>

#include "common/sha1.hpp"
#include "net/socket_io.hpp"
#include "net/socket_transport.hpp"

namespace debar::net {
namespace {

constexpr std::chrono::seconds kTestDeadline{10};

struct Harness {
  sim::SimClock clock0, clock1;
  sim::NicModel nic0{{.bytes_per_sec = 1.0e6}, &clock0};
  sim::NicModel nic1{{.bytes_per_sec = 1.0e6}, &clock1};
};

Frame make_frame(EndpointId from, EndpointId to, std::uint32_t seq,
                 std::uint64_t tag) {
  FingerprintBatch batch;
  batch.fps.push_back(Sha1::hash_counter(tag));
  return Frame{from, to, seq, encode(from, to, seq, Message{batch})};
}

// ---------------------------------------------------------------------------
// socket_io primitives.
// ---------------------------------------------------------------------------

struct Pipe {
  int fds[2] = {-1, -1};
  Pipe() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~Pipe() {
    for (int fd : fds) {
      if (fd >= 0) ::close(fd);
    }
  }
  void close_write() {
    ::close(fds[0]);
    fds[0] = -1;
  }
};

TEST(SocketIoTest, FullReadSurvivesShortReadsAndWrites) {
  // 4 MiB through a socket pair: far beyond any socket buffer, so both
  // sides necessarily see many short operations and must loop.
  Pipe pipe;
  std::vector<Byte> out(4u << 20);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<Byte>(i * 2654435761u >> 24);
  }
  std::thread writer([&] {
    EXPECT_TRUE(io::write_full(pipe.fds[0], out.data(), out.size(),
                               Deadline::after(kTestDeadline))
                    .ok());
  });
  std::vector<Byte> in(out.size());
  Status read = io::read_full(pipe.fds[1], in.data(), in.size(),
                              Deadline::after(kTestDeadline));
  writer.join();
  ASSERT_TRUE(read.ok()) << read.to_string();
  EXPECT_EQ(in, out);
}

TEST(SocketIoTest, ReadFullRetriesThroughEintr) {
  // A no-op handler installed WITHOUT SA_RESTART makes every signal
  // interrupt the blocking poll with EINTR; read_full must resume with
  // its remaining budget instead of failing.
  struct sigaction sa{};
  sa.sa_handler = [](int) {};
  sa.sa_flags = 0;  // deliberately not SA_RESTART
  struct sigaction old{};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  Pipe pipe;
  std::atomic<bool> reading{false};
  Byte buf[8] = {};
  std::thread reader([&] {
    reading.store(true);
    Status read = io::read_full(pipe.fds[1], buf, sizeof(buf),
                                Deadline::after(kTestDeadline));
    EXPECT_TRUE(read.ok()) << read.to_string();
  });
  while (!reading.load()) std::this_thread::yield();
  for (int i = 0; i < 20; ++i) {
    ::pthread_kill(reader.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const Byte payload[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE(io::write_full(pipe.fds[0], payload, sizeof(payload),
                             Deadline::after(kTestDeadline))
                  .ok());
  reader.join();
  EXPECT_EQ(std::memcmp(buf, payload, sizeof(payload)), 0);
  ::sigaction(SIGUSR1, &old, nullptr);
}

TEST(SocketIoTest, ReadFullReportsPeerCloseMidCount) {
  Pipe pipe;
  const Byte half[5] = {9, 9, 9, 9, 9};
  ASSERT_TRUE(io::write_full(pipe.fds[0], half, sizeof(half),
                             Deadline::after(kTestDeadline))
                  .ok());
  pipe.close_write();

  Byte buf[10];
  Status read = io::read_full(pipe.fds[1], buf, sizeof(buf),
                              Deadline::after(kTestDeadline));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.code(), Errc::kUnavailable);
}

TEST(SocketIoTest, ReadFullTimesOutOnSilentPeer) {
  Pipe pipe;
  Byte buf[4];
  Status read = io::read_full(pipe.fds[1], buf, sizeof(buf),
                              Deadline::after(std::chrono::milliseconds(30)));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.code(), Errc::kUnavailable);
}

// ---------------------------------------------------------------------------
// SocketTransport: two stacks, one per "process".
// ---------------------------------------------------------------------------

// Two transports in one test process model two cluster processes: each
// hosts one endpoint and learns the other's ephemeral address the same
// way debar_clusterd peers do (bind_address after registration).
struct TwoProcessRig {
  Harness h;
  SocketTransport a{AddressMap{}};
  SocketTransport b{AddressMap{}};

  TwoProcessRig() {
    EXPECT_TRUE(a.register_endpoint(0, &h.nic0).ok());
    EXPECT_TRUE(b.register_endpoint(1, &h.nic1).ok());
    const auto addr0 = a.address_of(0);
    const auto addr1 = b.address_of(1);
    EXPECT_TRUE(addr0.has_value());
    EXPECT_TRUE(addr1.has_value());
    a.bind_address(1, *addr1);
    b.bind_address(0, *addr0);
  }
};

TEST(SocketTransportTest, DeliversFramesByteIdenticalAcrossProcesses) {
  TwoProcessRig rig;
  const Frame frame = make_frame(0, 1, 3, 77);
  ASSERT_TRUE(rig.a.send(frame).ok());

  std::optional<Frame> got =
      rig.b.receive(1, 0, Deadline::after(kTestDeadline));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->from, 0u);
  EXPECT_EQ(got->to, 1u);
  EXPECT_EQ(got->seq, 3u);
  EXPECT_EQ(got->bytes, frame.bytes);  // the wire is the encoded frame

  // Send metered on the sender's stack, delivery on the receiver's.
  EXPECT_EQ(rig.a.meter().stats().bytes_sent, frame.bytes.size());
  EXPECT_EQ(rig.a.meter().stats().frames_delivered, 0u);
  EXPECT_EQ(rig.b.meter().stats().bytes_delivered, frame.bytes.size());
  EXPECT_EQ(rig.h.nic0.bytes_transferred(), frame.bytes.size());
  EXPECT_EQ(rig.h.nic1.bytes_transferred(), frame.bytes.size());
}

TEST(SocketTransportTest, ReceiveHonorsDeadlineOnSilence) {
  TwoProcessRig rig;
  const auto start = std::chrono::steady_clock::now();
  std::optional<Frame> got =
      rig.b.receive(1, 0, Deadline::after(std::chrono::milliseconds(50)));
  EXPECT_FALSE(got.has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(40));
}

TEST(SocketTransportTest, StreamsAreFifoPerSender) {
  TwoProcessRig rig;
  for (std::uint32_t seq = 0; seq < 16; ++seq) {
    ASSERT_TRUE(rig.a.send(make_frame(0, 1, seq, seq)).ok());
  }
  for (std::uint32_t seq = 0; seq < 16; ++seq) {
    std::optional<Frame> got =
        rig.b.receive(1, 0, Deadline::after(kTestDeadline));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->seq, seq);
  }
}

TEST(SocketTransportTest, ReconnectsAfterCachedConnectionDropped) {
  TwoProcessRig rig;
  ASSERT_TRUE(rig.a.send(make_frame(0, 1, 0, 1)).ok());
  ASSERT_TRUE(rig.b.receive(1, 0, Deadline::after(kTestDeadline)).has_value());

  // Sever the cached outbound connection; the next send must open a
  // fresh one transparently (reconnect-on-reset path).
  rig.a.drop_connections();
  ASSERT_TRUE(rig.a.send(make_frame(0, 1, 1, 2)).ok());
  std::optional<Frame> got =
      rig.b.receive(1, 0, Deadline::after(kTestDeadline));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->seq, 1u);
}

TEST(SocketTransportTest, ShortWriteTearsDownTheConnectionBeforeReuse) {
  // A frame that times out mid-write leaves a torn prefix on the TCP
  // stream, so the failed send must close its connection: a cached fd
  // that survived the failure would put every later frame behind the
  // torn bytes (or, as here, keep pointing at a dead address).
  Harness h;
  SocketOptions opts;
  opts.write_timeout = std::chrono::milliseconds(200);
  SocketTransport sender{AddressMap{}, opts};
  ASSERT_TRUE(sender.register_endpoint(0, &h.nic0).ok());

  // A listener that never accepts: the handshake completes in the kernel
  // backlog, nobody ever drains, so the buffers fill and a bulk frame
  // blocks mid-write until the timeout expires.
  std::uint16_t sink_port = 0;
  Result<int> sink = io::listen_tcp("127.0.0.1", 0, &sink_port);
  ASSERT_TRUE(sink.ok()) << sink.error().to_string();
  sender.bind_address(1, Address{Address::Kind::kTcp, "127.0.0.1", sink_port});

  // Sized past the worst-case kernel absorption (sender sndbuf plus a
  // fully autotuned receiver rcvbuf) so the write reliably blocks.
  FingerprintBatch bulk;
  bulk.fps.assign((48u << 20) / sizeof(Fingerprint), Sha1::hash_counter(1));
  Status sent = sender.send(Frame{0, 1, 0, encode(0, 1, 0, Message{bulk})});
  ASSERT_FALSE(sent.ok());
  EXPECT_EQ(sent.code(), Errc::kUnavailable);

  // Endpoint 1 now comes up for real at a different address. The next
  // send must open a fresh connection there — proof the partial write
  // tore down the cached one instead of leaving it to swallow frames.
  SocketTransport receiver{AddressMap{}};
  ASSERT_TRUE(receiver.register_endpoint(1, &h.nic1).ok());
  const auto addr = receiver.address_of(1);
  ASSERT_TRUE(addr.has_value());
  sender.bind_address(1, *addr);

  ASSERT_TRUE(sender.send(make_frame(0, 1, 1, 42)).ok());
  std::optional<Frame> got =
      receiver.receive(1, 0, Deadline::after(kTestDeadline));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->seq, 1u);
  ::close(sink.value());
}

TEST(SocketTransportTest, SendToUnmappedEndpointRefuses) {
  Harness h;
  SocketTransport t{AddressMap{}};
  ASSERT_TRUE(t.register_endpoint(0, &h.nic0).ok());
  Status sent = t.send(make_frame(0, 9, 0, 0));
  ASSERT_FALSE(sent.ok());
  EXPECT_EQ(sent.code(), Errc::kInvalidArgument);
}

// Connect a raw TCP client to the transport's listener for `id` and feed
// it `bytes`; optionally reset (SO_LINGER 0 → RST) instead of closing.
void raw_client(const SocketTransport& t, EndpointId id,
                const std::vector<Byte>& bytes, bool reset) {
  const auto addr = t.address_of(id);
  ASSERT_TRUE(addr.has_value());
  Result<int> fd =
      io::connect_tcp(addr->host, addr->port, Deadline::after(kTestDeadline));
  ASSERT_TRUE(fd.ok()) << fd.error().to_string();
  if (!bytes.empty()) {
    ASSERT_TRUE(io::write_full(fd.value(), bytes.data(), bytes.size(),
                               Deadline::after(kTestDeadline))
                    .ok());
  }
  if (reset) {
    struct linger lin{.l_onoff = 1, .l_linger = 0};
    ::setsockopt(fd.value(), SOL_SOCKET, SO_LINGER, &lin, sizeof(lin));
  }
  ::close(fd.value());
}

TEST(SocketTransportTest, SurvivesTruncatedEnvelope) {
  TwoProcessRig rig;
  // A client that dies eight bytes into the 17-byte envelope: the reader
  // must discard the connection without wedging the transport.
  const Frame frame = make_frame(0, 1, 0, 5);
  raw_client(rig.b, 1,
             std::vector<Byte>(frame.bytes.begin(), frame.bytes.begin() + 8),
             /*reset=*/false);

  ASSERT_TRUE(rig.a.send(make_frame(0, 1, 1, 6)).ok());
  std::optional<Frame> got =
      rig.b.receive(1, 0, Deadline::after(kTestDeadline));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->seq, 1u);
}

TEST(SocketTransportTest, SurvivesPeerResetMidFrame) {
  TwoProcessRig rig;
  // Full envelope promising a payload, then a hard RST mid-payload: the
  // torn frame is dropped with its connection, never delivered.
  Frame frame = make_frame(0, 1, 9, 8);
  frame.bytes.resize(frame.bytes.size() - 4);  // tear the payload
  raw_client(rig.b, 1, frame.bytes, /*reset=*/true);

  ASSERT_TRUE(rig.a.send(make_frame(0, 1, 1, 7)).ok());
  std::optional<Frame> got =
      rig.b.receive(1, 0, Deadline::after(kTestDeadline));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->seq, 1u);  // only the healthy frame arrives
  EXPECT_FALSE(rig.b.receive(1, 0, Deadline::poll()).has_value());
}

TEST(SocketTransportTest, DropsConnectionOnProtocolViolation) {
  TwoProcessRig rig;
  // Envelope with message type 0 (invalid) followed by a valid frame on
  // the SAME connection: the violation must cost the whole connection,
  // so the trailing valid frame is discarded with it.
  const Frame good = make_frame(0, 1, 2, 9);
  std::vector<Byte> wire(kEnvelopeSize, Byte{0});
  wire.insert(wire.end(), good.bytes.begin(), good.bytes.end());
  raw_client(rig.b, 1, wire, /*reset=*/false);

  EXPECT_FALSE(
      rig.b.receive(1, 0, Deadline::after(std::chrono::milliseconds(100)))
          .has_value());

  // A fresh, well-behaved connection still works.
  ASSERT_TRUE(rig.a.send(make_frame(0, 1, 3, 10)).ok());
  EXPECT_TRUE(rig.b.receive(1, 0, Deadline::after(kTestDeadline)).has_value());
}

TEST(SocketTransportTest, OversizedPayloadLengthDropsConnection) {
  Harness h;
  SocketOptions opts;
  opts.max_frame_bytes = 1024;
  AddressMap map;
  SocketTransport t{map, opts};
  ASSERT_TRUE(t.register_endpoint(1, &h.nic1).ok());

  Frame frame = make_frame(0, 1, 0, 11);
  frame.bytes[13] = Byte{0xFF};  // payload length little-endian → huge
  frame.bytes[14] = Byte{0xFF};
  frame.bytes[15] = Byte{0xFF};
  frame.bytes[16] = Byte{0x7F};
  raw_client(t, 1, frame.bytes, /*reset=*/false);
  EXPECT_FALSE(
      t.receive(1, 0, Deadline::after(std::chrono::milliseconds(100)))
          .has_value());
}

}  // namespace
}  // namespace debar::net
