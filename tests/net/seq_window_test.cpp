// Regression: receive-side duplicate suppression must stay bounded. The
// endpoint used to remember every sequence number it ever delivered per
// peer — a leak that grows by one entry per frame for the life of a
// debar_clusterd process. SeqWindow replaces the set with a sliding
// window: a contiguous delivered floor plus at most `capacity` tracked
// numbers above it.
#include <gtest/gtest.h>

#include <memory>

#include "net/endpoint.hpp"
#include "net/loopback_transport.hpp"

namespace debar::net {
namespace {

TEST(SeqWindowTest, InOrderTrafficTracksNothing) {
  SeqWindow window;
  for (std::uint32_t seq = 0; seq < 10000; ++seq) {
    EXPECT_TRUE(window.accept(seq));
    EXPECT_EQ(window.tracked(), 0u);
  }
  EXPECT_EQ(window.floor(), 10000u);
}

TEST(SeqWindowTest, DuplicatesAreRejectedAboveAndBelowTheFloor) {
  SeqWindow window;
  EXPECT_TRUE(window.accept(0));
  EXPECT_TRUE(window.accept(1));
  EXPECT_FALSE(window.accept(0));  // below the floor: implicitly seen
  EXPECT_FALSE(window.accept(1));
  EXPECT_TRUE(window.accept(5));   // out of order, tracked above the floor
  EXPECT_FALSE(window.accept(5));  // tracked: explicitly seen
  EXPECT_EQ(window.tracked(), 1u);
}

TEST(SeqWindowTest, GapFillAdvancesTheFloorAndFreesTracking) {
  SeqWindow window;
  EXPECT_TRUE(window.accept(1));
  EXPECT_TRUE(window.accept(2));
  EXPECT_TRUE(window.accept(3));
  EXPECT_EQ(window.tracked(), 3u);  // gap at 0 holds the floor down
  EXPECT_TRUE(window.accept(0));    // fill the gap...
  EXPECT_EQ(window.tracked(), 0u);  // ...and the whole run collapses
  EXPECT_EQ(window.floor(), 4u);
}

TEST(SeqWindowTest, PersistentGapSlidesTheWindowInsteadOfGrowing) {
  SeqWindow window(/*capacity=*/8);
  // Sequence 0 never arrives; deliveries 1..N would pin an unbounded set
  // in the old design. The window must cap memory at `capacity` and slide
  // its floor over the oldest tracked numbers.
  for (std::uint32_t seq = 1; seq <= 1000; ++seq) {
    EXPECT_TRUE(window.accept(seq));
    EXPECT_LE(window.tracked(), 8u);
  }
  EXPECT_GT(window.floor(), 0u);
  // The slid-over gap is forgiven: an ancient retransmission of 0 now
  // reads as a duplicate — the documented trade-off.
  EXPECT_FALSE(window.accept(0));
  // Fresh in-order traffic keeps flowing.
  EXPECT_TRUE(window.accept(1001));
}

TEST(SeqWindowTest, WindowSlideKeepsAdvancingOverContiguousRuns) {
  // Overflow while the tracked run is contiguous with the new floor: the
  // trim and the contiguous-advance must compose (trim first, then
  // advance), or the window stalls with tracked == capacity forever.
  SeqWindow window(/*capacity=*/1);
  EXPECT_TRUE(window.accept(5));
  EXPECT_EQ(window.tracked(), 1u);
  EXPECT_TRUE(window.accept(6));  // overflow: floor slides to 6, then eats 6
  EXPECT_EQ(window.tracked(), 0u);
  EXPECT_EQ(window.floor(), 7u);
}

TEST(SeqWindowTest, EndpointDedupStateStaysBoundedAcrossTraffic) {
  // The endpoint-level regression: after thousands of frames (the
  // loopback transport delivers in order), the per-peer window must have
  // no tracked entries — the leak this type replaced kept one entry per
  // frame.
  auto transport = std::make_unique<LoopbackTransport>();
  ASSERT_TRUE(transport->register_endpoint(0, nullptr).ok());
  ASSERT_TRUE(transport->register_endpoint(1, nullptr).ok());
  Endpoint sender(transport.get(), 0);
  Endpoint receiver(transport.get(), 1);

  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(sender.send(1, Control{}).ok());
    Result<Control> got = receiver.expect<Control>(0);
    ASSERT_TRUE(got.ok());
  }
  EXPECT_EQ(receiver.tracked_seqs(0), 0u);
}

TEST(SeqWindowTest, ResetPeerLetsAReusedAddressStartAFreshSequenceSpace) {
  // Elastic fleets reuse endpoint ids: a drained server's address may
  // later belong to a fresh process whose sequence numbers restart at 0.
  // Without Endpoint::reset_peer the old window's floor silently discards
  // every frame the newcomer sends — it looks like a dead peer.
  auto transport = std::make_unique<LoopbackTransport>();
  ASSERT_TRUE(transport->register_endpoint(0, nullptr).ok());
  ASSERT_TRUE(transport->register_endpoint(1, nullptr).ok());
  Endpoint receiver(transport.get(), 1);
  {
    Endpoint original(transport.get(), 0);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(original.send(1, Control{}).ok());
      ASSERT_TRUE(receiver.expect<Control>(0).ok());
    }
  }

  // The address's new tenant: a fresh Endpoint restarts at seq 0, deep
  // inside the receiver's delivered floor.
  Endpoint reborn(transport.get(), 0);
  ASSERT_TRUE(reborn.send(1, Control{}).ok());
  Result<Control> dropped = receiver.expect<Control>(
      0, Deadline::after(std::chrono::milliseconds(50)));
  EXPECT_FALSE(dropped.ok()) << "stale window must suppress the reused seq";

  receiver.reset_peer(0);
  ASSERT_TRUE(reborn.send(1, Control{}).ok());
  Result<Control> fresh = receiver.expect<Control>(0);
  EXPECT_TRUE(fresh.ok()) << "reset window must deliver the new tenant";
}

TEST(SeqWindowTest, ResetPeerDrainsStaleFramesFromTheOldIncarnation) {
  // The other half of the readmission bug, visible with the codec on:
  // the old incarnation died with a coalesced run still sitting in the
  // transport's (peer -> us) queue. reset_peer erases the SeqWindow, so
  // the stale jumbo frame (seq 0) would be accepted as the NEW
  // incarnation's first traffic — the receiver would consume a dead
  // process's messages as fresh. reset_peer must drain the queue before
  // forgetting the peer.
  auto transport = std::make_unique<LoopbackTransport>();
  ASSERT_TRUE(transport->register_endpoint(0, nullptr).ok());
  ASSERT_TRUE(transport->register_endpoint(1, nullptr).ok());
  Endpoint receiver(transport.get(), 1, RetryPolicy{},
                    WireCodecConfig::enabled());
  {
    Endpoint original(transport.get(), 0, RetryPolicy{},
                      WireCodecConfig::enabled());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          original.send_buffered(1, Control{Control::kMaintenanceAck, 111})
              .ok());
    }
    ASSERT_TRUE(original.flush(1).ok());
  }  // dies with its run undelivered

  receiver.reset_peer(0);

  Endpoint reborn(transport.get(), 0, RetryPolicy{},
                  WireCodecConfig::enabled());
  ASSERT_TRUE(reborn.send(1, Control{Control::kMaintenanceAck, 222}).ok());
  Result<Control> first = receiver.expect<Control>(0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().arg, 222u)
      << "stale pre-drain traffic delivered as the new incarnation's";
  // Nothing further: the dead incarnation's run is gone for good.
  Result<Control> residue = receiver.expect<Control>(
      0, Deadline::after(std::chrono::milliseconds(50)));
  EXPECT_FALSE(residue.ok());
}

}  // namespace
}  // namespace debar::net
