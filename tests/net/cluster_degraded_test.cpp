// Degraded operation, the abort side: a cluster round that loses BOTH
// copies of some index partition must fail cleanly at the phase barrier
// — no partial index or pending-set mutation, drained undetermined
// fingerprints restored, entries deferred — and the director must learn
// which servers to skip. Restores fail over to the surviving copy and
// fail only when a partition has no reachable copy left. (The degraded-
// but-completing side — a single dark server, failover, catch-up — is
// tests/net/cluster_failover_test.cpp.)
#include <gtest/gtest.h>

#include <memory>

#include "common/sha1.hpp"
#include "core/cluster.hpp"
#include "net/faulty_transport.hpp"
#include "net/transport_factory.hpp"

namespace debar::core {
namespace {

Fingerprint fp(std::uint64_t i) { return Sha1::hash_counter(i); }

struct FaultyCluster {
  net::FaultyTransport* faulty = nullptr;  // owned by the cluster's stack
  std::unique_ptr<Cluster> cluster;

  explicit FaultyCluster(net::NetFaultConfig faults, unsigned w = 1) {
    ClusterConfig cfg;
    cfg.routing_bits = w;
    cfg.repository_nodes = 2;
    cfg.server_config.index_params = {.prefix_bits = 6,
                                      .blocks_per_bucket = 2};
    cfg.server_config.filter_params = {.hash_bits = 8, .capacity = 100000};
    cfg.server_config.chunk_store.cache_params = {.hash_bits = 4,
                                                  .capacity = 1000000};
    cfg.server_config.chunk_store.io_buckets = 8;
    cfg.server_config.chunk_store.siu_threshold = 1;
    auto factory = std::make_shared<net::FaultyTransportFactory>(faults);
    cfg.transport_factory = factory;
    cluster = std::make_unique<Cluster>(std::move(cfg));
    faulty = factory->last();
  }
};

void backup_stream(Cluster& cluster, std::size_t server, std::uint64_t job,
                   std::uint64_t first, std::uint64_t count) {
  FileStore& fs = cluster.server(server).file_store();
  fs.begin_job(job);
  fs.begin_file({.path = "s", .size = count * 512, .mtime = 0, .mode = 0644});
  for (std::uint64_t i = first; i < first + count; ++i) {
    const Fingerprint f = fp(i);
    if (fs.offer_fingerprint(f, 512)) {
      const auto payload = BackupEngine::synthetic_payload(f, 512);
      ASSERT_TRUE(
          fs.receive_chunk(f, ByteSpan(payload.data(), payload.size())).ok());
    }
  }
  fs.end_file();
  ASSERT_TRUE(fs.end_job().ok());
}

std::vector<Byte> flatten(const Dataset& dataset) {
  std::vector<Byte> out;
  for (const FileData& file : dataset.files) {
    out.insert(out.end(), file.content.begin(), file.content.end());
  }
  return out;
}

TEST(ClusterDegradedTest, BothReplicasDarkAbortsPhaseAWithoutMutation) {
  // A single dark server now degrades a round (its partition fails over
  // to the backup copy — tests/net/cluster_failover_test.cpp). The
  // all-or-nothing abort remains when BOTH copies of a partition are
  // unreachable: at w=2, killing servers 1 and 2 takes out part 1's
  // primary owner and its backup holder.
  FaultyCluster rig({}, /*w=*/2);
  Cluster& cluster = *rig.cluster;
  const std::uint64_t job = cluster.director().define_job("c", "d");

  // A healthy first round establishes version 1 and a populated index.
  backup_stream(cluster, 0, job, 0, 60);
  ASSERT_TRUE(cluster.run_dedup2(/*force_siu=*/true).ok());
  const std::vector<Byte> version1 =
      flatten(cluster.restore(job, 1, /*via=*/0).value());

  // New data is waiting when servers 1 and 2 die.
  backup_stream(cluster, 0, job, 200, 60);
  const std::uint64_t undetermined_before =
      cluster.server(0).file_store().undetermined_count();
  ASSERT_GT(undetermined_before, 0u);
  std::vector<std::uint64_t> pending_before;
  for (std::size_t k = 0; k < cluster.server_count(); ++k) {
    pending_before.push_back(cluster.server(k).chunk_store().pending_count());
  }

  rig.faulty->set_unreachable(1, true);
  rig.faulty->set_unreachable(2, true);
  Result<ClusterDedup2Result> degraded = cluster.run_dedup2(true);
  ASSERT_FALSE(degraded.ok());
  EXPECT_EQ(degraded.error().code, Errc::kUnavailable);
  EXPECT_NE(degraded.error().message.find("phase A"), std::string::npos)
      << degraded.error().message;

  // The director knows who to skip; the healthy servers are not blamed.
  EXPECT_TRUE(cluster.director().is_unreachable(1));
  EXPECT_TRUE(cluster.director().is_unreachable(2));
  EXPECT_FALSE(cluster.director().is_unreachable(0));
  EXPECT_FALSE(cluster.director().is_unreachable(3));

  // No index or pending mutation anywhere, and the drained undetermined
  // fingerprints are back for the next round.
  EXPECT_EQ(cluster.server(0).file_store().undetermined_count(),
            undetermined_before);
  for (std::size_t k = 0; k < cluster.server_count(); ++k) {
    EXPECT_EQ(cluster.server(k).chunk_store().pending_count(),
              pending_before[k]);
  }
  for (std::uint64_t i = 200; i < 260; ++i) {
    const std::size_t owner = cluster.owner_of(fp(i));
    EXPECT_FALSE(cluster.server(owner).chunk_store().locate(fp(i)).ok());
  }

  // Recovery: the peers come back, the round-start probe re-admits them,
  // the next round resolves everything the aborted round put back, and
  // version 1 is still byte-identical.
  rig.faulty->set_unreachable(1, false);
  rig.faulty->set_unreachable(2, false);
  Result<ClusterDedup2Result> recovered = cluster.run_dedup2(true);
  ASSERT_TRUE(recovered.ok()) << recovered.error().to_string();
  EXPECT_EQ(recovered.value().undetermined, undetermined_before);
  EXPECT_EQ(recovered.value().new_chunks, 60u);
  EXPECT_FALSE(recovered.value().degraded());
  EXPECT_FALSE(cluster.director().is_unreachable(1));
  EXPECT_FALSE(cluster.director().is_unreachable(2));

  Result<Dataset> again = cluster.restore(job, 1, /*via=*/0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(flatten(again.value()), version1);
}

TEST(ClusterDegradedTest, UnreachablePeerAbortsPhaseEAndDefersEntries) {
  // Let phases A and C complete and cut the network at the first phase-E
  // send: with 2 servers, each of A and C moves exactly 2 frames (one per
  // direction), so every phase-E send (two per server now that both
  // copies are written) is refused. The global budget makes BOTH servers
  // read unreachable, so every partition loses both copies and the round
  // still aborts all-or-nothing with its entries deferred.
  net::NetFaultConfig faults;
  faults.unreachable_after_sends = 4;
  FaultyCluster rig(faults);
  Cluster& cluster = *rig.cluster;
  const std::uint64_t job = cluster.director().define_job("c", "d");

  backup_stream(cluster, 0, job, 0, 60);
  Result<ClusterDedup2Result> degraded = cluster.run_dedup2(true);
  ASSERT_FALSE(degraded.ok());
  EXPECT_EQ(degraded.error().code, Errc::kUnavailable);
  EXPECT_NE(degraded.error().message.find("phase E"), std::string::npos)
      << degraded.error().message;

  // Chunk storing (phase D) already ran — the undetermined set stays
  // consumed — but no owner registered anything: the index and pending
  // sets mutate all-or-nothing per round.
  EXPECT_EQ(cluster.server(0).file_store().undetermined_count(), 0u);
  for (std::size_t k = 0; k < cluster.server_count(); ++k) {
    EXPECT_EQ(cluster.server(k).chunk_store().pending_count(), 0u);
  }
  for (std::uint64_t i = 0; i < 60; ++i) {
    const std::size_t owner = cluster.owner_of(fp(i));
    EXPECT_FALSE(cluster.server(owner).chunk_store().locate(fp(i)).ok());
  }
}

TEST(ClusterDegradedTest, RestoreFailsOverToTheLocalReplicaCopy) {
  FaultyCluster rig({});
  Cluster& cluster = *rig.cluster;
  const std::uint64_t job = cluster.director().define_job("c", "d");

  backup_stream(cluster, 0, job, 0, 60);
  ASSERT_TRUE(cluster.run_dedup2(true).ok());

  // Pick one fingerprint per owner.
  Fingerprint own_fp, cross_fp;
  bool have_own = false, have_cross = false;
  for (std::uint64_t i = 0; i < 60 && !(have_own && have_cross); ++i) {
    if (cluster.owner_of(fp(i)) == 0 && !have_own) {
      own_fp = fp(i);
      have_own = true;
    } else if (cluster.owner_of(fp(i)) == 1 && !have_cross) {
      cross_fp = fp(i);
      have_cross = true;
    }
  }
  ASSERT_TRUE(have_own && have_cross);

  rig.faulty->set_unreachable(1, true);

  // Even with server 0's LPC cold, a chunk owned by the dead server
  // locates on server 0's replica of part 1 — the locate fails over to
  // the surviving copy instead of failing the restore (DESIGN.md §5g).
  Result<std::vector<Byte>> cold = cluster.read_chunk(0, cross_fp);
  ASSERT_TRUE(cold.ok()) << cold.error().to_string();
  EXPECT_EQ(cold.value(), BackupEngine::synthetic_payload(cross_fp, 512));
  EXPECT_TRUE(cluster.director().is_unreachable(1));

  // Chunks server 0 owns locate locally and still restore.
  Result<std::vector<Byte>> own = cluster.read_chunk(0, own_fp);
  ASSERT_TRUE(own.ok()) << own.error().to_string();
  EXPECT_EQ(own.value(), BackupEngine::synthetic_payload(own_fp, 512));
}

TEST(ClusterDegradedTest, RestoreFailsOnlyWhenBothCopyHoldersAreDark) {
  // At w=2 a part-1 chunk has copies on servers 1 (primary) and 2
  // (backup). With both dark and the serving server's LPC cold, the
  // locate exhausts every copy and the read fails; chunks whose partition
  // kept a live copy still restore.
  FaultyCluster rig({}, /*w=*/2);
  Cluster& cluster = *rig.cluster;
  const std::uint64_t job = cluster.director().define_job("c", "d");

  backup_stream(cluster, 0, job, 0, 60);
  ASSERT_TRUE(cluster.run_dedup2(true).ok());

  Fingerprint part1_fp, part0_fp;
  bool have1 = false, have0 = false;
  for (std::uint64_t i = 0; i < 60 && !(have1 && have0); ++i) {
    if (cluster.owner_of(fp(i)) == 1 && !have1) {
      part1_fp = fp(i);
      have1 = true;
    } else if (cluster.owner_of(fp(i)) == 0 && !have0) {
      part0_fp = fp(i);
      have0 = true;
    }
  }
  ASSERT_TRUE(have1 && have0);

  rig.faulty->set_unreachable(1, true);
  rig.faulty->set_unreachable(2, true);

  Result<std::vector<Byte>> lost = cluster.read_chunk(0, part1_fp);
  ASSERT_FALSE(lost.ok());
  EXPECT_EQ(lost.error().code, Errc::kUnavailable);
  EXPECT_TRUE(cluster.director().is_unreachable(1));
  EXPECT_TRUE(cluster.director().is_unreachable(2));

  // Part 0 keeps both of its copies (servers 0 and 1... server 1 is dark,
  // but the primary on server 0 answers first) and still restores.
  Result<std::vector<Byte>> kept = cluster.read_chunk(0, part0_fp);
  ASSERT_TRUE(kept.ok()) << kept.error().to_string();
  EXPECT_EQ(kept.value(), BackupEngine::synthetic_payload(part0_fp, 512));
}

}  // namespace
}  // namespace debar::core
