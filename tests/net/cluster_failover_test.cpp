// Degraded operation, the completing side (DESIGN.md §5g): with every
// index partition replicated on server (p + 1) mod n, a single dark
// server degrades a dedup-2 round instead of aborting it — its partition
// fails over to the backup copy — and the SURVIVING copies' disk images
// stay byte-identical to a fault-free run of the same workload. When the
// dark server returns, the round-start probe re-admits it and the
// surviving holder re-ships the entries it missed (catch-up resync), so
// restores work through the rejoined server even with its peer dark.
// `ctest -L net-failover` runs this suite plus the abort-side cases in
// cluster_degraded_test.cpp.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/sha1.hpp"
#include "core/cluster.hpp"
#include "net/faulty_transport.hpp"
#include "net/transport_factory.hpp"
#include "storage/block_device.hpp"

namespace debar::core {
namespace {

Fingerprint fp(std::uint64_t i) { return Sha1::hash_counter(i); }

/// A cluster over a FaultyTransport whose index devices (primary and
/// replica, in factory-call order: primaries 0..n-1, then replicas
/// 0..n-1) stay inspectable for byte-level comparison.
struct FailoverRig {
  net::FaultyTransport* faulty = nullptr;  // owned by the cluster's stack
  std::shared_ptr<std::vector<storage::MemBlockDevice*>> devices =
      std::make_shared<std::vector<storage::MemBlockDevice*>>();
  std::unique_ptr<Cluster> cluster;

  explicit FailoverRig(unsigned w) {
    ClusterConfig cfg;
    cfg.routing_bits = w;
    cfg.repository_nodes = 2;
    cfg.server_config.index_params = {.prefix_bits = 6,
                                      .blocks_per_bucket = 2};
    cfg.server_config.filter_params = {.hash_bits = 8, .capacity = 100000};
    cfg.server_config.chunk_store.cache_params = {.hash_bits = 4,
                                                  .capacity = 1000000};
    cfg.server_config.chunk_store.io_buckets = 8;
    cfg.server_config.chunk_store.siu_threshold = 1;
    cfg.server_config.index_device_factory = [captured = devices] {
      auto device = std::make_unique<storage::MemBlockDevice>();
      captured->push_back(device.get());
      return device;
    };
    auto factory = std::make_shared<net::FaultyTransportFactory>(
        net::NetFaultConfig{});
    cfg.transport_factory = factory;
    cluster = std::make_unique<Cluster>(std::move(cfg));
    faulty = factory->last();
  }

  [[nodiscard]] std::vector<Byte> primary_image(std::size_t k) const {
    const ByteSpan bytes = (*devices)[k]->contents();
    return {bytes.begin(), bytes.end()};
  }
  [[nodiscard]] std::vector<Byte> replica_image(std::size_t k) const {
    const ByteSpan bytes =
        (*devices)[cluster->server_count() + k]->contents();
    return {bytes.begin(), bytes.end()};
  }
};

void backup_stream(Cluster& cluster, std::size_t server, std::uint64_t job,
                   std::uint64_t first, std::uint64_t count) {
  FileStore& fs = cluster.server(server).file_store();
  fs.begin_job(job);
  fs.begin_file({.path = "s", .size = count * 512, .mtime = 0, .mode = 0644});
  for (std::uint64_t i = first; i < first + count; ++i) {
    const Fingerprint f = fp(i);
    if (fs.offer_fingerprint(f, 512)) {
      const auto payload = BackupEngine::synthetic_payload(f, 512);
      ASSERT_TRUE(
          fs.receive_chunk(f, ByteSpan(payload.data(), payload.size())).ok());
    }
  }
  fs.end_file();
  ASSERT_TRUE(fs.end_job().ok());
}

std::vector<Byte> flatten(const Dataset& dataset) {
  std::vector<Byte> out;
  for (const FileData& file : dataset.files) {
    out.insert(out.end(), file.content.begin(), file.content.end());
  }
  return out;
}

/// Every stored container's serialized image, keyed by id order — the
/// repository-side half of the byte-identity bar.
std::vector<std::vector<Byte>> container_images(Cluster& cluster) {
  std::vector<std::vector<Byte>> images;
  for (const ContainerId id : cluster.repository().container_ids()) {
    Result<storage::Container> container = cluster.repository().read(id);
    EXPECT_TRUE(container.ok());
    if (container.ok()) images.push_back(container.value().serialize());
  }
  return images;
}

TEST(ClusterFailoverTest, SingleDarkServerDegradesWithByteIdenticalState) {
  // Twin rigs, same workload: in one of them server 1 is dark for the
  // whole round. The degraded round must complete via server 0's replica
  // of part 1 and leave server 0's primary AND replica index images —
  // and the chunk repository — byte-identical to the fault-free twin.
  FailoverRig clean(/*w=*/1);
  FailoverRig faulty(/*w=*/1);

  const std::uint64_t clean_job = clean.cluster->director().define_job("c",
                                                                       "d");
  const std::uint64_t dark_job = faulty.cluster->director().define_job("c",
                                                                       "d");
  backup_stream(*clean.cluster, 0, clean_job, 0, 60);
  backup_stream(*faulty.cluster, 0, dark_job, 0, 60);

  faulty.faulty->set_unreachable(1, true);

  Result<ClusterDedup2Result> clean_round = clean.cluster->run_dedup2(true);
  ASSERT_TRUE(clean_round.ok());
  EXPECT_FALSE(clean_round.value().degraded());

  Result<ClusterDedup2Result> dark_round = faulty.cluster->run_dedup2(true);
  ASSERT_TRUE(dark_round.ok()) << dark_round.error().to_string();
  EXPECT_TRUE(dark_round.value().degraded());
  EXPECT_GE(dark_round.value().failovers, 1u);
  EXPECT_EQ(dark_round.value().skipped_servers, std::vector<std::size_t>{1});
  EXPECT_TRUE(faulty.cluster->director().is_unreachable(1));
  EXPECT_FALSE(faulty.cluster->director().is_unreachable(0));

  // Same round accounting either way: the backup copy answers PSIL with
  // the same verdicts the primary would have.
  EXPECT_EQ(dark_round.value().undetermined, clean_round.value().undetermined);
  EXPECT_EQ(dark_round.value().duplicates, clean_round.value().duplicates);
  EXPECT_EQ(dark_round.value().new_chunks, clean_round.value().new_chunks);

  // The correctness bar: surviving copies byte-identical across fault
  // schedules, repository included.
  EXPECT_EQ(faulty.primary_image(0), clean.primary_image(0));
  EXPECT_EQ(faulty.replica_image(0), clean.replica_image(0));
  EXPECT_EQ(container_images(*faulty.cluster),
            container_images(*clean.cluster));

  // And the backed-up version restores through the surviving server.
  const std::vector<Byte> clean_bytes =
      flatten(clean.cluster->restore(clean_job, 1, /*via=*/0).value());
  Result<Dataset> degraded_restore =
      faulty.cluster->restore(dark_job, 1, /*via=*/0);
  ASSERT_TRUE(degraded_restore.ok());
  EXPECT_EQ(flatten(degraded_restore.value()), clean_bytes);
}

TEST(ClusterFailoverTest, RejoinedServerCatchesUpAndServesRestores) {
  FailoverRig rig(/*w=*/1);
  Cluster& cluster = *rig.cluster;
  const std::uint64_t job = cluster.director().define_job("c", "d");

  // Round 1: healthy. Round 2: server 1 dark — the round degrades, and
  // both copies server 1 hosts (part 1 primary, part 0 replica) miss the
  // round's entries.
  backup_stream(cluster, 0, job, 0, 60);
  ASSERT_TRUE(cluster.run_dedup2(true).ok());

  rig.faulty->set_unreachable(1, true);
  backup_stream(cluster, 0, job, 100, 60);
  Result<ClusterDedup2Result> degraded = cluster.run_dedup2(true);
  ASSERT_TRUE(degraded.ok()) << degraded.error().to_string();
  EXPECT_TRUE(degraded.value().degraded());
  EXPECT_TRUE(cluster.director().is_unreachable(1));

  // Heal. The next round's boundary probe re-admits server 1 and the
  // surviving copies re-ship everything it missed before the exchange.
  rig.faulty->set_unreachable(1, false);
  Result<ClusterDedup2Result> healed = cluster.run_dedup2(true);
  ASSERT_TRUE(healed.ok()) << healed.error().to_string();
  EXPECT_FALSE(healed.value().degraded());
  EXPECT_FALSE(cluster.director().is_unreachable(1));

  // Now dark the OTHER server: every chunk of version 2 must still
  // restore through the rejoined server 1 — part-1 fingerprints off its
  // caught-up primary, part-0 fingerprints off its caught-up replica.
  rig.faulty->set_unreachable(0, true);
  Result<Dataset> restored = cluster.restore(job, 2, /*via=*/1);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  std::vector<Byte> expected;
  for (std::uint64_t i = 100; i < 160; ++i) {
    const auto payload = BackupEngine::synthetic_payload(fp(i), 512);
    expected.insert(expected.end(), payload.begin(), payload.end());
  }
  EXPECT_EQ(flatten(restored.value()), expected);
}

TEST(ClusterFailoverTest, WireLocateFailsOverToTheBackupHolder) {
  // At w=2 the serving server hosts neither copy of a part-1 chunk; with
  // the primary owner dark the locate round trip must fail over to the
  // backup holder (server 2) over the wire.
  FailoverRig rig(/*w=*/2);
  Cluster& cluster = *rig.cluster;
  const std::uint64_t job = cluster.director().define_job("c", "d");

  backup_stream(cluster, 0, job, 0, 60);
  ASSERT_TRUE(cluster.run_dedup2(true).ok());

  Fingerprint part1_fp;
  bool found = false;
  for (std::uint64_t i = 0; i < 60 && !found; ++i) {
    if (cluster.owner_of(fp(i)) == 1) {
      part1_fp = fp(i);
      found = true;
    }
  }
  ASSERT_TRUE(found);

  rig.faulty->set_unreachable(1, true);
  Result<std::vector<Byte>> read = cluster.read_chunk(0, part1_fp);
  ASSERT_TRUE(read.ok()) << read.error().to_string();
  EXPECT_EQ(read.value(), BackupEngine::synthetic_payload(part1_fp, 512));
  EXPECT_TRUE(cluster.director().is_unreachable(1));
}

}  // namespace
}  // namespace debar::core
