// Seeded randomized differential for the wire codec (`ctest -L
// net-codec`): the same workload must leave byte-identical restored data
// and index-device images whether the codec is on or off, over loopback
// and over real TCP sockets. The raw (paper-model) byte ledger must not
// move at all — the codec is a wire representation, not a protocol
// change — while the metered wire bytes must shrink when it is on.
//
// A second battery drives the debar_clusterd example binary (path
// injected by CMake as DEBAR_CLUSTERD_PATH) with --codec=on|off across
// OS processes and diffs the resulting disk trees.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/sha1.hpp"
#include "core/cluster.hpp"
#include "net/transport_factory.hpp"
#include "storage/block_device.hpp"

namespace debar::core {
namespace {

enum class Wire { kLoopback, kSocket };

struct Outcome {
  std::vector<std::uint64_t> round_counts;   // per round: dup/new/bytes
  std::vector<Byte> restored;                // every restored file byte
  std::vector<std::vector<Byte>> index_images;  // factory-call order
  net::TransportStats stats{};

};

/// Semantic state only — stats are compared field by field by callers.
void expect_same_state(const Outcome& a, const Outcome& b) {
  EXPECT_EQ(a.round_counts, b.round_counts);
  EXPECT_EQ(a.restored, b.restored);
  ASSERT_EQ(a.index_images.size(), b.index_images.size());
  for (std::size_t i = 0; i < a.index_images.size(); ++i) {
    EXPECT_EQ(a.index_images[i], b.index_images[i]) << "index image " << i;
  }
}

/// Two backup generations of seeded-random fingerprints; generation two
/// re-offers roughly half the pool as duplicates. Same seed =>
/// bit-identical workload on every leg. All ingest flows through server
/// 0: phase D stores every origin's new chunks into the shared
/// repository concurrently, so multi-origin ingest would make container
/// IDs (and with them the index images) depend on thread interleaving —
/// single-origin keeps the whole end state byte-deterministic while the
/// fingerprints still fan out to every server by routing prefix.
struct Workload {
  // streams[gen] = fingerprints offered through server 0, in order.
  std::vector<std::vector<Fingerprint>> streams;

  explicit Workload(std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<Fingerprint> pool;
    streams.assign(2, {});
    for (int gen = 0; gen < 2; ++gen) {
      for (int i = 0; i < 120; ++i) {
        Fingerprint f;
        if (gen == 1 && rng.chance(0.5)) {
          f = pool[rng.below(pool.size())];  // cross-generation duplicate
        } else {
          f = Sha1::hash_counter(rng());
          pool.push_back(f);
        }
        streams[gen].push_back(f);
      }
    }
  }
};

Outcome run_workload(unsigned w, Wire wire, net::WireCodecConfig codec,
                     std::uint64_t seed) {
  auto devices = std::make_shared<std::vector<storage::MemBlockDevice*>>();

  ClusterConfig cfg;
  cfg.routing_bits = w;
  cfg.repository_nodes = 2;
  cfg.server_config.index_params = {.prefix_bits = 6, .blocks_per_bucket = 2};
  cfg.server_config.filter_params = {.hash_bits = 8, .capacity = 100000};
  cfg.server_config.chunk_store.cache_params = {.hash_bits = 4,
                                                .capacity = 1000000};
  cfg.server_config.chunk_store.io_buckets = 8;
  cfg.server_config.chunk_store.siu_threshold = 1;
  cfg.server_config.index_device_factory = [captured = devices] {
    auto device = std::make_unique<storage::MemBlockDevice>();
    captured->push_back(device.get());
    return device;
  };
  cfg.wire_codec = codec;
  if (wire == Wire::kSocket) {
    cfg.transport_factory =
        std::make_shared<net::SocketTransportFactory>(net::AddressMap{});
  }

  Outcome out;
  Cluster cluster(std::move(cfg));
  const Workload workload(seed);

  const std::uint64_t job = cluster.director().define_job("c", "d");
  for (int gen = 0; gen < 2; ++gen) {
    const std::vector<Fingerprint>& fps = workload.streams[gen];
    FileStore& fs = cluster.server(0).file_store();
    fs.begin_job(job);
    fs.begin_file(
        {.path = "s", .size = fps.size() * 512, .mtime = 0, .mode = 0644});
    for (const Fingerprint& f : fps) {
      if (fs.offer_fingerprint(f, 512)) {
        const auto payload = BackupEngine::synthetic_payload(f, 512);
        EXPECT_TRUE(
            fs.receive_chunk(f, ByteSpan(payload.data(), payload.size()))
                .ok());
      }
    }
    fs.end_file();
    EXPECT_TRUE(fs.end_job().ok());
    const Result<ClusterDedup2Result> round =
        cluster.run_dedup2(/*force_siu=*/true);
    EXPECT_TRUE(round.ok()) << round.error().to_string();
    if (round.ok()) {
      out.round_counts.insert(
          out.round_counts.end(),
          {round.value().undetermined, round.value().duplicates,
           round.value().new_chunks, round.value().new_bytes});
    }
  }

  // Restoring both versions sends ChunkData (and locate traffic to the
  // index owners elsewhere) across the metered wire.
  for (std::uint32_t version = 1; version <= 2; ++version) {
    const Result<Dataset> restored = cluster.restore(job, version, /*via=*/0);
    EXPECT_TRUE(restored.ok()) << restored.error().to_string();
    if (!restored.ok()) continue;
    for (const FileData& file : restored.value().files) {
      out.restored.insert(out.restored.end(), file.content.begin(),
                          file.content.end());
    }
  }

  for (const storage::MemBlockDevice* device : *devices) {
    const ByteSpan bytes = device->contents();
    out.index_images.emplace_back(bytes.begin(), bytes.end());
  }
  out.stats = cluster.transport_stats();
  return out;
}

class CodecDifferentialTest : public testing::TestWithParam<unsigned> {};

/// The core differential: codec on vs off over the same wire.
void expect_codec_invariant(unsigned w, Wire wire) {
  const std::uint64_t kSeed = 0xC0DEC + w;
  const Outcome off = run_workload(w, wire, net::WireCodecConfig{}, kSeed);
  const Outcome on =
      run_workload(w, wire, net::WireCodecConfig::enabled(), kSeed);

  // Byte-identical semantics: restores, round ledgers, index images
  // (primaries and replicas alike, in factory-call order).
  expect_same_state(on, off);
  ASSERT_FALSE(on.restored.empty());
  ASSERT_FALSE(on.index_images.empty());

  // The raw (paper-model) ledger is codec-invariant: same messages, same
  // v1-serialized cost, per type.
  EXPECT_EQ(on.stats.messages_sent, off.stats.messages_sent);
  EXPECT_EQ(on.stats.raw_bytes_sent, off.stats.raw_bytes_sent);
  EXPECT_EQ(on.stats.raw_bytes_by_type, off.stats.raw_bytes_by_type);
  EXPECT_EQ(on.stats.messages_by_type, off.stats.messages_by_type);

  // The actual wire shrinks: fewer frames (coalescing) and fewer bytes
  // (compression). Synthetic chunk payloads make ChunkData the bulk, so
  // the shrink is well past measurement noise.
  EXPECT_LT(on.stats.frames_sent, off.stats.frames_sent);
  EXPECT_LT(on.stats.bytes_sent, off.stats.bytes_sent);
  EXPECT_LE(on.stats.bytes_sent, off.stats.bytes_sent * 9 / 10)
      << "codec saved less than 10% wire bytes";

  // Codec off must be exactly the v1 wire: the raw ledger (v1 envelope +
  // payload per message) and the metered wire agree to the byte.
  EXPECT_EQ(off.stats.raw_bytes_sent, off.stats.bytes_sent);
  EXPECT_EQ(off.stats.messages_sent, off.stats.frames_sent);
}

TEST_P(CodecDifferentialTest, LoopbackStateIsCodecInvariant) {
  expect_codec_invariant(GetParam(), Wire::kLoopback);
}

TEST_P(CodecDifferentialTest, SocketStateIsCodecInvariant) {
  expect_codec_invariant(GetParam(), Wire::kSocket);
}

TEST_P(CodecDifferentialTest, SocketMatchesLoopbackWithCodecOn) {
  const unsigned w = GetParam();
  const std::uint64_t kSeed = 0xC0DEC + w;
  const Outcome loop =
      run_workload(w, Wire::kLoopback, net::WireCodecConfig::enabled(), kSeed);
  const Outcome sock =
      run_workload(w, Wire::kSocket, net::WireCodecConfig::enabled(), kSeed);
  expect_same_state(sock, loop);
  // The codec is deterministic, so even the compressed wire bytes agree
  // across transports, frame for frame.
  EXPECT_EQ(sock.stats.bytes_sent, loop.stats.bytes_sent);
  EXPECT_EQ(sock.stats.frames_sent, loop.stats.frames_sent);
  EXPECT_EQ(sock.stats.raw_bytes_by_type, loop.stats.raw_bytes_by_type);
}

INSTANTIATE_TEST_SUITE_P(Widths, CodecDifferentialTest,
                         testing::Values(1u, 2u));

TEST(CodecDeterminismProbe, OffTwiceIdentical) {
  const Outcome a = run_workload(1, Wire::kLoopback, net::WireCodecConfig{}, 1);
  const Outcome b = run_workload(1, Wire::kLoopback, net::WireCodecConfig{}, 1);
  expect_same_state(a, b);
}

TEST(CodecDeterminismProbe, OnTwiceIdentical) {
  const Outcome a =
      run_workload(1, Wire::kLoopback, net::WireCodecConfig::enabled(), 1);
  const Outcome b =
      run_workload(1, Wire::kLoopback, net::WireCodecConfig::enabled(), 1);
  expect_same_state(a, b);
}

// ---- debar_clusterd across OS processes -------------------------------

namespace fs = std::filesystem;

std::vector<char> slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

fs::path fresh_dir(const std::string& tag) {
  const fs::path dir = fs::path(testing::TempDir()) / ("codec-" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void run_clusterd(const std::string& transport, unsigned w,
                  const std::string& codec, const fs::path& dir) {
  const std::string cmd = std::string(DEBAR_CLUSTERD_PATH) +
                          " --transport=" + transport +
                          " --w=" + std::to_string(w) +
                          " --codec=" + codec + " --dir=" + dir.string() +
                          " >/dev/null 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0)
      << transport << " w=" << w << " codec=" << codec << " run failed";
}

void expect_identical_trees(const fs::path& a_dir, const fs::path& b_dir,
                            unsigned w) {
  std::vector<fs::path> files;
  for (unsigned k = 0; k < (1u << w); ++k) {
    files.push_back(fs::path("node" + std::to_string(k)) / "index.bin");
  }
  files.push_back(fs::path("repo") / "node0.log");
  files.push_back(fs::path("repo") / "node1.log");
  files.push_back("summary.txt");
  for (const fs::path& rel : files) {
    const std::vector<char> a = slurp(a_dir / rel);
    const std::vector<char> b = slurp(b_dir / rel);
    EXPECT_FALSE(a.empty()) << rel;
    EXPECT_EQ(a, b) << rel << " differs";
  }
}

class ClusterdCodecDifferentialTest
    : public testing::TestWithParam<unsigned> {};

/// Real multi-process TCP daemons with the codec on must leave the same
/// disk tree as codec-off daemons, and as a codec-on loopback run.
TEST_P(ClusterdCodecDifferentialTest, CodecOnTreeMatchesCodecOff) {
  const unsigned w = GetParam();
  const fs::path off = fresh_dir("sock-off-w" + std::to_string(w));
  const fs::path on = fresh_dir("sock-on-w" + std::to_string(w));
  const fs::path loop = fresh_dir("loop-on-w" + std::to_string(w));
  run_clusterd("socket", w, "off", off);
  run_clusterd("socket", w, "on", on);
  run_clusterd("loopback", w, "on", loop);
  expect_identical_trees(off, on, w);
  expect_identical_trees(on, loop, w);
  fs::remove_all(off);
  fs::remove_all(on);
  fs::remove_all(loop);
}

INSTANTIATE_TEST_SUITE_P(Widths, ClusterdCodecDifferentialTest,
                         testing::Values(1u, 2u));

}  // namespace
}  // namespace debar::core
