// Multi-tenant ingest front end (DESIGN.md §5l): admission control,
// per-tenant DRR fairness, and concurrent streaming dedup-1 through the
// IngestOpen / IngestBatch / IngestClose wire exchange. The bars:
//
//   * the differential: a 64-tenant fleet streamed concurrently through
//     IngestService restores byte-identical to the serial
//     BackupScheduler(Cluster*) twin fed the same TenantMix datasets —
//     at w ∈ {1, 2} over loopback, and over real TCP sockets;
//   * the starvation probe: one hog tenant with a deep backlog of large
//     jobs cannot push a small tenant's admission latency past a
//     constant number of DRR rotations;
//   * dedup-2 pressure converts into retryable kBusy admission
//     rejections that the lanes absorb (relieve + jittered backoff) —
//     every job still completes;
//   * the bounded admission queue rejects immediately with kBusy;
//   * inline mode (lanes == 0) is bit-deterministic run to run;
//   * the epoch fence: an ingest stamped with a stale PartitionMap epoch
//     is refused with kUnavailable before any session opens.
#include <gtest/gtest.h>

#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/ingest_service.hpp"
#include "core/scheduler.hpp"
#include "net/transport_factory.hpp"
#include "workload/tenant_mix.hpp"

namespace debar::core {
namespace {

/// Small-geometry cluster config shared with the failover/retention
/// suites, parameterized on the transport wire.
ClusterConfig small_cluster_config(unsigned w, bool socket_wire) {
  ClusterConfig cfg;
  cfg.routing_bits = w;
  cfg.repository_nodes = 2;
  cfg.server_config.index_params = {.prefix_bits = 6, .blocks_per_bucket = 2};
  cfg.server_config.filter_params = {.hash_bits = 8, .capacity = 100000};
  cfg.server_config.chunk_store.cache_params = {.hash_bits = 4,
                                                .capacity = 1000000};
  cfg.server_config.chunk_store.io_buckets = 8;
  cfg.server_config.chunk_store.siu_threshold = 1;
  cfg.server_config.container_capacity = 64 * 1024;
  if (socket_wire) {
    cfg.transport_factory =
        std::make_shared<net::SocketTransportFactory>(net::AddressMap{});
  }
  return cfg;
}

std::vector<Byte> flatten(const Dataset& dataset) {
  std::vector<Byte> out;
  for (const FileData& f : dataset.files) {
    out.insert(out.end(), f.content.begin(), f.content.end());
  }
  return out;
}

/// Serial twin: the same tenants' generations run one at a time through
/// BackupScheduler(Cluster*). Returns tenant -> director job id.
std::map<std::uint64_t, std::uint64_t> run_serial_twin(
    Cluster& cluster, const workload::TenantMix& mix,
    std::uint32_t generations) {
  std::map<std::uint64_t, std::uint64_t> job_of;
  for (std::uint64_t t = 0; t < mix.params().tenants; ++t) {
    job_of[t] =
        cluster.director().define_job("tenant-" + std::to_string(t), "mix", 1);
  }
  BackupScheduler scheduler(&cluster);
  for (std::uint32_t day = 1; day <= generations; ++day) {
    const auto report = scheduler.run_day(
        day,
        [&](const JobSpec& spec, std::uint32_t d) -> Result<Dataset> {
          const std::uint64_t tenant =
              std::stoull(spec.client_name.substr(std::string("tenant-").size()));
          return mix.dataset(tenant, d - 1);
        });
    EXPECT_TRUE(report.ok()) << (report.ok() ? "" : report.error().to_string());
  }
  EXPECT_TRUE(scheduler.finalize().ok());
  return job_of;
}

/// Concurrent path: every generation is submitted fleet-wide, drained,
/// then the next begins (a tenant's chain stays ordered; tenants race).
std::vector<IngestService::Outcome> run_concurrent(
    Cluster& cluster, const workload::TenantMix& mix,
    std::uint32_t generations, IngestService::Config cfg) {
  IngestService service(&cluster, cfg);
  std::vector<IngestService::Outcome> outcomes;
  for (std::uint32_t g = 0; g < generations; ++g) {
    std::vector<std::shared_future<Result<IngestService::Outcome>>> futures;
    for (std::uint64_t t = 0; t < mix.params().tenants; ++t) {
      auto fut = service.submit(t, mix.job_id(t), mix.dataset(t, g));
      EXPECT_TRUE(fut.ok()) << (fut.ok() ? "" : fut.error().to_string());
      if (fut.ok()) futures.push_back(fut.value());
    }
    if (cfg.lanes == 0) {
      EXPECT_TRUE(service.run_until_drained().ok());
    } else {
      service.drain();
    }
    for (auto& f : futures) {
      Result<IngestService::Outcome> r = f.get();
      EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().to_string());
      if (r.ok()) outcomes.push_back(r.value());
    }
  }
  EXPECT_TRUE(service.finalize().ok());
  service.shutdown();
  return outcomes;
}

void expect_restores_match(Cluster& concurrent, Cluster& serial,
                           const workload::TenantMix& mix,
                           const std::map<std::uint64_t, std::uint64_t>& job_of,
                           std::uint32_t generations) {
  for (std::uint64_t t = 0; t < mix.params().tenants; ++t) {
    for (std::uint32_t g = 0; g < generations; ++g) {
      const std::uint32_t version = g + 1;
      Result<Dataset> a = concurrent.restore(mix.job_id(t), version,
                                             /*via_server=*/0);
      Result<Dataset> b =
          serial.restore(job_of.at(t), version, /*via_server=*/0);
      ASSERT_TRUE(a.ok()) << "tenant " << t << " v" << version << ": "
                          << a.error().to_string();
      ASSERT_TRUE(b.ok()) << "tenant " << t << " v" << version << ": "
                          << b.error().to_string();
      const std::vector<Byte> expected = flatten(mix.dataset(t, g));
      EXPECT_EQ(flatten(a.value()), expected) << "tenant " << t << " v"
                                              << version << " (concurrent)";
      EXPECT_EQ(flatten(b.value()), expected)
          << "tenant " << t << " v" << version << " (serial twin)";
    }
  }
  // Spot-check the last version through the highest server too — restore
  // must work through any shard.
  const std::size_t via = concurrent.server_count() - 1;
  Result<Dataset> last =
      concurrent.restore(mix.job_id(0), generations, via);
  ASSERT_TRUE(last.ok()) << last.error().to_string();
  EXPECT_EQ(flatten(last.value()), flatten(mix.dataset(0, generations - 1)));
}

TEST(ClusterIngestTest, SixtyFourTenantsMatchSerialTwinOverLoopback) {
  for (const unsigned w : {1u, 2u}) {
    SCOPED_TRACE(w);
    const workload::TenantMix mix({.tenants = 64,
                                   .files_per_tenant = 2,
                                   .file_bytes = 8 * 1024,
                                   .delta_bytes = 512,
                                   .deltas_per_file = 2,
                                   .seed = 7});
    constexpr std::uint32_t kGenerations = 2;

    Cluster concurrent(small_cluster_config(w, /*socket_wire=*/false));
    IngestService::Config cfg;
    cfg.lanes = 4;
    const std::vector<IngestService::Outcome> outcomes =
        run_concurrent(concurrent, mix, kGenerations, cfg);
    ASSERT_EQ(outcomes.size(), mix.params().tenants * kGenerations);

    std::uint64_t logical_g2 = 0, transferred_g2 = 0;
    for (const IngestService::Outcome& out : outcomes) {
      EXPECT_GT(out.chunks, 0u) << "tenant " << out.tenant;
      EXPECT_EQ(out.files, mix.params().files_per_tenant);
      if (out.version == 2) {
        logical_g2 += out.logical_bytes;
        transferred_g2 += out.transferred_bytes;
      }
    }
    // Generation 2 is a near-duplicate of generation 1: dedup-1 must
    // suppress most payload bytes on the wire.
    EXPECT_LT(transferred_g2, logical_g2);

    Cluster serial(small_cluster_config(w, /*socket_wire=*/false));
    const auto job_of = run_serial_twin(serial, mix, kGenerations);
    expect_restores_match(concurrent, serial, mix, job_of, kGenerations);
  }
}

TEST(ClusterIngestTest, SixtyFourTenantsMatchSerialTwinOverTcp) {
  const workload::TenantMix mix({.tenants = 64,
                                 .files_per_tenant = 1,
                                 .file_bytes = 4 * 1024,
                                 .delta_bytes = 256,
                                 .deltas_per_file = 2,
                                 .seed = 11});
  constexpr std::uint32_t kGenerations = 2;

  Cluster concurrent(small_cluster_config(1, /*socket_wire=*/true));
  IngestService::Config cfg;
  cfg.lanes = 4;
  const std::vector<IngestService::Outcome> outcomes =
      run_concurrent(concurrent, mix, kGenerations, cfg);
  ASSERT_EQ(outcomes.size(), mix.params().tenants * kGenerations);

  Cluster serial(small_cluster_config(1, /*socket_wire=*/false));
  const auto job_of = run_serial_twin(serial, mix, kGenerations);
  expect_restores_match(concurrent, serial, mix, job_of, kGenerations);
}

/// Unique per-job content so every starvation/backoff job stores fresh
/// chunks (no cross-job dedup muddying byte accounting).
Dataset unique_dataset(std::uint64_t seed, std::uint64_t bytes) {
  Dataset out;
  FileData file;
  file.path = "blob-" + std::to_string(seed);
  file.mtime = 0;
  file.content.resize(bytes);
  Xoshiro256 rng(0xFEED0000 + seed);
  for (auto& b : file.content) b = static_cast<Byte>(rng());
  out.files.push_back(std::move(file));
  return out;
}

TEST(ClusterIngestTest, HogTenantCannotStarveSmallTenants) {
  Cluster cluster(small_cluster_config(1, /*socket_wire=*/false));
  IngestService::Config cfg;
  cfg.lanes = 0;  // inline: rotation accounting is exact
  cfg.limits.drr_quantum = 64 * 1024;
  cfg.limits.tokens_per_rotation = 64 * 1024;
  cfg.limits.burst_bytes = 256 * 1024;
  IngestService service(&cluster, cfg);

  // Tenant 0 floods six 256 KiB jobs; tenants 1..8 each want one 4 KiB
  // job. Without DRR the hog's backlog would delay every small tenant by
  // the hog's whole service time in rotations.
  std::vector<std::shared_future<Result<IngestService::Outcome>>> hog;
  for (int j = 0; j < 6; ++j) {
    auto fut = service.submit(0, 100 + j, unique_dataset(100 + j, 256 * 1024));
    ASSERT_TRUE(fut.ok());
    hog.push_back(fut.value());
  }
  std::vector<std::shared_future<Result<IngestService::Outcome>>> small;
  for (std::uint64_t t = 1; t <= 8; ++t) {
    auto fut = service.submit(t, 200 + t, unique_dataset(200 + t, 4 * 1024));
    ASSERT_TRUE(fut.ok());
    small.push_back(fut.value());
  }
  ASSERT_TRUE(service.run_until_drained().ok());

  // Every small tenant dispatches within its first rotations — one
  // quantum covers a 4 KiB job, and a fresh tenant's bucket starts full.
  for (auto& f : small) {
    Result<IngestService::Outcome> r = f.get();
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    EXPECT_LE(r.value().admission_rotations, 2u)
        << "tenant " << r.value().tenant;
  }
  // The hog still drains completely — fairness throttles, never starves —
  // but its backlog tail pays the DRR price the small tenants did not.
  std::uint64_t max_hog_rotations = 0;
  for (auto& f : hog) {
    Result<IngestService::Outcome> r = f.get();
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    max_hog_rotations =
        std::max(max_hog_rotations, r.value().admission_rotations);
  }
  EXPECT_GT(max_hog_rotations, 2u);
  service.shutdown();
}

TEST(ClusterIngestTest, Dedup2PressureRejectsBusyThenRecovers) {
  Cluster cluster(small_cluster_config(1, /*socket_wire=*/false));
  IngestService::Config cfg;
  cfg.lanes = 0;
  // Any standing undetermined fingerprint rejects the next admission;
  // post-job relief is off, so only the busy path can clear pressure.
  cfg.limits.busy_high_water = 1;
  cfg.limits.dedup2_trigger = std::uint64_t{1} << 40;
  IngestService service(&cluster, cfg);

  std::vector<std::shared_future<Result<IngestService::Outcome>>> futures;
  for (std::uint64_t t = 0; t < 4; ++t) {
    auto fut = service.submit(t, 300 + t, unique_dataset(300 + t, 8 * 1024));
    ASSERT_TRUE(fut.ok());
    futures.push_back(fut.value());
  }
  ASSERT_TRUE(service.run_until_drained().ok());

  std::uint64_t total_rejections = 0;
  for (auto& f : futures) {
    Result<IngestService::Outcome> r = f.get();
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    EXPECT_EQ(r.value().version, 1u);
    total_rejections += r.value().busy_rejections;
  }
  // At least one job found a previous job's undetermined set standing,
  // took kBusy, relieved, and got in. (Load-based assignment alternates
  // target servers and relief clears the whole cluster, so the exact
  // count depends on the assignment sequence — the contract is
  // "rejected then recovered", not a fixed tally.)
  EXPECT_GE(total_rejections, 1u);
  EXPECT_TRUE(service.finalize().ok());
  service.shutdown();
}

TEST(ClusterIngestTest, FullAdmissionQueueRejectsImmediately) {
  Cluster cluster(small_cluster_config(1, /*socket_wire=*/false));
  IngestService::Config cfg;
  cfg.lanes = 0;
  cfg.limits.queue_capacity = 2;
  IngestService service(&cluster, cfg);

  auto a = service.submit(0, 400, unique_dataset(400, 4 * 1024));
  auto b = service.submit(1, 401, unique_dataset(401, 4 * 1024));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = service.submit(2, 402, unique_dataset(402, 4 * 1024));
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.error().code, Errc::kBusy);

  ASSERT_TRUE(service.run_until_drained().ok());
  EXPECT_TRUE(a.value().get().ok());
  EXPECT_TRUE(b.value().get().ok());
  service.shutdown();
}

TEST(ClusterIngestTest, InlineModeIsDeterministic) {
  const workload::TenantMix mix({.tenants = 8,
                                 .files_per_tenant = 2,
                                 .file_bytes = 8 * 1024,
                                 .delta_bytes = 512,
                                 .deltas_per_file = 2,
                                 .seed = 13});
  auto run = [&] {
    Cluster cluster(small_cluster_config(1, /*socket_wire=*/false));
    IngestService::Config cfg;  // lanes == 0
    std::vector<IngestService::Outcome> outcomes =
        run_concurrent(cluster, mix, /*generations=*/2, cfg);
    return outcomes;
  };
  const std::vector<IngestService::Outcome> first = run();
  const std::vector<IngestService::Outcome> second = run();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].tenant, second[i].tenant) << i;
    EXPECT_EQ(first[i].job_id, second[i].job_id) << i;
    EXPECT_EQ(first[i].version, second[i].version) << i;
    EXPECT_EQ(first[i].server, second[i].server) << i;
    EXPECT_EQ(first[i].chunks, second[i].chunks) << i;
    EXPECT_EQ(first[i].logical_bytes, second[i].logical_bytes) << i;
    EXPECT_EQ(first[i].transferred_bytes, second[i].transferred_bytes) << i;
    EXPECT_EQ(first[i].admission_rotations, second[i].admission_rotations)
        << i;
  }
}

TEST(ClusterIngestTest, StaleEpochIsFencedAtOpen) {
  Cluster cluster(small_cluster_config(1, /*socket_wire=*/false));
  const net::EndpointId lane_id = kIngestLaneBase;
  ASSERT_TRUE(cluster.transport().register_endpoint(lane_id, nullptr).ok());
  net::Endpoint lane(&cluster.transport(), lane_id, net::RetryPolicy{},
                     net::WireCodecConfig{});

  IngestServer::Config sc;
  sc.epoch = cluster.epoch();
  sc.lanes = {lane_id};
  IngestServer server(&cluster.server(0), sc);
  std::thread serve([&] { server.serve(); });

  IngestClient::Config stale;
  stale.epoch = cluster.epoch() + 1;  // torn map
  IngestClient bad(&lane, /*server=*/0, stale);
  Result<std::uint64_t> refused = bad.open(/*tenant=*/0, /*job_id=*/500);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error().code, Errc::kUnavailable);

  IngestClient::Config fresh;
  fresh.epoch = cluster.epoch();
  IngestClient good(&lane, /*server=*/0, fresh);
  Result<std::uint64_t> admitted = good.open(/*tenant=*/0, /*job_id=*/500);
  EXPECT_TRUE(admitted.ok()) << admitted.error().to_string();
  EXPECT_TRUE(good.close().ok());

  server.request_stop();
  serve.join();
}

}  // namespace
}  // namespace debar::core
