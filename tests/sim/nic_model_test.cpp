#include "sim/nic_model.hpp"

#include <gtest/gtest.h>

namespace debar::sim {
namespace {

TEST(NicModelTest, ChargesTransferTime) {
  SimClock clock;
  NicModel nic({.bytes_per_sec = 1000.0}, &clock);
  nic.transfer(500);
  EXPECT_DOUBLE_EQ(clock.seconds(), 0.5);
  nic.transfer(1500);
  EXPECT_DOUBLE_EQ(clock.seconds(), 2.0);
  EXPECT_EQ(nic.bytes_transferred(), 2000u);
}

TEST(NicModelTest, ZeroBytesFree) {
  SimClock clock;
  NicModel nic({.bytes_per_sec = 1000.0}, &clock);
  nic.transfer(0);
  EXPECT_DOUBLE_EQ(clock.seconds(), 0.0);
}

TEST(NicModelTest, PaperProfileIs210MBs) {
  // Section 6.1.2: DDFS saturates at ~210 MB/s, "exactly the sustained
  // throughput of the network card".
  SimClock clock;
  NicModel nic(NicProfile::PaperGigabit(), &clock);
  nic.transfer(210'000'000);
  EXPECT_NEAR(clock.seconds(), 1.0, 1e-9);
}

}  // namespace
}  // namespace debar::sim
