#include <gtest/gtest.h>

#include "sim/disk_model.hpp"

namespace debar::sim {
namespace {

TEST(ScaledProfileTest, StreamTimeMatchesModeledSize) {
  // Streaming the small actual structure must cost exactly what the base
  // profile charges for the modeled size.
  const DiskProfile base = DiskProfile::PaperRaid();
  const std::uint64_t modeled = 32ull << 30;  // 32 GiB
  const std::uint64_t actual = 32ull << 20;   // 32 MiB
  const DiskProfile scaled = base.scaled_to(modeled, actual);

  SimClock clock;
  DiskModel disk(scaled, &clock);
  disk.stream(actual);
  const double expect = static_cast<double>(modeled) /
                        base.transfer_bytes_per_sec;
  EXPECT_NEAR(clock.seconds(), expect, expect * 1e-9);
}

TEST(ScaledProfileTest, SeekCostUnchanged) {
  const DiskProfile base = DiskProfile::PaperRaid();
  const DiskProfile scaled = base.scaled_to(1ull << 40, 1ull << 20);
  EXPECT_DOUBLE_EQ(scaled.seek_seconds, base.seek_seconds);
}

TEST(ScaledProfileTest, IdentityScaleIsIdentity) {
  const DiskProfile base = DiskProfile::CommoditySata();
  const DiskProfile scaled = base.scaled_to(1 << 20, 1 << 20);
  EXPECT_DOUBLE_EQ(scaled.transfer_bytes_per_sec,
                   base.transfer_bytes_per_sec);
}

}  // namespace
}  // namespace debar::sim
