#include "sim/disk_model.hpp"

#include <gtest/gtest.h>

namespace debar::sim {
namespace {

DiskProfile test_profile() {
  return {.seek_seconds = 0.01, .transfer_bytes_per_sec = 1000.0};
}

TEST(SimClockTest, AccumulatesAndResets) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.advance_seconds(1.5);
  EXPECT_DOUBLE_EQ(clock.seconds(), 1.5);
  clock.advance(from_seconds(0.5));
  EXPECT_DOUBLE_EQ(clock.seconds(), 2.0);
  clock.reset();
  EXPECT_EQ(clock.now(), 0u);
}

TEST(SimClockTest, ConversionRoundTrip) {
  EXPECT_DOUBLE_EQ(to_seconds(from_seconds(3.25)), 3.25);
  EXPECT_EQ(from_seconds(-1.0), 0u);
}

TEST(DiskModelTest, SequentialAccessPaysTransferOnly) {
  SimClock clock;
  DiskModel disk(test_profile(), &clock);
  disk.access(0, 500);   // first access from head 0: sequential
  EXPECT_DOUBLE_EQ(clock.seconds(), 0.5);
  disk.access(500, 500);  // continues at the head: no seek
  EXPECT_DOUBLE_EQ(clock.seconds(), 1.0);
  EXPECT_EQ(disk.seeks(), 0u);
}

TEST(DiskModelTest, RandomAccessPaysSeek) {
  SimClock clock;
  DiskModel disk(test_profile(), &clock);
  disk.access(0, 100);
  disk.access(5000, 100);  // head at 100, jump: seek
  EXPECT_DOUBLE_EQ(clock.seconds(), 0.1 + 0.01 + 0.1);
  EXPECT_EQ(disk.seeks(), 1u);
}

TEST(DiskModelTest, StreamAdvancesHead) {
  SimClock clock;
  DiskModel disk(test_profile(), &clock);
  disk.stream(2000);
  EXPECT_DOUBLE_EQ(clock.seconds(), 2.0);
  EXPECT_EQ(disk.head(), 2000u);
  disk.access(2000, 100);  // continues: no seek
  EXPECT_EQ(disk.seeks(), 0u);
}

TEST(DiskModelTest, ExplicitSeek) {
  SimClock clock;
  DiskModel disk(test_profile(), &clock);
  disk.seek();
  EXPECT_DOUBLE_EQ(clock.seconds(), 0.01);
  EXPECT_EQ(disk.seeks(), 1u);
}

TEST(DiskModelTest, TracksBytesTransferred) {
  SimClock clock;
  DiskModel disk(test_profile(), &clock);
  disk.access(0, 300);
  disk.stream(700);
  EXPECT_EQ(disk.bytes_transferred(), 1000u);
}

TEST(DiskProfileTest, PaperRaidMatchesMeasuredRates) {
  // The paper measures ~522 random lookups/s and 200 MB/s sequential on
  // its index RAID. One random 512-byte I/O must cost ~1/522 s.
  const DiskProfile p = DiskProfile::PaperRaid();
  const double per_io = p.seek_seconds + 512.0 / p.transfer_bytes_per_sec;
  EXPECT_NEAR(1.0 / per_io, 522.0, 1.0);
  EXPECT_DOUBLE_EQ(p.transfer_bytes_per_sec, 200.0e6);
}

TEST(DiskProfileTest, SequentialBeatsRandomByOrdersOfMagnitude) {
  // The core premise of SIL/SIU: streaming the whole index beats seeking
  // per fingerprint. Check with a 1 GiB index and 1M fingerprints.
  const DiskProfile p = DiskProfile::PaperRaid();
  SimClock seq_clock, rnd_clock;
  DiskModel seq(p, &seq_clock), rnd(p, &rnd_clock);

  seq.stream(std::uint64_t{1} << 30);  // one sequential pass
  for (int i = 0; i < 1000; ++i) {     // 1000 of the 1M random I/Os
    rnd.seek();
    rnd.stream(512);
  }
  const double random_total = rnd_clock.seconds() * 1000;  // scale to 1M
  EXPECT_GT(random_total / seq_clock.seconds(), 100.0);
}

}  // namespace
}  // namespace debar::sim
