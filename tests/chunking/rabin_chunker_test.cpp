#include "chunking/rabin_chunker.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"

namespace debar::chunking {
namespace {

std::vector<Byte> random_data(std::uint64_t seed, std::size_t n) {
  Xoshiro256 rng(seed);
  std::vector<Byte> data(n);
  for (auto& b : data) b = static_cast<Byte>(rng());
  return data;
}

void expect_tiles(const std::vector<ChunkBounds>& bounds, std::size_t total) {
  ASSERT_FALSE(bounds.empty());
  EXPECT_EQ(bounds.front().offset, 0u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_EQ(bounds[i].offset,
              bounds[i - 1].offset + bounds[i - 1].size);
  }
  EXPECT_EQ(bounds.back().offset + bounds.back().size, total);
}

TEST(RabinChunkerTest, EmptyInputYieldsNoChunks) {
  RabinChunker chunker;
  EXPECT_TRUE(chunker.chunk(ByteSpan{}).empty());
}

TEST(RabinChunkerTest, ChunksTileTheInput) {
  RabinChunker chunker;
  const auto data = random_data(1, 1 << 20);
  const auto bounds = chunker.chunk(ByteSpan(data.data(), data.size()));
  expect_tiles(bounds, data.size());
}

TEST(RabinChunkerTest, RespectsSizeBounds) {
  RabinChunker chunker;
  const auto data = random_data(2, 4 << 20);
  const auto bounds = chunker.chunk(ByteSpan(data.data(), data.size()));
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {  // last may be short
    EXPECT_GE(bounds[i].size, kMinChunkSize);
    EXPECT_LE(bounds[i].size, kMaxChunkSize);
  }
  EXPECT_LE(bounds.back().size, kMaxChunkSize);
}

TEST(RabinChunkerTest, MeanChunkSizeNearExpected) {
  RabinChunker chunker;
  const auto data = random_data(3, 16 << 20);
  const auto bounds = chunker.chunk(ByteSpan(data.data(), data.size()));
  const double mean =
      static_cast<double>(data.size()) / static_cast<double>(bounds.size());
  // Expected size with min/max clamping lands near 2^k for random data;
  // accept a generous band (the clamps shift the mean upward).
  EXPECT_GT(mean, 4.0 * 1024);
  EXPECT_LT(mean, 16.0 * 1024);
}

TEST(RabinChunkerTest, DeterministicAcrossCalls) {
  RabinChunker chunker;
  const auto data = random_data(4, 1 << 20);
  const auto a = chunker.chunk(ByteSpan(data.data(), data.size()));
  const auto b = chunker.chunk(ByteSpan(data.data(), data.size()));
  EXPECT_EQ(a, b);

  RabinChunker other;  // fresh chunker: no hidden state
  EXPECT_EQ(other.chunk(ByteSpan(data.data(), data.size())), a);
}

TEST(RabinChunkerTest, InsertionOnlyShiftsLocalChunks) {
  // The whole point of CDC: inserting bytes near the front must leave the
  // vast majority of chunk boundaries (hence fingerprints) intact.
  RabinChunker chunker;
  const auto base = random_data(5, 4 << 20);

  std::vector<Byte> edited = base;
  const std::vector<Byte> insert = {1, 2, 3, 4, 5, 6, 7};
  edited.insert(edited.begin() + 1000, insert.begin(), insert.end());

  const auto a = chunker.chunk(ByteSpan(base.data(), base.size()));
  const auto b = chunker.chunk(ByteSpan(edited.data(), edited.size()));

  // Compare chunk content signatures by (size) sequences from the tail:
  // all but a handful of leading chunks must match exactly.
  std::size_t ai = a.size(), bi = b.size(), matched = 0;
  while (ai > 0 && bi > 0 && a[ai - 1].size == b[bi - 1].size) {
    --ai;
    --bi;
    ++matched;
  }
  EXPECT_GT(matched, a.size() * 9 / 10)
      << "only " << matched << " of " << a.size() << " chunks survived";
}

TEST(RabinChunkerTest, FixedChunkingWouldNotSurviveInsertion) {
  // Contrast case documenting why DEBAR uses CDC (Section 3.2).
  const auto base = random_data(6, 1 << 20);
  std::vector<Byte> edited = base;
  edited.insert(edited.begin(), Byte{0x42});

  std::size_t matching_blocks = 0;
  const std::size_t blocks = base.size() / kExpectedChunkSize;
  for (std::size_t i = 0; i < blocks; ++i) {
    if (std::equal(base.begin() + i * kExpectedChunkSize,
                   base.begin() + (i + 1) * kExpectedChunkSize,
                   edited.begin() + i * kExpectedChunkSize)) {
      ++matching_blocks;
    }
  }
  EXPECT_EQ(matching_blocks, 0u);  // every fixed block shifted
}

TEST(RabinChunkerTest, ParamsValidation) {
  CdcParams p;
  EXPECT_TRUE(p.valid());
  p.expected_size = 3000;  // not a power of two
  EXPECT_FALSE(p.valid());
  p = CdcParams{};
  p.min_size = 16;  // smaller than the window
  EXPECT_FALSE(p.valid());
  p = CdcParams{};
  p.max_size = p.expected_size / 2;
  EXPECT_FALSE(p.valid());
}

TEST(RabinChunkerTest, AllZeroInputHitsMaxSize) {
  // Pathological constant input never anchors (fp of zero window with
  // anchor 0x78 never matches), so every chunk is forced at max size.
  RabinChunker chunker;
  const std::vector<Byte> zeros(512 * 1024, 0);
  const auto bounds = chunker.chunk(ByteSpan(zeros.data(), zeros.size()));
  expect_tiles(bounds, zeros.size());
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    EXPECT_EQ(bounds[i].size, kMaxChunkSize);
  }
}

class RabinChunkerParamTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RabinChunkerParamTest, MeanTracksExpectedSize) {
  const std::uint64_t expected = GetParam();
  CdcParams p;
  p.expected_size = expected;
  p.min_size = expected / 4;
  p.max_size = expected * 8;
  ASSERT_TRUE(p.valid());
  RabinChunker chunker(p);

  const auto data = random_data(99, 8 << 20);
  const auto bounds = chunker.chunk(ByteSpan(data.data(), data.size()));
  const double mean =
      static_cast<double>(data.size()) / static_cast<double>(bounds.size());
  EXPECT_GT(mean, static_cast<double>(expected) * 0.6);
  EXPECT_LT(mean, static_cast<double>(expected) * 2.0);
}

INSTANTIATE_TEST_SUITE_P(ExpectedSizes, RabinChunkerParamTest,
                         ::testing::Values(2048, 4096, 8192, 16384));

}  // namespace
}  // namespace debar::chunking
