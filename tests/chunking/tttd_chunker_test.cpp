#include "chunking/tttd_chunker.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "chunking/rabin_chunker.hpp"
#include "common/rng.hpp"

namespace debar::chunking {
namespace {

std::vector<Byte> random_data(std::uint64_t seed, std::size_t n) {
  Xoshiro256 rng(seed);
  std::vector<Byte> data(n);
  for (auto& b : data) b = static_cast<Byte>(rng());
  return data;
}

void expect_tiles(const std::vector<ChunkBounds>& bounds, std::size_t total) {
  ASSERT_FALSE(bounds.empty());
  EXPECT_EQ(bounds.front().offset, 0u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_EQ(bounds[i].offset, bounds[i - 1].offset + bounds[i - 1].size);
  }
  EXPECT_EQ(bounds.back().offset + bounds.back().size, total);
}

TEST(TttdChunkerTest, ParamsValidation) {
  TttdParams p;
  EXPECT_TRUE(p.valid());
  p.backup_divisor = p.main_divisor;  // must be strictly smaller
  EXPECT_FALSE(p.valid());
  p = TttdParams{};
  p.main_divisor = 3000;  // not a power of two
  EXPECT_FALSE(p.valid());
  p = TttdParams{};
  p.min_size = 8;  // below window
  EXPECT_FALSE(p.valid());
}

TEST(TttdChunkerTest, ChunksTileTheInput) {
  TttdChunker chunker;
  const auto data = random_data(1, 4 << 20);
  const auto bounds = chunker.chunk(ByteSpan(data.data(), data.size()));
  expect_tiles(bounds, data.size());
}

TEST(TttdChunkerTest, RespectsSizeBounds) {
  TttdChunker chunker;
  const auto data = random_data(2, 4 << 20);
  const auto bounds = chunker.chunk(ByteSpan(data.data(), data.size()));
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    EXPECT_GE(bounds[i].size, kMinChunkSize);
    EXPECT_LE(bounds[i].size, kMaxChunkSize);
  }
}

TEST(TttdChunkerTest, Deterministic) {
  TttdChunker chunker;
  const auto data = random_data(3, 1 << 20);
  const auto a = chunker.chunk(ByteSpan(data.data(), data.size()));
  TttdChunker other;
  EXPECT_EQ(other.chunk(ByteSpan(data.data(), data.size())), a);
}

TEST(TttdChunkerTest, LowerVarianceThanPlainCdcOnAnchorSparseInput) {
  // TTTD's reason to exist: where primary anchors are sparse, plain CDC
  // degenerates into arbitrary max-size cuts while TTTD's backup divisor
  // still finds content-defined boundaries — same expected size, tighter
  // distribution. On fully random data the two are nearly identical, so
  // the comparison input interleaves random and low-entropy regions
  // (a random byte every ~192 positions: most windows are constant).
  Xoshiro256 rng(4);
  std::vector<Byte> data(16 << 20);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const bool low_entropy = (i / (512 * 1024)) % 2 == 1;
    data[i] = (!low_entropy || i % 192 == 0) ? static_cast<Byte>(rng())
                                             : Byte{0x40};
  }
  RabinChunker cdc;
  TttdChunker tttd;
  const auto a = cdc.chunk(ByteSpan(data.data(), data.size()));
  const auto b = tttd.chunk(ByteSpan(data.data(), data.size()));

  auto cv = [](const std::vector<ChunkBounds>& bounds) {
    double mean = 0;
    for (const auto& c : bounds) mean += static_cast<double>(c.size);
    mean /= static_cast<double>(bounds.size());
    double var = 0;
    for (const auto& c : bounds) {
      const double d = static_cast<double>(c.size) - mean;
      var += d * d;
    }
    var /= static_cast<double>(bounds.size());
    return std::sqrt(var) / mean;  // coefficient of variation
  };
  EXPECT_LT(cv(b), cv(a));
  // And the mechanism really engaged: backup cuts happened.
  EXPECT_GT(tttd.last_stats().backup, 0u);
}

TEST(TttdChunkerTest, BackupAnchorUsedOnPathologicalInput) {
  // Low-entropy input produces few primary anchors; TTTD must fall back
  // to backup anchors rather than hard max-size cuts where possible.
  Xoshiro256 rng(5);
  std::vector<Byte> data(2 << 20);
  // Mostly-constant data with occasional random bytes: sparse anchors.
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = (rng.below(64) == 0) ? static_cast<Byte>(rng()) : Byte{0x20};
  }
  TttdChunker chunker;
  const auto bounds = chunker.chunk(ByteSpan(data.data(), data.size()));
  expect_tiles(bounds, data.size());
  const auto& stats = chunker.last_stats();
  EXPECT_GT(stats.backup + stats.forced, 0u);  // max threshold was hit
  // Backup anchors should cover a meaningful share of those events
  // (all-zero stretches have no anchors at all, so some forced cuts are
  // unavoidable).
  EXPECT_GT(stats.backup, 0u);
}

TEST(TttdChunkerTest, InsertionLocalityHolds) {
  TttdChunker chunker;
  const auto base = random_data(6, 4 << 20);
  std::vector<Byte> edited = base;
  const std::vector<Byte> insert = {9, 9, 9, 9, 9};
  edited.insert(edited.begin() + 2048, insert.begin(), insert.end());

  const auto a = chunker.chunk(ByteSpan(base.data(), base.size()));
  const auto b = chunker.chunk(ByteSpan(edited.data(), edited.size()));
  std::size_t ai = a.size(), bi = b.size(), matched = 0;
  while (ai > 0 && bi > 0 && a[ai - 1].size == b[bi - 1].size) {
    --ai;
    --bi;
    ++matched;
  }
  EXPECT_GT(matched, a.size() * 9 / 10);
}

TEST(TttdChunkerTest, StatsSumToChunkCount) {
  TttdChunker chunker;
  const auto data = random_data(7, 2 << 20);
  const auto bounds = chunker.chunk(ByteSpan(data.data(), data.size()));
  const auto& s = chunker.last_stats();
  EXPECT_EQ(s.primary + s.backup + s.forced + s.tail, bounds.size());
}

}  // namespace
}  // namespace debar::chunking
