#include "chunking/fixed_chunker.hpp"

#include <gtest/gtest.h>

namespace debar::chunking {
namespace {

TEST(FixedChunkerTest, ExactMultiple) {
  FixedChunker chunker(100);
  std::vector<Byte> data(300, 1);
  const auto bounds = chunker.chunk(ByteSpan(data.data(), data.size()));
  ASSERT_EQ(bounds.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(bounds[i].offset, i * 100);
    EXPECT_EQ(bounds[i].size, 100u);
  }
}

TEST(FixedChunkerTest, TrailingPartialBlock) {
  FixedChunker chunker(100);
  std::vector<Byte> data(250, 1);
  const auto bounds = chunker.chunk(ByteSpan(data.data(), data.size()));
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_EQ(bounds.back().size, 50u);
}

TEST(FixedChunkerTest, Empty) {
  FixedChunker chunker;
  EXPECT_TRUE(chunker.chunk(ByteSpan{}).empty());
}

TEST(FixedChunkerTest, DefaultBlockIsExpectedChunkSize) {
  FixedChunker chunker;
  EXPECT_EQ(chunker.expected_chunk_size(), kExpectedChunkSize);
}

TEST(FixedChunkerTest, InputSmallerThanBlock) {
  FixedChunker chunker(1000);
  std::vector<Byte> data(10, 1);
  const auto bounds = chunker.chunk(ByteSpan(data.data(), data.size()));
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_EQ(bounds[0].size, 10u);
}

}  // namespace
}  // namespace debar::chunking
