// GearChunker unit tests: tiling/clamp invariants, parameter
// validation, determinism, normalized size distribution, and the
// degenerate constant-content cases where the gear hash goes flat.
#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "chunking/gear_chunker.hpp"
#include "common/rng.hpp"

namespace debar::chunking {
namespace {

std::vector<Byte> random_bytes(std::uint64_t seed, std::size_t n) {
  Xoshiro256 rng(seed);
  std::vector<Byte> data(n);
  for (auto& b : data) b = static_cast<Byte>(rng());
  return data;
}

ByteSpan span_of(const std::vector<Byte>& v) {
  return ByteSpan(v.data(), v.size());
}

// Every chunker contract at once: bounds tile the input exactly, and
// every chunk except possibly the last respects [min, max].
void check_tiling(const std::vector<ChunkBounds>& bounds, std::size_t n,
                  const GearParams& p) {
  std::uint64_t cursor = 0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    EXPECT_EQ(bounds[i].offset, cursor) << "chunk " << i;
    EXPECT_GT(bounds[i].size, 0u) << "chunk " << i;
    EXPECT_LE(bounds[i].size, p.max_size) << "chunk " << i;
    if (i + 1 < bounds.size()) {
      EXPECT_GE(bounds[i].size, p.min_size) << "chunk " << i;
    }
    cursor += bounds[i].size;
  }
  EXPECT_EQ(cursor, n);
}

TEST(GearChunkerTest, EmptyInput) {
  GearChunker chunker;
  EXPECT_TRUE(chunker.chunk({}).empty());
}

TEST(GearChunkerTest, TinyInputIsOneChunk) {
  GearChunker chunker;
  const auto data = random_bytes(1, 100);
  const auto bounds = chunker.chunk(span_of(data));
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_EQ(bounds[0], (ChunkBounds{0, 100}));
}

TEST(GearChunkerTest, TilesAndClampsRandomData) {
  const GearParams p;
  GearChunker chunker(p);
  for (const std::size_t n : {4096u, 65536u, 1u << 20, (1u << 20) + 17u}) {
    const auto data = random_bytes(n, n);
    check_tiling(chunker.chunk(span_of(data)), n, p);
  }
}

TEST(GearChunkerTest, DeterministicAcrossCallsAndInstances) {
  const auto data = random_bytes(5, 1 << 19);
  GearChunker a;
  GearChunker b;
  const auto first = a.chunk(span_of(data));
  EXPECT_EQ(a.chunk(span_of(data)), first);  // scratch reuse is invisible
  EXPECT_EQ(b.chunk(span_of(data)), first);
}

TEST(GearChunkerTest, MeanChunkSizeNearExpected) {
  // Normalized chunking targets 2^k from both sides; on random data the
  // observed mean should land well within a factor of two.
  const GearParams p;
  GearChunker chunker(p);
  const std::size_t n = 8u << 20;
  const auto data = random_bytes(6, n);
  const auto bounds = chunker.chunk(span_of(data));
  const double mean = static_cast<double>(n) / bounds.size();
  EXPECT_GT(mean, p.expected_size / 2.0);
  EXPECT_LT(mean, p.expected_size * 2.0);
}

TEST(GearChunkerTest, ConstantContentChunksPeriodically) {
  // On constant bytes the gear hash is constant after warm-up, so the
  // discipline pass makes the same decision every chunk: all chunks are
  // the same size (min, expected, or max — whichever the masks pick)
  // except the tail.
  for (const Byte fill : {Byte{0x00}, Byte{0xFF}, Byte{0x61}}) {
    const std::vector<Byte> data(1 << 20, fill);
    GearChunker chunker;
    const auto bounds = chunker.chunk(span_of(data));
    ASSERT_GE(bounds.size(), 2u) << static_cast<int>(fill);
    const std::uint64_t period = bounds[0].size;
    for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
      EXPECT_EQ(bounds[i].size, period)
          << "fill " << static_cast<int>(fill) << " chunk " << i;
    }
  }
}

TEST(GearChunkerTest, NormalizationShrinksForcedCuts) {
  // The whole point of the hard/easy mask split: fewer chunks slam into
  // the max_size clamp than with a single k-bit mask (norm_level 0).
  // With the default 64 KiB max, forced cuts are ~zero for both levels,
  // so pin the effect where it is visible: max at 2x expected, where a
  // plain k-bit mask leaves ~e^-1.7 of chunks hitting the clamp.
  const std::size_t n = 16u << 20;
  const auto data = random_bytes(7, n);
  auto forced_cuts = [&](unsigned norm_level) {
    GearParams p;
    p.max_size = 2 * p.expected_size;
    p.norm_level = norm_level;
    GearChunker chunker(p);
    const auto bounds = chunker.chunk(span_of(data));
    std::size_t forced = 0;
    for (const auto& b : bounds) forced += b.size == p.max_size;
    return forced;
  };
  const std::size_t normalized = forced_cuts(2);
  const std::size_t plain = forced_cuts(0);
  EXPECT_LT(normalized * 2, plain)
      << "normalized " << normalized << " vs plain " << plain;
}

TEST(GearChunkerTest, ParamValidation) {
  EXPECT_TRUE(GearParams{}.valid());
  GearParams p;
  p.expected_size = 8000;  // not a power of two
  EXPECT_FALSE(p.valid());
  p = {};
  p.min_size = 16;  // below the gear window
  EXPECT_FALSE(p.valid());
  p = {};
  p.min_size = p.max_size + 1;
  EXPECT_FALSE(p.valid());
  p = {};
  p.norm_level = 13;  // k = 13 for 8 KiB; norm_level must stay below k
  EXPECT_FALSE(p.valid());
  p = {};
  p.min_size = 64;
  p.expected_size = 256;
  p.max_size = 1024;
  p.norm_level = 3;
  EXPECT_TRUE(p.valid());
}

TEST(GearChunkerTest, MasksMatchNormLevel) {
  GearChunker chunker;  // expected 8 KiB -> k = 13, norm_level 2
  EXPECT_EQ(std::popcount(chunker.hard_mask()), 15);
  EXPECT_EQ(std::popcount(chunker.easy_mask()), 11);
  // Hard implies easy: any position passing the hard test also passes
  // the easy test, so hard anchors are a subset of scan candidates.
  EXPECT_EQ(chunker.hard_mask() & chunker.easy_mask(), chunker.easy_mask());
}

}  // namespace
}  // namespace debar::chunking
