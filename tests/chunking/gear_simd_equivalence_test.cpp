// The acceptance bar for the SIMD chunking lanes: scalar, SSE2, and
// AVX2 scans must produce BYTE-IDENTICAL chunk boundaries and
// fingerprints on every input — seeded random, all-zero, all-0xFF,
// versioned backup-trace-shaped data, lane-width-straddling lengths
// (len % 16/32/64 ± 1), and parameter sets that slam the min/max
// clamps. A lane choice may only ever change throughput.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "chunking/gear_chunker.hpp"
#include "chunking/gear_simd.hpp"
#include "common/rng.hpp"
#include "common/sha1.hpp"
#include "common/simd.hpp"
#include "workload/file_tree.hpp"

namespace debar::chunking {
namespace {

std::vector<SimdPolicy> simd_lanes() {
  std::vector<SimdPolicy> out;
  for (SimdPolicy p : {SimdPolicy::kSse2, SimdPolicy::kAvx2}) {
    if (simd_supported(p)) out.push_back(p);
  }
  return out;
}

std::vector<Byte> random_bytes(std::uint64_t seed, std::size_t n) {
  Xoshiro256 rng(seed);
  std::vector<Byte> data(n);
  for (auto& b : data) b = static_cast<Byte>(rng());
  return data;
}

ByteSpan span_of(const std::vector<Byte>& v) {
  return ByteSpan(v.data(), v.size());
}

// Chunk `data` with each lane and require bounds AND fingerprints to
// match the scalar reference exactly.
void expect_lanes_identical(ByteSpan data, GearParams params,
                            const std::string& what) {
  params.simd = SimdPolicy::kScalar;
  GearChunker scalar(params);
  const std::vector<ChunkBounds> reference = scalar.chunk(data);

  std::vector<ByteSpan> ref_spans;
  ref_spans.reserve(reference.size());
  for (const auto& b : reference) ref_spans.push_back(data.subspan(b.offset, b.size));
  const std::vector<Fingerprint> ref_fps =
      Sha1::hash_batch(ref_spans, SimdPolicy::kScalar);

  for (SimdPolicy lane : simd_lanes()) {
    params.simd = lane;
    GearChunker vec(params);
    const std::vector<ChunkBounds> got = vec.chunk(data);
    ASSERT_EQ(got, reference) << what << " lane " << simd_name(lane);

    std::vector<ByteSpan> spans;
    spans.reserve(got.size());
    for (const auto& b : got) spans.push_back(data.subspan(b.offset, b.size));
    EXPECT_EQ(Sha1::hash_batch(spans, lane), ref_fps)
        << what << " lane " << simd_name(lane);
  }
}

// Candidate-level differential: sharper diagnostics than comparing
// boundaries, since the discipline pass is shared code by design.
void expect_candidates_identical(ByteSpan data, std::uint32_t easy_mask,
                                 const std::string& what) {
  std::vector<detail::GearCandidate> reference;
  detail::gear_scan(data, easy_mask, SimdPolicy::kScalar, reference);
  for (SimdPolicy lane : simd_lanes()) {
    std::vector<detail::GearCandidate> got;
    detail::gear_scan(data, easy_mask, lane, got);
    ASSERT_EQ(got.size(), reference.size())
        << what << " lane " << simd_name(lane);
    EXPECT_EQ(got, reference) << what << " lane " << simd_name(lane);
  }
}

TEST(GearSimdEquivalenceTest, ReportLanes) {
  // Not an assertion — records what this machine actually exercised so
  // a green run on a SSE2-only box is legible in CI logs.
  for (SimdPolicy lane : simd_lanes()) {
    RecordProperty(simd_name(lane), "exercised");
    std::printf("exercising lane: %s\n", simd_name(lane));
  }
  std::printf("auto resolves to: %s\n", simd_name(resolve_simd(SimdPolicy::kAuto)));
}

TEST(GearSimdEquivalenceTest, SeededRandomBuffers) {
  for (const std::size_t n :
       {0u, 1u, 31u, 32u, 33u, 4095u, 4096u, 4097u, 65535u, 65536u, 65537u,
        (1u << 20) - 1, 1u << 20, (1u << 20) + 1}) {
    const auto data = random_bytes(100 + n, n);
    expect_lanes_identical(span_of(data), GearParams{},
                           "random n=" + std::to_string(n));
  }
}

TEST(GearSimdEquivalenceTest, LaneWidthStraddles) {
  // Lengths chosen so every lane's segment split and tail handling is
  // ragged: len % 16, % 32, % 64 hitting ±1 around the alignment.
  std::vector<std::size_t> sizes;
  const std::size_t base = 3u << 19;  // 1.5 MiB, large enough for 8 lanes
  for (const std::size_t align : {16u, 32u, 64u}) {
    const std::size_t down = base - (base % align);  // exact multiple
    sizes.insert(sizes.end(), {down - 1, down, down + 1});
  }
  for (const std::size_t n : sizes) {
    const auto data = random_bytes(200 + n, n);
    expect_lanes_identical(span_of(data), GearParams{},
                           "straddle n=" + std::to_string(n));
    expect_candidates_identical(span_of(data), 0xFFF00000u,
                                "straddle-cand n=" + std::to_string(n));
  }
}

TEST(GearSimdEquivalenceTest, ConstantBuffers) {
  for (const Byte fill : {Byte{0x00}, Byte{0xFF}}) {
    const std::vector<Byte> data(2u << 20, fill);
    expect_lanes_identical(span_of(data), GearParams{},
                           "constant fill=" + std::to_string(fill));
    expect_candidates_identical(span_of(data), 0xFFE00000u,
                                "constant-cand fill=" + std::to_string(fill));
  }
}

TEST(GearSimdEquivalenceTest, TraceShapedVersionedData) {
  // The byte-level analogue of the HUSt backup trace: a synthetic file
  // tree plus two mutated "next day" versions, concatenated per
  // version. Point edits shift content — exactly the inputs CDC exists
  // for — and the lanes must agree on all of them.
  workload::FileTreeParams tree;
  tree.files = 12;
  tree.mean_file_bytes = 96 * KiB;
  tree.seed = 31;
  core::Dataset version = workload::make_dataset(tree);
  for (unsigned day = 0; day < 3; ++day) {
    std::vector<Byte> stream;
    for (const auto& file : version.files) {
      stream.insert(stream.end(), file.content.begin(), file.content.end());
    }
    expect_lanes_identical(span_of(stream), GearParams{},
                           "trace day " + std::to_string(day));
    workload::MutationParams mut;
    mut.seed = 1000 + day;
    version = workload::mutate_dataset(version, mut);
  }
}

TEST(GearSimdEquivalenceTest, MinMaxClampStress) {
  // Small-chunk parameters put many candidates inside the min-size skip
  // and many chunks at the forced max cut, so the discipline pass (and
  // the candidate lists feeding it) get exercised at both clamps.
  const auto data = random_bytes(300, 1u << 20);
  for (const unsigned norm : {0u, 1u, 2u, 3u}) {
    GearParams p;
    p.min_size = 64;
    p.expected_size = 256;
    p.max_size = 1024;
    p.norm_level = norm;
    ASSERT_TRUE(p.valid());
    expect_lanes_identical(span_of(data), p, "clamp norm=" + std::to_string(norm));
  }
  // Repeating 4-byte pattern: candidate deserts force max-size cuts.
  std::vector<Byte> pattern(1u << 20);
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<Byte>("\xDE\xAD\xBE\xEF"[i % 4]);
  }
  expect_lanes_identical(span_of(pattern), GearParams{}, "pattern");
}

TEST(GearSimdEquivalenceTest, WarmupIsExactHistoryHash) {
  // gear_warm primed over the preceding kGearWindow bytes must equal
  // the hash a scalar scan carries to the same position — this is the
  // position-independence property the whole SIMD design rests on.
  const auto data = random_bytes(400, 4096);
  for (const std::uint64_t pos : {32u, 33u, 100u, 1024u, 4000u}) {
    std::vector<detail::GearCandidate> sink;
    // Full mask: candidates only when h == 0, so the sink stays empty
    // and the call is purely a way to roll the hash to `pos`.
    const std::uint32_t rolled =
        detail::gear_scan_scalar(data.data(), 0, pos, 0, 0xFFFFFFFFu, sink);
    const std::uint32_t warmed =
        detail::gear_warm(data.data(), pos - detail::kGearWindow, pos);
    EXPECT_EQ(warmed, rolled) << "pos " << pos;
  }
}

}  // namespace
}  // namespace debar::chunking
