// Dedup-ratio ablation: Rabin vs. gear on a fig6-style versioned
// backup workload. Switching the dedup-1 chunker is only admissible if
// it keeps the dedup ratio — the product the whole system sells —
// essentially unchanged; EXPERIMENTS.md documents a ±2% envelope and
// this test enforces it, plus golden absolute ratios so a silent drift
// in either chunker (table, masks, discipline) fails loudly.
//
// Everything here is seeded and deterministic: the goldens are exact
// re-runnable measurements, not statistical expectations.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "chunking/chunker_config.hpp"
#include "chunking/gear_chunker.hpp"
#include "chunking/rabin_chunker.hpp"
#include "common/sha1.hpp"
#include "workload/file_tree.hpp"

namespace debar::chunking {
namespace {

// Chunk + fingerprint every file of every version; dedup ratio =
// logical bytes / unique chunk bytes (first-seen wins, like a store).
double dedup_ratio(Chunker& chunker,
                   const std::vector<core::Dataset>& versions) {
  std::unordered_set<Fingerprint, FingerprintHash> seen;
  std::uint64_t logical = 0;
  std::uint64_t unique = 0;
  for (const core::Dataset& version : versions) {
    for (const core::FileData& file : version.files) {
      const ByteSpan content(file.content.data(), file.content.size());
      const auto bounds = chunker.chunk(content);
      std::vector<ByteSpan> spans;
      spans.reserve(bounds.size());
      for (const auto& b : bounds) spans.push_back(content.subspan(b.offset, b.size));
      const auto fps = Sha1::hash_batch(spans);
      for (std::size_t i = 0; i < bounds.size(); ++i) {
        logical += bounds[i].size;
        if (seen.insert(fps[i]).second) unique += bounds[i].size;
      }
    }
  }
  return static_cast<double>(logical) / static_cast<double>(unique);
}

std::vector<core::Dataset> make_versions() {
  workload::FileTreeParams tree;
  tree.files = 24;
  tree.mean_file_bytes = 128 * KiB;
  tree.seed = 606;
  tree.shared_fraction = 0.3;
  std::vector<core::Dataset> versions;
  versions.push_back(workload::make_dataset(tree));
  for (unsigned day = 1; day <= 4; ++day) {
    workload::MutationParams mut;
    mut.seed = 700 + day;
    versions.push_back(workload::mutate_dataset(versions.back(), mut));
  }
  return versions;
}

// Measured by GearMatchesRabinWithinEnvelope itself (its printf) on
// the seeded workload; re-measure and update ONLY for a deliberate,
// documented chunking change.
constexpr double kGoldenRabinRatio = 3.177726;
constexpr double kGoldenGearRatio = 3.213653;

TEST(DedupRatioAblationTest, GearMatchesRabinWithinEnvelope) {
  const std::vector<core::Dataset> versions = make_versions();

  RabinChunker rabin;  // paper-default 2K/8K/64K
  GearParams gear_params;  // same size discipline, gear + normalization
  GearChunker gear(gear_params);

  const double rabin_ratio = dedup_ratio(rabin, versions);
  const double gear_ratio = dedup_ratio(gear, versions);
  const double rel_delta = (gear_ratio - rabin_ratio) / rabin_ratio;
  std::printf("rabin ratio  %.6f\ngear ratio   %.6f\nrel delta    %+.4f%%\n",
              rabin_ratio, gear_ratio, 100.0 * rel_delta);
  RecordProperty("rabin_ratio", std::to_string(rabin_ratio));
  RecordProperty("gear_ratio", std::to_string(gear_ratio));

  // The envelope EXPERIMENTS.md promises: switching chunkers moves the
  // dedup ratio by at most 2% on the versioned-tree workload.
  EXPECT_LT(std::abs(rel_delta), 0.02);

  // Goldens: exact deterministic measurements (seeded workload, fixed
  // gear table and Rabin polynomial). A drift here means the chunk
  // boundary function changed — which invalidates every stored
  // fingerprint in a real deployment, so it must never be accidental.
  EXPECT_NEAR(rabin_ratio, kGoldenRabinRatio, 0.0005);
  EXPECT_NEAR(gear_ratio, kGoldenGearRatio, 0.0005);
}

TEST(DedupRatioAblationTest, BothChunkersFindTheVersionRedundancy) {
  // Sanity floor: 5 versions with touch_fraction 0.5 leave well over
  // half the logical bytes duplicated; any chunker scoring below 2x
  // is not actually deduplicating across versions.
  const std::vector<core::Dataset> versions = make_versions();
  RabinChunker rabin;
  GearChunker gear;
  EXPECT_GT(dedup_ratio(rabin, versions), 2.0);
  EXPECT_GT(dedup_ratio(gear, versions), 2.0);
}

}  // namespace
}  // namespace debar::chunking
