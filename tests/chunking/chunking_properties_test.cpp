// Content-definedness properties of gear chunking — the reason CDC
// beats fixed-size chunking on backup workloads:
//
//   * a point insertion perturbs boundaries only locally: cuts well
//     before the edit are untouched, and the cut chain re-synchronizes
//     (shifted by the insert length) within a few chunks downstream;
//   * chunking two halves of a buffer independently re-synchronizes
//     with chunking the whole — boundary decisions depend on content,
//     not on where the scan started.
//
// Both properties hold for Rabin too; they are pinned here for gear
// because the SIMD scan's correctness argument (position-independent
// anchors) is exactly what makes them true.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "chunking/gear_chunker.hpp"
#include "common/rng.hpp"

namespace debar::chunking {
namespace {

std::vector<Byte> random_bytes(std::uint64_t seed, std::size_t n) {
  Xoshiro256 rng(seed);
  std::vector<Byte> data(n);
  for (auto& b : data) b = static_cast<Byte>(rng());
  return data;
}

// Cut positions (chunk end offsets), excluding the trivial final cut at
// data.size() which every chunker emits regardless of content.
std::set<std::uint64_t> cuts(GearChunker& chunker,
                             const std::vector<Byte>& data) {
  std::set<std::uint64_t> out;
  for (const auto& b : chunker.chunk(ByteSpan(data.data(), data.size()))) {
    out.insert(b.offset + b.size);
  }
  out.erase(data.size());
  return out;
}

TEST(ChunkingPropertiesTest, InsertionPerturbsBoundariesOnlyLocally) {
  const GearParams params;
  GearChunker chunker(params);
  const std::size_t n = 4u << 20;
  const std::vector<Byte> base = random_bytes(9000, n);
  const std::set<std::uint64_t> base_cuts = cuts(chunker, base);
  ASSERT_GT(base_cuts.size(), 100u);

  Xoshiro256 rng(9001);
  for (int trial = 0; trial < 8; ++trial) {
    // Keep edits in the first half so the downstream re-sync horizon
    // always has a meaningful number of cuts left to verify.
    const std::size_t at = 1000 + rng.below(n / 2);
    const std::size_t ins_len = 1 + rng.below(300);
    const std::vector<Byte> blob = random_bytes(9100 + trial, ins_len);
    std::vector<Byte> edited = base;
    edited.insert(edited.begin() + at, blob.begin(), blob.end());
    const std::set<std::uint64_t> edited_cuts = cuts(chunker, edited);

    // Upstream: every cut strictly before the edit survives unchanged.
    // (The cut chain up to `at` sees identical bytes and identical
    // chunk-start state, so this is exact, not probabilistic.)
    for (const std::uint64_t c : base_cuts) {
      if (c >= at) break;
      EXPECT_TRUE(edited_cuts.count(c))
          << "trial " << trial << ": upstream cut " << c
          << " lost by insert at " << at;
    }
    // Downstream: past a re-sync horizon, every original cut reappears
    // shifted by exactly the insert length. Anchors are content-defined
    // (32-byte window), so only the discipline chain needs to converge;
    // a few max-size chunks of slack is far more than it ever takes on
    // these seeds.
    const std::uint64_t horizon = at + ins_len + 4 * params.max_size;
    std::size_t checked = 0;
    for (const std::uint64_t c : base_cuts) {
      if (c + ins_len <= horizon) continue;
      EXPECT_TRUE(edited_cuts.count(c + ins_len))
          << "trial " << trial << ": cut " << c << " (insert at " << at
          << " len " << ins_len << ") did not re-sync";
      ++checked;
    }
    EXPECT_GT(checked, 10u) << "trial " << trial
                            << ": horizon left nothing to verify";
  }
}

TEST(ChunkingPropertiesTest, SplitHalvesResynchronizeWithWhole) {
  const GearParams params;
  GearChunker chunker(params);
  const std::size_t n = 4u << 20;
  const std::vector<Byte> whole = random_bytes(9200, n);
  const std::set<std::uint64_t> whole_cuts = cuts(chunker, whole);

  Xoshiro256 rng(9201);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t split = 100 + rng.below(n - 200);
    const std::vector<Byte> a(whole.begin(), whole.begin() + split);
    const std::vector<Byte> b(whole.begin() + split, whole.end());
    std::set<std::uint64_t> stitched = cuts(chunker, a);
    stitched.insert(split);  // the seam itself
    for (const std::uint64_t c : cuts(chunker, b)) stitched.insert(split + c);

    // Before the seam: chunking a prefix agrees with chunking the whole
    // until the whole's chain can "see" the missing suffix — i.e. up to
    // one max_size before the split (the prefix's final forced cut may
    // land early).
    for (const std::uint64_t c : whole_cuts) {
      if (c + params.max_size >= split) break;
      EXPECT_TRUE(stitched.count(c))
          << "trial " << trial << ": prefix cut " << c << " lost, split "
          << split;
    }
    // After the seam: the fresh chain started at `split` re-converges
    // with the whole-buffer chain within a few chunks.
    const std::uint64_t horizon = split + 4 * params.max_size;
    std::size_t checked = 0;
    for (const std::uint64_t c : whole_cuts) {
      if (c <= horizon) continue;
      EXPECT_TRUE(stitched.count(c))
          << "trial " << trial << ": cut " << c << " beyond split " << split
          << " did not re-sync";
      ++checked;
    }
    if (split + 8 * params.max_size < n) {
      EXPECT_GT(checked, 0u) << "trial " << trial;
    }
  }
}

TEST(ChunkingPropertiesTest, DuplicateRegionsYieldDuplicateChunks) {
  // The dedup payoff in miniature: paste the same 1 MiB region into
  // two different surroundings; interior cut-to-cut chunks must agree,
  // so their fingerprints dedup.
  const GearParams params;
  GearChunker chunker(params);
  const std::vector<Byte> shared = random_bytes(9300, 1 * MiB);
  std::vector<Byte> doc_a = random_bytes(9301, 300 * KiB);
  std::vector<Byte> doc_b = random_bytes(9302, 700 * KiB);
  const std::size_t off_a = doc_a.size();
  const std::size_t off_b = doc_b.size();
  doc_a.insert(doc_a.end(), shared.begin(), shared.end());
  doc_b.insert(doc_b.end(), shared.begin(), shared.end());
  doc_a.insert(doc_a.end(), 100, Byte{0x42});
  doc_b.insert(doc_b.end(), 200, Byte{0x17});

  auto interior = [&](const std::vector<Byte>& doc, std::size_t off) {
    // Cuts inside the shared region, relative to its start, away from
    // both edges by the re-sync slack.
    std::set<std::uint64_t> rel;
    for (const std::uint64_t c : cuts(chunker, doc)) {
      if (c > off + 4 * params.max_size &&
          c + params.max_size < off + shared.size()) {
        rel.insert(c - off);
      }
    }
    return rel;
  };
  const auto cuts_a = interior(doc_a, off_a);
  const auto cuts_b = interior(doc_b, off_b);
  EXPECT_GT(cuts_a.size(), 20u);
  EXPECT_EQ(cuts_a, cuts_b);
}

}  // namespace
}  // namespace debar::chunking
