#include "ddfs/ddfs_server.hpp"

#include <gtest/gtest.h>

#include "common/sha1.hpp"

namespace debar::ddfs {
namespace {

DdfsConfig small_config() {
  DdfsConfig cfg;
  cfg.bloom_bits = 1 << 16;
  cfg.bloom_hashes = 4;
  cfg.index_params = {.prefix_bits = 8, .blocks_per_bucket = 2};
  cfg.fp_cache_containers = 4;
  cfg.write_buffer_entries = 1000;
  cfg.io_buckets = 16;
  return cfg;
}

std::vector<Fingerprint> stream(std::uint64_t from, std::uint64_t count) {
  std::vector<Fingerprint> fps;
  for (std::uint64_t i = 0; i < count; ++i) {
    fps.push_back(Sha1::hash_counter(from + i));
  }
  return fps;
}

TEST(DdfsServerTest, FreshStreamIsAllNew) {
  storage::ChunkRepository repo(1);
  DdfsServer ddfs(small_config(), &repo);
  const auto r = ddfs.backup_stream(stream(0, 100), 1024);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().new_chunks, 100u);
  EXPECT_EQ(r.value().duplicate_chunks, 0u);
  // Fresh fingerprints are mostly Bloom negatives (cheap path).
  EXPECT_GT(r.value().bloom_negatives, 90u);
}

TEST(DdfsServerTest, RepeatStreamFullyDeduplicated) {
  storage::ChunkRepository repo(1);
  DdfsServer ddfs(small_config(), &repo);
  ASSERT_TRUE(ddfs.backup_stream(stream(0, 200), 1024).ok());
  ASSERT_TRUE(ddfs.flush_write_buffer().ok());
  const std::uint64_t stored = ddfs.stored_chunks();

  const auto r = ddfs.backup_stream(stream(0, 200), 1024);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().duplicate_chunks, 200u);
  EXPECT_EQ(r.value().new_chunks, 0u);
  EXPECT_EQ(ddfs.stored_chunks(), stored);
}

TEST(DdfsServerTest, LocalityPrefetchServesStreamFromCache) {
  // After one index hit prefetches the container, the rest of the
  // re-played stream must be fingerprint-cache hits (the >99% claim).
  storage::ChunkRepository repo(1);
  DdfsServer ddfs(small_config(), &repo);
  ASSERT_TRUE(ddfs.backup_stream(stream(0, 500), 1024).ok());
  ASSERT_TRUE(ddfs.flush_write_buffer().ok());

  const auto r = ddfs.backup_stream(stream(0, 500), 1024);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().cache_hits, 450u);
  EXPECT_LT(r.value().index_lookups, 20u);
}

TEST(DdfsServerTest, WriteBufferResolvesRecentChunks) {
  storage::ChunkRepository repo(1);
  DdfsServer ddfs(small_config(), &repo);
  ASSERT_TRUE(ddfs.backup_stream(stream(0, 50), 1024).ok());
  // No flush: duplicates must be caught by the write buffer.
  const auto r = ddfs.backup_stream(stream(0, 50), 1024);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().new_chunks, 0u);
  EXPECT_GT(r.value().buffer_hits + r.value().cache_hits, 0u);
}

TEST(DdfsServerTest, BufferFlushesWhenFull) {
  DdfsConfig cfg = small_config();
  cfg.write_buffer_entries = 64;
  storage::ChunkRepository repo(1);
  DdfsServer ddfs(cfg, &repo);
  const auto r = ddfs.backup_stream(stream(0, 300), 1024);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.value().buffer_flushes, 3u);
  EXPECT_GT(ddfs.index().entry_count(), 0u);
}

TEST(DdfsServerTest, RestoreRoundTrip) {
  storage::ChunkRepository repo(1);
  DdfsServer ddfs(small_config(), &repo);
  const auto fps = stream(0, 60);
  ASSERT_TRUE(ddfs.backup_stream(fps, 2048).ok());
  ASSERT_TRUE(ddfs.flush_write_buffer().ok());

  for (const Fingerprint& fp : fps) {
    const auto chunk = ddfs.read_chunk(fp);
    ASSERT_TRUE(chunk.ok()) << chunk.error().to_string();
    EXPECT_EQ(chunk.value().size(), 2048u);
    EXPECT_TRUE(
        std::equal(fp.bytes.begin(), fp.bytes.end(), chunk.value().begin()));
  }
}

TEST(DdfsServerTest, FalsePositiveRateGrowsWithLoad) {
  // An overloaded Bloom filter (m/n << 8) must show false positives,
  // each costing a random index I/O — the Figure 12 failure mode.
  DdfsConfig cfg = small_config();
  cfg.bloom_bits = 2048;  // absurdly small on purpose
  cfg.bloom_hashes = 4;
  cfg.write_buffer_entries = 1 << 20;  // no flush interference
  cfg.fp_cache_containers = 1;
  storage::ChunkRepository repo(1);
  DdfsServer ddfs(cfg, &repo);

  ASSERT_TRUE(ddfs.backup_stream(stream(0, 2000), 512).ok());
  const auto r = ddfs.backup_stream(stream(10000, 2000), 512);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().false_positives, 100u);
  EXPECT_GT(r.value().index_lookups, r.value().false_positives - 1);
}

TEST(DdfsServerTest, NicChargesAllLogicalBytes) {
  // DDFS receives everything over the wire — no source-side filtering.
  storage::ChunkRepository repo(1);
  DdfsServer ddfs(small_config(), &repo);
  ASSERT_TRUE(ddfs.backup_stream(stream(0, 100), 8192).ok());
  const double expected =
      100.0 * (8192.0 + 20.0) / sim::NicProfile::PaperGigabit().bytes_per_sec;
  // SimClock keeps integer nanoseconds; allow per-transfer rounding.
  EXPECT_NEAR(ddfs.nic_seconds(), expected, 100 * 1e-9);
}

}  // namespace
}  // namespace debar::ddfs
