#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace debar {
namespace {

TEST(SplitMix64Test, DeterministicStream) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256Test, DeterministicStream) {
  Xoshiro256 a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256Test, BelowStaysInRange) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256Test, UniformInUnitInterval) {
  Xoshiro256 rng(11);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  // Mean of U(0,1) is 0.5; stderr ~ 0.0009 at N=1e5.
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoshiro256Test, ChanceRespectsProbability) {
  Xoshiro256 rng(13);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.25, 0.01);
  EXPECT_FALSE(Xoshiro256(1).chance(0.0));
}

TEST(Xoshiro256Test, BelowIsRoughlyUniform) {
  Xoshiro256 rng(17);
  constexpr std::uint64_t kBuckets = 8;
  std::array<int, kBuckets> counts{};
  constexpr int kN = 80000;
  for (int i = 0; i < kN; ++i) ++counts[rng.below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kN / kBuckets, kN * 0.01);
  }
}

TEST(Xoshiro256Test, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  SUCCEED();
}

}  // namespace
}  // namespace debar
