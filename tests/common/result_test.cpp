#include "common/result.hpp"

#include <gtest/gtest.h>

#include <string>

namespace debar {
namespace {

TEST(StatusTest, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Errc::kOk);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s(Errc::kNotFound, "fingerprint missing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Errc::kNotFound);
  EXPECT_EQ(s.message(), "fingerprint missing");
  EXPECT_EQ(s.to_string(), "not-found: fingerprint missing");
}

TEST(ResultTest, HoldsValue) {
  const Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.code(), Errc::kOk);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  const Result<int> r(Errc::kFull, "bucket full");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), Errc::kFull);
  EXPECT_EQ(r.error().message, "bucket full");
  EXPECT_FALSE(r.status().ok());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 9);
}

TEST(ErrcTest, AllNamesDistinct) {
  EXPECT_STREQ(errc_name(Errc::kOk), "ok");
  EXPECT_STREQ(errc_name(Errc::kNotFound), "not-found");
  EXPECT_STREQ(errc_name(Errc::kFull), "full");
  EXPECT_STREQ(errc_name(Errc::kCorrupt), "corrupt");
  EXPECT_STREQ(errc_name(Errc::kIoError), "io-error");
  EXPECT_STREQ(errc_name(Errc::kInvalidArgument), "invalid-argument");
  EXPECT_STREQ(errc_name(Errc::kUnsupported), "unsupported");
}

}  // namespace
}  // namespace debar
