#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace debar {
namespace {

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  auto f1 = pool.submit([] { return 6 * 7; });
  auto f2 = pool.submit([] { return std::string("done"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "done");
}

TEST(ThreadPoolTest, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
  }  // destructor joins after all tasks execute
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversAllIndices) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for(100, 8, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroItemsIsNoop) {
  parallel_for(0, 4, [](std::size_t) { FAIL() << "must not be called"; });
  SUCCEED();
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(5, 1, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, MoreThreadsThanItems) {
  std::atomic<int> counter{0};
  parallel_for(3, 16, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

}  // namespace
}  // namespace debar
