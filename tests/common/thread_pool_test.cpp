#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>

namespace debar {
namespace {

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  auto f1 = pool.submit([] { return 6 * 7; });
  auto f2 = pool.submit([] { return std::string("done"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "done");
}

TEST(ThreadPoolTest, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { counter.fetch_add(1); });
    }
  }  // destructor joins after all tasks execute
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SubmitAfterShutdownReportsPoolStopped) {
  ThreadPool pool(2);
  pool.shutdown();
  // The future must fail fast instead of blocking forever on a task no
  // worker will ever pick up (the shutdown race on pending tasks).
  auto fut = pool.submit([] { return 1; });
  EXPECT_THROW(fut.get(), PoolStopped);
  EXPECT_EQ(pool.size(), 0u);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto f = pool.submit([&] { counter.fetch_add(1); });
  pool.shutdown();
  pool.shutdown();  // second call is a no-op, not a double-join
  f.get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, PendingTaskExceptionSurvivesShutdown) {
  // A queued task that throws during the shutdown drain must deliver its
  // exception through the future, not unwind through the worker thread
  // (which would std::terminate the process).
  ThreadPool pool(1);
  auto blocker = pool.submit(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(20)); });
  auto thrower = pool.submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  pool.shutdown();
  blocker.get();
  EXPECT_THROW(thrower.get(), std::runtime_error);
}

TEST(ParallelForTest, CoversAllIndices) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for(100, 8, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroItemsIsNoop) {
  parallel_for(0, 4, [](std::size_t) { FAIL() << "must not be called"; });
  SUCCEED();
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(5, 1, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, MoreThreadsThanItems) {
  std::atomic<int> counter{0};
  parallel_for(3, 16, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 3);
}

TEST(ParallelForTest, PropagatesFirstExceptionAfterJoin) {
  std::atomic<int> ran{0};
  try {
    parallel_for(100, 4, [&](std::size_t i) {
      if (i == 13) throw std::runtime_error("boom");
      ran.fetch_add(1);
    });
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // Remaining indices may be skipped after the failure, but nothing runs
  // after the call returns: the workers are joined before the rethrow.
  EXPECT_LE(ran.load(), 99);
}

}  // namespace
}  // namespace debar
