#include "common/fmt.hpp"

#include <gtest/gtest.h>

namespace debar {
namespace {

TEST(FmtTest, NoPlaceholders) {
  EXPECT_EQ(format("plain text"), "plain text");
}

TEST(FmtTest, SubstitutesInOrder) {
  EXPECT_EQ(format("{} + {} = {}", 1, 2, 3), "1 + 2 = 3");
}

TEST(FmtTest, MixedTypes) {
  EXPECT_EQ(format("{}:{} ({})", "bucket", 42, 3.5), "bucket:42 (3.5)");
}

TEST(FmtTest, MissingArgumentsLeavePlaceholder) {
  EXPECT_EQ(format("a={} b={}", 1), "a=1 b={}");
}

TEST(FmtTest, SurplusArgumentsAppended) {
  EXPECT_EQ(format("x={}", 1, 2, 3), "x=1 2 3");
}

TEST(FmtTest, EmptyPattern) {
  EXPECT_EQ(format(""), "");
}

TEST(FmtTest, UnsignedAndBoolRender) {
  EXPECT_EQ(format("{} {}", std::uint64_t{18446744073709551615ULL}, true),
            "18446744073709551615 1");
}

}  // namespace
}  // namespace debar
