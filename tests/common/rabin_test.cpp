#include "common/rabin.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"

namespace debar {
namespace {

TEST(PolyGf2Test, Degree) {
  EXPECT_EQ(poly_gf2::degree(0), -1);
  EXPECT_EQ(poly_gf2::degree(1), 0);
  EXPECT_EQ(poly_gf2::degree(2), 1);
  EXPECT_EQ(poly_gf2::degree(0x8000000000000000ULL), 63);
  EXPECT_EQ(poly_gf2::degree(kDefaultRabinPoly), 63);
}

TEST(PolyGf2Test, ModBasics) {
  // x^3 + x mod x = 0 ; (x + 1) mod x = 1.
  EXPECT_EQ(poly_gf2::mod(0, 0b1010, 0b10), 0u);
  EXPECT_EQ(poly_gf2::mod(0, 0b11, 0b10), 1u);
  // Anything mod 1 is 0.
  EXPECT_EQ(poly_gf2::mod(0, 0xDEADBEEF, 1), 0u);
}

TEST(PolyGf2Test, MulModDistributesOverXor) {
  Xoshiro256 rng(1);
  const std::uint64_t p = kDefaultRabinPoly;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng(), b = rng(), c = rng();
    const std::uint64_t left = poly_gf2::mulmod(a ^ b, c, p);
    const std::uint64_t right =
        poly_gf2::mulmod(a, c, p) ^ poly_gf2::mulmod(b, c, p);
    EXPECT_EQ(left, right);
  }
}

TEST(PolyGf2Test, DefaultPolyIsIrreducible) {
  EXPECT_TRUE(poly_gf2::irreducible(kDefaultRabinPoly));
}

TEST(PolyGf2Test, KnownReduciblePolysRejected) {
  // x^2 (= 0b100) is x*x; x^2 + 1 = (x+1)^2 over GF(2).
  EXPECT_FALSE(poly_gf2::irreducible(0b100));
  EXPECT_FALSE(poly_gf2::irreducible(0b101));
  // x^4 + x^3 + x^2 + x = x (x+1) (x^2+1).
  EXPECT_FALSE(poly_gf2::irreducible(0b11110));
}

TEST(PolyGf2Test, KnownIrreduciblePolysAccepted) {
  // x^2 + x + 1 and x^3 + x + 1 are the classic small irreducibles.
  EXPECT_TRUE(poly_gf2::irreducible(0b111));
  EXPECT_TRUE(poly_gf2::irreducible(0b1011));
  // CRC-64-ECMA generator x^64 is not representable; use degree-32
  // irreducible x^32 + x^7 + x^3 + x^2 + 1.
  EXPECT_TRUE(poly_gf2::irreducible((std::uint64_t{1} << 32) | 0x8D));
}

TEST(RabinHashTest, AppendMatchesWholeBufferHash) {
  RabinHash h;
  const std::string data = "rolling hash equivalence check 0123456789";
  std::uint64_t fp = 0;
  for (const char c : data) fp = h.append(fp, static_cast<Byte>(c));
  EXPECT_EQ(fp, h.hash(ByteSpan(
                    reinterpret_cast<const Byte*>(data.data()), data.size())));
}

TEST(RabinWindowTest, SlideEqualsHashOfWindowContents) {
  // After sliding N >= window bytes, the fingerprint must equal the plain
  // Rabin hash of the last `window` bytes.
  constexpr std::size_t kWindow = 48;
  RabinWindow w(kWindow);
  RabinHash h;

  Xoshiro256 rng(7);
  std::vector<Byte> data(1024);
  for (auto& b : data) b = static_cast<Byte>(rng());

  std::uint64_t fp = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    fp = w.slide(data[i]);
    if (i + 1 >= kWindow) {
      const std::uint64_t expect =
          h.hash(ByteSpan(data.data() + i + 1 - kWindow, kWindow));
      ASSERT_EQ(fp, expect) << "at position " << i;
    }
  }
}

TEST(RabinWindowTest, ContentDefinedNotPositionDefined) {
  // The same 48-byte window contents yield the same fingerprint no matter
  // where they occur — the property CDC depends on.
  constexpr std::size_t kWindow = 48;
  std::vector<Byte> pattern(kWindow);
  for (std::size_t i = 0; i < kWindow; ++i) {
    pattern[i] = static_cast<Byte>(i * 37 + 1);
  }

  auto fp_after_prefix = [&](std::size_t prefix_len) {
    RabinWindow w(kWindow);
    for (std::size_t i = 0; i < prefix_len; ++i) {
      w.slide(static_cast<Byte>(i * 11 + 3));
    }
    std::uint64_t fp = 0;
    for (const Byte b : pattern) fp = w.slide(b);
    return fp;
  };

  const std::uint64_t base = fp_after_prefix(0);
  EXPECT_EQ(fp_after_prefix(1), base);
  EXPECT_EQ(fp_after_prefix(100), base);
  EXPECT_EQ(fp_after_prefix(1000), base);
}

TEST(RabinWindowTest, ResetRestoresInitialState) {
  RabinWindow w;
  for (int i = 0; i < 100; ++i) w.slide(static_cast<Byte>(i));
  w.reset();
  EXPECT_EQ(w.fingerprint(), 0u);

  RabinWindow fresh;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(w.slide(static_cast<Byte>(i)),
              fresh.slide(static_cast<Byte>(i)));
  }
}

TEST(RabinWindowTest, DifferentPolynomialsDiffer) {
  const std::uint64_t other_poly = (std::uint64_t{1} << 32) | 0x8D;
  ASSERT_TRUE(poly_gf2::irreducible(other_poly));
  RabinWindow a(48, kDefaultRabinPoly);
  RabinWindow b(48, other_poly);
  std::uint64_t fa = 0, fb = 0;
  for (int i = 0; i < 200; ++i) {
    fa = a.slide(static_cast<Byte>(i));
    fb = b.slide(static_cast<Byte>(i));
  }
  EXPECT_NE(fa, fb);
}

}  // namespace
}  // namespace debar
