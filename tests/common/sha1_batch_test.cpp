// Sha1::hash_batch ≡ per-message Sha1::hash, in every SIMD lane this
// machine can run: NIST FIPS 180-1 vectors, padding-edge lengths, and
// seeded random ragged batches. The multi-buffer scheduler and the
// vector round functions never get to disagree with the streaming
// reference silently — this suite is part of `ctest -L chunking`.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/hex.hpp"
#include "common/rng.hpp"
#include "common/sha1.hpp"
#include "common/simd.hpp"

namespace debar {
namespace {

const std::vector<SimdPolicy> kAllPolicies = {
    SimdPolicy::kAuto, SimdPolicy::kScalar, SimdPolicy::kSse2,
    SimdPolicy::kAvx2};

std::vector<SimdPolicy> supported_policies() {
  std::vector<SimdPolicy> out;
  for (SimdPolicy p : kAllPolicies) {
    if (simd_supported(p)) out.push_back(p);
  }
  return out;
}

std::vector<Byte> random_bytes(std::uint64_t seed, std::size_t n) {
  Xoshiro256 rng(seed);
  std::vector<Byte> data(n);
  for (auto& b : data) b = static_cast<Byte>(rng());
  return data;
}

std::string fp_hex(const Fingerprint& fp) {
  return to_hex(ByteSpan(fp.bytes.data(), fp.bytes.size()));
}

TEST(Sha1BatchTest, NistVectorsInEveryLane) {
  // FIPS 180-1 Appendix A/B plus the empty string.
  const std::vector<std::pair<std::string, std::string>> vectors = {
      {"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"},
      {"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"},
      {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
       "84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
      {std::string(1000000, 'a'), "34aa973cd4c4daa4f61eeb2bdbad27316534016f"},
  };
  std::vector<ByteSpan> spans;
  for (const auto& [msg, _] : vectors) {
    spans.emplace_back(reinterpret_cast<const Byte*>(msg.data()), msg.size());
  }
  for (SimdPolicy policy : supported_policies()) {
    const auto fps = Sha1::hash_batch(spans, policy);
    ASSERT_EQ(fps.size(), vectors.size());
    for (std::size_t i = 0; i < vectors.size(); ++i) {
      EXPECT_EQ(fp_hex(fps[i]), vectors[i].second)
          << "lane " << simd_name(policy) << " vector " << i;
    }
  }
}

TEST(Sha1BatchTest, PaddingEdgeLengths) {
  // Lengths that straddle the 0x80/length-word block layout: 55 is the
  // last single-block message, 56 the first needing a pad-only block,
  // 64 an exact block, 119/120 the two-vs-three block boundary.
  const std::vector<std::size_t> lengths = {0,  1,  55,  56,  57,  63, 64,
                                            65, 66, 119, 120, 121, 127, 128};
  std::vector<std::vector<Byte>> bufs;
  std::vector<ByteSpan> spans;
  std::vector<Fingerprint> expected;
  for (std::size_t len : lengths) {
    bufs.push_back(random_bytes(1000 + len, len));
    spans.emplace_back(bufs.back().data(), bufs.back().size());
    expected.push_back(Sha1::hash(spans.back()));
  }
  for (SimdPolicy policy : supported_policies()) {
    EXPECT_EQ(Sha1::hash_batch(spans, policy), expected)
        << "lane " << simd_name(policy);
  }
}

TEST(Sha1BatchTest, RaggedRandomBatchesMatchStreamingReference) {
  // Batch sizes deliberately not multiples of any lane width, message
  // lengths spanning three orders of magnitude, so lanes start and
  // finish at staggered times and the scheduler refill path runs hot.
  Xoshiro256 rng(77);
  for (const std::size_t batch : {1u, 2u, 3u, 5u, 8u, 13u, 31u, 64u}) {
    std::vector<std::vector<Byte>> bufs;
    std::vector<ByteSpan> spans;
    std::vector<Fingerprint> expected;
    for (std::size_t i = 0; i < batch; ++i) {
      const std::size_t len = static_cast<std::size_t>(rng.below(20000));
      bufs.push_back(random_bytes(rng(), len));
      spans.emplace_back(bufs.back().data(), bufs.back().size());
      expected.push_back(Sha1::hash(spans.back()));
    }
    for (SimdPolicy policy : supported_policies()) {
      EXPECT_EQ(Sha1::hash_batch(spans, policy), expected)
          << "lane " << simd_name(policy) << " batch " << batch;
    }
  }
}

TEST(Sha1BatchTest, EmptyBatch) {
  for (SimdPolicy policy : supported_policies()) {
    EXPECT_TRUE(Sha1::hash_batch({}, policy).empty());
  }
}

TEST(Sha1BatchTest, DispatchReportsSupport) {
  // kAuto and kScalar always resolve; a resolved policy must itself be
  // supported, and resolution is stable (idempotent).
  for (SimdPolicy p : kAllPolicies) {
    const SimdPolicy r = resolve_simd(p);
    EXPECT_TRUE(simd_supported(r)) << simd_name(p);
    EXPECT_EQ(resolve_simd(r), r) << simd_name(p);
    EXPECT_NE(r, SimdPolicy::kAuto);
  }
#ifdef DEBAR_DISABLE_SIMD
  EXPECT_EQ(resolve_simd(SimdPolicy::kAuto), SimdPolicy::kScalar);
  EXPECT_FALSE(simd_supported(SimdPolicy::kSse2));
  EXPECT_FALSE(simd_supported(SimdPolicy::kAvx2));
#endif
}

}  // namespace
}  // namespace debar
