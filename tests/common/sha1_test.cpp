#include "common/sha1.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/hex.hpp"

namespace debar {
namespace {

TEST(Sha1Test, EmptyInput) {
  EXPECT_EQ(to_hex(Sha1::hash(std::string_view{})),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, Abc) {
  EXPECT_EQ(to_hex(Sha1::hash(std::string_view{"abc"})),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, QuickBrownFox) {
  EXPECT_EQ(to_hex(Sha1::hash(std::string_view{
                "The quick brown fox jumps over the lazy dog"})),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1Test, TwoBlockMessage) {
  // FIPS 180-1 test vector: 56-char message spanning the padding boundary.
  EXPECT_EQ(
      to_hex(Sha1::hash(std::string_view{
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"})),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, MillionAs) {
  // FIPS 180-1 third test vector, exercised through the streaming API.
  Sha1 h;
  const std::string block(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(std::string_view{block});
  EXPECT_EQ(to_hex(h.finish()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, StreamingSplitInvariance) {
  // The digest must not depend on how the input is split across updates.
  const std::string msg =
      "DEBAR turns random small disk I/Os into large sequential ones.";
  const Fingerprint whole = Sha1::hash(std::string_view{msg});
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha1 h;
    h.update(std::string_view{msg}.substr(0, split));
    h.update(std::string_view{msg}.substr(split));
    EXPECT_EQ(h.finish(), whole) << "split at " << split;
  }
}

TEST(Sha1Test, ResetReusesContext) {
  Sha1 h;
  h.update(std::string_view{"garbage"});
  h.reset();
  h.update(std::string_view{"abc"});
  EXPECT_EQ(to_hex(h.finish()),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, CounterHashingIsDeterministicAndDistinct) {
  const Fingerprint a1 = Sha1::hash_counter(42);
  const Fingerprint a2 = Sha1::hash_counter(42);
  const Fingerprint b = Sha1::hash_counter(43);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
}

TEST(Sha1Test, CounterHashMatchesLittleEndianBytes) {
  // hash_counter must hash the 8 little-endian bytes of the counter.
  const std::uint64_t counter = 0x0123456789ABCDEFULL;
  Byte bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<Byte>(counter >> (8 * i));
  EXPECT_EQ(Sha1::hash_counter(counter),
            Sha1::hash(ByteSpan(bytes, sizeof bytes)));
}

TEST(Sha1Test, PaddingBoundaryLengths) {
  // Lengths around the 55/56/64-byte padding edges all hash and differ.
  std::vector<Fingerprint> seen;
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    const std::string msg(len, 'x');
    const Fingerprint fp = Sha1::hash(std::string_view{msg});
    for (const Fingerprint& prev : seen) EXPECT_NE(fp, prev);
    seen.push_back(fp);
  }
}

}  // namespace
}  // namespace debar
