#include "common/types.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/sha1.hpp"

namespace debar {
namespace {

TEST(FingerprintTest, PrefixBitsExtractsLeadingBits) {
  Fingerprint fp{};
  fp.bytes[0] = 0b10110001;
  fp.bytes[1] = 0b01000000;
  EXPECT_EQ(fp.prefix_bits(1), 0b1u);
  EXPECT_EQ(fp.prefix_bits(4), 0b1011u);
  EXPECT_EQ(fp.prefix_bits(8), 0b10110001u);
  EXPECT_EQ(fp.prefix_bits(10), 0b1011000101u);
  EXPECT_EQ(fp.prefix_bits(0), 0u);
}

TEST(FingerprintTest, Prefix64UsesFirstEightBytes) {
  Fingerprint fp{};
  for (int i = 0; i < 8; ++i) fp.bytes[i] = static_cast<Byte>(i + 1);
  EXPECT_EQ(fp.prefix_bits(64), 0x0102030405060708ULL);
}

TEST(FingerprintTest, OrderingIsLexicographic) {
  Fingerprint a{}, b{};
  a.bytes[0] = 1;
  b.bytes[0] = 2;
  EXPECT_LT(a, b);
  b.bytes[0] = 1;
  b.bytes[19] = 1;
  EXPECT_LT(a, b);
}

TEST(FingerprintTest, OrderingMatchesPrefixOrdering) {
  // Sorting by fingerprint must sort by any prefix length too — the
  // property SIL's merge depends on.
  std::vector<Fingerprint> fps;
  for (std::uint64_t i = 0; i < 200; ++i) {
    fps.push_back(Sha1::hash_counter(i));
  }
  std::sort(fps.begin(), fps.end());
  for (std::size_t i = 1; i < fps.size(); ++i) {
    EXPECT_LE(fps[i - 1].prefix_bits(12), fps[i].prefix_bits(12));
    EXPECT_LE(fps[i - 1].prefix_bits(26), fps[i].prefix_bits(26));
  }
}

TEST(FingerprintTest, HashableInUnorderedContainers) {
  std::unordered_set<Fingerprint> set;
  for (std::uint64_t i = 0; i < 100; ++i) {
    set.insert(Sha1::hash_counter(i));
  }
  EXPECT_EQ(set.size(), 100u);
  EXPECT_TRUE(set.contains(Sha1::hash_counter(50)));
  EXPECT_FALSE(set.contains(Sha1::hash_counter(1000)));
}

TEST(ContainerIdTest, NullSemantics) {
  EXPECT_TRUE(kNullContainer.is_null());
  EXPECT_FALSE(ContainerId{1}.is_null());
  EXPECT_EQ(ContainerId{}.value, 0u);
}

TEST(ContainerIdTest, MaskIs40Bits) {
  EXPECT_EQ(ContainerId::kMask, (std::uint64_t{1} << 40) - 1);
}

TEST(IndexEntryTest, SerializedSizeIs25Bytes) {
  // Section 4.2: an entry is 25 bytes, so 20 fit per 512-byte block.
  EXPECT_EQ(IndexEntry::kSerializedSize, 25u);
  EXPECT_EQ(kEntriesPerIndexBlock * IndexEntry::kSerializedSize + 12,
            kIndexBlockSize);
}

TEST(ConstantsTest, PaperParameters) {
  EXPECT_EQ(kExpectedChunkSize, 8u * 1024);
  EXPECT_EQ(kMinChunkSize, 2u * 1024);
  EXPECT_EQ(kMaxChunkSize, 64u * 1024);
  EXPECT_EQ(kContainerSize, 8u * 1024 * 1024);
}

}  // namespace
}  // namespace debar
