#include "common/channel.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

namespace debar {
namespace {

TEST(ChannelTest, SendReceiveSingleThread) {
  Channel<int> ch;
  EXPECT_TRUE(ch.send(1));
  EXPECT_TRUE(ch.send(2));
  EXPECT_EQ(ch.size(), 2u);
  EXPECT_EQ(ch.receive(), 1);
  EXPECT_EQ(ch.receive(), 2);
}

TEST(ChannelTest, TryReceiveEmptyReturnsNullopt) {
  Channel<int> ch;
  EXPECT_FALSE(ch.try_receive().has_value());
  ch.send(7);
  EXPECT_EQ(ch.try_receive(), 7);
}

TEST(ChannelTest, CloseDrainsThenEnds) {
  Channel<int> ch;
  ch.send(1);
  ch.send(2);
  ch.close();
  EXPECT_FALSE(ch.send(3));  // closed channels refuse sends
  EXPECT_EQ(ch.receive(), 1);
  EXPECT_EQ(ch.receive(), 2);
  EXPECT_FALSE(ch.receive().has_value());
}

TEST(ChannelTest, BlockingReceiveWakesOnSend) {
  Channel<int> ch;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.send(99);
  });
  EXPECT_EQ(ch.receive(), 99);
  producer.join();
}

TEST(ChannelTest, BoundedCapacityBlocksProducer) {
  Channel<int> ch(2);
  ch.send(1);
  ch.send(2);
  std::atomic<bool> third_sent{false};
  std::thread producer([&] {
    ch.send(3);  // blocks until a receive frees a slot
    third_sent = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_sent.load());
  EXPECT_EQ(ch.receive(), 1);
  producer.join();
  EXPECT_TRUE(third_sent.load());
}

TEST(ChannelTest, ManyProducersOneConsumer) {
  Channel<int> ch(64);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ch.send(p * kPerProducer + i);
      }
    });
  }

  std::vector<int> received;
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    const auto v = ch.receive();
    ASSERT_TRUE(v.has_value());
    received.push_back(*v);
  }
  for (auto& t : producers) t.join();

  std::sort(received.begin(), received.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
  }
}

TEST(ChannelTest, CloseWakesBlockedReceiver) {
  Channel<int> ch;
  std::thread receiver([&] { EXPECT_FALSE(ch.receive().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.close();
  receiver.join();
}

TEST(ChannelTest, CloseWakesBlockedSender) {
  // A producer stuck on a full channel must observe close() and fail the
  // send instead of deadlocking — the pipelined SIU teardown relies on
  // this when the merge stage aborts mid-stream.
  Channel<int> ch(1);
  ASSERT_TRUE(ch.send(1));
  std::atomic<bool> send_result{true};
  std::thread producer([&] { send_result = ch.send(2); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.close();
  producer.join();
  EXPECT_FALSE(send_result.load());
  // The queued value is still drainable after close.
  EXPECT_EQ(ch.receive(), 1);
  EXPECT_FALSE(ch.receive().has_value());
}

TEST(ChannelTest, DrainAfterCloseDeliversEverythingInOrder) {
  Channel<int> ch(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ch.send(i));
  ch.close();
  for (int i = 0; i < 10; ++i) {
    const auto v = ch.receive();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);  // FIFO preserved through close
  }
  EXPECT_FALSE(ch.receive().has_value());
  EXPECT_FALSE(ch.try_receive().has_value());
}

TEST(ChannelTest, TryReceiveDrainsClosedChannel) {
  Channel<int> ch;
  ch.send(5);
  ch.close();
  EXPECT_EQ(ch.try_receive(), 5);
  EXPECT_FALSE(ch.try_receive().has_value());
  EXPECT_TRUE(ch.closed());
}

}  // namespace
}  // namespace debar
