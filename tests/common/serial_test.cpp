#include "common/serial.hpp"

#include <gtest/gtest.h>

#include "common/sha1.hpp"

namespace debar {
namespace {

TEST(SerialTest, IntegerRoundTrip) {
  std::vector<Byte> buf;
  ByteWriter w(buf);
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u40(0x123456789AULL);
  w.u64(0x0102030405060708ULL);

  ByteReader r(ByteSpan(buf.data(), buf.size()));
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u40(), 0x123456789AULL);
  EXPECT_EQ(r.u64(), 0x0102030405060708ULL);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SerialTest, LittleEndianLayout) {
  std::vector<Byte> buf;
  ByteWriter w(buf);
  w.u32(0x01020304);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[1], 0x03);
  EXPECT_EQ(buf[2], 0x02);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(SerialTest, U40MasksTo40Bits) {
  std::vector<Byte> buf;
  ByteWriter w(buf);
  w.u40(0xFFFFFFFFFFFFFFFFULL);
  ByteReader r(ByteSpan(buf.data(), buf.size()));
  EXPECT_EQ(r.u40(), ContainerId::kMask);
}

TEST(SerialTest, FingerprintAndContainerIdRoundTrip) {
  const Fingerprint fp = Sha1::hash(std::string_view{"serial"});
  const ContainerId id{0x42424242};

  std::vector<Byte> buf;
  ByteWriter w(buf);
  w.fingerprint(fp);
  w.container_id(id);
  EXPECT_EQ(buf.size(), IndexEntry::kSerializedSize);

  ByteReader r(ByteSpan(buf.data(), buf.size()));
  EXPECT_EQ(r.fingerprint(), fp);
  EXPECT_EQ(r.container_id(), id);
  EXPECT_TRUE(r.ok());
}

TEST(SerialTest, ReaderDetectsTruncation) {
  std::vector<Byte> buf = {1, 2, 3};
  ByteReader r(ByteSpan(buf.data(), buf.size()));
  r.u16();
  EXPECT_TRUE(r.ok());
  r.u32();  // only 1 byte left
  EXPECT_FALSE(r.ok());
}

TEST(SerialTest, TruncatedReadsReturnZeroNotGarbage) {
  std::vector<Byte> buf = {0xFF};
  ByteReader r(ByteSpan(buf.data(), buf.size()));
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_FALSE(r.ok());
  // Subsequent reads stay failed and safe.
  EXPECT_EQ(r.u8(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(SerialTest, VarintRoundTripAndSize) {
  // LEB128 boundaries: each 7 bits of magnitude costs one byte.
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16383,
                                  16384,
                                  0xDEADBEEF,
                                  0xFFFFFFFFFFFFFFFFULL};
  for (const std::uint64_t v : values) {
    std::vector<Byte> buf;
    ByteWriter w(buf);
    w.varint(v);
    EXPECT_EQ(buf.size(), ByteWriter::varint_size(v)) << v;

    ByteReader r(ByteSpan(buf.data(), buf.size()));
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.remaining(), 0u);
  }
  EXPECT_EQ(ByteWriter::varint_size(0), 1u);
  EXPECT_EQ(ByteWriter::varint_size(127), 1u);
  EXPECT_EQ(ByteWriter::varint_size(128), 2u);
  EXPECT_EQ(ByteWriter::varint_size(0xFFFFFFFFFFFFFFFFULL), 10u);
}

TEST(SerialTest, TruncatedVarintFailsSticky) {
  std::vector<Byte> buf;
  ByteWriter w(buf);
  w.varint(300);  // two bytes; keep only the continuation byte
  buf.resize(1);
  ByteReader r(ByteSpan(buf.data(), buf.size()));
  EXPECT_EQ(r.varint(), 0u);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);  // stays failed
  EXPECT_FALSE(r.ok());
}

TEST(SerialTest, ViewAndSkip) {
  std::vector<Byte> buf = {10, 20, 30, 40, 50};
  ByteReader r(ByteSpan(buf.data(), buf.size()));
  r.skip(2);
  const ByteSpan v = r.view(2);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 30);
  EXPECT_EQ(v[1], 40);
  EXPECT_EQ(r.remaining(), 1u);
  r.skip(5);
  EXPECT_FALSE(r.ok());
}

TEST(SerialTest, EmptyViewOnOverrun) {
  std::vector<Byte> buf = {1};
  ByteReader r(ByteSpan(buf.data(), buf.size()));
  EXPECT_TRUE(r.view(2).empty());
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace debar
