#include "common/hex.hpp"

#include <gtest/gtest.h>

#include "common/sha1.hpp"

namespace debar {
namespace {

TEST(HexTest, EncodeBytes) {
  const Byte data[] = {0x00, 0x01, 0x0F, 0x10, 0xAB, 0xFF};
  EXPECT_EQ(to_hex(ByteSpan(data, sizeof data)), "00010f10abff");
}

TEST(HexTest, EncodeEmpty) {
  EXPECT_EQ(to_hex(ByteSpan{}), "");
}

TEST(HexTest, FingerprintRoundTrip) {
  const Fingerprint fp = Sha1::hash(std::string_view{"round trip"});
  const std::string hex = to_hex(fp);
  EXPECT_EQ(hex.size(), 40u);
  const auto parsed = fingerprint_from_hex(hex);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, fp);
}

TEST(HexTest, ParseAcceptsUppercase) {
  const Fingerprint fp = Sha1::hash(std::string_view{"case"});
  std::string hex = to_hex(fp);
  for (char& c : hex) c = static_cast<char>(std::toupper(c));
  const auto parsed = fingerprint_from_hex(hex);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, fp);
}

TEST(HexTest, ParseRejectsBadLength) {
  EXPECT_FALSE(fingerprint_from_hex("abcd").has_value());
  EXPECT_FALSE(fingerprint_from_hex(std::string(39, 'a')).has_value());
  EXPECT_FALSE(fingerprint_from_hex(std::string(41, 'a')).has_value());
  EXPECT_FALSE(fingerprint_from_hex("").has_value());
}

TEST(HexTest, ParseRejectsNonHexCharacters) {
  std::string hex(40, 'a');
  hex[17] = 'g';
  EXPECT_FALSE(fingerprint_from_hex(hex).has_value());
  hex[17] = ' ';
  EXPECT_FALSE(fingerprint_from_hex(hex).has_value());
}

}  // namespace
}  // namespace debar
