#include "workload/file_tree.hpp"

#include <gtest/gtest.h>

namespace debar::workload {
namespace {

TEST(FileTreeTest, GeneratesRequestedFiles) {
  const auto dataset =
      make_dataset({.files = 10, .mean_file_bytes = 64 * KiB, .seed = 1});
  EXPECT_EQ(dataset.files.size(), 10u);
  for (const auto& f : dataset.files) {
    EXPECT_FALSE(f.path.empty());
    EXPECT_GE(f.content.size(), 32u * KiB);
    EXPECT_LE(f.content.size(), 96u * KiB + 1);
  }
}

TEST(FileTreeTest, DeterministicForSeed) {
  const auto a = make_dataset({.files = 5, .mean_file_bytes = 32 * KiB, .seed = 2});
  const auto b = make_dataset({.files = 5, .mean_file_bytes = 32 * KiB, .seed = 2});
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a.files[i].content, b.files[i].content);
  }
  const auto c = make_dataset({.files = 5, .mean_file_bytes = 32 * KiB, .seed = 3});
  EXPECT_NE(a.files[0].content, c.files[0].content);
}

TEST(FileTreeTest, SharedFractionCreatesDuplication) {
  // Count identical 16 KiB blocks across two different datasets from the
  // same seed-derived shared pool.
  const auto heavy = make_dataset({.files = 8, .mean_file_bytes = 128 * KiB,
                                   .seed = 4, .shared_fraction = 0.9});
  const auto none = make_dataset({.files = 8, .mean_file_bytes = 128 * KiB,
                                  .seed = 4, .shared_fraction = 0.0});
  auto distinct_blocks = [](const core::Dataset& d) {
    std::set<std::vector<Byte>> blocks;
    std::uint64_t total = 0;
    for (const auto& f : d.files) {
      for (std::size_t off = 0; off + 16 * KiB <= f.content.size();
           off += 16 * KiB) {
        blocks.insert(std::vector<Byte>(f.content.begin() + off,
                                        f.content.begin() + off + 16 * KiB));
        ++total;
      }
    }
    return std::pair{blocks.size(), total};
  };
  const auto [heavy_distinct, heavy_total] = distinct_blocks(heavy);
  const auto [none_distinct, none_total] = distinct_blocks(none);
  EXPECT_LT(heavy_distinct * 2, heavy_total);  // lots of repeats
  EXPECT_EQ(none_distinct, none_total);        // all unique
}

TEST(FileTreeTest, MutationPreservesMostContent) {
  const auto base = make_dataset({.files = 10, .mean_file_bytes = 64 * KiB,
                                  .seed = 6});
  const auto next = mutate_dataset(base, {.seed = 7, .edits_per_file = 2.0,
                                          .rewrite_fraction = 0.0,
                                          .churn_fraction = 0.0});
  ASSERT_EQ(next.files.size(), base.files.size());
  // Sizes change only slightly (inserts/deletes of <= 64 bytes).
  for (std::size_t i = 0; i < base.files.size(); ++i) {
    const auto delta =
        static_cast<std::int64_t>(next.files[i].content.size()) -
        static_cast<std::int64_t>(base.files[i].content.size());
    EXPECT_LT(std::abs(delta), 1024);
  }
}

TEST(FileTreeTest, ChurnReplacesFiles) {
  const auto base = make_dataset({.files = 40, .mean_file_bytes = 8 * KiB,
                                  .seed = 8});
  const auto next = mutate_dataset(base, {.seed = 9, .churn_fraction = 0.5});
  EXPECT_EQ(next.files.size(), base.files.size());
  std::size_t fresh = 0;
  for (const auto& f : next.files) {
    if (f.path.rfind("new/", 0) == 0) ++fresh;
  }
  EXPECT_GT(fresh, 5u);
}

}  // namespace
}  // namespace debar::workload
