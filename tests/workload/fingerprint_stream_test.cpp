#include "workload/fingerprint_stream.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/sha1.hpp"

namespace debar::workload {
namespace {

TEST(SubspaceRegistryTest, AllocationIsContiguousAndDisjoint) {
  SubspaceRegistry registry(4);
  EXPECT_EQ(registry.subspace_count(), 16u);

  const CounterRun a = registry.allocate(0, 100);
  const CounterRun b = registry.allocate(0, 50);
  EXPECT_EQ(a.start, registry.base(0));
  EXPECT_EQ(b.start, a.start + 100);
  EXPECT_EQ(registry.used(0), 150u);

  const CounterRun c = registry.allocate(1, 10);
  EXPECT_EQ(c.start, registry.base(1));
  // Subspaces never overlap.
  EXPECT_GE(registry.base(1), registry.base(0) + registry.used(0));
}

TEST(SubspaceRegistryTest, SampleUsedStaysWithinUsedRange) {
  SubspaceRegistry registry(2);
  (void)registry.allocate(1, 1000);
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    const CounterRun run = registry.sample_used(1, 64, rng);
    EXPECT_GE(run.start, registry.base(1));
    EXPECT_LE(run.start + run.length, registry.base(1) + 1000);
    EXPECT_EQ(run.length, 64u);
  }
}

TEST(SubspaceRegistryTest, SampleOfUntouchedSubspaceIsEmpty) {
  SubspaceRegistry registry(2);
  Xoshiro256 rng(1);
  EXPECT_EQ(registry.sample_used(0, 10, rng).length, 0u);
}

TEST(FingerprintsOfTest, MatchesCounterHashes) {
  const auto fps = fingerprints_of({100, 3});
  ASSERT_EQ(fps.size(), 3u);
  EXPECT_EQ(fps[0], Sha1::hash_counter(100));
  EXPECT_EQ(fps[2], Sha1::hash_counter(102));
}

TEST(VersionedStreamTest, FirstVersionIsAllNew) {
  SubspaceRegistry registry(4);
  VersionedStream stream(&registry, {.stream_id = 0, .seed = 1});
  const auto v1 = stream.next_version(1000);
  EXPECT_EQ(v1.size(), 1000u);
  std::unordered_set<Fingerprint> unique(v1.begin(), v1.end());
  EXPECT_EQ(unique.size(), 1000u);  // no history to duplicate from
}

TEST(VersionedStreamTest, LaterVersionsHitTargetDuplication) {
  SubspaceRegistry registry(4);
  VersionedStream stream(&registry,
                         {.stream_id = 0, .dup_fraction = 0.9, .seed = 2});
  (void)stream.next_version(5000);

  const auto v2 = stream.next_version(5000);
  // Count fingerprints that already existed (drawn from used ranges).
  const std::uint64_t used_before = registry.used(0);
  std::uint64_t new_counters = registry.used(0);
  (void)new_counters;
  // Measure duplication directly: fingerprints of v2 that were in v1's
  // counter space [0, used_before_v2_allocations) — approximate by
  // checking how much the subspace grew.
  const auto v3 = stream.next_version(5000);
  const std::uint64_t growth = registry.used(0) - used_before;
  // ~10% of 5000 should be fresh counters (dup_fraction = 0.9).
  EXPECT_LT(growth, 5000u * 25 / 100);
  EXPECT_GT(growth, 0u);
  (void)v2;
  (void)v3;
}

TEST(VersionedStreamTest, CrossStreamDuplicationSharesCounters) {
  SubspaceRegistry registry(1);  // 2^1 = two subspaces: streams 0 and 1
  VersionedStream a(&registry, {.stream_id = 0, .dup_fraction = 0.9,
                                .cross_fraction = 1.0, .seed = 3});
  VersionedStream b(&registry, {.stream_id = 1, .dup_fraction = 0.9,
                                .cross_fraction = 1.0, .seed = 4});
  const auto va = a.next_version(2000);
  const auto vb = b.next_version(2000);

  std::unordered_set<Fingerprint> sa(va.begin(), va.end());
  std::uint64_t shared = 0;
  for (const Fingerprint& fp : vb) {
    if (sa.contains(fp)) ++shared;
  }
  // With cross_fraction=1, most of b's duplicates come from a's subspace.
  EXPECT_GT(shared, 500u);
}

TEST(VersionedStreamTest, DeterministicForSeed) {
  SubspaceRegistry r1(4), r2(4);
  VersionedStream s1(&r1, {.stream_id = 2, .seed = 77});
  VersionedStream s2(&r2, {.stream_id = 2, .seed = 77});
  EXPECT_EQ(s1.next_version(500), s2.next_version(500));
  EXPECT_EQ(s1.next_version(500), s2.next_version(500));
}

TEST(VersionedStreamTest, SegmentsPreserveLocality) {
  // Duplicate fingerprints arrive in contiguous counter runs, giving the
  // stream the duplicate locality SISL exploits. Verify that consecutive
  // duplicates are mostly counter-adjacent.
  SubspaceRegistry registry(4);
  VersionedStream stream(&registry, {.stream_id = 0, .dup_fraction = 1.0,
                                     .mean_segment = 64, .seed = 5});
  (void)stream.next_version(2000);
  const auto v2 = stream.next_version(2000);

  // Reverse-engineer counters via a map built from the subspace.
  std::unordered_map<Fingerprint, std::uint64_t, FingerprintHash> counter_of;
  for (std::uint64_t c = registry.base(0); c < registry.base(0) + 4000; ++c) {
    counter_of[Sha1::hash_counter(c)] = c;
  }
  std::uint64_t adjacent = 0, total = 0;
  for (std::size_t i = 1; i < v2.size(); ++i) {
    const auto a = counter_of.find(v2[i - 1]);
    const auto b = counter_of.find(v2[i]);
    if (a != counter_of.end() && b != counter_of.end()) {
      ++total;
      if (b->second == a->second + 1) ++adjacent;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(adjacent) / static_cast<double>(total), 0.9);
}

}  // namespace
}  // namespace debar::workload
