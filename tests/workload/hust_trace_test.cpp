#include "workload/hust_trace.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace debar::workload {
namespace {

TEST(HustTraceTest, FullBackupDays) {
  EXPECT_TRUE(HustTrace::is_full_backup_day(1));
  EXPECT_TRUE(HustTrace::is_full_backup_day(8));
  EXPECT_TRUE(HustTrace::is_full_backup_day(29));
  EXPECT_FALSE(HustTrace::is_full_backup_day(2));
  EXPECT_FALSE(HustTrace::is_full_backup_day(7));
}

TEST(HustTraceTest, GeneratesJobsForEveryClient) {
  HustTrace trace({.days = 31, .clients = 8, .mean_daily_chunks = 256});
  const auto jobs = trace.day(1);
  ASSERT_EQ(jobs.size(), 8u);
  for (std::size_t c = 0; c < 8; ++c) {
    EXPECT_EQ(jobs[c].client, c);
    EXPECT_GT(jobs[c].stream.size(), 0u);
  }
}

TEST(HustTraceTest, IncrementalDaysAreSmaller) {
  HustTrace trace({.days = 31, .clients = 4, .mean_daily_chunks = 1024,
                   .seed = 42});
  std::uint64_t full_total = 0, incr_total = 0, fulls = 0, incrs = 0;
  for (unsigned d = 1; d <= 14; ++d) {
    const auto jobs = trace.day(d);
    std::uint64_t day_total = 0;
    for (const auto& j : jobs) day_total += j.stream.size();
    if (HustTrace::is_full_backup_day(d)) {
      full_total += day_total;
      ++fulls;
    } else {
      incr_total += day_total;
      ++incrs;
    }
  }
  EXPECT_GT(full_total / fulls, incr_total / incrs);
}

TEST(HustTraceTest, AdjacentVersionOverlapIsHigh) {
  // A full-backup day repeats most of the previous version — the property
  // the preliminary filter exploits.
  HustTrace trace({.days = 31, .clients = 1, .mean_daily_chunks = 4096,
                   .seed = 9});
  const auto day1 = trace.day(1);
  std::unordered_set<Fingerprint> prev(day1[0].stream.begin(),
                                       day1[0].stream.end());

  // Days 2..7 incremental, day 8 full.
  std::vector<DayJob> day_jobs;
  for (unsigned d = 2; d <= 7; ++d) {
    day_jobs = trace.day(d);
    prev.clear();
    prev.insert(day_jobs[0].stream.begin(), day_jobs[0].stream.end());
  }
  const auto day8 = trace.day(8);
  std::uint64_t overlap = 0;
  for (const Fingerprint& fp : day8[0].stream) {
    if (prev.contains(fp)) ++overlap;
  }
  const double frac =
      static_cast<double>(overlap) / static_cast<double>(day8[0].stream.size());
  EXPECT_GT(frac, 0.6);  // configured full_adjacent = 0.87 (minus fallbacks)
}

TEST(HustTraceTest, NewDataFractionRoughlyTenPercent) {
  // Paper: ~10% new data per day in steady state. Track distinct
  // fingerprints over the month vs total logical fingerprints.
  HustTrace trace({.days = 31, .clients = 2, .mean_daily_chunks = 1024,
                   .seed = 3});
  std::unordered_set<Fingerprint> global;
  std::uint64_t logical = 0;
  for (unsigned d = 1; d <= 31; ++d) {
    for (const auto& job : trace.day(d)) {
      logical += job.stream.size();
      global.insert(job.stream.begin(), job.stream.end());
    }
  }
  const double overall_ratio =
      static_cast<double>(logical) / static_cast<double>(global.size());
  // Paper's HUSt month: ~9.4:1 cumulative compression. Accept 5..16.
  EXPECT_GT(overall_ratio, 5.0);
  EXPECT_LT(overall_ratio, 16.0);
}

TEST(HustTraceTest, DeterministicForSeed) {
  HustTrace a({.clients = 2, .mean_daily_chunks = 128, .seed = 5});
  HustTrace b({.clients = 2, .mean_daily_chunks = 128, .seed = 5});
  for (unsigned d = 1; d <= 3; ++d) {
    const auto ja = a.day(d);
    const auto jb = b.day(d);
    ASSERT_EQ(ja.size(), jb.size());
    for (std::size_t c = 0; c < ja.size(); ++c) {
      EXPECT_EQ(ja[c].stream, jb[c].stream);
    }
  }
}

TEST(HustTraceTest, ClientsUseDisjointNewCounterSpaces) {
  HustTrace trace({.clients = 4, .mean_daily_chunks = 512, .seed = 8});
  const auto day1 = trace.day(1);
  // Day 1 has no cross-client history: a fingerprint may repeat *within*
  // a client's stream (intra-day duplication) but never across clients,
  // whose fresh counters come from disjoint subspaces.
  std::vector<std::unordered_set<Fingerprint>> per_client(4);
  for (const auto& job : day1) {
    per_client[job.client].insert(job.stream.begin(), job.stream.end());
  }
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = a + 1; b < 4; ++b) {
      for (const Fingerprint& fp : per_client[a]) {
        EXPECT_FALSE(per_client[b].contains(fp));
      }
    }
  }
}

}  // namespace
}  // namespace debar::workload
