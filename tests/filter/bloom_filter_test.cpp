#include "filter/bloom_filter.hpp"

#include <gtest/gtest.h>

#include "common/sha1.hpp"

namespace debar::filter {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bloom(1 << 16, 4);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    bloom.insert(Sha1::hash_counter(i));
  }
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bloom.maybe_contains(Sha1::hash_counter(i)));
  }
}

TEST(BloomFilterTest, EmptyFilterRejectsEverything) {
  BloomFilter bloom(1 << 12, 4);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(bloom.maybe_contains(Sha1::hash_counter(i)));
  }
}

TEST(BloomFilterTest, MeasuredFprMatchesAnalytic) {
  // m/n = 8, k = 4: analytic fpr ~ 2.4%.
  constexpr std::uint64_t kN = 20000;
  BloomFilter bloom(kN * 8, 4);
  for (std::uint64_t i = 0; i < kN; ++i) {
    bloom.insert(Sha1::hash_counter(i));
  }
  std::uint64_t false_positives = 0;
  constexpr std::uint64_t kProbes = 50000;
  for (std::uint64_t i = 0; i < kProbes; ++i) {
    if (bloom.maybe_contains(Sha1::hash_counter(kN + 1000 + i))) {
      ++false_positives;
    }
  }
  const double measured = static_cast<double>(false_positives) / kProbes;
  const double analytic = bloom.false_positive_rate();
  EXPECT_NEAR(measured, analytic, 0.01);
}

TEST(BloomFilterTest, PaperFigure12Regime) {
  // Section 6.1.3: 1 GB filter, 8 KB chunks. At m/n = 8 the minimum fpr
  // is ~2%; at m/n = 4 it rockets to ~14.6% (with optimal k). Those two
  // operating points are the whole Figure 12 story.
  const double at_8tb = BloomFilter::false_positive_rate(
      /*n=*/1, /*m=*/8, /*k=*/6);  // k ~ (m/n) ln2 ~ 5.5
  EXPECT_NEAR(at_8tb, 0.02, 0.012);
  const double at_16tb = BloomFilter::false_positive_rate(1, 4, 3);
  EXPECT_NEAR(at_16tb, 0.146, 0.03);
}

TEST(BloomFilterTest, FillRatioGrowsWithInsertions) {
  BloomFilter bloom(1 << 12, 4);
  EXPECT_DOUBLE_EQ(bloom.fill_ratio(), 0.0);
  for (std::uint64_t i = 0; i < 100; ++i) {
    bloom.insert(Sha1::hash_counter(i));
  }
  const double after_100 = bloom.fill_ratio();
  EXPECT_GT(after_100, 0.0);
  for (std::uint64_t i = 100; i < 500; ++i) {
    bloom.insert(Sha1::hash_counter(i));
  }
  EXPECT_GT(bloom.fill_ratio(), after_100);
}

TEST(BloomFilterTest, FprMonotoneInLoad) {
  double prev = 0;
  for (const std::uint64_t n : {100u, 200u, 400u, 800u}) {
    const double fpr = BloomFilter::false_positive_rate(n, 4096, 4);
    EXPECT_GT(fpr, prev);
    prev = fpr;
  }
}

TEST(BloomFilterTest, TracksInsertedCount) {
  BloomFilter bloom(1 << 10, 2);
  for (std::uint64_t i = 0; i < 7; ++i) bloom.insert(Sha1::hash_counter(i));
  EXPECT_EQ(bloom.inserted(), 7u);
}

}  // namespace
}  // namespace debar::filter
