#include "filter/preliminary_filter.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/sha1.hpp"

namespace debar::filter {
namespace {

Fingerprint fp(std::uint64_t i) { return Sha1::hash_counter(i); }

TEST(PreliminaryFilterTest, AdmitsUnseenSuppressesSeen) {
  PreliminaryFilter filter({.hash_bits = 8, .capacity = 100});
  EXPECT_TRUE(filter.admit(fp(1)));   // unseen: transfer
  EXPECT_FALSE(filter.admit(fp(1)));  // intra-job duplicate: suppressed
  EXPECT_TRUE(filter.admit(fp(2)));
  EXPECT_EQ(filter.stats().admitted, 2u);
  EXPECT_EQ(filter.stats().suppressed, 1u);
}

TEST(PreliminaryFilterTest, SeededFingerprintsSuppressTransfer) {
  // Job-chain semantics: previous version's fingerprints stop the
  // transfer, but the fingerprint still becomes 'new' (referenced).
  PreliminaryFilter filter({.hash_bits = 8, .capacity = 100});
  filter.seed(fp(10));
  EXPECT_FALSE(filter.admit(fp(10)));
  const auto undetermined = filter.collect_undetermined();
  ASSERT_EQ(undetermined.size(), 1u);
  EXPECT_EQ(undetermined[0], fp(10));
}

TEST(PreliminaryFilterTest, UnreferencedSeedsNotCollected) {
  PreliminaryFilter filter({.hash_bits = 8, .capacity = 100});
  filter.seed(fp(20));
  filter.seed(fp(21));
  EXPECT_TRUE(filter.admit(fp(22)));
  const auto undetermined = filter.collect_undetermined();
  ASSERT_EQ(undetermined.size(), 1u);
  EXPECT_EQ(undetermined[0], fp(22));
}

TEST(PreliminaryFilterTest, CollectIsSortedUniqueAndClearsMarks) {
  PreliminaryFilter filter({.hash_bits = 8, .capacity = 100});
  for (std::uint64_t i = 0; i < 50; ++i) {
    (void)filter.admit(fp(i % 10));  // heavy repetition
  }
  auto undetermined = filter.collect_undetermined();
  EXPECT_EQ(undetermined.size(), 10u);
  EXPECT_TRUE(std::is_sorted(undetermined.begin(), undetermined.end()));
  // Marks cleared: a second collect is empty.
  EXPECT_TRUE(filter.collect_undetermined().empty());
}

TEST(PreliminaryFilterTest, SeedingStopsAtCapacity) {
  PreliminaryFilter filter({.hash_bits = 4, .capacity = 10});
  for (std::uint64_t i = 0; i < 20; ++i) filter.seed(fp(i));
  EXPECT_EQ(filter.size(), 10u);
  EXPECT_EQ(filter.stats().evictions, 0u);  // seeding never evicts
}

TEST(PreliminaryFilterTest, AdmitEvictsAtCapacity) {
  PreliminaryFilter filter({.hash_bits = 4, .capacity = 10});
  for (std::uint64_t i = 0; i < 25; ++i) {
    EXPECT_TRUE(filter.admit(fp(i)));
  }
  EXPECT_EQ(filter.size(), 10u);
  EXPECT_EQ(filter.stats().evictions, 15u);
}

TEST(PreliminaryFilterTest, EvictedNewFingerprintsAreNotLost) {
  // Dropping a 'new' node would orphan its chunk in the chunk log; the
  // filter must flush it to the undetermined set instead.
  PreliminaryFilter filter({.hash_bits = 4, .capacity = 8});
  constexpr std::uint64_t kN = 30;
  for (std::uint64_t i = 0; i < kN; ++i) {
    EXPECT_TRUE(filter.admit(fp(i)));
  }
  const auto undetermined = filter.collect_undetermined();
  EXPECT_EQ(undetermined.size(), kN);  // every admitted fp is present
  EXPECT_GT(filter.stats().evicted_new, 0u);
}

TEST(PreliminaryFilterTest, LruKeepsHotEntriesResident) {
  PreliminaryFilter filter({.hash_bits = 4, .capacity = 4});
  (void)filter.admit(fp(1));
  (void)filter.admit(fp(2));
  (void)filter.admit(fp(3));
  (void)filter.admit(fp(4));
  // Touch fp(1) so it's hot, then overflow by one.
  (void)filter.admit(fp(1));
  (void)filter.admit(fp(5));
  EXPECT_TRUE(filter.contains(fp(1)));   // hot: survived
  EXPECT_FALSE(filter.contains(fp(2)));  // coldest: evicted
}

TEST(PreliminaryFilterTest, ClearEmptiesEverything) {
  PreliminaryFilter filter({.hash_bits = 6, .capacity = 50});
  for (std::uint64_t i = 0; i < 20; ++i) (void)filter.admit(fp(i));
  filter.clear();
  EXPECT_EQ(filter.size(), 0u);
  EXPECT_FALSE(filter.contains(fp(1)));
  EXPECT_TRUE(filter.collect_undetermined().empty());
  // Usable after clear.
  EXPECT_TRUE(filter.admit(fp(100)));
}

TEST(PreliminaryFilterTest, SuppressionSavesExactlyDuplicateBytes) {
  // The dedup-1 bandwidth-saving property the paper measures via the
  // dedup-1 compression ratio.
  PreliminaryFilter filter({.hash_bits = 8, .capacity = 1000});
  std::uint64_t transferred = 0, total = 0;
  for (std::uint64_t i = 0; i < 300; ++i) {
    total += 8192;
    if (filter.admit(fp(i % 100))) transferred += 8192;
  }
  EXPECT_EQ(transferred, 100u * 8192);
  EXPECT_EQ(total / transferred, 3u);  // 3:1 dedup-1 ratio
}

TEST(PreliminaryFilterTest, ChainCollisionsResolvedCorrectly) {
  // 1-bit table: everything collides into two buckets; the chain must
  // still distinguish all fingerprints.
  PreliminaryFilter filter({.hash_bits = 1, .capacity = 64});
  for (std::uint64_t i = 0; i < 40; ++i) {
    EXPECT_TRUE(filter.admit(fp(i)));
  }
  for (std::uint64_t i = 0; i < 40; ++i) {
    EXPECT_TRUE(filter.contains(fp(i)));
    EXPECT_FALSE(filter.admit(fp(i)));
  }
}

}  // namespace
}  // namespace debar::filter
