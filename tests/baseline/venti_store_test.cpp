#include "baseline/venti_store.hpp"

#include <gtest/gtest.h>

#include "common/sha1.hpp"

namespace debar::baseline {
namespace {

TEST(VentiStoreTest, UpdateThenLookup) {
  VentiStore venti({.prefix_bits = 8, .blocks_per_bucket = 2});
  const Fingerprint fp = Sha1::hash_counter(1);
  ASSERT_TRUE(venti.update(fp, ContainerId{3}).ok());
  const auto r = venti.lookup(fp);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), ContainerId{3});
  EXPECT_EQ(venti.stats().lookups, 1u);
  EXPECT_EQ(venti.stats().updates, 1u);
}

TEST(VentiStoreTest, EveryOperationCostsRandomIo) {
  VentiStore venti({.prefix_bits = 10, .blocks_per_bucket = 1},
                   {.seek_seconds = 0.001, .transfer_bytes_per_sec = 1e9});
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(venti.update(Sha1::hash_counter(i), ContainerId{i + 1}).ok());
  }
  // Each update = read bucket + write bucket; with uniform fingerprints
  // virtually every access repositions the head.
  EXPECT_GT(venti.seconds(), 100 * 0.001);
}

TEST(VentiStoreTest, ModeledRatesMatchPaper) {
  // Figure 11: ~522 random lookups/s and ~270 random updates/s on the
  // paper's RAID. Updates are about half the lookup rate (2 I/Os).
  const auto profile = sim::DiskProfile::PaperRaid();
  // The paper's prototype uses 512-byte bucket I/O for the random case.
  const double lookups =
      VentiStore::modeled_lookups_per_second(profile, 512);
  const double updates =
      VentiStore::modeled_updates_per_second(profile, 512);
  EXPECT_NEAR(lookups, 522.0, 5.0);
  EXPECT_NEAR(updates, 261.0, 15.0);  // paper: 270
}

TEST(VentiStoreTest, MeasuredRateTracksModeledRate) {
  // Rate measured over *hit* lookups (one bucket read each) — the common
  // case in a dedup workload. Misses cost up to three reads because the
  // index also consults the overflow neighbours.
  VentiStore venti({.prefix_bits = 12, .blocks_per_bucket = 1},
                   sim::DiskProfile::PaperRaid());
  constexpr std::uint64_t kN = 200;
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(venti.update(Sha1::hash_counter(i), ContainerId{i + 1}).ok());
  }
  venti.reset_clock();
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(venti.lookup(Sha1::hash_counter(i)).ok());
  }
  const double measured_rate = kN / venti.seconds();
  const double modeled =
      VentiStore::modeled_lookups_per_second(sim::DiskProfile::PaperRaid(),
                                             512);
  EXPECT_NEAR(measured_rate, modeled, modeled * 0.2);
}

}  // namespace
}  // namespace debar::baseline
