// Persistent chunk repository: framed per-node container logs with
// write-through, tombstoned removals, and reopen-by-scan.
#include <gtest/gtest.h>

#include "common/sha1.hpp"
#include "core/backup_engine.hpp"
#include "storage/chunk_repository.hpp"

namespace debar::storage {
namespace {

Container make_container(std::uint64_t fp_base, std::size_t chunks) {
  Container c(64 * 1024);
  for (std::size_t i = 0; i < chunks; ++i) {
    const Fingerprint fp = Sha1::hash_counter(fp_base + i);
    const auto payload = core::BackupEngine::synthetic_payload(fp, 700);
    c.try_append(fp, ByteSpan(payload.data(), payload.size()));
  }
  return c;
}

/// Build N in-memory devices and return raw pointers for later snapshot.
std::vector<std::unique_ptr<BlockDevice>> make_devices(
    std::size_t n, std::vector<MemBlockDevice*>* raw) {
  std::vector<std::unique_ptr<BlockDevice>> devices;
  for (std::size_t i = 0; i < n; ++i) {
    auto d = std::make_unique<MemBlockDevice>();
    if (raw != nullptr) raw->push_back(d.get());
    devices.push_back(std::move(d));
  }
  return devices;
}

std::vector<std::vector<Byte>> snapshot(
    const std::vector<MemBlockDevice*>& raw) {
  std::vector<std::vector<Byte>> images;
  for (const MemBlockDevice* d : raw) {
    images.emplace_back(d->contents().begin(), d->contents().end());
  }
  return images;
}

std::vector<std::unique_ptr<BlockDevice>> devices_from(
    const std::vector<std::vector<Byte>>& images) {
  std::vector<std::unique_ptr<BlockDevice>> devices;
  for (const auto& image : images) {
    auto d = std::make_unique<MemBlockDevice>();
    EXPECT_TRUE(d->write(0, ByteSpan(image.data(), image.size())).ok());
    devices.push_back(std::move(d));
  }
  return devices;
}

TEST(PersistentRepositoryTest, SurvivesReopen) {
  std::vector<MemBlockDevice*> raw;
  std::vector<std::vector<Byte>> images;
  std::vector<std::pair<ContainerId, Fingerprint>> stored;
  {
    ChunkRepository repo(make_devices(2, &raw));
    for (int c = 0; c < 5; ++c) {
      const std::uint64_t base = static_cast<std::uint64_t>(c) * 100;
      const ContainerId id = repo.append(make_container(base, 8));
      stored.emplace_back(id, Sha1::hash_counter(base));
    }
    images = snapshot(raw);
  }

  auto reopened = ChunkRepository::open(devices_from(images));
  ASSERT_TRUE(reopened.ok()) << reopened.error().to_string();
  ChunkRepository& repo = *reopened.value();
  EXPECT_EQ(repo.container_count(), 5u);
  for (const auto& [id, first_fp] : stored) {
    const auto container = repo.read(id);
    ASSERT_TRUE(container.ok());
    EXPECT_TRUE(container.value().find(first_fp).has_value());
  }
  // IDs continue where they left off.
  const ContainerId next = repo.append(make_container(900, 3));
  EXPECT_EQ(next.value, 6u);
}

TEST(PersistentRepositoryTest, TombstonedContainersStayGone) {
  std::vector<MemBlockDevice*> raw;
  std::vector<std::vector<Byte>> images;
  ContainerId removed, kept;
  {
    ChunkRepository repo(make_devices(2, &raw));
    removed = repo.append(make_container(0, 6));
    kept = repo.append(make_container(100, 6));
    ASSERT_TRUE(repo.remove(removed).ok());
    images = snapshot(raw);
  }

  auto reopened = ChunkRepository::open(devices_from(images));
  ASSERT_TRUE(reopened.ok()) << reopened.error().to_string();
  EXPECT_FALSE(reopened.value()->contains(removed));
  EXPECT_TRUE(reopened.value()->contains(kept));
  EXPECT_EQ(reopened.value()->container_count(), 1u);
  // The removed ID is not reused.
  EXPECT_GT(reopened.value()->append(make_container(200, 2)).value,
            kept.value);
}

TEST(PersistentRepositoryTest, PinnedPlacementSurvivesReopen) {
  std::vector<MemBlockDevice*> raw;
  std::vector<std::vector<Byte>> images;
  ContainerId pinned;
  {
    ChunkRepository repo(make_devices(3, &raw));
    (void)repo.append(make_container(0, 4));          // node 0
    pinned = repo.append(make_container(100, 4), 2);  // pinned to node 2
    images = snapshot(raw);
  }
  auto reopened = ChunkRepository::open(devices_from(images));
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->node_of(pinned), 2u);
  EXPECT_TRUE(reopened.value()->read(pinned).ok());
}

TEST(PersistentRepositoryTest, OpenTruncatesOverrunningTailFrame) {
  // A frame whose declared length overruns the device is exactly what a
  // crash mid-append leaves behind. Reopen must NOT reject the node:
  // it discards the torn tail and keeps every earlier (acked) frame.
  std::vector<MemBlockDevice*> raw;
  std::vector<std::vector<Byte>> images;
  ContainerId first;
  {
    ChunkRepository repo(make_devices(1, &raw));
    first = repo.append(make_container(0, 4));
    (void)repo.append(make_container(100, 4));
    images = snapshot(raw);
  }
  // Corrupt the SECOND frame's length field to overrun the device
  // (frame layout: [u32 magic][u32 length][image]).
  const std::uint32_t len0 = static_cast<std::uint32_t>(images[0][4]) |
                             static_cast<std::uint32_t>(images[0][5]) << 8 |
                             static_cast<std::uint32_t>(images[0][6]) << 16 |
                             static_cast<std::uint32_t>(images[0][7]) << 24;
  const std::size_t second_len = 8 + len0 + 4;
  images[0][second_len] = 0xFF;
  images[0][second_len + 1] = 0xFF;
  images[0][second_len + 2] = 0xFF;

  auto reopened = ChunkRepository::open(devices_from(images));
  ASSERT_TRUE(reopened.ok()) << reopened.error().to_string();
  EXPECT_EQ(reopened.value()->container_count(), 1u);
  EXPECT_TRUE(reopened.value()->contains(first));

  // The torn tail is dead space: a new append lands and reads back.
  const ContainerId fresh = reopened.value()->append(make_container(200, 4));
  auto readback = reopened.value()->read(fresh);
  ASSERT_TRUE(readback.ok());
  EXPECT_TRUE(
      readback.value().find(Sha1::hash_counter(200)).has_value());
}

TEST(PersistentRepositoryTest, TrailingGarbageEndsTheScan) {
  std::vector<MemBlockDevice*> raw;
  std::vector<std::vector<Byte>> images;
  {
    ChunkRepository repo(make_devices(1, &raw));
    (void)repo.append(make_container(0, 4));
    images = snapshot(raw);
  }
  // Simulate a torn append: junk bytes after the last valid frame.
  images[0].insert(images[0].end(), {0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC,
                                     0xDE, 0xF0, 0x11});
  auto reopened = ChunkRepository::open(devices_from(images));
  ASSERT_TRUE(reopened.ok()) << reopened.error().to_string();
  EXPECT_EQ(reopened.value()->container_count(), 1u);
}

TEST(PersistentRepositoryTest, MemoryOnlyModeUnaffected) {
  // The default constructor keeps the pure in-memory behaviour: removals
  // and appends work with no backing devices involved.
  ChunkRepository repo(2);
  const ContainerId id = repo.append(make_container(0, 3));
  ASSERT_TRUE(repo.remove(id).ok());
  EXPECT_EQ(repo.container_count(), 0u);
}

}  // namespace
}  // namespace debar::storage
