#include "storage/faulty_block_device.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "storage/block_device.hpp"

namespace debar::storage {
namespace {

struct Rig {
  explicit Rig(FaultConfig config)
      : injector(std::make_shared<FaultInjector>(config)) {
    auto mem = std::make_unique<MemBlockDevice>();
    inner = mem.get();
    device = std::make_unique<FaultyBlockDevice>(std::move(mem), injector);
  }
  std::shared_ptr<FaultInjector> injector;
  MemBlockDevice* inner = nullptr;
  std::unique_ptr<FaultyBlockDevice> device;
};

std::vector<Byte> pattern(std::size_t n, Byte fill) {
  return std::vector<Byte>(n, fill);
}

TEST(FaultyBlockDevice, ZeroRatesPassThrough) {
  Rig rig({.seed = 1});
  const std::vector<Byte> data = pattern(256, Byte{0x5A});
  ASSERT_TRUE(rig.device->write(0, ByteSpan(data.data(), data.size())).ok());
  std::vector<Byte> out(256);
  ASSERT_TRUE(rig.device->read(0, std::span<Byte>(out)).ok());
  EXPECT_EQ(data, out);
  EXPECT_EQ(rig.device->size(), 256u);
  ASSERT_TRUE(rig.device->resize(1024).ok());
  EXPECT_EQ(rig.device->size(), 1024u);
  EXPECT_EQ(rig.injector->op_count(), 3u);  // write + read + resize
  EXPECT_FALSE(rig.injector->crashed());
}

TEST(FaultyBlockDevice, TornWriteLandsExactPrefix) {
  // torn_write_rate = 1: the very first write tears. Replaying the
  // injector's RNG tells us the exact prefix length it drew.
  Rig rig({.seed = 42, .torn_write_rate = 1.0});
  const std::vector<Byte> data = pattern(128, Byte{0xEE});

  const Status s = rig.device->write(0, ByteSpan(data.data(), data.size()));
  EXPECT_EQ(s.code(), Errc::kIoError);

  // The inner device holds exactly the torn prefix; beyond it, nothing.
  const std::uint64_t landed = rig.inner->size();
  EXPECT_LT(landed, data.size());  // at least one byte lost
  std::vector<Byte> out(landed);
  ASSERT_TRUE(rig.inner->read(0, std::span<Byte>(out)).ok());
  for (std::size_t i = 0; i < landed; ++i) {
    EXPECT_EQ(out[i], Byte{0xEE}) << "byte " << i;
  }

  // Retrying the same write heals the tear (fixed-offset idempotence).
  Rig retry({.seed = 42, .torn_write_rate = 0.0});
  // (fresh rig: rates are per-op, so model the retry as a clean write)
  ASSERT_TRUE(retry.device->write(0, ByteSpan(data.data(), data.size())).ok());
  std::vector<Byte> healed(data.size());
  ASSERT_TRUE(retry.inner->read(0, std::span<Byte>(healed)).ok());
  EXPECT_EQ(healed, data);
}

TEST(FaultyBlockDevice, TransientErrorsLeaveInnerUntouched) {
  Rig rig({.seed = 3, .write_error_rate = 1.0});
  const std::vector<Byte> data = pattern(64, Byte{0x11});
  EXPECT_EQ(rig.device->write(0, ByteSpan(data.data(), data.size())).code(),
            Errc::kIoError);
  EXPECT_EQ(rig.inner->size(), 0u);  // nothing landed

  Rig reads({.seed = 3, .read_error_rate = 1.0});
  ASSERT_EQ(reads.injector->next(true), FaultInjector::Action::kPass);
  // ^ writes unaffected by read_error_rate; now a real read fails:
  std::vector<Byte> out(16);
  EXPECT_EQ(reads.device->read(0, std::span<Byte>(out)).code(),
            Errc::kIoError);
}

TEST(FaultyBlockDevice, CrashFreezesInnerImage) {
  Rig rig({.seed = 9, .crash_after_ops = 2});
  const std::vector<Byte> data = pattern(32, Byte{0xAB});
  ASSERT_TRUE(rig.device->write(0, ByteSpan(data.data(), data.size())).ok());
  ASSERT_TRUE(rig.device->write(32, ByteSpan(data.data(), data.size())).ok());
  const std::uint64_t frozen_size = rig.inner->size();

  // Op index 2 is the crash point: the in-flight write tears, and from
  // then on every read, write and resize fails without touching inner.
  EXPECT_EQ(rig.device->write(64, ByteSpan(data.data(), data.size())).code(),
            Errc::kIoError);
  EXPECT_TRUE(rig.injector->crashed());
  const std::uint64_t post_crash_size = rig.inner->size();
  EXPECT_LT(post_crash_size, 64u + 32u);  // tail of the torn write lost

  std::vector<Byte> out(16);
  EXPECT_EQ(rig.device->read(0, std::span<Byte>(out)).code(), Errc::kIoError);
  EXPECT_EQ(rig.device->write(0, ByteSpan(data.data(), 16)).code(),
            Errc::kIoError);
  EXPECT_FALSE(rig.device->resize(4096).ok());
  EXPECT_EQ(rig.inner->size(), post_crash_size);  // image frozen

  // The pre-crash acked writes survive in the frozen image.
  std::vector<Byte> survived(64);
  ASSERT_GE(frozen_size, 64u);
  ASSERT_TRUE(rig.inner->read(0, std::span<Byte>(survived)).ok());
  for (std::size_t i = 0; i < survived.size(); ++i) {
    EXPECT_EQ(survived[i], Byte{0xAB}) << "byte " << i;
  }
}

TEST(FaultyBlockDevice, OpCounterSharedAcrossDevices) {
  auto injector = std::make_shared<FaultInjector>(FaultConfig{.seed = 5});
  FaultyBlockDevice a(std::make_unique<MemBlockDevice>(), injector);
  FaultyBlockDevice b(std::make_unique<MemBlockDevice>(), injector);

  const std::vector<Byte> data = pattern(8, Byte{0x01});
  ASSERT_TRUE(a.write(0, ByteSpan(data.data(), data.size())).ok());
  ASSERT_TRUE(b.write(0, ByteSpan(data.data(), data.size())).ok());
  std::vector<Byte> out(8);
  ASSERT_TRUE(a.read(0, std::span<Byte>(out)).ok());
  EXPECT_EQ(injector->op_count(), 3u);
}

}  // namespace
}  // namespace debar::storage
