#include "storage/chunk_log.hpp"

#include <gtest/gtest.h>

#include "common/sha1.hpp"

namespace debar::storage {
namespace {

std::unique_ptr<ChunkLog> make_log() {
  return std::make_unique<ChunkLog>(std::make_unique<MemBlockDevice>());
}

TEST(ChunkLogTest, AppendAndScanInOrder) {
  auto log = make_log();
  std::vector<std::pair<Fingerprint, std::vector<Byte>>> records;
  for (std::uint64_t i = 0; i < 10; ++i) {
    std::vector<Byte> data(100 + i * 10, static_cast<Byte>(i));
    const Fingerprint fp = Sha1::hash_counter(i);
    ASSERT_TRUE(log->append(fp, ByteSpan(data.data(), data.size())).ok());
    records.emplace_back(fp, std::move(data));
  }
  EXPECT_EQ(log->record_count(), 10u);

  std::size_t i = 0;
  const Status s = log->scan([&](const Fingerprint& fp, ByteSpan data) {
    ASSERT_LT(i, records.size());
    EXPECT_EQ(fp, records[i].first);
    EXPECT_TRUE(std::equal(data.begin(), data.end(),
                           records[i].second.begin(),
                           records[i].second.end()));
    ++i;
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(i, 10u);
}

TEST(ChunkLogTest, EmptyScanIsNoop) {
  auto log = make_log();
  int calls = 0;
  ASSERT_TRUE(log->scan([&](const Fingerprint&, ByteSpan) { ++calls; }).ok());
  EXPECT_EQ(calls, 0);
}

TEST(ChunkLogTest, ClearResetsState) {
  auto log = make_log();
  const std::vector<Byte> data(64, 1);
  ASSERT_TRUE(log->append(Sha1::hash_counter(1),
                          ByteSpan(data.data(), data.size())).ok());
  log->clear();
  EXPECT_EQ(log->record_count(), 0u);
  EXPECT_EQ(log->bytes(), 0u);
  int calls = 0;
  ASSERT_TRUE(log->scan([&](const Fingerprint&, ByteSpan) { ++calls; }).ok());
  EXPECT_EQ(calls, 0);
}

TEST(ChunkLogTest, ReusableAfterClear) {
  auto log = make_log();
  const std::vector<Byte> a(64, 1), b(32, 2);
  ASSERT_TRUE(log->append(Sha1::hash_counter(1), ByteSpan(a.data(), a.size())).ok());
  log->clear();
  ASSERT_TRUE(log->append(Sha1::hash_counter(2), ByteSpan(b.data(), b.size())).ok());

  int calls = 0;
  ASSERT_TRUE(log->scan([&](const Fingerprint& fp, ByteSpan data) {
    EXPECT_EQ(fp, Sha1::hash_counter(2));
    EXPECT_EQ(data.size(), 32u);
    ++calls;
  }).ok());
  EXPECT_EQ(calls, 1);
}

TEST(ChunkLogTest, AppendsAndScansAreSequentialOnDevice) {
  // The entire point of the chunk log: its I/O is sequential. With a
  // model attached, no seeks should be charged for appends or the scan.
  sim::SimClock clock;
  sim::DiskModel model({.seek_seconds = 1.0, .transfer_bytes_per_sec = 1e9},
                       &clock);
  auto device = std::make_unique<MemBlockDevice>();
  device->attach_model(&model);
  ChunkLog log(std::move(device));

  const std::vector<Byte> data(4096, 3);
  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(log.append(Sha1::hash_counter(i),
                           ByteSpan(data.data(), data.size())).ok());
  }
  const std::uint64_t seeks_after_append = model.seeks();
  EXPECT_EQ(seeks_after_append, 0u);

  // The scan starts at offset 0 (one repositioning), then streams.
  ASSERT_TRUE(log.scan([](const Fingerprint&, ByteSpan) {}).ok());
  EXPECT_LE(model.seeks(), 1u);
}

TEST(ChunkLogTest, ZeroLengthChunkRoundTrips) {
  auto log = make_log();
  ASSERT_TRUE(log->append(Sha1::hash_counter(5), ByteSpan{}).ok());
  int calls = 0;
  ASSERT_TRUE(log->scan([&](const Fingerprint& fp, ByteSpan data) {
    EXPECT_EQ(fp, Sha1::hash_counter(5));
    EXPECT_TRUE(data.empty());
    ++calls;
  }).ok());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace debar::storage
