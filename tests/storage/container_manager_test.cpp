#include "storage/container_manager.hpp"

#include <gtest/gtest.h>

#include "common/sha1.hpp"

namespace debar::storage {
namespace {

TEST(ContainerManagerTest, SealsWhenFullAndReportsMetadata) {
  ChunkRepository repo(1);
  ContainerManager mgr(&repo, 4096);

  std::vector<std::pair<ContainerId, std::size_t>> seals;
  const auto on_seal = [&](ContainerId id,
                           const std::vector<ChunkMeta>& metas) {
    seals.emplace_back(id, metas.size());
  };

  const std::vector<Byte> chunk(1024, 0x55);
  for (std::uint64_t i = 0; i < 10; ++i) {
    mgr.append(Sha1::hash_counter(i), ByteSpan(chunk.data(), chunk.size()),
               on_seal);
  }
  EXPECT_FALSE(seals.empty());
  EXPECT_GT(mgr.open_chunk_count(), 0u);

  mgr.flush(on_seal);
  EXPECT_EQ(mgr.open_chunk_count(), 0u);

  std::size_t total = 0;
  for (const auto& [id, n] : seals) total += n;
  EXPECT_EQ(total, 10u);
}

TEST(ContainerManagerTest, FlushOnEmptyIsNoop) {
  ChunkRepository repo(1);
  ContainerManager mgr(&repo, 4096);
  int calls = 0;
  mgr.flush([&](ContainerId, const std::vector<ChunkMeta>&) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(repo.container_count(), 0u);
}

TEST(ContainerManagerTest, SealedContainersReadableViaRepository) {
  ChunkRepository repo(1);
  ContainerManager mgr(&repo, 8192);

  std::vector<Byte> chunk(512);
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    chunk[i] = static_cast<Byte>(i);
  }
  const Fingerprint fp = Sha1::hash(ByteSpan(chunk.data(), chunk.size()));

  ContainerId sealed_id = kNullContainer;
  mgr.append(fp, ByteSpan(chunk.data(), chunk.size()), nullptr);
  mgr.flush([&](ContainerId id, const std::vector<ChunkMeta>&) {
    sealed_id = id;
  });
  ASSERT_FALSE(sealed_id.is_null());

  const Result<Container> read = mgr.read(sealed_id);
  ASSERT_TRUE(read.ok());
  const auto found = read.value().find(fp);
  ASSERT_TRUE(found.has_value());
  EXPECT_TRUE(std::equal(found->begin(), found->end(), chunk.begin()));
}

TEST(ContainerManagerTest, SislOrderWithinContainers) {
  ChunkRepository repo(1);
  ContainerManager mgr(&repo, 1 * MiB);

  std::vector<Fingerprint> stream_order;
  const std::vector<Byte> chunk(100, 1);
  for (std::uint64_t i = 0; i < 20; ++i) {
    const Fingerprint fp = Sha1::hash_counter(i);
    stream_order.push_back(fp);
    mgr.append(fp, ByteSpan(chunk.data(), chunk.size()), nullptr);
  }
  std::vector<Fingerprint> sealed_order;
  mgr.flush([&](ContainerId, const std::vector<ChunkMeta>& metas) {
    for (const ChunkMeta& m : metas) sealed_order.push_back(m.fp);
  });
  EXPECT_EQ(sealed_order, stream_order);
}

TEST(ContainerManagerTest, CountsSealedContainers) {
  ChunkRepository repo(1);
  ContainerManager mgr(&repo, 2048);
  const std::vector<Byte> chunk(900, 2);
  for (std::uint64_t i = 0; i < 6; ++i) {
    mgr.append(Sha1::hash_counter(i), ByteSpan(chunk.data(), chunk.size()),
               nullptr);
  }
  mgr.flush(nullptr);
  EXPECT_EQ(mgr.containers_sealed(), repo.container_count());
  EXPECT_GE(mgr.containers_sealed(), 3u);
}

}  // namespace
}  // namespace debar::storage
