// Targeted container placement (the defragmenter's node pinning) and
// container removal (the garbage collector's reclamation primitive).
#include <gtest/gtest.h>

#include "common/sha1.hpp"
#include "storage/chunk_repository.hpp"

namespace debar::storage {
namespace {

Container tiny_container(int tag) {
  Container c(8 * 1024);
  std::vector<Byte> data(512, static_cast<Byte>(tag));
  c.try_append(Sha1::hash_counter(static_cast<std::uint64_t>(tag)),
               ByteSpan(data.data(), data.size()));
  return c;
}

TEST(PinnedPlacementTest, PinOverridesRoundRobin) {
  ChunkRepository repo(4);
  const ContainerId a = repo.append(tiny_container(1));          // node 0
  const ContainerId b = repo.append(tiny_container(2), 3);       // pinned
  const ContainerId c = repo.append(tiny_container(3));          // node 2
  EXPECT_EQ(repo.node_of(a), 0u);
  EXPECT_EQ(repo.node_of(b), 3u);
  EXPECT_EQ(repo.node_of(c), 2u);
  // Pinned containers read back normally.
  EXPECT_TRUE(repo.read(b).ok());
}

TEST(PinnedPlacementTest, RemoveReclaimsBytesAndIds) {
  ChunkRepository repo(2);
  const ContainerId a = repo.append(tiny_container(1));
  const ContainerId b = repo.append(tiny_container(2));
  const std::uint64_t bytes = repo.stored_bytes();
  ASSERT_GT(bytes, 0u);

  ASSERT_TRUE(repo.remove(a).ok());
  EXPECT_EQ(repo.container_count(), 1u);
  EXPECT_EQ(repo.stored_bytes(), bytes / 2);
  EXPECT_FALSE(repo.contains(a));
  EXPECT_FALSE(repo.read(a).ok());
  EXPECT_TRUE(repo.read(b).ok());

  // Double remove fails cleanly.
  const Status s = repo.remove(a);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Errc::kNotFound);
}

TEST(PinnedPlacementTest, ContainerIdsSkipRemoved) {
  ChunkRepository repo(1);
  const ContainerId a = repo.append(tiny_container(1));
  const ContainerId b = repo.append(tiny_container(2));
  const ContainerId c = repo.append(tiny_container(3));
  ASSERT_TRUE(repo.remove(b).ok());
  const auto ids = repo.container_ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], a);
  EXPECT_EQ(ids[1], c);
  // IDs are never reused after removal.
  const ContainerId d = repo.append(tiny_container(4));
  EXPECT_GT(d.value, c.value);
}

}  // namespace
}  // namespace debar::storage
