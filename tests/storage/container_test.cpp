#include "storage/container.hpp"

#include <gtest/gtest.h>

#include "common/sha1.hpp"

namespace debar::storage {
namespace {

std::vector<Byte> chunk_data(int tag, std::size_t size) {
  std::vector<Byte> data(size);
  for (std::size_t i = 0; i < size; ++i) {
    data[i] = static_cast<Byte>(tag + static_cast<int>(i));
  }
  return data;
}

TEST(ContainerTest, AppendAndFind) {
  Container c(1 * MiB);
  const auto d1 = chunk_data(1, 100);
  const auto d2 = chunk_data(2, 200);
  const Fingerprint f1 = Sha1::hash(ByteSpan(d1.data(), d1.size()));
  const Fingerprint f2 = Sha1::hash(ByteSpan(d2.data(), d2.size()));

  ASSERT_TRUE(c.try_append(f1, ByteSpan(d1.data(), d1.size())));
  ASSERT_TRUE(c.try_append(f2, ByteSpan(d2.data(), d2.size())));
  EXPECT_EQ(c.chunk_count(), 2u);
  EXPECT_EQ(c.data_bytes(), 300u);

  const auto found = c.find(f2);
  ASSERT_TRUE(found.has_value());
  EXPECT_TRUE(std::equal(found->begin(), found->end(), d2.begin()));
  EXPECT_FALSE(c.find(Sha1::hash(std::string_view{"absent"})).has_value());
}

TEST(ContainerTest, PreservesArrivalOrderSISL) {
  Container c(1 * MiB);
  std::vector<Fingerprint> order;
  for (int i = 0; i < 10; ++i) {
    const auto d = chunk_data(i, 64);
    const Fingerprint f = Sha1::hash(ByteSpan(d.data(), d.size()));
    order.push_back(f);
    ASSERT_TRUE(c.try_append(f, ByteSpan(d.data(), d.size())));
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(c.metadata()[i].fp, order[i]);
  }
}

TEST(ContainerTest, RefusesWhenFull) {
  Container c(2048);  // tiny container for the test
  const auto big = chunk_data(0, 1500);
  ASSERT_TRUE(
      c.try_append(Sha1::hash_counter(1), ByteSpan(big.data(), big.size())));
  const auto more = chunk_data(1, 1000);
  EXPECT_FALSE(
      c.try_append(Sha1::hash_counter(2), ByteSpan(more.data(), more.size())));
  EXPECT_EQ(c.chunk_count(), 1u);
}

TEST(ContainerTest, SerializeDeserializeRoundTrip) {
  Container c(64 * 1024);
  c.set_id(ContainerId{777});
  std::vector<std::vector<Byte>> chunks;
  for (int i = 0; i < 5; ++i) {
    chunks.push_back(chunk_data(i * 7, 512 + static_cast<std::size_t>(i) * 100));
    ASSERT_TRUE(c.try_append(
        Sha1::hash(ByteSpan(chunks.back().data(), chunks.back().size())),
        ByteSpan(chunks.back().data(), chunks.back().size())));
  }

  const std::vector<Byte> image = c.serialize();
  EXPECT_EQ(image.size(), c.capacity());

  const Result<Container> parsed =
      Container::deserialize(ByteSpan(image.data(), image.size()));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().id(), ContainerId{777});
  EXPECT_EQ(parsed.value().chunk_count(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    const ByteSpan chunk = parsed.value().chunk_at(i);
    EXPECT_TRUE(std::equal(chunk.begin(), chunk.end(), chunks[i].begin(),
                           chunks[i].end()));
  }
}

TEST(ContainerTest, DeserializeRejectsBadMagic) {
  Container c(4096);
  auto image = c.serialize();
  image[0] ^= 0xFF;
  EXPECT_FALSE(Container::deserialize(ByteSpan(image.data(), image.size())).ok());
}

TEST(ContainerTest, DeserializeRejectsOverflowingCounts) {
  Container c(4096);
  const auto d = chunk_data(1, 128);
  ASSERT_TRUE(c.try_append(Sha1::hash_counter(9), ByteSpan(d.data(), d.size())));
  auto image = c.serialize();
  // Corrupt the chunk count to something enormous.
  image[9] = 0xFF;
  image[10] = 0xFF;
  image[11] = 0xFF;
  image[12] = 0x7F;
  const auto r = Container::deserialize(ByteSpan(image.data(), image.size()));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kCorrupt);
}

TEST(ContainerTest, DeserializeRejectsOutOfBoundsChunkMeta) {
  Container c(4096);
  const auto d = chunk_data(1, 128);
  ASSERT_TRUE(c.try_append(Sha1::hash_counter(9), ByteSpan(d.data(), d.size())));
  auto image = c.serialize();
  // Chunk 0's size field sits after the header + fingerprint: corrupt it
  // to exceed the data section.
  const std::size_t size_off = Container::kHeaderSize + Fingerprint::kSize;
  image[size_off] = 0xFF;
  image[size_off + 1] = 0xFF;
  image[size_off + 2] = 0xFF;
  image[size_off + 3] = 0x7F;
  const auto r = Container::deserialize(ByteSpan(image.data(), image.size()));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kCorrupt);
}

TEST(ContainerTest, NearlyFullDetection) {
  Container c(8192);
  EXPECT_FALSE(c.nearly_full());
  const auto d = chunk_data(0, 6200);
  ASSERT_TRUE(c.try_append(Sha1::hash_counter(1), ByteSpan(d.data(), d.size())));
  EXPECT_TRUE(c.nearly_full());  // < 2 KiB of payload space left
}

TEST(ContainerTest, PaperContainerHoldsAboutThousandChunks) {
  // Section 3.4: 8 MB container, 8 KB chunks -> ~1024 chunks.
  Container c(kContainerSize);
  const auto d = chunk_data(1, kExpectedChunkSize);
  std::uint64_t count = 0;
  while (c.try_append(Sha1::hash_counter(count), ByteSpan(d.data(), d.size()))) {
    ++count;
  }
  EXPECT_GE(count, 1000u);
  EXPECT_LE(count, 1024u);
}

}  // namespace
}  // namespace debar::storage
