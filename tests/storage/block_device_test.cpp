#include "storage/block_device.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace debar::storage {
namespace {

TEST(MemBlockDeviceTest, WriteThenRead) {
  MemBlockDevice dev;
  const std::vector<Byte> data = {1, 2, 3, 4, 5};
  ASSERT_TRUE(dev.write(10, ByteSpan(data.data(), data.size())).ok());
  EXPECT_EQ(dev.size(), 15u);

  std::vector<Byte> out(5);
  ASSERT_TRUE(dev.read(10, std::span<Byte>(out)).ok());
  EXPECT_EQ(out, data);
}

TEST(MemBlockDeviceTest, GapIsZeroFilled) {
  MemBlockDevice dev;
  const Byte one = 1;
  ASSERT_TRUE(dev.write(100, ByteSpan(&one, 1)).ok());
  std::vector<Byte> out(100);
  ASSERT_TRUE(dev.read(0, std::span<Byte>(out)).ok());
  for (const Byte b : out) EXPECT_EQ(b, 0);
}

TEST(MemBlockDeviceTest, ReadPastEndFails) {
  MemBlockDevice dev(10);
  std::vector<Byte> out(11);
  const Status s = dev.read(0, std::span<Byte>(out));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Errc::kIoError);
}

TEST(MemBlockDeviceTest, ResizeGrowsAndShrinks) {
  MemBlockDevice dev;
  ASSERT_TRUE(dev.resize(100).ok());
  EXPECT_EQ(dev.size(), 100u);
  ASSERT_TRUE(dev.resize(10).ok());
  EXPECT_EQ(dev.size(), 10u);
}

TEST(MemBlockDeviceTest, AccountsSimTime) {
  sim::SimClock clock;
  sim::DiskModel model({.seek_seconds = 0.0, .transfer_bytes_per_sec = 100.0},
                       &clock);
  MemBlockDevice dev;
  dev.attach_model(&model);
  const std::vector<Byte> data(50, 7);
  ASSERT_TRUE(dev.write(0, ByteSpan(data.data(), data.size())).ok());
  EXPECT_DOUBLE_EQ(clock.seconds(), 0.5);
}

class FileBlockDeviceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("debar_fbd_test_" + std::to_string(::getpid()) + ".bin");
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(FileBlockDeviceTest, CreateWriteReadPersist) {
  {
    auto dev = FileBlockDevice::open(path_);
    ASSERT_TRUE(dev.ok()) << dev.error().to_string();
    const std::vector<Byte> data = {9, 8, 7};
    ASSERT_TRUE(dev.value()->write(4, ByteSpan(data.data(), data.size())).ok());
  }
  {
    auto dev = FileBlockDevice::open(path_);
    ASSERT_TRUE(dev.ok());
    EXPECT_EQ(dev.value()->size(), 7u);
    std::vector<Byte> out(3);
    ASSERT_TRUE(dev.value()->read(4, std::span<Byte>(out)).ok());
    EXPECT_EQ(out, (std::vector<Byte>{9, 8, 7}));
    // The gap before offset 4 must read back as zeros.
    std::vector<Byte> gap(4);
    ASSERT_TRUE(dev.value()->read(0, std::span<Byte>(gap)).ok());
    EXPECT_EQ(gap, (std::vector<Byte>{0, 0, 0, 0}));
  }
}

TEST_F(FileBlockDeviceTest, ReadPastEndFails) {
  auto dev = FileBlockDevice::open(path_);
  ASSERT_TRUE(dev.ok());
  std::vector<Byte> out(1);
  EXPECT_FALSE(dev.value()->read(0, std::span<Byte>(out)).ok());
}

TEST_F(FileBlockDeviceTest, ResizeSetsSize) {
  auto dev = FileBlockDevice::open(path_);
  ASSERT_TRUE(dev.ok());
  ASSERT_TRUE(dev.value()->resize(1024).ok());
  EXPECT_EQ(dev.value()->size(), 1024u);
  std::vector<Byte> out(1024);
  EXPECT_TRUE(dev.value()->read(0, std::span<Byte>(out)).ok());
}

TEST_F(FileBlockDeviceTest, OpenDirectoryPathFails) {
  auto dev = FileBlockDevice::open(std::filesystem::temp_directory_path());
  ASSERT_FALSE(dev.ok());
  EXPECT_EQ(dev.error().code, Errc::kIoError);
}

TEST_F(FileBlockDeviceTest, OpenInMissingDirectoryFails) {
  auto dev = FileBlockDevice::open(
      std::filesystem::temp_directory_path() / "no_such_dir" / "dev.bin");
  ASSERT_FALSE(dev.ok());
  EXPECT_EQ(dev.error().code, Errc::kIoError);
}

TEST_F(FileBlockDeviceTest, OpenOnReadOnlyFilesystemFails) {
  // /proc is read-only even for root, so file creation must fail with a
  // Status — not a crash, not a silent zero-byte device.
  if (!std::filesystem::is_directory("/proc")) {
    GTEST_SKIP() << "/proc not available";
  }
  auto dev = FileBlockDevice::open("/proc/debar_fbd_negative_test.bin");
  ASSERT_FALSE(dev.ok());
  EXPECT_EQ(dev.error().code, Errc::kIoError);
}

TEST_F(FileBlockDeviceTest, OpenOnCharDeviceFails) {
  // Char devices have no file size; open must reject them gracefully.
  if (!std::filesystem::exists("/dev/full")) {
    GTEST_SKIP() << "/dev/full not available";
  }
  auto dev = FileBlockDevice::open("/dev/full");
  ASSERT_FALSE(dev.ok());
  EXPECT_EQ(dev.error().code, Errc::kIoError);
}

TEST_F(FileBlockDeviceTest, ResizeFailsAfterBackingFileRemoved) {
  auto dev = FileBlockDevice::open(path_);
  ASSERT_TRUE(dev.ok());
  const std::vector<Byte> data(64, Byte{3});
  ASSERT_TRUE(dev.value()->write(0, ByteSpan(data.data(), data.size())).ok());

  std::filesystem::remove(path_);
  const Status s = dev.value()->resize(4096);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Errc::kIoError);
  EXPECT_EQ(dev.value()->size(), 64u);  // size unchanged on failure
}

TEST_F(FileBlockDeviceTest, ShortReadAfterExternalTruncationFails) {
  auto dev = FileBlockDevice::open(path_);
  ASSERT_TRUE(dev.ok());
  const std::vector<Byte> data(100, Byte{7});
  ASSERT_TRUE(dev.value()->write(0, ByteSpan(data.data(), data.size())).ok());

  // Truncate behind the device's back: its cached size_ still says 100,
  // so the read passes the bounds check and must fail at the stream.
  std::filesystem::resize_file(path_, 10);
  std::vector<Byte> out(100);
  const Status s = dev.value()->read(0, std::span<Byte>(out));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Errc::kIoError);
}

}  // namespace
}  // namespace debar::storage
