#include "storage/chunk_repository.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "common/sha1.hpp"
#include "common/thread_pool.hpp"

namespace debar::storage {
namespace {

Container make_container(int tag, std::size_t chunks = 3) {
  Container c(64 * 1024);
  for (std::size_t i = 0; i < chunks; ++i) {
    std::vector<Byte> data(256, static_cast<Byte>(tag + static_cast<int>(i)));
    c.try_append(Sha1::hash_counter(static_cast<std::uint64_t>(tag) * 100 + i),
                 ByteSpan(data.data(), data.size()));
  }
  return c;
}

TEST(ChunkRepositoryTest, AppendAssignsSequentialIds) {
  ChunkRepository repo(2);
  EXPECT_EQ(repo.append(make_container(1)), ContainerId{1});
  EXPECT_EQ(repo.append(make_container(2)), ContainerId{2});
  EXPECT_EQ(repo.container_count(), 2u);
}

TEST(ChunkRepositoryTest, ReadReturnsStoredContainer) {
  ChunkRepository repo(1);
  const Container original = make_container(5);
  const std::size_t count = original.chunk_count();
  const ContainerId id = repo.append(make_container(5));

  const Result<Container> read = repo.read(id);
  ASSERT_TRUE(read.ok()) << read.error().to_string();
  EXPECT_EQ(read.value().id(), id);
  EXPECT_EQ(read.value().chunk_count(), count);
  EXPECT_EQ(read.value().metadata()[0].fp, original.metadata()[0].fp);
}

TEST(ChunkRepositoryTest, ReadMissingIdFails) {
  ChunkRepository repo(1);
  const auto r = repo.read(ContainerId{99});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kNotFound);
  EXPECT_FALSE(repo.contains(ContainerId{99}));
}

TEST(ChunkRepositoryTest, StripesAcrossNodes) {
  ChunkRepository repo(4);
  std::vector<ContainerId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(repo.append(make_container(i)));
  // Round-robin: consecutive IDs land on consecutive nodes.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(repo.node_of(ids[i]), i % 4);
  }
}

TEST(ChunkRepositoryTest, TracksStoredPayloadBytes) {
  ChunkRepository repo(1);
  const Container c = make_container(1);
  const std::uint64_t payload = c.data_bytes();
  repo.append(make_container(1));
  repo.append(make_container(2));
  EXPECT_EQ(repo.stored_bytes(), 2 * payload);
}

TEST(ChunkRepositoryTest, ClockAccounting) {
  ChunkRepository repo(2, {.seek_seconds = 0.01,
                           .transfer_bytes_per_sec = 1.0e6});
  repo.append(make_container(1));  // node 0
  EXPECT_GT(repo.max_node_seconds(), 0.0);
  EXPECT_GT(repo.total_node_seconds(), 0.0);
  repo.reset_clocks();
  EXPECT_DOUBLE_EQ(repo.max_node_seconds(), 0.0);
}

TEST(ChunkRepositoryTest, ParallelAppendsAreSafeAndComplete) {
  ChunkRepository repo(4);
  constexpr std::size_t kN = 64;
  parallel_for(kN, 8, [&](std::size_t i) {
    const ContainerId id = repo.append(make_container(static_cast<int>(i)));
    EXPECT_FALSE(id.is_null());
  });
  EXPECT_EQ(repo.container_count(), kN);
  // Every ID from 1..N must be present exactly once.
  for (std::uint64_t id = 1; id <= kN; ++id) {
    EXPECT_TRUE(repo.contains(ContainerId{id}));
  }
}

}  // namespace
}  // namespace debar::storage
