#include "cache/index_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/sha1.hpp"

namespace debar::cache {
namespace {

Fingerprint fp(std::uint64_t i) { return Sha1::hash_counter(i); }

TEST(IndexCacheTest, InsertContainsErase) {
  IndexCache cache({.hash_bits = 6, .capacity = 100});
  EXPECT_TRUE(cache.insert(fp(1)));
  EXPECT_TRUE(cache.contains(fp(1)));
  EXPECT_FALSE(cache.insert(fp(1)));  // duplicate
  EXPECT_EQ(cache.size(), 1u);
  cache.erase(fp(1));
  EXPECT_FALSE(cache.contains(fp(1)));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(IndexCacheTest, CapacityEnforced) {
  IndexCache cache({.hash_bits = 4, .capacity = 5});
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_TRUE(cache.insert(fp(i)));
  EXPECT_TRUE(cache.full());
  EXPECT_FALSE(cache.insert(fp(99)));
}

TEST(IndexCacheTest, ContainerIdLifecycle) {
  IndexCache cache({.hash_bits = 6, .capacity = 100});
  ASSERT_TRUE(cache.insert(fp(7)));
  // New fingerprints start with the null container marker (Section 5.3).
  const auto before = cache.container_of(fp(7));
  ASSERT_TRUE(before.has_value());
  EXPECT_TRUE(before->is_null());

  EXPECT_TRUE(cache.set_container(fp(7), ContainerId{55}));
  EXPECT_EQ(cache.container_of(fp(7)), ContainerId{55});
  EXPECT_FALSE(cache.set_container(fp(8), ContainerId{1}));  // absent
  EXPECT_FALSE(cache.container_of(fp(8)).has_value());
}

TEST(IndexCacheTest, SortedFingerprintsAreGloballySorted) {
  IndexCache cache({.hash_bits = 5, .capacity = 1000});
  for (std::uint64_t i = 0; i < 500; ++i) ASSERT_TRUE(cache.insert(fp(i)));
  const auto sorted = cache.sorted_fingerprints();
  EXPECT_EQ(sorted.size(), 500u);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

TEST(IndexCacheTest, SortedEntriesCarryContainers) {
  IndexCache cache({.hash_bits = 5, .capacity = 100});
  for (std::uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(cache.insert(fp(i)));
    ASSERT_TRUE(cache.set_container(fp(i), ContainerId{i + 1}));
  }
  const auto entries = cache.sorted_entries();
  EXPECT_EQ(entries.size(), 50u);
  EXPECT_TRUE(std::is_sorted(
      entries.begin(), entries.end(),
      [](const IndexEntry& a, const IndexEntry& b) { return a.fp < b.fp; }));
  for (const IndexEntry& e : entries) {
    EXPECT_FALSE(e.container.is_null());
  }
}

TEST(IndexCacheTest, BucketsAlignWithDiskIndexRegions) {
  // Cache bucket k of a 2^m-bucket cache must map exactly onto disk
  // buckets [k*2^{n-m}, (k+1)*2^{n-m}) for any n >= m (Figure 4).
  constexpr unsigned m = 4, n = 10;
  IndexCache cache({.hash_bits = m, .capacity = 10000});
  for (std::uint64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(cache.insert(fp(i)));
  }
  const auto sorted = cache.sorted_fingerprints();
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    // Disk-bucket numbers must be non-decreasing over the sorted stream.
    EXPECT_LE(sorted[i - 1].prefix_bits(n), sorted[i].prefix_bits(n));
  }
}

TEST(IndexCacheTest, ClearResets) {
  IndexCache cache({.hash_bits = 4, .capacity = 10});
  for (std::uint64_t i = 0; i < 10; ++i) ASSERT_TRUE(cache.insert(fp(i)));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.full());
  EXPECT_TRUE(cache.insert(fp(3)));
}

TEST(IndexCacheTest, SkipBitsOrderingWithinRoutingPrefix) {
  // A part-local cache (skip_bits = 2) holding only prefix-0 fingerprints
  // must still produce sorted output.
  IndexCache cache({.hash_bits = 5, .skip_bits = 2, .capacity = 10000});
  std::uint64_t inserted = 0;
  for (std::uint64_t i = 0; inserted < 200; ++i) {
    const Fingerprint f = fp(i);
    if (f.prefix_bits(2) == 0) {
      ASSERT_TRUE(cache.insert(f));
      ++inserted;
    }
  }
  const auto sorted = cache.sorted_fingerprints();
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

}  // namespace
}  // namespace debar::cache
