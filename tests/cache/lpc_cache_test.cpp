#include "cache/lpc_cache.hpp"

#include <gtest/gtest.h>

#include "common/sha1.hpp"

namespace debar::cache {
namespace {

std::shared_ptr<const storage::Container> make_container(
    std::uint64_t id, std::uint64_t fp_base, std::size_t chunks) {
  auto c = std::make_shared<storage::Container>(64 * 1024);
  for (std::size_t i = 0; i < chunks; ++i) {
    std::vector<Byte> data(128, static_cast<Byte>(fp_base + i));
    c->try_append(Sha1::hash_counter(fp_base + i),
                  ByteSpan(data.data(), data.size()));
  }
  c->set_id(ContainerId{id});
  return c;
}

TEST(LpcCacheTest, MissThenHitAfterInsert) {
  LpcCache cache(4);
  const Fingerprint fp = Sha1::hash_counter(100);
  EXPECT_FALSE(cache.find(fp).has_value());
  EXPECT_EQ(cache.misses(), 1u);

  cache.insert(make_container(1, 100, 10));
  const auto hit = cache.find(fp);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ((*hit)[0], static_cast<Byte>(100));
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(LpcCacheTest, PrefetchMakesNeighboursHit) {
  // The LPC property: one container insert turns the whole SISL
  // neighbourhood into cache hits.
  LpcCache cache(4);
  cache.insert(make_container(1, 0, 50));
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_TRUE(cache.find(Sha1::hash_counter(i)).has_value());
  }
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 1.0);
}

TEST(LpcCacheTest, EvictsLeastRecentlyUsedContainer) {
  LpcCache cache(2);
  cache.insert(make_container(1, 0, 5));
  cache.insert(make_container(2, 100, 5));
  // Touch container 1 so container 2 is LRU.
  EXPECT_TRUE(cache.find(Sha1::hash_counter(0)).has_value());
  cache.insert(make_container(3, 200, 5));

  EXPECT_TRUE(cache.contains_container(ContainerId{1}));
  EXPECT_FALSE(cache.contains_container(ContainerId{2}));
  EXPECT_TRUE(cache.contains_container(ContainerId{3}));
  EXPECT_FALSE(cache.find(Sha1::hash_counter(100)).has_value());
}

TEST(LpcCacheTest, ReinsertSameContainerRefreshes) {
  LpcCache cache(2);
  cache.insert(make_container(1, 0, 5));
  cache.insert(make_container(2, 100, 5));
  cache.insert(make_container(1, 0, 5));  // refresh 1 -> 2 becomes LRU
  cache.insert(make_container(3, 200, 5));
  EXPECT_TRUE(cache.contains_container(ContainerId{1}));
  EXPECT_FALSE(cache.contains_container(ContainerId{2}));
}

TEST(LpcCacheTest, SharedFingerprintAcrossContainers) {
  // A fingerprint can appear in two cached containers (duplicate storage
  // from asynchronous rounds); eviction of one must not break the other.
  LpcCache cache(3);
  cache.insert(make_container(1, 0, 5));
  cache.insert(make_container(2, 0, 5));  // same fingerprints, newer wins
  EXPECT_TRUE(cache.find(Sha1::hash_counter(0)).has_value());

  // Evict container 2 (LRU order: 1 older... touch to force): fill up.
  cache.insert(make_container(3, 100, 5));
  cache.insert(make_container(4, 200, 5));  // evicts LRU
  // Whatever remains, find() must never return a dangling mapping.
  const auto r = cache.find(Sha1::hash_counter(0));
  if (r.has_value()) {
    EXPECT_EQ((*r)[0], static_cast<Byte>(0));
  }
}

TEST(LpcCacheTest, CapacityOne) {
  LpcCache cache(1);
  cache.insert(make_container(1, 0, 3));
  cache.insert(make_container(2, 50, 3));
  EXPECT_FALSE(cache.contains_container(ContainerId{1}));
  EXPECT_TRUE(cache.find(Sha1::hash_counter(50)).has_value());
}

TEST(LpcCacheTest, ClearResetsStatsAndContents) {
  LpcCache cache(2);
  cache.insert(make_container(1, 0, 3));
  (void)cache.find(Sha1::hash_counter(0));
  cache.clear();
  EXPECT_EQ(cache.container_count(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_FALSE(cache.find(Sha1::hash_counter(0)).has_value());
}

TEST(LpcCacheTest, HitRateMath) {
  LpcCache cache(2);
  cache.insert(make_container(1, 0, 2));
  (void)cache.find(Sha1::hash_counter(0));   // hit
  (void)cache.find(Sha1::hash_counter(1));   // hit
  (void)cache.find(Sha1::hash_counter(99));  // miss
  EXPECT_NEAR(cache.hit_rate(), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace debar::cache
