// Differential tests for the range-partitioned parallel scans:
// bulk_lookup_sharded and bulk_insert_pipelined must be byte-identical to
// their serial counterparts — same index image, same RNG-driven overflow
// placement, same kFull/failed reporting, same modeled seconds — for any
// worker count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "common/sha1.hpp"
#include "common/thread_pool.hpp"
#include "index/disk_index.hpp"
#include "storage/block_device.hpp"

namespace debar::index {
namespace {

DiskIndex make_index(unsigned prefix_bits, unsigned blocks = 1,
                     storage::MemBlockDevice** device_out = nullptr,
                     sim::DiskModel* model = nullptr) {
  auto device = std::make_unique<storage::MemBlockDevice>();
  if (device_out != nullptr) *device_out = device.get();
  if (model != nullptr) device->attach_model(model);
  Result<DiskIndex> idx = DiskIndex::create(
      std::move(device),
      {.prefix_bits = prefix_bits, .blocks_per_bucket = blocks});
  EXPECT_TRUE(idx.ok());
  return std::move(idx).value();
}

std::vector<Fingerprint> sorted_fps(std::uint64_t from, std::uint64_t count) {
  std::vector<Fingerprint> fps;
  fps.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    fps.push_back(Sha1::hash_counter(from + i));
  }
  std::sort(fps.begin(), fps.end());
  return fps;
}

std::vector<IndexEntry> entries_of(const std::vector<Fingerprint>& fps,
                                   std::uint64_t id_base = 1) {
  std::vector<IndexEntry> entries;
  entries.reserve(fps.size());
  for (std::size_t i = 0; i < fps.size(); ++i) {
    entries.push_back({fps[i], ContainerId{id_base + i}});
  }
  return entries;
}

bool same_image(const storage::MemBlockDevice& a,
                const storage::MemBlockDevice& b) {
  const ByteSpan ia = a.contents();
  const ByteSpan ib = b.contents();
  return ia.size() == ib.size() &&
         std::memcmp(ia.data(), ib.data(), ia.size()) == 0;
}

TEST(ParallelBulkOpsTest, PipelinedInsertMatchesSerialByteForByte) {
  sim::SimClock clock_s, clock_p;
  sim::DiskModel model_s(sim::DiskProfile::PaperRaid(), &clock_s);
  sim::DiskModel model_p(sim::DiskProfile::PaperRaid(), &clock_p);
  storage::MemBlockDevice* dev_s = nullptr;
  storage::MemBlockDevice* dev_p = nullptr;
  DiskIndex serial = make_index(7, 2, &dev_s, &model_s);
  DiskIndex parallel = make_index(7, 2, &dev_p, &model_p);

  const auto fps = sorted_fps(0, 3000);
  const auto entries = entries_of(fps);

  std::uint64_t ins_s = 0;
  std::uint64_t ins_p = 0;
  ASSERT_TRUE(serial
                  .bulk_insert(std::span<const IndexEntry>(entries), 8, &ins_s)
                  .ok());
  ThreadPool pool(4);
  const ParallelIoOptions par{&pool, 4, 3};
  ASSERT_TRUE(parallel
                  .bulk_insert_pipelined(std::span<const IndexEntry>(entries),
                                         8, par, &ins_p)
                  .ok());

  EXPECT_EQ(ins_s, ins_p);
  EXPECT_EQ(serial.entry_count(), parallel.entry_count());
  EXPECT_TRUE(same_image(*dev_s, *dev_p));
  // Modeled time is part of the contract: the pipelined pass replays the
  // serial access sequence, so the clocks agree exactly.
  EXPECT_DOUBLE_EQ(clock_s.seconds(), clock_p.seconds());
}

TEST(ParallelBulkOpsTest, PipelinedInsertMatchesSerialOnOverflowAndFull) {
  // 16 buckets x 20 entries, loaded to 125%: forces neighbour overflow
  // and then kFull, the paths where the shared RNG draw order decides
  // placement. io_buckets=3 keeps the pipeline live (6 spans).
  storage::MemBlockDevice* dev_s = nullptr;
  storage::MemBlockDevice* dev_p = nullptr;
  DiskIndex serial = make_index(4, 1, &dev_s);
  DiskIndex parallel = make_index(4, 1, &dev_p);

  const auto fps = sorted_fps(0, 400);
  const auto entries = entries_of(fps);

  std::uint64_t ins_s = 0;
  std::uint64_t ins_p = 0;
  std::vector<std::size_t> failed_s;
  std::vector<std::size_t> failed_p;
  const Status ss = serial.bulk_insert(std::span<const IndexEntry>(entries), 3,
                                       &ins_s, &failed_s);
  ThreadPool pool(4);
  const ParallelIoOptions par{&pool, 4, 2};
  const Status sp = parallel.bulk_insert_pipelined(
      std::span<const IndexEntry>(entries), 3, par, &ins_p, &failed_p);

  EXPECT_EQ(ss.ok(), sp.ok());
  EXPECT_EQ(ss.code(), sp.code());
  EXPECT_EQ(ins_s, ins_p);
  EXPECT_EQ(failed_s, failed_p);
  EXPECT_EQ(serial.needs_scaling(), parallel.needs_scaling());
  EXPECT_TRUE(same_image(*dev_s, *dev_p));
}

TEST(ParallelBulkOpsTest, ShardedLookupMatchesSerial) {
  sim::SimClock clock_s, clock_p;
  sim::DiskModel model_s(sim::DiskProfile::PaperRaid(), &clock_s);
  sim::DiskModel model_p(sim::DiskProfile::PaperRaid(), &clock_p);
  storage::MemBlockDevice* dev_p = nullptr;
  DiskIndex serial = make_index(7, 2, nullptr, &model_s);
  DiskIndex parallel = make_index(7, 2, &dev_p, &model_p);

  const auto all = sorted_fps(0, 2000);
  std::vector<IndexEntry> present;
  for (std::size_t i = 0; i < all.size(); i += 3) {
    present.push_back({all[i], ContainerId{i + 1}});
  }
  ASSERT_TRUE(serial.bulk_insert(std::span<const IndexEntry>(present)).ok());
  ASSERT_TRUE(parallel.bulk_insert(std::span<const IndexEntry>(present)).ok());
  const double insert_s = clock_s.seconds();
  const double insert_p = clock_p.seconds();
  ASSERT_DOUBLE_EQ(insert_s, insert_p);

  std::vector<ContainerId> got_serial(all.size());
  std::vector<ContainerId> got_parallel(all.size());
  ASSERT_TRUE(serial
                  .bulk_lookup(std::span<const Fingerprint>(all),
                               [&](std::size_t i, ContainerId id) {
                                 got_serial[i] = id;
                               },
                               8)
                  .ok());
  ThreadPool pool(4);
  const ParallelIoOptions par{&pool, 4, 4};
  ASSERT_TRUE(parallel
                  .bulk_lookup_sharded(std::span<const Fingerprint>(all),
                                       [&](std::size_t i, ContainerId id) {
                                         got_parallel[i] = id;
                                       },
                                       8, par)
                  .ok());
  EXPECT_EQ(got_serial, got_parallel);
  // Lookups are read-only but still charge time; replay keeps it equal.
  EXPECT_DOUBLE_EQ(clock_s.seconds() - insert_s,
                   clock_p.seconds() - insert_p);
}

TEST(ParallelBulkOpsTest, ShardedLookupFindsCrossShardOverflow) {
  // Overstuff one bucket so entries overflow into neighbours; shard
  // boundaries between spans must still see them via their read margins.
  storage::MemBlockDevice* dev = nullptr;
  DiskIndex idx = make_index(3, 1, &dev);
  const std::uint64_t capacity = idx.params().bucket_capacity();
  std::vector<Fingerprint> bucket4;
  for (std::uint64_t i = 0; bucket4.size() < capacity + 6; ++i) {
    const Fingerprint fp = Sha1::hash_counter(i);
    if (idx.bucket_of(fp) == 4) bucket4.push_back(fp);
  }
  for (std::size_t i = 0; i < bucket4.size(); ++i) {
    ASSERT_TRUE(idx.insert(bucket4[i], ContainerId{i + 1}).ok());
  }

  std::sort(bucket4.begin(), bucket4.end());
  std::uint64_t found = 0;
  ThreadPool pool(4);
  const ParallelIoOptions par{&pool, 4, 2};
  // io_buckets=3 with 8 buckets -> 3 spans across up to 3 shards; bucket 4
  // sits at a span boundary.
  ASSERT_TRUE(idx.bulk_lookup_sharded(
                     std::span<const Fingerprint>(bucket4),
                     [&](std::size_t, ContainerId) { ++found; }, 3, par)
                  .ok());
  EXPECT_EQ(found, bucket4.size());
}

TEST(ParallelBulkOpsTest, SingleWorkerDegradesToSerialPath) {
  storage::MemBlockDevice* dev_s = nullptr;
  storage::MemBlockDevice* dev_p = nullptr;
  DiskIndex serial = make_index(6, 1, &dev_s);
  DiskIndex fallback = make_index(6, 1, &dev_p);

  const auto fps = sorted_fps(0, 400);
  const auto entries = entries_of(fps);
  ASSERT_TRUE(
      serial.bulk_insert(std::span<const IndexEntry>(entries), 8).ok());
  // Null pool / single worker: the parallel entry points must route to
  // the serial implementations.
  const ParallelIoOptions no_par{};
  ASSERT_TRUE(fallback
                  .bulk_insert_pipelined(std::span<const IndexEntry>(entries),
                                         8, no_par)
                  .ok());
  EXPECT_TRUE(same_image(*dev_s, *dev_p));

  std::uint64_t found = 0;
  ASSERT_TRUE(fallback
                  .bulk_lookup_sharded(
                      std::span<const Fingerprint>(fps),
                      [&](std::size_t, ContainerId) { ++found; }, 8, no_par)
                  .ok());
  EXPECT_EQ(found, fps.size());
}

}  // namespace
}  // namespace debar::index
