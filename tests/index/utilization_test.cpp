// Table 1 (analytic overflow bound) and Table 2 (utilization simulation).
#include "index/utilization.hpp"

#include <gtest/gtest.h>

namespace debar::index {
namespace {

TEST(OverflowBoundTest, ConsistentWithPaperTable1) {
  // Table 1 lists, per bucket size, a utilization eta at which the bound
  // on Pr(D) is ~1-2%. Our exact Poisson-tail evaluation of formula (1)
  // gives *smaller* (tighter) values at those eta — the paper appears to
  // have used a looser tail approximation — but the operating points must
  // be consistent: our bound is (a) still small at the paper's eta, and
  // (b) crosses the paper's bound within a few points of utilization
  // above it. Both checks pin the same "scale here" knee.
  struct Row {
    unsigned n;        // 2^n buckets for 512 GiB at the given bucket size
    std::uint64_t b;   // bucket capacity
    double eta;
    double paper;      // paper's bound at eta
  };
  const Row rows[] = {
      {30, 20, 0.35, 0.0171},  {29, 40, 0.45, 0.0102},
      {28, 80, 0.55, 0.0124},  {27, 160, 0.70, 0.0159},
      {26, 320, 0.80, 0.0191}, {25, 640, 0.85, 0.0193},
      {24, 1280, 0.90, 0.0216}, {23, 2560, 0.92, 0.0208},
  };
  for (const Row& row : rows) {
    const double at_eta = overflow_probability_bound(row.n, row.b, row.eta);
    EXPECT_LT(at_eta, row.paper * 5.0) << "n=" << row.n << " b=" << row.b;
    const double above =
        overflow_probability_bound(row.n, row.b, row.eta + 0.08);
    EXPECT_GT(above, row.paper * 0.3) << "n=" << row.n << " b=" << row.b;
  }
}

TEST(OverflowBoundTest, MonotonicInUtilization) {
  // Higher target utilization -> higher overflow probability.
  double prev = 0.0;
  for (const double eta : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    const double bound = overflow_probability_bound(26, 320, eta);
    EXPECT_GE(bound, prev);
    prev = bound;
  }
}

TEST(OverflowBoundTest, ExtremesBehave) {
  EXPECT_LT(overflow_probability_bound(26, 320, 0.1), 1e-9);
  EXPECT_GT(overflow_probability_bound(26, 320, 0.999), 1.0);  // vacuous bound
}

TEST(UtilizationSimTest, RunsToThreeAdjacentFull) {
  const UtilizationSimResult r = run_utilization_sim(
      {.prefix_bits = 12, .bucket_capacity = 20, .seed = 1});
  EXPECT_GT(r.inserted, 0u);
  EXPECT_GT(r.utilization, 0.2);
  EXPECT_LT(r.utilization, 1.0);
  // The exit condition implies at least one run of >= 2 full buckets
  // bordered by the triggering bucket.
  EXPECT_GE(r.runs3 + r.runs4, 0u);
}

TEST(UtilizationSimTest, DeterministicForSeed) {
  const UtilizationSimParams p{.prefix_bits = 12, .bucket_capacity = 20,
                               .seed = 7};
  const auto a = run_utilization_sim(p);
  const auto b = run_utilization_sim(p);
  EXPECT_EQ(a.inserted, b.inserted);
  EXPECT_EQ(a.runs3, b.runs3);
}

TEST(UtilizationSimTest, LargerBucketsReachHigherUtilization) {
  // The monotone trend of Table 2: eta grows with bucket size.
  const auto small = run_utilization_trials(
      {.prefix_bits = 12, .bucket_capacity = 20, .seed = 3}, 5);
  const auto large = run_utilization_trials(
      {.prefix_bits = 12, .bucket_capacity = 320, .seed = 3}, 5);
  EXPECT_GT(large.eta_avg, small.eta_avg);
  EXPECT_GT(large.eta_avg, 0.75);  // paper: 84% at b=320 (8 KiB buckets)
  EXPECT_LT(small.eta_avg, 0.65);  // paper: 41% at b=20 (0.5 KiB buckets)
}

TEST(UtilizationSimTest, Sha1AndPrngSourcesAgree) {
  // Both fingerprint sources are uniform; measured utilization must land
  // in the same band.
  const auto prng = run_utilization_trials(
      {.prefix_bits = 12, .bucket_capacity = 40, .seed = 5}, 5);
  const auto sha = run_utilization_trials(
      {.prefix_bits = 12, .bucket_capacity = 40, .seed = 5, .use_sha1 = true},
      5);
  EXPECT_NEAR(prng.eta_avg, sha.eta_avg, 0.08);
}

TEST(UtilizationSimTest, TrialsAggregateCorrectly) {
  const auto summary = run_utilization_trials(
      {.prefix_bits = 10, .bucket_capacity = 20, .seed = 11}, 8);
  EXPECT_EQ(summary.runs, 8u);
  EXPECT_LE(summary.eta_min, summary.eta_avg);
  EXPECT_LE(summary.eta_avg, summary.eta_max);
  EXPECT_GT(summary.rho_avg, 0.0);
}

TEST(UtilizationSimTest, FullBucketFractionStaysSmall) {
  // Paper: rho < 0.3% in all 400 runs at 2^26 buckets. At the test's
  // much smaller 2^14 buckets the trigger fires later (fewer adjacent
  // windows), so rho runs a little higher — but must stay a few percent.
  const auto r = run_utilization_sim(
      {.prefix_bits = 14, .bucket_capacity = 320, .seed = 2});
  EXPECT_LT(r.full_fraction, 0.04);
}

}  // namespace
}  // namespace debar::index
