// bulk_erase: the sequential deletion pass used by the garbage collector.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/sha1.hpp"
#include "index/disk_index.hpp"
#include "storage/block_device.hpp"

namespace debar::index {
namespace {

DiskIndex make_index(unsigned prefix_bits, unsigned blocks = 2) {
  auto idx = DiskIndex::create(std::make_unique<storage::MemBlockDevice>(),
                               {.prefix_bits = prefix_bits,
                                .blocks_per_bucket = blocks});
  EXPECT_TRUE(idx.ok());
  return std::move(idx).value();
}

std::vector<IndexEntry> seed(DiskIndex& idx, std::uint64_t count) {
  std::vector<IndexEntry> entries;
  for (std::uint64_t i = 0; i < count; ++i) {
    entries.push_back({Sha1::hash_counter(i), ContainerId{i + 1}});
  }
  std::sort(entries.begin(), entries.end(),
            [](const IndexEntry& a, const IndexEntry& b) { return a.fp < b.fp; });
  EXPECT_TRUE(idx.bulk_insert(std::span<const IndexEntry>(entries)).ok());
  return entries;
}

TEST(BulkEraseTest, ErasesExactlyTheRequestedSet) {
  DiskIndex idx = make_index(6);
  const auto entries = seed(idx, 300);

  std::vector<Fingerprint> victims;
  for (std::size_t i = 0; i < entries.size(); i += 3) {
    victims.push_back(entries[i].fp);
  }
  std::uint64_t erased = 0;
  ASSERT_TRUE(idx.bulk_erase(std::span<const Fingerprint>(victims), 8,
                             &erased)
                  .ok());
  EXPECT_EQ(erased, victims.size());
  EXPECT_EQ(idx.entry_count(), 300 - victims.size());

  for (std::size_t i = 0; i < entries.size(); ++i) {
    const bool should_exist = i % 3 != 0;
    EXPECT_EQ(idx.lookup(entries[i].fp).ok(), should_exist) << i;
  }
}

TEST(BulkEraseTest, AbsentFingerprintsAreSkipped) {
  DiskIndex idx = make_index(6);
  seed(idx, 50);
  std::vector<Fingerprint> victims = {Sha1::hash_counter(10000),
                                      Sha1::hash_counter(10001)};
  std::sort(victims.begin(), victims.end());
  std::uint64_t erased = 7;
  ASSERT_TRUE(
      idx.bulk_erase(std::span<const Fingerprint>(victims), 1024, &erased)
          .ok());
  EXPECT_EQ(erased, 0u);
  EXPECT_EQ(idx.entry_count(), 50u);
}

TEST(BulkEraseTest, RejectsUnsortedInput) {
  DiskIndex idx = make_index(6);
  const auto entries = seed(idx, 10);
  std::vector<Fingerprint> victims = {entries[5].fp, entries[1].fp};
  const Status s = idx.bulk_erase(std::span<const Fingerprint>(victims));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Errc::kInvalidArgument);
}

TEST(BulkEraseTest, ErasesOverflowedEntries) {
  DiskIndex idx = make_index(2, 1);
  const std::uint64_t cap = idx.params().bucket_capacity();
  std::vector<Fingerprint> bucket1;
  for (std::uint64_t i = 0; bucket1.size() < cap + 5; ++i) {
    const Fingerprint fp = Sha1::hash_counter(i);
    if (idx.bucket_of(fp) == 1) bucket1.push_back(fp);
  }
  for (std::size_t i = 0; i < bucket1.size(); ++i) {
    ASSERT_TRUE(idx.insert(bucket1[i], ContainerId{i + 1}).ok());
  }
  std::sort(bucket1.begin(), bucket1.end());
  std::uint64_t erased = 0;
  ASSERT_TRUE(idx.bulk_erase(std::span<const Fingerprint>(bucket1), 3,
                             &erased)
                  .ok());
  EXPECT_EQ(erased, bucket1.size());
  EXPECT_EQ(idx.entry_count(), 0u);
}

TEST(BulkEraseTest, StrandedOverflowEntriesStayFindable) {
  // Fill a bucket so entries overflow, then erase only home-resident
  // entries: the survivors stranded in neighbours must still be found by
  // lookups even though the home bucket is no longer full.
  DiskIndex idx = make_index(2, 1);
  const std::uint64_t cap = idx.params().bucket_capacity();
  std::vector<Fingerprint> bucket1;
  for (std::uint64_t i = 0; bucket1.size() < cap + 5; ++i) {
    const Fingerprint fp = Sha1::hash_counter(i);
    if (idx.bucket_of(fp) == 1) bucket1.push_back(fp);
  }
  for (std::size_t i = 0; i < bucket1.size(); ++i) {
    ASSERT_TRUE(idx.insert(bucket1[i], ContainerId{i + 1}).ok());
  }
  // Find which entries reside in the home bucket right now.
  const auto home = idx.read_bucket(1);
  ASSERT_TRUE(home.ok());
  std::vector<Fingerprint> residents;
  for (const IndexEntry& e : home.value().entries) residents.push_back(e.fp);
  ASSERT_EQ(residents.size(), cap);
  // Erase most home residents, leaving the overflowed ones stranded.
  residents.resize(cap - 2);
  std::sort(residents.begin(), residents.end());
  ASSERT_TRUE(
      idx.bulk_erase(std::span<const Fingerprint>(residents), 3).ok());

  // Every surviving fingerprint — including those in neighbours next to
  // a now non-full home — must be found by point and bulk lookups.
  std::vector<Fingerprint> survivors;
  for (const Fingerprint& fp : bucket1) {
    if (!std::binary_search(residents.begin(), residents.end(), fp)) {
      survivors.push_back(fp);
    }
  }
  std::sort(survivors.begin(), survivors.end());
  for (const Fingerprint& fp : survivors) {
    EXPECT_TRUE(idx.lookup(fp).ok());
  }
  std::uint64_t found = 0;
  ASSERT_TRUE(idx.bulk_lookup(std::span<const Fingerprint>(survivors),
                              [&](std::size_t, ContainerId) { ++found; }, 3)
                  .ok());
  EXPECT_EQ(found, survivors.size());
}

TEST(BulkEraseTest, ReinsertAfterEraseWorks) {
  DiskIndex idx = make_index(6);
  const auto entries = seed(idx, 100);
  std::vector<Fingerprint> all;
  for (const IndexEntry& e : entries) all.push_back(e.fp);
  ASSERT_TRUE(idx.bulk_erase(std::span<const Fingerprint>(all)).ok());
  EXPECT_EQ(idx.entry_count(), 0u);

  // Fresh inserts of the same fingerprints succeed with new mappings.
  for (std::size_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(idx.insert(entries[i].fp, ContainerId{999}).ok());
    EXPECT_EQ(idx.lookup(entries[i].fp).value(), ContainerId{999});
  }
}

}  // namespace
}  // namespace debar::index
