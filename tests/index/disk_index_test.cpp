#include "index/disk_index.hpp"

#include <gtest/gtest.h>

#include "common/sha1.hpp"
#include "storage/block_device.hpp"

namespace debar::index {
namespace {

DiskIndex make_index(unsigned prefix_bits, unsigned blocks_per_bucket = 1,
                     unsigned skip_bits = 0) {
  Result<DiskIndex> idx = DiskIndex::create(
      std::make_unique<storage::MemBlockDevice>(),
      {.prefix_bits = prefix_bits,
       .skip_bits = skip_bits,
       .blocks_per_bucket = blocks_per_bucket});
  EXPECT_TRUE(idx.ok());
  return std::move(idx).value();
}

TEST(DiskIndexTest, CreateFormatsDevice) {
  DiskIndex idx = make_index(6, 2);
  EXPECT_EQ(idx.device().size(), 64u * 2 * kIndexBlockSize);
  EXPECT_EQ(idx.entry_count(), 0u);
  EXPECT_EQ(idx.params().bucket_capacity(), 40u);
}

TEST(DiskIndexTest, CreateRejectsBadParams) {
  EXPECT_FALSE(DiskIndex::create(std::make_unique<storage::MemBlockDevice>(),
                                 {.prefix_bits = 0})
                   .ok());
  EXPECT_FALSE(DiskIndex::create(nullptr, {.prefix_bits = 4}).ok());
  EXPECT_FALSE(DiskIndex::create(std::make_unique<storage::MemBlockDevice>(),
                                 {.prefix_bits = 40, .skip_bits = 30})
                   .ok());
}

TEST(DiskIndexTest, InsertThenLookup) {
  DiskIndex idx = make_index(8);
  const Fingerprint fp = Sha1::hash_counter(1);
  ASSERT_TRUE(idx.insert(fp, ContainerId{7}).ok());
  EXPECT_EQ(idx.entry_count(), 1u);

  const Result<ContainerId> found = idx.lookup(fp);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), ContainerId{7});
}

TEST(DiskIndexTest, LookupMissReturnsNotFound) {
  DiskIndex idx = make_index(8);
  const auto r = idx.lookup(Sha1::hash_counter(42));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kNotFound);
}

TEST(DiskIndexTest, DuplicateInsertRejected) {
  DiskIndex idx = make_index(8);
  const Fingerprint fp = Sha1::hash_counter(2);
  ASSERT_TRUE(idx.insert(fp, ContainerId{1}).ok());
  const Status dup = idx.insert(fp, ContainerId{2});
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.code(), Errc::kInvalidArgument);
  EXPECT_EQ(idx.entry_count(), 1u);
  // Original mapping intact.
  EXPECT_EQ(idx.lookup(fp).value(), ContainerId{1});
}

TEST(DiskIndexTest, ManyInsertsAllRetrievable) {
  DiskIndex idx = make_index(8, 2);
  constexpr std::uint64_t kN = 2000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(idx.insert(Sha1::hash_counter(i), ContainerId{i + 1}).ok())
        << "insert " << i;
  }
  EXPECT_EQ(idx.entry_count(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) {
    const auto r = idx.lookup(Sha1::hash_counter(i));
    ASSERT_TRUE(r.ok()) << "lookup " << i;
    EXPECT_EQ(r.value(), ContainerId{i + 1});
  }
}

TEST(DiskIndexTest, OverflowSpillsToAdjacentBucketAndStaysFindable) {
  // Tiny index: 4 buckets x 20 entries. Drive one bucket past capacity.
  DiskIndex idx = make_index(2, 1);
  const std::uint64_t capacity = idx.params().bucket_capacity();

  // Collect fingerprints that all map to bucket 1.
  std::vector<Fingerprint> bucket1;
  for (std::uint64_t i = 0; bucket1.size() < capacity + 5; ++i) {
    const Fingerprint fp = Sha1::hash_counter(i);
    if (idx.bucket_of(fp) == 1) bucket1.push_back(fp);
  }
  for (std::size_t i = 0; i < bucket1.size(); ++i) {
    ASSERT_TRUE(idx.insert(bucket1[i], ContainerId{i + 1}).ok())
        << "insert " << i << " of " << bucket1.size();
  }
  // All are findable, including the 5 that overflowed next door.
  for (std::size_t i = 0; i < bucket1.size(); ++i) {
    const auto r = idx.lookup(bucket1[i]);
    ASSERT_TRUE(r.ok()) << "lookup " << i;
    EXPECT_EQ(r.value(), ContainerId{i + 1});
  }
  // The overflow is visible in the stats.
  const auto st = idx.stats();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().overflowed_entries, 5u);
  EXPECT_GE(st.value().full_buckets, 1u);
}

TEST(DiskIndexTest, ReportsFullWhenNeighbourhoodExhausted) {
  // 2 buckets only: fill both, then the next insert to either must fail
  // with kFull and set needs_scaling.
  DiskIndex idx = make_index(1, 1);
  const std::uint64_t capacity = idx.params().bucket_capacity();

  std::uint64_t i = 0;
  Status last = Status::Ok();
  std::uint64_t inserted = 0;
  while (inserted < 2 * capacity + 1) {
    last = idx.insert(Sha1::hash_counter(i), ContainerId{i + 1});
    ++i;
    if (last.ok()) {
      ++inserted;
    } else {
      break;
    }
  }
  ASSERT_FALSE(last.ok());
  EXPECT_EQ(last.code(), Errc::kFull);
  EXPECT_TRUE(idx.needs_scaling());
  EXPECT_EQ(idx.entry_count(), 2 * capacity);
}

TEST(DiskIndexTest, SkipBitsChangeBucketAddressing) {
  DiskIndex idx = make_index(4, 1, /*skip_bits=*/3);
  const Fingerprint fp = Sha1::hash_counter(77);
  // Bucket number must be bits [3, 7) of the fingerprint.
  const std::uint64_t expect = fp.prefix_bits(7) & 0xF;
  EXPECT_EQ(idx.bucket_of(fp), expect);

  ASSERT_TRUE(idx.insert(fp, ContainerId{5}).ok());
  EXPECT_EQ(idx.lookup(fp).value(), ContainerId{5});
}

TEST(DiskIndexTest, StatsOnEmptyIndex) {
  DiskIndex idx = make_index(4);
  const auto st = idx.stats();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().entries, 0u);
  EXPECT_EQ(st.value().full_buckets, 0u);
  EXPECT_DOUBLE_EQ(st.value().utilization, 0.0);
}

TEST(DiskIndexTest, UtilizationTracksEntries) {
  DiskIndex idx = make_index(4, 1);  // 16 buckets * 20 = 320 capacity
  for (std::uint64_t i = 0; i < 160; ++i) {
    ASSERT_TRUE(idx.insert(Sha1::hash_counter(i), ContainerId{i + 1}).ok());
  }
  const auto st = idx.stats();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st.value().entries, 160u);
  EXPECT_NEAR(st.value().utilization, 0.5, 1e-9);
}

TEST(DiskIndexTest, PersistsAcrossReopen) {
  // An index formatted on a device can be re-opened by re-creating the
  // wrapper over the same (already formatted) device image... verified
  // here at the bucket level: write, then parse the same bucket back.
  DiskIndex idx = make_index(6, 2);
  std::vector<Fingerprint> fps;
  for (std::uint64_t i = 0; i < 50; ++i) {
    fps.push_back(Sha1::hash_counter(i));
    ASSERT_TRUE(idx.insert(fps.back(), ContainerId{i + 1}).ok());
  }
  for (std::uint64_t b = 0; b < idx.params().bucket_count(); ++b) {
    const auto bucket = idx.read_bucket(b);
    ASSERT_TRUE(bucket.ok());
    for (const IndexEntry& e : bucket.value().entries) {
      EXPECT_EQ(idx.lookup(e.fp).value(), e.container);
    }
  }
}

TEST(DiskIndexTest, OpenReattachesFormattedDevice) {
  // create() on one device, then open() over its image: every entry is
  // findable and the recovered entry count matches.
  auto device = std::make_unique<storage::MemBlockDevice>();
  storage::MemBlockDevice* raw = device.get();
  const DiskIndexParams params{.prefix_bits = 6, .blocks_per_bucket = 2};
  auto created = DiskIndex::create(std::move(device), params);
  ASSERT_TRUE(created.ok());
  for (std::uint64_t i = 0; i < 120; ++i) {
    ASSERT_TRUE(created.value().insert(Sha1::hash_counter(i),
                                       ContainerId{i + 1}).ok());
  }
  // Snapshot the image while the index is alive, then "restart".
  std::vector<Byte> image(raw->contents().begin(), raw->contents().end());
  auto clone = std::make_unique<storage::MemBlockDevice>();
  ASSERT_TRUE(clone->write(0, ByteSpan(image.data(), image.size())).ok());

  auto reopened = DiskIndex::open(std::move(clone), params);
  ASSERT_TRUE(reopened.ok()) << reopened.error().to_string();
  EXPECT_EQ(reopened.value().entry_count(), 120u);
  for (std::uint64_t i = 0; i < 120; ++i) {
    EXPECT_EQ(reopened.value().lookup(Sha1::hash_counter(i)).value(),
              ContainerId{i + 1});
  }
  // The reopened index accepts new work.
  ASSERT_TRUE(reopened.value()
                  .insert(Sha1::hash_counter(1000), ContainerId{777})
                  .ok());
}

TEST(DiskIndexTest, OpenRejectsSizeMismatch) {
  auto small = std::make_unique<storage::MemBlockDevice>(1024);
  const auto r =
      DiskIndex::open(std::move(small), {.prefix_bits = 6,
                                         .blocks_per_bucket = 2});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kCorrupt);
}

class BucketSizeParamTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(BucketSizeParamTest, InsertLookupAcrossBucketSizes) {
  // Bucket sizes 0.5 KiB .. 16 KiB (1..32 blocks), as Table 2 sweeps.
  DiskIndex idx = make_index(5, GetParam());
  for (std::uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(idx.insert(Sha1::hash_counter(i), ContainerId{i + 1}).ok());
  }
  for (std::uint64_t i = 0; i < 300; ++i) {
    EXPECT_EQ(idx.lookup(Sha1::hash_counter(i)).value(), ContainerId{i + 1});
  }
}

INSTANTIATE_TEST_SUITE_P(BucketSizes, BucketSizeParamTest,
                         ::testing::Values(1, 2, 4, 16, 32));

}  // namespace
}  // namespace debar::index
