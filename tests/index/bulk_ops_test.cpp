// SIL / SIU primitives: bulk_lookup and bulk_insert.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/sha1.hpp"
#include "index/disk_index.hpp"
#include "storage/block_device.hpp"

namespace debar::index {
namespace {

DiskIndex make_index(unsigned prefix_bits, unsigned blocks = 1,
                     unsigned skip = 0,
                     storage::MemBlockDevice** device_out = nullptr,
                     sim::DiskModel* model = nullptr) {
  auto device = std::make_unique<storage::MemBlockDevice>();
  if (device_out != nullptr) *device_out = device.get();
  if (model != nullptr) device->attach_model(model);
  Result<DiskIndex> idx = DiskIndex::create(
      std::move(device),
      {.prefix_bits = prefix_bits, .skip_bits = skip, .blocks_per_bucket = blocks});
  EXPECT_TRUE(idx.ok());
  return std::move(idx).value();
}

std::vector<Fingerprint> sorted_fps(std::uint64_t from, std::uint64_t count) {
  std::vector<Fingerprint> fps;
  fps.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    fps.push_back(Sha1::hash_counter(from + i));
  }
  std::sort(fps.begin(), fps.end());
  return fps;
}

std::vector<IndexEntry> entries_of(const std::vector<Fingerprint>& fps,
                                   std::uint64_t id_base = 1) {
  std::vector<IndexEntry> entries;
  entries.reserve(fps.size());
  for (std::size_t i = 0; i < fps.size(); ++i) {
    entries.push_back({fps[i], ContainerId{id_base + i}});
  }
  return entries;
}

TEST(BulkInsertTest, InsertsAllAndPointLookupFinds) {
  DiskIndex idx = make_index(6, 2);
  const auto fps = sorted_fps(0, 500);
  const auto entries = entries_of(fps);

  std::uint64_t inserted = 0;
  ASSERT_TRUE(idx.bulk_insert(std::span<const IndexEntry>(entries), 8,
                              &inserted)
                  .ok());
  EXPECT_EQ(inserted, 500u);
  EXPECT_EQ(idx.entry_count(), 500u);
  for (const IndexEntry& e : entries) {
    EXPECT_EQ(idx.lookup(e.fp).value(), e.container);
  }
}

TEST(BulkInsertTest, RejectsUnsortedInput) {
  DiskIndex idx = make_index(6);
  auto fps = sorted_fps(0, 10);
  std::swap(fps[2], fps[7]);
  const auto entries = entries_of(fps);
  const Status s = idx.bulk_insert(std::span<const IndexEntry>(entries));
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Errc::kInvalidArgument);
}

TEST(BulkInsertTest, SkipsExistingDuplicatesSilently) {
  DiskIndex idx = make_index(6, 2);
  const auto fps = sorted_fps(0, 100);
  const auto entries = entries_of(fps);
  ASSERT_TRUE(idx.bulk_insert(std::span<const IndexEntry>(entries)).ok());

  std::uint64_t inserted = 0;
  ASSERT_TRUE(idx.bulk_insert(std::span<const IndexEntry>(entries), 1024,
                              &inserted)
                  .ok());
  EXPECT_EQ(inserted, 0u);
  EXPECT_EQ(idx.entry_count(), 100u);
}

TEST(BulkInsertTest, ReportsFailedEntriesOnFull) {
  DiskIndex idx = make_index(1, 1);  // 2 buckets x 20 = 40 entries max
  const auto fps = sorted_fps(0, 60);
  const auto entries = entries_of(fps);

  std::uint64_t inserted = 0;
  std::vector<std::size_t> failed;
  const Status s = idx.bulk_insert(std::span<const IndexEntry>(entries), 1024,
                                   &inserted, &failed);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Errc::kFull);
  EXPECT_EQ(inserted, 40u);
  EXPECT_EQ(failed.size(), 20u);
  EXPECT_TRUE(idx.needs_scaling());
  // Failed indices reference the input; all others must be findable.
  std::vector<bool> is_failed(entries.size(), false);
  for (const std::size_t i : failed) is_failed[i] = true;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(idx.lookup(entries[i].fp).ok(), !is_failed[i]);
  }
}

TEST(BulkInsertTest, CrossSpanOverflowComposes) {
  // Tiny io_buckets force many spans; inserts near span edges overflow
  // into margin buckets that belong to the next/previous span.
  DiskIndex idx = make_index(7, 1);
  const auto fps = sorted_fps(0, 2000);
  auto entries = entries_of(fps);

  std::uint64_t inserted = 0;
  const Status s = idx.bulk_insert(std::span<const IndexEntry>(entries), 3,
                                   &inserted);
  // 128 buckets x 20 = 2560 capacity; 2000 at 78% may overflow some
  // neighbourhoods but typically succeeds.
  if (s.ok()) {
    EXPECT_EQ(inserted, 2000u);
  }
  // Every inserted entry must be findable regardless.
  std::uint64_t found = 0;
  for (const IndexEntry& e : entries) {
    if (idx.lookup(e.fp).ok()) ++found;
  }
  EXPECT_EQ(found, inserted);
}

TEST(BulkLookupTest, FindsExactlyTheInsertedSubset) {
  DiskIndex idx = make_index(7, 2);
  const auto all = sorted_fps(0, 1000);

  // Insert even-indexed fingerprints only.
  std::vector<IndexEntry> entries;
  for (std::size_t i = 0; i < all.size(); i += 2) {
    entries.push_back({all[i], ContainerId{i + 1}});
  }
  ASSERT_TRUE(idx.bulk_insert(std::span<const IndexEntry>(entries)).ok());

  std::vector<std::uint8_t> found(all.size(), 0);
  std::vector<ContainerId> ids(all.size());
  ASSERT_TRUE(idx.bulk_lookup(
                     std::span<const Fingerprint>(all),
                     [&](std::size_t i, ContainerId id) {
                       found[i] = 1;
                       ids[i] = id;
                     },
                     16)
                  .ok());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(found[i], i % 2 == 0 ? 1 : 0) << "index " << i;
    if (i % 2 == 0) EXPECT_EQ(ids[i], ContainerId{i + 1});
  }
}

TEST(BulkLookupTest, RejectsUnsortedInput) {
  DiskIndex idx = make_index(6);
  auto fps = sorted_fps(0, 10);
  std::swap(fps[0], fps[9]);
  const Status s = idx.bulk_lookup(std::span<const Fingerprint>(fps),
                                   [](std::size_t, ContainerId) {});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Errc::kInvalidArgument);
}

TEST(BulkLookupTest, FindsOverflowedEntries) {
  DiskIndex idx = make_index(2, 1);
  const std::uint64_t capacity = idx.params().bucket_capacity();
  std::vector<Fingerprint> bucket2;
  for (std::uint64_t i = 0; bucket2.size() < capacity + 4; ++i) {
    const Fingerprint fp = Sha1::hash_counter(i);
    if (idx.bucket_of(fp) == 2) bucket2.push_back(fp);
  }
  for (std::size_t i = 0; i < bucket2.size(); ++i) {
    ASSERT_TRUE(idx.insert(bucket2[i], ContainerId{i + 1}).ok());
  }

  std::sort(bucket2.begin(), bucket2.end());
  std::uint64_t found = 0;
  ASSERT_TRUE(idx.bulk_lookup(
                     std::span<const Fingerprint>(bucket2),
                     [&](std::size_t, ContainerId) { ++found; },
                     3)
                  .ok());
  EXPECT_EQ(found, bucket2.size());
}

TEST(BulkLookupTest, EmptyQueryStillStreamsCleanly) {
  DiskIndex idx = make_index(6);
  ASSERT_TRUE(idx.bulk_lookup({}, [](std::size_t, ContainerId) {
                     FAIL() << "no matches expected";
                   }).ok());
}

TEST(BulkOpsTest, SequentialIoPattern) {
  // SIL must stream: the number of seeks is bounded by the number of
  // spans (plus one initial positioning), never per-fingerprint.
  sim::SimClock clock;
  sim::DiskModel model({.seek_seconds = 0.001, .transfer_bytes_per_sec = 1e9},
                       &clock);
  DiskIndex idx = make_index(10, 1, 0, nullptr, &model);

  const auto fps = sorted_fps(0, 5000);
  const auto entries = entries_of(fps);
  ASSERT_TRUE(
      idx.bulk_insert(std::span<const IndexEntry>(entries), 256).ok());
  const std::uint64_t insert_seeks = model.seeks();
  // 1024 buckets / 256 per span = 4 spans; each span: one read + one
  // write positioning (overlap margins step the head back one bucket).
  EXPECT_LE(insert_seeks, 16u);

  ASSERT_TRUE(idx.bulk_lookup(std::span<const Fingerprint>(fps),
                              [](std::size_t, ContainerId) {}, 256)
                  .ok());
  EXPECT_LE(model.seeks() - insert_seeks, 8u);
}

TEST(BulkOpsTest, MatchesPointOperationsExactly) {
  // Property: bulk and point APIs must agree on every fingerprint.
  DiskIndex bulk_idx = make_index(6, 2);
  DiskIndex point_idx = make_index(6, 2);

  const auto fps = sorted_fps(100, 400);
  const auto entries = entries_of(fps, 1000);
  ASSERT_TRUE(bulk_idx.bulk_insert(std::span<const IndexEntry>(entries)).ok());
  for (const IndexEntry& e : entries) {
    ASSERT_TRUE(point_idx.insert(e.fp, e.container).ok());
  }

  const auto queries = sorted_fps(0, 600);  // half hit, half miss
  for (const Fingerprint& fp : queries) {
    const auto a = bulk_idx.lookup(fp);
    const auto b = point_idx.lookup(fp);
    EXPECT_EQ(a.ok(), b.ok());
    if (a.ok() && b.ok()) EXPECT_EQ(a.value(), b.value());
  }
}

}  // namespace
}  // namespace debar::index
