#include "index/recovery.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "common/sha1.hpp"
#include "core/backup_engine.hpp"

namespace debar::index {
namespace {

storage::Container make_container(std::uint64_t fp_base, std::size_t chunks) {
  storage::Container c(256 * 1024);
  for (std::size_t i = 0; i < chunks; ++i) {
    const Fingerprint fp = Sha1::hash_counter(fp_base + i);
    const auto payload = core::BackupEngine::synthetic_payload(fp, 512);
    c.try_append(fp, ByteSpan(payload.data(), payload.size()));
  }
  return c;
}

TEST(IndexRecoveryTest, RebuildsExactMappingFromContainers) {
  storage::ChunkRepository repo(2);
  std::vector<std::pair<Fingerprint, ContainerId>> truth;
  for (int c = 0; c < 6; ++c) {
    const std::uint64_t base = static_cast<std::uint64_t>(c) * 100;
    const ContainerId id = repo.append(make_container(base, 40));
    for (std::size_t i = 0; i < 40; ++i) {
      truth.emplace_back(Sha1::hash_counter(base + i), id);
    }
  }

  RecoveryStats stats;
  Result<DiskIndex> rebuilt = rebuild_index(
      repo, std::make_unique<storage::MemBlockDevice>(),
      {.prefix_bits = 8, .blocks_per_bucket = 2}, &stats);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.error().to_string();

  EXPECT_EQ(stats.containers_scanned, 6u);
  EXPECT_EQ(stats.entries_recovered, 240u);
  EXPECT_EQ(stats.duplicate_fingerprints, 0u);
  EXPECT_EQ(rebuilt.value().entry_count(), 240u);
  for (const auto& [fp, id] : truth) {
    const auto r = rebuilt.value().lookup(fp);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), id);
  }
}

TEST(IndexRecoveryTest, DuplicateFingerprintsResolveToLowestContainer) {
  storage::ChunkRepository repo(1);
  const ContainerId first = repo.append(make_container(0, 20));
  const ContainerId second = repo.append(make_container(0, 20));  // same fps
  ASSERT_LT(first, second);

  RecoveryStats stats;
  Result<DiskIndex> rebuilt = rebuild_index(
      repo, std::make_unique<storage::MemBlockDevice>(),
      {.prefix_bits = 6, .blocks_per_bucket = 2}, &stats);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(stats.duplicate_fingerprints, 20u);
  EXPECT_EQ(rebuilt.value().entry_count(), 20u);
  EXPECT_EQ(rebuilt.value().lookup(Sha1::hash_counter(0)).value(), first);
}

TEST(IndexRecoveryTest, RebuildRecoversFromScribbledIndexDevice) {
  // Disaster case: the index device survives but its contents are trash
  // (e.g. a torn multi-bucket SIU flush). Recovery must not trust it at
  // all — the rebuilt index comes from the containers alone.
  storage::ChunkRepository repo(2);
  std::vector<std::pair<Fingerprint, ContainerId>> truth;
  for (int c = 0; c < 4; ++c) {
    const std::uint64_t base = static_cast<std::uint64_t>(c) * 1000;
    const ContainerId id = repo.append(make_container(base, 32));
    for (std::size_t i = 0; i < 32; ++i) {
      truth.emplace_back(Sha1::hash_counter(base + i), id);
    }
  }

  const DiskIndexParams params{.prefix_bits = 7, .blocks_per_bucket = 2};
  Result<DiskIndex> live = rebuild_index(
      repo, std::make_unique<storage::MemBlockDevice>(), params);
  ASSERT_TRUE(live.ok());

  // Scribble random bytes over every bucket of the live index device.
  Xoshiro256 rng(0xBADF00D);
  std::vector<Byte> junk(live.value().params().bucket_bytes());
  for (std::uint64_t b = 0; b < live.value().params().bucket_count(); ++b) {
    for (Byte& byte : junk) byte = static_cast<Byte>(rng.below(256));
    ASSERT_TRUE(
        live.value()
            .device()
            .write(b * junk.size(), ByteSpan(junk.data(), junk.size()))
            .ok());
  }

  // The scribbled index no longer answers correctly for all of truth...
  std::size_t intact = 0;
  for (const auto& [fp, id] : truth) {
    const auto r = live.value().lookup(fp);
    if (r.ok() && r.value() == id) ++intact;
  }
  EXPECT_LT(intact, truth.size());

  // ...but a rebuild from the repository restores the exact mapping.
  RecoveryStats stats;
  Result<DiskIndex> rebuilt = rebuild_index(
      repo, std::make_unique<storage::MemBlockDevice>(), params, &stats);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.error().to_string();
  EXPECT_EQ(stats.containers_scanned, 4u);
  EXPECT_EQ(stats.entries_recovered, truth.size());
  EXPECT_EQ(stats.duplicate_fingerprints, 0u);
  EXPECT_EQ(rebuilt.value().entry_count(), truth.size());
  for (const auto& [fp, id] : truth) {
    const auto r = rebuilt.value().lookup(fp);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), id);
  }
}

TEST(IndexRecoveryTest, TieBreakWinnerStillServesRestores) {
  // Pin the "lowest container ID wins" tie-break end to end: when the
  // same fingerprint lives in two containers, the rebuilt index must
  // point at the lower ID AND that container must serve the exact chunk
  // bytes, so restores keep working after recovery.
  storage::ChunkRepository repo(1);
  const ContainerId first = repo.append(make_container(0, 16));
  const ContainerId second = repo.append(make_container(0, 16));
  ASSERT_LT(first, second);

  Result<DiskIndex> rebuilt = rebuild_index(
      repo, std::make_unique<storage::MemBlockDevice>(),
      {.prefix_bits = 6, .blocks_per_bucket = 2});
  ASSERT_TRUE(rebuilt.ok());

  for (std::uint64_t i = 0; i < 16; ++i) {
    const Fingerprint fp = Sha1::hash_counter(i);
    const auto mapped = rebuilt.value().lookup(fp);
    ASSERT_TRUE(mapped.ok());
    EXPECT_EQ(mapped.value(), first);

    // Restore path: fetch the mapped container, find the chunk, verify
    // it is byte-identical to what was backed up.
    Result<storage::Container> container = repo.read(mapped.value());
    ASSERT_TRUE(container.ok());
    const auto chunk = container.value().find(fp);
    ASSERT_TRUE(chunk.has_value());
    const auto expected = core::BackupEngine::synthetic_payload(fp, 512);
    ASSERT_EQ(chunk->size(), expected.size());
    EXPECT_TRUE(std::equal(chunk->begin(), chunk->end(), expected.begin()));
  }
}

TEST(IndexRecoveryTest, EmptyRepositoryYieldsEmptyIndex) {
  storage::ChunkRepository repo(1);
  Result<DiskIndex> rebuilt = rebuild_index(
      repo, std::make_unique<storage::MemBlockDevice>(),
      {.prefix_bits = 6, .blocks_per_bucket = 1});
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt.value().entry_count(), 0u);
}

TEST(IndexRecoveryTest, RecoveredIndexMatchesLiveIndexAfterRealBackups) {
  // Full-system disaster drill: run backups, destroy the index, rebuild
  // it from the repository, and check every mapping agrees.
  storage::ChunkRepository repo(2);
  core::Director director;
  core::BackupServerConfig cfg;
  cfg.index_params = {.prefix_bits = 8, .blocks_per_bucket = 2};
  cfg.chunk_store.siu_threshold = 1;
  core::BackupServer server(0, cfg, &repo, &director);
  core::BackupEngine engine("client", &director);

  const std::uint64_t job = director.define_job("client", "d");
  core::FileStore& fs = server.file_store();
  fs.begin_job(job);
  fs.begin_file({.path = "s", .size = 300 * 1024, .mtime = 0, .mode = 0644});
  std::vector<Fingerprint> fps;
  for (std::uint64_t i = 0; i < 300; ++i) {
    const Fingerprint fp = Sha1::hash_counter(i);
    fps.push_back(fp);
    if (fs.offer_fingerprint(fp, 1024)) {
      const auto payload = core::BackupEngine::synthetic_payload(fp, 1024);
      ASSERT_TRUE(
          fs.receive_chunk(fp, ByteSpan(payload.data(), payload.size())).ok());
    }
  }
  fs.end_file();
  ASSERT_TRUE(fs.end_job().ok());
  ASSERT_TRUE(server.run_dedup2(true).ok());

  Result<DiskIndex> rebuilt = rebuild_index(
      repo, std::make_unique<storage::MemBlockDevice>(),
      cfg.index_params);
  ASSERT_TRUE(rebuilt.ok());
  for (const Fingerprint& fp : fps) {
    const auto live = server.chunk_store().index().lookup(fp);
    const auto recovered = rebuilt.value().lookup(fp);
    ASSERT_TRUE(live.ok());
    ASSERT_TRUE(recovered.ok());
    EXPECT_EQ(live.value(), recovered.value());
  }
}

TEST(BulkUpdateTest, OverwritesExistingMappings) {
  auto idx = DiskIndex::create(std::make_unique<storage::MemBlockDevice>(),
                               {.prefix_bits = 6, .blocks_per_bucket = 2});
  ASSERT_TRUE(idx.ok());

  std::vector<IndexEntry> entries;
  for (std::uint64_t i = 0; i < 200; ++i) {
    entries.push_back({Sha1::hash_counter(i), ContainerId{1}});
  }
  std::sort(entries.begin(), entries.end(),
            [](const IndexEntry& a, const IndexEntry& b) { return a.fp < b.fp; });
  ASSERT_TRUE(idx.value().bulk_insert(std::span<const IndexEntry>(entries)).ok());

  // Re-map the even half to container 2.
  std::vector<IndexEntry> updates;
  for (std::size_t i = 0; i < entries.size(); i += 2) {
    updates.push_back({entries[i].fp, ContainerId{2}});
  }
  std::uint64_t missing = 0;
  ASSERT_TRUE(idx.value()
                  .bulk_update(std::span<const IndexEntry>(updates), 8,
                               &missing)
                  .ok());
  EXPECT_EQ(missing, 0u);

  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto r = idx.value().lookup(entries[i].fp);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), i % 2 == 0 ? ContainerId{2} : ContainerId{1});
  }
  EXPECT_EQ(idx.value().entry_count(), 200u);  // update adds nothing
}

TEST(BulkUpdateTest, CountsMissingFingerprints) {
  auto idx = DiskIndex::create(std::make_unique<storage::MemBlockDevice>(),
                               {.prefix_bits = 6, .blocks_per_bucket = 2});
  ASSERT_TRUE(idx.ok());
  std::vector<IndexEntry> updates = {{Sha1::hash_counter(1), ContainerId{9}}};
  std::uint64_t missing = 0;
  ASSERT_TRUE(idx.value()
                  .bulk_update(std::span<const IndexEntry>(updates), 1024,
                               &missing)
                  .ok());
  EXPECT_EQ(missing, 1u);
  EXPECT_FALSE(idx.value().lookup(Sha1::hash_counter(1)).ok());
}

TEST(BulkUpdateTest, UpdatesOverflowedEntries) {
  auto idx = DiskIndex::create(std::make_unique<storage::MemBlockDevice>(),
                               {.prefix_bits = 2, .blocks_per_bucket = 1});
  ASSERT_TRUE(idx.ok());
  const std::uint64_t cap = idx.value().params().bucket_capacity();
  std::vector<Fingerprint> bucket1;
  for (std::uint64_t i = 0; bucket1.size() < cap + 4; ++i) {
    const Fingerprint fp = Sha1::hash_counter(i);
    if (idx.value().bucket_of(fp) == 1) bucket1.push_back(fp);
  }
  for (std::size_t i = 0; i < bucket1.size(); ++i) {
    ASSERT_TRUE(idx.value().insert(bucket1[i], ContainerId{1}).ok());
  }

  std::sort(bucket1.begin(), bucket1.end());
  std::vector<IndexEntry> updates;
  for (const Fingerprint& fp : bucket1) updates.push_back({fp, ContainerId{7}});
  std::uint64_t missing = 0;
  ASSERT_TRUE(idx.value()
                  .bulk_update(std::span<const IndexEntry>(updates), 3,
                               &missing)
                  .ok());
  EXPECT_EQ(missing, 0u);
  for (const Fingerprint& fp : bucket1) {
    EXPECT_EQ(idx.value().lookup(fp).value(), ContainerId{7});
  }
}

}  // namespace
}  // namespace debar::index
