// Capacity scaling (2^n -> 2^{n+1}) and performance scaling (split into
// 2^w parts) — Section 4.1's two scaling properties.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/sha1.hpp"
#include "index/disk_index.hpp"
#include "storage/block_device.hpp"

namespace debar::index {
namespace {

DiskIndex make_index(unsigned prefix_bits, unsigned blocks = 1) {
  Result<DiskIndex> idx = DiskIndex::create(
      std::make_unique<storage::MemBlockDevice>(),
      {.prefix_bits = prefix_bits, .blocks_per_bucket = blocks});
  EXPECT_TRUE(idx.ok());
  return std::move(idx).value();
}

std::vector<IndexEntry> make_entries(std::uint64_t count) {
  std::vector<IndexEntry> entries;
  entries.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    entries.push_back({Sha1::hash_counter(i), ContainerId{i + 1}});
  }
  std::sort(entries.begin(), entries.end(),
            [](const IndexEntry& a, const IndexEntry& b) { return a.fp < b.fp; });
  return entries;
}

TEST(CapacityScalingTest, DoublesBucketsAndKeepsEveryEntry) {
  DiskIndex idx = make_index(5, 1);
  const auto entries = make_entries(400);
  ASSERT_TRUE(idx.bulk_insert(std::span<const IndexEntry>(entries)).ok());

  Result<DiskIndex> scaled =
      idx.scaled(std::make_unique<storage::MemBlockDevice>());
  ASSERT_TRUE(scaled.ok()) << scaled.error().to_string();

  EXPECT_EQ(scaled.value().params().prefix_bits, 6u);
  EXPECT_EQ(scaled.value().entry_count(), 400u);
  for (const IndexEntry& e : entries) {
    const auto r = scaled.value().lookup(e.fp);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), e.container);
  }
}

TEST(CapacityScalingTest, RehomesOverflowedEntries) {
  // Fill one bucket past capacity so entries overflow, then scale: in the
  // doubled index every entry must sit in its true home bucket again.
  DiskIndex idx = make_index(2, 1);
  const std::uint64_t capacity = idx.params().bucket_capacity();
  std::vector<Fingerprint> victims;
  for (std::uint64_t i = 0; victims.size() < capacity + 6; ++i) {
    const Fingerprint fp = Sha1::hash_counter(i);
    if (idx.bucket_of(fp) == 1) victims.push_back(fp);
  }
  for (std::size_t i = 0; i < victims.size(); ++i) {
    ASSERT_TRUE(idx.insert(victims[i], ContainerId{i + 1}).ok());
  }
  ASSERT_GT(idx.stats().value().overflowed_entries, 0u);

  Result<DiskIndex> scaled =
      idx.scaled(std::make_unique<storage::MemBlockDevice>());
  ASSERT_TRUE(scaled.ok());
  // Halved load per bucket: nothing should remain overflowed.
  EXPECT_EQ(scaled.value().stats().value().overflowed_entries, 0u);
  for (std::size_t i = 0; i < victims.size(); ++i) {
    EXPECT_EQ(scaled.value().lookup(victims[i]).value(), ContainerId{i + 1});
  }
}

TEST(CapacityScalingTest, ScaledIndexAcceptsMoreEntries) {
  DiskIndex idx = make_index(1, 1);  // 40-entry capacity
  auto entries = make_entries(40);
  std::uint64_t inserted = 0;
  // May return kFull near the end; insert what fits.
  (void)idx.bulk_insert(std::span<const IndexEntry>(entries), 1024, &inserted);
  ASSERT_GT(inserted, 30u);

  Result<DiskIndex> scaled =
      idx.scaled(std::make_unique<storage::MemBlockDevice>());
  ASSERT_TRUE(scaled.ok());
  // New entries fit now.
  const auto more = make_entries(60);
  std::uint64_t more_inserted = 0;
  (void)scaled.value().bulk_insert(std::span<const IndexEntry>(more), 1024,
                                   &more_inserted);
  EXPECT_GT(scaled.value().entry_count(), inserted);
}

TEST(PerformanceScalingTest, SplitPartitionsByPrefix) {
  DiskIndex idx = make_index(6, 1);
  const auto entries = make_entries(600);
  ASSERT_TRUE(idx.bulk_insert(std::span<const IndexEntry>(entries)).ok());

  std::vector<std::unique_ptr<storage::BlockDevice>> devices;
  for (int i = 0; i < 4; ++i) {
    devices.push_back(std::make_unique<storage::MemBlockDevice>());
  }
  Result<std::vector<DiskIndex>> parts = idx.split(std::move(devices));
  ASSERT_TRUE(parts.ok()) << parts.error().to_string();
  ASSERT_EQ(parts.value().size(), 4u);

  std::uint64_t total = 0;
  for (std::size_t k = 0; k < 4; ++k) {
    const DiskIndex& part = parts.value()[k];
    EXPECT_EQ(part.params().prefix_bits, 4u);
    EXPECT_EQ(part.params().skip_bits, 2u);
    total += part.entry_count();
  }
  EXPECT_EQ(total, 600u);

  // Every entry is findable in exactly the part its first 2 bits name.
  for (const IndexEntry& e : entries) {
    const std::size_t owner =
        static_cast<std::size_t>(e.fp.prefix_bits(2));
    const auto r = parts.value()[owner].lookup(e.fp);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), e.container);
    // And absent from every other part.
    for (std::size_t k = 0; k < 4; ++k) {
      if (k != owner) EXPECT_FALSE(parts.value()[k].lookup(e.fp).ok());
    }
  }
}

TEST(PerformanceScalingTest, SplitValidation) {
  DiskIndex idx = make_index(3, 1);
  std::vector<std::unique_ptr<storage::BlockDevice>> three;
  for (int i = 0; i < 3; ++i) {
    three.push_back(std::make_unique<storage::MemBlockDevice>());
  }
  EXPECT_FALSE(idx.split(std::move(three)).ok());  // not a power of two

  std::vector<std::unique_ptr<storage::BlockDevice>> too_many;
  for (int i = 0; i < 8; ++i) {
    too_many.push_back(std::make_unique<storage::MemBlockDevice>());
  }
  EXPECT_FALSE(idx.split(std::move(too_many)).ok());  // w == n
}

TEST(PerformanceScalingTest, SplitPartsSupportBulkOps) {
  DiskIndex idx = make_index(6, 1);
  const auto entries = make_entries(300);
  ASSERT_TRUE(idx.bulk_insert(std::span<const IndexEntry>(entries)).ok());

  std::vector<std::unique_ptr<storage::BlockDevice>> devices;
  for (int i = 0; i < 2; ++i) {
    devices.push_back(std::make_unique<storage::MemBlockDevice>());
  }
  Result<std::vector<DiskIndex>> parts = idx.split(std::move(devices));
  ASSERT_TRUE(parts.ok());

  // Bulk-lookup each part with its own slice of the sorted fingerprints —
  // exactly what PSIL does after the exchange.
  for (std::size_t k = 0; k < 2; ++k) {
    std::vector<Fingerprint> subset;
    for (const IndexEntry& e : entries) {
      if (e.fp.prefix_bits(1) == k) subset.push_back(e.fp);
    }
    std::sort(subset.begin(), subset.end());
    std::uint64_t found = 0;
    ASSERT_TRUE(parts.value()[k]
                    .bulk_lookup(std::span<const Fingerprint>(subset),
                                 [&](std::size_t, ContainerId) { ++found; })
                    .ok());
    EXPECT_EQ(found, subset.size());
  }
}

TEST(ScalingCompositionTest, ScaleThenSplitThenLookup) {
  // The full lifecycle a growing deployment follows: capacity-scale,
  // then split across servers, with no entry lost at any step.
  DiskIndex idx = make_index(4, 1);
  const auto entries = make_entries(250);
  std::uint64_t inserted = 0;
  (void)idx.bulk_insert(std::span<const IndexEntry>(entries), 1024, &inserted);

  Result<DiskIndex> scaled =
      idx.scaled(std::make_unique<storage::MemBlockDevice>());
  ASSERT_TRUE(scaled.ok());
  EXPECT_EQ(scaled.value().entry_count(), inserted);

  std::vector<std::unique_ptr<storage::BlockDevice>> devices;
  for (int i = 0; i < 2; ++i) {
    devices.push_back(std::make_unique<storage::MemBlockDevice>());
  }
  Result<std::vector<DiskIndex>> parts =
      scaled.value().split(std::move(devices));
  ASSERT_TRUE(parts.ok());
  std::uint64_t found = 0;
  for (const IndexEntry& e : entries) {
    const std::size_t owner = static_cast<std::size_t>(e.fp.prefix_bits(1));
    if (parts.value()[owner].lookup(e.fp).ok()) ++found;
  }
  EXPECT_EQ(found, inserted);
}

}  // namespace
}  // namespace debar::index
