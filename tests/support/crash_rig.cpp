#include "support/crash_rig.hpp"

#include <cassert>
#include <span>

#include "common/fmt.hpp"
#include "index/recovery.hpp"

namespace debar::testsupport {

namespace {

/// Mint a MemBlockDevice wrapped in a FaultyBlockDevice over `injector`.
std::unique_ptr<storage::BlockDevice> faulty_mem_device(
    const std::shared_ptr<storage::FaultInjector>& injector,
    storage::MemBlockDevice** inner_view = nullptr) {
  auto inner = std::make_unique<storage::MemBlockDevice>();
  if (inner_view != nullptr) *inner_view = inner.get();
  return std::make_unique<storage::FaultyBlockDevice>(std::move(inner),
                                                      injector);
}

/// Clone a frozen in-memory image into a fresh (fault-free) device.
std::unique_ptr<storage::MemBlockDevice> clone_image(
    const storage::MemBlockDevice& source) {
  auto copy = std::make_unique<storage::MemBlockDevice>();
  const ByteSpan bytes = source.contents();
  if (!bytes.empty()) {
    const Status s = copy->write(0, bytes);
    assert(s.ok());
    (void)s;
  }
  return copy;
}

}  // namespace

CrashRig::CrashRig(Options options, std::vector<core::Dataset> generations)
    : options_(options), generations_(std::move(generations)) {
  storage::FaultConfig quiet;
  quiet.seed = options_.seed;
  injector_ = std::make_shared<storage::FaultInjector>(quiet);

  std::vector<std::unique_ptr<storage::BlockDevice>> nodes;
  node_inner_.resize(options_.nodes, nullptr);
  for (std::size_t i = 0; i < options_.nodes; ++i) {
    nodes.push_back(faulty_mem_device(injector_, &node_inner_[i]));
  }
  auto repo = storage::ChunkRepository::open(std::move(nodes));
  assert(repo.ok() && "opening empty node devices cannot fail");
  repo_ = std::move(repo).value();

  metadata_ = std::make_unique<core::MetadataStore>(
      faulty_mem_device(injector_, &metadata_inner_));
  director_.attach_metadata_store(metadata_.get());

  core::BackupServerConfig cfg;
  cfg.index_params = options_.index_params;
  cfg.chunk_store.io_buckets = options_.io_buckets;
  cfg.chunk_store.dedup2 = options_.dedup2;
  cfg.log_device_factory = [injector = injector_] {
    return faulty_mem_device(injector);
  };
  cfg.index_device_factory = cfg.log_device_factory;
  server_ = std::make_unique<core::BackupServer>(0, cfg, repo_.get(),
                                                 &director_);
  engine_ = std::make_unique<core::BackupEngine>("crash-client", &director_);
  job_ = director_.define_job("crash-client", "dataset");
}

RunOutcome CrashRig::run() {
  RunOutcome outcome;
  for (std::uint32_t g = 0; g < generations_.size(); ++g) {
    if (Status s = run_generation(g); !s.ok()) {
      outcome.failed = true;
      outcome.error = s.to_string();
      return outcome;
    }
    ++outcome.acked;
  }
  return outcome;
}

Status CrashRig::run_generation(std::uint32_t g) {
  std::uint64_t at = injector_->op_count();
  const auto mark = [&](const char* window) {
    windows_.push_back({window, g, at, injector_->op_count()});
    at = injector_->op_count();
  };

  // Window 1: dedup-1 — chunk-log appends + the version's metadata append.
  Result<core::BackupRunStats> backup =
      engine_->run_backup(job_, generations_[g], server_->file_store());
  if (!backup.ok()) return backup.status();
  mark("chunk-log-append");

  core::ChunkStore& store = server_->chunk_store();
  const std::vector<Fingerprint> undetermined =
      server_->file_store().take_undetermined();

  // Window 2: SIL over the undetermined fingerprint file.
  std::vector<std::uint8_t> found;
  Result<core::SilResult> sil = store.sil(undetermined, found);
  if (!sil.ok()) return sil.status();
  mark("sil");

  std::vector<Fingerprint> new_fps;
  new_fps.reserve(undetermined.size());
  for (std::size_t i = 0; i < undetermined.size(); ++i) {
    if (found[i] == 0) new_fps.push_back(undetermined[i]);
  }

  // Window 3: chunk storing — log replay + container commit write-through.
  Result<core::StoreResult> stored = store.store_new_chunks(new_fps);
  if (!stored.ok()) return stored.status();
  store.add_pending(std::span<const IndexEntry>(stored.value().entries));
  store.clear_log();
  mark("container-commit");

  // Window 4: SIU flush of the pending entries into the disk index.
  Result<core::SiuResult> siu = store.siu();
  if (!siu.ok()) return siu.status();
  mark("siu");
  return Status::Ok();
}

Status CrashRig::recover_and_verify(std::uint32_t acked) const {
  // Reopen the repository from the frozen node images. A crashed append
  // may have left a torn tail frame; open() must shrug it off.
  std::vector<std::unique_ptr<storage::BlockDevice>> nodes;
  for (const storage::MemBlockDevice* inner : node_inner_) {
    nodes.push_back(clone_image(*inner));
  }
  Result<std::unique_ptr<storage::ChunkRepository>> repo =
      storage::ChunkRepository::open(std::move(nodes));
  if (!repo.ok()) {
    return {repo.error().code,
            "repository reopen: " + repo.error().message};
  }

  // Replay the metadata log (torn tail record likewise tolerated).
  core::MetadataStore metadata(clone_image(*metadata_inner_));
  core::Director director;
  director.attach_metadata_store(&metadata);
  if (Status s = director.recover(); !s.ok()) {
    return {s.code(), "metadata recovery: " + s.message()};
  }
  if (director.version_count(job_) < acked) {
    return {Errc::kCorrupt,
            format("metadata lost acked versions: {} recovered, {} acked",
                   director.version_count(job_), acked)};
  }

  // The index device died with the machine: rebuild from the
  // self-describing containers (the Section 4.1 disaster path).
  Result<index::DiskIndex> rebuilt = index::rebuild_index(
      *repo.value(), std::make_unique<storage::MemBlockDevice>(),
      options_.index_params);
  if (!rebuilt.ok()) {
    return {rebuilt.error().code,
            "index rebuild: " + rebuilt.error().message};
  }

  core::BackupServerConfig cfg;
  cfg.index_params = options_.index_params;
  cfg.chunk_store.io_buckets = options_.io_buckets;
  cfg.chunk_store.dedup2 = options_.dedup2;
  core::BackupServer server(0, cfg, repo.value().get(), &director);
  server.chunk_store().index() = std::move(rebuilt).value();

  core::BackupEngine engine("crash-client", &director);
  for (std::uint32_t v = 1; v <= acked; ++v) {
    Result<core::Dataset> restored = engine.restore(job_, v, server,
                                                    /*verify=*/true);
    if (!restored.ok()) {
      return {restored.error().code,
              format("restore v{}: {}", v, restored.error().message)};
    }
    const core::Dataset& expected = generations_[v - 1];
    if (restored.value().files.size() != expected.files.size()) {
      return {Errc::kCorrupt,
              format("restore v{}: {} files (expected {})", v,
                     restored.value().files.size(), expected.files.size())};
    }
    for (std::size_t i = 0; i < expected.files.size(); ++i) {
      const core::FileData& got = restored.value().files[i];
      const core::FileData& want = expected.files[i];
      if (got.path != want.path || got.content != want.content) {
        return {Errc::kCorrupt,
                format("restore v{}: file {} ({}) diverges", v, i,
                       want.path)};
      }
    }
  }
  return Status::Ok();
}

}  // namespace debar::testsupport
