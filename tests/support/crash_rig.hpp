// Crash-consistency rig: a single-server DEBAR deployment whose every
// device — repository node container logs, metadata log, chunk log, disk
// index — is a FaultyBlockDevice sharing ONE FaultInjector, so a single
// global op counter spans the whole storage stack and a crash point
// freezes the deployment at one instant.
//
// The rig drives the dedup-2 phases by hand (instead of run_dedup2) so it
// can record the op-count span of each crash window per generation:
//
//   chunk-log-append   client backup: chunk-log writes + metadata append
//   sil                sequential index lookup reads
//   container-commit   chunk-log replay reads + container frame writes
//   siu                sequential index update read-modify-writes
//
// A backup generation is ACKED only when all four phases completed. The
// durability invariant under test: after a crash at ANY op, every acked
// generation restores byte-identical from the frozen disk images alone
// (repository reopen + metadata replay + index rebuild).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/backup_engine.hpp"
#include "core/backup_server.hpp"
#include "core/metadata_store.hpp"
#include "index/disk_index.hpp"
#include "storage/faulty_block_device.hpp"

namespace debar::testsupport {

/// One contiguous span of global op indices belonging to a crash window.
struct WindowSpan {
  std::string window;
  std::uint32_t generation = 0;  // 0-based
  std::uint64_t begin = 0;       // first op index inside the window
  std::uint64_t end = 0;         // one past the last
  [[nodiscard]] bool empty() const noexcept { return begin >= end; }
};

struct RunOutcome {
  std::uint32_t acked = 0;  // generations whose whole pipeline completed
  bool failed = false;
  std::string error;  // first failing phase, for diagnostics
};

class CrashRig {
 public:
  struct Options {
    std::uint64_t seed = 0xC4A5;
    std::size_t nodes = 2;
    index::DiskIndexParams index_params{.prefix_bits = 6,
                                        .blocks_per_bucket = 2};
    /// Small SIL/SIU batching so the index windows span several ops.
    std::uint64_t io_buckets = 8;
    /// Dedup-2 threading for the server under test. The default (serial)
    /// keeps the op stream fully deterministic; threads > 1 exercises the
    /// sharded-SIL / pipelined-SIU windows. The per-phase op COUNT stays
    /// deterministic either way (same set of ops, any interleaving), so
    /// window spans recorded from a fault-free probe still locate crash
    /// points in the right phase.
    core::Dedup2Options dedup2{.threads = 1, .pipeline_depth = 2};
  };

  /// Builds the deployment fault-free (the injector is armed later), so
  /// two rigs with equal options + datasets issue identical op streams.
  CrashRig(Options options, std::vector<core::Dataset> generations);

  /// Arm fault rates and/or the crash point. `faults.seed` is ignored —
  /// the stream continues from the construction seed.
  void arm(const storage::FaultConfig& faults) { injector_->set_config(faults); }

  /// Back up every generation in sequence until the first failure.
  [[nodiscard]] RunOutcome run();

  /// Clone the frozen device images, recover a fresh fault-free
  /// deployment from them, and verify versions 1..acked restore
  /// byte-identical to their source datasets.
  [[nodiscard]] Status recover_and_verify(std::uint32_t acked) const;

  [[nodiscard]] const std::vector<WindowSpan>& windows() const noexcept {
    return windows_;
  }
  [[nodiscard]] const storage::FaultInjector& injector() const noexcept {
    return *injector_;
  }

 private:
  [[nodiscard]] Status run_generation(std::uint32_t g);

  Options options_;
  std::vector<core::Dataset> generations_;

  std::shared_ptr<storage::FaultInjector> injector_;
  /// Raw views of the devices under the faulty wrappers, for freezing.
  std::vector<storage::MemBlockDevice*> node_inner_;
  storage::MemBlockDevice* metadata_inner_ = nullptr;

  std::unique_ptr<storage::ChunkRepository> repo_;
  std::unique_ptr<core::MetadataStore> metadata_;
  core::Director director_;
  std::unique_ptr<core::BackupServer> server_;
  std::unique_ptr<core::BackupEngine> engine_;
  std::uint64_t job_ = 0;

  std::vector<WindowSpan> windows_;
};

}  // namespace debar::testsupport
