// Reference-model property tests for the caching layers: the LPC cache
// against a brute-force model, and the preliminary filter against set
// semantics.
#include <gtest/gtest.h>

#include <deque>
#include <set>
#include <unordered_map>

#include "cache/lpc_cache.hpp"
#include "common/rng.hpp"
#include "common/sha1.hpp"
#include "filter/preliminary_filter.hpp"

namespace debar {
namespace {

std::shared_ptr<const storage::Container> make_container(std::uint64_t id,
                                                         std::uint64_t base,
                                                         std::size_t chunks) {
  auto c = std::make_shared<storage::Container>(64 * 1024);
  for (std::size_t i = 0; i < chunks; ++i) {
    std::vector<Byte> data(64, static_cast<Byte>(base + i));
    c->try_append(Sha1::hash_counter(base + i),
                  ByteSpan(data.data(), data.size()));
  }
  c->set_id(ContainerId{id});
  return c;
}

class LpcModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LpcModelTest, AgreesWithBruteForceLru) {
  Xoshiro256 rng(GetParam());
  constexpr std::size_t kCap = 3;
  cache::LpcCache cache(kCap);

  // Model: list of container ids in recency order (front = most recent)
  // plus the fingerprint sets of every container ever created.
  std::deque<std::uint64_t> recency;
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, std::size_t>>
      container_contents;  // id -> (fp base, chunk count)
  std::uint64_t next_id = 1;

  auto model_find_container =
      [&](const Fingerprint& fp) -> std::optional<std::uint64_t> {
    // Newest-registered container wins for shared fingerprints, which is
    // ambiguous in a model; avoid by giving containers disjoint ranges.
    for (const std::uint64_t id : recency) {
      const auto& [base, count] = container_contents.at(id);
      for (std::size_t i = 0; i < count; ++i) {
        if (Sha1::hash_counter(base + i) == fp) return id;
      }
    }
    return std::nullopt;
  };

  for (int step = 0; step < 600; ++step) {
    if (rng.chance(0.35)) {
      // Insert a fresh container (disjoint fingerprint range).
      const std::uint64_t id = next_id++;
      const std::uint64_t base = id * 1000;
      const std::size_t chunks = 2 + rng.below(6);
      container_contents[id] = {base, chunks};
      cache.insert(make_container(id, base, chunks));
      recency.push_front(id);
      if (recency.size() > kCap) recency.pop_back();
    } else if (!container_contents.empty()) {
      // Probe a random fingerprint from any known container.
      auto it = container_contents.begin();
      std::advance(it, static_cast<long>(rng.below(container_contents.size())));
      const auto& [base, count] = it->second;
      const Fingerprint fp = Sha1::hash_counter(base + rng.below(count));

      const auto model_hit = model_find_container(fp);
      const auto cache_hit = cache.find(fp);
      ASSERT_EQ(cache_hit.has_value(), model_hit.has_value())
          << "step " << step;
      if (model_hit.has_value()) {
        // LRU refresh in the model too.
        recency.erase(std::find(recency.begin(), recency.end(), *model_hit));
        recency.push_front(*model_hit);
      }
    }
    ASSERT_EQ(cache.container_count(), recency.size());
    for (const std::uint64_t id : recency) {
      ASSERT_TRUE(cache.contains_container(ContainerId{id}));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpcModelTest, ::testing::Values(1, 7, 42));

class FilterModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FilterModelTest, UnboundedFilterMatchesSetSemantics) {
  // With capacity never reached, admit() must behave exactly like a set:
  // first sighting admits, every later sighting suppresses; collect
  // returns exactly the distinct admitted+referenced fingerprints.
  Xoshiro256 rng(GetParam());
  filter::PreliminaryFilter filter({.hash_bits = 6, .capacity = 100000});
  std::set<Fingerprint> seeded, referenced;

  for (int i = 0; i < 300; ++i) {
    const Fingerprint fp = Sha1::hash_counter(rng.below(150));
    if (rng.chance(0.3) && !filter.contains(fp) && !referenced.contains(fp)) {
      filter.seed(fp);
      seeded.insert(fp);
      continue;
    }
    const bool expect_admit = !seeded.contains(fp) && !referenced.contains(fp);
    EXPECT_EQ(filter.admit(fp), expect_admit) << "step " << i;
    referenced.insert(fp);
  }

  const auto undetermined = filter.collect_undetermined();
  EXPECT_EQ(undetermined.size(), referenced.size());
  for (const Fingerprint& fp : undetermined) {
    EXPECT_TRUE(referenced.contains(fp));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterModelTest,
                         ::testing::Values(2, 11, 77));

TEST(FilterModelTest, BoundedFilterNeverLosesReferencedFingerprints) {
  // Under heavy eviction pressure the filter may re-admit duplicates
  // (wire inefficiency) but collect_undetermined must still cover every
  // referenced fingerprint — the correctness half of the contract.
  Xoshiro256 rng(5);
  filter::PreliminaryFilter filter({.hash_bits = 4, .capacity = 12});
  std::set<Fingerprint> referenced;
  for (int i = 0; i < 500; ++i) {
    const Fingerprint fp = Sha1::hash_counter(rng.below(60));
    (void)filter.admit(fp);
    referenced.insert(fp);
  }
  const auto undetermined = filter.collect_undetermined();
  const std::set<Fingerprint> collected(undetermined.begin(),
                                        undetermined.end());
  for (const Fingerprint& fp : referenced) {
    EXPECT_TRUE(collected.contains(fp));
  }
}

}  // namespace
}  // namespace debar
