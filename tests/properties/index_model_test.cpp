// Stateful property test: the DiskIndex against an in-memory reference
// model, over long randomized operation sequences including bulk ops,
// capacity scaling and splitting.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.hpp"
#include "common/sha1.hpp"
#include "index/disk_index.hpp"
#include "storage/block_device.hpp"

namespace debar::index {
namespace {

class IndexModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IndexModelTest, RandomOpsAgreeWithReference) {
  Xoshiro256 rng(GetParam());
  auto created = DiskIndex::create(
      std::make_unique<storage::MemBlockDevice>(),
      {.prefix_bits = 6, .blocks_per_bucket = 2});
  ASSERT_TRUE(created.ok());
  DiskIndex idx = std::move(created).value();

  std::map<Fingerprint, ContainerId> model;
  std::uint64_t next_counter = 0;
  std::uint64_t next_container = 1;

  for (int step = 0; step < 400; ++step) {
    const std::uint64_t op = rng.below(100);
    if (op < 40) {
      // Point insert of a fresh fingerprint.
      const Fingerprint fp = Sha1::hash_counter(next_counter++);
      const ContainerId cid{next_container++};
      const Status s = idx.insert(fp, cid);
      if (s.ok()) {
        model.emplace(fp, cid);
      } else {
        ASSERT_EQ(s.code(), Errc::kFull);
        // Full neighbourhood: scale and retry, as the system would.
        auto scaled = idx.scaled(std::make_unique<storage::MemBlockDevice>());
        ASSERT_TRUE(scaled.ok());
        idx = std::move(scaled).value();
        ASSERT_TRUE(idx.insert(fp, cid).ok());
        model.emplace(fp, cid);
      }
    } else if (op < 55 && !model.empty()) {
      // Duplicate insert must be rejected and change nothing.
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.below(model.size())));
      const Status s = idx.insert(it->first, ContainerId{999999});
      EXPECT_EQ(s.code(), Errc::kInvalidArgument);
    } else if (op < 70) {
      // Bulk insert of a small fresh batch.
      std::vector<IndexEntry> batch;
      const std::uint64_t n = 1 + rng.below(30);
      for (std::uint64_t i = 0; i < n; ++i) {
        batch.push_back(
            {Sha1::hash_counter(next_counter++), ContainerId{next_container++}});
      }
      std::sort(batch.begin(), batch.end(),
                [](const IndexEntry& a, const IndexEntry& b) {
                  return a.fp < b.fp;
                });
      std::uint64_t inserted = 0;
      std::vector<std::size_t> failed;
      const Status s = idx.bulk_insert(std::span<const IndexEntry>(batch),
                                       1 + rng.below(16), &inserted, &failed);
      std::vector<bool> ok(batch.size(), true);
      for (const std::size_t f : failed) ok[f] = false;
      if (!s.ok()) ASSERT_EQ(s.code(), Errc::kFull);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (ok[i]) model.emplace(batch[i].fp, batch[i].container);
      }
    } else if (op < 85 && !model.empty()) {
      // Bulk lookup over a mixed present/absent sorted set.
      std::vector<Fingerprint> queries;
      for (int q = 0; q < 20; ++q) {
        if (rng.chance(0.5)) {
          auto it = model.begin();
          std::advance(it, static_cast<long>(rng.below(model.size())));
          queries.push_back(it->first);
        } else {
          queries.push_back(Sha1::hash_counter(1'000'000 + rng.below(10000)));
        }
      }
      std::sort(queries.begin(), queries.end());
      queries.erase(std::unique(queries.begin(), queries.end()),
                    queries.end());
      std::vector<std::uint8_t> found(queries.size(), 0);
      std::vector<ContainerId> got(queries.size());
      ASSERT_TRUE(idx.bulk_lookup(
                         std::span<const Fingerprint>(queries),
                         [&](std::size_t i, ContainerId id) {
                           found[i] = 1;
                           got[i] = id;
                         },
                         1 + rng.below(16))
                      .ok());
      for (std::size_t i = 0; i < queries.size(); ++i) {
        const auto it = model.find(queries[i]);
        ASSERT_EQ(found[i] != 0, it != model.end()) << "step " << step;
        if (found[i]) ASSERT_EQ(got[i], it->second);
      }
    } else if (op < 90 && !model.empty()) {
      // Bulk erase of a random existing subset (the GC path).
      std::vector<Fingerprint> victims;
      for (int v = 0; v < 5 && !model.empty(); ++v) {
        auto it = model.begin();
        std::advance(it, static_cast<long>(rng.below(model.size())));
        victims.push_back(it->first);
        model.erase(it);
      }
      std::sort(victims.begin(), victims.end());
      victims.erase(std::unique(victims.begin(), victims.end()),
                    victims.end());
      std::uint64_t erased = 0;
      ASSERT_TRUE(idx.bulk_erase(std::span<const Fingerprint>(victims),
                                 1 + rng.below(16), &erased)
                      .ok());
      ASSERT_EQ(erased, victims.size());
      for (const Fingerprint& fp : victims) {
        ASSERT_FALSE(idx.lookup(fp).ok());
      }
    } else if (op < 92 && idx.params().prefix_bits < 12) {
      // Capacity scaling at a random moment (bounded so the test's
      // device stays small: real systems scale when full, not randomly).
      auto scaled = idx.scaled(std::make_unique<storage::MemBlockDevice>());
      ASSERT_TRUE(scaled.ok());
      idx = std::move(scaled).value();
    } else if (!model.empty()) {
      // Point lookups agree.
      auto it = model.begin();
      std::advance(it, static_cast<long>(rng.below(model.size())));
      const auto r = idx.lookup(it->first);
      ASSERT_TRUE(r.ok());
      ASSERT_EQ(r.value(), it->second);
    }
    ASSERT_EQ(idx.entry_count(), model.size()) << "step " << step;
  }

  // Final exhaustive agreement.
  for (const auto& [fp, cid] : model) {
    const auto r = idx.lookup(fp);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), cid);
  }
  const auto stats = idx.stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().entries, model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexModelTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(IndexModelTest, SplitAgreesWithReferenceAcrossParts) {
  Xoshiro256 rng(99);
  auto created = DiskIndex::create(
      std::make_unique<storage::MemBlockDevice>(),
      {.prefix_bits = 7, .blocks_per_bucket = 2});
  ASSERT_TRUE(created.ok());

  std::map<Fingerprint, ContainerId> model;
  std::vector<IndexEntry> entries;
  for (std::uint64_t i = 0; i < 800; ++i) {
    entries.push_back({Sha1::hash_counter(i), ContainerId{i + 1}});
    model.emplace(entries.back().fp, entries.back().container);
  }
  std::sort(entries.begin(), entries.end(),
            [](const IndexEntry& a, const IndexEntry& b) { return a.fp < b.fp; });
  ASSERT_TRUE(
      created.value().bulk_insert(std::span<const IndexEntry>(entries)).ok());

  std::vector<std::unique_ptr<storage::BlockDevice>> devices;
  for (int i = 0; i < 8; ++i) {
    devices.push_back(std::make_unique<storage::MemBlockDevice>());
  }
  auto parts = created.value().split(std::move(devices));
  ASSERT_TRUE(parts.ok());

  for (const auto& [fp, cid] : model) {
    const std::size_t owner = static_cast<std::size_t>(fp.prefix_bits(3));
    EXPECT_EQ(parts.value()[owner].lookup(fp).value(), cid);
  }
}

}  // namespace
}  // namespace debar::index
