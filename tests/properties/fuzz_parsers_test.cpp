// Corruption-robustness sweeps: every on-disk parser must reject or
// survive arbitrary bit flips, truncations and garbage without crashing
// or reading out of bounds — never "succeed" into undefined behaviour.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/sha1.hpp"
#include "common/serial.hpp"
#include "core/backup_engine.hpp"
#include "core/metadata_store.hpp"
#include "index/disk_index.hpp"
#include "storage/block_device.hpp"
#include "storage/container.hpp"

namespace debar {
namespace {

std::vector<Byte> valid_container_image() {
  storage::Container c(16 * 1024);
  for (std::uint64_t i = 0; i < 8; ++i) {
    const Fingerprint fp = Sha1::hash_counter(i);
    const auto payload = core::BackupEngine::synthetic_payload(fp, 700);
    c.try_append(fp, ByteSpan(payload.data(), payload.size()));
  }
  c.set_id(ContainerId{5});
  return c.serialize();
}

std::vector<Byte> valid_metadata_record() {
  core::JobVersionRecord rec;
  rec.job_id = 3;
  rec.version = 2;
  core::FileRecord f;
  f.meta = {.path = "a/b/c.dat", .size = 4096, .mtime = 9, .mode = 0644};
  for (std::uint64_t i = 0; i < 10; ++i) {
    f.chunk_fps.push_back(Sha1::hash_counter(i));
    f.chunk_sizes.push_back(4096);
  }
  rec.files.push_back(f);
  return core::serialize_record(rec);
}

TEST(FuzzContainerTest, SingleBitFlipsNeverCrash) {
  const auto image = valid_container_image();
  Xoshiro256 rng(1);
  // Flip one random bit at a time across many trials; parsing must
  // either succeed (flip landed in padding/payload) or fail cleanly.
  for (int trial = 0; trial < 2000; ++trial) {
    auto corrupt = image;
    const std::size_t byte = rng.below(corrupt.size());
    corrupt[byte] ^= static_cast<Byte>(1u << rng.below(8));
    const auto r = storage::Container::deserialize(
        ByteSpan(corrupt.data(), corrupt.size()));
    if (!r.ok()) {
      EXPECT_EQ(r.error().code, Errc::kCorrupt);
    }
  }
}

TEST(FuzzContainerTest, TruncationsNeverCrash) {
  const auto image = valid_container_image();
  for (std::size_t len = 0; len < image.size(); len += 97) {
    const auto r =
        storage::Container::deserialize(ByteSpan(image.data(), len));
    // Truncation inside the declared sections must fail; truncation
    // of trailing padding may still parse.
    (void)r;
  }
  SUCCEED();
}

TEST(FuzzContainerTest, RandomGarbageRejected) {
  Xoshiro256 rng(2);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<Byte> garbage(64 + rng.below(4096));
    for (auto& b : garbage) b = static_cast<Byte>(rng());
    const auto r = storage::Container::deserialize(
        ByteSpan(garbage.data(), garbage.size()));
    // With random magic the odds of acceptance are ~2^-32 per trial.
    EXPECT_FALSE(r.ok());
  }
}

TEST(FuzzMetadataTest, SingleByteCorruptionNeverCrashes) {
  const auto payload = valid_metadata_record();
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 2000; ++trial) {
    auto corrupt = payload;
    corrupt[rng.below(corrupt.size())] = static_cast<Byte>(rng());
    const auto r =
        core::parse_record(ByteSpan(corrupt.data(), corrupt.size()));
    if (r.ok()) {
      // A flip in fingerprint bytes or sizes can still parse; the record
      // must at least be structurally sane.
      for (const auto& f : r.value().files) {
        EXPECT_EQ(f.chunk_fps.size(), f.chunk_sizes.size());
      }
    }
  }
}

TEST(FuzzMetadataTest, EveryTruncationFailsCleanly) {
  const auto payload = valid_metadata_record();
  for (std::size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(core::parse_record(ByteSpan(payload.data(), len)).ok())
        << "truncation at " << len << " parsed";
  }
}

TEST(FuzzMetadataTest, RandomGarbageRejected) {
  Xoshiro256 rng(4);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<Byte> garbage(rng.below(512));
    for (auto& b : garbage) b = static_cast<Byte>(rng());
    EXPECT_FALSE(
        core::parse_record(ByteSpan(garbage.data(), garbage.size())).ok());
  }
}

TEST(FuzzByteReaderTest, NeverReadsPastEnd) {
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<Byte> data(rng.below(64));
    for (auto& b : data) b = static_cast<Byte>(rng());
    ByteReader r(ByteSpan(data.data(), data.size()));
    // Random sequence of reads; must terminate with ok()==false or
    // consume exactly the buffer, never UB (run under sanitizers).
    for (int op = 0; op < 20; ++op) {
      switch (rng.below(6)) {
        case 0: r.u8(); break;
        case 1: r.u16(); break;
        case 2: r.u32(); break;
        case 3: r.u64(); break;
        case 4: r.fingerprint(); break;
        default: r.skip(rng.below(16)); break;
      }
    }
    EXPECT_LE(r.position(), data.size());
  }
}

TEST(FuzzIndexBucketTest, GarbageBucketImagesParseSafely) {
  // parse_bucket trusts per-block counts; feed random block images
  // through a formatted index device and ensure lookups stay safe.
  auto idx = index::DiskIndex::create(
      std::make_unique<storage::MemBlockDevice>(),
      {.prefix_bits = 4, .blocks_per_bucket = 2});
  ASSERT_TRUE(idx.ok());
  Xoshiro256 rng(6);
  std::vector<Byte> garbage(idx.value().params().bucket_bytes());
  for (auto& b : garbage) b = static_cast<Byte>(rng());
  ASSERT_TRUE(
      idx.value().device().write(0, ByteSpan(garbage.data(), garbage.size()))
          .ok());
  // Reading bucket 0 must not crash; counts are clamped to block capacity.
  const auto bucket = idx.value().read_bucket(0);
  ASSERT_TRUE(bucket.ok());
  EXPECT_LE(bucket.value().entries.size(),
            idx.value().params().bucket_capacity());
  // A lookup that routes to the garbage bucket is safe too.
  for (std::uint64_t i = 0; i < 64; ++i) {
    (void)idx.value().lookup(Sha1::hash_counter(i));
  }
}

}  // namespace
}  // namespace debar
