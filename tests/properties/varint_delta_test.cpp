// Property tests for the delta-varint helpers (net/varint_delta): decode
// after encode must be the identity over arbitrary strictly ascending
// runs — including the boundary shapes (empty, singleton zero, u32 max,
// dense runs) — zigzag must be a self-inverse bijection, and malformed
// runs (unsorted input's zero deltas, out-of-bound values, truncations)
// must be rejected, never half-decoded.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "common/rng.hpp"
#include "net/varint_delta.hpp"

namespace debar::net {
namespace {

std::vector<Byte> encoded(std::span<const std::uint32_t> values) {
  std::vector<Byte> out;
  ByteWriter w(out);
  write_ascending_deltas(w, values);
  return out;
}

TEST(VarintDeltaTest, RandomAscendingRunsRoundTrip) {
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    // Random strictly ascending run with random density.
    std::vector<std::uint32_t> values;
    std::uint64_t v = rng.below(4);
    const std::size_t count = rng.below(200);
    const std::uint64_t max_step = 1 + rng.below(1u << rng.below(20));
    for (std::size_t i = 0; i < count; ++i) {
      values.push_back(static_cast<std::uint32_t>(v));
      v += 1 + rng.below(max_step);
      if (v > std::numeric_limits<std::uint32_t>::max()) break;
    }
    const std::vector<Byte> bytes = encoded(values);
    EXPECT_EQ(bytes.size(), ascending_deltas_size(values));

    const std::uint64_t bound =
        values.empty() ? 1 : std::uint64_t{values.back()} + 1;
    ByteReader r(ByteSpan(bytes.data(), bytes.size()));
    std::vector<std::uint32_t> back;
    ASSERT_TRUE(read_ascending_deltas(
        r, static_cast<std::uint32_t>(values.size()), bound, back));
    EXPECT_EQ(back, values);
    EXPECT_EQ(r.remaining(), 0u);
  }
}

TEST(VarintDeltaTest, BoundaryRuns) {
  const std::uint32_t kMax = std::numeric_limits<std::uint32_t>::max();
  const std::vector<std::vector<std::uint32_t>> runs = {
      {},                // empty
      {0},               // the +1 bias: value 0 still encodes delta 1
      {kMax},            // largest single value
      {0, kMax},         // widest possible delta
      {0, 1, 2, 3, 4},   // dense run: one byte per element
  };
  for (const std::vector<std::uint32_t>& values : runs) {
    const std::vector<Byte> bytes = encoded(values);
    const std::uint64_t bound =
        values.empty() ? 1 : std::uint64_t{values.back()} + 1;
    ByteReader r(ByteSpan(bytes.data(), bytes.size()));
    std::vector<std::uint32_t> back;
    ASSERT_TRUE(read_ascending_deltas(
        r, static_cast<std::uint32_t>(values.size()), bound, back));
    EXPECT_EQ(back, values);
  }
  // Dense runs cost exactly one byte per verdict (the paper's wire model).
  EXPECT_EQ(ascending_deltas_size(runs.back()), runs.back().size());
}

TEST(VarintDeltaTest, DuplicatesAndUnsortedRunsAreRejectedByTheDecoder) {
  // The encoder's precondition is strict ascent; violating it produces a
  // zero (or wrapped) delta the decoder must refuse — never a garbage run.
  const std::vector<std::vector<std::uint32_t>> bad_runs = {
      {5, 5},        // duplicate -> zero delta
      {7, 3},        // descending -> wrapped delta past the bound
      {0, 0, 0},     // all-duplicate
  };
  for (const std::vector<std::uint32_t>& values : bad_runs) {
    const std::vector<Byte> bytes = encoded(values);
    ByteReader r(ByteSpan(bytes.data(), bytes.size()));
    std::vector<std::uint32_t> out;
    EXPECT_FALSE(read_ascending_deltas(
        r, static_cast<std::uint32_t>(values.size()), 8, out));
    EXPECT_TRUE(out.empty()) << "rejected decode leaked partial output";
  }
}

TEST(VarintDeltaTest, TruncationsAndBoundViolationsAreRejected) {
  Xoshiro256 rng(2);
  std::vector<std::uint32_t> values;
  for (std::uint32_t v = rng.below(10); values.size() < 64;
       v += 1 + rng.below(1000)) {
    values.push_back(v);
  }
  const std::vector<Byte> bytes = encoded(values);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    ByteReader r(ByteSpan(bytes.data(), len));
    std::vector<std::uint32_t> out;
    EXPECT_FALSE(read_ascending_deltas(
        r, static_cast<std::uint32_t>(values.size()), values.back() + 1, out));
  }
  // A bound at the last value (not one past) rejects the full run.
  ByteReader r(ByteSpan(bytes.data(), bytes.size()));
  std::vector<std::uint32_t> out;
  EXPECT_FALSE(read_ascending_deltas(
      r, static_cast<std::uint32_t>(values.size()), values.back(), out));
}

TEST(ZigzagTest, SelfInverseOverRandomAndBoundaryValues) {
  const std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  const std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  for (const std::int64_t v : {std::int64_t{0}, std::int64_t{1},
                               std::int64_t{-1}, std::int64_t{2},
                               std::int64_t{-2}, kMin, kMax, kMin + 1,
                               kMax - 1}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
  // Small magnitudes (either sign) map to small codes: the property the
  // container-delta encoding relies on.
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-64), 127u);  // still a one-byte varint

  Xoshiro256 rng(9);
  for (int trial = 0; trial < 5000; ++trial) {
    const auto v = static_cast<std::int64_t>(rng());
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
    // Bijection in the other direction too.
    const std::uint64_t u = rng();
    EXPECT_EQ(zigzag_encode(zigzag_decode(u)), u);
  }
}

TEST(VarintDeltaTest, UnsortedRunsThroughZigzagRoundTrip) {
  // The wire codec encodes arbitrary (unsorted) container-ID runs as
  // zigzag'd consecutive differences; verify that composition is the
  // identity over random runs with boundary values mixed in.
  Xoshiro256 rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint64_t> values;
    const std::size_t count = 1 + rng.below(100);
    for (std::size_t i = 0; i < count; ++i) {
      switch (rng.below(4)) {
        case 0: values.push_back(0); break;
        case 1: values.push_back(ContainerId::kMask); break;
        default: values.push_back(rng.below(ContainerId::kMask + 1)); break;
      }
    }
    std::vector<Byte> bytes;
    ByteWriter w(bytes);
    std::int64_t prev = 0;
    for (const std::uint64_t v : values) {
      w.varint(zigzag_encode(static_cast<std::int64_t>(v) - prev));
      prev = static_cast<std::int64_t>(v);
    }
    ByteReader r(ByteSpan(bytes.data(), bytes.size()));
    prev = 0;
    for (const std::uint64_t v : values) {
      const std::int64_t got = prev + zigzag_decode(r.varint());
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(static_cast<std::uint64_t>(got), v);
      prev = got;
    }
    EXPECT_EQ(r.remaining(), 0u);
  }
}

}  // namespace
}  // namespace debar::net
