// Whole-system randomized invariant tests: arbitrary interleavings of
// backups, dedup-2 rounds (with and without SIU), restores and cluster
// maintenance rounds must preserve the two global invariants of a
// de-duplication store:
//
//   1. every recorded chunk remains restorable with correct content;
//   2. no distinct fingerprint is ever stored in containers twice.
#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "common/rng.hpp"
#include "common/sha1.hpp"
#include "core/backup_engine.hpp"
#include "core/cluster.hpp"
#include "core/maintenance.hpp"

namespace debar {
namespace {

class SystemInvariantsTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SystemInvariantsTest, RandomizedClusterHistoryHoldsInvariants) {
  Xoshiro256 rng(GetParam());

  core::ClusterConfig cfg;
  cfg.routing_bits = 1 + rng.below(2);  // 2 or 4 servers
  cfg.repository_nodes = 2;
  cfg.server_config.index_params = {
      .prefix_bits = 6, .blocks_per_bucket = 2};  // small: scaling likely
  cfg.server_config.chunk_store.cache_params = {.hash_bits = 4,
                                                .capacity = 1 << 20};
  cfg.server_config.chunk_store.io_buckets = 4 + rng.below(16);
  cfg.server_config.chunk_store.siu_threshold =
      rng.chance(0.5) ? 1 : 1 << 20;  // eager or deferred SIU
  core::Cluster cluster(cfg);
  const std::size_t servers = cluster.server_count();

  std::vector<std::uint64_t> jobs;
  for (std::size_t s = 0; s < servers; ++s) {
    jobs.push_back(
        cluster.director().define_job("c" + std::to_string(s), "d"));
  }

  // All fingerprints ever referenced by any version.
  std::set<Fingerprint> referenced;
  std::uint64_t fresh_counter = 0;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> versions;

  for (int round = 0; round < 5; ++round) {
    // Random subset of servers backs up streams with heavy overlap.
    for (std::size_t s = 0; s < servers; ++s) {
      if (round > 0 && rng.chance(0.3)) continue;
      std::vector<Fingerprint> stream;
      const std::uint64_t n = 30 + rng.below(80);
      for (std::uint64_t i = 0; i < n; ++i) {
        // 60% chance of re-referencing an old fingerprint.
        const std::uint64_t counter =
            (fresh_counter > 0 && rng.chance(0.6))
                ? rng.below(fresh_counter)
                : fresh_counter++;
        stream.push_back(Sha1::hash_counter(counter));
      }

      core::FileStore& fs = cluster.server(s).file_store();
      fs.begin_job(jobs[s]);
      fs.begin_file({.path = "f", .size = stream.size() * 512, .mtime = 0,
                     .mode = 0644});
      for (const Fingerprint& fp : stream) {
        referenced.insert(fp);
        if (fs.offer_fingerprint(fp, 512)) {
          const auto payload = core::BackupEngine::synthetic_payload(fp, 512);
          ASSERT_TRUE(
              fs.receive_chunk(fp, ByteSpan(payload.data(), payload.size()))
                  .ok());
        }
      }
      fs.end_file();
      const auto rec = fs.end_job();
      ASSERT_TRUE(rec.ok());
      versions.emplace_back(jobs[s], rec.value().version);
    }

    const auto result = cluster.run_dedup2(rng.chance(0.5));
    ASSERT_TRUE(result.ok()) << result.error().to_string();

    // Occasionally run a cluster maintenance round: locality compaction
    // plus sweep and a rebuild of every index copy. Retention is
    // unbounded here, so nothing expires and every recorded version must
    // survive the round intact. With SIU entries pending (the deferred
    // configuration) the round must refuse with the RETRYABLE kBusy and
    // leave the history unperturbed — any other failure is a bug.
    if (!versions.empty() && rng.chance(0.4)) {
      core::MaintenanceJob maintenance(cluster);
      if (const Status s = maintenance.execute(); !s.ok()) {
        ASSERT_EQ(s.code(), Errc::kBusy) << s.to_string();
      }
    }
  }
  // Final settle: register everything.
  ASSERT_TRUE(cluster.run_dedup2(true).ok());

  // ---- Invariant 1: every version restores with stamped content. ----
  for (const auto& [job, version] : versions) {
    const auto restored =
        cluster.restore(job, version, rng.below(servers));
    ASSERT_TRUE(restored.ok())
        << "job " << job << " v" << version << ": "
        << restored.error().to_string();
    const auto rec = cluster.director().version(job, version);
    const auto& fps = rec->files[0].chunk_fps;
    const auto& content = restored.value().files[0].content;
    ASSERT_EQ(content.size(), fps.size() * 512);
    for (std::size_t i = 0; i < fps.size(); ++i) {
      ASSERT_TRUE(std::equal(fps[i].bytes.begin(), fps[i].bytes.end(),
                             content.begin() + i * 512));
    }
  }

  // ---- Invariant 2: no fingerprint stored twice (defrag copies are
  // expected garbage, so only count copies reachable through the index:
  // each fingerprint's indexed container must actually hold it). ----
  std::unordered_map<Fingerprint, int, FingerprintHash> indexed_copies;
  for (const Fingerprint& fp : referenced) {
    const std::size_t owner = cluster.owner_of(fp);
    const auto cid = cluster.server(owner).chunk_store().locate(fp);
    ASSERT_TRUE(cid.ok());
    const auto container = cluster.repository().read(cid.value());
    ASSERT_TRUE(container.ok());
    EXPECT_TRUE(container.value().find(fp).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SystemInvariantsTest,
                         ::testing::Values(3, 17, 29, 61));

}  // namespace
}  // namespace debar
