// Property tests pinning the FaultInjector determinism contract: the
// fault schedule — and therefore the post-crash disk image — is a pure
// function of (seed, op-kind sequence).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "storage/block_device.hpp"
#include "storage/faulty_block_device.hpp"

namespace debar::storage {
namespace {

using Action = FaultInjector::Action;

struct ScheduleEntry {
  Action action;
  std::uint64_t torn_prefix = 0;  // only meaningful for kTornWrite
};

/// Replay a fixed op-kind sequence against a fresh injector and record
/// every decision (plus the torn prefix length where one is drawn).
std::vector<ScheduleEntry> record_schedule(const FaultConfig& config,
                                           const std::vector<bool>& is_write,
                                           std::uint64_t op_bytes = 512) {
  FaultInjector injector(config);
  std::vector<ScheduleEntry> schedule;
  schedule.reserve(is_write.size());
  for (const bool w : is_write) {
    ScheduleEntry e{injector.next(w)};
    if (e.action == Action::kTornWrite) {
      e.torn_prefix = injector.torn_prefix(op_bytes);
    }
    schedule.push_back(e);
  }
  return schedule;
}

/// A deterministic mixed read/write op-kind sequence.
std::vector<bool> make_op_kinds(std::uint64_t seed, std::size_t n) {
  Xoshiro256 rng(seed);
  std::vector<bool> kinds(n);
  for (std::size_t i = 0; i < n; ++i) kinds[i] = rng.chance(0.5);
  return kinds;
}

TEST(FaultSchedule, SameSeedSameSchedule) {
  FaultConfig config;
  config.seed = 0xFEED;
  config.read_error_rate = 0.1;
  config.write_error_rate = 0.1;
  config.torn_write_rate = 0.1;
  config.crash_after_ops = 180;

  const std::vector<bool> kinds = make_op_kinds(7, 256);
  const std::vector<ScheduleEntry> a = record_schedule(config, kinds);
  const std::vector<ScheduleEntry> b = record_schedule(config, kinds);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].action, b[i].action) << "op " << i;
    EXPECT_EQ(a[i].torn_prefix, b[i].torn_prefix) << "op " << i;
  }
  // The crash point bites: every op at/after index 180 is kCrashed or the
  // single in-flight torn write.
  for (std::size_t i = 181; i < a.size(); ++i) {
    EXPECT_EQ(a[i].action, Action::kCrashed) << "op " << i;
  }
}

TEST(FaultSchedule, DifferentSeedsDiverge) {
  FaultConfig config;
  config.seed = 1;
  config.read_error_rate = 0.2;
  config.write_error_rate = 0.2;
  config.torn_write_rate = 0.2;
  const std::vector<bool> kinds = make_op_kinds(7, 512);
  const std::vector<ScheduleEntry> a = record_schedule(config, kinds);
  config.seed = 2;
  const std::vector<ScheduleEntry> b = record_schedule(config, kinds);

  std::size_t diverging = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].action != b[i].action) ++diverging;
  }
  EXPECT_GT(diverging, 0u);
}

TEST(FaultSchedule, SeedSweepCoversAllFaultKinds) {
  // Across a handful of seeds with all rates armed, every fault kind
  // must show up — the schedule is not quietly collapsing to one branch.
  std::set<Action> seen;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    FaultConfig config;
    config.seed = seed;
    config.read_error_rate = 0.15;
    config.write_error_rate = 0.15;
    config.torn_write_rate = 0.15;
    config.crash_after_ops = 120;
    for (const ScheduleEntry& e :
         record_schedule(config, make_op_kinds(seed + 100, 128))) {
      seen.insert(e.action);
    }
  }
  EXPECT_TRUE(seen.count(Action::kPass));
  EXPECT_TRUE(seen.count(Action::kReadError));
  EXPECT_TRUE(seen.count(Action::kWriteError));
  EXPECT_TRUE(seen.count(Action::kTornWrite));
  EXPECT_TRUE(seen.count(Action::kCrashed));
}

/// Drive an identical write workload against a crashing device and
/// return the frozen post-crash image.
std::vector<Byte> post_crash_image(std::uint64_t seed) {
  FaultConfig config;
  config.seed = seed;
  config.torn_write_rate = 0.2;
  config.write_error_rate = 0.1;
  config.crash_after_ops = 40;
  auto injector = std::make_shared<FaultInjector>(config);
  auto inner = std::make_unique<MemBlockDevice>();
  MemBlockDevice* inner_view = inner.get();
  FaultyBlockDevice dev(std::move(inner), injector);

  Xoshiro256 workload(99);  // fixed workload seed: identical byte streams
  std::vector<Byte> block(64);
  for (int op = 0; op < 64; ++op) {
    for (Byte& b : block) {
      b = static_cast<Byte>(workload.below(256));
    }
    const std::uint64_t offset = workload.below(16) * block.size();
    (void)dev.write(offset, ByteSpan(block.data(), block.size()));
  }
  EXPECT_TRUE(injector->crashed());

  const ByteSpan frozen = inner_view->contents();
  return {frozen.begin(), frozen.end()};
}

TEST(FaultSchedule, SameSeedSamePostCrashImage) {
  const std::vector<Byte> a = post_crash_image(0xABCD);
  const std::vector<Byte> b = post_crash_image(0xABCD);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size()));

  // A different fault seed over the same workload yields a different
  // image (different tears land different prefixes).
  const std::vector<Byte> c = post_crash_image(0xDCBA);
  EXPECT_TRUE(a.size() != c.size() ||
              std::memcmp(a.data(), c.data(), a.size()) != 0);
}

}  // namespace
}  // namespace debar::storage
