#include "core/backup_engine.hpp"

#include <gtest/gtest.h>

#include "common/sha1.hpp"
#include "workload/file_tree.hpp"

namespace debar::core {
namespace {

BackupServerConfig small_config() {
  BackupServerConfig cfg;
  cfg.index_params = {.prefix_bits = 8, .blocks_per_bucket = 2};
  cfg.filter_params = {.hash_bits = 8, .capacity = 100000};
  cfg.chunk_store.cache_params = {.hash_bits = 6, .capacity = 1000000};
  cfg.chunk_store.io_buckets = 16;
  cfg.chunk_store.siu_threshold = 1;
  return cfg;
}

class BackupEngineTest : public ::testing::Test {
 protected:
  BackupEngineTest()
      : repo_(2),
        server_(0, small_config(), &repo_, &director_),
        engine_("client-a", &director_) {}

  storage::ChunkRepository repo_;
  Director director_;
  BackupServer server_;
  BackupEngine engine_;
};

TEST_F(BackupEngineTest, BackupAndRestoreRealDataset) {
  const auto dataset = workload::make_dataset(
      {.files = 6, .mean_file_bytes = 128 * KiB, .seed = 5});
  const std::uint64_t job = director_.define_job("client-a", "tree");

  const auto stats = engine_.run_backup(job, dataset, server_.file_store());
  ASSERT_TRUE(stats.ok()) << stats.error().to_string();
  EXPECT_EQ(stats.value().files, dataset.files.size());
  EXPECT_EQ(stats.value().logical_bytes, dataset.total_bytes());
  EXPECT_GT(stats.value().chunks, 0u);

  ASSERT_TRUE(server_.run_dedup2(true).ok());

  const auto restored = engine_.restore(job, 1, server_, /*verify=*/true);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  ASSERT_EQ(restored.value().files.size(), dataset.files.size());
  for (std::size_t i = 0; i < dataset.files.size(); ++i) {
    EXPECT_EQ(restored.value().files[i].path, dataset.files[i].path);
    EXPECT_EQ(restored.value().files[i].content, dataset.files[i].content)
        << dataset.files[i].path;
  }
}

TEST_F(BackupEngineTest, SharedBlocksDeduplicateAcrossFiles) {
  const auto dataset = workload::make_dataset(
      {.files = 8, .mean_file_bytes = 128 * KiB, .seed = 9,
       .shared_fraction = 0.8});
  const std::uint64_t job = director_.define_job("client-a", "tree");
  const auto stats = engine_.run_backup(job, dataset, server_.file_store());
  ASSERT_TRUE(stats.ok());
  // Heavy sharing: transferred bytes well below logical bytes.
  EXPECT_LT(stats.value().transferred_bytes,
            stats.value().logical_bytes * 8 / 10);
}

TEST_F(BackupEngineTest, StreamBackupRoundTrip) {
  std::vector<Fingerprint> stream;
  for (std::uint64_t i = 0; i < 40; ++i) {
    stream.push_back(Sha1::hash_counter(i));
  }
  const std::uint64_t job = director_.define_job("client-a", "stream");
  const auto stats = engine_.run_backup_stream(
      job, std::span<const Fingerprint>(stream), server_.file_store(), 4096);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().chunks, 40u);
  EXPECT_EQ(stats.value().logical_bytes, 40u * 4096);

  ASSERT_TRUE(server_.run_dedup2(true).ok());
  const auto restored = engine_.restore(job, 1, server_, /*verify=*/true);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  ASSERT_EQ(restored.value().files.size(), 1u);
  EXPECT_EQ(restored.value().files[0].content.size(), 40u * 4096);
  // Each chunk's payload is stamped with its fingerprint.
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_TRUE(std::equal(
        stream[i].bytes.begin(), stream[i].bytes.end(),
        restored.value().files[0].content.begin() + i * 4096));
  }
}

TEST_F(BackupEngineTest, IncrementalVersionTransfersOnlyChanges) {
  // One point edit per ~256 KiB file invalidates only the chunks it
  // touches (plus boundary resynchronization) — the CDC locality claim.
  const auto v1 = workload::make_dataset(
      {.files = 6, .mean_file_bytes = 256 * KiB, .seed = 21});
  const auto v2 = workload::mutate_dataset(
      v1, {.seed = 22, .edits_per_file = 1.0, .rewrite_fraction = 0.0,
           .churn_fraction = 0.0});

  const std::uint64_t job = director_.define_job("client-a", "tree");
  const auto s1 = engine_.run_backup(job, v1, server_.file_store());
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(server_.run_dedup2(true).ok());

  const auto s2 = engine_.run_backup(job, v2, server_.file_store());
  ASSERT_TRUE(s2.ok());
  // CDC + job-chain filtering: only the edited regions cross the wire.
  EXPECT_LT(s2.value().transferred_bytes, s2.value().logical_bytes / 4);

  ASSERT_TRUE(server_.run_dedup2(true).ok());
  const auto restored = engine_.restore(job, 2, server_, true);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  ASSERT_EQ(restored.value().files.size(), v2.files.size());
  for (std::size_t i = 0; i < v2.files.size(); ++i) {
    EXPECT_EQ(restored.value().files[i].content, v2.files[i].content);
  }
}

TEST_F(BackupEngineTest, RestoreUnknownVersionFails) {
  const auto r = engine_.restore(999, 1, server_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kNotFound);
}

TEST_F(BackupEngineTest, SyntheticPayloadStampedWithFingerprint) {
  const Fingerprint fp = Sha1::hash_counter(7);
  const auto payload = BackupEngine::synthetic_payload(fp, 4096);
  EXPECT_EQ(payload.size(), 4096u);
  EXPECT_TRUE(std::equal(fp.bytes.begin(), fp.bytes.end(), payload.begin()));
  // Deterministic.
  EXPECT_EQ(payload, BackupEngine::synthetic_payload(fp, 4096));
}

TEST_F(BackupEngineTest, EmptyFileBacksUpAndRestores) {
  Dataset dataset;
  dataset.files.push_back({.path = "empty.txt", .content = {}});
  dataset.files.push_back(
      {.path = "tiny.txt", .content = std::vector<Byte>(10, 0x41)});
  const std::uint64_t job = director_.define_job("client-a", "edge");
  ASSERT_TRUE(engine_.run_backup(job, dataset, server_.file_store()).ok());
  ASSERT_TRUE(server_.run_dedup2(true).ok());
  const auto restored = engine_.restore(job, 1, server_, true);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  EXPECT_TRUE(restored.value().files[0].content.empty());
  EXPECT_EQ(restored.value().files[1].content.size(), 10u);
}

}  // namespace
}  // namespace debar::core
