// Network accounting of the PSIL/PSIU exchanges (Figure 5): the bytes a
// cluster dedup-2 moves between servers must match the routed
// fingerprint/entry/verdict counts.
#include <gtest/gtest.h>

#include "common/sha1.hpp"
#include "core/cluster.hpp"

namespace debar::core {
namespace {

ClusterConfig two_servers() {
  ClusterConfig cfg;
  cfg.routing_bits = 1;
  cfg.repository_nodes = 1;
  cfg.server_config.index_params = {.prefix_bits = 6, .blocks_per_bucket = 2};
  cfg.server_config.chunk_store.siu_threshold = 1;
  // A fast NIC profile with round numbers for exact accounting.
  cfg.server_config.nic_profile = {.bytes_per_sec = 1.0e6};
  return cfg;
}

TEST(ClusterExchangeTest, RoutedBytesMatchCounts) {
  Cluster cluster(two_servers());
  const std::uint64_t job = cluster.director().define_job("c", "d");

  // Back up through server 0 only; collect how many fingerprints route
  // to the other server's index part.
  std::vector<Fingerprint> stream;
  for (std::uint64_t i = 0; i < 100; ++i) {
    stream.push_back(Sha1::hash_counter(i));
  }
  std::uint64_t cross = 0;
  for (const Fingerprint& fp : stream) {
    if (cluster.owner_of(fp) == 1) ++cross;
  }
  ASSERT_GT(cross, 20u);  // uniform fingerprints: ~half

  FileStore& fs = cluster.server(0).file_store();
  fs.begin_job(job);
  fs.begin_file({.path = "s", .size = stream.size() * 512, .mtime = 0,
                 .mode = 0644});
  for (const Fingerprint& fp : stream) {
    if (fs.offer_fingerprint(fp, 512)) {
      const auto payload = BackupEngine::synthetic_payload(fp, 512);
      ASSERT_TRUE(
          fs.receive_chunk(fp, ByteSpan(payload.data(), payload.size())).ok());
    }
  }
  fs.end_file();
  ASSERT_TRUE(fs.end_job().ok());

  const std::uint64_t nic0_before =
      cluster.server(0).nic().bytes_transferred();
  const std::uint64_t nic1_before =
      cluster.server(1).nic().bytes_transferred();

  ASSERT_TRUE(cluster.run_dedup2(true).ok());

  // Server 0 ships `cross` fingerprints out (20 B each) and `cross`
  // entries (25 B each) for PSIU; server 1 receives both and returns
  // verdicts (1 B each, all "new" here so no dup verdicts cross back).
  const std::uint64_t nic0_delta =
      cluster.server(0).nic().bytes_transferred() - nic0_before;
  const std::uint64_t nic1_delta =
      cluster.server(1).nic().bytes_transferred() - nic1_before;

  EXPECT_EQ(nic0_delta, cross * 20 + cross * 25);
  EXPECT_EQ(nic1_delta, cross * 20 + cross * 25);
}

TEST(ClusterExchangeTest, DuplicateVerdictsCrossTheWire) {
  Cluster cluster(two_servers());
  const std::uint64_t job = cluster.director().define_job("c", "d");

  std::vector<Fingerprint> stream;
  for (std::uint64_t i = 0; i < 60; ++i) {
    stream.push_back(Sha1::hash_counter(i));
  }
  auto backup = [&](std::size_t server) {
    FileStore& fs = cluster.server(server).file_store();
    fs.begin_job(job);
    fs.begin_file({.path = "s", .size = stream.size() * 512, .mtime = 0,
                   .mode = 0644});
    for (const Fingerprint& fp : stream) {
      if (fs.offer_fingerprint(fp, 512)) {
        const auto payload = BackupEngine::synthetic_payload(fp, 512);
        ASSERT_TRUE(fs.receive_chunk(
                          fp, ByteSpan(payload.data(), payload.size()))
                        .ok());
      }
    }
    fs.end_file();
    ASSERT_TRUE(fs.end_job().ok());
  };

  backup(0);
  ASSERT_TRUE(cluster.run_dedup2(true).ok());

  // Second round: the same stream via server 1 — every fingerprint is a
  // duplicate, so verdicts for the cross-routed half flow back.
  backup(1);
  const std::uint64_t nic1_before =
      cluster.server(1).nic().bytes_transferred();
  const auto result = cluster.run_dedup2(true);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().new_chunks, 0u);

  std::uint64_t cross = 0;
  for (const Fingerprint& fp : stream) {
    if (cluster.owner_of(fp) == 0) ++cross;  // routed away from server 1
  }
  const std::uint64_t nic1_delta =
      cluster.server(1).nic().bytes_transferred() - nic1_before;
  // Server 1 ships `cross` fingerprints (20 B) and receives `cross`
  // one-byte duplicate verdicts; no entries move (nothing new).
  EXPECT_EQ(nic1_delta, cross * 20 + cross * 1);
}

}  // namespace
}  // namespace debar::core
