// Network accounting of the PSIL/PSIU exchanges (Figure 5): the bytes a
// cluster dedup-2 moves between servers must match the serialized sizes
// of the frames the transport actually carries — fingerprint batches out,
// verdict batches back, entry batches for PSIU, plus the empty batches
// every pair exchanges each phase.
#include <gtest/gtest.h>

#include "common/sha1.hpp"
#include "core/cluster.hpp"
#include "net/message.hpp"

namespace debar::core {
namespace {

ClusterConfig two_servers() {
  ClusterConfig cfg;
  cfg.routing_bits = 1;
  cfg.repository_nodes = 1;
  cfg.server_config.index_params = {.prefix_bits = 6, .blocks_per_bucket = 2};
  cfg.server_config.chunk_store.siu_threshold = 1;
  // A fast NIC profile with round numbers for exact accounting.
  cfg.server_config.nic_profile = {.bytes_per_sec = 1.0e6};
  return cfg;
}

std::uint64_t fp_batch_bytes(std::size_t count) {
  net::FingerprintBatch batch;
  batch.fps.resize(count);
  return net::wire_bytes(net::Message{batch});
}

std::uint64_t entry_batch_bytes(std::size_t count) {
  net::IndexEntryBatch batch;
  batch.entries.resize(count);
  return net::wire_bytes(net::Message{batch});
}

std::uint64_t verdict_batch_bytes(std::uint32_t query_count,
                                  std::vector<std::uint32_t> dup_indices) {
  net::VerdictBatch batch;
  batch.query_count = query_count;
  batch.duplicate_indices = std::move(dup_indices);
  return net::wire_bytes(net::Message{batch});
}

TEST(ClusterExchangeTest, RoutedBytesMatchCounts) {
  Cluster cluster(two_servers());
  const std::uint64_t job = cluster.director().define_job("c", "d");

  // Back up through server 0 only; collect how many fingerprints route
  // to the other server's index part.
  std::vector<Fingerprint> stream;
  for (std::uint64_t i = 0; i < 100; ++i) {
    stream.push_back(Sha1::hash_counter(i));
  }
  std::uint64_t cross = 0;
  for (const Fingerprint& fp : stream) {
    if (cluster.owner_of(fp) == 1) ++cross;
  }
  ASSERT_GT(cross, 20u);  // uniform fingerprints: ~half

  FileStore& fs = cluster.server(0).file_store();
  fs.begin_job(job);
  fs.begin_file({.path = "s", .size = stream.size() * 512, .mtime = 0,
                 .mode = 0644});
  for (const Fingerprint& fp : stream) {
    if (fs.offer_fingerprint(fp, 512)) {
      const auto payload = BackupEngine::synthetic_payload(fp, 512);
      ASSERT_TRUE(
          fs.receive_chunk(fp, ByteSpan(payload.data(), payload.size())).ok());
    }
  }
  fs.end_file();
  ASSERT_TRUE(fs.end_job().ok());

  const std::uint64_t nic0_before =
      cluster.server(0).nic().bytes_transferred();
  const std::uint64_t nic1_before =
      cluster.server(1).nic().bytes_transferred();

  ASSERT_TRUE(cluster.run_dedup2(true).ok());

  // Server 0 ships `cross` fingerprints out and receives server 1's empty
  // batch plus a no-duplicates verdict for its queries. Phase E
  // dual-writes every partition (DESIGN.md §5g): server 0 sends the
  // other part's primary copy (`cross` entries) AND the backup copy of
  // its own part (100 - cross entries), and receives server 1's two
  // empty batches; server 1 sees the mirror image of every frame, so
  // both NICs move the same bytes.
  const std::uint64_t expected =
      fp_batch_bytes(cross) + fp_batch_bytes(0) +      // phase A, both ways
      verdict_batch_bytes(static_cast<std::uint32_t>(cross), {}) +
      verdict_batch_bytes(0, {}) +                     // phase C, both ways
      entry_batch_bytes(cross) + entry_batch_bytes(100 - cross) +
      entry_batch_bytes(0) + entry_batch_bytes(0);     // phase E, both copies

  const std::uint64_t nic0_delta =
      cluster.server(0).nic().bytes_transferred() - nic0_before;
  const std::uint64_t nic1_delta =
      cluster.server(1).nic().bytes_transferred() - nic1_before;

  EXPECT_EQ(nic0_delta, expected);
  EXPECT_EQ(nic1_delta, expected);
}

TEST(ClusterExchangeTest, DuplicateVerdictsCrossTheWire) {
  Cluster cluster(two_servers());
  const std::uint64_t job = cluster.director().define_job("c", "d");

  std::vector<Fingerprint> stream;
  for (std::uint64_t i = 0; i < 60; ++i) {
    stream.push_back(Sha1::hash_counter(i));
  }
  auto backup = [&](std::size_t server) {
    FileStore& fs = cluster.server(server).file_store();
    fs.begin_job(job);
    fs.begin_file({.path = "s", .size = stream.size() * 512, .mtime = 0,
                   .mode = 0644});
    for (const Fingerprint& fp : stream) {
      if (fs.offer_fingerprint(fp, 512)) {
        const auto payload = BackupEngine::synthetic_payload(fp, 512);
        ASSERT_TRUE(fs.receive_chunk(
                          fp, ByteSpan(payload.data(), payload.size()))
                        .ok());
      }
    }
    fs.end_file();
    ASSERT_TRUE(fs.end_job().ok());
  };

  backup(0);
  ASSERT_TRUE(cluster.run_dedup2(true).ok());

  // Second round: the same stream via server 1 — every fingerprint is a
  // duplicate, so verdicts for the cross-routed half flow back.
  backup(1);
  const std::uint64_t nic1_before =
      cluster.server(1).nic().bytes_transferred();
  const auto result = cluster.run_dedup2(true);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().new_chunks, 0u);

  std::uint64_t cross = 0;
  for (const Fingerprint& fp : stream) {
    if (cluster.owner_of(fp) == 0) ++cross;  // routed away from server 1
  }
  // Server 1 ships `cross` fingerprints, gets back a verdict marking all
  // of them duplicates (a dense run: about one varint byte per verdict),
  // and no entries move (nothing new) — only the empty phase-E batches,
  // two each way now that every partition's copies are dual-written.
  std::vector<std::uint32_t> all_dup(cross);
  for (std::uint32_t i = 0; i < cross; ++i) all_dup[i] = i;
  const std::uint64_t expected =
      fp_batch_bytes(cross) + fp_batch_bytes(0) +
      verdict_batch_bytes(static_cast<std::uint32_t>(cross),
                          std::move(all_dup)) +
      verdict_batch_bytes(0, {}) +
      entry_batch_bytes(0) + entry_batch_bytes(0) +
      entry_batch_bytes(0) + entry_batch_bytes(0);

  const std::uint64_t nic1_delta =
      cluster.server(1).nic().bytes_transferred() - nic1_before;
  EXPECT_EQ(nic1_delta, expected);
}

}  // namespace
}  // namespace debar::core
