// Concurrency stress for the parallel dedup-2 pipeline. Randomized,
// duplicate-heavy chunk streams drive many overlapping SIL/store/SIU
// rounds at several thread counts; meant to run under
// DEBAR_SANITIZE=thread (the `tsan` preset) where any data race between
// the sharded SIL workers, the store stage, and the pending set aborts
// the test.
#include <gtest/gtest.h>

#include <random>

#include "common/sha1.hpp"
#include "core/backup_server.hpp"

namespace debar::core {
namespace {

Fingerprint fp(std::uint64_t i) { return Sha1::hash_counter(i); }

BackupServerConfig stress_config(std::size_t threads,
                                 std::size_t pipeline_depth) {
  BackupServerConfig cfg;
  cfg.index_params = {.prefix_bits = 7, .blocks_per_bucket = 1};
  cfg.filter_params = {.hash_bits = 8, .capacity = 50000};
  cfg.chunk_store.cache_params = {.hash_bits = 6, .capacity = 24};
  cfg.chunk_store.io_buckets = 8;
  cfg.chunk_store.siu_threshold = 1 << 20;
  cfg.chunk_store.dedup2.threads = threads;
  cfg.chunk_store.dedup2.pipeline_depth = pipeline_depth;
  return cfg;
}

TEST(Dedup2StressTest, DuplicateHeavyShardsUnderManyThreads) {
  std::mt19937 rng(20090417);  // fixed seed: deterministic stream shape
  std::uniform_int_distribution<std::uint64_t> hot(0, 40);
  // Payload is a pure function of the fingerprint counter, as dedup
  // semantics require.
  const auto payload_of = [](std::uint64_t i) {
    return std::vector<Byte>(64 + (i % 37) * 16, static_cast<Byte>(i % 251));
  };

  for (const std::size_t threads : {2u, 4u, 8u}) {
    storage::ChunkRepository repo(2);
    Director director;
    BackupServer server(0, stress_config(threads, 2), &repo, &director);
    const std::uint64_t job = director.define_job("stress", "d");

    std::uint64_t next_fresh = 1000;
    for (int round = 0; round < 6; ++round) {
      FileStore& fs = server.file_store();
      fs.begin_job(job);
      fs.begin_file({.path = "r.dat", .size = 0, .mtime = 0, .mode = 0644});
      // ~2/3 of the stream hammers a tiny hot set (duplicate-heavy
      // shards: many fingerprints collapse onto few index buckets and
      // onto the pending set from earlier rounds), the rest is fresh.
      for (int k = 0; k < 150; ++k) {
        const bool dup = rng() % 3 != 0;
        const std::uint64_t i = dup ? hot(rng) : next_fresh++;
        const std::vector<Byte> payload = payload_of(i);
        if (fs.offer_fingerprint(fp(i), payload.size())) {
          ASSERT_TRUE(
              fs.receive_chunk(fp(i),
                               ByteSpan(payload.data(), payload.size()))
                  .ok());
        }
      }
      fs.end_file();
      ASSERT_TRUE(fs.end_job().ok());

      // Alternate deferred and forced SIU so SIL rounds race against a
      // hot pending set as often as a populated disk index.
      const auto r = server.run_dedup2(/*force_siu=*/round % 2 == 1);
      ASSERT_TRUE(r.ok()) << r.error().to_string();
    }
    const auto final_round = server.run_dedup2(/*force_siu=*/true);
    ASSERT_TRUE(final_round.ok());
    EXPECT_EQ(server.chunk_store().pending_count(), 0u);

    // Every fingerprint ever offered must restore to its exact payload.
    for (std::uint64_t i = 0; i <= 40; ++i) {
      const auto chunk = server.chunk_store().read_chunk(fp(i));
      ASSERT_TRUE(chunk.ok()) << "hot " << i;
      EXPECT_EQ(chunk.value().front(), static_cast<Byte>(i % 251));
    }
    for (std::uint64_t i = 1000; i < next_fresh; ++i) {
      ASSERT_TRUE(server.chunk_store().read_chunk(fp(i)).ok()) << i;
    }
  }
}

}  // namespace
}  // namespace debar::core
