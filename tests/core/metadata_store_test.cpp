#include "core/metadata_store.hpp"

#include "core/director.hpp"

#include <gtest/gtest.h>

#include "common/sha1.hpp"
#include "common/thread_pool.hpp"
#include "storage/block_device.hpp"

namespace debar::core {
namespace {

JobVersionRecord make_record(std::uint64_t job, std::uint32_t version,
                             std::size_t files = 2, std::size_t chunks = 5) {
  JobVersionRecord rec;
  rec.job_id = job;
  rec.version = version;
  for (std::size_t f = 0; f < files; ++f) {
    FileRecord file;
    file.meta = {.path = "dir/file" + std::to_string(f) + ".dat",
                 .size = chunks * 8192,
                 .mtime = 1234567 + f,
                 .mode = 0640};
    for (std::size_t c = 0; c < chunks; ++c) {
      file.chunk_fps.push_back(Sha1::hash_counter(job * 1000 + f * 100 + c));
      file.chunk_sizes.push_back(static_cast<std::uint32_t>(8192 - c));
    }
    rec.logical_bytes += file.logical_bytes();
    rec.files.push_back(std::move(file));
  }
  return rec;
}

void expect_equal(const JobVersionRecord& a, const JobVersionRecord& b) {
  EXPECT_EQ(a.job_id, b.job_id);
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.logical_bytes, b.logical_bytes);
  ASSERT_EQ(a.files.size(), b.files.size());
  for (std::size_t i = 0; i < a.files.size(); ++i) {
    EXPECT_EQ(a.files[i].meta, b.files[i].meta);
    EXPECT_EQ(a.files[i].chunk_fps, b.files[i].chunk_fps);
    EXPECT_EQ(a.files[i].chunk_sizes, b.files[i].chunk_sizes);
  }
}

TEST(MetadataRecordTest, SerializeParseRoundTrip) {
  const JobVersionRecord rec = make_record(7, 3);
  const std::vector<Byte> payload = serialize_record(rec);
  const Result<JobVersionRecord> parsed =
      parse_record(ByteSpan(payload.data(), payload.size()));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  expect_equal(rec, parsed.value());
}

TEST(MetadataRecordTest, EmptyRecordRoundTrips) {
  JobVersionRecord rec;
  rec.job_id = 1;
  rec.version = 1;
  const auto payload = serialize_record(rec);
  const auto parsed = parse_record(ByteSpan(payload.data(), payload.size()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().files.empty());
}

TEST(MetadataRecordTest, ParseRejectsCorruption) {
  const auto payload = serialize_record(make_record(1, 1));
  // Bad magic.
  auto bad = payload;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(parse_record(ByteSpan(bad.data(), bad.size())).ok());
  // Truncated.
  EXPECT_FALSE(
      parse_record(ByteSpan(payload.data(), payload.size() / 2)).ok());
  // Implausible chunk count: corrupt the first file's chunk-count field.
  // Header: magic 4 + job 8 + ver 4 + day 4 + logical 8 + files 4 = 32;
  // then path(2+len) + 8 + 8 + 4, then chunk count.
  auto overrun = payload;
  const std::size_t path_len = std::string("dir/file0.dat").size();
  const std::size_t count_off = 32 + 2 + path_len + 8 + 8 + 4;
  overrun[count_off] = 0xFF;
  overrun[count_off + 1] = 0xFF;
  overrun[count_off + 2] = 0xFF;
  overrun[count_off + 3] = 0x7F;
  EXPECT_FALSE(parse_record(ByteSpan(overrun.data(), overrun.size())).ok());
}

TEST(MetadataStoreTest, AppendAndRead) {
  MetadataStore store(std::make_unique<storage::MemBlockDevice>());
  const JobVersionRecord rec = make_record(5, 2);
  ASSERT_TRUE(store.append(rec).ok());
  EXPECT_EQ(store.record_count(), 1u);

  const auto read = store.read(5, 2);
  ASSERT_TRUE(read.ok());
  expect_equal(rec, read.value());
  EXPECT_FALSE(store.read(5, 3).ok());
  EXPECT_FALSE(store.read(6, 2).ok());
}

TEST(MetadataStoreTest, LoadAllRebuildsCatalogue) {
  auto device = std::make_unique<storage::MemBlockDevice>();
  storage::MemBlockDevice* raw = device.get();
  std::vector<JobVersionRecord> originals;
  std::vector<Byte> image;
  {
    MetadataStore store(std::move(device));
    for (std::uint64_t j = 1; j <= 3; ++j) {
      for (std::uint32_t v = 1; v <= 4; ++v) {
        originals.push_back(make_record(j, v));
        ASSERT_TRUE(store.append(originals.back()).ok());
      }
    }
    // Snapshot the device image before the store (and device) go away.
    image.assign(raw->contents().begin(), raw->contents().end());
  }
  // "Restart": a fresh store over the snapshotted device image.
  auto clone = std::make_unique<storage::MemBlockDevice>();
  ASSERT_TRUE(clone->write(0, ByteSpan(image.data(), image.size())).ok());
  MetadataStore reopened(std::move(clone));
  const auto all = reopened.load_all();
  ASSERT_TRUE(all.ok()) << all.error().to_string();
  ASSERT_EQ(all.value().size(), originals.size());
  for (std::size_t i = 0; i < originals.size(); ++i) {
    expect_equal(originals[i], all.value()[i]);
  }
  // Catalogue works after recovery.
  const auto read = reopened.read(2, 3);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().job_id, 2u);
}

TEST(MetadataStoreTest, ConcurrentJobWriters) {
  // The Section 6.3 claim: hundreds of jobs writing metadata
  // concurrently. Verify correctness under contention.
  MetadataStore store(std::make_unique<storage::MemBlockDevice>());
  constexpr std::size_t kJobs = 64;
  constexpr std::uint32_t kVersions = 4;
  parallel_for(kJobs, 8, [&](std::size_t j) {
    for (std::uint32_t v = 1; v <= kVersions; ++v) {
      ASSERT_TRUE(store.append(make_record(j + 1, v)).ok());
    }
  });
  EXPECT_EQ(store.record_count(), kJobs * kVersions);
  for (std::size_t j = 1; j <= kJobs; ++j) {
    for (std::uint32_t v = 1; v <= kVersions; ++v) {
      const auto read = store.read(j, v);
      ASSERT_TRUE(read.ok()) << "job " << j << " v" << v;
      expect_equal(make_record(j, v), read.value());
    }
  }
}

TEST(DirectorPersistenceTest, RecoverRestoresVersionCatalogue) {
  auto device = std::make_unique<storage::MemBlockDevice>();
  storage::MemBlockDevice* raw = device.get();
  std::vector<Byte> image;
  {
    MetadataStore store(std::move(device));
    Director director;
    director.attach_metadata_store(&store);
    ASSERT_TRUE(director.submit_version(make_record(1, 1)).ok());
    ASSERT_TRUE(director.submit_version(make_record(1, 2)).ok());
    ASSERT_TRUE(director.submit_version(make_record(2, 1)).ok());
    image.assign(raw->contents().begin(), raw->contents().end());
  }

  auto clone = std::make_unique<storage::MemBlockDevice>();
  ASSERT_TRUE(clone->write(0, ByteSpan(image.data(), image.size())).ok());
  MetadataStore reopened(std::move(clone));
  Director director;
  director.attach_metadata_store(&reopened);
  ASSERT_TRUE(director.recover().ok());

  EXPECT_EQ(director.version_count(1), 2u);
  EXPECT_EQ(director.version_count(2), 1u);
  EXPECT_EQ(director.next_version(1), 3u);
  // Filtering fingerprints flow from recovered metadata.
  EXPECT_FALSE(director.filtering_fingerprints(1).empty());
}

TEST(DirectorPersistenceTest, RecoverWithoutStoreFails) {
  Director director;
  EXPECT_FALSE(director.recover().ok());
}

}  // namespace
}  // namespace debar::core
