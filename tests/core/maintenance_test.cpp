// MaintenanceJob, single-server form (DESIGN.md §5k): retention-driven
// expiry, mark-and-sweep reclamation, restore-locality compaction, and
// the plan/execute/report job API that replaced the old collect_garbage /
// defragment_version free functions.
#include "core/maintenance.hpp"

#include <gtest/gtest.h>

#include "common/sha1.hpp"
#include "core/backup_engine.hpp"

namespace debar::core {
namespace {

class MaintenanceTest : public ::testing::Test {
 protected:
  MaintenanceTest()
      : repo_(4), server_(0, make_config(), &repo_, &director_) {}

  static BackupServerConfig make_config() {
    BackupServerConfig cfg;
    cfg.index_params = {.prefix_bits = 8, .blocks_per_bucket = 2};
    cfg.chunk_store.siu_threshold = 1;
    // Small containers: fine-grained sweep units, and a version spans
    // several containers (and hence round-robin nodes).
    cfg.container_capacity = 64 * 1024;
    return cfg;
  }

  JobVersionRecord backup_stream(std::uint64_t job,
                                 const std::vector<Fingerprint>& fps,
                                 BackupServer* via = nullptr) {
    BackupServer& server = via != nullptr ? *via : server_;
    FileStore& fs = server.file_store();
    fs.begin_job(job);
    fs.begin_file({.path = "s", .size = fps.size() * 4096, .mtime = 0,
                   .mode = 0644});
    for (const Fingerprint& f : fps) {
      if (fs.offer_fingerprint(f, 4096)) {
        const auto payload = BackupEngine::synthetic_payload(f, 4096);
        EXPECT_TRUE(
            fs.receive_chunk(f, ByteSpan(payload.data(), payload.size())).ok());
      }
    }
    fs.end_file();
    auto rec = fs.end_job();
    EXPECT_TRUE(rec.ok());
    EXPECT_TRUE(server.run_dedup2(true).ok());
    return rec.value();
  }

  std::vector<Fingerprint> fps(std::uint64_t from, std::uint64_t count) {
    std::vector<Fingerprint> out;
    for (std::uint64_t i = 0; i < count; ++i) {
      out.push_back(Sha1::hash_counter(from + i));
    }
    return out;
  }

  storage::ChunkRepository repo_;
  Director director_;
  BackupServer server_;
};

TEST_F(MaintenanceTest, NoopWhenNothingExpires) {
  const std::uint64_t job = director_.define_job("c", "d");
  backup_stream(job, fps(0, 100));
  const std::uint64_t bytes_before = repo_.stored_bytes();

  MaintenanceJob gc(director_, server_, repo_, {.locality = false});
  ASSERT_TRUE(gc.execute().ok());
  EXPECT_EQ(gc.report().versions_expired, 0u);
  EXPECT_EQ(gc.report().containers_deleted, 0u);
  EXPECT_EQ(gc.report().bytes_reclaimed, 0u);
  EXPECT_EQ(gc.report().dead_chunks, 0u);
  EXPECT_EQ(gc.report().live_chunks, 100u);
  EXPECT_EQ(repo_.stored_bytes(), bytes_before);
}

TEST_F(MaintenanceTest, ExpiredOnlyVersionReclaimsEverything) {
  const std::uint64_t job = director_.define_job("c", "d");
  backup_stream(job, fps(0, 100));
  ASSERT_TRUE(director_.drop_version(job, 1).ok());

  MaintenanceJob gc(director_, server_, repo_, {.locality = false});
  ASSERT_TRUE(gc.execute().ok());
  EXPECT_GT(gc.report().containers_deleted, 0u);
  EXPECT_EQ(gc.report().live_chunks, 0u);
  EXPECT_EQ(repo_.stored_bytes(), 0u);
  EXPECT_EQ(repo_.container_count(), 0u);
  // The rebuilt index no longer claims the reclaimed fingerprints.
  EXPECT_EQ(server_.chunk_store().index().entry_count(), 0u);
  EXPECT_FALSE(server_.chunk_store().locate(Sha1::hash_counter(0)).ok());
}

TEST_F(MaintenanceTest, KeepLastExpiresOldAndKeepsSharedChunks) {
  Director director(DirectorConfig{.retention = {.keep_last = 1}});
  BackupServer server(0, make_config(), &repo_, &director);
  const std::uint64_t job = director.define_job("c", "d");
  // v1: chunks 0..99. v2: chunks 50..149 (shares 50..99 with v1).
  backup_stream(job, fps(0, 100), &server);
  backup_stream(job, fps(50, 100), &server);

  MaintenanceJob gc(director, server, repo_, {.locality = false});
  ASSERT_TRUE(gc.execute().ok());
  // Retention expired v1; chunks 0..49 die, 50..149 live on via v2.
  EXPECT_EQ(gc.report().versions_expired, 1u);
  EXPECT_EQ(gc.report().dead_chunks, 50u);
  EXPECT_EQ(gc.report().live_chunks, 100u);

  BackupEngine engine("c", &director);
  const auto restored = engine.restore(job, 2, server, /*verify=*/true);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  EXPECT_EQ(restored.value().files[0].content.size(), 100u * 4096);
  // The expired version is gone for good.
  EXPECT_FALSE(engine.restore(job, 1, server).ok());
}

TEST_F(MaintenanceTest, KeepDaysAgesVersionsOutButNeverTheLatest) {
  Director director(DirectorConfig{.retention = {.keep_days = 7}});
  BackupServer server(0, make_config(), &repo_, &director);
  const std::uint64_t job = director.define_job("c", "d");
  director.set_current_day(1);
  backup_stream(job, fps(0, 60), &server);  // v1, day 1
  director.set_current_day(5);
  backup_stream(job, fps(30, 60), &server);  // v2, day 5
  director.set_current_day(20);

  // As of day 20 both versions are older than 7 days, but the latest of a
  // chain is never expired (the job chain's filtering fingerprints and the
  // next incremental depend on it).
  const auto expired = director.expired_versions(20);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], (std::pair<std::uint64_t, std::uint32_t>{job, 1}));

  MaintenanceJob gc(director, server, repo_, {.locality = false});
  ASSERT_TRUE(gc.execute().ok());
  EXPECT_EQ(gc.report().versions_expired, 1u);
  EXPECT_EQ(gc.report().dead_chunks, 30u);  // 0..29 only lived in v1

  BackupEngine engine("c", &director);
  const auto restored = engine.restore(job, 2, server, /*verify=*/true);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
}

TEST_F(MaintenanceTest, DirectorSchedulesMaintenanceOnItsPeriod) {
  Director director(
      DirectorConfig{.retention = {.keep_last = 2},
                     .maintenance_period_days = 7});
  EXPECT_FALSE(director.maintenance_due(6));
  EXPECT_TRUE(director.maintenance_due(7));

  BackupServer server(0, make_config(), &repo_, &director);
  const std::uint64_t job = director.define_job("c", "d");
  backup_stream(job, fps(0, 40), &server);
  director.set_current_day(7);

  // A completed round advances the cadence clock (execute calls
  // note_maintenance with the day it evaluated retention against).
  MaintenanceJob gc(director, server, repo_, {.locality = false});
  ASSERT_TRUE(gc.execute().ok());
  EXPECT_FALSE(director.maintenance_due(7));
  EXPECT_FALSE(director.maintenance_due(13));
  EXPECT_TRUE(director.maintenance_due(14));

  // A period of 0 disables director-driven scheduling entirely.
  Director manual_only;
  EXPECT_FALSE(manual_only.maintenance_due(1000));
}

TEST_F(MaintenanceTest, PlanPreviewsWithoutMutating) {
  Director director(DirectorConfig{.retention = {.keep_last = 1}});
  BackupServer server(0, make_config(), &repo_, &director);
  const std::uint64_t job = director.define_job("c", "d");
  backup_stream(job, fps(0, 100), &server);
  backup_stream(job, fps(50, 100), &server);
  const std::uint64_t bytes_before = repo_.stored_bytes();
  const std::uint64_t containers_before = repo_.container_count();

  MaintenanceJob gc(director, server, repo_);
  const auto plan = gc.plan();
  ASSERT_TRUE(plan.ok()) << plan.error().to_string();
  ASSERT_EQ(plan.value().expire.size(), 1u);
  EXPECT_EQ(plan.value().expire[0],
            (std::pair<std::uint64_t, std::uint32_t>{job, 1}));
  EXPECT_EQ(plan.value().live_versions, 1u);
  EXPECT_EQ(plan.value().live_chunks, 100u);
  // The surviving version spans all four storage nodes, so the locality
  // pass would re-sequence it.
  ASSERT_EQ(plan.value().rewrite.size(), 1u);
  EXPECT_EQ(plan.value().rewrite[0],
            (std::pair<std::uint64_t, std::uint32_t>{job, 2}));

  // Pure preview: nothing dropped, nothing reclaimed, index untouched.
  EXPECT_EQ(director.version_count(job), 2u);
  EXPECT_EQ(repo_.stored_bytes(), bytes_before);
  EXPECT_EQ(repo_.container_count(), containers_before);
}

TEST_F(MaintenanceTest, CompactionRewritesMostlyDeadContainers) {
  const std::uint64_t job1 = director_.define_job("a", "d");
  const std::uint64_t job2 = director_.define_job("b", "d");
  // Interleave two jobs' chunks into the same containers by backing them
  // up as one alternating stream under job1, then referencing the even
  // half from job2.
  std::vector<Fingerprint> all = fps(0, 200);
  backup_stream(job1, all);
  std::vector<Fingerprint> evens;
  for (std::size_t i = 0; i < all.size(); i += 4) evens.push_back(all[i]);
  backup_stream(job2, evens);  // 25% of the chunks stay live via job2

  ASSERT_TRUE(director_.drop_version(job1, 1).ok());
  MaintenanceJob gc(director_, server_, repo_,
                    {.locality = false, .compact_threshold = 0.5});
  ASSERT_TRUE(gc.execute().ok());
  EXPECT_GT(gc.report().containers_compacted, 0u);
  EXPECT_GT(gc.report().bytes_reclaimed, 0u);
  EXPECT_EQ(gc.report().live_chunks, evens.size());

  // job2's data survives compaction and the index rebuild.
  BackupEngine engine("b", &director_);
  const auto restored = engine.restore(job2, 1, server_, true);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  EXPECT_EQ(restored.value().files[0].content.size(), evens.size() * 4096);
}

TEST_F(MaintenanceTest, LocalityPassAggregatesAndReclaimsOldCopies) {
  const std::uint64_t job = director_.define_job("c", "d");
  const std::vector<Fingerprint> stream = fps(0, 150);
  backup_stream(job, stream);
  const std::uint64_t bytes_before = repo_.stored_bytes();

  // Default config: the locality pass re-sequences versions touching more
  // than one storage node, pinned to node 0, and the same round's sweep
  // reclaims the old copies — no garbage duplicates left behind.
  MaintenanceJob gc(director_, server_, repo_, {});
  ASSERT_TRUE(gc.execute().ok());
  EXPECT_EQ(gc.report().versions_rewritten, 1u);
  EXPECT_EQ(gc.report().chunks_rewritten, 150u);
  EXPECT_EQ(gc.report().locality_before.nodes_touched, 4u);
  EXPECT_EQ(gc.report().locality_after.nodes_touched, 1u);
  EXPECT_GT(gc.report().containers_deleted, 0u);
  EXPECT_EQ(repo_.stored_bytes(), bytes_before);  // one copy per chunk

  // Every chunk resolves to a container on the target node now.
  for (const Fingerprint& fp : stream) {
    const auto cid = server_.chunk_store().locate(fp);
    ASSERT_TRUE(cid.ok());
    EXPECT_EQ(repo_.node_of(cid.value()), 0u);
  }
  BackupEngine engine("c", &director_);
  const auto verify = engine.verify(job, 1, server_);
  ASSERT_TRUE(verify.ok());
  EXPECT_TRUE(verify.value().clean());
}

TEST_F(MaintenanceTest, LocalityPassImprovesReadLocalityOfSharedVersions) {
  // A version whose chunks are shared across several earlier versions is
  // fragmented; after the locality pass the containers-per-1k metric of
  // the rewritten set drops.
  const std::uint64_t j1 = director_.define_job("c1", "d");
  const std::uint64_t j2 = director_.define_job("c2", "d");
  const std::uint64_t j3 = director_.define_job("c3", "d");

  std::vector<Fingerprint> a, b, mixed;
  for (std::uint64_t i = 0; i < 60; ++i) a.push_back(Sha1::hash_counter(i));
  for (std::uint64_t i = 60; i < 120; ++i) b.push_back(Sha1::hash_counter(i));
  backup_stream(j1, a);
  backup_stream(j2, b);
  // Interleave references to both earlier versions.
  for (std::uint64_t i = 0; i < 60; ++i) {
    mixed.push_back(a[i]);
    mixed.push_back(b[i]);
  }
  backup_stream(j3, mixed);

  MaintenanceJob gc(director_, server_, repo_, {});
  ASSERT_TRUE(gc.execute().ok());
  EXPECT_GT(gc.report().versions_rewritten, 0u);
  EXPECT_LT(gc.report().locality_after.containers_per_1k_chunks,
            gc.report().locality_before.containers_per_1k_chunks);

  // All three versions still verify chunk-by-chunk.
  for (auto [client, job] : {std::pair{"c1", j1}, {"c2", j2}, {"c3", j3}}) {
    BackupEngine engine(client, &director_);
    const auto verify = engine.verify(job, 1, server_);
    ASSERT_TRUE(verify.ok());
    EXPECT_TRUE(verify.value().clean()) << client;
  }
}

TEST_F(MaintenanceTest, PendingSiuIsRetryableBusy) {
  BackupServerConfig cfg = make_config();
  cfg.chunk_store.siu_threshold = 1 << 30;
  BackupServer deferred(1, cfg, &repo_, &director_);
  const std::uint64_t job = director_.define_job("c", "d");
  backup_stream(job, fps(0, 20), &deferred);
  // backup_stream forces SIU; defer a second generation's entries.
  FileStore& fs = deferred.file_store();
  fs.begin_job(job);
  fs.begin_file({.path = "s", .size = 4096, .mtime = 0, .mode = 0644});
  const Fingerprint f = Sha1::hash_counter(1000);
  if (fs.offer_fingerprint(f, 4096)) {
    const auto payload = BackupEngine::synthetic_payload(f, 4096);
    ASSERT_TRUE(
        fs.receive_chunk(f, ByteSpan(payload.data(), payload.size())).ok());
  }
  fs.end_file();
  ASSERT_TRUE(fs.end_job().ok());
  ASSERT_TRUE(deferred.run_dedup2(/*force_siu=*/false).ok());
  ASSERT_GT(deferred.chunk_store().pending_count(), 0u);

  // A version is visible the moment dedup-1 ends, but its fresh chunks'
  // container assignment is in flight until SIU commits — maintenance
  // refuses with the RETRYABLE kBusy (not a permanent error).
  MaintenanceJob gc(director_, deferred, repo_);
  Status busy = gc.execute();
  ASSERT_FALSE(busy.ok());
  EXPECT_EQ(busy.code(), Errc::kBusy);
  EXPECT_EQ(gc.plan().error().code, Errc::kBusy);

  // Retry after the forced SIU round drains the pending set: succeeds.
  ASSERT_TRUE(deferred.run_dedup2(/*force_siu=*/true).ok());
  ASSERT_TRUE(gc.execute().ok());
}

TEST_F(MaintenanceTest, ParallelDedup2PendingSiuIsBusy) {
  // Property (ISSUE 9): GC must refuse while a PARALLEL dedup-2 pipeline
  // has pending SIU entries, same as the serial path.
  BackupServerConfig cfg = make_config();
  cfg.chunk_store.siu_threshold = 1 << 30;
  cfg.chunk_store.dedup2 = {.threads = 4, .pipeline_depth = 2};
  BackupServer parallel(1, cfg, &repo_, &director_);
  const std::uint64_t job = director_.define_job("c", "d");
  FileStore& fs = parallel.file_store();
  fs.begin_job(job);
  fs.begin_file({.path = "s", .size = 200 * 4096, .mtime = 0, .mode = 0644});
  for (const Fingerprint& f : fps(0, 200)) {
    if (fs.offer_fingerprint(f, 4096)) {
      const auto payload = BackupEngine::synthetic_payload(f, 4096);
      ASSERT_TRUE(
          fs.receive_chunk(f, ByteSpan(payload.data(), payload.size())).ok());
    }
  }
  fs.end_file();
  ASSERT_TRUE(fs.end_job().ok());
  ASSERT_TRUE(parallel.run_dedup2(/*force_siu=*/false).ok());
  ASSERT_GT(parallel.chunk_store().pending_count(), 0u);

  MaintenanceJob gc(director_, parallel, repo_);
  Status busy = gc.execute();
  ASSERT_FALSE(busy.ok());
  EXPECT_EQ(busy.code(), Errc::kBusy);

  ASSERT_TRUE(parallel.run_dedup2(/*force_siu=*/true).ok());
  ASSERT_TRUE(gc.execute().ok());
  BackupEngine engine("c", &director_);
  ASSERT_TRUE(engine.restore(job, 1, parallel, /*verify=*/true).ok());
}

TEST_F(MaintenanceTest, RoutedIndexPartIsPermanentlyUnsupported) {
  // The single-server form cannot see the rest of a routed fingerprint
  // space — pointing it at a cluster member is a caller bug, not a
  // transient state, so the error is kUnsupported rather than kBusy.
  BackupServerConfig cfg = make_config();
  cfg.index_params.skip_bits = 2;
  BackupServer routed(1, cfg, &repo_, &director_);
  MaintenanceJob gc(director_, routed, repo_);
  Status s = gc.execute();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Errc::kUnsupported);
  EXPECT_EQ(gc.plan().error().code, Errc::kUnsupported);
}

TEST_F(MaintenanceTest, VersionNumberingAfterDrops) {
  const std::uint64_t job = director_.define_job("c", "d");
  backup_stream(job, fps(0, 10));   // v1
  backup_stream(job, fps(10, 10));  // v2
  backup_stream(job, fps(20, 10));  // v3
  // Dropping a MIDDLE version must not shift numbering: next is still 4
  // (count-based numbering would collide with the live v3 here).
  ASSERT_TRUE(director_.drop_version(job, 2).ok());
  EXPECT_EQ(director_.next_version(job), 4u);
  // A maintenance round reclaiming the dropped chunks changes nothing
  // about the numbering.
  MaintenanceJob gc(director_, server_, repo_, {.locality = false});
  ASSERT_TRUE(gc.execute().ok());
  EXPECT_EQ(gc.report().dead_chunks, 10u);
  EXPECT_EQ(director_.next_version(job), 4u);
  // Dropping the LATEST frees its slot; the tombstone-then-append replay
  // order keeps a re-used number consistent across recovery.
  ASSERT_TRUE(director_.drop_version(job, 3).ok());
  EXPECT_EQ(director_.next_version(job), 2u);
  backup_stream(job, fps(30, 10));  // new v2
  EXPECT_EQ(director_.next_version(job), 3u);
}

}  // namespace
}  // namespace debar::core
