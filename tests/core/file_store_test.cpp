#include "core/file_store.hpp"

#include <gtest/gtest.h>

#include "common/sha1.hpp"
#include "sim/nic_model.hpp"
#include "storage/block_device.hpp"

namespace debar::core {
namespace {

class FileStoreTest : public ::testing::Test {
 protected:
  FileStoreTest()
      : nic_({.bytes_per_sec = 1.0e6}, &nic_clock_),
        log_(std::make_unique<storage::MemBlockDevice>()),
        store_({.hash_bits = 8, .capacity = 1000}, &log_, &nic_, &director_) {}

  Fingerprint fp(std::uint64_t i) { return Sha1::hash_counter(i); }

  /// Run one job with `fps` as the single file's fingerprint stream;
  /// chunks are 1 KiB of synthetic data.
  JobVersionRecord run_job(std::uint64_t job_id,
                           const std::vector<Fingerprint>& fps) {
    store_.begin_job(job_id);
    store_.begin_file({.path = "a.dat", .size = fps.size() * 1024,
                       .mtime = 0, .mode = 0644});
    const std::vector<Byte> payload(1024, 0x33);
    for (const Fingerprint& f : fps) {
      if (store_.offer_fingerprint(f, 1024)) {
        EXPECT_TRUE(
            store_.receive_chunk(f, ByteSpan(payload.data(), payload.size()))
                .ok());
      }
    }
    store_.end_file();
    auto rec = store_.end_job();
    EXPECT_TRUE(rec.ok());
    return rec.value();
  }

  sim::SimClock nic_clock_;
  sim::NicModel nic_;
  storage::ChunkLog log_;
  Director director_;
  FileStore store_;
};

TEST_F(FileStoreTest, FirstJobTransfersEverythingOnce) {
  const std::uint64_t job = director_.define_job("c", "d");
  const auto rec = run_job(job, {fp(1), fp(2), fp(3), fp(2)});
  EXPECT_EQ(rec.version, 1u);
  EXPECT_EQ(rec.files.size(), 1u);
  EXPECT_EQ(rec.files[0].chunk_fps.size(), 4u);
  // The intra-job duplicate fp(2) was transferred once.
  EXPECT_EQ(log_.record_count(), 3u);
  EXPECT_EQ(store_.stats().suppressed_bytes, 1024u);
}

TEST_F(FileStoreTest, FileIndexPreservesStreamOrderIncludingDuplicates) {
  const std::uint64_t job = director_.define_job("c", "d");
  const std::vector<Fingerprint> stream = {fp(5), fp(6), fp(5), fp(7)};
  const auto rec = run_job(job, stream);
  EXPECT_EQ(rec.files[0].chunk_fps, stream);
}

TEST_F(FileStoreTest, SecondVersionFilteredByJobChain) {
  const std::uint64_t job = director_.define_job("c", "d");
  run_job(job, {fp(1), fp(2), fp(3)});
  // Dedup-2 hasn't run, but the filter seeds from version 1 anyway.
  (void)store_.take_undetermined();
  log_.clear();

  const auto rec2 = run_job(job, {fp(1), fp(2), fp(4)});
  EXPECT_EQ(rec2.version, 2u);
  // Only fp(4) crossed the wire.
  EXPECT_EQ(log_.record_count(), 1u);
  // But all three are referenced, so all three are undetermined.
  const auto undetermined = store_.take_undetermined();
  EXPECT_EQ(undetermined.size(), 3u);
}

TEST_F(FileStoreTest, UndeterminedAccumulatesAcrossJobs) {
  const std::uint64_t j1 = director_.define_job("c1", "d1");
  const std::uint64_t j2 = director_.define_job("c2", "d2");
  run_job(j1, {fp(1), fp(2)});
  run_job(j2, {fp(2), fp(3)});
  const auto undetermined = store_.take_undetermined();
  // Sorted and deduplicated across jobs: {1, 2, 3}.
  EXPECT_EQ(undetermined.size(), 3u);
  EXPECT_TRUE(std::is_sorted(undetermined.begin(), undetermined.end()));
  // Drained.
  EXPECT_TRUE(store_.take_undetermined().empty());
}

TEST_F(FileStoreTest, NicChargesFingerprintAndPayloadBytes) {
  const std::uint64_t job = director_.define_job("c", "d");
  run_job(job, {fp(1)});
  // 256 B metadata + 20 B fingerprint + 1024 B payload at 1 MB/s.
  EXPECT_NEAR(nic_clock_.seconds(), (256.0 + 20.0 + 1024.0) / 1.0e6, 1e-12);
}

TEST_F(FileStoreTest, SuppressedChunksDoNotChargePayloadBandwidth) {
  const std::uint64_t job = director_.define_job("c", "d");
  run_job(job, {fp(1)});
  const double t1 = nic_clock_.seconds();
  (void)store_.take_undetermined();

  run_job(job, {fp(1)});  // fully suppressed by the job chain
  const double delta = nic_clock_.seconds() - t1;
  EXPECT_NEAR(delta, (256.0 + 20.0) / 1.0e6, 1e-12);
}

TEST_F(FileStoreTest, MultipleFilesPerJob) {
  const std::uint64_t job = director_.define_job("c", "d");
  store_.begin_job(job);
  const std::vector<Byte> payload(512, 1);
  for (int f = 0; f < 3; ++f) {
    store_.begin_file({.path = "f" + std::to_string(f), .size = 512,
                       .mtime = 0, .mode = 0644});
    const Fingerprint fpr = fp(static_cast<std::uint64_t>(f));
    if (store_.offer_fingerprint(fpr, 512)) {
      ASSERT_TRUE(store_.receive_chunk(
          fpr, ByteSpan(payload.data(), payload.size())).ok());
    }
    store_.end_file();
  }
  const auto rec = store_.end_job();
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().files.size(), 3u);
  EXPECT_EQ(store_.stats().files_received, 3u);
}

TEST_F(FileStoreTest, VersionRecordLandsAtDirector) {
  const std::uint64_t job = director_.define_job("c", "d");
  run_job(job, {fp(9)});
  const auto v = director_.version(job, 1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->files[0].chunk_fps[0], fp(9));
  EXPECT_EQ(v->logical_bytes, 1024u);
}

}  // namespace
}  // namespace debar::core
