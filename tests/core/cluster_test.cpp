#include "core/cluster.hpp"

#include <gtest/gtest.h>

#include "common/sha1.hpp"

namespace debar::core {
namespace {

ClusterConfig small_cluster(unsigned w) {
  ClusterConfig cfg;
  cfg.routing_bits = w;
  cfg.repository_nodes = 2;
  cfg.server_config.index_params = {.prefix_bits = 6, .blocks_per_bucket = 2};
  cfg.server_config.filter_params = {.hash_bits = 8, .capacity = 100000};
  cfg.server_config.chunk_store.cache_params = {.hash_bits = 4,
                                                .capacity = 1000000};
  cfg.server_config.chunk_store.io_buckets = 8;
  cfg.server_config.chunk_store.siu_threshold = 1;
  return cfg;
}

Fingerprint fp(std::uint64_t i) { return Sha1::hash_counter(i); }

void backup_stream(Cluster& cluster, std::size_t server,
                   std::uint64_t job, const std::vector<Fingerprint>& fps) {
  FileStore& fs = cluster.server(server).file_store();
  fs.begin_job(job);
  fs.begin_file({.path = "s", .size = fps.size() * 512, .mtime = 0,
                 .mode = 0644});
  const std::vector<Byte> payload(512, 0x77);
  for (const Fingerprint& f : fps) {
    if (fs.offer_fingerprint(f, 512)) {
      ASSERT_TRUE(
          fs.receive_chunk(f, ByteSpan(payload.data(), payload.size())).ok());
    }
  }
  fs.end_file();
  ASSERT_TRUE(fs.end_job().ok());
}

TEST(ClusterTest, ConstructionSetsRoutingBits) {
  Cluster cluster(small_cluster(2));
  EXPECT_EQ(cluster.server_count(), 4u);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(cluster.server(k)
                  .chunk_store()
                  .index()
                  .params()
                  .skip_bits,
              2u);
  }
}

TEST(ClusterTest, OwnerRoutingMatchesPrefix) {
  Cluster cluster(small_cluster(2));
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(cluster.owner_of(fp(i)), fp(i).prefix_bits(2));
  }
}

TEST(ClusterTest, ParallelDedup2StoresEverythingOnce) {
  Cluster cluster(small_cluster(1));
  const std::uint64_t j0 = cluster.director().define_job("c0", "d0");
  const std::uint64_t j1 = cluster.director().define_job("c1", "d1");

  std::vector<Fingerprint> s0, s1;
  for (std::uint64_t i = 0; i < 30; ++i) s0.push_back(fp(i));
  for (std::uint64_t i = 30; i < 60; ++i) s1.push_back(fp(i));

  backup_stream(cluster, 0, j0, s0);
  backup_stream(cluster, 1, j1, s1);

  const auto result = cluster.run_dedup2(/*force_siu=*/true);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result.value().undetermined, 60u);
  EXPECT_EQ(result.value().new_chunks, 60u);
  EXPECT_TRUE(result.value().ran_siu);

  // Every fingerprint is registered in exactly its owner's index part.
  std::uint64_t total_entries = 0;
  for (std::size_t k = 0; k < 2; ++k) {
    total_entries += cluster.server(k).chunk_store().index().entry_count();
  }
  EXPECT_EQ(total_entries, 60u);
}

TEST(ClusterTest, CrossStreamDuplicatesStoredOnce) {
  // Both servers back up overlapping streams in the same round: the
  // owner-side designation must prevent double storage.
  Cluster cluster(small_cluster(1));
  const std::uint64_t j0 = cluster.director().define_job("c0", "d0");
  const std::uint64_t j1 = cluster.director().define_job("c1", "d1");

  std::vector<Fingerprint> shared;
  for (std::uint64_t i = 0; i < 40; ++i) shared.push_back(fp(i));

  backup_stream(cluster, 0, j0, shared);
  backup_stream(cluster, 1, j1, shared);

  const auto result = cluster.run_dedup2(true);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().new_chunks, 40u);  // not 80
  EXPECT_EQ(result.value().duplicates, 40u);  // the second copies

  std::uint64_t total_entries = 0;
  for (std::size_t k = 0; k < 2; ++k) {
    total_entries += cluster.server(k).chunk_store().index().entry_count();
  }
  EXPECT_EQ(total_entries, 40u);
}

TEST(ClusterTest, SecondRoundDeduplicatesAcrossRounds) {
  Cluster cluster(small_cluster(2));
  const std::uint64_t job = cluster.director().define_job("c", "d");
  std::vector<Fingerprint> stream;
  for (std::uint64_t i = 0; i < 50; ++i) stream.push_back(fp(i));

  backup_stream(cluster, 0, job, stream);
  ASSERT_TRUE(cluster.run_dedup2(true).ok());
  const std::uint64_t containers = cluster.repository().container_count();

  backup_stream(cluster, 1, job, stream);  // same data via another server
  const auto r2 = cluster.run_dedup2(true);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().new_chunks, 0u);
  EXPECT_EQ(cluster.repository().container_count(), containers);
}

TEST(ClusterTest, RestoreThroughAnyServer) {
  Cluster cluster(small_cluster(2));
  const std::uint64_t job = cluster.director().define_job("c", "d");
  std::vector<Fingerprint> stream;
  for (std::uint64_t i = 0; i < 25; ++i) stream.push_back(fp(i));
  backup_stream(cluster, 1, job, stream);
  ASSERT_TRUE(cluster.run_dedup2(true).ok());

  for (std::size_t via : {std::size_t{0}, std::size_t{3}}) {
    const auto restored = cluster.restore(job, 1, via);
    ASSERT_TRUE(restored.ok()) << restored.error().to_string();
    ASSERT_EQ(restored.value().files.size(), 1u);
    EXPECT_EQ(restored.value().files[0].content.size(), 25u * 512);
  }
}

TEST(ClusterTest, ReadChunkRoutesToOwner) {
  Cluster cluster(small_cluster(2));
  const std::uint64_t job = cluster.director().define_job("c", "d");
  std::vector<Fingerprint> stream = {fp(1), fp(2), fp(3)};
  backup_stream(cluster, 0, job, stream);
  ASSERT_TRUE(cluster.run_dedup2(true).ok());

  for (const Fingerprint& f : stream) {
    const auto chunk = cluster.read_chunk(2, f);
    ASSERT_TRUE(chunk.ok()) << chunk.error().to_string();
    EXPECT_EQ(chunk.value().size(), 512u);
  }
}

TEST(ClusterTest, PendingWithoutSiuStillDeduplicates) {
  ClusterConfig cfg = small_cluster(1);
  cfg.server_config.chunk_store.siu_threshold = 1000000;
  Cluster cluster(cfg);
  const std::uint64_t job = cluster.director().define_job("c", "d");
  std::vector<Fingerprint> stream;
  for (std::uint64_t i = 0; i < 20; ++i) stream.push_back(fp(i));

  backup_stream(cluster, 0, job, stream);
  const auto r1 = cluster.run_dedup2(/*force_siu=*/false);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1.value().ran_siu);

  backup_stream(cluster, 1, job, stream);
  const auto r2 = cluster.run_dedup2(false);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().new_chunks, 0u);  // pending sets caught everything
}

TEST(ClusterTest, PhaseTimesPopulated) {
  Cluster cluster(small_cluster(1));
  const std::uint64_t job = cluster.director().define_job("c", "d");
  std::vector<Fingerprint> stream;
  for (std::uint64_t i = 0; i < 30; ++i) stream.push_back(fp(i));
  backup_stream(cluster, 0, job, stream);

  const auto r = cluster.run_dedup2(true);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().sil_seconds, 0.0);
  EXPECT_GT(r.value().store_seconds, 0.0);
  EXPECT_GT(r.value().siu_seconds, 0.0);
  EXPECT_GT(r.value().total_seconds(), 0.0);
}

TEST(ClusterTest, SingleServerClusterDegeneratesGracefully) {
  Cluster cluster(small_cluster(0));
  EXPECT_EQ(cluster.server_count(), 1u);
  const std::uint64_t job = cluster.director().define_job("c", "d");
  std::vector<Fingerprint> stream = {fp(1), fp(2)};
  backup_stream(cluster, 0, job, stream);
  const auto r = cluster.run_dedup2(true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().new_chunks, 2u);
}

}  // namespace
}  // namespace debar::core
