#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include "workload/file_tree.hpp"

namespace debar::core {
namespace {

BackupServerConfig small_config() {
  BackupServerConfig cfg;
  cfg.index_params = {.prefix_bits = 9, .blocks_per_bucket = 2};
  cfg.chunk_store.siu_threshold = 1;
  return cfg;
}

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : repo_(2) {
    servers_.push_back(
        std::make_unique<BackupServer>(0, small_config(), &repo_, &director_));
    servers_.push_back(
        std::make_unique<BackupServer>(1, small_config(), &repo_, &director_));
  }

  std::vector<BackupServer*> server_ptrs() {
    std::vector<BackupServer*> out;
    for (auto& s : servers_) out.push_back(s.get());
    return out;
  }

  storage::ChunkRepository repo_;
  Director director_;
  std::vector<std::unique_ptr<BackupServer>> servers_;
};

TEST_F(SchedulerTest, RunsDueJobsAndRecordsVersions) {
  const std::uint64_t daily = director_.define_job("alice", "home", 1);
  const std::uint64_t weekly = director_.define_job("bob", "archive", 7);

  // Persistent per-job datasets that evolve day to day.
  std::map<std::uint64_t, Dataset> datasets;
  datasets[daily] = workload::make_dataset(
      {.files = 4, .mean_file_bytes = 64 * KiB, .seed = 1});
  datasets[weekly] = workload::make_dataset(
      {.files = 4, .mean_file_bytes = 64 * KiB, .seed = 2});

  BackupScheduler scheduler(&director_, server_ptrs(),
                            {.dedup2_trigger = 1});
  for (std::uint32_t day = 1; day <= 8; ++day) {
    const auto report = scheduler.run_day(day, [&](const JobSpec& spec,
                                                   std::uint32_t d) {
      datasets[spec.job_id] = workload::mutate_dataset(
          datasets[spec.job_id], {.seed = spec.job_id * 100 + d});
      return Result<Dataset>(datasets[spec.job_id]);
    });
    ASSERT_TRUE(report.ok()) << report.error().to_string();
    // Weekly job only runs on day 7 (7 % 7 == 0); daily runs every day.
    EXPECT_EQ(report.value().jobs_run, day == 7 ? 2u : 1u);
    EXPECT_GT(report.value().dedup2_rounds, 0u);  // trigger = 1
  }
  ASSERT_TRUE(scheduler.finalize().ok());

  EXPECT_EQ(director_.version_count(daily), 8u);
  EXPECT_EQ(director_.version_count(weekly), 1u);
}

TEST_F(SchedulerTest, SpreadsLoadAcrossServers) {
  for (int j = 0; j < 6; ++j) {
    director_.define_job("client" + std::to_string(j), "d", 1);
  }
  BackupScheduler scheduler(&director_, server_ptrs(),
                            {.dedup2_trigger = 1u << 30});
  const auto report =
      scheduler.run_day(1, [&](const JobSpec& spec, std::uint32_t) {
        return Result<Dataset>(workload::make_dataset(
            {.files = 2, .mean_file_bytes = 32 * KiB,
             .seed = spec.job_id}));
      });
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().jobs_run, 6u);
  // Least-loaded assignment: both servers must have received data.
  EXPECT_GT(servers_[0]->file_store().stats().logical_bytes, 0u);
  EXPECT_GT(servers_[1]->file_store().stats().logical_bytes, 0u);
  ASSERT_TRUE(scheduler.finalize().ok());
}

TEST_F(SchedulerTest, Dedup2TriggerRespectsThreshold) {
  director_.define_job("c", "d", 1);
  BackupScheduler scheduler(&director_, server_ptrs(),
                            {.dedup2_trigger = 1u << 30});  // never
  const auto report =
      scheduler.run_day(1, [&](const JobSpec&, std::uint32_t) {
        return Result<Dataset>(workload::make_dataset(
            {.files = 2, .mean_file_bytes = 32 * KiB, .seed = 3}));
      });
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().dedup2_rounds, 0u);
}

TEST_F(SchedulerTest, IncrementalOptionFlowsThroughScheduledRuns) {
  const std::uint64_t job = director_.define_job("alice", "home", 1);
  (void)job;
  Dataset dataset = workload::make_dataset(
      {.files = 5, .mean_file_bytes = 64 * KiB, .seed = 12});
  BackupScheduler scheduler(&director_, server_ptrs(),
                            {.dedup2_trigger = 1,
                             .backup = {.incremental = true}});
  const auto provider = [&](const JobSpec&, std::uint32_t) {
    return Result<Dataset>(dataset);
  };
  const auto day1 = scheduler.run_day(1, provider);
  ASSERT_TRUE(day1.ok());
  EXPECT_GT(day1.value().transferred_bytes, 0u);

  // Same dataset next day: the file-level pre-filter ships nothing.
  const auto day2 = scheduler.run_day(2, provider);
  ASSERT_TRUE(day2.ok());
  EXPECT_EQ(day2.value().transferred_bytes, 0u);
  ASSERT_TRUE(scheduler.finalize().ok());
}

TEST_F(SchedulerTest, ProviderErrorPropagates) {
  director_.define_job("c", "d", 1);
  BackupScheduler scheduler(&director_, server_ptrs());
  const auto report =
      scheduler.run_day(1, [&](const JobSpec&, std::uint32_t) {
        return Result<Dataset>(Errc::kIoError, "client host unreachable");
      });
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, Errc::kIoError);
}

TEST_F(SchedulerTest, FullCycleWithVerify) {
  const std::uint64_t job = director_.define_job("alice", "home", 1);
  Dataset dataset = workload::make_dataset(
      {.files = 5, .mean_file_bytes = 64 * KiB, .seed = 9});
  BackupScheduler scheduler(&director_, server_ptrs(),
                            {.dedup2_trigger = 1});
  ASSERT_TRUE(scheduler
                  .run_day(1, [&](const JobSpec&, std::uint32_t) {
                    return Result<Dataset>(dataset);
                  })
                  .ok());
  ASSERT_TRUE(scheduler.finalize().ok());

  // Verify against whichever server got the job: find it via restore.
  BackupEngine engine("alice", &director_);
  bool verified = false;
  for (auto& server : servers_) {
    const auto verify = engine.verify(job, 1, *server);
    if (verify.ok() && verify.value().clean() &&
        verify.value().chunks > 0) {
      verified = true;
      break;
    }
  }
  EXPECT_TRUE(verified);
}

}  // namespace
}  // namespace debar::core
