#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <type_traits>

#include "core/maintenance.hpp"
#include "net/meter.hpp"
#include "workload/file_tree.hpp"

namespace debar::core {
namespace {

// ---- Counter-width audit (regression for the u32 DayReport wrap) ----
// Fleet-scale benches aggregate DayReports across simulated years; every
// counter that accumulates must be 64-bit. The other report structs a
// horizon sums alongside are audited with it so none regresses quietly.
static_assert(std::is_same_v<decltype(DayReport::jobs_run), std::uint64_t>);
static_assert(
    std::is_same_v<decltype(DayReport::logical_bytes), std::uint64_t>);
static_assert(
    std::is_same_v<decltype(DayReport::transferred_bytes), std::uint64_t>);
static_assert(
    std::is_same_v<decltype(DayReport::dedup2_rounds), std::uint64_t>);
static_assert(std::is_same_v<decltype(DayReport::new_chunks), std::uint64_t>);
static_assert(
    std::is_same_v<decltype(MaintenanceReport::bytes_reclaimed),
                   std::uint64_t>);
static_assert(
    std::is_same_v<decltype(MaintenanceReport::live_chunks), std::uint64_t>);
static_assert(
    std::is_same_v<decltype(net::TransportStats::bytes_sent), std::uint64_t>);
static_assert(
    std::is_same_v<decltype(net::TransportStats::raw_bytes_sent),
                   std::uint64_t>);
static_assert(
    std::is_same_v<decltype(FileStoreStats::logical_bytes), std::uint64_t>);
static_assert(
    std::is_same_v<decltype(FileStoreStats::transferred_bytes),
                   std::uint64_t>);

TEST(DayReportWidthTest, AggregationSurvivesU32Overflow) {
  // The old u32 counters wrapped at 4 GiB / 4G jobs when a horizon
  // aggregated daily reports; u64 accumulation must not.
  DayReport total;
  const std::uint64_t day_bytes = std::uint64_t{3} << 30;  // 3 GiB/day
  for (int day = 0; day < 3; ++day) {
    DayReport report;
    report.jobs_run = std::uint64_t{2'000'000'000};
    report.logical_bytes = day_bytes;
    report.transferred_bytes = day_bytes;
    total.jobs_run += report.jobs_run;
    total.logical_bytes += report.logical_bytes;
    total.transferred_bytes += report.transferred_bytes;
  }
  EXPECT_EQ(total.logical_bytes, std::uint64_t{9} << 30);
  EXPECT_EQ(total.jobs_run, std::uint64_t{6'000'000'000});
  EXPECT_GT(total.transferred_bytes,
            std::uint64_t{std::numeric_limits<std::uint32_t>::max()});
}

BackupServerConfig small_config() {
  BackupServerConfig cfg;
  cfg.index_params = {.prefix_bits = 9, .blocks_per_bucket = 2};
  cfg.chunk_store.siu_threshold = 1;
  return cfg;
}

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() : repo_(2) {
    servers_.push_back(
        std::make_unique<BackupServer>(0, small_config(), &repo_, &director_));
    servers_.push_back(
        std::make_unique<BackupServer>(1, small_config(), &repo_, &director_));
  }

  std::vector<BackupServer*> server_ptrs() {
    std::vector<BackupServer*> out;
    for (auto& s : servers_) out.push_back(s.get());
    return out;
  }

  storage::ChunkRepository repo_;
  Director director_;
  std::vector<std::unique_ptr<BackupServer>> servers_;
};

TEST_F(SchedulerTest, RunsDueJobsAndRecordsVersions) {
  const std::uint64_t daily = director_.define_job("alice", "home", 1);
  const std::uint64_t weekly = director_.define_job("bob", "archive", 7);

  // Persistent per-job datasets that evolve day to day.
  std::map<std::uint64_t, Dataset> datasets;
  datasets[daily] = workload::make_dataset(
      {.files = 4, .mean_file_bytes = 64 * KiB, .seed = 1});
  datasets[weekly] = workload::make_dataset(
      {.files = 4, .mean_file_bytes = 64 * KiB, .seed = 2});

  BackupScheduler scheduler(&director_, server_ptrs(),
                            {.dedup2_trigger = 1});
  for (std::uint32_t day = 1; day <= 8; ++day) {
    const auto report = scheduler.run_day(day, [&](const JobSpec& spec,
                                                   std::uint32_t d) {
      datasets[spec.job_id] = workload::mutate_dataset(
          datasets[spec.job_id], {.seed = spec.job_id * 100 + d});
      return Result<Dataset>(datasets[spec.job_id]);
    });
    ASSERT_TRUE(report.ok()) << report.error().to_string();
    // Weekly job only runs on day 7 (7 % 7 == 0); daily runs every day.
    EXPECT_EQ(report.value().jobs_run, day == 7 ? 2u : 1u);
    EXPECT_GT(report.value().dedup2_rounds, 0u);  // trigger = 1
  }
  ASSERT_TRUE(scheduler.finalize().ok());

  EXPECT_EQ(director_.version_count(daily), 8u);
  EXPECT_EQ(director_.version_count(weekly), 1u);
}

TEST_F(SchedulerTest, SpreadsLoadAcrossServers) {
  for (int j = 0; j < 6; ++j) {
    director_.define_job("client" + std::to_string(j), "d", 1);
  }
  BackupScheduler scheduler(&director_, server_ptrs(),
                            {.dedup2_trigger = 1u << 30});
  const auto report =
      scheduler.run_day(1, [&](const JobSpec& spec, std::uint32_t) {
        return Result<Dataset>(workload::make_dataset(
            {.files = 2, .mean_file_bytes = 32 * KiB,
             .seed = spec.job_id}));
      });
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().jobs_run, 6u);
  // Least-loaded assignment: both servers must have received data.
  EXPECT_GT(servers_[0]->file_store().stats().logical_bytes, 0u);
  EXPECT_GT(servers_[1]->file_store().stats().logical_bytes, 0u);
  ASSERT_TRUE(scheduler.finalize().ok());
}

TEST_F(SchedulerTest, Dedup2TriggerRespectsThreshold) {
  director_.define_job("c", "d", 1);
  BackupScheduler scheduler(&director_, server_ptrs(),
                            {.dedup2_trigger = 1u << 30});  // never
  const auto report =
      scheduler.run_day(1, [&](const JobSpec&, std::uint32_t) {
        return Result<Dataset>(workload::make_dataset(
            {.files = 2, .mean_file_bytes = 32 * KiB, .seed = 3}));
      });
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().dedup2_rounds, 0u);
}

TEST_F(SchedulerTest, IncrementalOptionFlowsThroughScheduledRuns) {
  const std::uint64_t job = director_.define_job("alice", "home", 1);
  (void)job;
  Dataset dataset = workload::make_dataset(
      {.files = 5, .mean_file_bytes = 64 * KiB, .seed = 12});
  BackupScheduler scheduler(&director_, server_ptrs(),
                            {.dedup2_trigger = 1,
                             .backup = {.incremental = true}});
  const auto provider = [&](const JobSpec&, std::uint32_t) {
    return Result<Dataset>(dataset);
  };
  const auto day1 = scheduler.run_day(1, provider);
  ASSERT_TRUE(day1.ok());
  EXPECT_GT(day1.value().transferred_bytes, 0u);

  // Same dataset next day: the file-level pre-filter ships nothing.
  const auto day2 = scheduler.run_day(2, provider);
  ASSERT_TRUE(day2.ok());
  EXPECT_EQ(day2.value().transferred_bytes, 0u);
  ASSERT_TRUE(scheduler.finalize().ok());
}

TEST_F(SchedulerTest, ProviderErrorPropagates) {
  director_.define_job("c", "d", 1);
  BackupScheduler scheduler(&director_, server_ptrs());
  const auto report =
      scheduler.run_day(1, [&](const JobSpec&, std::uint32_t) {
        return Result<Dataset>(Errc::kIoError, "client host unreachable");
      });
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, Errc::kIoError);
}

TEST_F(SchedulerTest, FullCycleWithVerify) {
  const std::uint64_t job = director_.define_job("alice", "home", 1);
  Dataset dataset = workload::make_dataset(
      {.files = 5, .mean_file_bytes = 64 * KiB, .seed = 9});
  BackupScheduler scheduler(&director_, server_ptrs(),
                            {.dedup2_trigger = 1});
  ASSERT_TRUE(scheduler
                  .run_day(1, [&](const JobSpec&, std::uint32_t) {
                    return Result<Dataset>(dataset);
                  })
                  .ok());
  ASSERT_TRUE(scheduler.finalize().ok());

  // Verify against whichever server got the job: find it via restore.
  BackupEngine engine("alice", &director_);
  bool verified = false;
  for (auto& server : servers_) {
    const auto verify = engine.verify(job, 1, *server);
    if (verify.ok() && verify.value().clean() &&
        verify.value().chunks > 0) {
      verified = true;
      break;
    }
  }
  EXPECT_TRUE(verified);
}

// ---- Least-loaded tie-break regression ----
// The director breaks least-loaded ties toward the lowest *index* in the
// scheduler's server vector. Before the ctor pinned index order to
// ascending server id, a caller passing {s1, s0} got a mirror-image
// assignment (and a different container layout) from one passing
// {s0, s1}. The bar: per-server-id byte placement is identical no matter
// how the construction vector was ordered.
TEST(SchedulerTieBreakTest, AssignmentIndependentOfConstructionOrder) {
  auto run = [](bool shuffled) {
    storage::ChunkRepository repo(2);
    Director director;
    BackupServer s0(0, small_config(), &repo, &director);
    BackupServer s1(1, small_config(), &repo, &director);
    for (int j = 0; j < 5; ++j) {
      director.define_job("client" + std::to_string(j), "d", 1);
    }
    std::vector<BackupServer*> order =
        shuffled ? std::vector<BackupServer*>{&s1, &s0}
                 : std::vector<BackupServer*>{&s0, &s1};
    BackupScheduler scheduler(&director, order, {.dedup2_trigger = 1u << 30});
    const auto report =
        scheduler.run_day(1, [&](const JobSpec& spec, std::uint32_t) {
          return Result<Dataset>(workload::make_dataset(
              {.files = 2, .mean_file_bytes = 32 * KiB, .seed = spec.job_id}));
        });
    EXPECT_TRUE(report.ok());
    EXPECT_TRUE(scheduler.finalize().ok());
    // Keyed by server *id*, not vector position.
    return std::pair{s0.file_store().stats().logical_bytes,
                     s1.file_store().stats().logical_bytes};
  };
  const auto sorted = run(/*shuffled=*/false);
  const auto shuffled = run(/*shuffled=*/true);
  EXPECT_GT(sorted.first, 0u);
  EXPECT_GT(sorted.second, 0u);
  EXPECT_EQ(sorted.first, shuffled.first);
  EXPECT_EQ(sorted.second, shuffled.second);
}

}  // namespace
}  // namespace debar::core
