#include "core/chunk_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/sha1.hpp"
#include "storage/block_device.hpp"

namespace debar::core {
namespace {

class ChunkStoreTest : public ::testing::Test {
 protected:
  ChunkStoreTest()
      : repo_(1),
        log_(std::make_unique<storage::MemBlockDevice>()),
        store_(make_index(), make_config(), &repo_, &log_,
               [] { return std::make_unique<storage::MemBlockDevice>(); }) {}

  static index::DiskIndex make_index() {
    auto idx = index::DiskIndex::create(
        std::make_unique<storage::MemBlockDevice>(),
        {.prefix_bits = 8, .blocks_per_bucket = 2});
    EXPECT_TRUE(idx.ok());
    return std::move(idx).value();
  }

  static ChunkStoreConfig make_config() {
    ChunkStoreConfig cfg;
    cfg.cache_params = {.hash_bits = 6, .capacity = 10000};
    cfg.io_buckets = 16;
    cfg.siu_threshold = 1;  // SIU always due unless a test overrides
    cfg.lpc_containers = 2;
    return cfg;
  }

  Fingerprint fp(std::uint64_t i) { return Sha1::hash_counter(i); }

  std::vector<Byte> payload(std::uint64_t i, std::size_t size = 1024) {
    std::vector<Byte> data(size, static_cast<Byte>(i * 31 + 1));
    return data;
  }

  /// Append <fp(i), payload(i)> for each i to the chunk log.
  void fill_log(const std::vector<std::uint64_t>& ids) {
    for (const std::uint64_t i : ids) {
      const auto data = payload(i);
      ASSERT_TRUE(log_.append(fp(i), ByteSpan(data.data(), data.size())).ok());
    }
  }

  /// Run a full single-server dedup-2 round over fingerprints `ids`.
  void run_round(const std::vector<std::uint64_t>& ids, bool siu = true) {
    std::vector<Fingerprint> sorted;
    for (const std::uint64_t i : ids) sorted.push_back(fp(i));
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

    std::vector<std::uint8_t> found;
    auto sil = store_.sil(sorted, found);
    ASSERT_TRUE(sil.ok());
    std::vector<Fingerprint> new_fps;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      if (found[i] == 0) new_fps.push_back(sorted[i]);
    }
    auto stored = store_.store_new_chunks(new_fps);
    ASSERT_TRUE(stored.ok());
    store_.add_pending(std::span<const IndexEntry>(stored.value().entries));
    store_.clear_log();
    if (siu) {
      ASSERT_TRUE(store_.siu().ok());
    }
  }

  storage::ChunkRepository repo_;
  storage::ChunkLog log_;
  ChunkStore store_;
};

TEST_F(ChunkStoreTest, SilFindsNothingInEmptyIndex) {
  std::vector<Fingerprint> fps = {fp(1), fp(2)};
  std::sort(fps.begin(), fps.end());
  std::vector<std::uint8_t> found;
  const auto r = store_.sil(fps, found);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().found_on_disk, 0u);
  EXPECT_EQ(found, (std::vector<std::uint8_t>{0, 0}));
}

TEST_F(ChunkStoreTest, FullRoundStoresNewChunksAndRegistersThem) {
  fill_log({1, 2, 3});
  run_round({1, 2, 3});

  EXPECT_EQ(store_.index().entry_count(), 3u);
  EXPECT_EQ(store_.pending_count(), 0u);  // SIU drained the pending set
  for (const std::uint64_t i : {1, 2, 3}) {
    const auto cid = store_.locate(fp(i));
    ASSERT_TRUE(cid.ok()) << i;
    const auto chunk = store_.read_chunk(fp(i));
    ASSERT_TRUE(chunk.ok());
    EXPECT_EQ(chunk.value(), payload(i));
  }
}

TEST_F(ChunkStoreTest, SecondRoundDeduplicatesAgainstIndex) {
  fill_log({1, 2});
  run_round({1, 2});
  const std::uint64_t containers_before = repo_.container_count();

  fill_log({1, 2, 3});  // 1 and 2 are duplicates now
  std::vector<Fingerprint> sorted = {fp(1), fp(2), fp(3)};
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::uint8_t> found;
  const auto sil = store_.sil(sorted, found);
  ASSERT_TRUE(sil.ok());
  EXPECT_EQ(sil.value().found_on_disk, 2u);

  std::vector<Fingerprint> new_fps;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (found[i] == 0) new_fps.push_back(sorted[i]);
  }
  const auto stored = store_.store_new_chunks(new_fps);
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored.value().new_chunks, 1u);
  EXPECT_EQ(stored.value().discarded, 2u);
  EXPECT_EQ(repo_.container_count(), containers_before + 1);
}

TEST_F(ChunkStoreTest, CheckingSetShieldsAsynchronousSiu) {
  // Round 1 without SIU: entries stay pending.
  fill_log({1, 2});
  run_round({1, 2}, /*siu=*/false);
  EXPECT_EQ(store_.pending_count(), 2u);
  EXPECT_EQ(store_.index().entry_count(), 0u);

  // Round 2 re-sees fp(1): the checking set must resolve it as duplicate
  // even though the disk index doesn't know it yet.
  fill_log({1, 3});
  std::vector<Fingerprint> sorted = {fp(1), fp(3)};
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::uint8_t> found;
  const auto sil = store_.sil(sorted, found);
  ASSERT_TRUE(sil.ok());
  EXPECT_EQ(sil.value().found_pending, 1u);
  EXPECT_EQ(sil.value().found_on_disk, 0u);

  std::vector<Fingerprint> new_fps;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (found[i] == 0) new_fps.push_back(sorted[i]);
  }
  const auto stored = store_.store_new_chunks(new_fps);
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored.value().new_chunks, 1u);  // only fp(3)
  store_.add_pending(std::span<const IndexEntry>(stored.value().entries));
  store_.clear_log();

  // One SIU services both rounds (Section 5.4).
  const auto siu = store_.siu();
  ASSERT_TRUE(siu.ok());
  EXPECT_EQ(siu.value().inserted, 3u);
  EXPECT_EQ(store_.index().entry_count(), 3u);
}

TEST_F(ChunkStoreTest, IntraLogDuplicatesStoredOnce) {
  // Same fingerprint appended to the log twice (e.g. two jobs, filter
  // cleared in between): exactly one copy must reach a container.
  fill_log({7, 7});
  run_round({7});
  const auto cid = store_.locate(fp(7));
  ASSERT_TRUE(cid.ok());
  const auto container = store_.container_manager().read(cid.value());
  ASSERT_TRUE(container.ok());
  std::size_t copies = 0;
  for (const auto& m : container.value().metadata()) {
    if (m.fp == fp(7)) ++copies;
  }
  EXPECT_EQ(copies, 1u);
}

TEST_F(ChunkStoreTest, OrphanNewFingerprintDetected) {
  // SIL says "new" but the log has no payload: must be dropped and counted.
  const auto stored = store_.store_new_chunks({fp(42)});
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored.value().orphans, 1u);
  EXPECT_TRUE(stored.value().entries.empty());
}

TEST_F(ChunkStoreTest, LocateMissesAreNotFound) {
  const auto r = store_.locate(fp(1234));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kNotFound);
}

TEST_F(ChunkStoreTest, RestoreUsesLpcPrefetch) {
  std::vector<std::uint64_t> ids;
  for (std::uint64_t i = 0; i < 50; ++i) ids.push_back(i);
  fill_log(ids);
  run_round(ids);

  // First read misses and prefetches the container; the rest of the
  // SISL neighbourhood must hit.
  ASSERT_TRUE(store_.read_chunk(fp(0)).ok());
  const std::uint64_t misses_after_first = store_.lpc().misses();
  for (std::uint64_t i = 1; i < 50; ++i) {
    ASSERT_TRUE(store_.read_chunk(fp(i)).ok());
  }
  EXPECT_EQ(store_.lpc().misses(), misses_after_first);
  EXPECT_GE(store_.lpc().hits(), 49u);
}

TEST_F(ChunkStoreTest, SiuTriggersCapacityScalingWhenFull) {
  // Small index: 4 buckets x 40 = 160 entries. Insert 200.
  auto small = index::DiskIndex::create(
      std::make_unique<storage::MemBlockDevice>(),
      {.prefix_bits = 2, .blocks_per_bucket = 2});
  ASSERT_TRUE(small.ok());
  ChunkStoreConfig cfg = make_config();
  storage::ChunkLog log2(std::make_unique<storage::MemBlockDevice>());
  ChunkStore store2(std::move(small).value(), cfg, &repo_, &log2,
                    [] { return std::make_unique<storage::MemBlockDevice>(); });

  std::vector<IndexEntry> entries;
  for (std::uint64_t i = 0; i < 200; ++i) {
    entries.push_back({fp(i), ContainerId{i + 1}});
  }
  store2.add_pending(std::span<const IndexEntry>(entries));
  const auto siu = store2.siu();
  ASSERT_TRUE(siu.ok()) << siu.error().to_string();
  EXPECT_GE(siu.value().scalings, 1u);
  EXPECT_EQ(siu.value().inserted, 200u);
  EXPECT_GE(store2.index().params().prefix_bits, 3u);
  for (std::uint64_t i = 0; i < 200; ++i) {
    EXPECT_TRUE(store2.index().lookup(fp(i)).ok()) << i;
  }
}

TEST_F(ChunkStoreTest, SiuOnEmptyPendingIsNoop) {
  const auto r = store_.siu();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().inserted, 0u);
}

}  // namespace
}  // namespace debar::core
