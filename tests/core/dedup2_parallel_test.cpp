// Differential equivalence for the parallel dedup-2 pipeline: the same
// multi-generation workload run with threads=1 (today's serial code) and
// threads=4 (sharded SIL, SIL/store overlap, pipelined SIU) must produce
// the same bytes everywhere — index image, container set, restored data,
// per-round counters, and modeled clocks.
#include <gtest/gtest.h>

#include <cstring>

#include "common/sha1.hpp"
#include "core/backup_server.hpp"

namespace debar::core {
namespace {

Fingerprint fp(std::uint64_t i) { return Sha1::hash_counter(i); }

std::vector<Byte> payload_of(std::uint64_t i) {
  // Size and content both vary with i so container framing differences
  // cannot cancel out in aggregate byte counts.
  std::vector<Byte> payload(256 + (i % 7) * 32,
                            static_cast<Byte>(0x20 + i % 200));
  return payload;
}

BackupServerConfig config_with_threads(std::size_t threads) {
  BackupServerConfig cfg;
  cfg.index_params = {.prefix_bits = 8, .blocks_per_bucket = 2};
  cfg.filter_params = {.hash_bits = 8, .capacity = 10000};
  // Small cache -> many SIL/store batches; small io_buckets -> many spans
  // per scan: both pipelines stay busy.
  cfg.chunk_store.cache_params = {.hash_bits = 6, .capacity = 40};
  cfg.chunk_store.io_buckets = 16;
  cfg.chunk_store.siu_threshold = 1 << 20;  // only forced SIU runs
  cfg.chunk_store.dedup2.threads = threads;
  cfg.chunk_store.dedup2.pipeline_depth = 2;
  return cfg;
}

struct RoundStats {
  std::uint64_t undetermined = 0;
  std::uint64_t sil_runs = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t new_chunks = 0;
  std::uint64_t new_bytes = 0;
  bool ran_siu = false;
  double sil_seconds = 0.0;
  double siu_seconds = 0.0;

  friend bool operator==(const RoundStats&, const RoundStats&) = default;
};

struct Snapshot {
  std::vector<RoundStats> rounds;
  std::vector<Byte> index_image;
  std::vector<ContainerId> container_ids;
  std::vector<std::vector<Byte>> container_images;
  std::vector<std::vector<Byte>> restored;
  double index_seconds = 0.0;
  double log_seconds = 0.0;
};

/// Three generations with pending-set, on-disk, and fresh fingerprints in
/// every round; SIU is skipped after generation 0 so generation 1 dedups
/// against the checking set, then forced afterwards.
Snapshot run_workload(std::size_t threads) {
  storage::ChunkRepository repo(2);
  Director director;
  BackupServer server(0, config_with_threads(threads), &repo, &director);
  const std::uint64_t job = director.define_job("client", "dataset");

  const auto backup = [&](std::uint64_t from, std::uint64_t to) {
    FileStore& fs = server.file_store();
    fs.begin_job(job);
    fs.begin_file(
        {.path = "gen.dat", .size = (to - from) * 512, .mtime = 0,
         .mode = 0644});
    for (std::uint64_t i = from; i < to; ++i) {
      const std::vector<Byte> payload = payload_of(i);
      if (fs.offer_fingerprint(fp(i), payload.size())) {
        EXPECT_TRUE(
            fs.receive_chunk(fp(i),
                             ByteSpan(payload.data(), payload.size()))
                .ok());
      }
    }
    fs.end_file();
    EXPECT_TRUE(fs.end_job().ok());
  };

  Snapshot snap;
  const auto dedup2 = [&](bool force_siu) {
    const Result<Dedup2Result> r = server.run_dedup2(force_siu);
    EXPECT_TRUE(r.ok()) << r.error().to_string();
    const Dedup2Result& d = r.value();
    snap.rounds.push_back({d.undetermined, d.sil_runs, d.duplicates,
                           d.new_chunks, d.new_bytes, d.ran_siu,
                           d.sil_seconds, d.siu_seconds});
  };

  backup(0, 100);
  dedup2(/*force_siu=*/false);  // everything stays in the checking set
  backup(50, 150);
  dedup2(/*force_siu=*/true);  // 50 pending dups, 50 new
  backup(0, 180);
  dedup2(/*force_siu=*/true);  // 150 on-disk dups, 30 new

  const auto* mem = dynamic_cast<const storage::MemBlockDevice*>(
      &server.chunk_store().index().device());
  EXPECT_NE(mem, nullptr);
  const ByteSpan image = mem->contents();
  snap.index_image.assign(image.begin(), image.end());

  snap.container_ids = repo.container_ids();
  for (const ContainerId id : snap.container_ids) {
    Result<storage::Container> c = repo.read(id);
    EXPECT_TRUE(c.ok());
    snap.container_images.push_back(c.value().serialize());
  }
  for (std::uint64_t i = 0; i < 180; ++i) {
    Result<std::vector<Byte>> chunk = server.chunk_store().read_chunk(fp(i));
    EXPECT_TRUE(chunk.ok()) << i;
    snap.restored.push_back(std::move(chunk).value());
  }
  const ServerClocks clocks = server.clocks();
  snap.index_seconds = clocks.index_disk;
  snap.log_seconds = clocks.log_disk;
  return snap;
}

TEST(Dedup2ParallelTest, FourThreadsByteIdenticalToSerial) {
  const Snapshot serial = run_workload(1);
  const Snapshot parallel = run_workload(4);

  ASSERT_EQ(serial.rounds.size(), parallel.rounds.size());
  for (std::size_t i = 0; i < serial.rounds.size(); ++i) {
    EXPECT_EQ(serial.rounds[i], parallel.rounds[i]) << "round " << i;
  }
  EXPECT_EQ(serial.index_image, parallel.index_image);
  EXPECT_EQ(serial.container_ids, parallel.container_ids);
  EXPECT_EQ(serial.container_images, parallel.container_images);
  EXPECT_EQ(serial.restored, parallel.restored);
  EXPECT_DOUBLE_EQ(serial.index_seconds, parallel.index_seconds);
  EXPECT_DOUBLE_EQ(serial.log_seconds, parallel.log_seconds);
}

TEST(Dedup2ParallelTest, ThreadCountSweepConverges) {
  // Any thread count, not just 4, must land on the serial bytes.
  const Snapshot serial = run_workload(1);
  for (const std::size_t threads : {2u, 3u, 8u}) {
    const Snapshot parallel = run_workload(threads);
    EXPECT_EQ(serial.index_image, parallel.index_image) << threads;
    EXPECT_EQ(serial.container_images, parallel.container_images) << threads;
    EXPECT_EQ(serial.restored, parallel.restored) << threads;
    EXPECT_DOUBLE_EQ(serial.index_seconds, parallel.index_seconds) << threads;
  }
}

}  // namespace
}  // namespace debar::core
