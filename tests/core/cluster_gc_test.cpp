// Cluster-wide garbage collection: mark from the director, sweep the
// shared repository, route erases/re-maps to the owning index parts.
#include <gtest/gtest.h>

#include "common/sha1.hpp"
#include "core/cluster.hpp"
#include "core/gc.hpp"

namespace debar::core {
namespace {

ClusterConfig small_cluster() {
  ClusterConfig cfg;
  cfg.routing_bits = 2;  // 4 servers
  cfg.repository_nodes = 2;
  cfg.server_config.index_params = {.prefix_bits = 6, .blocks_per_bucket = 2};
  cfg.server_config.chunk_store.siu_threshold = 1;
  cfg.server_config.container_capacity = 64 * 1024;
  return cfg;
}

void backup_stream(Cluster& cluster, std::size_t server, std::uint64_t job,
                   const std::vector<Fingerprint>& fps) {
  FileStore& fs = cluster.server(server).file_store();
  fs.begin_job(job);
  fs.begin_file({.path = "s", .size = fps.size() * 4096, .mtime = 0,
                 .mode = 0644});
  for (const Fingerprint& f : fps) {
    if (fs.offer_fingerprint(f, 4096)) {
      const auto payload = BackupEngine::synthetic_payload(f, 4096);
      ASSERT_TRUE(
          fs.receive_chunk(f, ByteSpan(payload.data(), payload.size())).ok());
    }
  }
  fs.end_file();
  ASSERT_TRUE(fs.end_job().ok());
}

std::vector<Fingerprint> fps(std::uint64_t from, std::uint64_t count) {
  std::vector<Fingerprint> out;
  for (std::uint64_t i = 0; i < count; ++i) {
    out.push_back(Sha1::hash_counter(from + i));
  }
  return out;
}

TEST(ClusterGcTest, DropAndReclaimAcrossParts) {
  Cluster cluster(small_cluster());
  const std::uint64_t j0 = cluster.director().define_job("a", "d");
  const std::uint64_t j1 = cluster.director().define_job("b", "d");

  backup_stream(cluster, 0, j0, fps(0, 200));
  backup_stream(cluster, 1, j1, fps(100, 200));  // shares 100..199 with j0
  ASSERT_TRUE(cluster.run_dedup2(true).ok());

  ASSERT_TRUE(cluster.director().drop_version(j0, 1).ok());
  const auto report = collect_garbage(cluster);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  // Chunks 0..99 die (only j0 referenced them); 100..299 live via j1.
  EXPECT_EQ(report.value().dead_chunks, 100u);
  EXPECT_EQ(report.value().live_chunks, 200u);
  EXPECT_GT(report.value().bytes_reclaimed, 0u);

  // Dead fingerprints are gone from every index part.
  for (std::uint64_t i = 0; i < 100; ++i) {
    const Fingerprint f = Sha1::hash_counter(i);
    EXPECT_FALSE(cluster.server(cluster.owner_of(f))
                     .chunk_store()
                     .locate(f)
                     .ok())
        << i;
  }
  // j1 restores byte-exact through any server.
  const auto restored = cluster.restore(j1, 1, 3);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  EXPECT_EQ(restored.value().files[0].content.size(), 200u * 4096);
}

TEST(ClusterGcTest, RefusesWithPendingSiuOnAnyServer) {
  ClusterConfig cfg = small_cluster();
  cfg.server_config.chunk_store.siu_threshold = 1 << 30;
  Cluster cluster(cfg);
  const std::uint64_t job = cluster.director().define_job("a", "d");
  backup_stream(cluster, 0, job, fps(0, 50));
  ASSERT_TRUE(cluster.run_dedup2(/*force_siu=*/false).ok());

  const auto report = collect_garbage(cluster);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, Errc::kInvalidArgument);
}

TEST(ClusterGcTest, NoopWhenEverythingLive) {
  Cluster cluster(small_cluster());
  const std::uint64_t job = cluster.director().define_job("a", "d");
  backup_stream(cluster, 2, job, fps(0, 120));
  ASSERT_TRUE(cluster.run_dedup2(true).ok());
  const std::uint64_t containers = cluster.repository().container_count();

  const auto report = collect_garbage(cluster);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().containers_deleted, 0u);
  EXPECT_EQ(report.value().dead_chunks, 0u);
  EXPECT_EQ(cluster.repository().container_count(), containers);
}

}  // namespace
}  // namespace debar::core
