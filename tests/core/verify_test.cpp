#include <gtest/gtest.h>

#include "common/sha1.hpp"
#include "core/backup_engine.hpp"
#include "workload/file_tree.hpp"

namespace debar::core {
namespace {

BackupServerConfig small_config() {
  BackupServerConfig cfg;
  cfg.index_params = {.prefix_bits = 9, .blocks_per_bucket = 2};
  cfg.chunk_store.siu_threshold = 1;
  return cfg;
}

class VerifyTest : public ::testing::Test {
 protected:
  VerifyTest()
      : repo_(1),
        server_(0, small_config(), &repo_, &director_),
        engine_("client", &director_) {}

  storage::ChunkRepository repo_;
  Director director_;
  BackupServer server_;
  BackupEngine engine_;
};

TEST_F(VerifyTest, CleanBackupVerifiesClean) {
  const auto dataset = workload::make_dataset(
      {.files = 5, .mean_file_bytes = 64 * KiB, .seed = 41});
  const std::uint64_t job = director_.define_job("client", "d");
  ASSERT_TRUE(engine_.run_backup(job, dataset, server_.file_store()).ok());
  ASSERT_TRUE(server_.run_dedup2(true).ok());

  const auto report = engine_.verify(job, 1, server_);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_TRUE(report.value().clean());
  EXPECT_GT(report.value().chunks, 0u);
  EXPECT_EQ(report.value().ok_chunks, report.value().chunks);
  EXPECT_TRUE(report.value().damaged_files.empty());
}

TEST_F(VerifyTest, SyntheticStreamVerifiesViaStamp) {
  std::vector<Fingerprint> stream;
  for (std::uint64_t i = 0; i < 30; ++i) {
    stream.push_back(Sha1::hash_counter(i));
  }
  const std::uint64_t job = director_.define_job("client", "s");
  ASSERT_TRUE(engine_
                  .run_backup_stream(job, std::span<const Fingerprint>(stream),
                                     server_.file_store(), 4096)
                  .ok());
  ASSERT_TRUE(server_.run_dedup2(true).ok());

  const auto report = engine_.verify(job, 1, server_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().clean());
  EXPECT_EQ(report.value().chunks, 30u);
}

TEST_F(VerifyTest, UnknownVersionFails) {
  const auto report = engine_.verify(999, 1, server_);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, Errc::kNotFound);
}

TEST_F(VerifyTest, DetectsMissingChunks) {
  // Record a version whose chunks were never stored (no dedup-2 run and
  // chunk log dropped): verify must report every chunk missing.
  std::vector<Fingerprint> stream = {Sha1::hash_counter(1),
                                     Sha1::hash_counter(2)};
  const std::uint64_t job = director_.define_job("client", "s");
  ASSERT_TRUE(engine_
                  .run_backup_stream(job, std::span<const Fingerprint>(stream),
                                     server_.file_store(), 1024)
                  .ok());
  // Simulate a crash that loses the chunk log before dedup-2.
  (void)server_.file_store().take_undetermined();
  server_.chunk_store().clear_log();

  const auto report = engine_.verify(job, 1, server_);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report.value().clean());
  EXPECT_EQ(report.value().missing_chunks, 2u);
  EXPECT_EQ(report.value().damaged_files.size(), 1u);
}

}  // namespace
}  // namespace debar::core
