// Concurrent client sessions on one backup server (Section 6.2: each
// backup server receives data from four clients in parallel). Sessions
// interleave arbitrarily — including from different threads — over the
// shared preliminary filter, chunk log and NIC.
#include <gtest/gtest.h>

#include <thread>

#include "common/sha1.hpp"
#include "core/backup_engine.hpp"

namespace debar::core {
namespace {

BackupServerConfig small_config() {
  BackupServerConfig cfg;
  cfg.index_params = {.prefix_bits = 9, .blocks_per_bucket = 2};
  cfg.chunk_store.siu_threshold = 1;
  return cfg;
}

class ConcurrentSessionsTest : public ::testing::Test {
 protected:
  ConcurrentSessionsTest()
      : repo_(1), server_(0, small_config(), &repo_, &director_) {}

  Fingerprint fp(std::uint64_t i) { return Sha1::hash_counter(i); }

  void send_file(FileStore::SessionId session, const std::string& path,
                 const std::vector<Fingerprint>& fps) {
    FileStore& fs = server_.file_store();
    fs.begin_file(session, {.path = path, .size = fps.size() * 1024,
                            .mtime = 0, .mode = 0644});
    for (const Fingerprint& f : fps) {
      if (fs.offer_fingerprint(session, f, 1024)) {
        const auto payload = BackupEngine::synthetic_payload(f, 1024);
        ASSERT_TRUE(fs.receive_chunk(session, f,
                                     ByteSpan(payload.data(), payload.size()))
                        .ok());
      }
    }
    fs.end_file(session);
  }

  storage::ChunkRepository repo_;
  Director director_;
  BackupServer server_;
};

TEST_F(ConcurrentSessionsTest, InterleavedSessionsRecordSeparateVersions) {
  const std::uint64_t ja = director_.define_job("alice", "d");
  const std::uint64_t jb = director_.define_job("bob", "d");
  FileStore& fs = server_.file_store();

  const auto sa = fs.open_session(ja);
  const auto sb = fs.open_session(jb);
  EXPECT_EQ(fs.open_sessions(), 2u);

  // Files from the two clients arrive interleaved.
  send_file(sa, "a1", {fp(1), fp(2)});
  send_file(sb, "b1", {fp(10), fp(11)});
  send_file(sa, "a2", {fp(3)});
  send_file(sb, "b2", {fp(12)});

  const auto ra = fs.close_session(sa);
  const auto rb = fs.close_session(sb);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(fs.open_sessions(), 0u);

  // Each record holds exactly its own files, in its own order.
  ASSERT_EQ(ra.value().files.size(), 2u);
  EXPECT_EQ(ra.value().files[0].meta.path, "a1");
  EXPECT_EQ(ra.value().files[1].meta.path, "a2");
  ASSERT_EQ(rb.value().files.size(), 2u);
  EXPECT_EQ(rb.value().files[0].meta.path, "b1");
  EXPECT_EQ(rb.value().files[1].chunk_fps[0], fp(12));

  // Both versions landed at the director.
  EXPECT_EQ(director_.version_count(ja), 1u);
  EXPECT_EQ(director_.version_count(jb), 1u);
}

TEST_F(ConcurrentSessionsTest, CrossSessionDuplicatesSuppressedOnTheWire) {
  const std::uint64_t ja = director_.define_job("alice", "d");
  const std::uint64_t jb = director_.define_job("bob", "d");
  FileStore& fs = server_.file_store();

  const auto sa = fs.open_session(ja);
  const auto sb = fs.open_session(jb);
  // Both clients reference the same chunk; the filter admits it once.
  send_file(sa, "a", {fp(7)});
  send_file(sb, "b", {fp(7)});
  ASSERT_TRUE(fs.close_session(sa).ok());
  ASSERT_TRUE(fs.close_session(sb).ok());

  EXPECT_EQ(fs.stats().log_records, 1u);
  // And dedup-2 stores it once, restorable for both versions.
  ASSERT_TRUE(server_.run_dedup2(true).ok());
  BackupEngine ea("alice", &director_), eb("bob", &director_);
  EXPECT_TRUE(ea.restore(ja, 1, server_, true).ok());
  EXPECT_TRUE(eb.restore(jb, 1, server_, true).ok());
}

TEST_F(ConcurrentSessionsTest, FourClientThreadsSharingOneServer) {
  constexpr std::size_t kClients = 4;
  constexpr std::uint64_t kChunks = 200;
  std::vector<std::uint64_t> jobs;
  for (std::size_t c = 0; c < kClients; ++c) {
    jobs.push_back(director_.define_job("c" + std::to_string(c), "d"));
  }

  // Open every session up front (the four clients are connected for the
  // whole backup window); the streams then run concurrently and the
  // sessions close after all data has arrived. This also pins down the
  // filter lifecycle: one initialization for the whole window.
  FileStore& fs = server_.file_store();
  std::vector<FileStore::SessionId> sessions;
  for (std::size_t c = 0; c < kClients; ++c) {
    sessions.push_back(fs.open_session(jobs[c]));
    fs.begin_file(sessions[c], {.path = "stream", .size = kChunks * 1024,
                                .mtime = 0, .mode = 0644});
  }
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([this, &fs, &sessions, c] {
      for (std::uint64_t i = 0; i < kChunks; ++i) {
        // Half private, half shared across all clients.
        const std::uint64_t counter =
            i % 2 == 0 ? 100000 + i : (c + 1) * 1000000 + i;
        const Fingerprint f = Sha1::hash_counter(counter);
        if (fs.offer_fingerprint(sessions[c], f, 1024)) {
          const auto data = BackupEngine::synthetic_payload(f, 1024);
          ASSERT_TRUE(fs.receive_chunk(sessions[c], f,
                                       ByteSpan(data.data(), data.size()))
                          .ok());
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  for (std::size_t c = 0; c < kClients; ++c) {
    fs.end_file(sessions[c]);
    ASSERT_TRUE(fs.close_session(sessions[c]).ok());
  }

  // The shared chunks crossed the wire once each, not once per client.
  const std::uint64_t shared = kChunks / 2;
  const std::uint64_t private_per_client = kChunks - shared;
  EXPECT_EQ(server_.file_store().stats().log_records,
            shared + kClients * private_per_client);

  ASSERT_TRUE(server_.run_dedup2(true).ok());
  for (std::size_t c = 0; c < kClients; ++c) {
    BackupEngine engine("c" + std::to_string(c), &director_);
    const auto restored = engine.restore(jobs[c], 1, server_, true);
    ASSERT_TRUE(restored.ok()) << restored.error().to_string();
    EXPECT_EQ(restored.value().files[0].content.size(), kChunks * 1024);
  }
}

TEST_F(ConcurrentSessionsTest, SessionCloseCollectsSharedMarksSafely) {
  // Closing one session may drain 'new' marks belonging to a still-open
  // session; the fingerprints must still reach dedup-2 exactly once.
  const std::uint64_t ja = director_.define_job("alice", "d");
  const std::uint64_t jb = director_.define_job("bob", "d");
  FileStore& fs = server_.file_store();

  const auto sa = fs.open_session(ja);
  const auto sb = fs.open_session(jb);
  send_file(sa, "a", {fp(1), fp(2)});
  send_file(sb, "b", {fp(2), fp(3)});
  ASSERT_TRUE(fs.close_session(sa).ok());  // drains marks incl. fp(3)
  send_file(sb, "b2", {fp(4)});
  ASSERT_TRUE(fs.close_session(sb).ok());

  const auto undetermined = fs.take_undetermined();
  EXPECT_EQ(undetermined.size(), 4u);  // {1,2,3,4}, each exactly once
}

}  // namespace
}  // namespace debar::core
