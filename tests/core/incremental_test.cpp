// File-level preliminary filtering (Section 5.1): the incremental option
// skips files unchanged since the previous version — no fingerprints, no
// payload, only a metadata message — while keeping them restorable.
#include <gtest/gtest.h>

#include "core/backup_engine.hpp"
#include "workload/file_tree.hpp"

namespace debar::core {
namespace {

BackupServerConfig small_config() {
  BackupServerConfig cfg;
  cfg.index_params = {.prefix_bits = 9, .blocks_per_bucket = 2};
  cfg.chunk_store.siu_threshold = 1;
  return cfg;
}

class IncrementalTest : public ::testing::Test {
 protected:
  IncrementalTest()
      : repo_(1),
        server_(0, small_config(), &repo_, &director_),
        engine_("client", &director_) {}

  storage::ChunkRepository repo_;
  Director director_;
  BackupServer server_;
  BackupEngine engine_;
};

TEST_F(IncrementalTest, UnchangedFilesSkippedEntirely) {
  const auto v1 = workload::make_dataset(
      {.files = 10, .mean_file_bytes = 64 * KiB, .seed = 50});
  const std::uint64_t job = director_.define_job("client", "d");
  ASSERT_TRUE(engine_.run_backup(job, v1, server_.file_store()).ok());
  ASSERT_TRUE(server_.run_dedup2(true).ok());

  // Identical dataset, incremental mode: zero chunks offered.
  const auto s2 = engine_.run_backup(job, v1, server_.file_store(),
                                     {.incremental = true});
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2.value().unchanged_files, v1.files.size());
  EXPECT_EQ(s2.value().chunks, 0u);
  EXPECT_EQ(s2.value().transferred_bytes, 0u);
  EXPECT_EQ(s2.value().logical_bytes, v1.total_bytes());
  // No undetermined fingerprints: dedup-2 has nothing to do.
  EXPECT_EQ(server_.file_store().undetermined_count(), 0u);
}

TEST_F(IncrementalTest, OnlyTouchedFilesChunked) {
  auto v1 = workload::make_dataset(
      {.files = 12, .mean_file_bytes = 64 * KiB, .seed = 51});
  const std::uint64_t job = director_.define_job("client", "d");
  ASSERT_TRUE(engine_.run_backup(job, v1, server_.file_store()).ok());
  ASSERT_TRUE(server_.run_dedup2(true).ok());

  const auto v2 = workload::mutate_dataset(
      v1, {.seed = 52, .touch_fraction = 0.3, .rewrite_fraction = 0.0,
           .churn_fraction = 0.0});
  std::size_t touched = 0;
  for (std::size_t i = 0; i < v1.files.size(); ++i) {
    if (v2.files[i].mtime != v1.files[i].mtime) ++touched;
  }
  ASSERT_GT(touched, 0u);
  ASSERT_LT(touched, v1.files.size());

  const auto s2 = engine_.run_backup(job, v2, server_.file_store(),
                                     {.incremental = true});
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2.value().unchanged_files, v1.files.size() - touched);
  EXPECT_GT(s2.value().chunks, 0u);
}

TEST_F(IncrementalTest, SkippedFilesRemainRestorable) {
  auto v1 = workload::make_dataset(
      {.files = 8, .mean_file_bytes = 64 * KiB, .seed = 53});
  const std::uint64_t job = director_.define_job("client", "d");
  ASSERT_TRUE(engine_.run_backup(job, v1, server_.file_store()).ok());
  ASSERT_TRUE(server_.run_dedup2(true).ok());

  const auto v2 = workload::mutate_dataset(
      v1, {.seed = 54, .touch_fraction = 0.4, .churn_fraction = 0.0});
  ASSERT_TRUE(engine_
                  .run_backup(job, v2, server_.file_store(),
                              {.incremental = true})
                  .ok());
  ASSERT_TRUE(server_.run_dedup2(true).ok());

  const auto restored = engine_.restore(job, 2, server_, /*verify=*/true);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  ASSERT_EQ(restored.value().files.size(), v2.files.size());
  // Restored order: unchanged and changed files interleave exactly as in
  // the dataset (record_unchanged_file preserves stream order).
  for (std::size_t i = 0; i < v2.files.size(); ++i) {
    EXPECT_EQ(restored.value().files[i].path, v2.files[i].path);
    EXPECT_EQ(restored.value().files[i].content, v2.files[i].content)
        << v2.files[i].path;
  }
}

TEST_F(IncrementalTest, ChangedSizeDefeatsTheSkip) {
  // Same mtime but different size must NOT be skipped (safety over
  // optimism): simulate a same-mtime size change.
  auto v1 = workload::make_dataset(
      {.files = 3, .mean_file_bytes = 32 * KiB, .seed = 55});
  const std::uint64_t job = director_.define_job("client", "d");
  ASSERT_TRUE(engine_.run_backup(job, v1, server_.file_store()).ok());
  ASSERT_TRUE(server_.run_dedup2(true).ok());

  auto v2 = v1;
  v2.files[1].content.push_back(Byte{0x99});  // size change, same mtime

  const auto s2 = engine_.run_backup(job, v2, server_.file_store(),
                                     {.incremental = true});
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2.value().unchanged_files, 2u);
  EXPECT_GT(s2.value().chunks, 0u);

  ASSERT_TRUE(server_.run_dedup2(true).ok());
  const auto restored = engine_.restore(job, 2, server_, true);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().files[1].content, v2.files[1].content);
}

TEST_F(IncrementalTest, FirstVersionHasNothingToSkip) {
  const auto v1 = workload::make_dataset(
      {.files = 4, .mean_file_bytes = 32 * KiB, .seed = 56});
  const std::uint64_t job = director_.define_job("client", "d");
  const auto s = engine_.run_backup(job, v1, server_.file_store(),
                                    {.incremental = true});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value().unchanged_files, 0u);
  EXPECT_GT(s.value().chunks, 0u);
}

TEST_F(IncrementalTest, WireSavingsBeatChunkLevelFiltering) {
  // The point of the coarse filter: for unchanged files it also saves
  // the fingerprint round-trips that chunk-level filtering would pay —
  // one 20-byte announcement per chunk, so the saving grows with file
  // size (here ~64 chunks/file vs one metadata message).
  auto v1 = workload::make_dataset(
      {.files = 6, .mean_file_bytes = 512 * KiB, .seed = 57});
  const std::uint64_t job1 = director_.define_job("client", "a");
  const std::uint64_t job2 = director_.define_job("client", "b");
  ASSERT_TRUE(engine_.run_backup(job1, v1, server_.file_store()).ok());
  ASSERT_TRUE(engine_.run_backup(job2, v1, server_.file_store()).ok());
  ASSERT_TRUE(server_.run_dedup2(true).ok());

  const double nic_before = server_.clocks().nic;
  ASSERT_TRUE(engine_
                  .run_backup(job1, v1, server_.file_store(),
                              {.incremental = true})
                  .ok());
  const double incremental_nic = server_.clocks().nic - nic_before;

  ASSERT_TRUE(engine_.run_backup(job2, v1, server_.file_store()).ok());
  const double chunk_level_nic =
      server_.clocks().nic - nic_before - incremental_nic;

  EXPECT_LT(incremental_nic, chunk_level_nic / 2);
}

}  // namespace
}  // namespace debar::core
