#include "core/backup_server.hpp"

#include <gtest/gtest.h>

#include "common/sha1.hpp"

namespace debar::core {
namespace {

BackupServerConfig small_config() {
  BackupServerConfig cfg;
  cfg.index_params = {.prefix_bits = 8, .blocks_per_bucket = 2};
  cfg.filter_params = {.hash_bits = 8, .capacity = 10000};
  cfg.chunk_store.cache_params = {.hash_bits = 6, .capacity = 100000};
  cfg.chunk_store.io_buckets = 16;
  cfg.chunk_store.siu_threshold = 1;
  return cfg;
}

class BackupServerTest : public ::testing::Test {
 protected:
  BackupServerTest()
      : repo_(2), server_(0, small_config(), &repo_, &director_) {}

  Fingerprint fp(std::uint64_t i) { return Sha1::hash_counter(i); }

  void backup(std::uint64_t job, const std::vector<Fingerprint>& fps) {
    FileStore& fs = server_.file_store();
    fs.begin_job(job);
    fs.begin_file({.path = "s.dat", .size = fps.size() * 1024, .mtime = 0,
                   .mode = 0644});
    const std::vector<Byte> payload(1024, 0x11);
    for (const Fingerprint& f : fps) {
      if (fs.offer_fingerprint(f, 1024)) {
        ASSERT_TRUE(
            fs.receive_chunk(f, ByteSpan(payload.data(), payload.size())).ok());
      }
    }
    fs.end_file();
    ASSERT_TRUE(fs.end_job().ok());
  }

  storage::ChunkRepository repo_;
  Director director_;
  BackupServer server_;
};

TEST_F(BackupServerTest, FullBackupThenDedup2) {
  const std::uint64_t job = director_.define_job("c", "d");
  backup(job, {fp(1), fp(2), fp(3)});

  const auto result = server_.run_dedup2(/*force_siu=*/true);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result.value().undetermined, 3u);
  EXPECT_EQ(result.value().new_chunks, 3u);
  EXPECT_EQ(result.value().duplicates, 0u);
  EXPECT_TRUE(result.value().ran_siu);
  EXPECT_EQ(server_.chunk_store().index().entry_count(), 3u);
}

TEST_F(BackupServerTest, RepeatBackupFullyDeduplicated) {
  const std::uint64_t job = director_.define_job("c", "d");
  backup(job, {fp(1), fp(2), fp(3)});
  ASSERT_TRUE(server_.run_dedup2(true).ok());
  const std::uint64_t stored = repo_.stored_bytes();

  backup(job, {fp(1), fp(2), fp(3)});
  const auto r2 = server_.run_dedup2(true);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().new_chunks, 0u);
  EXPECT_EQ(repo_.stored_bytes(), stored);  // nothing new stored
}

TEST_F(BackupServerTest, SiuThresholdDefersUpdates) {
  BackupServerConfig cfg = small_config();
  cfg.chunk_store.siu_threshold = 1000000;  // effectively never due
  BackupServer server(1, cfg, &repo_, &director_);

  const std::uint64_t job = director_.define_job("c2", "d2");
  FileStore& fs = server.file_store();
  fs.begin_job(job);
  fs.begin_file({.path = "x", .size = 1024, .mtime = 0, .mode = 0644});
  const std::vector<Byte> payload(1024, 1);
  if (fs.offer_fingerprint(fp(50), 1024)) {
    ASSERT_TRUE(
        fs.receive_chunk(fp(50), ByteSpan(payload.data(), payload.size())).ok());
  }
  fs.end_file();
  ASSERT_TRUE(fs.end_job().ok());

  const auto r = server.run_dedup2(/*force_siu=*/false);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().ran_siu);
  EXPECT_EQ(server.chunk_store().pending_count(), 1u);
  EXPECT_EQ(server.chunk_store().index().entry_count(), 0u);
  // The chunk is still locatable through the pending set.
  EXPECT_TRUE(server.chunk_store().locate(fp(50)).ok());
}

TEST_F(BackupServerTest, BatchesWhenUndeterminedExceedsCacheCapacity) {
  BackupServerConfig cfg = small_config();
  cfg.chunk_store.cache_params.capacity = 10;  // force batching
  BackupServer server(2, cfg, &repo_, &director_);

  const std::uint64_t job = director_.define_job("c3", "d3");
  FileStore& fs = server.file_store();
  fs.begin_job(job);
  fs.begin_file({.path = "y", .size = 35 * 256, .mtime = 0, .mode = 0644});
  const std::vector<Byte> payload(256, 2);
  for (std::uint64_t i = 0; i < 35; ++i) {
    if (fs.offer_fingerprint(fp(100 + i), 256)) {
      ASSERT_TRUE(fs.receive_chunk(fp(100 + i),
                                   ByteSpan(payload.data(), payload.size()))
                      .ok());
    }
  }
  fs.end_file();
  ASSERT_TRUE(fs.end_job().ok());

  const auto r = server.run_dedup2(true);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r.value().sil_runs, 4u);  // ceil(35 / 10)
  EXPECT_EQ(r.value().new_chunks, 35u);
  for (std::uint64_t i = 0; i < 35; ++i) {
    EXPECT_TRUE(server.chunk_store().read_chunk(fp(100 + i)).ok()) << i;
  }
}

TEST_F(BackupServerTest, ClocksAdvanceAndReset) {
  const std::uint64_t job = director_.define_job("c", "d");
  backup(job, {fp(1), fp(2)});
  ASSERT_TRUE(server_.run_dedup2(true).ok());

  const ServerClocks clocks = server_.clocks();
  EXPECT_GT(clocks.nic, 0.0);
  EXPECT_GT(clocks.log_disk, 0.0);
  EXPECT_GT(clocks.index_disk, 0.0);

  server_.reset_clocks();
  const ServerClocks reset = server_.clocks();
  EXPECT_DOUBLE_EQ(reset.nic, 0.0);
  EXPECT_DOUBLE_EQ(reset.index_disk, 0.0);
}

TEST_F(BackupServerTest, Dedup2TimesReported) {
  const std::uint64_t job = director_.define_job("c", "d");
  backup(job, {fp(1), fp(2), fp(3)});
  const auto r = server_.run_dedup2(true);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().sil_seconds, 0.0);
  EXPECT_GT(r.value().siu_seconds, 0.0);
}

}  // namespace
}  // namespace debar::core
