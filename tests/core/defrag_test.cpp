#include "core/defrag.hpp"

#include <gtest/gtest.h>

#include "common/sha1.hpp"
#include "core/backup_engine.hpp"

namespace debar::core {
namespace {

class DefragTest : public ::testing::Test {
 protected:
  DefragTest() : repo_(4), server_(0, make_config(), &repo_, &director_) {}

  static BackupServerConfig make_config() {
    BackupServerConfig cfg;
    cfg.index_params = {.prefix_bits = 8, .blocks_per_bucket = 2};
    cfg.chunk_store.siu_threshold = 1;
    // Small containers so a version spans many of them (and hence many
    // round-robin nodes).
    cfg.container_capacity = 64 * 1024;
    return cfg;
  }

  JobVersionRecord backup_stream(std::uint64_t job,
                                 const std::vector<Fingerprint>& fps) {
    FileStore& fs = server_.file_store();
    fs.begin_job(job);
    fs.begin_file({.path = "s", .size = fps.size() * 4096, .mtime = 0,
                   .mode = 0644});
    for (const Fingerprint& f : fps) {
      if (fs.offer_fingerprint(f, 4096)) {
        const auto payload = BackupEngine::synthetic_payload(f, 4096);
        EXPECT_TRUE(
            fs.receive_chunk(f, ByteSpan(payload.data(), payload.size())).ok());
      }
    }
    fs.end_file();
    auto rec = fs.end_job();
    EXPECT_TRUE(rec.ok());
    EXPECT_TRUE(server_.run_dedup2(true).ok());
    return rec.value();
  }

  storage::ChunkRepository repo_;
  Director director_;
  BackupServer server_;
};

TEST_F(DefragTest, AnalyzeReportsSpread) {
  const std::uint64_t job = director_.define_job("c", "d");
  std::vector<Fingerprint> fps;
  for (std::uint64_t i = 0; i < 100; ++i) fps.push_back(Sha1::hash_counter(i));
  const JobVersionRecord rec = backup_stream(job, fps);

  const auto report = analyze_fragmentation(rec, server_.chunk_store(), repo_);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().chunks, 100u);
  // 100 x 4 KiB chunks in 64 KiB containers -> ~7 containers over 4 nodes.
  EXPECT_GT(report.value().containers_touched, 4u);
  EXPECT_EQ(report.value().nodes_touched, 4u);
}

TEST_F(DefragTest, DefragAggregatesToOneNode) {
  const std::uint64_t job = director_.define_job("c", "d");
  std::vector<Fingerprint> fps;
  for (std::uint64_t i = 0; i < 150; ++i) fps.push_back(Sha1::hash_counter(i));
  const JobVersionRecord rec = backup_stream(job, fps);

  const auto result = defragment_version(rec, server_.chunk_store(), repo_,
                                         {.target_node = 2});
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result.value().before.nodes_touched, 4u);
  EXPECT_EQ(result.value().after.nodes_touched, 1u);
  EXPECT_EQ(result.value().chunks_rewritten, 150u);
  EXPECT_GT(result.value().containers_written, 0u);

  // Every chunk resolves to a container on the target node now.
  for (const Fingerprint& fp : fps) {
    const auto cid = server_.chunk_store().locate(fp);
    ASSERT_TRUE(cid.ok());
    EXPECT_EQ(repo_.node_of(cid.value()), 2u);
  }
}

TEST_F(DefragTest, DataRemainsRestorableAfterDefrag) {
  const std::uint64_t job = director_.define_job("c", "d");
  std::vector<Fingerprint> fps;
  for (std::uint64_t i = 0; i < 120; ++i) fps.push_back(Sha1::hash_counter(i));
  const JobVersionRecord rec = backup_stream(job, fps);

  BackupEngine engine("c", &director_);
  ASSERT_TRUE(defragment_version(rec, server_.chunk_store(), repo_).ok());

  const auto restored = engine.restore(job, 1, server_, /*verify=*/true);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  EXPECT_EQ(restored.value().files[0].content.size(), 120u * 4096);

  const auto verify = engine.verify(job, 1, server_);
  ASSERT_TRUE(verify.ok());
  EXPECT_TRUE(verify.value().clean());
}

TEST_F(DefragTest, CompactVersionIsLeftAlone) {
  const std::uint64_t job = director_.define_job("c", "d");
  std::vector<Fingerprint> fps = {Sha1::hash_counter(1),
                                  Sha1::hash_counter(2)};
  const JobVersionRecord rec = backup_stream(job, fps);
  // Two chunks in one container: one node touched -> no-op.
  const auto result =
      defragment_version(rec, server_.chunk_store(), repo_, {});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().chunks_rewritten, 0u);
  EXPECT_EQ(result.value().containers_written, 0u);
}

TEST_F(DefragTest, ImprovesReadLocality) {
  // A version whose chunks are shared across several earlier versions is
  // fragmented; after defrag the containers-per-1k-chunks metric drops.
  const std::uint64_t j1 = director_.define_job("c1", "d");
  const std::uint64_t j2 = director_.define_job("c2", "d");
  const std::uint64_t j3 = director_.define_job("c3", "d");

  std::vector<Fingerprint> a, b, mixed;
  for (std::uint64_t i = 0; i < 60; ++i) a.push_back(Sha1::hash_counter(i));
  for (std::uint64_t i = 60; i < 120; ++i) b.push_back(Sha1::hash_counter(i));
  backup_stream(j1, a);
  backup_stream(j2, b);
  // Interleave references to both earlier versions.
  for (std::uint64_t i = 0; i < 60; ++i) {
    mixed.push_back(a[i]);
    mixed.push_back(b[i]);
  }
  const JobVersionRecord rec = backup_stream(j3, mixed);

  const auto result =
      defragment_version(rec, server_.chunk_store(), repo_, {});
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().after.containers_per_1k_chunks,
            result.value().before.containers_per_1k_chunks);
  EXPECT_LE(result.value().after.containers_touched,
            result.value().before.containers_touched);
}

}  // namespace
}  // namespace debar::core
