#include "core/director.hpp"

#include <gtest/gtest.h>

#include "common/sha1.hpp"

namespace debar::core {
namespace {

JobVersionRecord make_record(std::uint64_t job, std::uint32_t version,
                             std::uint64_t fp_base, std::size_t chunks) {
  JobVersionRecord rec;
  rec.job_id = job;
  rec.version = version;
  FileRecord file;
  file.meta = {.path = "f.dat", .size = chunks * 8192, .mtime = 0, .mode = 0644};
  for (std::size_t i = 0; i < chunks; ++i) {
    file.chunk_fps.push_back(Sha1::hash_counter(fp_base + i));
    file.chunk_sizes.push_back(8192);
  }
  rec.logical_bytes = file.logical_bytes();
  rec.files.push_back(std::move(file));
  return rec;
}

TEST(DirectorTest, DefineAndQueryJobs) {
  Director director;
  const std::uint64_t id1 = director.define_job("client-a", "dataset-a", 1);
  const std::uint64_t id2 = director.define_job("client-b", "dataset-b", 7);
  EXPECT_NE(id1, id2);

  const auto job = director.job(id1);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->client_name, "client-a");
  EXPECT_FALSE(director.job(9999).has_value());
}

TEST(DirectorTest, SchedulePeriodsSelectJobs) {
  Director director;
  const std::uint64_t daily = director.define_job("a", "d", 1);
  const std::uint64_t weekly = director.define_job("b", "w", 7);

  const auto day7 = director.jobs_due_on_day(7);
  ASSERT_EQ(day7.size(), 2u);
  const auto day3 = director.jobs_due_on_day(3);
  ASSERT_EQ(day3.size(), 1u);
  EXPECT_EQ(day3[0].job_id, daily);
  (void)weekly;
}

TEST(DirectorTest, LeastLoadedAssignment) {
  Director director;
  const std::size_t s1 = director.assign_server(1, 1000, 4);
  const std::size_t s2 = director.assign_server(2, 10, 4);
  EXPECT_NE(s1, s2);  // second job avoids the loaded server
  // Next big job avoids both.
  const std::size_t s3 = director.assign_server(3, 10, 4);
  EXPECT_NE(s3, s1);
  EXPECT_NE(s3, s2);
}

TEST(DirectorTest, AssignmentSkipsUnreachableServers) {
  Director director;
  director.mark_unreachable(0);
  EXPECT_TRUE(director.is_unreachable(0));
  EXPECT_FALSE(director.is_unreachable(1));

  // Server 0 is idle but down; jobs go to the reachable ones.
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(director.assign_server(1 + i, 100, 4), 0u);
  }

  director.mark_reachable(0);
  EXPECT_FALSE(director.is_unreachable(0));
  // Back in rotation, and the least loaded by far.
  EXPECT_EQ(director.assign_server(10, 100, 4), 0u);
}

TEST(DirectorTest, ProbeReadmitsServersTheTransportReachesAgain) {
  // mark_unreachable used to be permanent — a server that failed one
  // round was skipped forever. The round-boundary probe flips the marks
  // back for every server its callback vouches for, and only those.
  Director director;
  director.mark_unreachable(0);
  director.mark_unreachable(2);
  EXPECT_EQ(director.unreachable_servers(),
            (std::vector<std::size_t>{0, 2}));

  // First probe: server 0 is back, server 2 still dark.
  director.probe_reachability(4, [](std::size_t s) { return s != 2; });
  EXPECT_FALSE(director.is_unreachable(0));
  EXPECT_TRUE(director.is_unreachable(2));
  EXPECT_EQ(director.unreachable_servers(), (std::vector<std::size_t>{2}));
  // Assignment sees the recovery immediately.
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(director.assign_server(1 + i, 100, 4), 2u);
  }

  // Second probe: everything answers — no marks left.
  director.probe_reachability(4, [](std::size_t) { return true; });
  EXPECT_TRUE(director.unreachable_servers().empty());
}

TEST(DirectorTest, AllUnreachableFallsBackToLeastLoaded) {
  Director director;
  ASSERT_EQ(director.assign_server(1, 1000, 2), 0u);  // load server 0
  director.mark_unreachable(0);
  director.mark_unreachable(1);
  // Nothing reachable: degrade to plain least-loaded rather than refuse.
  EXPECT_EQ(director.assign_server(2, 10, 2), 1u);
}

TEST(DirectorTest, VersionChainAndFilteringFingerprints) {
  Director director;
  const std::uint64_t job = director.define_job("c", "d");
  EXPECT_EQ(director.next_version(job), 1u);
  EXPECT_TRUE(director.filtering_fingerprints(job).empty());

  ASSERT_TRUE(director.submit_version(make_record(job, 1, 0, 10)).ok());
  EXPECT_EQ(director.next_version(job), 2u);
  const auto filtering = director.filtering_fingerprints(job);
  EXPECT_EQ(filtering.size(), 10u);
  EXPECT_EQ(filtering[0], Sha1::hash_counter(0));

  ASSERT_TRUE(director.submit_version(make_record(job, 2, 100, 5)).ok());
  // Filtering fingerprints now come from version 2.
  const auto filtering2 = director.filtering_fingerprints(job);
  EXPECT_EQ(filtering2.size(), 5u);
  EXPECT_EQ(filtering2[0], Sha1::hash_counter(100));
}

TEST(DirectorTest, VersionRetrieval) {
  Director director;
  const std::uint64_t job = director.define_job("c", "d");
  ASSERT_TRUE(director.submit_version(make_record(job, 1, 0, 3)).ok());
  ASSERT_TRUE(director.submit_version(make_record(job, 2, 50, 4)).ok());

  const auto v1 = director.version(job, 1);
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(v1->files[0].chunk_fps.size(), 3u);
  const auto latest = director.latest_version(job);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->version, 2u);
  EXPECT_FALSE(director.version(job, 3).has_value());
  EXPECT_EQ(director.version_count(job), 2u);
}

TEST(DirectorTest, TotalLogicalBytesAccumulates) {
  Director director;
  const std::uint64_t job = director.define_job("c", "d");
  ASSERT_TRUE(director.submit_version(make_record(job, 1, 0, 10)).ok());
  ASSERT_TRUE(director.submit_version(make_record(job, 2, 100, 10)).ok());
  EXPECT_EQ(director.total_logical_bytes(), 2u * 10 * 8192);
}

TEST(JobVersionRecordTest, AllFingerprintsInStreamOrder) {
  JobVersionRecord rec = make_record(1, 1, 0, 3);
  FileRecord second;
  second.meta.path = "g.dat";
  second.chunk_fps.push_back(Sha1::hash_counter(100));
  second.chunk_sizes.push_back(4096);
  rec.files.push_back(second);

  const auto all = rec.all_fingerprints();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0], Sha1::hash_counter(0));
  EXPECT_EQ(all[3], Sha1::hash_counter(100));
}

}  // namespace
}  // namespace debar::core
