#include "core/gc.hpp"

#include <gtest/gtest.h>

#include "common/sha1.hpp"
#include "core/backup_engine.hpp"
#include "core/defrag.hpp"

namespace debar::core {
namespace {

class GcTest : public ::testing::Test {
 protected:
  GcTest() : repo_(2), server_(0, make_config(), &repo_, &director_) {}

  static BackupServerConfig make_config() {
    BackupServerConfig cfg;
    cfg.index_params = {.prefix_bits = 8, .blocks_per_bucket = 2};
    cfg.chunk_store.siu_threshold = 1;
    cfg.container_capacity = 64 * 1024;  // small: fine-grained sweep units
    return cfg;
  }

  JobVersionRecord backup_stream(std::uint64_t job,
                                 const std::vector<Fingerprint>& fps) {
    FileStore& fs = server_.file_store();
    fs.begin_job(job);
    fs.begin_file({.path = "s", .size = fps.size() * 4096, .mtime = 0,
                   .mode = 0644});
    for (const Fingerprint& f : fps) {
      if (fs.offer_fingerprint(f, 4096)) {
        const auto payload = BackupEngine::synthetic_payload(f, 4096);
        EXPECT_TRUE(
            fs.receive_chunk(f, ByteSpan(payload.data(), payload.size())).ok());
      }
    }
    fs.end_file();
    auto rec = fs.end_job();
    EXPECT_TRUE(rec.ok());
    EXPECT_TRUE(server_.run_dedup2(true).ok());
    return rec.value();
  }

  std::vector<Fingerprint> fps(std::uint64_t from, std::uint64_t count) {
    std::vector<Fingerprint> out;
    for (std::uint64_t i = 0; i < count; ++i) {
      out.push_back(Sha1::hash_counter(from + i));
    }
    return out;
  }

  storage::ChunkRepository repo_;
  Director director_;
  BackupServer server_;
};

TEST_F(GcTest, NothingToReclaimIsNoop) {
  const std::uint64_t job = director_.define_job("c", "d");
  backup_stream(job, fps(0, 100));
  const std::uint64_t bytes_before = repo_.stored_bytes();

  const auto report = collect_garbage(director_, server_.chunk_store(), repo_);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_EQ(report.value().containers_deleted, 0u);
  EXPECT_EQ(report.value().bytes_reclaimed, 0u);
  EXPECT_EQ(report.value().dead_chunks, 0u);
  EXPECT_EQ(repo_.stored_bytes(), bytes_before);
}

TEST_F(GcTest, DroppingOnlyVersionReclaimsEverything) {
  const std::uint64_t job = director_.define_job("c", "d");
  backup_stream(job, fps(0, 100));
  ASSERT_TRUE(director_.drop_version(job, 1).ok());

  const auto report = collect_garbage(director_, server_.chunk_store(), repo_);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().containers_deleted, 0u);
  EXPECT_EQ(report.value().live_chunks, 0u);
  EXPECT_EQ(repo_.stored_bytes(), 0u);
  EXPECT_EQ(repo_.container_count(), 0u);
  // The index no longer claims the reclaimed fingerprints.
  EXPECT_EQ(server_.chunk_store().index().entry_count(), 0u);
  EXPECT_FALSE(server_.chunk_store().locate(Sha1::hash_counter(0)).ok());
}

TEST_F(GcTest, SharedChunksSurviveVersionDrop) {
  const std::uint64_t job = director_.define_job("c", "d");
  // v1: chunks 0..99. v2: chunks 50..149 (shares 50..99 with v1).
  backup_stream(job, fps(0, 100));
  backup_stream(job, fps(50, 100));
  ASSERT_TRUE(director_.drop_version(job, 1).ok());

  const auto report = collect_garbage(director_, server_.chunk_store(), repo_);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  // Chunks 0..49 die; 50..149 live on.
  EXPECT_EQ(report.value().dead_chunks, 50u);
  EXPECT_EQ(report.value().live_chunks, 100u);

  BackupEngine engine("c", &director_);
  const auto restored = engine.restore(job, 2, server_, /*verify=*/true);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  EXPECT_EQ(restored.value().files[0].content.size(), 100u * 4096);
  // The dropped version is gone for good.
  EXPECT_FALSE(engine.restore(job, 1, server_).ok());
}

TEST_F(GcTest, CompactionRewritesMostlyDeadContainers) {
  const std::uint64_t job1 = director_.define_job("a", "d");
  const std::uint64_t job2 = director_.define_job("b", "d");
  // Interleave two jobs' chunks into the same containers by backing them
  // up as one alternating stream under job1, then referencing the even
  // half from job2.
  std::vector<Fingerprint> all = fps(0, 200);
  backup_stream(job1, all);
  std::vector<Fingerprint> evens;
  for (std::size_t i = 0; i < all.size(); i += 4) evens.push_back(all[i]);
  backup_stream(job2, evens);  // 25% of the chunks stay live via job2

  ASSERT_TRUE(director_.drop_version(job1, 1).ok());
  const auto report = collect_garbage(director_, server_.chunk_store(), repo_,
                                      {.compact_threshold = 0.5,
                                       .container_capacity = 64 * 1024});
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_GT(report.value().containers_compacted, 0u);
  EXPECT_GT(report.value().bytes_reclaimed, 0u);
  EXPECT_EQ(report.value().live_chunks, evens.size());

  // job2's data survives compaction and the index re-map.
  BackupEngine engine("b", &director_);
  const auto restored = engine.restore(job2, 1, server_, true);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  EXPECT_EQ(restored.value().files[0].content.size(), evens.size() * 4096);
}

TEST_F(GcTest, RefusesToRunWithPendingSiu) {
  BackupServerConfig cfg = make_config();
  cfg.chunk_store.siu_threshold = 1 << 30;
  BackupServer deferred(1, cfg, &repo_, &director_);
  const std::uint64_t job = director_.define_job("c", "d");
  FileStore& fs = deferred.file_store();
  fs.begin_job(job);
  fs.begin_file({.path = "s", .size = 4096, .mtime = 0, .mode = 0644});
  const Fingerprint f = Sha1::hash_counter(7);
  if (fs.offer_fingerprint(f, 4096)) {
    const auto payload = BackupEngine::synthetic_payload(f, 4096);
    ASSERT_TRUE(
        fs.receive_chunk(f, ByteSpan(payload.data(), payload.size())).ok());
  }
  fs.end_file();
  ASSERT_TRUE(fs.end_job().ok());
  ASSERT_TRUE(deferred.run_dedup2(/*force_siu=*/false).ok());
  ASSERT_GT(deferred.chunk_store().pending_count(), 0u);

  const auto report =
      collect_garbage(director_, deferred.chunk_store(), repo_);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, Errc::kInvalidArgument);
}

TEST_F(GcTest, ReclaimsDefragGarbage) {
  // Defragmentation leaves the old container copies as garbage; GC must
  // collect exactly those.
  const std::uint64_t job = director_.define_job("c", "d");
  const JobVersionRecord rec = backup_stream(job, fps(0, 150));
  const std::uint64_t before = repo_.stored_bytes();

  const auto defrag = defragment_version(rec, server_.chunk_store(), repo_,
                                         {.target_node = 1,
                                          .container_capacity = 64 * 1024});
  ASSERT_TRUE(defrag.ok());
  ASSERT_GT(defrag.value().chunks_rewritten, 0u);
  EXPECT_GT(repo_.stored_bytes(), before);  // duplicates exist now

  const auto report = collect_garbage(director_, server_.chunk_store(), repo_);
  ASSERT_TRUE(report.ok()) << report.error().to_string();
  EXPECT_GT(report.value().containers_deleted, 0u);
  EXPECT_EQ(repo_.stored_bytes(), before);  // back to one copy per chunk

  BackupEngine engine("c", &director_);
  const auto restored = engine.restore(job, 1, server_, true);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
}

TEST_F(GcTest, VersionNumberingAfterDrops) {
  const std::uint64_t job = director_.define_job("c", "d");
  backup_stream(job, fps(0, 10));   // v1
  backup_stream(job, fps(10, 10));  // v2
  backup_stream(job, fps(20, 10));  // v3
  // Dropping a MIDDLE version must not shift numbering: next is still 4
  // (count-based numbering would collide with the live v3 here).
  ASSERT_TRUE(director_.drop_version(job, 2).ok());
  EXPECT_EQ(director_.next_version(job), 4u);
  // Dropping the LATEST frees its slot; the tombstone-then-append replay
  // order keeps a re-used number consistent across recovery.
  ASSERT_TRUE(director_.drop_version(job, 3).ok());
  EXPECT_EQ(director_.next_version(job), 2u);
  backup_stream(job, fps(30, 10));  // new v2
  EXPECT_EQ(director_.next_version(job), 3u);
}

}  // namespace
}  // namespace debar::core
