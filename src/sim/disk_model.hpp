// Parametric disk timing model.
//
// Charges each I/O either a positioning cost (seek + half-rotation) when
// the head must move, or nothing when the access continues sequentially
// from the previous one, plus bytes/rate transfer time. The profile
// constants default to the paper's hardware: a RAID sustaining ~200 MB/s
// sequential transfer whose random small-I/O rate works out to the ~522
// random fingerprint lookups/s the paper measures for Venti-style access.
#pragma once

#include <cstdint>

#include "sim/sim_clock.hpp"

namespace debar::sim {

struct DiskProfile {
  double seek_seconds = 0.0;        // average positioning time per random I/O
  double transfer_bytes_per_sec = 0.0;  // sustained sequential bandwidth

  /// Paper's index/chunk-log device: Highpoint RAID, 8 SATA disks.
  /// 200 MB/s sequential (Section 5.2); random lookup ≈ 522/s (Figure 11)
  /// implies ~1.9 ms effective positioning across the array.
  static DiskProfile PaperRaid() {
    return {.seek_seconds = 1.0 / 522.0 - 512.0 / 200.0e6,
            .transfer_bytes_per_sec = 200.0e6};
  }

  /// Single commodity SATA disk: 8.5 ms seek+rotation, 80 MB/s transfer.
  static DiskProfile CommoditySata() {
    return {.seek_seconds = 8.5e-3, .transfer_bytes_per_sec = 80.0e6};
  }

  /// The chunk-log device in the paper sustains 224 MB/s sequential reads
  /// (Section 6.1.2: "exactly the sustained read throughput of the disk
  /// log").
  static DiskProfile PaperChunkLog() {
    return {.seek_seconds = 1.9e-3, .transfer_bytes_per_sec = 224.0e6};
  }

  /// Benchmark helper: a profile whose transfer rate is divided by
  /// modeled_bytes / actual_bytes, so streaming an `actual_bytes`-sized
  /// structure charges the time the real profile would charge for a
  /// `modeled_bytes`-sized one. This is how the figure benches run
  /// paper-scale (multi-TB) index experiments over MB-scale in-memory
  /// structures: the data structures execute for real, only the sequential
  /// transfer time is magnified. Positioning cost is left unchanged.
  [[nodiscard]] DiskProfile scaled_to(std::uint64_t modeled_bytes,
                                      std::uint64_t actual_bytes) const {
    DiskProfile scaled = *this;
    scaled.transfer_bytes_per_sec =
        transfer_bytes_per_sec * static_cast<double>(actual_bytes) /
        static_cast<double>(modeled_bytes);
    return scaled;
  }
};

/// Stateful head-position model bound to a SimClock.
class DiskModel {
 public:
  DiskModel(DiskProfile profile, SimClock* clock) noexcept
      : profile_(profile), clock_(clock) {}

  /// Account an access of `bytes` at byte `offset`. Sequential
  /// continuation (offset == head position) costs transfer only.
  void access(std::uint64_t offset, std::uint64_t bytes) noexcept;

  /// Account a purely sequential streaming transfer of `bytes` (head
  /// assumed already positioned, e.g. one long scan).
  void stream(std::uint64_t bytes) noexcept;

  /// Explicit repositioning charge (e.g. between phases).
  void seek() noexcept;

  [[nodiscard]] std::uint64_t head() const noexcept { return head_; }
  [[nodiscard]] const DiskProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] SimClock* clock() const noexcept { return clock_; }

  [[nodiscard]] std::uint64_t seeks() const noexcept { return seeks_; }
  [[nodiscard]] std::uint64_t bytes_transferred() const noexcept {
    return bytes_;
  }

 private:
  DiskProfile profile_;
  SimClock* clock_;
  std::uint64_t head_ = 0;
  std::uint64_t seeks_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace debar::sim
