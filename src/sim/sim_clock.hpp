// Simulated time.
//
// The paper's evaluation ran on an 18-node cluster with RAID arrays and
// gigabit NICs; this repo reproduces the *I/O pattern* arguments on a
// single machine by running every data structure for real while accounting
// the time each device operation *would* take on the paper's hardware.
// SimClock is the per-component accumulator of that modeled time.
#pragma once

#include <cstdint>

namespace debar::sim {

/// Simulated duration/instant in nanoseconds.
using SimNanos = std::uint64_t;

inline constexpr SimNanos kNanosPerSecond = 1'000'000'000ULL;

constexpr double to_seconds(SimNanos ns) noexcept {
  return static_cast<double>(ns) / static_cast<double>(kNanosPerSecond);
}

constexpr SimNanos from_seconds(double s) noexcept {
  return s <= 0 ? 0 : static_cast<SimNanos>(s * kNanosPerSecond);
}

/// Monotonic accumulator of modeled time. One clock per simulated
/// component (disk, NIC, CPU budget); a phase's elapsed time is the max
/// (serial composition: sum) over the clocks involved, composed explicitly
/// by the caller. Not thread-safe: each simulated server owns its clocks.
class SimClock {
 public:
  void advance(SimNanos d) noexcept { now_ += d; }
  void advance_seconds(double s) noexcept { now_ += from_seconds(s); }

  [[nodiscard]] SimNanos now() const noexcept { return now_; }
  [[nodiscard]] double seconds() const noexcept { return to_seconds(now_); }

  void reset() noexcept { now_ = 0; }

 private:
  SimNanos now_ = 0;
};

}  // namespace debar::sim
