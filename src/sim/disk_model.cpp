#include "sim/disk_model.hpp"

namespace debar::sim {

void DiskModel::access(std::uint64_t offset, std::uint64_t bytes) noexcept {
  if (offset != head_) {
    clock_->advance_seconds(profile_.seek_seconds);
    ++seeks_;
  }
  if (bytes > 0 && profile_.transfer_bytes_per_sec > 0) {
    clock_->advance_seconds(static_cast<double>(bytes) /
                            profile_.transfer_bytes_per_sec);
  }
  head_ = offset + bytes;
  bytes_ += bytes;
}

void DiskModel::stream(std::uint64_t bytes) noexcept {
  if (bytes > 0 && profile_.transfer_bytes_per_sec > 0) {
    clock_->advance_seconds(static_cast<double>(bytes) /
                            profile_.transfer_bytes_per_sec);
  }
  head_ += bytes;
  bytes_ += bytes;
}

void DiskModel::seek() noexcept {
  clock_->advance_seconds(profile_.seek_seconds);
  ++seeks_;
}

}  // namespace debar::sim
