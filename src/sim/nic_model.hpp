// Network bandwidth model.
//
// The paper's backup servers each have two 1-gigabit NICs; measured DDFS
// throughput saturates at ~210 MB/s, "exactly the sustained throughput of
// the network card in our experiment" (Section 6.1.2). The NIC model
// charges transfer time for bytes that actually cross the network —
// crucially, chunks suppressed by the preliminary filter are never sent,
// which is how dedup-1 exceeds wire speed in *logical* MB/s.
//
// Cluster traffic no longer calls transfer() by hand: every inter-server
// exchange is a serialized net::Message, and net::LoopbackTransport meters
// each frame through the sender's NIC at send() and the receiver's at
// receive(), so wire accounting follows the encodings in net/message.hpp.
#pragma once

#include <cstdint>

#include "sim/sim_clock.hpp"

namespace debar::sim {

struct NicProfile {
  double bytes_per_sec = 0.0;

  /// Two bonded 1GbE ports as measured in the paper: ~210 MB/s sustained.
  static NicProfile PaperGigabit() { return {.bytes_per_sec = 210.0e6}; }
};

class NicModel {
 public:
  NicModel(NicProfile profile, SimClock* clock) noexcept
      : profile_(profile), clock_(clock) {}

  /// Account transmission of `bytes` payload.
  void transfer(std::uint64_t bytes) noexcept;

  [[nodiscard]] std::uint64_t bytes_transferred() const noexcept {
    return bytes_;
  }
  [[nodiscard]] const NicProfile& profile() const noexcept {
    return profile_;
  }

 private:
  NicProfile profile_;
  SimClock* clock_;
  std::uint64_t bytes_ = 0;
};

}  // namespace debar::sim
