#include "sim/nic_model.hpp"

namespace debar::sim {

void NicModel::transfer(std::uint64_t bytes) noexcept {
  if (bytes > 0 && profile_.bytes_per_sec > 0) {
    clock_->advance_seconds(static_cast<double>(bytes) /
                            profile_.bytes_per_sec);
  }
  bytes_ += bytes;
}

}  // namespace debar::sim
