// Venti-style baseline [Quinlan & Dorward, FAST'02]: one random on-disk
// index I/O per fingerprint lookup and a read-modify-write pair per
// update. This is the "Random lookup / Random update" series in Figure 11
// — the regime every accelerated scheme is measured against.
#pragma once

#include <cstdint>

#include "common/result.hpp"
#include "common/types.hpp"
#include "index/disk_index.hpp"
#include "sim/disk_model.hpp"

namespace debar::baseline {

struct VentiStats {
  std::uint64_t lookups = 0;
  std::uint64_t updates = 0;
};

class VentiStore {
 public:
  VentiStore(index::DiskIndexParams params,
             sim::DiskProfile profile = sim::DiskProfile::PaperRaid());

  /// Random on-disk lookup. kNotFound when absent.
  [[nodiscard]] Result<ContainerId> lookup(const Fingerprint& fp);

  /// Random on-disk insert (read bucket + write bucket).
  [[nodiscard]] Status update(const Fingerprint& fp, ContainerId id);

  [[nodiscard]] double seconds() const noexcept { return clock_.seconds(); }
  void reset_clock() noexcept { clock_.reset(); }

  [[nodiscard]] const VentiStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const index::DiskIndex& index() const noexcept {
    return *index_;
  }

  /// Modeled steady-state random rates for a device profile — the numbers
  /// Figure 11 plots without needing to execute millions of I/Os.
  [[nodiscard]] static double modeled_lookups_per_second(
      const sim::DiskProfile& profile,
      std::uint64_t bucket_bytes = 8 * KiB);
  [[nodiscard]] static double modeled_updates_per_second(
      const sim::DiskProfile& profile,
      std::uint64_t bucket_bytes = 8 * KiB);

 private:
  sim::SimClock clock_;
  sim::DiskModel model_;
  std::unique_ptr<index::DiskIndex> index_;
  VentiStats stats_;
};

}  // namespace debar::baseline
