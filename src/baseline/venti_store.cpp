#include "baseline/venti_store.hpp"

#include <cassert>
#include <memory>

#include "storage/block_device.hpp"

namespace debar::baseline {

VentiStore::VentiStore(index::DiskIndexParams params, sim::DiskProfile profile)
    : model_(profile, &clock_) {
  auto device = std::make_unique<storage::MemBlockDevice>();
  device->attach_model(&model_);
  Result<index::DiskIndex> idx =
      index::DiskIndex::create(std::move(device), params);
  assert(idx.ok());
  index_ = std::make_unique<index::DiskIndex>(std::move(idx).value());
}

Result<ContainerId> VentiStore::lookup(const Fingerprint& fp) {
  ++stats_.lookups;
  // Uniform fingerprints land on effectively random buckets, so the
  // head-position model charges one positioning cost per access.
  return index_->lookup(fp);
}

Status VentiStore::update(const Fingerprint& fp, ContainerId id) {
  ++stats_.updates;
  return index_->insert(fp, id);
}

double VentiStore::modeled_lookups_per_second(const sim::DiskProfile& profile,
                                              std::uint64_t bucket_bytes) {
  const double per_io = profile.seek_seconds +
                        static_cast<double>(bucket_bytes) /
                            profile.transfer_bytes_per_sec;
  return 1.0 / per_io;
}

double VentiStore::modeled_updates_per_second(const sim::DiskProfile& profile,
                                              std::uint64_t bucket_bytes) {
  // Read-modify-write: two positioned I/Os per update.
  return modeled_lookups_per_second(profile, bucket_bytes) / 2.0;
}

}  // namespace debar::baseline
