// Deterministic pseudo-random generators for workloads and tests.
//
// Benches must be reproducible run-to-run, so all randomness flows through
// explicitly seeded generators — never std::random_device. SplitMix64 seeds
// xoshiro256**, the same construction recommended by Blackman & Vigna.
#pragma once

#include <cstdint>

namespace debar {

/// SplitMix64: used to expand a single seed into stream state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG. Satisfies
/// UniformRandomBitGenerator so it plugs into <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Rejection-free Lemire reduction is
  /// overkill here; modulo bias is negligible for 64-bit state and the
  /// bounds we use (all << 2^32).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    return bound == 0 ? 0 : (*this)() % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace debar
