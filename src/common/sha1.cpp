#include "common/sha1.hpp"

#include <bit>
#include <cstring>

namespace debar {

namespace {

constexpr std::uint32_t kInit[5] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu,
                                    0x10325476u, 0xC3D2E1F0u};

inline std::uint32_t rotl(std::uint32_t x, int s) noexcept {
  return std::rotl(x, s);
}

}  // namespace

void Sha1::reset() noexcept {
  std::memcpy(state_, kInit, sizeof state_);
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha1::process_block(const Byte* block) noexcept {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (std::uint32_t{block[4 * i]} << 24) |
           (std::uint32_t{block[4 * i + 1]} << 16) |
           (std::uint32_t{block[4 * i + 2]} << 8) |
           std::uint32_t{block[4 * i + 3]};
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];

  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = tmp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(ByteSpan data) noexcept {
  total_bytes_ += data.size();
  const Byte* p = data.data();
  std::size_t n = data.size();

  if (buffered_ > 0) {
    const std::size_t take = std::min(n, std::size_t{64} - buffered_);
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    n -= take;
    if (buffered_ == 64) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
  while (n >= 64) {
    process_block(p);
    p += 64;
    n -= 64;
  }
  if (n > 0) {
    std::memcpy(buffer_, p, n);
    buffered_ = n;
  }
}

Fingerprint Sha1::finish() noexcept {
  const std::uint64_t bit_len = total_bytes_ * 8;

  // Append 0x80 then zero-pad to 56 mod 64, then the 64-bit big-endian
  // message length.
  Byte pad[72] = {0x80};
  const std::size_t pad_len =
      (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
  update(ByteSpan(pad, pad_len));

  Byte len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<Byte>(bit_len >> (56 - 8 * i));
  }
  // update() would re-add to total_bytes_, but the length is already
  // captured; feed the final block bytes directly through the buffer path.
  std::memcpy(buffer_ + buffered_, len_bytes, 8);
  process_block(buffer_);
  buffered_ = 0;

  Fingerprint fp;
  for (int i = 0; i < 5; ++i) {
    fp.bytes[4 * i] = static_cast<Byte>(state_[i] >> 24);
    fp.bytes[4 * i + 1] = static_cast<Byte>(state_[i] >> 16);
    fp.bytes[4 * i + 2] = static_cast<Byte>(state_[i] >> 8);
    fp.bytes[4 * i + 3] = static_cast<Byte>(state_[i]);
  }
  return fp;
}

Fingerprint Sha1::hash(ByteSpan data) noexcept {
  Sha1 h;
  h.update(data);
  return h.finish();
}

Fingerprint Sha1::hash(std::string_view data) noexcept {
  Sha1 h;
  h.update(data);
  return h.finish();
}

Fingerprint Sha1::hash_counter(std::uint64_t counter) noexcept {
  Byte buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<Byte>(counter >> (8 * i));
  }
  return hash(ByteSpan(buf, sizeof buf));
}

}  // namespace debar
