// Lightweight status/result types for fallible operations.
//
// DEBAR's hot paths (index lookups, container I/O) must not throw; they
// return Result<T>, a tiny expected-like wrapper over a value or an error
// string with a coarse category. Construction-time invariant violations
// are programming errors and use assertions instead.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace debar {

enum class Errc {
  kOk = 0,
  kNotFound,       // lookup miss where the caller asked for a hard answer
  kFull,           // structure is at capacity (e.g. three adjacent buckets)
  kCorrupt,        // on-disk structure failed validation
  kIoError,        // underlying device failure
  kInvalidArgument,
  kUnsupported,
  kUnavailable,    // peer unreachable / delivery undeliverable after retry
  kBusy,           // transient conflict (pending SIU, degraded fleet); retry
                   // after the conflicting work completes. Appended last:
                   // Errc is serialized as a u8 on the wire (ChunkLocateReply)
                   // and existing values must not shift.
};

[[nodiscard]] constexpr const char* errc_name(Errc e) noexcept {
  switch (e) {
    case Errc::kOk: return "ok";
    case Errc::kNotFound: return "not-found";
    case Errc::kFull: return "full";
    case Errc::kCorrupt: return "corrupt";
    case Errc::kIoError: return "io-error";
    case Errc::kInvalidArgument: return "invalid-argument";
    case Errc::kUnsupported: return "unsupported";
    case Errc::kUnavailable: return "unavailable";
    case Errc::kBusy: return "busy";
  }
  return "unknown";
}

/// Error payload: category plus human-readable context.
struct Error {
  Errc code = Errc::kOk;
  std::string message;

  [[nodiscard]] std::string to_string() const {
    return std::string(errc_name(code)) + ": " + message;
  }
};

/// Status of a void-returning operation.
class Status {
 public:
  Status() = default;  // OK
  Status(Errc code, std::string message)
      : error_{code, std::move(message)} {
    assert(code != Errc::kOk && "use default construction for OK");
  }

  [[nodiscard]] bool ok() const noexcept { return error_.code == Errc::kOk; }
  [[nodiscard]] Errc code() const noexcept { return error_.code; }
  [[nodiscard]] const std::string& message() const noexcept {
    return error_.message;
  }
  [[nodiscard]] std::string to_string() const {
    return ok() ? "ok" : error_.to_string();
  }

  static Status Ok() { return {}; }

 private:
  Error error_;
};

/// Value-or-error. `value()` asserts on error; check `ok()` first.
template <typename T>
class Result {
 public:
  Result(T value) : storage_(std::move(value)) {}  // NOLINT(implicit)
  Result(Error error) : storage_(std::move(error)) {
    assert(std::get<Error>(storage_).code != Errc::kOk);
  }
  Result(Errc code, std::string message)
      : storage_(Error{code, std::move(message)}) {
    assert(code != Errc::kOk);
  }

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(storage_);
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }
  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<Error>(storage_);
  }
  [[nodiscard]] Errc code() const noexcept {
    return ok() ? Errc::kOk : error().code;
  }
  [[nodiscard]] Status status() const {
    return ok() ? Status::Ok() : Status(error().code, error().message);
  }

 private:
  std::variant<T, Error> storage_;
};

}  // namespace debar
