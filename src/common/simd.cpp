#include "common/simd.hpp"

namespace debar {

namespace {

#if (defined(__x86_64__) || defined(__i386__)) && !defined(DEBAR_DISABLE_SIMD)
bool cpu_has_sse2() noexcept {
#if defined(__x86_64__)
  return true;  // architectural baseline
#else
  return __builtin_cpu_supports("sse2");
#endif
}

bool cpu_has_avx2() noexcept {
  return __builtin_cpu_supports("avx2") && detail::avx2_object_compiled();
}
#else
bool cpu_has_sse2() noexcept { return false; }
bool cpu_has_avx2() noexcept { return false; }
#endif

}  // namespace

bool simd_supported(SimdPolicy policy) noexcept {
  switch (policy) {
    case SimdPolicy::kAuto:
    case SimdPolicy::kScalar:
      return true;
    case SimdPolicy::kSse2:
      return cpu_has_sse2();
    case SimdPolicy::kAvx2:
      return cpu_has_avx2();
  }
  return false;
}

SimdPolicy resolve_simd(SimdPolicy policy) noexcept {
  if (policy == SimdPolicy::kAuto) {
    if (cpu_has_avx2()) return SimdPolicy::kAvx2;
    if (cpu_has_sse2()) return SimdPolicy::kSse2;
    return SimdPolicy::kScalar;
  }
  return simd_supported(policy) ? policy : SimdPolicy::kScalar;
}

const char* simd_name(SimdPolicy policy) noexcept {
  switch (policy) {
    case SimdPolicy::kAuto:
      return "auto";
    case SimdPolicy::kScalar:
      return "scalar";
    case SimdPolicy::kSse2:
      return "sse2";
    case SimdPolicy::kAvx2:
      return "avx2";
  }
  return "?";
}

}  // namespace debar
