// Core value types shared by every DEBAR subsystem.
//
// The paper's on-disk formats fix two sizes that everything else derives
// from: a fingerprint is a 160-bit SHA-1 digest, and a container ID is a
// 40-bit value (8 EB of addressable repository at 8 MB per container).
#pragma once

#include <array>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <string>

namespace debar {

using Byte = std::uint8_t;
using ByteSpan = std::span<const Byte>;

/// 160-bit SHA-1 chunk fingerprint. Trivially copyable; ordered
/// lexicographically, which (because SHA-1 output is uniform) is the
/// number-ordering the DEBAR disk index relies on.
struct Fingerprint {
  static constexpr std::size_t kSize = 20;

  std::array<Byte, kSize> bytes{};

  /// First `n` bits of the fingerprint interpreted as a big-endian integer
  /// (n <= 64). This is the bucket-number mapping from Section 4.1 of the
  /// paper: bucket = first n bits of the SHA-1 digest.
  [[nodiscard]] std::uint64_t prefix_bits(unsigned n) const noexcept {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      v = (v << 8) | bytes[i];
    }
    return n == 0 ? 0 : (n >= 64 ? v : v >> (64 - n));
  }

  friend auto operator<=>(const Fingerprint&, const Fingerprint&) = default;
};

static_assert(sizeof(Fingerprint) == Fingerprint::kSize);
static_assert(std::is_trivially_copyable_v<Fingerprint>);

/// 40-bit container identifier. Value 0 is reserved as "null" (the paper's
/// index-cache marker for a new chunk whose container is not yet assigned),
/// so the first real container gets ID 1.
struct ContainerId {
  static constexpr std::uint64_t kMask = (std::uint64_t{1} << 40) - 1;
  static constexpr std::size_t kSerializedSize = 5;

  std::uint64_t value = 0;

  [[nodiscard]] bool is_null() const noexcept { return value == 0; }

  friend auto operator<=>(const ContainerId&, const ContainerId&) = default;
};

inline constexpr ContainerId kNullContainer{};

/// One disk-index entry: fingerprint -> container. Exactly 25 bytes when
/// serialized (20-byte fingerprint + 5-byte container ID), as in Section 4.2.
struct IndexEntry {
  static constexpr std::size_t kSerializedSize =
      Fingerprint::kSize + ContainerId::kSerializedSize;

  Fingerprint fp;
  ContainerId container;

  friend bool operator==(const IndexEntry&, const IndexEntry&) = default;
};

/// Hash functor so Fingerprint can key unordered containers. SHA-1 output is
/// already uniform, so folding the first 8 bytes is a perfectly good hash.
struct FingerprintHash {
  std::size_t operator()(const Fingerprint& fp) const noexcept {
    std::uint64_t v;
    std::memcpy(&v, fp.bytes.data(), sizeof v);
    return static_cast<std::size_t>(v);
  }
};

// Size literals used throughout (paper parameters are all powers of two).
inline constexpr std::uint64_t KiB = 1024;
inline constexpr std::uint64_t MiB = 1024 * KiB;
inline constexpr std::uint64_t GiB = 1024 * MiB;
inline constexpr std::uint64_t TiB = 1024 * GiB;

// Paper-fixed format constants.
inline constexpr std::uint64_t kExpectedChunkSize = 8 * KiB;
inline constexpr std::uint64_t kMinChunkSize = 2 * KiB;
inline constexpr std::uint64_t kMaxChunkSize = 64 * KiB;
inline constexpr std::uint64_t kContainerSize = 8 * MiB;
inline constexpr std::uint64_t kIndexBlockSize = 512;        // one disk block
inline constexpr std::size_t kEntriesPerIndexBlock = 20;     // 20 x 25B = 500B

}  // namespace debar

template <>
struct std::hash<debar::Fingerprint> {
  std::size_t operator()(const debar::Fingerprint& fp) const noexcept {
    return debar::FingerprintHash{}(fp);
  }
};

template <>
struct std::hash<debar::ContainerId> {
  std::size_t operator()(const debar::ContainerId& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
