#include "common/hex.hpp"

namespace debar {

namespace {
constexpr char kDigits[] = "0123456789abcdef";

int nibble(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(ByteSpan data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (Byte b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

std::string to_hex(const Fingerprint& fp) {
  return to_hex(ByteSpan(fp.bytes.data(), fp.bytes.size()));
}

std::optional<Fingerprint> fingerprint_from_hex(std::string_view hex) {
  if (hex.size() != Fingerprint::kSize * 2) return std::nullopt;
  Fingerprint fp;
  for (std::size_t i = 0; i < Fingerprint::kSize; ++i) {
    const int hi = nibble(hex[2 * i]);
    const int lo = nibble(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    fp.bytes[i] = static_cast<Byte>((hi << 4) | lo);
  }
  return fp;
}

}  // namespace debar
