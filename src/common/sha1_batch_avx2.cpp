// AVX2 8-lane instantiation of the multi-buffer SHA-1 (sha1_mb.hpp).
// Compiled with -mavx2 (src/CMakeLists.txt); reached only through the
// runtime cpuid dispatch in Sha1::hash_batch.
#include "common/sha1.hpp"
#include "common/sha1_mb.hpp"

#if defined(__AVX2__) && !defined(DEBAR_DISABLE_SIMD)
#include <immintrin.h>

namespace debar::detail {

namespace {

struct VecAvx2 {
  static constexpr std::size_t kLanes = 8;
  using Reg = __m256i;

  static Reg add(Reg a, Reg b) noexcept { return _mm256_add_epi32(a, b); }
  static Reg xor_(Reg a, Reg b) noexcept { return _mm256_xor_si256(a, b); }
  static Reg and_(Reg a, Reg b) noexcept { return _mm256_and_si256(a, b); }
  static Reg rotl(Reg a, int s) noexcept {
    return _mm256_or_si256(_mm256_slli_epi32(a, s),
                           _mm256_srli_epi32(a, 32 - s));
  }
  static Reg set1(std::uint32_t v) noexcept {
    return _mm256_set1_epi32(static_cast<int>(v));
  }
  static Reg gather_be32(const Byte* const blocks[],
                         std::size_t off) noexcept {
    return _mm256_set_epi32(static_cast<int>(sha1_be32(blocks[7] + off)),
                            static_cast<int>(sha1_be32(blocks[6] + off)),
                            static_cast<int>(sha1_be32(blocks[5] + off)),
                            static_cast<int>(sha1_be32(blocks[4] + off)),
                            static_cast<int>(sha1_be32(blocks[3] + off)),
                            static_cast<int>(sha1_be32(blocks[2] + off)),
                            static_cast<int>(sha1_be32(blocks[1] + off)),
                            static_cast<int>(sha1_be32(blocks[0] + off)));
  }
  static Reg pack(std::uint32_t* const lanes[], int word) noexcept {
    return _mm256_set_epi32(
        static_cast<int>(lanes[7][word]), static_cast<int>(lanes[6][word]),
        static_cast<int>(lanes[5][word]), static_cast<int>(lanes[4][word]),
        static_cast<int>(lanes[3][word]), static_cast<int>(lanes[2][word]),
        static_cast<int>(lanes[1][word]), static_cast<int>(lanes[0][word]));
  }
  static void unpack(Reg r, std::uint32_t* const lanes[], int word) noexcept {
    alignas(32) std::uint32_t tmp[kLanes];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), r);
    for (std::size_t l = 0; l < kLanes; ++l) lanes[l][word] = tmp[l];
  }
};

}  // namespace

void sha1_batch_avx2(const ByteSpan* msgs, std::size_t count,
                     Fingerprint* out) noexcept {
  sha1_mb_run<VecAvx2>(msgs, count, out);
}

}  // namespace debar::detail

#else  // !__AVX2__ || DEBAR_DISABLE_SIMD

namespace debar::detail {

void sha1_batch_avx2(const ByteSpan* msgs, std::size_t count,
                     Fingerprint* out) noexcept {
  for (std::size_t i = 0; i < count; ++i) out[i] = Sha1::hash(msgs[i]);
}

}  // namespace debar::detail

#endif  // __AVX2__
