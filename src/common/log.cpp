#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

namespace debar {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

constexpr const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

namespace detail {
void log_line(LogLevel level, std::string_view msg) {
  std::lock_guard lock(g_mutex);
  std::fprintf(stderr, "[debar %s] %.*s\n", level_tag(level),
               static_cast<int>(msg.size()), msg.data());
}
}  // namespace detail

}  // namespace debar
