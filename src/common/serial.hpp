// Little-endian serialization helpers for on-disk structures (containers,
// index blocks, chunk-log records). All DEBAR on-disk integers are
// little-endian with explicit widths; fingerprints are raw 20-byte strings.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/types.hpp"

namespace debar {

/// Append-only byte sink used when building on-disk records.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<Byte>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }

  void u16(std::uint16_t v) { le(v, 2); }
  void u32(std::uint32_t v) { le(v, 4); }
  void u40(std::uint64_t v) { le(v & ContainerId::kMask, 5); }
  void u64(std::uint64_t v) { le(v, 8); }

  void bytes(ByteSpan data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

  void fingerprint(const Fingerprint& fp) {
    bytes(ByteSpan(fp.bytes.data(), fp.bytes.size()));
  }

  void container_id(ContainerId id) { u40(id.value); }

  /// Unsigned LEB128: 7 value bits per byte, high bit = continuation.
  /// Values < 128 cost one byte, which is what makes delta-encoded
  /// verdict indices as cheap as the old one-byte-per-verdict wire model.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<Byte>(v) | 0x80);
      v >>= 7;
    }
    out_.push_back(static_cast<Byte>(v));
  }

  /// Encoded size of varint(v), for wire-cost accounting.
  [[nodiscard]] static constexpr std::size_t varint_size(
      std::uint64_t v) noexcept {
    std::size_t n = 1;
    while (v >= 0x80) {
      ++n;
      v >>= 7;
    }
    return n;
  }

 private:
  void le(std::uint64_t v, int width) {
    for (int i = 0; i < width; ++i) out_.push_back(static_cast<Byte>(v >> (8 * i)));
  }

  std::vector<Byte>& out_;
};

/// Bounds-checked cursor over an on-disk record. All reads report failure
/// by returning false / setting `ok()` false instead of reading past the
/// end, so corrupt input can never cause out-of-bounds access.
class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

  std::uint8_t u8() { return static_cast<std::uint8_t>(le(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }
  std::uint64_t u40() { return le(5); }
  std::uint64_t u64() { return le(8); }

  Fingerprint fingerprint() {
    Fingerprint fp;
    if (!take(fp.bytes.data(), Fingerprint::kSize)) fp = Fingerprint{};
    return fp;
  }

  ContainerId container_id() { return ContainerId{u40()}; }

  /// Unsigned LEB128 decode. Rejects encodings longer than ten bytes
  /// (anything past that overflows 64 bits) with the usual sticky failure.
  std::uint64_t varint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 70; shift += 7) {
      const std::uint8_t b = u8();
      if (!ok_) return 0;
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
    }
    ok_ = false;
    return 0;
  }

  /// View of the next `n` bytes, advancing the cursor. Empty span (and
  /// ok()==false) if fewer than n remain.
  ByteSpan view(std::size_t n) {
    if (remaining() < n) {
      ok_ = false;
      return {};
    }
    ByteSpan out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  void skip(std::size_t n) {
    if (remaining() < n) {
      ok_ = false;
      pos_ = data_.size();
    } else {
      pos_ += n;
    }
  }

 private:
  std::uint64_t le(int width) {
    std::uint64_t v = 0;
    Byte buf[8] = {};
    if (!take(buf, static_cast<std::size_t>(width))) return 0;
    for (int i = width - 1; i >= 0; --i) v = (v << 8) | buf[i];
    return v;
  }

  bool take(Byte* dst, std::size_t n) {
    // Failure is sticky: once a read overruns, every subsequent read
    // fails too, so corrupt input can't yield a half-parsed record.
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  ByteSpan data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace debar
