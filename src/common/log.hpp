// Minimal leveled logger. Benches and examples narrate through this so that
// library code never writes to stdout behind the caller's back.
#pragma once

#include <string_view>

#include "common/fmt.hpp"

namespace debar {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

/// Global threshold; messages below it are dropped. Defaults to kWarn so
/// the library is silent in tests unless something is wrong.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

namespace detail {
void log_line(LogLevel level, std::string_view msg);
}

template <typename... Args>
void log(LogLevel level, std::string_view fmt, Args&&... args) {
  if (level < log_level()) return;
  detail::log_line(level, format(fmt, std::forward<Args>(args)...));
}

#define DEBAR_LOG_DEBUG(...) ::debar::log(::debar::LogLevel::kDebug, __VA_ARGS__)
#define DEBAR_LOG_INFO(...) ::debar::log(::debar::LogLevel::kInfo, __VA_ARGS__)
#define DEBAR_LOG_WARN(...) ::debar::log(::debar::LogLevel::kWarn, __VA_ARGS__)
#define DEBAR_LOG_ERROR(...) ::debar::log(::debar::LogLevel::kError, __VA_ARGS__)

}  // namespace debar
