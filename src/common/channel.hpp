// Bounded multi-producer multi-consumer channel.
//
// The cluster layer models each backup server as a thread; PSIL/PSIU
// fingerprint-subset exchange (Section 5.2, Figure 5) moves data between
// servers exclusively through these channels — explicit message passing in
// the MPI style, no shared mutable state between server shards.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace debar {

template <typename T>
class Channel {
 public:
  explicit Channel(std::size_t capacity = 1024) : capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocking send. Returns false if the channel was closed.
  bool send(T value) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || queue_.size() < capacity_; });
    if (closed_) return false;
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Blocking receive. nullopt once the channel is closed AND drained.
  std::optional<T> receive() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking receive.
  std::optional<T> try_receive() {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Close the channel: senders fail, receivers drain then get nullopt.
  void close() {
    std::lock_guard lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace debar
