#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace debar {

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (stop_ && workers_.empty()) return;  // already shut down
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  threads = std::max<std::size_t>(1, std::min(threads, n));
  if (threads == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  // First exception wins; later workers stop claiming indices. Without
  // this a throwing fn would unwind through the std::thread entry point
  // and terminate the whole process.
  std::exception_ptr error;
  std::mutex error_mutex;
  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        if (failed.load(std::memory_order_relaxed)) return;
        const std::size_t i = next.fetch_add(1);
        if (i >= n) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!error) error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace debar
