#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace debar {

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  threads = std::max<std::size_t>(1, std::min(threads, n));
  if (threads == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  for (auto& w : workers) w.join();
}

}  // namespace debar
