// Internal multi-buffer SHA-1 (FIPS 180-1) — W independent messages
// hashed in lockstep, one 32-bit word lane per message.
//
// SHA-1's compression function is a chain of 32-bit adds/rotates/logic
// with no data-dependent control flow, so W digests cost barely more
// than one when each vector element carries a different message's
// state ("interleaved message scheduling" — the multi-buffer scheme of
// Intel's isa-l crypto, reimplemented from the spec). The digests are
// bit-identical to the streaming Sha1 class by construction: same
// padding, same rounds, just computed W at a time.
//
// This header is internal: the public entry is Sha1::hash_batch, which
// dispatches to the SSE2 (W=4) or AVX2 (W=8) instantiation or to a
// plain scalar loop over Sha1::hash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/types.hpp"

namespace debar::detail {

inline constexpr std::uint32_t kSha1Iv[5] = {0x67452301u, 0xEFCDAB89u,
                                             0x98BADCFEu, 0x10325476u,
                                             0xC3D2E1F0u};

/// Blocks in the padded form of an `len`-byte message (padding adds
/// 0x80, zeros to 56 mod 64, and the 64-bit bit length).
[[nodiscard]] constexpr std::uint64_t sha1_total_blocks(
    std::uint64_t len) noexcept {
  return ((len + 8) >> 6) + 1;
}

/// Pointer to block `k` of the padded message: the message body when
/// the block lies entirely inside it, else `scratch` filled with the
/// spec's padding (0x80 terminator, zero fill, trailing bit length).
[[nodiscard]] inline const Byte* sha1_block_ptr(ByteSpan msg, std::uint64_t k,
                                                Byte scratch[64]) noexcept {
  const std::uint64_t len = msg.size();
  const std::uint64_t base = k * 64;
  if (base + 64 <= len) return msg.data() + base;

  for (std::uint64_t j = 0; j < 64; ++j) {
    const std::uint64_t pos = base + j;
    scratch[j] = pos < len ? msg[pos] : (pos == len ? Byte{0x80} : Byte{0});
  }
  if (k + 1 == sha1_total_blocks(len)) {
    const std::uint64_t bit_len = len * 8;
    for (int i = 0; i < 8; ++i) {
      scratch[56 + i] = static_cast<Byte>(bit_len >> (56 - 8 * i));
    }
  }
  return scratch;
}

/// One compression step for V::kLanes messages at once. `st[w]` holds
/// state word w of every lane; `blocks[l]` points at lane l's 64-byte
/// block. f-functions use the and/xor forms (ch = d ^ (b & (c ^ d)),
/// maj = (b&c) ^ (b&d) ^ (c&d)) so traits only need add/xor/and/rotl.
template <class V>
void sha1_mb_compress(typename V::Reg st[5],
                      const Byte* const blocks[]) noexcept {
  using Reg = typename V::Reg;
  Reg w[80];
  for (int i = 0; i < 16; ++i) w[i] = V::gather_be32(blocks, 4 * i);
  for (int i = 16; i < 80; ++i) {
    w[i] = V::rotl(
        V::xor_(V::xor_(w[i - 3], w[i - 8]), V::xor_(w[i - 14], w[i - 16])),
        1);
  }

  Reg a = st[0], b = st[1], c = st[2], d = st[3], e = st[4];
  for (int i = 0; i < 80; ++i) {
    Reg f;
    std::uint32_t k;
    if (i < 20) {
      f = V::xor_(d, V::and_(b, V::xor_(c, d)));
      k = 0x5A827999u;
    } else if (i < 40) {
      f = V::xor_(V::xor_(b, c), d);
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = V::xor_(V::xor_(V::and_(b, c), V::and_(b, d)), V::and_(c, d));
      k = 0x8F1BBCDCu;
    } else {
      f = V::xor_(V::xor_(b, c), d);
      k = 0xCA62C1D6u;
    }
    const Reg tmp = V::add(V::add(V::add(V::rotl(a, 5), f),
                                  V::add(e, V::set1(k))),
                           w[i]);
    e = d;
    d = c;
    c = V::rotl(b, 30);
    b = a;
    a = tmp;
  }

  st[0] = V::add(st[0], a);
  st[1] = V::add(st[1], b);
  st[2] = V::add(st[2], c);
  st[3] = V::add(st[3], d);
  st[4] = V::add(st[4], e);
}

/// Hash `count` messages into `out` with V::kLanes-way interleaving.
/// Lanes pick up the next unstarted message as soon as theirs
/// finishes, so ragged batches keep every lane busy until the tail;
/// idle tail lanes grind a dummy block whose state is discarded.
template <class V>
void sha1_mb_run(const ByteSpan* msgs, std::size_t count,
                 Fingerprint* out) noexcept {
  constexpr std::size_t W = V::kLanes;
  struct Lane {
    std::uint32_t st[5];
    std::size_t msg = SIZE_MAX;
    std::uint64_t next_block = 0;
    std::uint64_t total_blocks = 0;
    Byte scratch[64];
  };
  Lane lanes[W];
  std::uint32_t dummy_state[5] = {};
  const Byte dummy_block[64] = {};
  std::size_t next_msg = 0;

  for (;;) {
    std::size_t active = 0;
    std::uint32_t* state_ptr[W];
    const Byte* block_ptr[W];
    for (std::size_t l = 0; l < W; ++l) {
      Lane& lane = lanes[l];
      if (lane.msg == SIZE_MAX && next_msg < count) {
        lane.msg = next_msg++;
        lane.next_block = 0;
        lane.total_blocks = sha1_total_blocks(msgs[lane.msg].size());
        std::memcpy(lane.st, kSha1Iv, sizeof lane.st);
      }
      if (lane.msg == SIZE_MAX) {
        state_ptr[l] = dummy_state;
        block_ptr[l] = dummy_block;
      } else {
        ++active;
        state_ptr[l] = lane.st;
        block_ptr[l] = sha1_block_ptr(msgs[lane.msg], lane.next_block,
                                      lane.scratch);
      }
    }
    if (active == 0) break;

    typename V::Reg st[5];
    for (int w = 0; w < 5; ++w) st[w] = V::pack(state_ptr, w);
    sha1_mb_compress<V>(st, block_ptr);
    for (int w = 0; w < 5; ++w) V::unpack(st[w], state_ptr, w);

    for (std::size_t l = 0; l < W; ++l) {
      Lane& lane = lanes[l];
      if (lane.msg == SIZE_MAX) continue;
      if (++lane.next_block == lane.total_blocks) {
        Fingerprint& fp = out[lane.msg];
        for (int w = 0; w < 5; ++w) {
          fp.bytes[4 * w] = static_cast<Byte>(lane.st[w] >> 24);
          fp.bytes[4 * w + 1] = static_cast<Byte>(lane.st[w] >> 16);
          fp.bytes[4 * w + 2] = static_cast<Byte>(lane.st[w] >> 8);
          fp.bytes[4 * w + 3] = static_cast<Byte>(lane.st[w]);
        }
        lane.msg = SIZE_MAX;
      }
    }
  }
}

/// Big-endian 32-bit load (SHA-1 is big-endian throughout).
[[nodiscard]] inline std::uint32_t sha1_be32(const Byte* p) noexcept {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

/// AVX2 (W=8) batch entry, defined in sha1_batch_avx2.cpp (compiled
/// with -mavx2); degrades to a scalar loop when built without AVX2.
/// Reached only through Sha1::hash_batch's cpuid dispatch.
void sha1_batch_avx2(const ByteSpan* msgs, std::size_t count,
                     Fingerprint* out) noexcept;

}  // namespace debar::detail
