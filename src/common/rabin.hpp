// Rabin fingerprinting over GF(2) [Rabin81, Broder93].
//
// This is the primitive under content-defined chunking (Section 3.2 of the
// paper): the chunker computes the Rabin fingerprint of every overlapping
// 48-byte substring of a file and declares an anchor wherever the low-order
// k bits equal a chosen constant. Polynomial arithmetic follows the classic
// LBFS construction: strings are polynomials over GF(2), reduced modulo an
// irreducible polynomial P, with 256-entry tables making both append and
// sliding-window removal O(1) per byte.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace debar {

/// Degree-63 irreducible polynomial used by LBFS; the default modulus.
inline constexpr std::uint64_t kDefaultRabinPoly = 0xbfe6b8a5bf378d83ULL;

namespace poly_gf2 {

/// Degree of polynomial `p` (index of the most significant set bit), or -1
/// for the zero polynomial.
int degree(std::uint64_t p) noexcept;

/// (nh * 2^64 + nl) mod d over GF(2).
std::uint64_t mod(std::uint64_t nh, std::uint64_t nl, std::uint64_t d) noexcept;

/// (x * y) mod d over GF(2).
std::uint64_t mulmod(std::uint64_t x, std::uint64_t y,
                     std::uint64_t d) noexcept;

/// True iff p is irreducible over GF(2) (Ben-Or style check via repeated
/// squaring: x^(2^i) mod p). Used by tests to validate the default modulus.
bool irreducible(std::uint64_t p) noexcept;

}  // namespace poly_gf2

/// Incremental Rabin hash: fingerprint of a growing byte string.
class RabinHash {
 public:
  explicit RabinHash(std::uint64_t poly = kDefaultRabinPoly);

  /// Append one byte to the hashed string; returns the new fingerprint.
  std::uint64_t append(std::uint64_t fp, Byte b) const noexcept {
    return ((fp << 8) | b) ^ append_table_[fp >> shift_];
  }

  [[nodiscard]] std::uint64_t hash(ByteSpan data) const noexcept;

  [[nodiscard]] std::uint64_t poly() const noexcept { return poly_; }
  [[nodiscard]] int shift() const noexcept { return shift_; }

 private:
  std::uint64_t poly_;
  int shift_;  // degree(poly) - 8
  std::array<std::uint64_t, 256> append_table_;
};

/// Sliding-window Rabin fingerprint over the last `window_size` bytes.
/// This is the object the CDC chunker drives byte-by-byte.
class RabinWindow {
 public:
  static constexpr std::size_t kDefaultWindowSize = 48;

  explicit RabinWindow(std::size_t window_size = kDefaultWindowSize,
                       std::uint64_t poly = kDefaultRabinPoly);

  /// Push one byte; the oldest byte falls out of the window. Returns the
  /// fingerprint of the current window contents.
  std::uint64_t slide(Byte b) noexcept {
    const Byte out = window_[pos_];
    window_[pos_] = b;
    pos_ = (pos_ + 1 == window_.size()) ? 0 : pos_ + 1;
    fp_ = hash_.append(fp_ ^ remove_table_[out], b);
    return fp_;
  }

  /// Reset to the all-zero window state (used at each chunk boundary so
  /// chunking is a pure function of content, independent of prior chunks).
  void reset() noexcept;

  [[nodiscard]] std::uint64_t fingerprint() const noexcept { return fp_; }
  [[nodiscard]] std::size_t window_size() const noexcept {
    return window_.size();
  }

 private:
  RabinHash hash_;
  std::vector<Byte> window_;
  std::size_t pos_ = 0;
  std::uint64_t fp_ = 0;
  std::array<std::uint64_t, 256> remove_table_;
};

}  // namespace debar
