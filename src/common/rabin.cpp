#include "common/rabin.hpp"

#include <bit>
#include <cassert>

namespace debar {

namespace poly_gf2 {

int degree(std::uint64_t p) noexcept {
  return p == 0 ? -1 : 63 - std::countl_zero(p);
}

std::uint64_t mod(std::uint64_t nh, std::uint64_t nl,
                  std::uint64_t d) noexcept {
  assert(d != 0);
  const int k = degree(d);
  d <<= 63 - k;

  constexpr std::uint64_t kMsb = std::uint64_t{1} << 63;
  if (nh != 0) {
    if (nh & kMsb) nh ^= d;
    for (int i = 62; i >= 0; --i) {
      if (nh & (std::uint64_t{1} << i)) {
        nh ^= d >> (63 - i);
        nl ^= d << (i + 1);
      }
    }
  }
  for (int i = 63; i >= k; --i) {
    if (nl & (std::uint64_t{1} << i)) nl ^= d >> (63 - i);
  }
  return nl;
}

namespace {

void mul(std::uint64_t* ph, std::uint64_t* pl, std::uint64_t x,
         std::uint64_t y) noexcept {
  std::uint64_t h = 0, l = 0;
  if (x & 1) l = y;
  for (int i = 1; i < 64; ++i) {
    if (x & (std::uint64_t{1} << i)) {
      h ^= y >> (64 - i);
      l ^= y << i;
    }
  }
  *ph = h;
  *pl = l;
}

}  // namespace

std::uint64_t mulmod(std::uint64_t x, std::uint64_t y,
                     std::uint64_t d) noexcept {
  std::uint64_t h, l;
  mul(&h, &l, x, y);
  return mod(h, l, d);
}

bool irreducible(std::uint64_t p) noexcept {
  // A degree-k polynomial p is irreducible over GF(2) iff
  //   x^(2^k) == x (mod p), and
  //   gcd-style condition: x^(2^(k/q)) - x is coprime with p for each prime
  //   divisor q of k. For simplicity (and because k here is small) we use
  //   the classic Rabin test with explicit gcds.
  const int k = degree(p);
  if (k <= 0) return false;

  auto sqr = [&](std::uint64_t a) { return mulmod(a, a, p); };
  auto poly_gcd = [](std::uint64_t a, std::uint64_t b) {
    while (b != 0) {
      const std::uint64_t r = mod(0, a, b);
      a = b;
      b = r;
    }
    return a;
  };

  // x^(2^i) mod p for i = 1..k.
  std::uint64_t t = 2;  // the polynomial "x"
  for (int i = 1; i <= k; ++i) {
    t = sqr(t);
    // For each proper divisor step i with k % i == 0 and i < k, require
    // gcd(p, x^(2^i) - x) == 1.
    if (i < k && k % i == 0) {
      const std::uint64_t diff = t ^ 2;  // subtraction == XOR in GF(2)
      if (degree(poly_gcd(p, diff)) > 0) return false;
    }
  }
  // Finally x^(2^k) must equal x mod p.
  return t == 2;
}

}  // namespace poly_gf2

RabinHash::RabinHash(std::uint64_t poly) : poly_(poly) {
  const int k = poly_gf2::degree(poly);
  assert(k > 8 && "modulus degree must exceed one byte");
  shift_ = k - 8;
  const std::uint64_t t1 = poly_gf2::mod(0, std::uint64_t{1} << k, poly);
  for (std::uint64_t j = 0; j < 256; ++j) {
    append_table_[j] =
        poly_gf2::mulmod(j, t1, poly) | (j << k);
  }
}

std::uint64_t RabinHash::hash(ByteSpan data) const noexcept {
  std::uint64_t fp = 0;
  for (Byte b : data) fp = append(fp, b);
  return fp;
}

RabinWindow::RabinWindow(std::size_t window_size, std::uint64_t poly)
    : hash_(poly), window_(window_size, 0) {
  assert(window_size > 0);
  // sizeshift = x^(8 * window_size) mod P: the factor multiplying the
  // oldest byte, so `fp ^ remove_table_[oldest]` strips it from the window.
  std::uint64_t sizeshift = 1;
  for (std::size_t i = 1; i < window_size; ++i) {
    sizeshift = hash_.append(sizeshift, 0);
  }
  for (std::uint64_t j = 0; j < 256; ++j) {
    remove_table_[j] = poly_gf2::mulmod(j, sizeshift, poly);
  }
}

void RabinWindow::reset() noexcept {
  std::fill(window_.begin(), window_.end(), 0);
  pos_ = 0;
  fp_ = 0;
}

}  // namespace debar
