// SHA-1 (FIPS 180-1) implemented from scratch.
//
// DEBAR fingerprints every chunk with SHA-1; the synthetic workload
// generator also feeds 64-bit counters through SHA-1 to produce uniform
// random fingerprints (Section 6.2 of the paper). This implementation is
// a straightforward, allocation-free streaming digest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/simd.hpp"
#include "common/types.hpp"

namespace debar {

/// Streaming SHA-1 context. Usage:
///   Sha1 h; h.update(a); h.update(b); Fingerprint fp = h.finish();
/// `finish()` may be called exactly once; the context is then spent.
class Sha1 {
 public:
  Sha1() noexcept { reset(); }

  /// Re-initialize to the FIPS 180-1 IV so the object can be reused.
  void reset() noexcept;

  /// Absorb `data` into the running digest.
  void update(ByteSpan data) noexcept;
  void update(std::string_view data) noexcept {
    update(ByteSpan(reinterpret_cast<const Byte*>(data.data()), data.size()));
  }

  /// Pad, finalize, and return the 160-bit digest.
  [[nodiscard]] Fingerprint finish() noexcept;

  /// One-shot convenience for whole buffers.
  [[nodiscard]] static Fingerprint hash(ByteSpan data) noexcept;
  [[nodiscard]] static Fingerprint hash(std::string_view data) noexcept;

  /// Fingerprint of a little-endian 64-bit counter value — the synthetic
  /// fingerprint construction used throughout the paper's evaluation.
  [[nodiscard]] static Fingerprint hash_counter(std::uint64_t counter) noexcept;

  /// Fingerprint a run of buffers (the per-file chunk runs of dedup-1)
  /// with interleaved message scheduling: 4 (SSE2) or 8 (AVX2) digests
  /// advance in lockstep, one 32-bit vector lane each. Bit-identical to
  /// calling hash() per buffer — enforced by `ctest -L chunking` — and
  /// several times faster on chunk-sized runs. `simd` picks the lane
  /// (kAuto = widest supported; scalar loop when SIMD is unavailable).
  [[nodiscard]] static std::vector<Fingerprint> hash_batch(
      std::span<const ByteSpan> msgs, SimdPolicy simd = SimdPolicy::kAuto);

 private:
  void process_block(const Byte* block) noexcept;

  std::uint32_t state_[5];
  std::uint64_t total_bytes_;
  Byte buffer_[64];
  std::size_t buffered_;
};

}  // namespace debar
