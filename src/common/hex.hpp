// Hex encoding/decoding for fingerprints and debug output.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace debar {

/// Lowercase hex string of arbitrary bytes.
[[nodiscard]] std::string to_hex(ByteSpan data);

/// Lowercase 40-char hex of a fingerprint.
[[nodiscard]] std::string to_hex(const Fingerprint& fp);

/// Parse a 40-char hex string back into a fingerprint; nullopt on any
/// malformed input (wrong length or non-hex character).
[[nodiscard]] std::optional<Fingerprint> fingerprint_from_hex(
    std::string_view hex);

}  // namespace debar
