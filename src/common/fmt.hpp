// Minimal "{}" string formatting (std::format is unavailable on the
// toolchains this project targets). Supports only the plain `{}`
// placeholder; arguments are rendered via operator<<. Surplus arguments
// are appended, missing ones leave the placeholder intact — formatting
// must never be able to fail at runtime.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace debar {

namespace detail {

inline void format_impl(std::ostringstream& out, std::string_view pattern) {
  out << pattern;
}

template <typename First, typename... Rest>
void format_impl(std::ostringstream& out, std::string_view pattern,
                 First&& first, Rest&&... rest) {
  const std::size_t pos = pattern.find("{}");
  if (pos == std::string_view::npos) {
    out << pattern << ' ' << first;
    (void)std::initializer_list<int>{((out << ' ' << rest), 0)...};
    return;
  }
  out << pattern.substr(0, pos) << first;
  format_impl(out, pattern.substr(pos + 2), std::forward<Rest>(rest)...);
}

}  // namespace detail

template <typename... Args>
[[nodiscard]] std::string format(std::string_view pattern, Args&&... args) {
  std::ostringstream out;
  detail::format_impl(out, pattern, std::forward<Args>(args)...);
  return out.str();
}

}  // namespace debar
