// Runtime SIMD dispatch policy shared by the vectorized hot paths
// (gear chunking, multi-buffer SHA-1).
//
// Every SIMD lane in this repo is an *equivalent implementation* of a
// scalar reference: identical outputs, byte for byte, are a hard
// contract enforced by `ctest -L chunking`. The policy only chooses
// which lane chases those bytes. `kAuto` resolves to the widest lane
// the CPU supports at runtime (cpuid), falling back to scalar on
// non-x86 builds and under -DDEBAR_DISABLE_SIMD=ON, which compiles the
// vector lanes out entirely so the scalar fallback stays honest in CI.
#pragma once

#include <cstdint>

namespace debar {

enum class SimdPolicy : std::uint8_t {
  kAuto = 0,    // widest supported lane (scalar when SIMD is disabled)
  kScalar = 1,  // reference implementation, every platform
  kSse2 = 2,    // 4 x 32-bit lanes (baseline on x86-64)
  kAvx2 = 3,    // 8 x 32-bit lanes (runtime cpuid check)
};

/// Can `policy` actually execute on this build + CPU? `kAuto`/`kScalar`
/// are always supported; the vector lanes require an x86 build without
/// DEBAR_DISABLE_SIMD and (for AVX2) runtime CPU support.
[[nodiscard]] bool simd_supported(SimdPolicy policy) noexcept;

/// Resolve `kAuto` to the widest supported concrete lane; concrete
/// policies resolve to themselves when supported, else to `kScalar`.
[[nodiscard]] SimdPolicy resolve_simd(SimdPolicy policy) noexcept;

[[nodiscard]] const char* simd_name(SimdPolicy policy) noexcept;

namespace detail {
/// True when the dedicated -mavx2 translation units were compiled with
/// AVX2 enabled (they are all gated by one CMake condition).
[[nodiscard]] bool avx2_object_compiled() noexcept;
}  // namespace detail

}  // namespace debar
