// Compiled with -mavx2 when (and only when) the other AVX2 translation
// units are (one CMake condition governs them all), so __AVX2__ here
// answers "were the AVX2 lanes built into this binary?" for the
// dispatcher. Contains no executable AVX2 code.
#include "common/simd.hpp"

namespace debar::detail {

bool avx2_object_compiled() noexcept {
#if defined(__AVX2__) && !defined(DEBAR_DISABLE_SIMD)
  return true;
#else
  return false;
#endif
}

}  // namespace debar::detail
