// Sha1::hash_batch — fingerprint runs of chunks with interleaved
// message scheduling (sha1_mb.hpp). SSE2 4-lane here (baseline on
// x86-64); the AVX2 8-lane instantiation lives in sha1_batch_avx2.cpp.
#include "common/sha1.hpp"
#include "common/sha1_mb.hpp"
#include "common/simd.hpp"

#if (defined(__x86_64__) || defined(__i386__)) && !defined(DEBAR_DISABLE_SIMD)
#define DEBAR_SHA1_SSE2 1
#include <emmintrin.h>
#endif

namespace debar {

namespace {

#ifdef DEBAR_SHA1_SSE2

struct VecSse2 {
  static constexpr std::size_t kLanes = 4;
  using Reg = __m128i;

  static Reg add(Reg a, Reg b) noexcept { return _mm_add_epi32(a, b); }
  static Reg xor_(Reg a, Reg b) noexcept { return _mm_xor_si128(a, b); }
  static Reg and_(Reg a, Reg b) noexcept { return _mm_and_si128(a, b); }
  static Reg rotl(Reg a, int s) noexcept {
    return _mm_or_si128(_mm_slli_epi32(a, s), _mm_srli_epi32(a, 32 - s));
  }
  static Reg set1(std::uint32_t v) noexcept {
    return _mm_set1_epi32(static_cast<int>(v));
  }
  static Reg gather_be32(const Byte* const blocks[], std::size_t off) noexcept {
    return _mm_set_epi32(static_cast<int>(detail::sha1_be32(blocks[3] + off)),
                         static_cast<int>(detail::sha1_be32(blocks[2] + off)),
                         static_cast<int>(detail::sha1_be32(blocks[1] + off)),
                         static_cast<int>(detail::sha1_be32(blocks[0] + off)));
  }
  static Reg pack(std::uint32_t* const lanes[], int word) noexcept {
    return _mm_set_epi32(
        static_cast<int>(lanes[3][word]), static_cast<int>(lanes[2][word]),
        static_cast<int>(lanes[1][word]), static_cast<int>(lanes[0][word]));
  }
  static void unpack(Reg r, std::uint32_t* const lanes[], int word) noexcept {
    alignas(16) std::uint32_t tmp[kLanes];
    _mm_store_si128(reinterpret_cast<__m128i*>(tmp), r);
    for (std::size_t l = 0; l < kLanes; ++l) lanes[l][word] = tmp[l];
  }
};

#endif  // DEBAR_SHA1_SSE2

void hash_batch_scalar(const ByteSpan* msgs, std::size_t count,
                       Fingerprint* out) noexcept {
  for (std::size_t i = 0; i < count; ++i) out[i] = Sha1::hash(msgs[i]);
}

}  // namespace

std::vector<Fingerprint> Sha1::hash_batch(std::span<const ByteSpan> msgs,
                                          SimdPolicy simd) {
  std::vector<Fingerprint> out(msgs.size());
  if (msgs.empty()) return out;

  SimdPolicy lane = resolve_simd(simd);
  if (msgs.size() < 2) lane = SimdPolicy::kScalar;  // nothing to interleave
  switch (lane) {
    case SimdPolicy::kAvx2:
      detail::sha1_batch_avx2(msgs.data(), msgs.size(), out.data());
      break;
    case SimdPolicy::kSse2:
#ifdef DEBAR_SHA1_SSE2
      detail::sha1_mb_run<VecSse2>(msgs.data(), msgs.size(), out.data());
      break;
#else
      [[fallthrough]];
#endif
    default:
      hash_batch_scalar(msgs.data(), msgs.size(), out.data());
      break;
  }
  return out;
}

}  // namespace debar
