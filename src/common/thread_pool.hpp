// Fixed-size thread pool used by the cluster layer to run server shards
// and by benches to parallelize independent sweeps.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace debar {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the returned future yields its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      tasks_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Run `fn(i)` for i in [0, n) across `threads` workers and wait for all.
/// Convenience for embarrassingly parallel sweeps.
void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace debar
