// Fixed-size thread pool used by the cluster layer to run server shards,
// by the parallel dedup-2 pipeline (sharded SIL, pipelined SIU prefetch)
// and by benches to parallelize independent sweeps.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace debar {

/// Thrown into the future of a task submitted after shutdown() (instead of
/// queueing work no worker will ever run, which would strand the caller's
/// future.get() until pool destruction).
class PoolStopped : public std::runtime_error {
 public:
  PoolStopped() : std::runtime_error("thread pool is shut down") {}
};

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the returned future yields its result (or rethrows
  /// the exception the task exited with). A task submitted after
  /// shutdown() never runs: its future reports PoolStopped immediately.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stop_) {
        // Reject instead of enqueueing: once shutdown() has begun the
        // workers may already have drained the queue and exited, and a
        // late task would otherwise sit unexecuted while its future
        // blocks forever (the shutdown race on pending tasks).
        std::promise<R> broken;
        broken.set_exception(std::make_exception_ptr(PoolStopped{}));
        return broken.get_future();
      }
      tasks_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Stop accepting work, run every task already queued, and join the
  /// workers. Idempotent; called by the destructor. Task exceptions are
  /// captured in their futures (submit wraps every task in a
  /// packaged_task), so a throwing pending task can never escape a worker
  /// and terminate the process mid-shutdown.
  void shutdown();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Run `fn(i)` for i in [0, n) across `threads` workers and wait for all.
/// Convenience for embarrassingly parallel sweeps. If any invocation
/// throws, the first exception (by completion order) is rethrown in the
/// caller after every worker has joined; remaining indices may be skipped.
void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace debar
