#include "core/cluster_node.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/fmt.hpp"

namespace debar::core {

Result<std::vector<net::VerdictBatch>> resolve_psil(
    BackupServer& owner, const std::vector<net::FingerprintBatch>& inbox,
    std::uint64_t* duplicates) {
  const std::size_t n = inbox.size();
  std::vector<net::VerdictBatch> verdicts(n);

  struct Query {
    Fingerprint fp;
    std::size_t origin;
    std::uint32_t index;  // position in the origin's batch
  };
  std::vector<Query> queries;
  for (std::size_t s = 0; s < n; ++s) {
    const std::vector<Fingerprint>& fps = inbox[s].fps;
    verdicts[s].query_count = static_cast<std::uint32_t>(fps.size());
    for (std::size_t i = 0; i < fps.size(); ++i) {
      queries.push_back({fps[i], s, static_cast<std::uint32_t>(i)});
    }
  }
  std::sort(queries.begin(), queries.end(),
            [](const Query& a, const Query& b) {
              return a.fp < b.fp || (a.fp == b.fp && a.origin < b.origin);
            });

  std::vector<Fingerprint> unique_fps;
  unique_fps.reserve(queries.size());
  for (const Query& q : queries) {
    if (unique_fps.empty() || unique_fps.back() != q.fp) {
      unique_fps.push_back(q.fp);
    }
  }

  std::vector<std::uint8_t> found;
  Result<SilResult> sil = owner.chunk_store().sil(unique_fps, found);
  if (!sil.ok()) return sil.error();

  // Resolve verdicts per origin. For a fingerprint PSIL declares new
  // that several origins asked about, only the first origin (smallest
  // id among askers) stores it; the rest are told "duplicate".
  std::size_t qi = 0;
  for (std::size_t u = 0; u < unique_fps.size(); ++u) {
    bool designated = false;
    for (; qi < queries.size() && queries[qi].fp == unique_fps[u]; ++qi) {
      const bool is_dup = found[u] != 0 || designated;
      if (!is_dup) {
        designated = true;  // this origin stores the chunk
      } else {
        verdicts[queries[qi].origin].duplicate_indices.push_back(
            queries[qi].index);
        if (duplicates != nullptr) ++*duplicates;
      }
    }
  }
  return verdicts;
}

Result<NodeRoundResult> ClusterNode::run_dedup2_round(bool force_siu) {
  const std::size_t n = config_.node_count;
  const std::size_t k = config_.node;
  net::Endpoint& ep = server_->endpoint();
  NodeRoundResult result;

  // ---- Phase A: drain our undetermined set, partition by routing
  // prefix, ship every foreign subset (an empty batch still ships, so
  // every pair exchanges exactly one message per phase).
  std::vector<Fingerprint> fps = server_->file_store().take_undetermined();
  result.undetermined = fps.size();
  std::vector<std::vector<Fingerprint>> outbox(n);
  for (const Fingerprint& fp : fps) outbox[owner_of(fp)].push_back(fp);
  for (std::size_t j = 0; j < n; ++j) {
    if (j == k) continue;
    Status sent = ep.send(static_cast<net::EndpointId>(j),
                          net::FingerprintBatch{outbox[j]});
    if (!sent.ok()) {
      return Error{Errc::kUnavailable,
                   format("node {}: phase A send to {} failed: {}", k, j,
                          sent.message())};
    }
  }
  // Barrier: one batch per origin must arrive before PSIL may run.
  std::vector<net::FingerprintBatch> fp_inbox(n);
  fp_inbox[k].fps = outbox[k];
  for (std::size_t s = 0; s < n; ++s) {
    if (s == k) continue;
    Result<net::FingerprintBatch> batch = ep.expect<net::FingerprintBatch>(
        static_cast<net::EndpointId>(s), barrier_deadline());
    if (!batch.ok()) {
      return Error{Errc::kUnavailable,
                   format("node {}: phase A batch from {} missing: {}", k, s,
                          batch.error().message)};
    }
    fp_inbox[s] = std::move(batch.value());
  }

  // ---- Phase B: PSIL over our index part.
  Result<std::vector<net::VerdictBatch>> verdicts =
      resolve_psil(*server_, fp_inbox, &result.duplicates);
  if (!verdicts.ok()) return verdicts.error();

  // ---- Phase C: verdicts return to their origins.
  for (std::size_t s = 0; s < n; ++s) {
    if (s == k) continue;
    Status sent =
        ep.send(static_cast<net::EndpointId>(s), verdicts.value()[s]);
    if (!sent.ok()) {
      return Error{Errc::kUnavailable,
                   format("node {}: phase C send to {} failed: {}", k, s,
                          sent.message())};
    }
  }
  std::vector<net::VerdictBatch> verdict_inbox(n);
  verdict_inbox[k] = std::move(verdicts.value()[k]);
  for (std::size_t j = 0; j < n; ++j) {
    if (j == k) continue;
    Result<net::VerdictBatch> verdict = ep.expect<net::VerdictBatch>(
        static_cast<net::EndpointId>(j), barrier_deadline());
    if (!verdict.ok()) {
      return Error{Errc::kUnavailable,
                   format("node {}: phase C verdict from {} missing: {}", k,
                          j, verdict.error().message)};
    }
    if (verdict.value().query_count != outbox[j].size()) {
      return Error{Errc::kCorrupt,
                   format("verdict from {} answers {} queries, {} were asked",
                          j, verdict.value().query_count, outbox[j].size())};
    }
    verdict_inbox[j] = std::move(verdict.value());
  }

  // ---- Phase D: container the chunks PSIL declared new.
  std::unordered_set<Fingerprint, FingerprintHash> dups;
  for (std::size_t j = 0; j < n; ++j) {
    // Verdict indices are validated against query_count at decode and
    // above, so they index outbox[j] safely.
    for (const std::uint32_t idx : verdict_inbox[j].duplicate_indices) {
      dups.insert(outbox[j][idx]);
    }
  }
  std::vector<Fingerprint> new_fps;
  for (const Fingerprint& fp : fps) {
    if (!dups.contains(fp)) new_fps.push_back(fp);
  }
  Result<StoreResult> stored =
      server_->chunk_store().store_new_chunks(new_fps);
  if (!stored.ok()) return stored.error();
  server_->chunk_store().clear_log();
  result.new_chunks = stored.value().new_chunks;
  result.new_bytes = stored.value().new_bytes;

  // ---- Phase E: fresh <fp, container> entries route to their owners;
  // everything arrives before anyone registers.
  std::vector<std::vector<IndexEntry>> entry_out(n);
  for (const IndexEntry& e : stored.value().entries) {
    entry_out[owner_of(e.fp)].push_back(e);
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (j == k) continue;
    Status sent = ep.send(static_cast<net::EndpointId>(j),
                          net::IndexEntryBatch{entry_out[j]});
    if (!sent.ok()) {
      return Error{Errc::kUnavailable,
                   format("node {}: phase E send to {} failed: {}", k, j,
                          sent.message())};
    }
  }
  std::vector<net::IndexEntryBatch> entry_inbox(n);
  entry_inbox[k].entries = entry_out[k];
  for (std::size_t s = 0; s < n; ++s) {
    if (s == k) continue;
    Result<net::IndexEntryBatch> batch = ep.expect<net::IndexEntryBatch>(
        static_cast<net::EndpointId>(s), barrier_deadline());
    if (!batch.ok()) {
      return Error{Errc::kUnavailable,
                   format("node {}: phase E entries from {} missing: {}", k,
                          s, batch.error().message)};
    }
    entry_inbox[s] = std::move(batch.value());
  }

  // Commit: register in origin order (the same order the orchestrated
  // cluster uses, so the pending set and index mutate identically).
  for (std::size_t s = 0; s < n; ++s) {
    server_->chunk_store().add_pending(
        std::span<const IndexEntry>(entry_inbox[s].entries));
  }
  if (force_siu || server_->chunk_store().siu_due()) {
    Result<SiuResult> siu = server_->chunk_store().siu();
    if (!siu.ok()) return siu.error();
    result.ran_siu = true;
  }
  return result;
}

Status ClusterNode::serve_restores(net::EndpointId via) {
  net::Endpoint& ep = server_->endpoint();
  for (;;) {
    std::optional<net::Message> msg =
        ep.receive_from(via, barrier_deadline());
    if (!msg.has_value()) {
      return {Errc::kUnavailable,
              format("node {}: serve loop heard nothing from {} within the "
                     "round timeout",
                     config_.node, via)};
    }
    if (const auto* control = std::get_if<net::Control>(&*msg)) {
      if (control->op == net::Control::kShutdown) return Status::Ok();
      continue;  // unknown control op: ignore
    }
    const auto* request = std::get_if<net::ChunkLocateRequest>(&*msg);
    if (request == nullptr) continue;  // not ours to answer

    net::ChunkLocateReply reply;
    Result<ContainerId> located = server_->chunk_store().locate(request->fp);
    if (located.ok()) {
      reply.container = located.value();
    } else {
      reply.status = located.error().code;
    }
    if (Status sent = ep.send(via, reply); !sent.ok()) {
      return {Errc::kUnavailable,
              format("node {}: locate reply to {} failed: {}", config_.node,
                     via, sent.message())};
    }
  }
}

Result<std::vector<Byte>> ClusterNode::read_chunk_via(
    const Fingerprint& fp, net::Endpoint& client) {
  const auto via_id = static_cast<net::EndpointId>(config_.node);
  net::Endpoint& ep = server_->endpoint();

  // LPC first (Section 3.3): only a cache miss pays the owner-side index
  // lookup and the container fetch.
  std::vector<Byte> bytes;
  if (std::optional<std::vector<Byte>> hit =
          server_->chunk_store().lpc_probe(fp)) {
    bytes = std::move(*hit);
  } else {
    const std::size_t owner = owner_of(fp);
    ContainerId container;
    if (owner == config_.node) {
      Result<ContainerId> located = server_->chunk_store().locate(fp);
      if (!located.ok()) return located.error();
      container = located.value();
    } else {
      // Locate round trip with the part owner's serve loop.
      const auto owner_id = static_cast<net::EndpointId>(owner);
      if (Status sent = ep.send(owner_id, net::ChunkLocateRequest{fp});
          !sent.ok()) {
        return Error{Errc::kUnavailable,
                     format("chunk owner {} unreachable for locate", owner)};
      }
      Result<net::ChunkLocateReply> got = ep.expect<net::ChunkLocateReply>(
          owner_id, barrier_deadline());
      if (!got.ok()) {
        return Error{Errc::kUnavailable,
                     format("locate reply from owner {} lost", owner)};
      }
      if (got.value().status != Errc::kOk) {
        return Error{got.value().status,
                     format("chunk not located on owner {}", owner)};
      }
      container = got.value().container;
    }
    Result<std::vector<Byte>> chunk =
        server_->chunk_store().read_chunk_at(fp, container);
    if (!chunk.ok()) return chunk.error();
    bytes = std::move(chunk.value());
  }

  // The restored bytes cross this server's wire to the client as a real
  // ChunkData frame (and round-trip its serialization).
  if (Status sent =
          ep.send(client.id(), net::ChunkData{fp, std::move(bytes)});
      !sent.ok()) {
    return Error{Errc::kUnavailable,
                 format("restore delivery from server {} failed",
                        config_.node)};
  }
  Result<net::ChunkData> delivered =
      client.expect<net::ChunkData>(via_id, barrier_deadline());
  if (!delivered.ok()) {
    return Error{Errc::kUnavailable,
                 format("restore delivery from server {} lost",
                        config_.node)};
  }
  return std::move(delivered.value().bytes);
}

}  // namespace debar::core
