#include "core/cluster_node.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/fmt.hpp"
#include "core/maintenance.hpp"

namespace debar::core {

Result<std::vector<net::VerdictBatch>> resolve_psil(
    const PartSilFn& sil_fn, const std::vector<net::FingerprintBatch>& inbox,
    std::uint64_t* duplicates) {
  const std::size_t n = inbox.size();
  std::vector<net::VerdictBatch> verdicts(n);

  struct Query {
    Fingerprint fp;
    std::size_t origin;
    std::uint32_t index;  // position in the origin's batch
  };
  std::vector<Query> queries;
  for (std::size_t s = 0; s < n; ++s) {
    const std::vector<Fingerprint>& fps = inbox[s].fps;
    verdicts[s].query_count = static_cast<std::uint32_t>(fps.size());
    for (std::size_t i = 0; i < fps.size(); ++i) {
      queries.push_back({fps[i], s, static_cast<std::uint32_t>(i)});
    }
  }
  std::sort(queries.begin(), queries.end(),
            [](const Query& a, const Query& b) {
              return a.fp < b.fp || (a.fp == b.fp && a.origin < b.origin);
            });

  std::vector<Fingerprint> unique_fps;
  unique_fps.reserve(queries.size());
  for (const Query& q : queries) {
    if (unique_fps.empty() || unique_fps.back() != q.fp) {
      unique_fps.push_back(q.fp);
    }
  }

  std::vector<std::uint8_t> found;
  Result<SilResult> sil = sil_fn(unique_fps, found);
  if (!sil.ok()) return sil.error();

  // Resolve verdicts per origin. For a fingerprint PSIL declares new
  // that several origins asked about, only the first origin (smallest
  // id among askers) stores it; the rest are told "duplicate".
  std::size_t qi = 0;
  for (std::size_t u = 0; u < unique_fps.size(); ++u) {
    bool designated = false;
    for (; qi < queries.size() && queries[qi].fp == unique_fps[u]; ++qi) {
      const bool is_dup = found[u] != 0 || designated;
      if (!is_dup) {
        designated = true;  // this origin stores the chunk
      } else {
        verdicts[queries[qi].origin].duplicate_indices.push_back(
            queries[qi].index);
        if (duplicates != nullptr) ++*duplicates;
      }
    }
  }
  return verdicts;
}

Result<std::vector<net::VerdictBatch>> resolve_psil(
    BackupServer& owner, const std::vector<net::FingerprintBatch>& inbox,
    std::uint64_t* duplicates) {
  return resolve_psil(
      [&owner](const std::vector<Fingerprint>& fps,
               std::vector<std::uint8_t>& found) {
        return owner.chunk_store().sil(fps, found);
      },
      inbox, duplicates);
}

Result<NodeRoundResult> ClusterNode::run_dedup2_round(bool force_siu) {
  const PartitionMap& map = config_.map;
  const std::size_t n = map.server_slots();
  const std::size_t m = map.part_count();
  const std::size_t k = config_.node;
  net::Endpoint& ep = server_->endpoint();
  NodeRoundResult result;
  const std::uint32_t epoch = map.epoch();

  auto live = [&](std::size_t j) { return map.is_live(j); };
  if (!live(k)) {
    return Error{Errc::kInvalidArgument,
                 format("node {}: slot is drained in the map", k)};
  }
  // Parts this node serves PSIL for (the preferred copy) and parts it
  // hosts any copy of (the phase-E commit set), both ascending.
  std::vector<std::size_t> psil_parts;
  for (std::size_t p = 0; p < m; ++p) {
    if (map.copy(p, 0).server == k) psil_parts.push_back(p);
  }
  const std::vector<std::size_t> hosted = map.parts_hosted_by(k);
  // Replication (DESIGN.md §5g) is part of the wire protocol: every peer
  // dual-writes phase E, so a node missing a replica the map assigns it
  // would desync the round for everyone.
  for (const std::size_t p : hosted) {
    if (!map.copy_on(p, k)->via_store && !server_->has_part_replica(p)) {
      return Error{Errc::kInvalidArgument,
                   format("node {}: no replica attached for part {}", k, p)};
    }
  }
  // Serve a partition copy through whichever object the map says.
  auto copy_sil = [&](std::size_t p) {
    return map.copy(p, 0).via_store
               ? PartSilFn([this](const std::vector<Fingerprint>& fps,
                                  std::vector<std::uint8_t>& found) {
                   return server_->chunk_store().sil(fps, found);
                 })
               : PartSilFn([this, p](const std::vector<Fingerprint>& fps,
                                     std::vector<std::uint8_t>& found) {
                   return server_->part_replica(p).sil(fps, found);
                 });
  };

  // ---- Phase A: drain our undetermined set, partition by routing
  // prefix, ship each subset to its partition's serving node (an empty
  // batch still ships, so every pair exchanges one message per phase).
  // Batches go out in ascending part order — the order the receiver
  // awaits its served parts in (per-pair delivery is FIFO).
  std::vector<Fingerprint> fps = server_->file_store().take_undetermined();
  result.undetermined = fps.size();
  std::vector<std::vector<Fingerprint>> outbox(m);
  for (const Fingerprint& fp : fps) outbox[owner_of(fp)].push_back(fp);
  for (std::size_t p = 0; p < m; ++p) {
    const std::size_t j = map.copy(p, 0).server;
    if (j == k) continue;
    Status sent = ep.send_buffered(static_cast<net::EndpointId>(j),
                                   net::FingerprintBatch{outbox[p], epoch});
    if (sent.ok()) sent = ep.flush(static_cast<net::EndpointId>(j));
    if (!sent.ok()) {
      return Error{Errc::kUnavailable,
                   format("node {}: phase A send to {} failed: {}", k, j,
                          sent.message())};
    }
  }
  // Barrier: per served part, one batch per origin must arrive before
  // PSIL may run.
  std::vector<std::vector<net::FingerprintBatch>> fp_inbox(
      m, std::vector<net::FingerprintBatch>(n));
  for (const std::size_t p : psil_parts) {
    fp_inbox[p][k].fps = outbox[p];
    for (std::size_t s = 0; s < n; ++s) {
      if (s == k || !live(s)) continue;
      Result<net::FingerprintBatch> batch = ep.expect<net::FingerprintBatch>(
          static_cast<net::EndpointId>(s), barrier_deadline());
      if (!batch.ok()) {
        return Error{Errc::kUnavailable,
                     format("node {}: phase A batch from {} missing: {}", k, s,
                            batch.error().message)};
      }
      if (batch.value().epoch != epoch) {
        return Error{Errc::kInvalidArgument,
                     format("node {}: phase A batch from {} carries epoch {}, "
                            "this node's map is at {}",
                            k, s, batch.value().epoch, epoch)};
      }
      fp_inbox[p][s] = std::move(batch.value());
    }
  }

  // ---- Phase B: PSIL over every part this node serves.
  std::vector<std::vector<net::VerdictBatch>> verdict_out(m);
  for (const std::size_t p : psil_parts) {
    Result<std::vector<net::VerdictBatch>> verdicts =
        resolve_psil(copy_sil(p), fp_inbox[p], &result.duplicates);
    if (!verdicts.ok()) return verdicts.error();
    verdict_out[p] = std::move(verdicts.value());
  }

  // ---- Phase C: verdicts return to their origins.
  for (const std::size_t p : psil_parts) {
    for (std::size_t s = 0; s < n; ++s) {
      if (s == k || !live(s)) continue;
      Status sent =
          ep.send_buffered(static_cast<net::EndpointId>(s), verdict_out[p][s]);
      if (!sent.ok()) {
        return Error{Errc::kUnavailable,
                     format("node {}: phase C send to {} failed: {}", k, s,
                            sent.message())};
      }
    }
  }
  for (std::size_t s = 0; s < n; ++s) {
    if (s == k || !live(s)) continue;
    if (Status flushed = ep.flush(static_cast<net::EndpointId>(s));
        !flushed.ok()) {
      return Error{Errc::kUnavailable,
                   format("node {}: phase C flush to {} failed: {}", k, s,
                          flushed.message())};
    }
  }
  std::vector<net::VerdictBatch> verdict_inbox(m);
  for (std::size_t p = 0; p < m; ++p) {
    const std::size_t j = map.copy(p, 0).server;
    if (j == k) {
      verdict_inbox[p] = std::move(verdict_out[p][k]);
      continue;
    }
    Result<net::VerdictBatch> verdict = ep.expect<net::VerdictBatch>(
        static_cast<net::EndpointId>(j), barrier_deadline());
    if (!verdict.ok()) {
      return Error{Errc::kUnavailable,
                   format("node {}: phase C verdict from {} missing: {}", k,
                          j, verdict.error().message)};
    }
    if (verdict.value().query_count != outbox[p].size()) {
      return Error{Errc::kCorrupt,
                   format("verdict from {} answers {} queries, {} were asked",
                          j, verdict.value().query_count, outbox[p].size())};
    }
    verdict_inbox[p] = std::move(verdict.value());
  }

  // ---- Phase D: container the chunks PSIL declared new.
  std::unordered_set<Fingerprint, FingerprintHash> dups;
  for (std::size_t p = 0; p < m; ++p) {
    // Verdict indices are validated against query_count at decode and
    // above, so they index outbox[p] safely.
    for (const std::uint32_t idx : verdict_inbox[p].duplicate_indices) {
      dups.insert(outbox[p][idx]);
    }
  }
  std::vector<Fingerprint> new_fps;
  for (const Fingerprint& fp : fps) {
    if (!dups.contains(fp)) new_fps.push_back(fp);
  }
  Result<StoreResult> stored =
      server_->chunk_store().store_new_chunks(new_fps);
  if (!stored.ok()) return stored.error();
  server_->chunk_store().clear_log();
  result.new_chunks = stored.value().new_chunks;
  result.new_bytes = stored.value().new_bytes;

  // ---- Phase E: fresh <fp, container> entries route to EVERY copy of
  // their partition, and everything arrives before anyone registers. Per
  // peer the batches go out in ascending part order, which is exactly the
  // order the receiver awaits them in (per-pair delivery is FIFO).
  std::vector<std::vector<IndexEntry>> entry_out(m);
  for (const IndexEntry& e : stored.value().entries) {
    entry_out[owner_of(e.fp)].push_back(e);
  }
  for (std::size_t p = 0; p < m; ++p) {
    for (std::size_t c = 0; c < map.copy_count(); ++c) {
      const std::size_t t = map.copy(p, c).server;
      if (t == k) continue;
      Status sent = ep.send_buffered(static_cast<net::EndpointId>(t),
                                     net::IndexEntryBatch{entry_out[p], epoch});
      if (!sent.ok()) {
        return Error{Errc::kUnavailable,
                     format("node {}: phase E send to {} failed: {}", k, t,
                            sent.message())};
      }
    }
  }
  // With replication every peer is owed its hosted part batches; they
  // leave as one jumbo frame per peer at this flush boundary.
  for (std::size_t t = 0; t < n; ++t) {
    if (t == k || !live(t)) continue;
    if (Status flushed = ep.flush(static_cast<net::EndpointId>(t));
        !flushed.ok()) {
      return Error{Errc::kUnavailable,
                   format("node {}: phase E flush to {} failed: {}", k, t,
                          flushed.message())};
    }
  }
  // entry_inbox[part][origin]
  std::vector<std::vector<net::IndexEntryBatch>> entry_inbox(
      m, std::vector<net::IndexEntryBatch>(n));
  for (const std::size_t p : hosted) {
    for (std::size_t s = 0; s < n; ++s) {
      if (s == k) {
        entry_inbox[p][s].entries = entry_out[p];
        continue;
      }
      if (!live(s)) continue;
      Result<net::IndexEntryBatch> batch = ep.expect<net::IndexEntryBatch>(
          static_cast<net::EndpointId>(s), barrier_deadline());
      if (!batch.ok()) {
        return Error{Errc::kUnavailable,
                     format("node {}: phase E entries from {} missing: {}",
                            k, s, batch.error().message)};
      }
      if (batch.value().epoch != epoch) {
        return Error{Errc::kInvalidArgument,
                     format("node {}: phase E batch from {} carries epoch {}, "
                            "this node's map is at {}",
                            k, s, batch.value().epoch, epoch)};
      }
      entry_inbox[p][s] = std::move(batch.value());
    }
  }

  // Commit: register per hosted part (ascending) in origin order — the
  // same order the orchestrated cluster uses, so primary and replica
  // pending sets and indexes mutate identically everywhere.
  for (const std::size_t p : hosted) {
    const bool via_store = map.copy_on(p, k)->via_store;
    for (std::size_t s = 0; s < n; ++s) {
      const std::span<const IndexEntry> entries(entry_inbox[p][s].entries);
      if (via_store) {
        server_->chunk_store().add_pending(entries);
      } else {
        server_->part_replica(p).add_pending(entries);
      }
    }
  }
  if (force_siu || server_->chunk_store().siu_due()) {
    Result<SiuResult> siu = server_->chunk_store().siu();
    if (!siu.ok()) return siu.error();
    result.ran_siu = true;
  }
  for (const std::size_t p : hosted) {
    if (map.copy_on(p, k)->via_store) continue;
    IndexPartReplica& replica = server_->part_replica(p);
    if (!(force_siu || replica.siu_due())) continue;
    Result<SiuResult> siu = replica.siu();
    if (!siu.ok()) return siu.error();
  }
  return result;
}

Status ClusterNode::maintenance_preconditions() const {
  const std::size_t k = config_.node;
  if (!config_.map.is_live(k)) {
    return {Errc::kInvalidArgument,
            format("node {}: slot is drained in the map", k)};
  }
  if (server_->chunk_store().pending_count() > 0) {
    return {Errc::kBusy,
            format("node {}: {} SIU entries pending on the primary index",
                   k, server_->chunk_store().pending_count())};
  }
  for (const std::size_t p : config_.map.parts_hosted_by(k)) {
    const PartitionCopy* copy = config_.map.copy_on(p, k);
    if (copy == nullptr || copy->via_store) continue;
    if (!server_->has_part_replica(p)) {
      return {Errc::kInvalidArgument,
              format("node {}: no replica attached for part {}", k, p)};
    }
    if (server_->part_replica(p).pending_count() > 0) {
      return {Errc::kBusy,
              format("node {}: {} SIU entries pending on the part-{} replica",
                     k, server_->part_replica(p).pending_count(), p)};
    }
  }
  return Status::Ok();
}

Result<std::vector<IndexEntry>> ClusterNode::classify_hosted(
    std::size_t part, std::span<const Fingerprint> sorted_live) const {
  const PartitionCopy* copy = config_.map.copy_on(part, config_.node);
  if (copy == nullptr) {
    return Error{Errc::kInvalidArgument,
                 format("node {} hosts no copy of part {}", config_.node,
                        part)};
  }
  const index::DiskIndex& idx = copy->via_store
                                    ? server_->chunk_store().index()
                                    : server_->part_replica(part).index();
  return classify_live_entries(idx, sorted_live);
}

Result<std::vector<IndexEntry>> ClusterNode::maintenance_mark(
    std::size_t part, std::vector<Fingerprint> live_fps) {
  const std::size_t k = config_.node;
  const std::size_t j = config_.map.copy(part, 0).server;
  if (j == k) return classify_hosted(part, live_fps);

  net::Endpoint& ep = server_->endpoint();
  const auto holder = static_cast<net::EndpointId>(j);
  const std::uint32_t epoch = config_.map.epoch();
  if (Status sent =
          ep.send(holder, net::GcMarkRequest{epoch,
                                             static_cast<std::uint32_t>(part),
                                             std::move(live_fps)});
      !sent.ok()) {
    return Error{Errc::kUnavailable,
                 format("mark request for part {} to node {} failed: {}",
                        part, j, sent.message())};
  }
  Result<net::GcMarkReply> reply =
      ep.expect<net::GcMarkReply>(holder, barrier_deadline());
  if (!reply.ok()) {
    return Error{Errc::kUnavailable,
                 format("mark reply for part {} from node {} missing: {}",
                        part, j, reply.error().message)};
  }
  if (reply.value().epoch != epoch || reply.value().part != part) {
    return Error{Errc::kInvalidArgument,
                 format("mark reply from node {} answers part {} epoch {}, "
                        "asked part {} epoch {}",
                        j, reply.value().part, reply.value().epoch, part,
                        epoch)};
  }
  return std::move(reply.value().entries);
}

Status ClusterNode::maintenance_install(std::size_t part,
                                        std::vector<IndexEntry> sorted) {
  const std::size_t k = config_.node;
  net::Endpoint& ep = server_->endpoint();
  const std::uint32_t epoch = config_.map.epoch();
  for (std::size_t c = 0; c < config_.map.copy_count(); ++c) {
    const PartitionCopy copy = config_.map.copy(part, c);
    if (copy.server == k) {
      const index::DiskIndexParams params =
          copy.via_store ? server_->chunk_store().index().params()
                         : server_->part_replica(part).index().params();
      Result<index::DiskIndex> idx =
          build_staged_index(*server_, params, sorted);
      if (!idx.ok()) return idx.status();
      maintenance_staged_.push_back(
          {part, copy.via_store, std::move(idx).value()});
      continue;
    }
    const auto holder = static_cast<net::EndpointId>(copy.server);
    if (Status sent = ep.send(
            holder,
            net::GcInstall{epoch, static_cast<std::uint32_t>(part),
                           static_cast<std::uint8_t>(copy.via_store ? 1 : 0),
                           sorted});
        !sent.ok()) {
      return {Errc::kUnavailable,
              format("install for part {} to node {} failed: {}", part,
                     copy.server, sent.message())};
    }
    Result<net::Control> ack =
        ep.expect<net::Control>(holder, barrier_deadline());
    if (!ack.ok()) {
      return {Errc::kUnavailable,
              format("install ack for part {} from node {} missing: {}",
                     part, copy.server, ack.error().message)};
    }
    if (ack.value().op != net::Control::kMaintenanceAck ||
        ack.value().arg != epoch) {
      return {Errc::kInvalidArgument,
              format("node {} acked install for part {} with op {} arg {}",
                     copy.server, part, ack.value().op, ack.value().arg)};
    }
  }
  return Status::Ok();
}

Status ClusterNode::maintenance_commit() {
  // Local copies swap first (pure in-memory), then the peers are
  // released; their swaps are equally infallible, so a lost ack can only
  // mean a dead peer, not a half-committed fleet.
  for (NodeStagedCopy& c : maintenance_staged_) {
    if (c.via_store) {
      server_->rebase_chunk_store_index(std::move(c.idx));
    } else {
      server_->adopt_replica(server_->make_replica(c.part, std::move(c.idx)));
    }
  }
  maintenance_staged_.clear();

  net::Endpoint& ep = server_->endpoint();
  const std::uint32_t epoch = config_.map.epoch();
  Status rc = Status::Ok();
  for (std::size_t j = 0; j < config_.map.server_slots(); ++j) {
    if (j == config_.node || !config_.map.is_live(j)) continue;
    const auto peer = static_cast<net::EndpointId>(j);
    Status sent = ep.send(peer, net::Control{net::Control::kMaintenanceCommit,
                                             epoch});
    if (sent.ok()) {
      Result<net::Control> ack =
          ep.expect<net::Control>(peer, barrier_deadline());
      if (ack.ok() && ack.value().op == net::Control::kMaintenanceAck &&
          ack.value().arg == epoch) {
        continue;
      }
    }
    if (rc.ok()) {
      rc = {Errc::kUnavailable,
            format("node {} did not acknowledge the maintenance commit", j)};
    }
  }
  return rc;
}

void ClusterNode::maintenance_abort() {
  maintenance_staged_.clear();
  net::Endpoint& ep = server_->endpoint();
  const std::uint32_t epoch = config_.map.epoch();
  for (std::size_t j = 0; j < config_.map.server_slots(); ++j) {
    if (j == config_.node || !config_.map.is_live(j)) continue;
    (void)ep.send(static_cast<net::EndpointId>(j),
                  net::Control{net::Control::kMaintenanceAbort, epoch});
  }
}

Status ClusterNode::serve_maintenance(net::EndpointId driver) {
  net::Endpoint& ep = server_->endpoint();
  const std::uint32_t epoch = config_.map.epoch();
  const std::size_t k = config_.node;
  for (;;) {
    std::optional<net::Message> msg =
        ep.receive_from(driver, barrier_deadline());
    if (!msg.has_value()) {
      maintenance_staged_.clear();
      return {Errc::kUnavailable,
              format("node {}: maintenance loop heard nothing from {} within "
                     "the round timeout",
                     k, driver)};
    }
    if (const auto* mark = std::get_if<net::GcMarkRequest>(&*msg)) {
      if (mark->epoch != epoch) {
        maintenance_staged_.clear();
        return {Errc::kInvalidArgument,
                format("node {}: mark request carries epoch {}, this node's "
                       "map is at {}",
                       k, mark->epoch, epoch)};
      }
      Result<std::vector<IndexEntry>> entries =
          classify_hosted(mark->part, mark->fps);
      if (!entries.ok()) {
        maintenance_staged_.clear();
        return entries.status();
      }
      if (Status sent = ep.send(
              driver, net::GcMarkReply{epoch, mark->part,
                                       std::move(entries).value()});
          !sent.ok()) {
        maintenance_staged_.clear();
        return {Errc::kUnavailable,
                format("node {}: mark reply to {} failed: {}", k, driver,
                       sent.message())};
      }
      continue;
    }
    if (const auto* install = std::get_if<net::GcInstall>(&*msg)) {
      const PartitionCopy* copy = config_.map.copy_on(install->part, k);
      if (install->epoch != epoch || copy == nullptr ||
          copy->via_store != (install->via_store != 0)) {
        maintenance_staged_.clear();
        return {Errc::kInvalidArgument,
                format("node {}: install for part {} does not match this "
                       "node's map",
                       k, install->part)};
      }
      const index::DiskIndexParams params =
          copy->via_store ? server_->chunk_store().index().params()
                          : server_->part_replica(install->part).index()
                                .params();
      Result<index::DiskIndex> idx =
          build_staged_index(*server_, params, install->entries);
      if (!idx.ok()) {
        maintenance_staged_.clear();
        return idx.status();
      }
      maintenance_staged_.push_back(
          {install->part, copy->via_store, std::move(idx).value()});
      if (Status sent = ep.send(
              driver, net::Control{net::Control::kMaintenanceAck, epoch});
          !sent.ok()) {
        maintenance_staged_.clear();
        return {Errc::kUnavailable,
                format("node {}: install ack to {} failed: {}", k, driver,
                       sent.message())};
      }
      continue;
    }
    if (const auto* control = std::get_if<net::Control>(&*msg)) {
      switch (control->op) {
        case net::Control::kMaintenanceCommit: {
          for (NodeStagedCopy& c : maintenance_staged_) {
            if (c.via_store) {
              server_->rebase_chunk_store_index(std::move(c.idx));
            } else {
              server_->adopt_replica(
                  server_->make_replica(c.part, std::move(c.idx)));
            }
          }
          maintenance_staged_.clear();
          return ep.send(driver,
                         net::Control{net::Control::kMaintenanceAck, epoch});
        }
        case net::Control::kMaintenanceAbort:
        case net::Control::kShutdown:
          maintenance_staged_.clear();
          return Status::Ok();
        default:
          continue;  // unknown control op: ignore
      }
    }
    // Not a maintenance frame: ignore (the driver owns the choreography).
  }
}

Result<ContainerId> ClusterNode::locate_hosted(const Fingerprint& fp) const {
  const std::size_t owner = owner_of(fp);
  const PartitionCopy* copy = config_.map.copy_on(owner, config_.node);
  if (copy == nullptr) {
    return Error{Errc::kNotFound,
                 format("node {} hosts no copy of part {}", config_.node,
                        owner)};
  }
  if (copy->via_store) return server_->chunk_store().locate(fp);
  if (!server_->has_part_replica(owner)) {
    return Error{Errc::kNotFound,
                 format("node {} is missing its replica of part {}",
                        config_.node, owner)};
  }
  return server_->part_replica(owner).locate(fp);
}

Status ClusterNode::serve_restores(net::EndpointId via) {
  net::Endpoint& ep = server_->endpoint();
  for (;;) {
    std::optional<net::Message> msg =
        ep.receive_from(via, barrier_deadline());
    if (!msg.has_value()) {
      return {Errc::kUnavailable,
              format("node {}: serve loop heard nothing from {} within the "
                     "round timeout",
                     config_.node, via)};
    }
    if (const auto* control = std::get_if<net::Control>(&*msg)) {
      if (control->op == net::Control::kShutdown) return Status::Ok();
      continue;  // unknown control op: ignore
    }
    const auto* request = std::get_if<net::ChunkLocateRequest>(&*msg);
    if (request == nullptr) continue;  // not ours to answer

    net::ChunkLocateReply reply;
    Result<ContainerId> located = locate_hosted(request->fp);
    if (located.ok()) {
      reply.container = located.value();
    } else {
      reply.status = located.error().code;
    }
    if (Status sent = ep.send(via, reply); !sent.ok()) {
      return {Errc::kUnavailable,
              format("node {}: locate reply to {} failed: {}", config_.node,
                     via, sent.message())};
    }
  }
}

Result<std::vector<Byte>> ClusterNode::read_chunk_via(
    const Fingerprint& fp, net::Endpoint& client) {
  const auto via_id = static_cast<net::EndpointId>(config_.node);
  net::Endpoint& ep = server_->endpoint();

  // LPC first (Section 3.3): only a cache miss pays the owner-side index
  // lookup and the container fetch.
  std::vector<Byte> bytes;
  if (std::optional<std::vector<Byte>> hit =
          server_->chunk_store().lpc_probe(fp)) {
    bytes = std::move(*hit);
  } else {
    // Failover order (DESIGN.md §5g): the partition's preferred copy
    // first, then its backup. Either copy may be this node (then the
    // lookup is local) or a peer (then it is a locate round trip with
    // that peer's serve loop); any failure moves on to the other copy.
    const std::size_t owner = owner_of(fp);
    std::optional<ContainerId> container;
    Error last_error{Errc::kUnavailable,
                     format("no copy of part {} reachable", owner)};
    for (std::size_t hi = 0; hi < config_.map.copy_count() && !container;
         ++hi) {
      const std::size_t h = config_.map.copy(owner, hi).server;
      if (h == config_.node) {
        Result<ContainerId> located = locate_hosted(fp);
        if (located.ok()) {
          container = located.value();
        } else {
          last_error = located.error();
        }
        continue;
      }
      const auto holder_id = static_cast<net::EndpointId>(h);
      if (Status sent = ep.send(holder_id, net::ChunkLocateRequest{fp});
          !sent.ok()) {
        last_error =
            Error{Errc::kUnavailable,
                  format("part {} holder {} unreachable for locate", owner,
                         h)};
        continue;
      }
      Result<net::ChunkLocateReply> got = ep.expect<net::ChunkLocateReply>(
          holder_id, barrier_deadline());
      if (!got.ok()) {
        last_error = Error{Errc::kUnavailable,
                           format("locate reply from holder {} lost", h)};
        continue;
      }
      if (got.value().status != Errc::kOk) {
        last_error = Error{got.value().status,
                           format("chunk not located on holder {}", h)};
        continue;
      }
      container = got.value().container;
    }
    if (!container) return last_error;
    Result<std::vector<Byte>> chunk =
        server_->chunk_store().read_chunk_at(fp, *container);
    if (!chunk.ok()) return chunk.error();
    bytes = std::move(chunk.value());
  }

  // The restored bytes cross this server's wire to the client as a real
  // ChunkData frame (and round-trip its serialization).
  if (Status sent =
          ep.send(client.id(), net::ChunkData{fp, std::move(bytes)});
      !sent.ok()) {
    return Error{Errc::kUnavailable,
                 format("restore delivery from server {} failed",
                        config_.node)};
  }
  Result<net::ChunkData> delivered =
      client.expect<net::ChunkData>(via_id, barrier_deadline());
  if (!delivered.ok()) {
    return Error{Errc::kUnavailable,
                 format("restore delivery from server {} lost",
                        config_.node)};
  }
  return std::move(delivered.value().bytes);
}

}  // namespace debar::core
