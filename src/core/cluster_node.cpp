#include "core/cluster_node.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/fmt.hpp"

namespace debar::core {

Result<std::vector<net::VerdictBatch>> resolve_psil(
    const PartSilFn& sil_fn, const std::vector<net::FingerprintBatch>& inbox,
    std::uint64_t* duplicates) {
  const std::size_t n = inbox.size();
  std::vector<net::VerdictBatch> verdicts(n);

  struct Query {
    Fingerprint fp;
    std::size_t origin;
    std::uint32_t index;  // position in the origin's batch
  };
  std::vector<Query> queries;
  for (std::size_t s = 0; s < n; ++s) {
    const std::vector<Fingerprint>& fps = inbox[s].fps;
    verdicts[s].query_count = static_cast<std::uint32_t>(fps.size());
    for (std::size_t i = 0; i < fps.size(); ++i) {
      queries.push_back({fps[i], s, static_cast<std::uint32_t>(i)});
    }
  }
  std::sort(queries.begin(), queries.end(),
            [](const Query& a, const Query& b) {
              return a.fp < b.fp || (a.fp == b.fp && a.origin < b.origin);
            });

  std::vector<Fingerprint> unique_fps;
  unique_fps.reserve(queries.size());
  for (const Query& q : queries) {
    if (unique_fps.empty() || unique_fps.back() != q.fp) {
      unique_fps.push_back(q.fp);
    }
  }

  std::vector<std::uint8_t> found;
  Result<SilResult> sil = sil_fn(unique_fps, found);
  if (!sil.ok()) return sil.error();

  // Resolve verdicts per origin. For a fingerprint PSIL declares new
  // that several origins asked about, only the first origin (smallest
  // id among askers) stores it; the rest are told "duplicate".
  std::size_t qi = 0;
  for (std::size_t u = 0; u < unique_fps.size(); ++u) {
    bool designated = false;
    for (; qi < queries.size() && queries[qi].fp == unique_fps[u]; ++qi) {
      const bool is_dup = found[u] != 0 || designated;
      if (!is_dup) {
        designated = true;  // this origin stores the chunk
      } else {
        verdicts[queries[qi].origin].duplicate_indices.push_back(
            queries[qi].index);
        if (duplicates != nullptr) ++*duplicates;
      }
    }
  }
  return verdicts;
}

Result<std::vector<net::VerdictBatch>> resolve_psil(
    BackupServer& owner, const std::vector<net::FingerprintBatch>& inbox,
    std::uint64_t* duplicates) {
  return resolve_psil(
      [&owner](const std::vector<Fingerprint>& fps,
               std::vector<std::uint8_t>& found) {
        return owner.chunk_store().sil(fps, found);
      },
      inbox, duplicates);
}

Result<NodeRoundResult> ClusterNode::run_dedup2_round(bool force_siu) {
  const std::size_t n = config_.node_count;
  const std::size_t k = config_.node;
  net::Endpoint& ep = server_->endpoint();
  NodeRoundResult result;

  // Replication (DESIGN.md §5g) is part of the wire protocol: with two or
  // more nodes every peer dual-writes phase E, so a node without its
  // replica attached would desync the round for everyone.
  const bool replicate = n >= 2;
  if (replicate && !server_->has_replica()) {
    return Error{Errc::kInvalidArgument,
                 format("node {}: no replica attached for part {}", k,
                        replica_part_of(k, n))};
  }

  // ---- Phase A: drain our undetermined set, partition by routing
  // prefix, ship every foreign subset (an empty batch still ships, so
  // every pair exchanges exactly one message per phase).
  std::vector<Fingerprint> fps = server_->file_store().take_undetermined();
  result.undetermined = fps.size();
  std::vector<std::vector<Fingerprint>> outbox(n);
  for (const Fingerprint& fp : fps) outbox[owner_of(fp)].push_back(fp);
  for (std::size_t j = 0; j < n; ++j) {
    if (j == k) continue;
    Status sent = ep.send_buffered(static_cast<net::EndpointId>(j),
                                   net::FingerprintBatch{outbox[j]});
    if (sent.ok()) sent = ep.flush(static_cast<net::EndpointId>(j));
    if (!sent.ok()) {
      return Error{Errc::kUnavailable,
                   format("node {}: phase A send to {} failed: {}", k, j,
                          sent.message())};
    }
  }
  // Barrier: one batch per origin must arrive before PSIL may run.
  std::vector<net::FingerprintBatch> fp_inbox(n);
  fp_inbox[k].fps = outbox[k];
  for (std::size_t s = 0; s < n; ++s) {
    if (s == k) continue;
    Result<net::FingerprintBatch> batch = ep.expect<net::FingerprintBatch>(
        static_cast<net::EndpointId>(s), barrier_deadline());
    if (!batch.ok()) {
      return Error{Errc::kUnavailable,
                   format("node {}: phase A batch from {} missing: {}", k, s,
                          batch.error().message)};
    }
    fp_inbox[s] = std::move(batch.value());
  }

  // ---- Phase B: PSIL over our index part.
  Result<std::vector<net::VerdictBatch>> verdicts =
      resolve_psil(*server_, fp_inbox, &result.duplicates);
  if (!verdicts.ok()) return verdicts.error();

  // ---- Phase C: verdicts return to their origins.
  for (std::size_t s = 0; s < n; ++s) {
    if (s == k) continue;
    Status sent =
        ep.send_buffered(static_cast<net::EndpointId>(s), verdicts.value()[s]);
    if (sent.ok()) sent = ep.flush(static_cast<net::EndpointId>(s));
    if (!sent.ok()) {
      return Error{Errc::kUnavailable,
                   format("node {}: phase C send to {} failed: {}", k, s,
                          sent.message())};
    }
  }
  std::vector<net::VerdictBatch> verdict_inbox(n);
  verdict_inbox[k] = std::move(verdicts.value()[k]);
  for (std::size_t j = 0; j < n; ++j) {
    if (j == k) continue;
    Result<net::VerdictBatch> verdict = ep.expect<net::VerdictBatch>(
        static_cast<net::EndpointId>(j), barrier_deadline());
    if (!verdict.ok()) {
      return Error{Errc::kUnavailable,
                   format("node {}: phase C verdict from {} missing: {}", k,
                          j, verdict.error().message)};
    }
    if (verdict.value().query_count != outbox[j].size()) {
      return Error{Errc::kCorrupt,
                   format("verdict from {} answers {} queries, {} were asked",
                          j, verdict.value().query_count, outbox[j].size())};
    }
    verdict_inbox[j] = std::move(verdict.value());
  }

  // ---- Phase D: container the chunks PSIL declared new.
  std::unordered_set<Fingerprint, FingerprintHash> dups;
  for (std::size_t j = 0; j < n; ++j) {
    // Verdict indices are validated against query_count at decode and
    // above, so they index outbox[j] safely.
    for (const std::uint32_t idx : verdict_inbox[j].duplicate_indices) {
      dups.insert(outbox[j][idx]);
    }
  }
  std::vector<Fingerprint> new_fps;
  for (const Fingerprint& fp : fps) {
    if (!dups.contains(fp)) new_fps.push_back(fp);
  }
  Result<StoreResult> stored =
      server_->chunk_store().store_new_chunks(new_fps);
  if (!stored.ok()) return stored.error();
  server_->chunk_store().clear_log();
  result.new_chunks = stored.value().new_chunks;
  result.new_bytes = stored.value().new_bytes;

  // ---- Phase E: fresh <fp, container> entries route to BOTH copies of
  // their partition — the primary owner p and the backup holder
  // backup_of(p) — and everything arrives before anyone registers. Per
  // peer the batches go out in ascending part order, which is exactly the
  // order the receiver awaits them in (per-pair delivery is FIFO).
  std::vector<std::vector<IndexEntry>> entry_out(n);
  for (const IndexEntry& e : stored.value().entries) {
    entry_out[owner_of(e.fp)].push_back(e);
  }
  for (std::size_t p = 0; p < n; ++p) {
    const std::size_t targets[2] = {p, backup_of(p, n)};
    const std::size_t target_count = replicate ? 2 : 1;
    for (std::size_t ti = 0; ti < target_count; ++ti) {
      const std::size_t t = targets[ti];
      if (t == k) continue;
      Status sent = ep.send_buffered(static_cast<net::EndpointId>(t),
                                     net::IndexEntryBatch{entry_out[p]});
      if (!sent.ok()) {
        return Error{Errc::kUnavailable,
                     format("node {}: phase E send to {} failed: {}", k, t,
                            sent.message())};
      }
    }
  }
  // With replication every peer is owed two part batches; they leave as
  // one jumbo frame per peer at this flush boundary.
  for (std::size_t t = 0; t < n; ++t) {
    if (t == k) continue;
    if (Status flushed = ep.flush(static_cast<net::EndpointId>(t));
        !flushed.ok()) {
      return Error{Errc::kUnavailable,
                   format("node {}: phase E flush to {} failed: {}", k, t,
                          flushed.message())};
    }
  }
  std::vector<std::size_t> hosted{k};
  if (replicate) hosted.push_back(replica_part_of(k, n));
  std::sort(hosted.begin(), hosted.end());
  // entry_inbox[part][origin]
  std::vector<std::vector<net::IndexEntryBatch>> entry_inbox(
      n, std::vector<net::IndexEntryBatch>(n));
  for (const std::size_t p : hosted) {
    for (std::size_t s = 0; s < n; ++s) {
      if (s == k) {
        entry_inbox[p][s].entries = entry_out[p];
        continue;
      }
      Result<net::IndexEntryBatch> batch = ep.expect<net::IndexEntryBatch>(
          static_cast<net::EndpointId>(s), barrier_deadline());
      if (!batch.ok()) {
        return Error{Errc::kUnavailable,
                     format("node {}: phase E entries from {} missing: {}",
                            k, s, batch.error().message)};
      }
      entry_inbox[p][s] = std::move(batch.value());
    }
  }

  // Commit: register per hosted part (ascending) in origin order — the
  // same order the orchestrated cluster uses, so primary and replica
  // pending sets and indexes mutate identically everywhere.
  for (const std::size_t p : hosted) {
    for (std::size_t s = 0; s < n; ++s) {
      const std::span<const IndexEntry> entries(entry_inbox[p][s].entries);
      if (p == k) {
        server_->chunk_store().add_pending(entries);
      } else {
        server_->replica().add_pending(entries);
      }
    }
  }
  if (force_siu || server_->chunk_store().siu_due()) {
    Result<SiuResult> siu = server_->chunk_store().siu();
    if (!siu.ok()) return siu.error();
    result.ran_siu = true;
  }
  if (replicate && (force_siu || server_->replica().siu_due())) {
    Result<SiuResult> siu = server_->replica().siu();
    if (!siu.ok()) return siu.error();
  }
  return result;
}

Result<ContainerId> ClusterNode::locate_hosted(const Fingerprint& fp) const {
  const std::size_t owner = owner_of(fp);
  if (owner == config_.node) return server_->chunk_store().locate(fp);
  if (server_->has_replica() && server_->replica().part() == owner) {
    return server_->replica().locate(fp);
  }
  return Error{Errc::kNotFound,
               format("node {} hosts no copy of part {}", config_.node,
                      owner)};
}

Status ClusterNode::serve_restores(net::EndpointId via) {
  net::Endpoint& ep = server_->endpoint();
  for (;;) {
    std::optional<net::Message> msg =
        ep.receive_from(via, barrier_deadline());
    if (!msg.has_value()) {
      return {Errc::kUnavailable,
              format("node {}: serve loop heard nothing from {} within the "
                     "round timeout",
                     config_.node, via)};
    }
    if (const auto* control = std::get_if<net::Control>(&*msg)) {
      if (control->op == net::Control::kShutdown) return Status::Ok();
      continue;  // unknown control op: ignore
    }
    const auto* request = std::get_if<net::ChunkLocateRequest>(&*msg);
    if (request == nullptr) continue;  // not ours to answer

    net::ChunkLocateReply reply;
    Result<ContainerId> located = locate_hosted(request->fp);
    if (located.ok()) {
      reply.container = located.value();
    } else {
      reply.status = located.error().code;
    }
    if (Status sent = ep.send(via, reply); !sent.ok()) {
      return {Errc::kUnavailable,
              format("node {}: locate reply to {} failed: {}", config_.node,
                     via, sent.message())};
    }
  }
}

Result<std::vector<Byte>> ClusterNode::read_chunk_via(
    const Fingerprint& fp, net::Endpoint& client) {
  const auto via_id = static_cast<net::EndpointId>(config_.node);
  net::Endpoint& ep = server_->endpoint();

  // LPC first (Section 3.3): only a cache miss pays the owner-side index
  // lookup and the container fetch.
  std::vector<Byte> bytes;
  if (std::optional<std::vector<Byte>> hit =
          server_->chunk_store().lpc_probe(fp)) {
    bytes = std::move(*hit);
  } else {
    // Failover order (DESIGN.md §5g): the partition's primary owner
    // first, then its backup holder. Either copy may be this node (then
    // the lookup is local) or a peer (then it is a locate round trip with
    // that peer's serve loop); any failure moves on to the other copy.
    const std::size_t owner = owner_of(fp);
    const std::size_t n = config_.node_count;
    const std::size_t holders[2] = {owner, backup_of(owner, n)};
    const std::size_t holder_count = n >= 2 ? 2 : 1;
    std::optional<ContainerId> container;
    Error last_error{Errc::kUnavailable,
                     format("no copy of part {} reachable", owner)};
    for (std::size_t hi = 0; hi < holder_count && !container; ++hi) {
      const std::size_t h = holders[hi];
      if (h == config_.node) {
        Result<ContainerId> located = locate_hosted(fp);
        if (located.ok()) {
          container = located.value();
        } else {
          last_error = located.error();
        }
        continue;
      }
      const auto holder_id = static_cast<net::EndpointId>(h);
      if (Status sent = ep.send(holder_id, net::ChunkLocateRequest{fp});
          !sent.ok()) {
        last_error =
            Error{Errc::kUnavailable,
                  format("part {} holder {} unreachable for locate", owner,
                         h)};
        continue;
      }
      Result<net::ChunkLocateReply> got = ep.expect<net::ChunkLocateReply>(
          holder_id, barrier_deadline());
      if (!got.ok()) {
        last_error = Error{Errc::kUnavailable,
                           format("locate reply from holder {} lost", h)};
        continue;
      }
      if (got.value().status != Errc::kOk) {
        last_error = Error{got.value().status,
                           format("chunk not located on holder {}", h)};
        continue;
      }
      container = got.value().container;
    }
    if (!container) return last_error;
    Result<std::vector<Byte>> chunk =
        server_->chunk_store().read_chunk_at(fp, *container);
    if (!chunk.ok()) return chunk.error();
    bytes = std::move(chunk.value());
  }

  // The restored bytes cross this server's wire to the client as a real
  // ChunkData frame (and round-trip its serialization).
  if (Status sent =
          ep.send(client.id(), net::ChunkData{fp, std::move(bytes)});
      !sent.ok()) {
    return Error{Errc::kUnavailable,
                 format("restore delivery from server {} failed",
                        config_.node)};
  }
  Result<net::ChunkData> delivered =
      client.expect<net::ChunkData>(via_id, barrier_deadline());
  if (!delivered.ok()) {
    return Error{Errc::kUnavailable,
                 format("restore delivery from server {} lost",
                        config_.node)};
  }
  return std::move(delivered.value().bytes);
}

}  // namespace debar::core
