#include "core/scheduler.hpp"

#include <cassert>

namespace debar::core {

BackupScheduler::BackupScheduler(Director* director,
                                 std::vector<BackupServer*> servers,
                                 SchedulerConfig config)
    : director_(director), servers_(std::move(servers)), config_(config) {
  assert(director_ != nullptr);
  assert(!servers_.empty());
}

BackupEngine& BackupScheduler::engine_for(const std::string& client) {
  auto it = engines_.find(client);
  if (it == engines_.end()) {
    it = engines_
             .emplace(client, std::make_unique<BackupEngine>(
                                  client, director_, config_.cdc))
             .first;
  }
  return *it->second;
}

Result<DayReport> BackupScheduler::run_day(std::uint32_t day,
                                           const DatasetProvider& provider) {
  DayReport report;
  report.day = day;

  for (const JobSpec& spec : director_->jobs_due_on_day(day)) {
    Result<Dataset> dataset = provider(spec, day);
    if (!dataset.ok()) return dataset.error();

    const std::size_t target = director_->assign_server(
        spec.job_id, dataset.value().total_bytes(), servers_.size());
    BackupEngine& engine = engine_for(spec.client_name);
    Result<BackupRunStats> stats =
        engine.run_backup(spec.job_id, dataset.value(),
                          servers_[target]->file_store(), config_.backup);
    if (!stats.ok()) return stats.error();

    ++report.jobs_run;
    report.logical_bytes += stats.value().logical_bytes;
    report.transferred_bytes += stats.value().transferred_bytes;
  }

  // Director-initiated dedup-2 on servers whose logs have filled up.
  for (BackupServer* server : servers_) {
    if (server->file_store().undetermined_count() >= config_.dedup2_trigger) {
      Result<Dedup2Result> result = server->run_dedup2(/*force_siu=*/false);
      if (!result.ok()) return result.error();
      ++report.dedup2_rounds;
      report.new_chunks += result.value().new_chunks;
    }
  }
  return report;
}

Status BackupScheduler::finalize() {
  for (BackupServer* server : servers_) {
    Result<Dedup2Result> result = server->run_dedup2(/*force_siu=*/true);
    if (!result.ok()) {
      return Status(result.error().code, result.error().message);
    }
  }
  return Status::Ok();
}

}  // namespace debar::core
