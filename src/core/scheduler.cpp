#include "core/scheduler.hpp"

#include <algorithm>
#include <cassert>

#include "core/cluster.hpp"

namespace debar::core {

BackupScheduler::BackupScheduler(Director* director,
                                 std::vector<BackupServer*> servers,
                                 SchedulerConfig config)
    : director_(director), servers_(std::move(servers)), config_(config) {
  assert(director_ != nullptr);
  assert(!servers_.empty());
  // Deterministic tie-break for least-loaded assignment: the director
  // returns the lowest tied *index*, so indices must mean the same server
  // no matter how the caller happened to order the vector. Pin index
  // order to ascending server id.
  std::sort(servers_.begin(), servers_.end(),
            [](const BackupServer* a, const BackupServer* b) {
              return a->server_id() < b->server_id();
            });
}

BackupScheduler::BackupScheduler(Cluster* cluster, SchedulerConfig config)
    : director_(&cluster->director()), cluster_(cluster), config_(config) {
  servers_.reserve(cluster->server_count());
  for (std::size_t k = 0; k < cluster->server_count(); ++k) {
    servers_.push_back(&cluster->server(k));
  }
}

BackupEngine& BackupScheduler::engine_for(const std::string& client) {
  auto it = engines_.find(client);
  if (it == engines_.end()) {
    it = engines_
             .emplace(client, std::make_unique<BackupEngine>(
                                  client, director_, config_.cdc))
             .first;
  }
  return *it->second;
}

Result<DayReport> BackupScheduler::run_day(std::uint32_t day,
                                           const DatasetProvider& provider) {
  DayReport report;
  report.day = day;

  for (const JobSpec& spec : director_->jobs_due_on_day(day)) {
    Result<Dataset> dataset = provider(spec, day);
    if (!dataset.ok()) return dataset.error();

    const std::size_t target = director_->assign_server(
        spec.job_id, dataset.value().total_bytes(), servers_.size());
    BackupEngine& engine = engine_for(spec.client_name);
    Result<BackupRunStats> stats =
        engine.run_backup(spec.job_id, dataset.value(),
                          servers_[target]->file_store(), config_.backup);
    if (!stats.ok()) return stats.error();

    ++report.jobs_run;
    report.logical_bytes += stats.value().logical_bytes;
    report.transferred_bytes += stats.value().transferred_bytes;
  }

  // Director-initiated dedup-2 on servers whose logs have filled up. In
  // cluster mode any shard crossing the trigger starts one cluster-wide
  // round (phase A redistributes every shard's undetermined set anyway).
  if (cluster_ != nullptr) {
    const bool due = std::any_of(
        servers_.begin(), servers_.end(), [&](BackupServer* server) {
          return server->file_store().undetermined_count() >=
                 config_.dedup2_trigger;
        });
    if (due) {
      Result<ClusterDedup2Result> result =
          cluster_->run_dedup2(/*force_siu=*/false);
      if (!result.ok()) return result.error();
      ++report.dedup2_rounds;
      report.new_chunks += result.value().new_chunks;
    }
    return report;
  }
  for (BackupServer* server : servers_) {
    if (server->file_store().undetermined_count() >= config_.dedup2_trigger) {
      Result<Dedup2Result> result = server->run_dedup2(/*force_siu=*/false);
      if (!result.ok()) return result.error();
      ++report.dedup2_rounds;
      report.new_chunks += result.value().new_chunks;
    }
  }
  return report;
}

Status BackupScheduler::finalize() {
  if (cluster_ != nullptr) {
    Result<ClusterDedup2Result> result =
        cluster_->run_dedup2(/*force_siu=*/true);
    if (!result.ok()) {
      return Status(result.error().code, result.error().message);
    }
    return Status::Ok();
  }
  for (BackupServer* server : servers_) {
    Result<Dedup2Result> result = server->run_dedup2(/*force_siu=*/true);
    if (!result.ok()) {
      return Status(result.error().code, result.error().message);
    }
  }
  return Status::Ok();
}

}  // namespace debar::core
