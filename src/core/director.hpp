// Director (Section 3.1): the control centre.
//
// Holds job objects, schedules them onto backup servers (least-loaded
// assignment), and runs the Metadata Manager: every completed job version's
// file metadata and file indices live here, which is what makes job-chain
// preliminary filtering and restores possible. The director also decides
// when to initiate dedup-2.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/result.hpp"
#include "core/metadata.hpp"
#include "core/metadata_store.hpp"

namespace debar::core {

/// Retention policy (DESIGN.md §5k): which versions of a job chain stay
/// restorable. A version is KEPT if it is among the newest `keep_last`
/// versions of its job (when keep_last > 0) OR its age in simulated days
/// is <= `keep_days` (when keep_days > 0). Both zero means keep
/// everything (the pre-retention behaviour). The latest version of a job
/// is never expired regardless of age — the job chain's filtering
/// fingerprints and the next incremental run depend on it.
struct RetentionPolicy {
  std::uint32_t keep_last = 0;
  std::uint32_t keep_days = 0;

  [[nodiscard]] bool unbounded() const noexcept {
    return keep_last == 0 && keep_days == 0;
  }
};

struct DirectorConfig {
  RetentionPolicy retention;
  /// Simulated-day period between maintenance rounds (expiry + GC +
  /// compaction); 0 disables director-driven scheduling and leaves
  /// maintenance to explicit MaintenanceJob runs.
  std::uint32_t maintenance_period_days = 0;
};

class Director {
 public:
  Director() = default;
  explicit Director(DirectorConfig config);

  /// Attach a persistent metadata store (Section 6.3): every submitted
  /// version is also appended there, and recover() reloads state after a
  /// restart. Not owned; may be null (in-memory only).
  void attach_metadata_store(MetadataStore* store);

  /// Rebuild the in-memory version catalogue from the attached store.
  [[nodiscard]] Status recover();

  // ---- Job objects & scheduling ----

  /// Register a job object; returns its ID.
  std::uint64_t define_job(std::string client_name, std::string dataset_name,
                           std::uint32_t schedule_period_days = 1);

  [[nodiscard]] std::optional<JobSpec> job(std::uint64_t job_id) const;
  [[nodiscard]] std::vector<JobSpec> jobs_due_on_day(std::uint32_t day) const;

  /// Least-loaded assignment of a job run to one of `server_count`
  /// servers; load = logical bytes routed to each server so far. Servers
  /// marked unreachable are skipped unless every server is (then the
  /// plain least-loaded answer stands — the caller will fail loudly).
  [[nodiscard]] std::size_t assign_server(std::uint64_t job_id,
                                          std::uint64_t expected_bytes,
                                          std::size_t server_count);

  /// Health bookkeeping, fed by the cluster's transport layer: a degraded
  /// dedup-2 round marks the peers it could not reach, and a completed
  /// round clears the marks (every exchange succeeded).
  void mark_unreachable(std::size_t server);
  void mark_reachable(std::size_t server);
  [[nodiscard]] bool is_unreachable(std::size_t server) const;

  /// Round-boundary probe, the flip side of mark_unreachable (which would
  /// otherwise exclude a server from assignment forever): re-admit every
  /// marked server `reachable` says the transport can talk to again.
  /// Retired servers are never re-admitted.
  void probe_reachability(std::size_t server_count,
                          const std::function<bool(std::size_t)>& reachable);
  [[nodiscard]] std::vector<std::size_t> unreachable_servers() const;

  /// Permanent removal: a drained server leaves the fleet for good. It is
  /// skipped by assignment and never re-admitted by probe_reachability —
  /// unlike mark_unreachable, which models a transient outage.
  void retire_server(std::size_t server);
  [[nodiscard]] bool is_retired(std::size_t server) const;

  // ---- Metadata manager ----

  /// Record a completed job version (called by the backup server's File
  /// Store at the end of dedup-1). When a metadata store is attached the
  /// record must reach it before the version is catalogued — a version
  /// that is acknowledged but not durable would be unrestorable after a
  /// restart, so the append failure is the caller's failure.
  [[nodiscard]] Status submit_version(JobVersionRecord record);

  [[nodiscard]] std::optional<JobVersionRecord> version(
      std::uint64_t job_id, std::uint32_t version) const;
  [[nodiscard]] std::optional<JobVersionRecord> latest_version(
      std::uint64_t job_id) const;
  [[nodiscard]] std::uint32_t version_count(std::uint64_t job_id) const;

  /// Next version number for a new run of this job (max existing + 1, so
  /// retired versions never cause number reuse).
  [[nodiscard]] std::uint32_t next_version(std::uint64_t job_id) const;

  /// Retire a version (expired retention): removed from the catalogue and
  /// tombstoned in the metadata store. Its chunks become garbage unless
  /// shared; reclaiming them is the garbage collector's job (core/gc.hpp).
  [[nodiscard]] Status drop_version(std::uint64_t job_id,
                                    std::uint32_t version);

  /// Every live version across every job (the GC mark set source).
  [[nodiscard]] std::vector<JobVersionRecord> all_versions() const;

  // ---- Retention & maintenance scheduling ----

  [[nodiscard]] const RetentionPolicy& retention() const noexcept {
    return config_.retention;
  }

  /// Advance the director's simulated-day clock. submit_version stamps
  /// records whose backup_day is unset with the current day, so schedulers
  /// only need to keep this in step with the days they drive.
  void set_current_day(std::uint32_t day);
  [[nodiscard]] std::uint32_t current_day() const;

  /// (job_id, version) pairs the retention policy expires as of `today`,
  /// oldest first. Pure query — dropping them (and reclaiming their
  /// chunks) is the MaintenanceJob's move, so a crashed maintenance run
  /// simply reports the same versions again.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint32_t>>
  expired_versions(std::uint32_t today) const;

  /// Director-driven maintenance cadence: true once per
  /// maintenance_period_days. note_maintenance records a completed round.
  [[nodiscard]] bool maintenance_due(std::uint32_t day) const;
  void note_maintenance(std::uint32_t day);

  /// Filtering fingerprints for a job run: the full fingerprint sequence
  /// of the chain's previous version (empty for the first run).
  [[nodiscard]] std::vector<Fingerprint> filtering_fingerprints(
      std::uint64_t job_id) const;

  /// Total logical bytes across all recorded versions.
  [[nodiscard]] std::uint64_t total_logical_bytes() const;

 private:
  mutable std::mutex mutex_;
  DirectorConfig config_;
  std::uint32_t current_day_ = 0;
  std::uint32_t last_maintenance_day_ = 0;
  bool maintenance_ran_ = false;
  std::vector<JobSpec> jobs_;
  std::map<std::uint64_t, std::vector<JobVersionRecord>> versions_;
  std::vector<std::uint64_t> server_load_;
  std::set<std::size_t> unreachable_servers_;
  std::set<std::size_t> retired_servers_;
  std::uint64_t next_job_id_ = 1;
  MetadataStore* metadata_store_ = nullptr;
};

}  // namespace debar::core
