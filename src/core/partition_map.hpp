// Epoch-versioned ownership map: which server holds each index partition.
//
// DEBAR routes a fingerprint to index partition fp.prefix_bits(w) and, since
// the replication PR, keeps a second copy of every partition on another
// server. Before this map existed the placement was implicit modulo
// arithmetic re-derived at every call site (backup on server (p+1) mod 2^w,
// replica part (k-1) mod 2^w); that breaks down the moment the fleet grows
// or shrinks, because after a live w -> w+1 split or a server drain the
// placement is an explicit permutation that no closed formula reproduces.
//
// PartitionMap is the single source of truth: for each partition it names an
// ordered pair of copies (copies[0] is the preferred serving copy, copies[1]
// the backup), each copy naming a server slot and whether that server serves
// the partition through its primary ChunkStore index or through an attached
// IndexPartReplica. A monotonically increasing epoch versions the map; wire
// batches carry the epoch so a node holding a stale map rejects traffic from
// the future (and vice versa) instead of silently mis-routing fingerprints.
//
// Transitions (each returns a NEW map with epoch + 1; the cluster applies it
// with prepare/commit semantics so a crashed migration leaves the old map
// and its images untouched):
//   split()        w -> w+1: every partition p splits into 2p (stays on the
//                  old primary's ChunkStore) and 2p+1 (ChunkStore of brand-new
//                  server slot m+p, m = old server count). Backups rotate:
//                  the backup of partition q is the primary server of
//                  partition (q+1) mod 2m, holding it as a replica. Splitting
//                  identity(0) yields exactly identity(1); at larger widths
//                  the result is a permutation of the identity layout, which
//                  is why clusters must be constructible from an explicit map.
//   drained(s)     server slot s leaves: for every partition it held, the
//                  surviving copy is promoted to copies[0] (keeping its
//                  via_store flag) and a fresh replica is placed on the
//                  least-loaded live server (lowest slot id on ties, never
//                  the survivor). The slot stays allocated but not live.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.hpp"
#include "common/types.hpp"

namespace debar::core {

/// One placement of a partition: which server slot holds it and whether that
/// server serves it via its primary ChunkStore index (via_store) or via an
/// attached IndexPartReplica.
struct PartitionCopy {
  std::size_t server = 0;
  bool via_store = true;

  friend bool operator==(const PartitionCopy&, const PartitionCopy&) = default;
};

class PartitionMap {
 public:
  /// Default map is empty (no partitions); Cluster treats it as "build the
  /// identity layout for the configured routing width".
  PartitionMap() = default;

  /// The classic DEBAR layout at width w: 2^w partitions, partition p served
  /// by server p's ChunkStore with a replica on server (p+1) mod 2^w. At
  /// w == 0 there is a single unreplicated partition.
  static PartitionMap identity(unsigned routing_bits);

  // The historical closed-form placement helpers, consolidated here from
  // their former scattered copies. Identity maps obey them; post-transition
  // maps do not, which is the whole point of carrying the map explicitly.
  /// Server holding the backup copy of partition `part` in an identity map.
  static constexpr std::size_t backup_of(std::size_t part,
                                         std::size_t server_count) noexcept {
    return server_count < 2 ? part : (part + 1) % server_count;
  }
  /// Inverse: the partition whose backup lands on `server` in an identity map.
  static constexpr std::size_t replica_part_of(
      std::size_t server, std::size_t server_count) noexcept {
    return server_count < 2 ? server
                            : (server + server_count - 1) % server_count;
  }

  [[nodiscard]] unsigned routing_bits() const noexcept { return routing_bits_; }
  [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::size_t part_count() const noexcept {
    return copies_.size();
  }
  /// Total server slots ever allocated (live or drained). Slot index ==
  /// endpoint id == Cluster::server(k) index.
  [[nodiscard]] std::size_t server_slots() const noexcept {
    return live_.size();
  }
  [[nodiscard]] bool is_live(std::size_t slot) const noexcept {
    return slot < live_.size() && live_[slot] != 0;
  }
  [[nodiscard]] std::size_t live_count() const noexcept;
  /// True when every partition has two copies on distinct servers.
  [[nodiscard]] bool replicated() const noexcept { return replicated_; }
  [[nodiscard]] bool empty() const noexcept { return copies_.empty(); }

  /// Partition owning fingerprint `fp` (its first routing_bits bits).
  [[nodiscard]] std::size_t owner_of(const Fingerprint& fp) const noexcept {
    return static_cast<std::size_t>(fp.prefix_bits(routing_bits_));
  }

  /// Copy `which` (0 = preferred, 1 = backup) of partition `part`. In an
  /// unreplicated map both indices name the same copy.
  [[nodiscard]] const PartitionCopy& copy(std::size_t part,
                                          std::size_t which) const {
    return copies_[part][replicated_ ? which : 0];
  }
  [[nodiscard]] std::size_t copy_count() const noexcept {
    return replicated_ ? 2 : 1;
  }

  /// Sorted, deduplicated list of partitions with a copy on server `slot`.
  [[nodiscard]] std::vector<std::size_t> parts_hosted_by(
      std::size_t slot) const;

  /// The copy of `part` hosted on `slot`, or nullptr if none is.
  [[nodiscard]] const PartitionCopy* copy_on(std::size_t part,
                                             std::size_t slot) const;

  [[nodiscard]] Result<PartitionMap> split() const;
  [[nodiscard]] Result<PartitionMap> drained(std::size_t slot) const;

  friend bool operator==(const PartitionMap&, const PartitionMap&) = default;

 private:
  unsigned routing_bits_ = 0;
  std::uint32_t epoch_ = 0;
  bool replicated_ = false;
  std::vector<std::array<PartitionCopy, 2>> copies_;
  std::vector<char> live_;  // per slot; char so the vector stays addressable
};

}  // namespace debar::core
