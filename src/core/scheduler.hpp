// Backup scheduler: the director's job-execution loop (Section 3.1).
//
// Job objects carry a schedule ("daily at 1.05am" in the paper; a day
// period here). The scheduler walks simulated days: it collects the jobs
// due, assigns each to the least-loaded backup server, drives the
// client's BackupEngine against that server's File Store (dedup-1), and
// initiates dedup-2 when the accumulated undetermined fingerprints cross
// a threshold — the director's "monitor the backup servers; when
// necessary, initiate a dedup-2 job" role.
//
// Two backends: a vector of independent full-index servers (skip_bits ==
// 0), or a core::Cluster whose shards coordinate dedup-2 through the
// five-phase wire protocol (the serial twin of the concurrent
// IngestService path, DESIGN.md §5l).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/result.hpp"
#include "core/backup_engine.hpp"
#include "core/backup_server.hpp"
#include "core/director.hpp"

namespace debar::core {

struct SchedulerConfig {
  /// Initiate dedup-2 on a server once this many undetermined
  /// fingerprints have accumulated there.
  std::uint64_t dedup2_trigger = 16384;
  chunking::CdcParams cdc{};
  /// Options applied to every scheduled backup run (e.g. the file-level
  /// incremental pre-filter).
  BackupOptions backup{};
};

struct DayReport {
  std::uint32_t day = 0;
  /// u64, not u32: callers aggregate DayReports across simulated horizons
  /// (fleet-scale benches sum years of daily runs), and the narrower
  /// counters silently wrapped. Every other report struct
  /// (MaintenanceReport, TransportStats, FileStoreStats) is already
  /// all-u64; regression-audited in scheduler_test.
  std::uint64_t jobs_run = 0;
  std::uint64_t logical_bytes = 0;
  std::uint64_t transferred_bytes = 0;
  std::uint64_t dedup2_rounds = 0;
  std::uint64_t new_chunks = 0;
};

class Cluster;

class BackupScheduler {
 public:
  /// `provider(job, day)` supplies the dataset a client would read for a
  /// run of `job` on `day` (the dataset attribute of the job object).
  using DatasetProvider =
      std::function<Result<Dataset>(const JobSpec&, std::uint32_t)>;

  /// Independent full-index servers (skip_bits == 0). The vector is
  /// re-sorted by server id: the director's least-loaded assignment
  /// breaks ties toward the lowest *index*, and without a pinned order
  /// the index -> server mapping (and therefore container layout) would
  /// silently depend on the caller's construction order.
  BackupScheduler(Director* director, std::vector<BackupServer*> servers,
                  SchedulerConfig config = {});

  /// Cluster twin: the same serial job loop over a 2^w cluster's shards
  /// (slot order, which is server-id order by construction). Dedup-2 runs
  /// as cluster-wide five-phase rounds instead of per-server jobs — this
  /// is the serial reference the concurrent IngestService differential
  /// (DESIGN.md §5l) compares against.
  explicit BackupScheduler(Cluster* cluster, SchedulerConfig config = {});

  /// Run every job due on `day`, then initiate dedup-2 where triggered.
  [[nodiscard]] Result<DayReport> run_day(std::uint32_t day,
                                          const DatasetProvider& provider);

  /// End-of-window flush: dedup-2 with forced SIU on every server.
  [[nodiscard]] Status finalize();

 private:
  [[nodiscard]] BackupEngine& engine_for(const std::string& client);

  Director* director_;
  std::vector<BackupServer*> servers_;
  /// Non-null in cluster-twin mode: dedup-2 is a cluster round.
  Cluster* cluster_ = nullptr;
  SchedulerConfig config_;
  std::map<std::string, std::unique_ptr<BackupEngine>> engines_;
};

}  // namespace debar::core
