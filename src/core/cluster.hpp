// Multi-server DEBAR cluster: PSIL / PSIU (Section 5.2, Figure 5).
//
// 2^w backup servers each own one disk-index part (fingerprints whose
// first w bits equal the server number) plus their own chunk log and
// container stream. A cluster dedup-2 round is five barrier phases:
//
//   A. exchange     each server partitions its undetermined fingerprints
//                   by the first w bits and ships each subset to its
//                   index-part owner;
//   B. PSIL         every owner runs SIL over its part concurrently and
//                   resolves multi-origin queries to a single designated
//                   storer (the cross-stream analogue of the checking-
//                   fingerprint mechanism — without it two servers would
//                   both store a chunk they share);
//   C. results      lookup results return to their origins;
//   D. storing      every origin replays its chunk log and containers the
//                   chunks PSIL declared new, in parallel;
//   E. PSIU         <fingerprint, containerID> entries route back to the
//                   part owners, which register them — immediately into
//                   the pending (checking) set, and into the on-disk index
//                   when SIU is due or forced.
//
// Phases are barriers, so per-phase elapsed time is the maximum of the
// participating servers' modeled device times (plus the repository's
// busiest node during storing).
//
// Every inter-server exchange travels as a typed net::Message through a
// net::Transport: the fingerprints, verdicts and index entries are
// serialized, framed, and metered through both endpoints' NIC models at
// their actual wire size.
//
// Replication (DESIGN.md §5g): with two or more servers every index part
// has a backup copy on server (p + 1) mod 2^w (an IndexPartReplica).
// Phase E dual-writes both copies before the round commits; phase A/B
// and restore-locates fail over to the backup when the primary is dark.
// A single unreachable server therefore degrades a round — its partition
// is served by the surviving copy, its own batches are excluded, its
// undetermined fingerprints are restored — instead of aborting it. The
// all-or-nothing abort (undetermined restored, routed entries deferred,
// zero index mutation) remains for phase C/D deaths (a mid-PSIL origin
// cannot be excised safely) and whenever BOTH copies of some partition
// are unreachable. The director is told which servers to skip for job
// assignment, and re-admits them when a round-start probe finds the
// transport reaches them again; entries a dark copy missed are re-sent
// from the surviving copy at that point (catch-up resync).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.hpp"
#include "core/backup_engine.hpp"
#include "core/backup_server.hpp"
#include "core/director.hpp"
#include "net/endpoint.hpp"
#include "net/transport_factory.hpp"
#include "storage/chunk_repository.hpp"

namespace debar::core {

struct ClusterConfig {
  /// w: the cluster runs 2^w backup servers.
  unsigned routing_bits = 2;
  /// Per-server template; index_params.skip_bits is overridden to w.
  BackupServerConfig server_config{};
  /// Storage nodes in the shared chunk repository.
  std::size_t repository_nodes = 4;
  sim::DiskProfile repository_profile = sim::DiskProfile::PaperRaid();
  /// Retransmission / receive-timeout budget for every cluster endpoint.
  net::RetryPolicy retry{};
  /// Wire-codec policy for every cluster endpoint (net/wire_codec). The
  /// default keeps the v1 wire — one frame per message, paper-model byte
  /// accounting — so existing parity anchors hold; benches and the codec
  /// tests opt in (e.g. net::WireCodecConfig::enabled()). Phases A, C and
  /// E use buffered sends, so with coalescing on each (sender, receiver)
  /// pair exchanges one jumbo frame per phase instead of one frame per
  /// batch.
  net::WireCodecConfig wire_codec{};
  /// How the cluster's wire is built: loopback (default when null),
  /// faulty-over-loopback, or sockets — one selection interface for every
  /// harness (see net/transport_factory.hpp). Shared so a test rig can
  /// keep a handle to the factory (e.g. FaultyTransportFactory::last).
  std::shared_ptr<net::TransportFactory> transport_factory;
  /// Observability/test hook: called at each run_dedup2 phase start
  /// ("A".."E", then "commit" immediately before index and pending-set
  /// mutation begins). The crash rig uses it to bracket the replicated
  /// commit window by device-op counts.
  std::function<void(const char*)> phase_hook;
};

struct ClusterDedup2Result {
  std::uint64_t undetermined = 0;
  std::uint64_t duplicates = 0;      // resolved on disk, pending, or multi-origin
  std::uint64_t new_chunks = 0;
  std::uint64_t new_bytes = 0;
  bool ran_siu = false;
  double exchange_seconds = 0.0;  // phases A + C (network)
  double sil_seconds = 0.0;       // phase B (max over owners)
  double store_seconds = 0.0;     // phase D (max of log replay, repo node)
  double siu_seconds = 0.0;       // phase E (max over owners)

  /// Degraded-round bookkeeping: partitions served by their backup copy
  /// this round, and the servers the round excluded as unreachable.
  std::uint64_t failovers = 0;
  std::vector<std::size_t> skipped_servers;
  [[nodiscard]] bool degraded() const noexcept {
    return failovers > 0 || !skipped_servers.empty();
  }

  [[nodiscard]] double total_seconds() const noexcept {
    return exchange_seconds + sil_seconds + store_seconds + siu_seconds;
  }
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  [[nodiscard]] std::size_t server_count() const noexcept {
    return servers_.size();
  }
  [[nodiscard]] BackupServer& server(std::size_t k) noexcept {
    return *servers_[k];
  }
  [[nodiscard]] Director& director() noexcept { return director_; }
  [[nodiscard]] storage::ChunkRepository& repository() noexcept {
    return repository_;
  }

  /// The transport every exchange rides on (outermost decorator).
  [[nodiscard]] net::Transport& transport() noexcept { return *transport_; }
  /// Cumulative frame/byte counters from the stack's single meter.
  [[nodiscard]] net::TransportStats transport_stats() const {
    return transport_->meter().stats();
  }
  /// Endpoint id of the restore-stream client (one past the servers).
  [[nodiscard]] net::EndpointId client_id() const noexcept {
    return static_cast<net::EndpointId>(servers_.size());
  }

  /// Index-part owner of a fingerprint: its first w bits.
  [[nodiscard]] std::size_t owner_of(const Fingerprint& fp) const noexcept {
    return config_.routing_bits == 0
               ? 0
               : static_cast<std::size_t>(fp.prefix_bits(config_.routing_bits));
  }

  /// Run one parallel dedup-2 round across all servers.
  [[nodiscard]] Result<ClusterDedup2Result> run_dedup2(bool force_siu = false);

  /// Restore-path chunk read: locate on the part owner, read and cache on
  /// the serving server.
  [[nodiscard]] Result<std::vector<Byte>> read_chunk(std::size_t via_server,
                                                     const Fingerprint& fp);

  /// Restore a whole job version through `via_server`.
  [[nodiscard]] Result<Dataset> restore(std::uint64_t job_id,
                                        std::uint32_t version,
                                        std::size_t via_server);

  /// Reset every simulated clock (between measurement windows).
  void reset_clocks();

 private:
  /// Re-ship entries a recovered copy missed during degraded commits:
  /// the surviving copy of each owed partition sends them over the wire
  /// as a normal IndexEntryBatch. Runs at every round start; anything
  /// still undeliverable stays owed.
  void deliver_catch_up();
  ClusterConfig config_;
  Director director_;
  storage::ChunkRepository repository_;
  // Transport before servers/client endpoint: endpoints hold raw transport
  // pointers, so they must be destroyed first (reverse declaration order).
  std::unique_ptr<net::Transport> transport_;
  std::unique_ptr<net::Endpoint> client_endpoint_;
  std::vector<std::unique_ptr<BackupServer>> servers_;
  /// Entries routed in a round whose PSIU never committed (phase E abort):
  /// re-shipped by their origin on the next round, so the index stays
  /// all-or-nothing per round without losing entries.
  std::vector<std::vector<IndexEntry>> deferred_entries_;
  /// Entries committed on a partition's surviving copy while the other
  /// copy's holder was dark: catch_up_[server][part], drained by
  /// deliver_catch_up once the holder is reachable again.
  std::vector<std::vector<std::vector<IndexEntry>>> catch_up_;
};

}  // namespace debar::core
