// Multi-server DEBAR cluster: PSIL / PSIU (Section 5.2, Figure 5).
//
// 2^w backup servers each own one disk-index part (fingerprints whose
// first w bits equal the server number) plus their own chunk log and
// container stream. A cluster dedup-2 round is five barrier phases:
//
//   A. exchange     each server partitions its undetermined fingerprints
//                   by the first w bits and ships each subset to its
//                   index-part owner;
//   B. PSIL         every owner runs SIL over its part concurrently and
//                   resolves multi-origin queries to a single designated
//                   storer (the cross-stream analogue of the checking-
//                   fingerprint mechanism — without it two servers would
//                   both store a chunk they share);
//   C. results      lookup results return to their origins;
//   D. storing      every origin replays its chunk log and containers the
//                   chunks PSIL declared new, in parallel;
//   E. PSIU         <fingerprint, containerID> entries route back to the
//                   part owners, which register them — immediately into
//                   the pending (checking) set, and into the on-disk index
//                   when SIU is due or forced.
//
// Phases are barriers, so per-phase elapsed time is the maximum of the
// participating servers' modeled device times (plus the repository's
// busiest node during storing).
//
// Every inter-server exchange travels as a typed net::Message through a
// net::Transport: the fingerprints, verdicts and index entries are
// serialized, framed, and metered through both endpoints' NIC models at
// their actual wire size.
//
// Replication (DESIGN.md §5g) and elastic ownership (DESIGN.md §5j):
// partition placement — which server serves each index part, through its
// ChunkStore or through an IndexPartReplica — lives in an epoch-versioned
// core::PartitionMap. Identity maps reproduce the classic layout (backup
// copy of part p on server (p + 1) mod 2^w); split()/drain() produce the
// post-transition permutations. Phase E dual-writes both copies before
// the round commits; phase A/B and restore-locates fail over to the
// other copy when the serving one is dark.
// A single unreachable server therefore degrades a round — its partition
// is served by the surviving copy, its own batches are excluded, its
// undetermined fingerprints are restored — instead of aborting it. The
// all-or-nothing abort (undetermined restored, routed entries deferred,
// zero index mutation) remains for phase C/D deaths (a mid-PSIL origin
// cannot be excised safely) and whenever BOTH copies of some partition
// are unreachable. The director is told which servers to skip for job
// assignment, and re-admits them when a round-start probe finds the
// transport reaches them again; entries a dark copy missed are re-sent
// from the surviving copy at that point (catch-up resync).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.hpp"
#include "core/backup_engine.hpp"
#include "core/backup_server.hpp"
#include "core/director.hpp"
#include "core/partition_map.hpp"
#include "net/endpoint.hpp"
#include "net/transport_factory.hpp"
#include "storage/chunk_repository.hpp"

namespace debar::core {

struct ClusterConfig {
  /// w: the cluster runs 2^w backup servers.
  unsigned routing_bits = 2;
  /// Explicit partition placement. Empty (the default) means "build the
  /// identity layout for routing_bits". Non-empty maps override
  /// routing_bits entirely — this is how a differential twin is born at
  /// the exact topology an elastically grown cluster ended up with
  /// (post-split/drain maps are permutations no identity layout matches).
  PartitionMap partition_map{};
  /// Per-server template; index_params.skip_bits is overridden to w.
  BackupServerConfig server_config{};
  /// Director policy (retention, maintenance cadence) for the cluster's
  /// embedded director.
  DirectorConfig director_config{};
  /// Storage nodes in the shared chunk repository.
  std::size_t repository_nodes = 4;
  sim::DiskProfile repository_profile = sim::DiskProfile::PaperRaid();
  /// Retransmission / receive-timeout budget for every cluster endpoint.
  net::RetryPolicy retry{};
  /// Wire-codec policy for every cluster endpoint (net/wire_codec). The
  /// default keeps the v1 wire — one frame per message, paper-model byte
  /// accounting — so existing parity anchors hold; benches and the codec
  /// tests opt in (e.g. net::WireCodecConfig::enabled()). Phases A, C and
  /// E use buffered sends, so with coalescing on each (sender, receiver)
  /// pair exchanges one jumbo frame per phase instead of one frame per
  /// batch.
  net::WireCodecConfig wire_codec{};
  /// How the cluster's wire is built: loopback (default when null),
  /// faulty-over-loopback, or sockets — one selection interface for every
  /// harness (see net/transport_factory.hpp). Shared so a test rig can
  /// keep a handle to the factory (e.g. FaultyTransportFactory::last).
  std::shared_ptr<net::TransportFactory> transport_factory;
  /// Observability/test hook: called at each run_dedup2 phase start
  /// ("A".."E", then "commit" immediately before index and pending-set
  /// mutation begins). The crash rig uses it to bracket the replicated
  /// commit window by device-op counts.
  std::function<void(const char*)> phase_hook;
};

struct ClusterDedup2Result {
  std::uint64_t undetermined = 0;
  std::uint64_t duplicates = 0;      // resolved on disk, pending, or multi-origin
  std::uint64_t new_chunks = 0;
  std::uint64_t new_bytes = 0;
  bool ran_siu = false;
  double exchange_seconds = 0.0;  // phases A + C (network)
  double sil_seconds = 0.0;       // phase B (max over owners)
  double store_seconds = 0.0;     // phase D (max of log replay, repo node)
  double siu_seconds = 0.0;       // phase E (max over owners)

  /// Degraded-round bookkeeping: partitions served by their backup copy
  /// this round, and the servers the round excluded as unreachable.
  std::uint64_t failovers = 0;
  std::vector<std::size_t> skipped_servers;
  [[nodiscard]] bool degraded() const noexcept {
    return failovers > 0 || !skipped_servers.empty();
  }

  [[nodiscard]] double total_seconds() const noexcept {
    return exchange_seconds + sil_seconds + store_seconds + siu_seconds;
  }
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  [[nodiscard]] std::size_t server_count() const noexcept {
    return servers_.size();
  }
  [[nodiscard]] BackupServer& server(std::size_t k) noexcept {
    return *servers_[k];
  }
  [[nodiscard]] Director& director() noexcept { return director_; }
  [[nodiscard]] storage::ChunkRepository& repository() noexcept {
    return repository_;
  }

  /// The transport every exchange rides on (outermost decorator).
  [[nodiscard]] net::Transport& transport() noexcept { return *transport_; }
  /// Cumulative frame/byte counters from the stack's single meter.
  [[nodiscard]] net::TransportStats transport_stats() const {
    return transport_->meter().stats();
  }
  /// Endpoint id of the restore-stream client. Fixed high id, so servers
  /// appended by a split can keep endpoint id == server slot.
  [[nodiscard]] net::EndpointId client_id() const noexcept {
    return net::kClientEndpointId;
  }

  /// The live partition map (placement + epoch).
  [[nodiscard]] const PartitionMap& partition_map() const noexcept {
    return map_;
  }
  [[nodiscard]] std::uint32_t epoch() const noexcept { return map_.epoch(); }

  /// Index-part owner of a fingerprint: its first routing_bits bits.
  [[nodiscard]] std::size_t owner_of(const Fingerprint& fp) const noexcept {
    return map_.owner_of(fp);
  }

  /// Online elastic repartitioning (DESIGN.md §5j), between rounds only.
  ///
  /// split(): grow the cluster w -> w+1. Every part p splits into 2p and
  /// 2p+1; the odd halves' primaries land on newly added servers, and
  /// every part gets a fresh backup copy per the post-split map. All
  /// fallible work (index extraction, wire shipment, staged rebuilds)
  /// happens on freshly minted devices before a pure in-memory commit
  /// swaps the map and bumps the epoch — a crash mid-prepare leaves the
  /// old topology byte-intact.
  [[nodiscard]] Status split();

  /// drain(slot): remove a server from the fleet. Both copies it hosts
  /// are handed off (survivor promoted to primary, replacement replica
  /// staged on the least-loaded live server) before the slot is retired.
  /// Works while the slot is dark: migration sources from the surviving
  /// copies, never the draining server.
  [[nodiscard]] Status drain(std::size_t slot);

  /// Run one parallel dedup-2 round across all servers.
  [[nodiscard]] Result<ClusterDedup2Result> run_dedup2(bool force_siu = false);

  // ---- Maintenance protocol (DESIGN.md §5k) ----
  // core::MaintenanceJob drives these between rounds. The shape mirrors
  // split()/drain(): every fallible step (wire exchanges, staged index
  // builds on freshly minted devices) happens before a pure in-memory
  // commit, so a crash anywhere in the prepare window leaves every
  // committed image byte-identical to a never-attempted twin.

  /// Quiescence gate. Every violated precondition — pending SIU on any
  /// copy, deferred phase-E entries, owed catch-up, an unreachable live
  /// slot — is transient (a forced round / heal clears it), so the error
  /// is the retryable kBusy rather than the migration gate's permanent-
  /// looking codes.
  [[nodiscard]] Status maintenance_preconditions();

  /// Mark exchange for one partition: ship its sorted live fingerprints
  /// to the primary host (GcMarkRequest) and return the live
  /// <fp, container> entries the host classified out of its serving copy
  /// (GcMarkReply). Epoch-fenced both ways.
  [[nodiscard]] Result<std::vector<IndexEntry>> maintenance_mark(
      std::size_t part, std::vector<Fingerprint> live_fps);

  /// Install exchange for one partition: ship the canonical post-GC entry
  /// stream to every copy host (GcInstall) and stage a rebuilt index
  /// image there. Both copies are rebuilt from the same sorted stream,
  /// so their images are byte-identical — this is what closes the
  /// GC-era replica drift.
  [[nodiscard]] Status maintenance_install(std::size_t part,
                                           std::vector<IndexEntry> sorted);

  /// Swap every staged image in (rebase the primary's ChunkStore index /
  /// adopt the rebuilt replica). Pure in-memory, cannot fail; the map
  /// epoch does not advance because placement did not change.
  void maintenance_commit_indexes();

  /// Drop staged maintenance images (failed prepare).
  void maintenance_abort();

  /// Restore-path chunk read: locate on the part owner, read and cache on
  /// the serving server.
  [[nodiscard]] Result<std::vector<Byte>> read_chunk(std::size_t via_server,
                                                     const Fingerprint& fp);

  /// Restore a whole job version through `via_server`.
  [[nodiscard]] Result<Dataset> restore(std::uint64_t job_id,
                                        std::uint32_t version,
                                        std::size_t via_server);

  /// Reset every simulated clock (between measurement windows).
  void reset_clocks();

 private:
  /// Re-ship entries a recovered copy missed during degraded commits:
  /// the surviving copy of each owed partition sends them over the wire
  /// as a normal IndexEntryBatch. Runs at every round start; anything
  /// still undeliverable stays owed.
  void deliver_catch_up();

  // ---- Elastic repartitioning internals ----
  /// A migration only runs from a quiescent, fully-consistent cluster:
  /// no deferred phase-E entries, no catch-up owed, every live slot
  /// transport-reachable, and zero pending entries on every live copy
  /// (callers run a forced-SIU round first, so the on-disk indexes are
  /// the whole truth and the rebuilt copies stay byte-identical to a
  /// cluster born at the target topology).
  [[nodiscard]] Status migration_preconditions();
  /// Same checks with one slot exempted (the slot a drain is removing:
  /// its copies are sourced from the survivors, never consulted).
  [[nodiscard]] Status migration_preconditions_excluding(std::size_t exclude);
  /// Move entries sender -> target as an epoch-stamped IndexEntryBatch
  /// over the wire (skipped when sender == target: no self-frames).
  [[nodiscard]] Result<std::vector<IndexEntry>> ship_entries(
      std::size_t sender, std::size_t target,
      std::vector<IndexEntry> entries, std::uint32_t epoch);
  /// Fresh DiskIndex on `host`'s index device at `params`, loaded with
  /// one sorted bulk insert (same capacity-scaling retry as SIU).
  [[nodiscard]] Result<index::DiskIndex> build_staged_index(
      BackupServer& host, const index::DiskIndexParams& params,
      std::vector<IndexEntry> sorted);
  /// The server object for a slot, whether committed or still staged.
  [[nodiscard]] BackupServer& server_ref(std::size_t slot);
  /// Ensure BackupServer objects (with registered endpoints) exist for
  /// every slot of `target` beyond the committed fleet. Kept across
  /// failed prepare attempts: endpoints register once.
  [[nodiscard]] Status ensure_staged_servers(const PartitionMap& target);

  ClusterConfig config_;
  PartitionMap map_;
  Director director_;
  storage::ChunkRepository repository_;
  // Transport before servers/client endpoint: endpoints hold raw transport
  // pointers, so they must be destroyed first (reverse declaration order).
  std::unique_ptr<net::Transport> transport_;
  std::unique_ptr<net::Endpoint> client_endpoint_;
  std::vector<std::unique_ptr<BackupServer>> servers_;
  /// Servers created for a split that has not committed yet (slot index =
  /// servers_.size() + position). Their endpoints are registered at
  /// creation and survive failed prepare attempts; commit moves them into
  /// servers_.
  std::vector<std::unique_ptr<BackupServer>> staged_servers_;
  /// Entries routed in a round whose PSIU never committed (phase E abort):
  /// re-shipped by their origin on the next round, so the index stays
  /// all-or-nothing per round without losing entries.
  std::vector<std::vector<IndexEntry>> deferred_entries_;
  /// Entries committed on a partition's surviving copy while the other
  /// copy's holder was dark: catch_up_[server][part], drained by
  /// deliver_catch_up once the holder is reachable again.
  std::vector<std::vector<std::vector<IndexEntry>>> catch_up_;

  /// Rebuilt index images a maintenance prepare staged, waiting for
  /// maintenance_commit_indexes / maintenance_abort.
  struct StagedIndexCopy {
    std::size_t part;
    std::size_t server;
    bool via_store;
    index::DiskIndex idx;
  };
  std::vector<StagedIndexCopy> maintenance_staged_;
};

}  // namespace debar::core
