// Multi-server DEBAR cluster: PSIL / PSIU (Section 5.2, Figure 5).
//
// 2^w backup servers each own one disk-index part (fingerprints whose
// first w bits equal the server number) plus their own chunk log and
// container stream. A cluster dedup-2 round is five barrier phases:
//
//   A. exchange     each server partitions its undetermined fingerprints
//                   by the first w bits and ships each subset to its
//                   index-part owner;
//   B. PSIL         every owner runs SIL over its part concurrently and
//                   resolves multi-origin queries to a single designated
//                   storer (the cross-stream analogue of the checking-
//                   fingerprint mechanism — without it two servers would
//                   both store a chunk they share);
//   C. results      lookup results return to their origins;
//   D. storing      every origin replays its chunk log and containers the
//                   chunks PSIL declared new, in parallel;
//   E. PSIU         <fingerprint, containerID> entries route back to the
//                   part owners, which register them — immediately into
//                   the pending (checking) set, and into the on-disk index
//                   when SIU is due or forced.
//
// Phases are barriers, so per-phase elapsed time is the maximum of the
// participating servers' modeled device times (plus the repository's
// busiest node during storing).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.hpp"
#include "core/backup_engine.hpp"
#include "core/backup_server.hpp"
#include "core/director.hpp"
#include "storage/chunk_repository.hpp"

namespace debar::core {

struct ClusterConfig {
  /// w: the cluster runs 2^w backup servers.
  unsigned routing_bits = 2;
  /// Per-server template; index_params.skip_bits is overridden to w.
  BackupServerConfig server_config{};
  /// Storage nodes in the shared chunk repository.
  std::size_t repository_nodes = 4;
  sim::DiskProfile repository_profile = sim::DiskProfile::PaperRaid();
};

struct ClusterDedup2Result {
  std::uint64_t undetermined = 0;
  std::uint64_t duplicates = 0;      // resolved on disk, pending, or multi-origin
  std::uint64_t new_chunks = 0;
  std::uint64_t new_bytes = 0;
  bool ran_siu = false;
  double exchange_seconds = 0.0;  // phases A + C (network)
  double sil_seconds = 0.0;       // phase B (max over owners)
  double store_seconds = 0.0;     // phase D (max of log replay, repo node)
  double siu_seconds = 0.0;       // phase E (max over owners)

  [[nodiscard]] double total_seconds() const noexcept {
    return exchange_seconds + sil_seconds + store_seconds + siu_seconds;
  }
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  [[nodiscard]] std::size_t server_count() const noexcept {
    return servers_.size();
  }
  [[nodiscard]] BackupServer& server(std::size_t k) noexcept {
    return *servers_[k];
  }
  [[nodiscard]] Director& director() noexcept { return director_; }
  [[nodiscard]] storage::ChunkRepository& repository() noexcept {
    return repository_;
  }

  /// Index-part owner of a fingerprint: its first w bits.
  [[nodiscard]] std::size_t owner_of(const Fingerprint& fp) const noexcept {
    return config_.routing_bits == 0
               ? 0
               : static_cast<std::size_t>(fp.prefix_bits(config_.routing_bits));
  }

  /// Run one parallel dedup-2 round across all servers.
  [[nodiscard]] Result<ClusterDedup2Result> run_dedup2(bool force_siu = false);

  /// Restore-path chunk read: locate on the part owner, read and cache on
  /// the serving server.
  [[nodiscard]] Result<std::vector<Byte>> read_chunk(std::size_t via_server,
                                                     const Fingerprint& fp);

  /// Restore a whole job version through `via_server`.
  [[nodiscard]] Result<Dataset> restore(std::uint64_t job_id,
                                        std::uint32_t version,
                                        std::size_t via_server);

  /// Reset every simulated clock (between measurement windows).
  void reset_clocks();

 private:
  ClusterConfig config_;
  Director director_;
  storage::ChunkRepository repository_;
  std::vector<std::unique_ptr<BackupServer>> servers_;
};

}  // namespace debar::core
