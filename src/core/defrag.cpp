#include "core/defrag.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace debar::core {

namespace {

/// Resolve each distinct fingerprint of the version to its container.
Result<std::unordered_map<Fingerprint, ContainerId, FingerprintHash>>
locate_all(const JobVersionRecord& record, ChunkStore& store) {
  std::unordered_map<Fingerprint, ContainerId, FingerprintHash> where;
  for (const FileRecord& f : record.files) {
    for (const Fingerprint& fp : f.chunk_fps) {
      if (where.contains(fp)) continue;
      Result<ContainerId> cid = store.locate(fp);
      if (!cid.ok()) return cid.error();
      where.emplace(fp, cid.value());
    }
  }
  return where;
}

FragmentationReport report_from(
    const JobVersionRecord& record,
    const std::unordered_map<Fingerprint, ContainerId, FingerprintHash>& where,
    const storage::ChunkRepository& repository) {
  FragmentationReport report;
  std::unordered_set<std::uint64_t> containers;
  std::unordered_set<std::size_t> nodes;

  std::uint64_t window_count = 0;
  double window_sum = 0;
  std::unordered_set<std::uint64_t> window;
  std::uint64_t in_window = 0;

  for (const FileRecord& f : record.files) {
    for (const Fingerprint& fp : f.chunk_fps) {
      ++report.chunks;
      const ContainerId cid = where.at(fp);
      containers.insert(cid.value);
      nodes.insert(repository.node_of(cid));
      window.insert(cid.value);
      if (++in_window == 1024) {
        window_sum += static_cast<double>(window.size());
        ++window_count;
        window.clear();
        in_window = 0;
      }
    }
  }
  if (in_window > 0) {
    window_sum += static_cast<double>(window.size()) * 1024.0 /
                  static_cast<double>(in_window);
    ++window_count;
  }
  report.containers_touched = containers.size();
  report.nodes_touched = nodes.size();
  report.containers_per_1k_chunks =
      window_count == 0 ? 0.0 : window_sum / static_cast<double>(window_count);
  return report;
}

}  // namespace

Result<FragmentationReport> analyze_fragmentation(
    const JobVersionRecord& record, ChunkStore& store,
    const storage::ChunkRepository& repository) {
  auto where = locate_all(record, store);
  if (!where.ok()) return where.error();
  return report_from(record, where.value(), repository);
}

Result<DefragResult> defragment_version(const JobVersionRecord& record,
                                        ChunkStore& store,
                                        storage::ChunkRepository& repository,
                                        const DefragOptions& options) {
  DefragResult result;
  auto where = locate_all(record, store);
  if (!where.ok()) return where.error();
  result.before = report_from(record, where.value(), repository);
  result.after = result.before;
  if (result.before.nodes_touched <= options.node_threshold) {
    return result;  // already compact
  }

  // Rewrite the version's chunks, in stream order (fresh SISL layout),
  // into containers pinned to the target node.
  std::unordered_map<Fingerprint, ContainerId, FingerprintHash> moved;
  storage::Container open(options.container_capacity);
  const auto seal = [&]() -> Status {
    if (open.chunk_count() == 0) return Status::Ok();
    const std::vector<storage::ChunkMeta> metas = open.metadata();
    const ContainerId id =
        repository.append(std::move(open), options.target_node);
    ++result.containers_written;
    for (const storage::ChunkMeta& m : metas) moved[m.fp] = id;
    open = storage::Container(options.container_capacity);
    return Status::Ok();
  };

  for (const FileRecord& f : record.files) {
    for (const Fingerprint& fp : f.chunk_fps) {
      if (moved.contains(fp)) continue;  // deduplicate within the version
      Result<std::vector<Byte>> chunk = store.read_chunk(fp);
      if (!chunk.ok()) return chunk.error();
      if (!open.try_append(fp,
                           ByteSpan(chunk.value().data(),
                                    chunk.value().size()))) {
        if (Status s = seal(); !s.ok()) return Error{s.code(), s.message()};
        const bool ok = open.try_append(
            fp, ByteSpan(chunk.value().data(), chunk.value().size()));
        if (!ok) {
          return Error{Errc::kInvalidArgument,
                       "chunk larger than an empty defrag container"};
        }
      }
      moved.emplace(fp, kNullContainer);  // patched at seal time
      ++result.chunks_rewritten;
    }
  }
  if (Status s = seal(); !s.ok()) return Error{s.code(), s.message()};

  // Re-map the index to the new containers in one sequential pass.
  std::vector<IndexEntry> updates;
  updates.reserve(moved.size());
  for (const auto& [fp, cid] : moved) updates.push_back({fp, cid});
  std::sort(updates.begin(), updates.end(),
            [](const IndexEntry& a, const IndexEntry& b) { return a.fp < b.fp; });
  std::uint64_t missing = 0;
  if (Status s = store.index().bulk_update(
          std::span<const IndexEntry>(updates), 1024, &missing);
      !s.ok()) {
    return Error{s.code(), s.message()};
  }
  // Fingerprints still pending SIU are re-mapped in the pending set.
  if (missing > 0) {
    store.add_pending(std::span<const IndexEntry>(updates));
  }

  for (auto& [fp, cid] : where.value()) {
    const auto it = moved.find(fp);
    if (it != moved.end()) cid = it->second;
  }
  result.after = report_from(record, where.value(), repository);
  return result;
}

}  // namespace debar::core
