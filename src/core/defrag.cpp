#include "core/defrag.hpp"

#include <unordered_map>

namespace debar::core {

namespace {

/// Chunk reads during a rewrite hit whole containers; a tiny cache keeps
/// a version's stream-order walk from re-parsing the same container per
/// chunk (consecutive chunks overwhelmingly share containers).
class ContainerReadCache {
 public:
  explicit ContainerReadCache(storage::ChunkRepository& repository)
      : repository_(repository) {}

  [[nodiscard]] Result<const storage::Container*> get(ContainerId id) {
    if (const auto it = cached_.find(id.value); it != cached_.end()) {
      return &it->second;
    }
    Result<storage::Container> read = repository_.read(id);
    if (!read.ok()) return read.error();
    if (cached_.size() >= kCapacity) cached_.clear();
    const auto [it, inserted] =
        cached_.emplace(id.value, std::move(read).value());
    return &it->second;
  }

 private:
  static constexpr std::size_t kCapacity = 8;
  storage::ChunkRepository& repository_;
  std::unordered_map<std::uint64_t, storage::Container> cached_;
};

}  // namespace

FragmentationReport measure_fragmentation(
    const JobVersionRecord& record, const LiveMap& live_map,
    const storage::ChunkRepository& repository) {
  FragmentationReport report;
  std::unordered_set<std::uint64_t> containers;
  std::unordered_set<std::size_t> nodes;

  std::uint64_t window_count = 0;
  double window_sum = 0;
  std::unordered_set<std::uint64_t> window;
  std::uint64_t in_window = 0;

  for (const FileRecord& f : record.files) {
    for (const Fingerprint& fp : f.chunk_fps) {
      const auto it = live_map.find(fp);
      if (it == live_map.end()) continue;  // caller verified at mark time
      ++report.chunks;
      const ContainerId cid = it->second;
      containers.insert(cid.value);
      nodes.insert(repository.node_of(cid));
      window.insert(cid.value);
      if (++in_window == 1024) {
        window_sum += static_cast<double>(window.size());
        ++window_count;
        window.clear();
        in_window = 0;
      }
    }
  }
  if (in_window > 0) {
    window_sum += static_cast<double>(window.size()) * 1024.0 /
                  static_cast<double>(in_window);
    ++window_count;
  }
  report.containers_touched = containers.size();
  report.nodes_touched = nodes.size();
  report.containers_per_1k_chunks =
      window_count == 0 ? 0.0 : window_sum / static_cast<double>(window_count);
  return report;
}

Result<LocalityRewrite> stage_locality_rewrite(
    const JobVersionRecord& record, storage::ChunkRepository& repository,
    LiveMap& live_map,
    std::unordered_set<Fingerprint, FingerprintHash>& already_placed,
    std::vector<StagedContainer>& staged, const LocalityOptions& options) {
  LocalityRewrite result;

  // Rewrite the version's chunks, in stream order (fresh SISL layout),
  // into staged containers pinned to the target node. Chunks a newer
  // version placed this round keep that placement.
  ContainerStager stager(repository, options.container_capacity,
                         options.target_node, staged, live_map);
  ContainerReadCache cache(repository);
  for (const FileRecord& f : record.files) {
    for (const Fingerprint& fp : f.chunk_fps) {
      if (!already_placed.insert(fp).second) continue;
      const auto it = live_map.find(fp);
      if (it == live_map.end()) {
        return Error{Errc::kCorrupt,
                     "live fingerprint missing from the live map during "
                     "locality rewrite"};
      }
      Result<const storage::Container*> container = cache.get(it->second);
      if (!container.ok()) return container.error();
      const std::optional<ByteSpan> chunk = container.value()->find(fp);
      if (!chunk.has_value()) {
        return Error{Errc::kCorrupt,
                     "live map points at a container missing the chunk"};
      }
      if (Status s = stager.add(fp, *chunk); !s.ok()) {
        return Error{s.code(), s.message()};
      }
      ++result.chunks_rewritten;
    }
  }
  result.containers_written = stager.finish();
  return result;
}

}  // namespace debar::core
