#include "core/director.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace debar::core {

Director::Director(DirectorConfig config) : config_(std::move(config)) {}

std::uint64_t Director::define_job(std::string client_name,
                                   std::string dataset_name,
                                   std::uint32_t schedule_period_days) {
  std::lock_guard lock(mutex_);
  JobSpec spec;
  spec.job_id = next_job_id_++;
  spec.client_name = std::move(client_name);
  spec.dataset_name = std::move(dataset_name);
  spec.schedule_period_days = std::max<std::uint32_t>(1, schedule_period_days);
  jobs_.push_back(spec);
  return spec.job_id;
}

std::optional<JobSpec> Director::job(std::uint64_t job_id) const {
  std::lock_guard lock(mutex_);
  for (const JobSpec& j : jobs_) {
    if (j.job_id == job_id) return j;
  }
  return std::nullopt;
}

std::vector<JobSpec> Director::jobs_due_on_day(std::uint32_t day) const {
  std::lock_guard lock(mutex_);
  std::vector<JobSpec> due;
  for (const JobSpec& j : jobs_) {
    if (day % j.schedule_period_days == 0) due.push_back(j);
  }
  return due;
}

std::size_t Director::assign_server(std::uint64_t /*job_id*/,
                                    std::uint64_t expected_bytes,
                                    std::size_t server_count) {
  std::lock_guard lock(mutex_);
  server_load_.resize(std::max(server_load_.size(), server_count), 0);
  // Least-loaded among reachable servers; if none is reachable, fall back
  // to least-loaded overall rather than inventing an answer.
  std::size_t best = server_count;
  for (std::size_t i = 0; i < server_count; ++i) {
    if (unreachable_servers_.contains(i) || retired_servers_.contains(i)) {
      continue;
    }
    if (best == server_count || server_load_[i] < server_load_[best]) best = i;
  }
  if (best == server_count) {
    // Nothing reachable: fall back to least-loaded overall rather than
    // inventing an answer, but still never hand work to a retired slot.
    for (std::size_t i = 0; i < server_count; ++i) {
      if (retired_servers_.contains(i)) continue;
      if (best == server_count || server_load_[i] < server_load_[best]) {
        best = i;
      }
    }
    if (best == server_count) best = 0;  // everything retired: degenerate
  }
  server_load_[best] += expected_bytes;
  return best;
}

void Director::mark_unreachable(std::size_t server) {
  std::lock_guard lock(mutex_);
  unreachable_servers_.insert(server);
}

void Director::mark_reachable(std::size_t server) {
  std::lock_guard lock(mutex_);
  unreachable_servers_.erase(server);
}

bool Director::is_unreachable(std::size_t server) const {
  std::lock_guard lock(mutex_);
  return unreachable_servers_.contains(server);
}

void Director::probe_reachability(
    std::size_t server_count,
    const std::function<bool(std::size_t)>& reachable) {
  // Snapshot first: the probe callback may take transport locks, which
  // must never nest inside mutex_.
  std::vector<std::size_t> marked;
  {
    std::lock_guard lock(mutex_);
    for (const std::size_t s : unreachable_servers_) {
      if (s < server_count && !retired_servers_.contains(s)) marked.push_back(s);
    }
  }
  for (const std::size_t s : marked) {
    if (reachable(s)) mark_reachable(s);
  }
}

std::vector<std::size_t> Director::unreachable_servers() const {
  std::lock_guard lock(mutex_);
  return {unreachable_servers_.begin(), unreachable_servers_.end()};
}

void Director::retire_server(std::size_t server) {
  std::lock_guard lock(mutex_);
  retired_servers_.insert(server);
  // A retired server is not "unreachable" — it is gone. Drop any transient
  // mark so degraded-round accounting never resurrects it.
  unreachable_servers_.erase(server);
}

bool Director::is_retired(std::size_t server) const {
  std::lock_guard lock(mutex_);
  return retired_servers_.contains(server);
}

void Director::attach_metadata_store(MetadataStore* store) {
  std::lock_guard lock(mutex_);
  metadata_store_ = store;
}

Status Director::recover() {
  std::lock_guard lock(mutex_);
  if (metadata_store_ == nullptr) {
    return {Errc::kInvalidArgument, "no metadata store attached"};
  }
  Result<std::vector<JobVersionRecord>> records = metadata_store_->load_all();
  if (!records.ok()) {
    return Status(records.error().code, records.error().message);
  }
  versions_.clear();
  std::uint64_t max_job = 0;
  for (JobVersionRecord& rec : records.value()) {
    max_job = std::max(max_job, rec.job_id);
    versions_[rec.job_id].push_back(std::move(rec));
  }
  next_job_id_ = std::max(next_job_id_, max_job + 1);
  return Status::Ok();
}

Status Director::submit_version(JobVersionRecord record) {
  std::lock_guard lock(mutex_);
  if (record.backup_day == 0) record.backup_day = current_day_;
  if (metadata_store_ != nullptr) {
    if (Status s = metadata_store_->append(record); !s.ok()) {
      // Keep the in-memory catalogue consistent with what we acknowledge:
      // the version is not recorded anywhere.
      DEBAR_LOG_ERROR("metadata store append failed: {}", s.to_string());
      return s;
    }
  }
  versions_[record.job_id].push_back(std::move(record));
  return Status::Ok();
}

std::optional<JobVersionRecord> Director::version(std::uint64_t job_id,
                                                  std::uint32_t version) const {
  std::lock_guard lock(mutex_);
  const auto it = versions_.find(job_id);
  if (it == versions_.end()) return std::nullopt;
  for (const JobVersionRecord& r : it->second) {
    if (r.version == version) return r;
  }
  return std::nullopt;
}

std::optional<JobVersionRecord> Director::latest_version(
    std::uint64_t job_id) const {
  std::lock_guard lock(mutex_);
  const auto it = versions_.find(job_id);
  if (it == versions_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

std::uint32_t Director::version_count(std::uint64_t job_id) const {
  std::lock_guard lock(mutex_);
  const auto it = versions_.find(job_id);
  return it == versions_.end() ? 0
                               : static_cast<std::uint32_t>(it->second.size());
}

std::uint32_t Director::next_version(std::uint64_t job_id) const {
  std::lock_guard lock(mutex_);
  const auto it = versions_.find(job_id);
  std::uint32_t max_version = 0;
  if (it != versions_.end()) {
    for (const JobVersionRecord& r : it->second) {
      max_version = std::max(max_version, r.version);
    }
  }
  return max_version + 1;
}

Status Director::drop_version(std::uint64_t job_id, std::uint32_t version) {
  std::lock_guard lock(mutex_);
  const auto it = versions_.find(job_id);
  if (it == versions_.end()) {
    return {Errc::kNotFound, format("job {} has no versions", job_id)};
  }
  const auto pos =
      std::find_if(it->second.begin(), it->second.end(),
                   [&](const JobVersionRecord& r) {
                     return r.version == version;
                   });
  if (pos == it->second.end()) {
    return {Errc::kNotFound,
            format("job {} version {} not recorded", job_id, version)};
  }
  it->second.erase(pos);
  if (metadata_store_ != nullptr) {
    if (Status s = metadata_store_->append_tombstone(job_id, version);
        !s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

std::vector<JobVersionRecord> Director::all_versions() const {
  std::lock_guard lock(mutex_);
  std::vector<JobVersionRecord> out;
  for (const auto& [job, records] : versions_) {
    out.insert(out.end(), records.begin(), records.end());
  }
  return out;
}

void Director::set_current_day(std::uint32_t day) {
  std::lock_guard lock(mutex_);
  current_day_ = std::max(current_day_, day);
}

std::uint32_t Director::current_day() const {
  std::lock_guard lock(mutex_);
  return current_day_;
}

std::vector<std::pair<std::uint64_t, std::uint32_t>>
Director::expired_versions(std::uint32_t today) const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::uint64_t, std::uint32_t>> expired;
  const RetentionPolicy& policy = config_.retention;
  if (policy.unbounded()) return expired;
  for (const auto& [job, records] : versions_) {
    if (records.empty()) continue;
    // Rank by version number, newest first; records arrive in submit
    // order but drop_version can leave holes, so sort explicitly.
    std::vector<const JobVersionRecord*> ranked;
    ranked.reserve(records.size());
    for (const JobVersionRecord& r : records) ranked.push_back(&r);
    std::sort(ranked.begin(), ranked.end(),
              [](const JobVersionRecord* a, const JobVersionRecord* b) {
                return a->version > b->version;
              });
    for (std::size_t rank = 0; rank < ranked.size(); ++rank) {
      const JobVersionRecord& r = *ranked[rank];
      if (rank == 0) continue;  // latest of the chain is never expired
      const bool kept_by_count =
          policy.keep_last > 0 && rank < policy.keep_last;
      const std::uint32_t age =
          today >= r.backup_day ? today - r.backup_day : 0;
      const bool kept_by_age = policy.keep_days > 0 && age <= policy.keep_days;
      if (!kept_by_count && !kept_by_age) {
        expired.emplace_back(job, r.version);
      }
    }
  }
  // Oldest first so reclamation frees the most-fragmented state first.
  std::sort(expired.begin(), expired.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second < b.second
                                          : a.first < b.first;
            });
  return expired;
}

bool Director::maintenance_due(std::uint32_t day) const {
  std::lock_guard lock(mutex_);
  if (config_.maintenance_period_days == 0) return false;
  if (!maintenance_ran_) return day >= config_.maintenance_period_days;
  return day >= last_maintenance_day_ + config_.maintenance_period_days;
}

void Director::note_maintenance(std::uint32_t day) {
  std::lock_guard lock(mutex_);
  maintenance_ran_ = true;
  last_maintenance_day_ = day;
}

std::vector<Fingerprint> Director::filtering_fingerprints(
    std::uint64_t job_id) const {
  std::lock_guard lock(mutex_);
  const auto it = versions_.find(job_id);
  if (it == versions_.end() || it->second.empty()) return {};
  return it->second.back().all_fingerprints();
}

std::uint64_t Director::total_logical_bytes() const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [job, records] : versions_) {
    for (const JobVersionRecord& r : records) total += r.logical_bytes;
  }
  return total;
}

}  // namespace debar::core
