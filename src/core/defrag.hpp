// Restore-locality compaction (Section 6.3, generalized).
//
// De-duplication shares chunks across files, so over time a job version's
// chunks spread over many containers on many storage nodes, degrading
// restore throughput. The paper: "DEBAR employs a defragmentation
// mechanism that automatically aggregates file chunks to one or few
// storage nodes, thus significantly reducing storage fragmentation and
// retaining high read throughput."
//
// This is the locality engine MaintenanceJob drives (core/maintenance.hpp
// is the public entry point). Unlike the original single-version rewrite
// it operates on the maintenance round's live map and stages its output:
// a fragmented version's chunks are re-sequenced in stream order into
// staged containers pinned to one storage node (the fresh-backup SISL
// layout), the live map is re-pointed, and nothing is published until the
// round commits. Ran newest-version-first across every live version, a
// chunk shared with an already-rewritten newer version stays where that
// version put it — the newest (most-restored) version gets the best
// layout and shared runs are not duplicated per version.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "common/result.hpp"
#include "core/gc.hpp"
#include "core/metadata.hpp"
#include "storage/chunk_repository.hpp"

namespace debar::core {

struct FragmentationReport {
  std::uint64_t chunks = 0;
  std::uint64_t containers_touched = 0;  // distinct containers referenced
  std::uint64_t nodes_touched = 0;       // distinct storage nodes referenced
  /// Mean distinct containers per 1024 consecutive chunks — the quantity
  /// that drives LPC misses during restore.
  double containers_per_1k_chunks = 0.0;
};

/// Measure a version's placement against a live map whose containers are
/// all resolvable in the repository — before any staging, or after the
/// round committed (staged containers are published and pinned by then).
[[nodiscard]] FragmentationReport measure_fragmentation(
    const JobVersionRecord& record, const LiveMap& live_map,
    const storage::ChunkRepository& repository);

struct LocalityOptions {
  /// Rewrite only if the version touches more than this many nodes.
  std::uint64_t node_threshold = 1;
  /// Storage node the rewritten containers are pinned to.
  std::size_t target_node = 0;
  std::uint64_t container_capacity = kContainerSize;
};

struct LocalityRewrite {
  std::uint64_t chunks_rewritten = 0;
  std::uint64_t containers_written = 0;
};

/// Stage a locality rewrite of one version: its chunks, in stream order,
/// into staged containers pinned to `target_node` under reserved IDs.
/// Fingerprints in `already_placed` are skipped (a newer version placed
/// them this round) and every fingerprint this rewrite stages is added to
/// it. The live map is re-pointed at the staged containers; old copies
/// become dead and are reclaimed by the same round's sweep.
[[nodiscard]] Result<LocalityRewrite> stage_locality_rewrite(
    const JobVersionRecord& record, storage::ChunkRepository& repository,
    LiveMap& live_map,
    std::unordered_set<Fingerprint, FingerprintHash>& already_placed,
    std::vector<StagedContainer>& staged, const LocalityOptions& options);

}  // namespace debar::core
