// Defragmentation (Section 6.3).
//
// De-duplication shares chunks across files, so over time a job version's
// chunks spread over many containers on many storage nodes, degrading
// restore throughput. The paper: "DEBAR employs a defragmentation
// mechanism that automatically aggregates file chunks to one or few
// storage nodes, thus significantly reducing storage fragmentation and
// retaining high read throughput."
//
// This implementation re-homes one job version: it measures the version's
// container spread, and if fragmented, rewrites the version's chunks into
// fresh containers pinned to a single storage node (in stream order —
// restoring the SISL locality), then re-maps the affected fingerprints in
// the disk index with one sequential bulk_update pass. Old container
// copies become garbage but are never deleted here: other versions may
// still share their chunks (space reclamation is a separate policy).
#pragma once

#include <cstdint>

#include "common/result.hpp"
#include "core/chunk_store.hpp"
#include "core/metadata.hpp"
#include "storage/chunk_repository.hpp"

namespace debar::core {

struct FragmentationReport {
  std::uint64_t chunks = 0;
  std::uint64_t containers_touched = 0;  // distinct containers referenced
  std::uint64_t nodes_touched = 0;       // distinct storage nodes referenced
  /// Mean distinct containers per 1024 consecutive chunks — the quantity
  /// that drives LPC misses during restore.
  double containers_per_1k_chunks = 0.0;
};

/// Measure how fragmented a version's chunk placement is.
[[nodiscard]] Result<FragmentationReport> analyze_fragmentation(
    const JobVersionRecord& record, ChunkStore& store,
    const storage::ChunkRepository& repository);

struct DefragResult {
  FragmentationReport before;
  FragmentationReport after;
  std::uint64_t chunks_rewritten = 0;
  std::uint64_t containers_written = 0;
};

struct DefragOptions {
  /// Rewrite only if the version touches more than this many nodes.
  std::uint64_t node_threshold = 1;
  /// Storage node the rewritten containers are pinned to.
  std::size_t target_node = 0;
  std::uint64_t container_capacity = kContainerSize;
};

/// Re-aggregate one version's chunks onto `target_node` and re-map the
/// index. No-op (before == after) when the version is already compact.
[[nodiscard]] Result<DefragResult> defragment_version(
    const JobVersionRecord& record, ChunkStore& store,
    storage::ChunkRepository& repository, const DefragOptions& options = {});

}  // namespace debar::core
