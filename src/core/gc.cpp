#include "core/gc.hpp"

#include <utility>

namespace debar::core {

ContainerStager::ContainerStager(storage::ChunkRepository& repository,
                                 std::uint64_t capacity,
                                 std::optional<std::size_t> node,
                                 std::vector<StagedContainer>& out,
                                 LiveMap& live_map)
    : repository_(repository),
      capacity_(capacity),
      node_(node),
      out_(out),
      live_map_(live_map),
      open_(capacity) {}

Status ContainerStager::add(const Fingerprint& fp, ByteSpan bytes) {
  if (!open_.try_append(fp, bytes)) {
    seal();
    if (!open_.try_append(fp, bytes)) {
      return {Errc::kInvalidArgument,
              "chunk larger than an empty staged container"};
    }
  }
  return Status::Ok();
}

std::uint64_t ContainerStager::finish() {
  seal();
  return sealed_;
}

void ContainerStager::seal() {
  if (open_.chunk_count() == 0) return;
  const ContainerId id = repository_.reserve_id();
  // Re-point the live map now: the rebuild streams and any later staging
  // pass must see chunks where they will live after commit.
  for (const storage::ChunkMeta& m : open_.metadata()) {
    live_map_[m.fp] = id;
  }
  out_.push_back(
      {id, std::exchange(open_, storage::Container(capacity_)), node_});
  ++sealed_;
}

Result<SweepPlan> sweep_containers(storage::ChunkRepository& repository,
                                   LiveMap& live_map,
                                   const SweepOptions& options) {
  SweepPlan plan;

  struct Compaction {
    ContainerId old_id;
    std::vector<storage::ChunkMeta> live_chunks;
  };
  std::vector<Compaction> to_compact;

  for (const ContainerId id : repository.container_ids()) {
    Result<storage::Container> container = repository.read(id);
    if (!container.ok()) return container.error();
    ++plan.containers_scanned;

    Compaction c{id, {}};
    std::uint64_t dead = 0;
    std::uint64_t dead_bytes = 0;
    std::uint64_t moved = 0;
    for (const storage::ChunkMeta& m : container.value().metadata()) {
      const auto it = live_map.find(m.fp);
      if (it != live_map.end() && it->second == id) {
        c.live_chunks.push_back(m);
      } else if (it != live_map.end()) {
        // Moved: still live, but the canonical copy is another container
        // (a locality rewrite this round, or a multi-origin duplicate).
        // Deleting this copy reclaims nothing logically.
        ++moved;
      } else {
        ++dead;
        dead_bytes += m.size;
      }
    }
    plan.live_chunks += c.live_chunks.size();
    plan.moved_chunks += moved;
    plan.dead_chunks += dead;

    if (c.live_chunks.empty()) {
      if (moved == 0) ++plan.containers_dead;
      plan.to_remove.push_back(id);
      plan.bytes_reclaimed += dead_bytes;
    } else if (dead + moved > 0) {
      const double live_fraction =
          static_cast<double>(c.live_chunks.size()) /
          static_cast<double>(container.value().chunk_count());
      if (live_fraction < options.compact_threshold) {
        plan.bytes_reclaimed += dead_bytes;
        to_compact.push_back(std::move(c));
      }
      // Containers at or above the threshold keep their dead payload —
      // the rewrite cost outweighs the reclaim. Their dead fingerprints
      // still leave the index: rebuild streams carry live entries only.
    }
  }

  // Compact: rewrite live chunks into staged containers (scan order keeps
  // whatever locality the old containers had) under reserved IDs.
  ContainerStager stager(repository, options.container_capacity,
                         options.compact_node, plan.staged, live_map);
  for (const Compaction& c : to_compact) {
    Result<storage::Container> container = repository.read(c.old_id);
    if (!container.ok()) return container.error();
    for (const storage::ChunkMeta& m : c.live_chunks) {
      const std::optional<ByteSpan> chunk = container.value().find(m.fp);
      if (!chunk.has_value()) {
        return Error{Errc::kCorrupt,
                     "container metadata lists a chunk it does not hold"};
      }
      if (Status s = stager.add(m.fp, *chunk); !s.ok()) {
        return Error{s.code(), s.message()};
      }
    }
    ++plan.containers_compacted;
    plan.to_remove.push_back(c.old_id);
  }
  plan.containers_written = stager.finish();
  return plan;
}

void publish_staged(storage::ChunkRepository& repository,
                    std::vector<StagedContainer> staged) {
  for (StagedContainer& s : staged) {
    repository.append_reserved(s.id, std::move(s.container), s.node);
  }
}

Status remove_containers(storage::ChunkRepository& repository,
                         std::span<const ContainerId> ids) {
  for (const ContainerId id : ids) {
    if (Status s = repository.remove(id); !s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace debar::core
