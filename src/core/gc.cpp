#include "core/gc.hpp"

#include <algorithm>
#include <functional>
#include <unordered_set>
#include <vector>

#include "core/cluster.hpp"

namespace debar::core {

namespace {

/// The sweep, parameterized over how index operations route: the
/// single-server form binds them to one ChunkStore; the cluster form
/// fans each out to the owning part.
struct IndexOps {
  std::function<Result<ContainerId>(const Fingerprint&)> locate;
  std::function<Status(std::span<const Fingerprint>)> erase_sorted;
  std::function<Status(std::span<const IndexEntry>)> update_sorted;
};

Result<GcReport> sweep(const Director& director,
                       storage::ChunkRepository& repository,
                       const IndexOps& ops, const GcOptions& options) {
  // ---- MARK: live fingerprints from every recorded version. ----
  std::unordered_set<Fingerprint, FingerprintHash> live;
  for (const JobVersionRecord& rec : director.all_versions()) {
    for (const FileRecord& f : rec.files) {
      live.insert(f.chunk_fps.begin(), f.chunk_fps.end());
    }
  }

  GcReport report;

  // ---- SWEEP. ----
  // The index maps each live fingerprint to exactly one container; only
  // that copy is live. Defrag leftovers and multi-origin duplicates in
  // *other* containers are dead even though their fingerprint is live.
  std::vector<ContainerId> to_delete;
  struct Compaction {
    ContainerId old_id;
    std::vector<storage::ChunkMeta> live_chunks;
  };
  std::vector<Compaction> to_compact;
  // Index entries whose (dead) chunk is being reclaimed: erased at the
  // end so the index never dangles into deleted containers.
  std::vector<Fingerprint> dead_index_fps;

  for (const ContainerId id : repository.container_ids()) {
    Result<storage::Container> container = repository.read(id);
    if (!container.ok()) return container.error();
    ++report.containers_scanned;

    Compaction c{id, {}};
    std::uint64_t dead = 0;
    std::uint64_t dead_bytes = 0;
    std::vector<Fingerprint> dead_here;  // dead chunks indexed to this id
    for (const storage::ChunkMeta& m : container.value().metadata()) {
      const Result<ContainerId> mapped = ops.locate(m.fp);
      if (live.contains(m.fp) && !mapped.ok()) {
        // A recorded chunk with no index mapping would be unreachable;
        // refusing to reclaim is the only safe move.
        return Error{Errc::kCorrupt,
                     "live fingerprint missing from the index; aborting GC"};
      }
      const bool indexed_here = mapped.ok() && mapped.value() == id;
      if (live.contains(m.fp) && indexed_here) {
        c.live_chunks.push_back(m);
      } else {
        ++dead;
        dead_bytes += m.size;
        if (indexed_here) dead_here.push_back(m.fp);
      }
    }
    report.live_chunks += c.live_chunks.size();
    report.dead_chunks += dead;

    if (c.live_chunks.empty()) {
      // Fully dead: reclaim the container; its indexed (dead)
      // fingerprints must leave the index too.
      to_delete.push_back(id);
      report.bytes_reclaimed += container.value().data_bytes();
      dead_index_fps.insert(dead_index_fps.end(), dead_here.begin(),
                            dead_here.end());
    } else if (dead > 0) {
      const double live_fraction =
          static_cast<double>(c.live_chunks.size()) /
          static_cast<double>(container.value().chunk_count());
      if (live_fraction < options.compact_threshold) {
        report.bytes_reclaimed += dead_bytes;
        dead_index_fps.insert(dead_index_fps.end(), dead_here.begin(),
                              dead_here.end());
        to_compact.push_back(std::move(c));
      }
      // Containers kept as-is keep their dead entries in the index: a
      // future backup of the same content will still dedup against them.
    }
  }

  // Compact: rewrite live chunks into fresh containers (scan order keeps
  // whatever locality the old containers had), then re-map the index.
  std::vector<IndexEntry> remap;
  storage::Container open(options.container_capacity);
  std::vector<std::pair<Fingerprint, std::size_t>> open_members;
  const auto seal = [&]() -> Status {
    if (open.chunk_count() == 0) return Status::Ok();
    const std::vector<storage::ChunkMeta> metas = open.metadata();
    const ContainerId fresh = repository.append(std::move(open));
    ++report.containers_written;
    for (const storage::ChunkMeta& m : metas) {
      remap.push_back({m.fp, fresh});
    }
    open = storage::Container(options.container_capacity);
    return Status::Ok();
  };

  for (const Compaction& c : to_compact) {
    Result<storage::Container> container = repository.read(c.old_id);
    if (!container.ok()) return container.error();
    for (const storage::ChunkMeta& m : c.live_chunks) {
      const std::optional<ByteSpan> chunk = container.value().find(m.fp);
      if (!chunk.has_value()) {
        return Error{Errc::kCorrupt,
                     "container metadata lists a chunk it does not hold"};
      }
      if (!open.try_append(m.fp, *chunk)) {
        if (Status s = seal(); !s.ok()) return Error{s.code(), s.message()};
        const bool ok = open.try_append(m.fp, *chunk);
        if (!ok) {
          return Error{Errc::kInvalidArgument,
                       "chunk larger than an empty GC container"};
        }
      }
    }
    ++report.containers_compacted;
  }
  if (Status s = seal(); !s.ok()) return Error{s.code(), s.message()};

  if (!remap.empty()) {
    std::sort(remap.begin(), remap.end(),
              [](const IndexEntry& a, const IndexEntry& b) {
                return a.fp < b.fp;
              });
    if (Status s = ops.update_sorted(std::span<const IndexEntry>(remap));
        !s.ok()) {
      return Error{s.code(), s.message()};
    }
  }

  // Erase the reclaimed fingerprints from the index in one pass.
  if (!dead_index_fps.empty()) {
    std::sort(dead_index_fps.begin(), dead_index_fps.end());
    dead_index_fps.erase(
        std::unique(dead_index_fps.begin(), dead_index_fps.end()),
        dead_index_fps.end());
    if (Status s =
            ops.erase_sorted(std::span<const Fingerprint>(dead_index_fps));
        !s.ok()) {
      return Error{s.code(), s.message()};
    }
  }

  // Delete fully-dead and successfully compacted containers.
  for (const Compaction& c : to_compact) {
    if (Status s = repository.remove(c.old_id); !s.ok()) {
      return Error{s.code(), s.message()};
    }
    ++report.containers_deleted;
  }
  for (const ContainerId id : to_delete) {
    if (Status s = repository.remove(id); !s.ok()) {
      return Error{s.code(), s.message()};
    }
    ++report.containers_deleted;
  }
  return report;
}

}  // namespace

Result<GcReport> collect_garbage(const Director& director, ChunkStore& store,
                                 storage::ChunkRepository& repository,
                                 const GcOptions& options) {
  if (store.index().params().skip_bits != 0) {
    return Error{Errc::kUnsupported,
                 "routed index parts need the Cluster overload"};
  }
  if (store.pending_count() > 0) {
    return Error{Errc::kInvalidArgument,
                 "GC cannot run while SIU entries are pending"};
  }
  IndexOps ops;
  ops.locate = [&](const Fingerprint& fp) { return store.locate(fp); };
  ops.erase_sorted = [&](std::span<const Fingerprint> fps) {
    return store.index().bulk_erase(fps, 1024);
  };
  ops.update_sorted = [&](std::span<const IndexEntry> entries) {
    std::uint64_t missing = 0;
    Status s = store.index().bulk_update(entries, 1024, &missing);
    if (s.ok() && missing != 0) {
      return Status(Errc::kCorrupt,
                    "GC re-map hit fingerprints absent from the index");
    }
    return s;
  };
  return sweep(director, repository, ops, options);
}

Result<GcReport> collect_garbage(Cluster& cluster, const GcOptions& options) {
  for (std::size_t k = 0; k < cluster.server_count(); ++k) {
    if (cluster.server(k).chunk_store().pending_count() > 0) {
      return Error{Errc::kInvalidArgument,
                   "GC cannot run while SIU entries are pending"};
    }
  }
  // Route every index operation to the part that owns the fingerprint.
  // Sorted batches are split by routing prefix: each part's slice is
  // contiguous because the routing bits are the most significant ones.
  IndexOps ops;
  ops.locate = [&](const Fingerprint& fp) {
    return cluster.server(cluster.owner_of(fp)).chunk_store().locate(fp);
  };
  ops.erase_sorted = [&](std::span<const Fingerprint> fps) {
    std::size_t begin = 0;
    while (begin < fps.size()) {
      const std::size_t owner = cluster.owner_of(fps[begin]);
      std::size_t end = begin;
      while (end < fps.size() && cluster.owner_of(fps[end]) == owner) ++end;
      Status s = cluster.server(owner).chunk_store().index().bulk_erase(
          fps.subspan(begin, end - begin), 1024);
      if (!s.ok()) return s;
      begin = end;
    }
    return Status::Ok();
  };
  ops.update_sorted = [&](std::span<const IndexEntry> entries) {
    std::size_t begin = 0;
    while (begin < entries.size()) {
      const std::size_t owner = cluster.owner_of(entries[begin].fp);
      std::size_t end = begin;
      while (end < entries.size() &&
             cluster.owner_of(entries[end].fp) == owner) {
        ++end;
      }
      std::uint64_t missing = 0;
      Status s = cluster.server(owner).chunk_store().index().bulk_update(
          entries.subspan(begin, end - begin), 1024, &missing);
      if (!s.ok()) return s;
      if (missing != 0) {
        return Status(Errc::kCorrupt,
                      "GC re-map hit fingerprints absent from the index");
      }
      begin = end;
    }
    return Status::Ok();
  };
  return sweep(cluster.director(), cluster.repository(), ops, options);
}

}  // namespace debar::core
