#include "core/backup_server.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <thread>

#include "common/channel.hpp"
#include "storage/block_device.hpp"

namespace debar::core {

namespace {

using DeviceFactory =
    std::function<std::unique_ptr<storage::BlockDevice>()>;

std::unique_ptr<storage::BlockDevice> mint_device(
    const DeviceFactory& factory, sim::DiskModel* model) {
  auto device = factory != nullptr
                    ? factory()
                    : std::make_unique<storage::MemBlockDevice>();
  device->attach_model(model);
  return device;
}

}  // namespace

BackupServer::BackupServer(std::size_t server_id,
                           const BackupServerConfig& config,
                           storage::ChunkRepository* repository,
                           Director* director)
    : server_id_(server_id),
      config_(config),
      nic_model_(config.nic_profile, &nic_clock_),
      log_model_(config.log_profile, &log_clock_),
      index_model_(config.index_profile, &index_clock_) {
  chunk_log_ = std::make_unique<storage::ChunkLog>(
      mint_device(config.log_device_factory, &log_model_));

  Result<index::DiskIndex> idx = index::DiskIndex::create(
      mint_device(config.index_device_factory, &index_model_),
      config.index_params);
  if (!idx.ok()) {
    // A fault-injecting device factory can fail the very first index
    // create (e.g. a crash point hit while a migration staged this
    // server). Record it and fall back to a plain in-memory device so the
    // object stays constructed; boot_status() gates any real use.
    boot_status_ = Status(idx.error().code, idx.error().message);
    auto fallback = std::make_unique<storage::MemBlockDevice>();
    fallback->attach_model(&index_model_);
    idx = index::DiskIndex::create(std::move(fallback), config.index_params);
  }
  assert(idx.ok() && "index params validated by config construction");

  file_store_ = std::make_unique<FileStore>(config.filter_params,
                                            chunk_log_.get(), &nic_model_,
                                            director);
  // The index cache must agree with the index part on routing bits, and
  // the chunk store seals containers of the server's configured size.
  ChunkStoreConfig cs = config.chunk_store;
  cs.cache_params.skip_bits = config.index_params.skip_bits;
  cs.container_capacity = config.container_capacity;
  chunk_store_ = std::make_unique<ChunkStore>(
      std::move(idx).value(), cs, repository, chunk_log_.get(),
      [factory = config.index_device_factory, model = &index_model_] {
        return mint_device(factory, model);
      });
}

Status BackupServer::attach_replica(std::size_t part) {
  if (replicas_.contains(part)) {
    return {Errc::kInvalidArgument,
            "server already hosts a replica of this part"};
  }
  Result<index::DiskIndex> idx = index::DiskIndex::create(
      mint_device(config_.index_device_factory, &index_model_),
      config_.index_params);
  if (!idx.ok()) return {idx.error().code, idx.error().message};
  adopt_replica(make_replica(part, std::move(idx).value()));
  return Status::Ok();
}

void BackupServer::adopt_replica(std::unique_ptr<IndexPartReplica> replica) {
  const std::size_t part = replica->part();
  replicas_[part] = std::move(replica);
}

std::unique_ptr<storage::BlockDevice> BackupServer::mint_index_device() {
  return mint_device(config_.index_device_factory, &index_model_);
}

std::unique_ptr<IndexPartReplica> BackupServer::make_replica(
    std::size_t part, index::DiskIndex idx) {
  return std::make_unique<IndexPartReplica>(
      part, std::move(idx), config_.chunk_store.io_buckets,
      config_.chunk_store.siu_threshold,
      [factory = config_.index_device_factory, model = &index_model_] {
        return mint_device(factory, model);
      });
}

Result<Dedup2Result> BackupServer::run_dedup2(bool force_siu) {
  Dedup2Result result;
  std::vector<Fingerprint> undetermined = file_store_->take_undetermined();
  result.undetermined = undetermined.size();

  // Process in index-cache-sized batches; the chunk log stays intact until
  // every batch has replayed it (later batches still need its records).
  const std::size_t batch_cap = config_.chunk_store.cache_params.capacity;
  const std::size_t threads = config_.chunk_store.dedup2.resolved_threads();
  if (threads <= 1) {
    for (std::size_t pos = 0; pos < undetermined.size();) {
      const std::size_t n = std::min(batch_cap, undetermined.size() - pos);
      std::vector<Fingerprint> batch(undetermined.begin() + pos,
                                     undetermined.begin() + pos + n);
      pos += n;
      ++result.sil_runs;

      std::vector<std::uint8_t> found;
      Result<SilResult> sil = chunk_store_->sil(batch, found);
      if (!sil.ok()) return sil.error();
      result.sil_seconds += sil.value().seconds;
      result.duplicates +=
          sil.value().found_on_disk + sil.value().found_pending;

      std::vector<Fingerprint> new_fps;
      new_fps.reserve(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (found[i] == 0) new_fps.push_back(batch[i]);
      }

      Result<StoreResult> stored = chunk_store_->store_new_chunks(new_fps);
      if (!stored.ok()) return stored.error();
      result.new_chunks += stored.value().new_chunks;
      result.new_bytes += stored.value().new_bytes;
      chunk_store_->add_pending(
          std::span<const IndexEntry>(stored.value().entries));
    }
  } else {
    // Pipelined dedup-2: SIL for batch b+1 (itself sharded across the
    // pool) overlaps chunk storing for batch b on a dedicated consumer
    // thread. Safe because take_undetermined() deduplicates, so no
    // fingerprint appears in two batches: a batch's SIL outcome cannot
    // depend on an in-flight store of an earlier batch — except through
    // the checking set, which both stages access under its mutex and
    // which only ever flips a duplicate verdict for fingerprints the
    // earlier batch owns. The stages also drive disjoint modeled clocks
    // (index vs log/repository), and the single consumer seals containers
    // in batch order, so container IDs, metadata, and modeled seconds all
    // match the serial schedule exactly.
    struct StoreJob {
      std::vector<Fingerprint> new_fps;
    };
    Channel<StoreJob> jobs(
        std::max<std::size_t>(config_.chunk_store.dedup2.pipeline_depth, 1));
    struct StoreOutcome {
      Status status = Status::Ok();
      std::uint64_t new_chunks = 0;
      std::uint64_t new_bytes = 0;
    } outcome;
    std::atomic<bool> store_failed{false};
    std::thread store_stage([&] {
      while (auto job = jobs.receive()) {
        if (store_failed.load(std::memory_order_relaxed)) continue;  // drain
        Result<StoreResult> stored =
            chunk_store_->store_new_chunks(job->new_fps);
        if (!stored.ok()) {
          outcome.status = stored.status();
          store_failed.store(true, std::memory_order_release);
          continue;
        }
        outcome.new_chunks += stored.value().new_chunks;
        outcome.new_bytes += stored.value().new_bytes;
        chunk_store_->add_pending(
            std::span<const IndexEntry>(stored.value().entries));
      }
    });

    Status sil_status = Status::Ok();
    for (std::size_t pos = 0; pos < undetermined.size();) {
      if (store_failed.load(std::memory_order_acquire)) break;
      const std::size_t n = std::min(batch_cap, undetermined.size() - pos);
      std::vector<Fingerprint> batch(undetermined.begin() + pos,
                                     undetermined.begin() + pos + n);
      pos += n;
      ++result.sil_runs;

      std::vector<std::uint8_t> found;
      Result<SilResult> sil = chunk_store_->sil(batch, found);
      if (!sil.ok()) {
        sil_status = sil.status();
        break;
      }
      result.sil_seconds += sil.value().seconds;
      result.duplicates +=
          sil.value().found_on_disk + sil.value().found_pending;

      StoreJob job;
      job.new_fps.reserve(batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (found[i] == 0) job.new_fps.push_back(batch[i]);
      }
      jobs.send(std::move(job));
    }
    jobs.close();
    store_stage.join();
    // The store stage's failure takes precedence: in program order it
    // belongs to an earlier batch than anything the producer saw.
    if (!outcome.status.ok()) {
      return Error{outcome.status.code(), outcome.status.message()};
    }
    if (!sil_status.ok()) {
      return Error{sil_status.code(), sil_status.message()};
    }
    result.new_chunks = outcome.new_chunks;
    result.new_bytes = outcome.new_bytes;
  }
  chunk_store_->clear_log();

  if (force_siu || chunk_store_->siu_due()) {
    Result<SiuResult> siu = chunk_store_->siu();
    if (!siu.ok()) return siu.error();
    result.ran_siu = true;
    result.siu_seconds = siu.value().seconds;
  }
  return result;
}

}  // namespace debar::core
